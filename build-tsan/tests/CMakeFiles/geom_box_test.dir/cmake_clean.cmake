file(REMOVE_RECURSE
  "CMakeFiles/geom_box_test.dir/geom_box_test.cc.o"
  "CMakeFiles/geom_box_test.dir/geom_box_test.cc.o.d"
  "geom_box_test"
  "geom_box_test.pdb"
  "geom_box_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geom_box_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
