file(REMOVE_RECURSE
  "CMakeFiles/algo_hull_simplicity_test.dir/algo_hull_simplicity_test.cc.o"
  "CMakeFiles/algo_hull_simplicity_test.dir/algo_hull_simplicity_test.cc.o.d"
  "algo_hull_simplicity_test"
  "algo_hull_simplicity_test.pdb"
  "algo_hull_simplicity_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/algo_hull_simplicity_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
