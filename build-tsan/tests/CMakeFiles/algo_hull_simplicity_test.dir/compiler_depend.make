# Empty compiler generated dependencies file for algo_hull_simplicity_test.
# This may be replaced when dependencies are built.
