file(REMOVE_RECURSE
  "CMakeFiles/algo_triangulate_test.dir/algo_triangulate_test.cc.o"
  "CMakeFiles/algo_triangulate_test.dir/algo_triangulate_test.cc.o.d"
  "algo_triangulate_test"
  "algo_triangulate_test.pdb"
  "algo_triangulate_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/algo_triangulate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
