# Empty dependencies file for algo_triangulate_test.
# This may be replaced when dependencies are built.
