# Empty compiler generated dependencies file for core_hw_distance_test.
# This may be replaced when dependencies are built.
