file(REMOVE_RECURSE
  "CMakeFiles/core_hw_distance_test.dir/core_hw_distance_test.cc.o"
  "CMakeFiles/core_hw_distance_test.dir/core_hw_distance_test.cc.o.d"
  "core_hw_distance_test"
  "core_hw_distance_test.pdb"
  "core_hw_distance_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_hw_distance_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
