file(REMOVE_RECURSE
  "CMakeFiles/core_join_test.dir/core_join_test.cc.o"
  "CMakeFiles/core_join_test.dir/core_join_test.cc.o.d"
  "core_join_test"
  "core_join_test.pdb"
  "core_join_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_join_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
