# Empty compiler generated dependencies file for core_hw_intersection_test.
# This may be replaced when dependencies are built.
