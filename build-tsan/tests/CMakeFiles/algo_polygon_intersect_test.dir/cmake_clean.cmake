file(REMOVE_RECURSE
  "CMakeFiles/algo_polygon_intersect_test.dir/algo_polygon_intersect_test.cc.o"
  "CMakeFiles/algo_polygon_intersect_test.dir/algo_polygon_intersect_test.cc.o.d"
  "algo_polygon_intersect_test"
  "algo_polygon_intersect_test.pdb"
  "algo_polygon_intersect_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/algo_polygon_intersect_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
