# Empty dependencies file for algo_polygon_intersect_test.
# This may be replaced when dependencies are built.
