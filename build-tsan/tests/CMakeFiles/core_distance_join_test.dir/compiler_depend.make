# Empty compiler generated dependencies file for core_distance_join_test.
# This may be replaced when dependencies are built.
