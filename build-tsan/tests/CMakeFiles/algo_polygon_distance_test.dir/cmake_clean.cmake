file(REMOVE_RECURSE
  "CMakeFiles/algo_polygon_distance_test.dir/algo_polygon_distance_test.cc.o"
  "CMakeFiles/algo_polygon_distance_test.dir/algo_polygon_distance_test.cc.o.d"
  "algo_polygon_distance_test"
  "algo_polygon_distance_test.pdb"
  "algo_polygon_distance_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/algo_polygon_distance_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
