file(REMOVE_RECURSE
  "CMakeFiles/filter_geometric_test.dir/filter_geometric_test.cc.o"
  "CMakeFiles/filter_geometric_test.dir/filter_geometric_test.cc.o.d"
  "filter_geometric_test"
  "filter_geometric_test.pdb"
  "filter_geometric_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/filter_geometric_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
