
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/data_test.cc" "tests/CMakeFiles/data_test.dir/data_test.cc.o" "gcc" "tests/CMakeFiles/data_test.dir/data_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/core/CMakeFiles/hasj_core.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/glsim/CMakeFiles/hasj_glsim.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/filter/CMakeFiles/hasj_filter.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/algo/CMakeFiles/hasj_algo.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/data/CMakeFiles/hasj_data.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/index/CMakeFiles/hasj_index.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/geom/CMakeFiles/hasj_geom.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/common/CMakeFiles/hasj_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
