file(REMOVE_RECURSE
  "CMakeFiles/filter_interior_test.dir/filter_interior_test.cc.o"
  "CMakeFiles/filter_interior_test.dir/filter_interior_test.cc.o.d"
  "filter_interior_test"
  "filter_interior_test.pdb"
  "filter_interior_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/filter_interior_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
