# Empty dependencies file for filter_interior_test.
# This may be replaced when dependencies are built.
