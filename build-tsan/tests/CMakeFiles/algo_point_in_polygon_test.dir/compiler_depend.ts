# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for algo_point_in_polygon_test.
