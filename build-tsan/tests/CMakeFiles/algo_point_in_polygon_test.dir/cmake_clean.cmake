file(REMOVE_RECURSE
  "CMakeFiles/algo_point_in_polygon_test.dir/algo_point_in_polygon_test.cc.o"
  "CMakeFiles/algo_point_in_polygon_test.dir/algo_point_in_polygon_test.cc.o.d"
  "algo_point_in_polygon_test"
  "algo_point_in_polygon_test.pdb"
  "algo_point_in_polygon_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/algo_point_in_polygon_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
