# Empty compiler generated dependencies file for algo_point_in_polygon_test.
# This may be replaced when dependencies are built.
