# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for core_hw_filled_test.
