file(REMOVE_RECURSE
  "CMakeFiles/core_hw_filled_test.dir/core_hw_filled_test.cc.o"
  "CMakeFiles/core_hw_filled_test.dir/core_hw_filled_test.cc.o.d"
  "core_hw_filled_test"
  "core_hw_filled_test.pdb"
  "core_hw_filled_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_hw_filled_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
