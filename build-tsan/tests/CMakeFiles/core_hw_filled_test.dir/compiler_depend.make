# Empty compiler generated dependencies file for core_hw_filled_test.
# This may be replaced when dependencies are built.
