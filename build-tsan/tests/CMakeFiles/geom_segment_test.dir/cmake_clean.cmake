file(REMOVE_RECURSE
  "CMakeFiles/geom_segment_test.dir/geom_segment_test.cc.o"
  "CMakeFiles/geom_segment_test.dir/geom_segment_test.cc.o.d"
  "geom_segment_test"
  "geom_segment_test.pdb"
  "geom_segment_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geom_segment_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
