# Empty dependencies file for core_parallel_refinement_test.
# This may be replaced when dependencies are built.
