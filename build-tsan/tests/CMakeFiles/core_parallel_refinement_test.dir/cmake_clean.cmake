file(REMOVE_RECURSE
  "CMakeFiles/core_parallel_refinement_test.dir/core_parallel_refinement_test.cc.o"
  "CMakeFiles/core_parallel_refinement_test.dir/core_parallel_refinement_test.cc.o.d"
  "core_parallel_refinement_test"
  "core_parallel_refinement_test.pdb"
  "core_parallel_refinement_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_parallel_refinement_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
