# Empty dependencies file for geom_wkt_test.
# This may be replaced when dependencies are built.
