file(REMOVE_RECURSE
  "CMakeFiles/geom_wkt_test.dir/geom_wkt_test.cc.o"
  "CMakeFiles/geom_wkt_test.dir/geom_wkt_test.cc.o.d"
  "geom_wkt_test"
  "geom_wkt_test.pdb"
  "geom_wkt_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geom_wkt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
