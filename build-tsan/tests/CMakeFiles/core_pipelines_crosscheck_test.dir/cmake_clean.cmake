file(REMOVE_RECURSE
  "CMakeFiles/core_pipelines_crosscheck_test.dir/core_pipelines_crosscheck_test.cc.o"
  "CMakeFiles/core_pipelines_crosscheck_test.dir/core_pipelines_crosscheck_test.cc.o.d"
  "core_pipelines_crosscheck_test"
  "core_pipelines_crosscheck_test.pdb"
  "core_pipelines_crosscheck_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_pipelines_crosscheck_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
