# Empty dependencies file for core_pipelines_crosscheck_test.
# This may be replaced when dependencies are built.
