file(REMOVE_RECURSE
  "CMakeFiles/glsim_coverage_test.dir/glsim_coverage_test.cc.o"
  "CMakeFiles/glsim_coverage_test.dir/glsim_coverage_test.cc.o.d"
  "glsim_coverage_test"
  "glsim_coverage_test.pdb"
  "glsim_coverage_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/glsim_coverage_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
