# Empty dependencies file for glsim_coverage_test.
# This may be replaced when dependencies are built.
