file(REMOVE_RECURSE
  "CMakeFiles/filter_object_filters_test.dir/filter_object_filters_test.cc.o"
  "CMakeFiles/filter_object_filters_test.dir/filter_object_filters_test.cc.o.d"
  "filter_object_filters_test"
  "filter_object_filters_test.pdb"
  "filter_object_filters_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/filter_object_filters_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
