# Empty dependencies file for filter_object_filters_test.
# This may be replaced when dependencies are built.
