file(REMOVE_RECURSE
  "CMakeFiles/geom_predicates_test.dir/geom_predicates_test.cc.o"
  "CMakeFiles/geom_predicates_test.dir/geom_predicates_test.cc.o.d"
  "geom_predicates_test"
  "geom_predicates_test.pdb"
  "geom_predicates_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geom_predicates_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
