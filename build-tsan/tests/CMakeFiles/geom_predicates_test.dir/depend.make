# Empty dependencies file for geom_predicates_test.
# This may be replaced when dependencies are built.
