file(REMOVE_RECURSE
  "CMakeFiles/glsim_context_test.dir/glsim_context_test.cc.o"
  "CMakeFiles/glsim_context_test.dir/glsim_context_test.cc.o.d"
  "glsim_context_test"
  "glsim_context_test.pdb"
  "glsim_context_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/glsim_context_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
