# Empty dependencies file for glsim_context_test.
# This may be replaced when dependencies are built.
