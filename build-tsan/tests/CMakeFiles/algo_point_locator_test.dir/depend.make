# Empty dependencies file for algo_point_locator_test.
# This may be replaced when dependencies are built.
