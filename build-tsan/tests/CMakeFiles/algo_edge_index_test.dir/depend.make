# Empty dependencies file for algo_edge_index_test.
# This may be replaced when dependencies are built.
