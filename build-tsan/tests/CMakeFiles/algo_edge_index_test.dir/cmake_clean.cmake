file(REMOVE_RECURSE
  "CMakeFiles/algo_edge_index_test.dir/algo_edge_index_test.cc.o"
  "CMakeFiles/algo_edge_index_test.dir/algo_edge_index_test.cc.o.d"
  "algo_edge_index_test"
  "algo_edge_index_test.pdb"
  "algo_edge_index_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/algo_edge_index_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
