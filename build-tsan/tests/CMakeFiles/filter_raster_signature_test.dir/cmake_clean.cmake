file(REMOVE_RECURSE
  "CMakeFiles/filter_raster_signature_test.dir/filter_raster_signature_test.cc.o"
  "CMakeFiles/filter_raster_signature_test.dir/filter_raster_signature_test.cc.o.d"
  "filter_raster_signature_test"
  "filter_raster_signature_test.pdb"
  "filter_raster_signature_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/filter_raster_signature_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
