# Empty compiler generated dependencies file for filter_raster_signature_test.
# This may be replaced when dependencies are built.
