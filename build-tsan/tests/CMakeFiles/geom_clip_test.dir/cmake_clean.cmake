file(REMOVE_RECURSE
  "CMakeFiles/geom_clip_test.dir/geom_clip_test.cc.o"
  "CMakeFiles/geom_clip_test.dir/geom_clip_test.cc.o.d"
  "geom_clip_test"
  "geom_clip_test.pdb"
  "geom_clip_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geom_clip_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
