# Empty dependencies file for geom_clip_test.
# This may be replaced when dependencies are built.
