# Empty dependencies file for core_hw_nearest_test.
# This may be replaced when dependencies are built.
