# Empty dependencies file for algo_segment_tests_test.
# This may be replaced when dependencies are built.
