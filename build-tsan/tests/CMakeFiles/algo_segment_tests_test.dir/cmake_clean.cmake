file(REMOVE_RECURSE
  "CMakeFiles/algo_segment_tests_test.dir/algo_segment_tests_test.cc.o"
  "CMakeFiles/algo_segment_tests_test.dir/algo_segment_tests_test.cc.o.d"
  "algo_segment_tests_test"
  "algo_segment_tests_test.pdb"
  "algo_segment_tests_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/algo_segment_tests_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
