file(REMOVE_RECURSE
  "CMakeFiles/glsim_framebuffer_test.dir/glsim_framebuffer_test.cc.o"
  "CMakeFiles/glsim_framebuffer_test.dir/glsim_framebuffer_test.cc.o.d"
  "glsim_framebuffer_test"
  "glsim_framebuffer_test.pdb"
  "glsim_framebuffer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/glsim_framebuffer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
