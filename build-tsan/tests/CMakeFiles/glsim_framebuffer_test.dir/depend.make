# Empty dependencies file for glsim_framebuffer_test.
# This may be replaced when dependencies are built.
