# Empty dependencies file for glsim_raster_test.
# This may be replaced when dependencies are built.
