file(REMOVE_RECURSE
  "CMakeFiles/glsim_raster_test.dir/glsim_raster_test.cc.o"
  "CMakeFiles/glsim_raster_test.dir/glsim_raster_test.cc.o.d"
  "glsim_raster_test"
  "glsim_raster_test.pdb"
  "glsim_raster_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/glsim_raster_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
