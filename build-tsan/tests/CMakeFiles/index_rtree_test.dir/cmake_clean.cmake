file(REMOVE_RECURSE
  "CMakeFiles/index_rtree_test.dir/index_rtree_test.cc.o"
  "CMakeFiles/index_rtree_test.dir/index_rtree_test.cc.o.d"
  "index_rtree_test"
  "index_rtree_test.pdb"
  "index_rtree_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/index_rtree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
