# Empty dependencies file for index_rtree_test.
# This may be replaced when dependencies are built.
