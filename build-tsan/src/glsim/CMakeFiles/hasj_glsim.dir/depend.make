# Empty dependencies file for hasj_glsim.
# This may be replaced when dependencies are built.
