file(REMOVE_RECURSE
  "CMakeFiles/hasj_glsim.dir/context.cc.o"
  "CMakeFiles/hasj_glsim.dir/context.cc.o.d"
  "CMakeFiles/hasj_glsim.dir/coverage.cc.o"
  "CMakeFiles/hasj_glsim.dir/coverage.cc.o.d"
  "CMakeFiles/hasj_glsim.dir/framebuffer.cc.o"
  "CMakeFiles/hasj_glsim.dir/framebuffer.cc.o.d"
  "CMakeFiles/hasj_glsim.dir/voronoi.cc.o"
  "CMakeFiles/hasj_glsim.dir/voronoi.cc.o.d"
  "libhasj_glsim.a"
  "libhasj_glsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hasj_glsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
