
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/glsim/context.cc" "src/glsim/CMakeFiles/hasj_glsim.dir/context.cc.o" "gcc" "src/glsim/CMakeFiles/hasj_glsim.dir/context.cc.o.d"
  "/root/repo/src/glsim/coverage.cc" "src/glsim/CMakeFiles/hasj_glsim.dir/coverage.cc.o" "gcc" "src/glsim/CMakeFiles/hasj_glsim.dir/coverage.cc.o.d"
  "/root/repo/src/glsim/framebuffer.cc" "src/glsim/CMakeFiles/hasj_glsim.dir/framebuffer.cc.o" "gcc" "src/glsim/CMakeFiles/hasj_glsim.dir/framebuffer.cc.o.d"
  "/root/repo/src/glsim/voronoi.cc" "src/glsim/CMakeFiles/hasj_glsim.dir/voronoi.cc.o" "gcc" "src/glsim/CMakeFiles/hasj_glsim.dir/voronoi.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/geom/CMakeFiles/hasj_geom.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/common/CMakeFiles/hasj_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
