file(REMOVE_RECURSE
  "libhasj_glsim.a"
)
