# Empty dependencies file for hasj_core.
# This may be replaced when dependencies are built.
