file(REMOVE_RECURSE
  "libhasj_core.a"
)
