file(REMOVE_RECURSE
  "CMakeFiles/hasj_core.dir/distance_join.cc.o"
  "CMakeFiles/hasj_core.dir/distance_join.cc.o.d"
  "CMakeFiles/hasj_core.dir/distance_selection.cc.o"
  "CMakeFiles/hasj_core.dir/distance_selection.cc.o.d"
  "CMakeFiles/hasj_core.dir/hw_distance.cc.o"
  "CMakeFiles/hasj_core.dir/hw_distance.cc.o.d"
  "CMakeFiles/hasj_core.dir/hw_filled.cc.o"
  "CMakeFiles/hasj_core.dir/hw_filled.cc.o.d"
  "CMakeFiles/hasj_core.dir/hw_intersection.cc.o"
  "CMakeFiles/hasj_core.dir/hw_intersection.cc.o.d"
  "CMakeFiles/hasj_core.dir/hw_nearest.cc.o"
  "CMakeFiles/hasj_core.dir/hw_nearest.cc.o.d"
  "CMakeFiles/hasj_core.dir/join.cc.o"
  "CMakeFiles/hasj_core.dir/join.cc.o.d"
  "CMakeFiles/hasj_core.dir/selection.cc.o"
  "CMakeFiles/hasj_core.dir/selection.cc.o.d"
  "libhasj_core.a"
  "libhasj_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hasj_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
