file(REMOVE_RECURSE
  "CMakeFiles/hasj_filter.dir/geometric_filter.cc.o"
  "CMakeFiles/hasj_filter.dir/geometric_filter.cc.o.d"
  "CMakeFiles/hasj_filter.dir/interior_filter.cc.o"
  "CMakeFiles/hasj_filter.dir/interior_filter.cc.o.d"
  "CMakeFiles/hasj_filter.dir/object_filters.cc.o"
  "CMakeFiles/hasj_filter.dir/object_filters.cc.o.d"
  "CMakeFiles/hasj_filter.dir/raster_signature.cc.o"
  "CMakeFiles/hasj_filter.dir/raster_signature.cc.o.d"
  "CMakeFiles/hasj_filter.dir/signature_cache.cc.o"
  "CMakeFiles/hasj_filter.dir/signature_cache.cc.o.d"
  "libhasj_filter.a"
  "libhasj_filter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hasj_filter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
