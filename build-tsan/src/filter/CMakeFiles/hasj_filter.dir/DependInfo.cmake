
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/filter/geometric_filter.cc" "src/filter/CMakeFiles/hasj_filter.dir/geometric_filter.cc.o" "gcc" "src/filter/CMakeFiles/hasj_filter.dir/geometric_filter.cc.o.d"
  "/root/repo/src/filter/interior_filter.cc" "src/filter/CMakeFiles/hasj_filter.dir/interior_filter.cc.o" "gcc" "src/filter/CMakeFiles/hasj_filter.dir/interior_filter.cc.o.d"
  "/root/repo/src/filter/object_filters.cc" "src/filter/CMakeFiles/hasj_filter.dir/object_filters.cc.o" "gcc" "src/filter/CMakeFiles/hasj_filter.dir/object_filters.cc.o.d"
  "/root/repo/src/filter/raster_signature.cc" "src/filter/CMakeFiles/hasj_filter.dir/raster_signature.cc.o" "gcc" "src/filter/CMakeFiles/hasj_filter.dir/raster_signature.cc.o.d"
  "/root/repo/src/filter/signature_cache.cc" "src/filter/CMakeFiles/hasj_filter.dir/signature_cache.cc.o" "gcc" "src/filter/CMakeFiles/hasj_filter.dir/signature_cache.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/algo/CMakeFiles/hasj_algo.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/geom/CMakeFiles/hasj_geom.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/common/CMakeFiles/hasj_common.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/index/CMakeFiles/hasj_index.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
