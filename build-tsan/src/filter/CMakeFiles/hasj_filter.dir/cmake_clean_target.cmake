file(REMOVE_RECURSE
  "libhasj_filter.a"
)
