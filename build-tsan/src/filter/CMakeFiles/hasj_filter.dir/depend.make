# Empty dependencies file for hasj_filter.
# This may be replaced when dependencies are built.
