file(REMOVE_RECURSE
  "libhasj_geom.a"
)
