
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/geom/box.cc" "src/geom/CMakeFiles/hasj_geom.dir/box.cc.o" "gcc" "src/geom/CMakeFiles/hasj_geom.dir/box.cc.o.d"
  "/root/repo/src/geom/clip.cc" "src/geom/CMakeFiles/hasj_geom.dir/clip.cc.o" "gcc" "src/geom/CMakeFiles/hasj_geom.dir/clip.cc.o.d"
  "/root/repo/src/geom/polygon.cc" "src/geom/CMakeFiles/hasj_geom.dir/polygon.cc.o" "gcc" "src/geom/CMakeFiles/hasj_geom.dir/polygon.cc.o.d"
  "/root/repo/src/geom/predicates.cc" "src/geom/CMakeFiles/hasj_geom.dir/predicates.cc.o" "gcc" "src/geom/CMakeFiles/hasj_geom.dir/predicates.cc.o.d"
  "/root/repo/src/geom/segment.cc" "src/geom/CMakeFiles/hasj_geom.dir/segment.cc.o" "gcc" "src/geom/CMakeFiles/hasj_geom.dir/segment.cc.o.d"
  "/root/repo/src/geom/wkt.cc" "src/geom/CMakeFiles/hasj_geom.dir/wkt.cc.o" "gcc" "src/geom/CMakeFiles/hasj_geom.dir/wkt.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/common/CMakeFiles/hasj_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
