file(REMOVE_RECURSE
  "CMakeFiles/hasj_geom.dir/box.cc.o"
  "CMakeFiles/hasj_geom.dir/box.cc.o.d"
  "CMakeFiles/hasj_geom.dir/clip.cc.o"
  "CMakeFiles/hasj_geom.dir/clip.cc.o.d"
  "CMakeFiles/hasj_geom.dir/polygon.cc.o"
  "CMakeFiles/hasj_geom.dir/polygon.cc.o.d"
  "CMakeFiles/hasj_geom.dir/predicates.cc.o"
  "CMakeFiles/hasj_geom.dir/predicates.cc.o.d"
  "CMakeFiles/hasj_geom.dir/segment.cc.o"
  "CMakeFiles/hasj_geom.dir/segment.cc.o.d"
  "CMakeFiles/hasj_geom.dir/wkt.cc.o"
  "CMakeFiles/hasj_geom.dir/wkt.cc.o.d"
  "libhasj_geom.a"
  "libhasj_geom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hasj_geom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
