# Empty dependencies file for hasj_geom.
# This may be replaced when dependencies are built.
