# Empty dependencies file for hasj_data.
# This may be replaced when dependencies are built.
