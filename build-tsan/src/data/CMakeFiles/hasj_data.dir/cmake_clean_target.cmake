file(REMOVE_RECURSE
  "libhasj_data.a"
)
