file(REMOVE_RECURSE
  "CMakeFiles/hasj_data.dir/catalogs.cc.o"
  "CMakeFiles/hasj_data.dir/catalogs.cc.o.d"
  "CMakeFiles/hasj_data.dir/dataset.cc.o"
  "CMakeFiles/hasj_data.dir/dataset.cc.o.d"
  "CMakeFiles/hasj_data.dir/generator.cc.o"
  "CMakeFiles/hasj_data.dir/generator.cc.o.d"
  "CMakeFiles/hasj_data.dir/io.cc.o"
  "CMakeFiles/hasj_data.dir/io.cc.o.d"
  "CMakeFiles/hasj_data.dir/svg.cc.o"
  "CMakeFiles/hasj_data.dir/svg.cc.o.d"
  "libhasj_data.a"
  "libhasj_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hasj_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
