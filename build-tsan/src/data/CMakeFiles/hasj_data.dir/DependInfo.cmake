
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/catalogs.cc" "src/data/CMakeFiles/hasj_data.dir/catalogs.cc.o" "gcc" "src/data/CMakeFiles/hasj_data.dir/catalogs.cc.o.d"
  "/root/repo/src/data/dataset.cc" "src/data/CMakeFiles/hasj_data.dir/dataset.cc.o" "gcc" "src/data/CMakeFiles/hasj_data.dir/dataset.cc.o.d"
  "/root/repo/src/data/generator.cc" "src/data/CMakeFiles/hasj_data.dir/generator.cc.o" "gcc" "src/data/CMakeFiles/hasj_data.dir/generator.cc.o.d"
  "/root/repo/src/data/io.cc" "src/data/CMakeFiles/hasj_data.dir/io.cc.o" "gcc" "src/data/CMakeFiles/hasj_data.dir/io.cc.o.d"
  "/root/repo/src/data/svg.cc" "src/data/CMakeFiles/hasj_data.dir/svg.cc.o" "gcc" "src/data/CMakeFiles/hasj_data.dir/svg.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/index/CMakeFiles/hasj_index.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/geom/CMakeFiles/hasj_geom.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/common/CMakeFiles/hasj_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
