
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/algo/convex_hull.cc" "src/algo/CMakeFiles/hasj_algo.dir/convex_hull.cc.o" "gcc" "src/algo/CMakeFiles/hasj_algo.dir/convex_hull.cc.o.d"
  "/root/repo/src/algo/edge_index.cc" "src/algo/CMakeFiles/hasj_algo.dir/edge_index.cc.o" "gcc" "src/algo/CMakeFiles/hasj_algo.dir/edge_index.cc.o.d"
  "/root/repo/src/algo/point_in_polygon.cc" "src/algo/CMakeFiles/hasj_algo.dir/point_in_polygon.cc.o" "gcc" "src/algo/CMakeFiles/hasj_algo.dir/point_in_polygon.cc.o.d"
  "/root/repo/src/algo/point_locator.cc" "src/algo/CMakeFiles/hasj_algo.dir/point_locator.cc.o" "gcc" "src/algo/CMakeFiles/hasj_algo.dir/point_locator.cc.o.d"
  "/root/repo/src/algo/polygon_distance.cc" "src/algo/CMakeFiles/hasj_algo.dir/polygon_distance.cc.o" "gcc" "src/algo/CMakeFiles/hasj_algo.dir/polygon_distance.cc.o.d"
  "/root/repo/src/algo/polygon_intersect.cc" "src/algo/CMakeFiles/hasj_algo.dir/polygon_intersect.cc.o" "gcc" "src/algo/CMakeFiles/hasj_algo.dir/polygon_intersect.cc.o.d"
  "/root/repo/src/algo/segment_tests.cc" "src/algo/CMakeFiles/hasj_algo.dir/segment_tests.cc.o" "gcc" "src/algo/CMakeFiles/hasj_algo.dir/segment_tests.cc.o.d"
  "/root/repo/src/algo/simplicity.cc" "src/algo/CMakeFiles/hasj_algo.dir/simplicity.cc.o" "gcc" "src/algo/CMakeFiles/hasj_algo.dir/simplicity.cc.o.d"
  "/root/repo/src/algo/triangulate.cc" "src/algo/CMakeFiles/hasj_algo.dir/triangulate.cc.o" "gcc" "src/algo/CMakeFiles/hasj_algo.dir/triangulate.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/index/CMakeFiles/hasj_index.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/geom/CMakeFiles/hasj_geom.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/common/CMakeFiles/hasj_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
