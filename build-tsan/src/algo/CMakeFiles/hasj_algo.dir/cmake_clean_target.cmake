file(REMOVE_RECURSE
  "libhasj_algo.a"
)
