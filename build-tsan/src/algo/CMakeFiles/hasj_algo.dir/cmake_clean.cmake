file(REMOVE_RECURSE
  "CMakeFiles/hasj_algo.dir/convex_hull.cc.o"
  "CMakeFiles/hasj_algo.dir/convex_hull.cc.o.d"
  "CMakeFiles/hasj_algo.dir/edge_index.cc.o"
  "CMakeFiles/hasj_algo.dir/edge_index.cc.o.d"
  "CMakeFiles/hasj_algo.dir/point_in_polygon.cc.o"
  "CMakeFiles/hasj_algo.dir/point_in_polygon.cc.o.d"
  "CMakeFiles/hasj_algo.dir/point_locator.cc.o"
  "CMakeFiles/hasj_algo.dir/point_locator.cc.o.d"
  "CMakeFiles/hasj_algo.dir/polygon_distance.cc.o"
  "CMakeFiles/hasj_algo.dir/polygon_distance.cc.o.d"
  "CMakeFiles/hasj_algo.dir/polygon_intersect.cc.o"
  "CMakeFiles/hasj_algo.dir/polygon_intersect.cc.o.d"
  "CMakeFiles/hasj_algo.dir/segment_tests.cc.o"
  "CMakeFiles/hasj_algo.dir/segment_tests.cc.o.d"
  "CMakeFiles/hasj_algo.dir/simplicity.cc.o"
  "CMakeFiles/hasj_algo.dir/simplicity.cc.o.d"
  "CMakeFiles/hasj_algo.dir/triangulate.cc.o"
  "CMakeFiles/hasj_algo.dir/triangulate.cc.o.d"
  "libhasj_algo.a"
  "libhasj_algo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hasj_algo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
