# Empty dependencies file for hasj_algo.
# This may be replaced when dependencies are built.
