file(REMOVE_RECURSE
  "CMakeFiles/hasj_common.dir/stats.cc.o"
  "CMakeFiles/hasj_common.dir/stats.cc.o.d"
  "CMakeFiles/hasj_common.dir/status.cc.o"
  "CMakeFiles/hasj_common.dir/status.cc.o.d"
  "CMakeFiles/hasj_common.dir/thread_pool.cc.o"
  "CMakeFiles/hasj_common.dir/thread_pool.cc.o.d"
  "libhasj_common.a"
  "libhasj_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hasj_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
