file(REMOVE_RECURSE
  "libhasj_common.a"
)
