# Empty dependencies file for hasj_common.
# This may be replaced when dependencies are built.
