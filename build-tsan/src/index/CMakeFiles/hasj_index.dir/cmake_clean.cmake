file(REMOVE_RECURSE
  "CMakeFiles/hasj_index.dir/rtree.cc.o"
  "CMakeFiles/hasj_index.dir/rtree.cc.o.d"
  "libhasj_index.a"
  "libhasj_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hasj_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
