# Empty dependencies file for hasj_index.
# This may be replaced when dependencies are built.
