file(REMOVE_RECURSE
  "libhasj_index.a"
)
