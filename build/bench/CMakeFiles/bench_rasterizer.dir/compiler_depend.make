# Empty compiler generated dependencies file for bench_rasterizer.
# This may be replaced when dependencies are built.
