file(REMOVE_RECURSE
  "CMakeFiles/bench_rasterizer.dir/bench_rasterizer.cc.o"
  "CMakeFiles/bench_rasterizer.dir/bench_rasterizer.cc.o.d"
  "bench_rasterizer"
  "bench_rasterizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rasterizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
