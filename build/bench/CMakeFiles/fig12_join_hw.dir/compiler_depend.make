# Empty compiler generated dependencies file for fig12_join_hw.
# This may be replaced when dependencies are built.
