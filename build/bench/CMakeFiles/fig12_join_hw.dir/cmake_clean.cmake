file(REMOVE_RECURSE
  "CMakeFiles/fig12_join_hw.dir/fig12_join_hw.cc.o"
  "CMakeFiles/fig12_join_hw.dir/fig12_join_hw.cc.o.d"
  "fig12_join_hw"
  "fig12_join_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_join_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
