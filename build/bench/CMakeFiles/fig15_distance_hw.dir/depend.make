# Empty dependencies file for fig15_distance_hw.
# This may be replaced when dependencies are built.
