file(REMOVE_RECURSE
  "CMakeFiles/fig15_distance_hw.dir/fig15_distance_hw.cc.o"
  "CMakeFiles/fig15_distance_hw.dir/fig15_distance_hw.cc.o.d"
  "fig15_distance_hw"
  "fig15_distance_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_distance_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
