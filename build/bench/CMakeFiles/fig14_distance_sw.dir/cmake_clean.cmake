file(REMOVE_RECURSE
  "CMakeFiles/fig14_distance_sw.dir/fig14_distance_sw.cc.o"
  "CMakeFiles/fig14_distance_sw.dir/fig14_distance_sw.cc.o.d"
  "fig14_distance_sw"
  "fig14_distance_sw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_distance_sw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
