# Empty compiler generated dependencies file for fig14_distance_sw.
# This may be replaced when dependencies are built.
