# Empty dependencies file for fig16_distance_vs_d.
# This may be replaced when dependencies are built.
