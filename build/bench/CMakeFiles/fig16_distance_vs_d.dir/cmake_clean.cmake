file(REMOVE_RECURSE
  "CMakeFiles/fig16_distance_vs_d.dir/fig16_distance_vs_d.cc.o"
  "CMakeFiles/fig16_distance_vs_d.dir/fig16_distance_vs_d.cc.o.d"
  "fig16_distance_vs_d"
  "fig16_distance_vs_d.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_distance_vs_d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
