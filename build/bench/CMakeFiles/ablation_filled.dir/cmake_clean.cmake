file(REMOVE_RECURSE
  "CMakeFiles/ablation_filled.dir/ablation_filled.cc.o"
  "CMakeFiles/ablation_filled.dir/ablation_filled.cc.o.d"
  "ablation_filled"
  "ablation_filled.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_filled.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
