# Empty dependencies file for ablation_filled.
# This may be replaced when dependencies are built.
