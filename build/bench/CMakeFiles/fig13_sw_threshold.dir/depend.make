# Empty dependencies file for fig13_sw_threshold.
# This may be replaced when dependencies are built.
