file(REMOVE_RECURSE
  "CMakeFiles/fig13_sw_threshold.dir/fig13_sw_threshold.cc.o"
  "CMakeFiles/fig13_sw_threshold.dir/fig13_sw_threshold.cc.o.d"
  "fig13_sw_threshold"
  "fig13_sw_threshold.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_sw_threshold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
