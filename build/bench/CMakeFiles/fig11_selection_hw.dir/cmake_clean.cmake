file(REMOVE_RECURSE
  "CMakeFiles/fig11_selection_hw.dir/fig11_selection_hw.cc.o"
  "CMakeFiles/fig11_selection_hw.dir/fig11_selection_hw.cc.o.d"
  "fig11_selection_hw"
  "fig11_selection_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_selection_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
