# Empty dependencies file for fig11_selection_hw.
# This may be replaced when dependencies are built.
