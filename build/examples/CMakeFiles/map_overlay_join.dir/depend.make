# Empty dependencies file for map_overlay_join.
# This may be replaced when dependencies are built.
