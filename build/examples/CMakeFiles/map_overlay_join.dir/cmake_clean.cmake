file(REMOVE_RECURSE
  "CMakeFiles/map_overlay_join.dir/map_overlay_join.cpp.o"
  "CMakeFiles/map_overlay_join.dir/map_overlay_join.cpp.o.d"
  "map_overlay_join"
  "map_overlay_join.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/map_overlay_join.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
