file(REMOVE_RECURSE
  "CMakeFiles/gis_selection.dir/gis_selection.cpp.o"
  "CMakeFiles/gis_selection.dir/gis_selection.cpp.o.d"
  "gis_selection"
  "gis_selection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gis_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
