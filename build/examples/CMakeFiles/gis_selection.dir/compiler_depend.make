# Empty compiler generated dependencies file for gis_selection.
# This may be replaced when dependencies are built.
