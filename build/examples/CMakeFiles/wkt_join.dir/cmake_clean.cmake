file(REMOVE_RECURSE
  "CMakeFiles/wkt_join.dir/wkt_join.cpp.o"
  "CMakeFiles/wkt_join.dir/wkt_join.cpp.o.d"
  "wkt_join"
  "wkt_join.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wkt_join.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
