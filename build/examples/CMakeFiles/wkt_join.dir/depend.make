# Empty dependencies file for wkt_join.
# This may be replaced when dependencies are built.
