file(REMOVE_RECURSE
  "CMakeFiles/render_svg.dir/render_svg.cpp.o"
  "CMakeFiles/render_svg.dir/render_svg.cpp.o.d"
  "render_svg"
  "render_svg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/render_svg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
