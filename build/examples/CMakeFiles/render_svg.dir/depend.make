# Empty dependencies file for render_svg.
# This may be replaced when dependencies are built.
