# Empty compiler generated dependencies file for proximity_join.
# This may be replaced when dependencies are built.
