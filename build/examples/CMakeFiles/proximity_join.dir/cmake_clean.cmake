file(REMOVE_RECURSE
  "CMakeFiles/proximity_join.dir/proximity_join.cpp.o"
  "CMakeFiles/proximity_join.dir/proximity_join.cpp.o.d"
  "proximity_join"
  "proximity_join.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/proximity_join.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
