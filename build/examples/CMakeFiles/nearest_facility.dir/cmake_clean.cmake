file(REMOVE_RECURSE
  "CMakeFiles/nearest_facility.dir/nearest_facility.cpp.o"
  "CMakeFiles/nearest_facility.dir/nearest_facility.cpp.o.d"
  "nearest_facility"
  "nearest_facility.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nearest_facility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
