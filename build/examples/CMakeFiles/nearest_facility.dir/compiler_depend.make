# Empty compiler generated dependencies file for nearest_facility.
# This may be replaced when dependencies are built.
