#ifndef HASJ_FILTER_INTERIOR_FILTER_H_
#define HASJ_FILTER_INTERIOR_FILTER_H_

#include <cstdint>
#include <vector>

#include "geom/box.h"
#include "geom/polygon.h"

namespace hasj::filter {

// Interior filter (Badawy & Aref [2]): partitions the query polygon's MBR
// into 2^level x 2^level tiles and keeps the tiles completely inside the
// polygon as an interior approximation (paper Figure 9(a)). A candidate
// whose MBR is fully covered by interior tiles is a guaranteed positive for
// the intersection predicate (the object lies inside the query polygon), so
// it can skip geometry comparison. The filter never produces negatives.
//
// Construction cost is the "interior filter overhead" of Figure 10; it is
// amortized over all candidates of one selection query.
class InteriorFilter {
 public:
  InteriorFilter(const geom::Polygon& query, int tiling_level);

  int tiling_level() const { return level_; }
  int grid_size() const { return n_; }
  int64_t interior_tile_count() const { return interior_count_; }

  // True: candidate definitely intersects the query polygon.
  // False: undecided (candidate proceeds to geometry comparison).
  bool IdentifiesPositive(const geom::Box& candidate_mbr) const;

  // Whether tile (i, j) (column, row) is an interior tile; for tests.
  bool IsInteriorTile(int i, int j) const;

 private:
  // Inclusive prefix count of interior tiles in [0..i] x [0..j].
  int64_t PrefixCount(int i, int j) const {
    if (i < 0 || j < 0) return 0;
    return prefix_[static_cast<size_t>(j + 1) * (n_ + 1) + (i + 1)];
  }

  int level_;
  int n_;  // 2^level
  geom::Box mbr_;
  double tile_w_ = 0.0;
  double tile_h_ = 0.0;
  int64_t interior_count_ = 0;
  std::vector<uint8_t> interior_;  // row-major n_*n_
  std::vector<int64_t> prefix_;    // (n_+1)*(n_+1) 2D prefix sums
};

}  // namespace hasj::filter

#endif  // HASJ_FILTER_INTERIOR_FILTER_H_
