#include "filter/raster_signature.h"

#include <algorithm>
#include <cmath>

#include "algo/point_in_polygon.h"
#include "common/macros.h"
#include "geom/segment.h"

namespace hasj::filter {

RasterSignature::RasterSignature(const geom::Polygon& polygon, int grid_size)
    : n_(grid_size), mbr_(polygon.Bounds()) {
  HASJ_CHECK(grid_size >= 1 && grid_size <= 4096);
  cell_w_ = mbr_.Width() / n_;
  cell_h_ = mbr_.Height() / n_;
  cells_.assign(static_cast<size_t>(n_) * n_, 0);

  const auto cell_box = [&](int i, int j) {
    return geom::Box(mbr_.min_x + i * cell_w_, mbr_.min_y + j * cell_h_,
                     mbr_.min_x + (i + 1) * cell_w_,
                     mbr_.min_y + (j + 1) * cell_h_);
  };
  const auto clamp_idx = [&](double v, double lo, double cell) {
    if (cell <= 0.0) return 0;
    return std::clamp(static_cast<int>(std::floor((v - lo) / cell)), 0,
                      n_ - 1);
  };

  // Phase 1: boundary cells (exact conservative edge walk, as in the
  // interior filter).
  for (size_t e = 0; e < polygon.size(); ++e) {
    const geom::Segment seg = polygon.edge(e);
    const geom::Box sb = seg.Bounds();
    const int i0 = clamp_idx(sb.min_x, mbr_.min_x, cell_w_);
    const int i1 = clamp_idx(sb.max_x, mbr_.min_x, cell_w_);
    const int j0 = clamp_idx(sb.min_y, mbr_.min_y, cell_h_);
    const int j1 = clamp_idx(sb.max_y, mbr_.min_y, cell_h_);
    for (int j = j0; j <= j1; ++j) {
      for (int i = i0; i <= i1; ++i) {
        uint8_t& cell = cells_[static_cast<size_t>(j) * n_ + i];
        if (cell == static_cast<uint8_t>(Cell::kBoundary)) continue;
        if (geom::SegmentIntersectsBox(seg, cell_box(i, j))) {
          cell = static_cast<uint8_t>(Cell::kBoundary);
        }
      }
    }
  }

  // Phase 2: classify runs of non-boundary cells per row (status can only
  // change across a boundary cell; see InteriorFilter for the argument).
  // Degenerate rings (fewer than 3 vertices, or zero area — e.g. a folded
  // A-B-A spike) have no interior at all, and the crossing-number probe is
  // not trustworthy on them, so every occupied cell must stay kBoundary:
  // classifying a cell kInterior would let RegionAllInterior "prove" an
  // intersection that does not exist.
  const bool has_interior = polygon.size() >= 3 && polygon.Area() > 0.0;
  for (int j = 0; has_interior && j < n_; ++j) {
    int i = 0;
    while (i < n_) {
      if (cells_[static_cast<size_t>(j) * n_ + i] ==
          static_cast<uint8_t>(Cell::kBoundary)) {
        ++i;
        continue;
      }
      int end = i;
      while (end < n_ && cells_[static_cast<size_t>(j) * n_ + end] !=
                             static_cast<uint8_t>(Cell::kBoundary)) {
        ++end;
      }
      const bool inside = algo::LocatePoint(cell_box(i, j).Center(),
                                            polygon) ==
                          algo::PointLocation::kInside;
      if (inside) {
        for (int k = i; k < end; ++k) {
          cells_[static_cast<size_t>(j) * n_ + k] =
              static_cast<uint8_t>(Cell::kInterior);
        }
      }
      i = end;
    }
  }

  // Prefix sums for O(1) region queries.
  prefix_interior_.assign(static_cast<size_t>(n_ + 1) * (n_ + 1), 0);
  prefix_occupied_.assign(static_cast<size_t>(n_ + 1) * (n_ + 1), 0);
  for (int j = 0; j < n_; ++j) {
    for (int i = 0; i < n_; ++i) {
      const size_t idx = static_cast<size_t>(j + 1) * (n_ + 1) + (i + 1);
      const size_t up = static_cast<size_t>(j) * (n_ + 1) + (i + 1);
      const size_t left = static_cast<size_t>(j + 1) * (n_ + 1) + i;
      const size_t diag = static_cast<size_t>(j) * (n_ + 1) + i;
      const uint8_t c = cells_[static_cast<size_t>(j) * n_ + i];
      prefix_interior_[idx] =
          (c == static_cast<uint8_t>(Cell::kInterior) ? 1 : 0) +
          prefix_interior_[up] + prefix_interior_[left] -
          prefix_interior_[diag];
      prefix_occupied_[idx] =
          (c != static_cast<uint8_t>(Cell::kExterior) ? 1 : 0) +
          prefix_occupied_[up] + prefix_occupied_[left] -
          prefix_occupied_[diag];
    }
  }
}

RasterSignature::Cell RasterSignature::at(int i, int j) const {
  HASJ_CHECK(i >= 0 && i < n_ && j >= 0 && j < n_);
  return static_cast<Cell>(cells_[static_cast<size_t>(j) * n_ + i]);
}

int64_t RasterSignature::PrefixInterior(int i, int j) const {
  if (i < 0 || j < 0) return 0;
  return prefix_interior_[static_cast<size_t>(j + 1) * (n_ + 1) + (i + 1)];
}

int64_t RasterSignature::PrefixOccupied(int i, int j) const {
  if (i < 0 || j < 0) return 0;
  return prefix_occupied_[static_cast<size_t>(j + 1) * (n_ + 1) + (i + 1)];
}

void RasterSignature::CellRange(const geom::Box& region, int& i0, int& i1,
                                int& j0, int& j1) const {
  const auto idx = [&](double v, double lo, double cell) {
    if (cell <= 0.0) return 0;
    return std::clamp(static_cast<int>(std::floor((v - lo) / cell)), 0,
                      n_ - 1);
  };
  i0 = idx(region.min_x, mbr_.min_x, cell_w_);
  i1 = idx(region.max_x, mbr_.min_x, cell_w_);
  j0 = idx(region.min_y, mbr_.min_y, cell_h_);
  j1 = idx(region.max_y, mbr_.min_y, cell_h_);
}

bool RasterSignature::RegionAllInterior(const geom::Box& region) const {
  if (region.IsEmpty() || !mbr_.Contains(region)) return false;
  if (cell_w_ <= 0.0 || cell_h_ <= 0.0) return false;
  int i0, i1, j0, j1;
  CellRange(region, i0, i1, j0, j1);
  const int64_t interior = PrefixInterior(i1, j1) -
                           PrefixInterior(i0 - 1, j1) -
                           PrefixInterior(i1, j0 - 1) +
                           PrefixInterior(i0 - 1, j0 - 1);
  const int64_t total =
      static_cast<int64_t>(i1 - i0 + 1) * static_cast<int64_t>(j1 - j0 + 1);
  return interior == total;
}

bool RasterSignature::RegionMaybeOccupied(const geom::Box& region) const {
  const geom::Box overlap = mbr_.Intersection(region);
  if (overlap.IsEmpty()) return false;  // material lives inside the MBR
  int i0, i1, j0, j1;
  CellRange(overlap, i0, i1, j0, j1);
  const int64_t occupied = PrefixOccupied(i1, j1) -
                           PrefixOccupied(i0 - 1, j1) -
                           PrefixOccupied(i1, j0 - 1) +
                           PrefixOccupied(i0 - 1, j0 - 1);
  return occupied > 0;
}

RasterFilterDecision CompareRasterSignatures(const RasterSignature& a,
                                             const RasterSignature& b) {
  const geom::Box window = a.bounds().Intersection(b.bounds());
  if (window.IsEmpty()) return RasterFilterDecision::kDisjoint;

  // Walk A's cells inside the window. Each occupied A-cell region is probed
  // against B: if no occupied A-cell region may be occupied in B, the
  // polygons are disjoint (all material of both lies in occupied cells, and
  // any intersection point lies in the window). If some occupied A-cell
  // region lies entirely in B's interior, it carries A-material (a boundary
  // point or the whole cell) that is inside B, proving intersection.
  const int n = a.grid_size();
  const geom::Box& ab = a.bounds();
  const double cw = ab.Width() / n;
  const double ch = ab.Height() / n;
  const auto clamp_idx = [&](double v, double lo, double cell) {
    if (cell <= 0.0) return 0;
    return std::clamp(static_cast<int>(std::floor((v - lo) / cell)), 0,
                      n - 1);
  };
  const int i0 = clamp_idx(window.min_x, ab.min_x, cw);
  const int i1 = clamp_idx(window.max_x, ab.min_x, cw);
  const int j0 = clamp_idx(window.min_y, ab.min_y, ch);
  const int j1 = clamp_idx(window.max_y, ab.min_y, ch);

  bool any_contact = false;
  for (int j = j0; j <= j1; ++j) {
    for (int i = i0; i <= i1; ++i) {
      const RasterSignature::Cell cell = a.at(i, j);
      if (cell == RasterSignature::Cell::kExterior) continue;
      const geom::Box region(ab.min_x + i * cw, ab.min_y + j * ch,
                             ab.min_x + (i + 1) * cw,
                             ab.min_y + (j + 1) * ch);
      if (b.RegionAllInterior(region)) {
        return RasterFilterDecision::kIntersect;
      }
      if (!any_contact && b.RegionMaybeOccupied(region)) any_contact = true;
    }
  }
  return any_contact ? RasterFilterDecision::kUnknown
                     : RasterFilterDecision::kDisjoint;
}

}  // namespace hasj::filter
