#ifndef HASJ_FILTER_GEOMETRIC_FILTER_H_
#define HASJ_FILTER_GEOMETRIC_FILTER_H_

#include "geom/polygon.h"

namespace hasj::filter {

// Convex-hull geometric filter (Brinkhoff et al. [5], Table 1 of the
// paper): a pre-processing technique approximating each polygon by its
// convex hull. Disjoint hulls prove the polygons disjoint (false-hit
// detection); hull intersection is undecided. Implemented as an extension
// beyond the paper's evaluated runtime filters, for the filter-comparison
// ablation.
class GeometricFilter {
 public:
  explicit GeometricFilter(const geom::Polygon& polygon);

  const geom::Polygon& hull() const { return hull_; }

  // True: the underlying polygons are definitely disjoint.
  bool DefinitelyDisjoint(const GeometricFilter& other) const;

 private:
  geom::Polygon hull_;
};

}  // namespace hasj::filter

#endif  // HASJ_FILTER_GEOMETRIC_FILTER_H_
