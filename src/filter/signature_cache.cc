#include "filter/signature_cache.h"

#include <mutex>  // lint:allow(naked-mutex): std::once_flag / std::call_once only — per-slot build serialization, not a lock the analysis tracks

#include "common/macros.h"

namespace hasj::filter {

struct SignatureCache::Snapshot::State {
  struct Slot {
    std::once_flag once;
    std::unique_ptr<RasterSignature> signature;
  };

  int grid = 0;
  size_t count = 0;
  uint64_t epoch = 0;
  std::unique_ptr<Slot[]> slots;
};

SignatureCache::Snapshot::Snapshot(std::shared_ptr<State> state)
    : state_(std::move(state)) {}

int SignatureCache::Snapshot::grid() const { return state_->grid; }

const RasterSignature& SignatureCache::Snapshot::Get(
    size_t id, const geom::Polygon& polygon) const {
  HASJ_CHECK(id < state_->count);
  State::Slot& slot = state_->slots[id];
  std::call_once(slot.once, [&] {
    slot.signature = std::make_unique<RasterSignature>(polygon, state_->grid);
  });
  return *slot.signature;
}

SignatureCache::SignatureCache() = default;
SignatureCache::~SignatureCache() = default;

SignatureCache::Snapshot SignatureCache::Acquire(int grid, size_t count,
                                                 uint64_t epoch) const {
  HASJ_CHECK(grid > 0);
  MutexLock lock(&mu_);
  if (state_ == nullptr || state_->grid != grid || state_->count < count ||
      state_->epoch != epoch) {
    auto fresh = std::make_shared<Snapshot::State>();
    fresh->grid = grid;
    fresh->count = count;
    fresh->epoch = epoch;
    fresh->slots = std::make_unique<Snapshot::State::Slot[]>(count);
    state_ = std::move(fresh);
  }
  return Snapshot(state_);
}

}  // namespace hasj::filter
