#ifndef HASJ_FILTER_OBJECT_FILTERS_H_
#define HASJ_FILTER_OBJECT_FILTERS_H_

#include "geom/box.h"
#include "geom/polygon.h"

namespace hasj::filter {

// Distance upper-bound filters for the within-distance join (Chan [4]).
// Both return an upper bound U on the distance between the two objects;
// U <= D identifies the pair as a definite positive, skipping geometry
// comparison. Neither can produce a false positive.

// 0-Object filter: uses only the two MBRs. Since an object touches every
// side of its own MBR, min over side pairs of the max side-to-side distance
// bounds the object distance from above.
double ZeroObjectUpperBound(const geom::Box& a, const geom::Box& b);

// 1-Object filter: retrieves the actual geometry of one object (the paper
// uses the larger one) and bounds the distance against the other object's
// MBR: U = min over the MBR's sides s of max_{q in s} dist(q, boundary of
// p). The inner max is over-estimated with the 1-Lipschitz bound
// max <= max_i dist(sample_i, p) + gap/2, which keeps U a valid upper bound
// (DESIGN.md "Substitutions"); `samples_per_side` trades filter selectivity
// for cost.
double OneObjectUpperBound(const geom::Polygon& p, const geom::Box& other_mbr,
                           int samples_per_side = 5);

}  // namespace hasj::filter

#endif  // HASJ_FILTER_OBJECT_FILTERS_H_
