#ifndef HASJ_FILTER_RASTER_SIGNATURE_H_
#define HASJ_FILTER_RASTER_SIGNATURE_H_

#include <cstdint>
#include <vector>

#include "geom/box.h"
#include "geom/polygon.h"

namespace hasj::filter {

// Raster approximation of a polygon (Zimbrão & Souza's rasterization
// filter, [6] in the paper's Table 1): an N x N grid over the polygon's
// MBR classifying each cell as exterior, boundary (the polygon boundary
// passes through), or interior (cell completely inside). Built in
// O(edges x cells-per-edge + N^2); used as an intermediate filter that can
// prove either disjointness or intersection of a candidate pair without
// exact geometry comparison.
class RasterSignature {
 public:
  enum class Cell : uint8_t {
    kExterior = 0,
    kBoundary = 1,
    kInterior = 2,
  };

  RasterSignature(const geom::Polygon& polygon, int grid_size);

  int grid_size() const { return n_; }
  const geom::Box& bounds() const { return mbr_; }
  Cell at(int i, int j) const;

  // True iff the axis-aligned region is completely covered by interior
  // cells (hence completely inside the polygon). Conservative: false when
  // the region leaves the signature's bounds or touches non-interior cells.
  bool RegionAllInterior(const geom::Box& region) const;

  // True iff the region might contain polygon material (overlaps a boundary
  // or interior cell). False is a proof of emptiness.
  bool RegionMaybeOccupied(const geom::Box& region) const;

 private:
  // Inclusive 2D prefix counts over [0..i] x [0..j].
  int64_t PrefixInterior(int i, int j) const;
  int64_t PrefixOccupied(int i, int j) const;
  void CellRange(const geom::Box& region, int& i0, int& i1, int& j0,
                 int& j1) const;

  int n_;
  geom::Box mbr_;
  double cell_w_ = 0.0;
  double cell_h_ = 0.0;
  std::vector<uint8_t> cells_;
  std::vector<int64_t> prefix_interior_;
  std::vector<int64_t> prefix_occupied_;
};

enum class RasterFilterDecision {
  kDisjoint,   // proven: the polygons cannot intersect
  kIntersect,  // proven: the polygons intersect
  kUnknown,    // the pair needs exact geometry comparison
};

// Conservative pair decision by overlaying two signatures (their grids need
// not align). Exactness contract: kDisjoint and kIntersect are never wrong.
RasterFilterDecision CompareRasterSignatures(const RasterSignature& a,
                                             const RasterSignature& b);

}  // namespace hasj::filter

#endif  // HASJ_FILTER_RASTER_SIGNATURE_H_
