#ifndef HASJ_FILTER_SIGNATURE_CACHE_H_
#define HASJ_FILTER_SIGNATURE_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <memory>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "filter/raster_signature.h"
#include "geom/polygon.h"

namespace hasj::filter {

// Thread-safe, reset-correct lazy cache of per-object RasterSignatures for
// one grid size.
//
// A query run acquires a Snapshot for its grid before its filter stage;
// the snapshot pins the slot array, so a later (or concurrent) run that
// requests a different grid installs a fresh array without invalidating
// signatures the first run still references — the reset-correctness the
// old clear-and-rebuild-inside-const-Run scheme lacked. Slot builds are
// serialized per object with std::call_once, so concurrent workers of one
// run (or concurrent runs at the same grid) build each signature exactly
// once and never observe a half-built one.
class SignatureCache {
 public:
  class Snapshot {
   public:
    int grid() const;

    // The signature of object `id`, built from `polygon` on first use
    // (callers must pass the same polygon for the same id). Safe to call
    // concurrently for any ids, including the same id.
    const RasterSignature& Get(size_t id, const geom::Polygon& polygon) const;

   private:
    friend class SignatureCache;
    struct State;
    explicit Snapshot(std::shared_ptr<State> state);
    std::shared_ptr<State> state_;
  };

  SignatureCache();
  ~SignatureCache();

  // Snapshot for `grid` over objects [0, count) of dataset content version
  // `epoch` (data::Dataset::epoch); reuses the live slot array when both
  // match (the cross-query amortization the paper's pre-processing taxonomy
  // describes), otherwise installs a fresh one. Keying on the epoch is what
  // keeps an in-place dataset reload from serving signatures built from the
  // pre-reload polygons.
  Snapshot Acquire(int grid, size_t count, uint64_t epoch) const
      HASJ_EXCLUDES(mu_);

 private:
  mutable Mutex mu_;
  // The live slot array. mu_ guards the epoch-keyed swap of this pointer
  // only; the pointed-to State is immutable apart from its per-slot
  // call_once builds, which synchronize themselves.
  mutable std::shared_ptr<Snapshot::State> state_ HASJ_GUARDED_BY(mu_);
};

}  // namespace hasj::filter

#endif  // HASJ_FILTER_SIGNATURE_CACHE_H_
