#include "filter/interval_approx.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <utility>

#include "algo/point_in_polygon.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "geom/point.h"
#include "geom/segment.h"
#include "glsim/pixel_snap.h"
#include "glsim/raster.h"
#include "obs/names.h"

namespace hasj::filter {
namespace {

constexpr int kMaxGridBits = 12;
// Per-object scratch cap: an object whose MBR cell window exceeds this many
// cells stays unapproximated rather than allocating an unbounded local grid.
constexpr int64_t kMaxScratchCells = int64_t{1} << 22;
// Enumeration half-width margin, in grid units. The row-span rasterizer is
// only used to *enumerate candidate* cells (every mark is re-confirmed with
// the exact segment/box predicate), so a tiny widening costs a few spurious
// candidates and buys robustness against world->grid coordinate rounding.
constexpr double kEnumWidth = 1e-7;

// The dataset frame mapped onto the 2^bits x 2^bits cell grid. Grid
// coordinate g = (world - frame.min) / cell_size, so cell (gx, gy) covers
// the closed grid square [gx, gx+1] x [gy, gy+1].
struct GridFrame {
  geom::Box frame;
  int n = 0;
  double cell_w = 0.0;
  double cell_h = 0.0;
  double inv_cell_w = 0.0;
  double inv_cell_h = 0.0;

  double GridX(double x) const { return (x - frame.min_x) * inv_cell_w; }
  double GridY(double y) const { return (y - frame.min_y) * inv_cell_h; }
  geom::Box CellBox(int gx, int gy) const {
    return geom::Box(frame.min_x + gx * cell_w, frame.min_y + gy * cell_h,
                     frame.min_x + (gx + 1) * cell_w,
                     frame.min_y + (gy + 1) * cell_h);
  }
};

GridFrame MakeGridFrame(const geom::Box& frame, int grid_bits) {
  GridFrame gf;
  gf.frame = frame;
  gf.n = 1 << grid_bits;
  gf.cell_w = frame.Width() / gf.n;
  gf.cell_h = frame.Height() / gf.n;
  gf.inv_cell_w = 1.0 / gf.cell_w;
  gf.inv_cell_h = 1.0 / gf.cell_h;
  return gf;
}

// Conservative closed grid-coordinate interval [g0, g1] -> closed cell
// index range: the same snap formula as glsim raster_internal's
// EmitRowSpanCols (cell c covers [c, c+1]; rounding only ever widens the
// range), clamped to the grid.
std::pair<int, int> CellRange(double g0, double g1, int n) {
  const double tol = 1e-12 * (std::fabs(g0) + std::fabs(g1)) + 1e-300;
  const int c0 = glsim::PixelFromCoord(std::ceil(g0 - tol) - 1.0, 0, n - 1);
  const int c1 = glsim::PixelFromCoord(std::floor(g1 + tol), 0, n - 1);
  return {c0, c1};
}

void AppendCell(std::vector<CellInterval>& list, uint32_t h) {
  if (!list.empty() && list.back().hi == h) {
    ++list.back().hi;
  } else {
    list.push_back({h, h + 1});
  }
}

// Rasterizes one polygon onto the global grid and compresses the marked
// cells into Hilbert-interval lists. Returns approximated == false (an
// empty, always-inconclusive approximation) when the object exceeds the
// scratch cap or its interval lists exceed `max_bytes`.
//
// Cell classification is honest in both directions (the header explains why
// HIT soundness needs more than superset-conservative marking):
//   PARTIAL: the glsim row-span rasterizer enumerates a guaranteed superset
//     of the cells each boundary edge touches; the exact SegmentIntersectsBox
//     predicate confirms genuine closed contact before the mark.
//   FULL: within a row, a maximal run of non-PARTIAL window cells has no
//     boundary contact, so the run is connected and uniformly interior or
//     exterior; one exact LocatePoint probe of the first cell's center
//     decides the whole run. Degenerate polygons (fewer than 3 vertices or
//     zero area) have no interior and never produce FULL cells.
ObjectIntervals BuildObjectIntervals(const geom::Polygon& polygon,
                                     const GridFrame& gf, int grid_bits,
                                     int64_t max_bytes) {
  ObjectIntervals out;
  if (polygon.size() == 0) return out;
  const geom::Box& mbr = polygon.Bounds();
  const auto [cx0, cx1] =
      CellRange(gf.GridX(mbr.min_x), gf.GridX(mbr.max_x), gf.n);
  const auto [cy0, cy1] =
      CellRange(gf.GridY(mbr.min_y), gf.GridY(mbr.max_y), gf.n);
  const int vw = cx1 - cx0 + 1;
  const int vh = cy1 - cy0 + 1;
  if (static_cast<int64_t>(vw) * vh > kMaxScratchCells) return out;

  enum : uint8_t { kEmpty = 0, kPartial = 1, kFull = 2 };
  std::vector<uint8_t> cells(static_cast<size_t>(vw) * vh, kEmpty);

  for (size_t e = 0; e < polygon.size(); ++e) {
    const geom::Segment seg = polygon.edge(e);
    const geom::Point la{gf.GridX(seg.a.x) - cx0, gf.GridY(seg.a.y) - cy0};
    const geom::Point lb{gf.GridX(seg.b.x) - cx0, gf.GridY(seg.b.y) - cy0};
    auto emit_row = [&](int c0, int c1, int y) {
      for (int c = c0; c <= c1; ++c) {
        uint8_t& cell = cells[static_cast<size_t>(y) * vw + c];
        if (cell == kPartial) continue;
        if (geom::SegmentIntersectsBox(seg, gf.CellBox(cx0 + c, cy0 + y))) {
          cell = kPartial;
        }
      }
      return false;  // no early exit: every candidate row matters
    };
    glsim::RasterizeLineAARowSpans(la, lb, kEnumWidth, vw, vh, emit_row);
  }

  const bool has_interior = polygon.size() >= 3 && polygon.Area() > 0.0;
  if (has_interior) {
    for (int y = 0; y < vh; ++y) {
      uint8_t* row = cells.data() + static_cast<size_t>(y) * vw;
      int x = 0;
      while (x < vw) {
        if (row[x] == kPartial) {
          ++x;
          continue;
        }
        int run_end = x;
        while (run_end < vw && row[run_end] != kPartial) ++run_end;
        const geom::Point probe = gf.CellBox(cx0 + x, cy0 + y).Center();
        if (algo::LocatePoint(probe, polygon) ==
            algo::PointLocation::kInside) {
          std::fill(row + x, row + run_end, uint8_t{kFull});
        }
        x = run_end;
      }
    }
  }

  std::vector<std::pair<uint32_t, uint8_t>> marked;
  for (int y = 0; y < vh; ++y) {
    for (int x = 0; x < vw; ++x) {
      const uint8_t kind = cells[static_cast<size_t>(y) * vw + x];
      if (kind != kEmpty) {
        marked.emplace_back(HilbertIndex(grid_bits, static_cast<uint32_t>(cx0 + x),
                                         static_cast<uint32_t>(cy0 + y)),
                            kind);
      }
    }
  }
  std::sort(marked.begin(), marked.end());
  for (const auto& [h, kind] : marked) {
    AppendCell(out.all, h);
    if (kind == kFull) AppendCell(out.full, h);
  }
  const auto bytes = static_cast<int64_t>(
      (out.all.size() + out.full.size()) * sizeof(CellInterval));
  if (bytes > max_bytes) {
    out.all.clear();
    out.full.clear();
    return out;
  }
  out.approximated = true;
  return out;
}

bool IntervalsOverlap(const std::vector<CellInterval>& a,
                      const std::vector<CellInterval>& b) {
  size_t i = 0;
  size_t j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i].hi <= b[j].lo) {
      ++i;
    } else if (b[j].hi <= a[i].lo) {
      ++j;
    } else {
      return true;
    }
  }
  return false;
}

}  // namespace

uint32_t HilbertIndex(int bits, uint32_t x, uint32_t y) {
  uint32_t d = 0;
  for (uint32_t s = 1u << (bits - 1); s > 0; s >>= 1) {
    const uint32_t rx = (x & s) != 0 ? 1 : 0;
    const uint32_t ry = (y & s) != 0 ? 1 : 0;
    d += s * s * ((3 * rx) ^ ry);
    if (ry == 0) {  // rotate the quadrant
      if (rx == 1) {
        x = s - 1 - x;
        y = s - 1 - y;
      }
      std::swap(x, y);
    }
  }
  return d;
}

IntervalVerdict DecidePair(const ObjectIntervals& a,
                           const ObjectIntervals& b) {
  if (!a.approximated || !b.approximated) return IntervalVerdict::kInconclusive;
  if (!IntervalsOverlap(a.all, b.all)) return IntervalVerdict::kMiss;
  if (IntervalsOverlap(a.full, b.all) || IntervalsOverlap(a.all, b.full)) {
    return IntervalVerdict::kHit;
  }
  return IntervalVerdict::kInconclusive;
}

ObjectIntervals IntervalApprox::ApproximateObject(
    const geom::Polygon& polygon) const {
  if (frame_.IsEmpty() || frame_.Width() <= 0.0 || frame_.Height() <= 0.0) {
    return {};
  }
  // No byte budget for ad-hoc query objects: there is exactly one per
  // query, and the scratch cap inside BuildObjectIntervals still bounds it.
  return BuildObjectIntervals(polygon, MakeGridFrame(frame_, grid_bits_),
                              grid_bits_, std::numeric_limits<int64_t>::max());
}

Result<IntervalApprox> BuildIntervalApprox(
    std::span<const geom::Polygon> polygons, const geom::Box& frame,
    const IntervalApproxConfig& config) {
  if (config.grid_bits < 1 || config.grid_bits > kMaxGridBits) {
    return Status::InvalidArgument("interval grid_bits must be in [1, 12]");
  }
  if (config.memory_budget_bytes < 0) {
    return Status::InvalidArgument("interval memory budget must be >= 0");
  }
  Stopwatch watch;
  obs::ManualSpan span;
  span.Start(config.trace, "interval-build", "filter");
  IntervalApprox approx;
  approx.grid_bits_ = config.grid_bits;
  approx.frame_ = frame;
  approx.objects_.resize(polygons.size());
  approx.stats_.objects = static_cast<int64_t>(polygons.size());
  const bool frame_ok =
      !frame.IsEmpty() && frame.Width() > 0.0 && frame.Height() > 0.0;
  if (frame_ok && !polygons.empty()) {
    const GridFrame gf = MakeGridFrame(frame, config.grid_bits);
    const int64_t share = std::max<int64_t>(
        256,
        config.memory_budget_bytes / static_cast<int64_t>(polygons.size()));
    ThreadPool pool(config.num_threads);
    std::vector<ObjectIntervals>* objects = &approx.objects_;
    const Status built = pool.ParallelFor(
        static_cast<int64_t>(polygons.size()), /*grain=*/16,
        [&polygons, &gf, &config, share, objects](int64_t begin, int64_t end,
                                                  int /*worker*/) {
          for (int64_t id = begin; id < end; ++id) {
            if (config.faults != nullptr &&
                !config.faults->Check(FaultSite::kDatasetLoad).ok()) {
              continue;  // degrade to unapproximated, never fail the build
            }
            (*objects)[static_cast<size_t>(id)] = BuildObjectIntervals(
                polygons[static_cast<size_t>(id)], gf, config.grid_bits,
                share);
          }
        });
    if (!built.ok()) {
      span.End();
      return built;
    }
  }
  for (const ObjectIntervals& obj : approx.objects_) {
    if (!obj.approximated) ++approx.stats_.unapproximated;
    approx.stats_.interval_count +=
        static_cast<int64_t>(obj.all.size() + obj.full.size());
  }
  approx.stats_.build_ms = watch.ElapsedMillis();
  span.End();
  if (config.metrics != nullptr) {
    config.metrics->GetGauge(obs::kIntervalBuildMs).Add(approx.stats_.build_ms);
    config.metrics->GetCounter(obs::kIntervalObjects)
        .Add(approx.stats_.objects);
    config.metrics->GetCounter(obs::kIntervalUnapproximated)
        .Add(approx.stats_.unapproximated);
    config.metrics->GetCounter(obs::kIntervalIntervals)
        .Add(approx.stats_.interval_count);
  }
  return approx;
}

Result<std::shared_ptr<const IntervalApprox>> IntervalApproxCache::Acquire(
    std::span<const geom::Polygon> polygons, const geom::Box& frame,
    uint64_t epoch, const IntervalApproxConfig& config) const {
  MutexLock lock(&mu_);
  const bool fresh = cached_ != nullptr && grid_bits_ == config.grid_bits &&
                     budget_ == config.memory_budget_bytes &&
                     epoch_ == epoch && count_ == polygons.size() &&
                     frame_ == frame;
  if (!fresh) {
    HASJ_ASSIGN_OR_RETURN(IntervalApprox built,
                          BuildIntervalApprox(polygons, frame, config));
    cached_ = std::make_shared<const IntervalApprox>(std::move(built));
    grid_bits_ = config.grid_bits;
    budget_ = config.memory_budget_bytes;
    epoch_ = epoch;
    count_ = polygons.size();
    frame_ = frame;
  }
  return cached_;
}

}  // namespace hasj::filter
