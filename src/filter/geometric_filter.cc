#include "filter/geometric_filter.h"

#include "algo/convex_hull.h"
#include "algo/polygon_intersect.h"

namespace hasj::filter {

GeometricFilter::GeometricFilter(const geom::Polygon& polygon)
    : hull_(algo::ConvexHullPolygon(polygon)) {}

bool GeometricFilter::DefinitelyDisjoint(const GeometricFilter& other) const {
  if (hull_.size() < 3 || other.hull_.size() < 3) return false;  // degenerate
  return !algo::PolygonsIntersect(hull_, other.hull_);
}

}  // namespace hasj::filter
