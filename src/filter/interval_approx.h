#ifndef HASJ_FILTER_INTERVAL_APPROX_H_
#define HASJ_FILTER_INTERVAL_APPROX_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/fault.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "common/status.h"
#include "geom/box.h"
#include "geom/polygon.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace hasj::filter {

// Dataset-level raster-interval object approximation (DESIGN.md §12).
//
// Each object is rasterized once, at load time, onto a global
// 2^grid_bits × 2^grid_bits grid covering the dataset frame. Cells are
// classified PARTIAL (the cell's closed box touches the polygon boundary)
// or FULL (the cell's closed box lies entirely inside the polygon), mapped
// to a Hilbert space-filling-curve index, and stored as two sorted lists of
// half-open index intervals: `all` (FULL ∪ PARTIAL) and `full`.
//
// A pair of approximated objects can then often be *decided* without exact
// refinement:
//   - disjoint `all` lists  ⇒ TRUE MISS (no shared cell, no shared point);
//   - `full`(a) ∩ `all`(b) or `all`(a) ∩ `full`(b) ⇒ TRUE HIT (a FULL cell
//     of one object meets a cell the other object genuinely occupies);
//   - anything else ⇒ INCONCLUSIVE, routed to the hardware testers.
//
// Conservativeness depends on *both* directions of the cell classification
// being honest, not merely superset-conservative:
//   - MISS needs `all` to cover every cell the object touches (no misses);
//   - HIT needs every marked cell to be genuinely occupied (no spurious
//     marks — a snap-tolerance cell that does not actually touch the
//     boundary would manufacture fake intersections).
// The builder therefore uses the glsim row-span rasterizer (which is a
// guaranteed superset, DESIGN.md §6) only to *enumerate candidate* cells,
// and confirms each candidate with the exact segment/box predicate before
// marking it PARTIAL. FULL runs are probed with the exact point-location
// test. See BuildObjectIntervals in interval_approx.cc.

// Hilbert curve index of cell (x, y) on a 2^bits × 2^bits grid. Classic
// iterative xy→d mapping; bijective over the grid, so sorted interval
// lists over the index are a lossless cell-set encoding with good spatial
// locality (neighbouring cells tend to fall in the same interval).
uint32_t HilbertIndex(int bits, uint32_t x, uint32_t y);

// Half-open run [lo, hi) of Hilbert cell indices.
struct CellInterval {
  uint32_t lo = 0;
  uint32_t hi = 0;
};

// One object's interval approximation. `approximated == false` means the
// object opted out (degenerate frame, memory budget, scratch cap, or an
// injected dataset-load fault) and every pair involving it is
// INCONCLUSIVE — never wrong, just undecided.
struct ObjectIntervals {
  std::vector<CellInterval> all;   // FULL ∪ PARTIAL cells, sorted, disjoint
  std::vector<CellInterval> full;  // FULL cells only, sorted, disjoint
  bool approximated = false;
};

enum class IntervalVerdict {
  kHit,           // definitely intersect: skip refinement, emit the pair
  kMiss,          // definitely disjoint: drop the pair
  kInconclusive,  // intervals cannot decide: refine as usual
};

// Joint interval decision for a candidate pair. O(|a| + |b|) two-pointer
// merges over the sorted lists. Either side unapproximated ⇒ kInconclusive.
IntervalVerdict DecidePair(const ObjectIntervals& a, const ObjectIntervals& b);

struct IntervalApproxConfig {
  // Grid is 2^grid_bits per side; capped at 12 so a cell index fits a
  // uint32 and a full-height object window stays within the glsim
  // rasterizer's RowSpans::kMaxRows scratch rows.
  int grid_bits = 10;
  // Whole-dataset budget; each object gets an equal byte share and objects
  // whose interval lists exceed it stay unapproximated.
  int64_t memory_budget_bytes = 64 << 20;
  // Degree of build parallelism (ThreadPool::ResolveThreadCount semantics:
  // <= 0 means hardware concurrency, 1 means inline).
  int num_threads = 1;
  // Optional instrumentation; all may be null. Faults are checked once per
  // object at FaultSite::kDatasetLoad; a faulted object degrades to
  // unapproximated instead of failing the build.
  FaultInjector* faults = nullptr;
  obs::TraceSession* trace = nullptr;
  obs::Registry* metrics = nullptr;
};

struct IntervalBuildStats {
  int64_t objects = 0;
  int64_t unapproximated = 0;  // degenerate frame / budget / fault opt-outs
  int64_t interval_count = 0;  // total CellInterval records stored
  double build_ms = 0.0;
};

// Immutable per-dataset approximation: one ObjectIntervals per input
// polygon, in input order, plus the frame/grid needed to approximate query
// objects against the same cells.
class IntervalApprox {
 public:
  int grid_bits() const { return grid_bits_; }
  const geom::Box& frame() const { return frame_; }
  size_t size() const { return objects_.size(); }
  const ObjectIntervals& object(size_t id) const { return objects_[id]; }
  const IntervalBuildStats& stats() const { return stats_; }

  // Approximates an ad-hoc (query) object against this grid. The window is
  // clipped to the frame, which is sound: every dataset object lies inside
  // the frame, so any intersection point falls in an in-frame cell that
  // both sides cover.
  ObjectIntervals ApproximateObject(const geom::Polygon& polygon) const;

 private:
  friend Result<IntervalApprox> BuildIntervalApprox(
      std::span<const geom::Polygon> polygons, const geom::Box& frame,
      const IntervalApproxConfig& config);

  int grid_bits_ = 0;
  geom::Box frame_;
  std::vector<ObjectIntervals> objects_;
  IntervalBuildStats stats_;
};

// Builds the approximation for a dataset snapshot. Parallelized through the
// shared ThreadPool; per-object failures degrade to unapproximated, only
// infrastructure errors (worker exceptions, invalid config) surface as a
// non-OK status.
[[nodiscard]] Result<IntervalApprox> BuildIntervalApprox(
    std::span<const geom::Polygon> polygons, const geom::Box& frame,
    const IntervalApproxConfig& config);

// Per-pipeline build-once cache, mirroring SignatureCache: the first query
// with intervals enabled builds the approximation, later queries share the
// snapshot. The key includes the dataset epoch (data::Dataset::epoch), so
// an in-place reload invalidates the snapshot instead of serving intervals
// for polygons that no longer exist.
class IntervalApproxCache {
 public:
  // Takes mu_ itself — and holds it across a cache-miss build, so
  // concurrent queries at the same key build the approximation once.
  [[nodiscard]] Result<std::shared_ptr<const IntervalApprox>> Acquire(
      std::span<const geom::Polygon> polygons, const geom::Box& frame,
      uint64_t epoch, const IntervalApproxConfig& config) const
      HASJ_EXCLUDES(mu_);

 private:
  mutable Mutex mu_;
  // The cached snapshot plus the key it was built under (grid, budget,
  // dataset epoch, object count, frame): mu_ guards the swap-on-key-change;
  // the pointed-to IntervalApprox is immutable once published.
  mutable std::shared_ptr<const IntervalApprox> cached_ HASJ_GUARDED_BY(mu_);
  mutable int grid_bits_ HASJ_GUARDED_BY(mu_) = -1;
  mutable int64_t budget_ HASJ_GUARDED_BY(mu_) = -1;
  mutable uint64_t epoch_ HASJ_GUARDED_BY(mu_) = 0;
  mutable size_t count_ HASJ_GUARDED_BY(mu_) = 0;
  mutable geom::Box frame_ HASJ_GUARDED_BY(mu_);
};

}  // namespace hasj::filter

#endif  // HASJ_FILTER_INTERVAL_APPROX_H_
