#include "filter/object_filters.h"

#include <algorithm>

#include "common/macros.h"
#include "geom/segment.h"

namespace hasj::filter {

double ZeroObjectUpperBound(const geom::Box& a, const geom::Box& b) {
  return geom::MinMaxDistance(a, b);
}

namespace {

// Upper bound on the distance from a point to the polygon boundary: the
// minimum over a strided subset of edges (a subset of the boundary can only
// raise the minimum, so the bound stays admissible). The cap keeps the
// filter O(1)-ish per candidate even for polygons with tens of thousands of
// edges, at the price of a slightly weaker bound.
constexpr size_t kMaxEdgesConsidered = 64;

double DistanceToBoundary(geom::Point q, const geom::Polygon& p) {
  const size_t n = p.size();
  const size_t stride = n <= kMaxEdgesConsidered ? 1 : n / kMaxEdgesConsidered;
  double best = geom::Distance(q, p.edge(0));
  for (size_t i = stride; i < n; i += stride) {
    best = std::min(best, geom::Distance(q, p.edge(i)));
  }
  return best;
}

// Lipschitz over-estimate of max_{q in [a,b]} dist(q, boundary of p).
double MaxDistanceAlongSide(geom::Point a, geom::Point b,
                            const geom::Polygon& p, int samples) {
  const double len = geom::Distance(a, b);
  const double gap = len / (samples - 1);
  double max_sampled = 0.0;
  for (int i = 0; i < samples; ++i) {
    const double t = static_cast<double>(i) / (samples - 1);
    const geom::Point q = a + (b - a) * t;
    max_sampled = std::max(max_sampled, DistanceToBoundary(q, p));
  }
  // dist(., boundary) is 1-Lipschitz, so between samples it can exceed the
  // sampled maximum by at most half the sample gap.
  return max_sampled + gap * 0.5;
}

}  // namespace

double OneObjectUpperBound(const geom::Polygon& p, const geom::Box& other_mbr,
                           int samples_per_side) {
  HASJ_CHECK(samples_per_side >= 2);
  const geom::Point p00{other_mbr.min_x, other_mbr.min_y};
  const geom::Point p10{other_mbr.max_x, other_mbr.min_y};
  const geom::Point p11{other_mbr.max_x, other_mbr.max_y};
  const geom::Point p01{other_mbr.min_x, other_mbr.max_y};
  const double s0 = MaxDistanceAlongSide(p00, p10, p, samples_per_side);
  const double s1 = MaxDistanceAlongSide(p10, p11, p, samples_per_side);
  const double s2 = MaxDistanceAlongSide(p11, p01, p, samples_per_side);
  const double s3 = MaxDistanceAlongSide(p01, p00, p, samples_per_side);
  return std::min(std::min(s0, s1), std::min(s2, s3));
}

}  // namespace hasj::filter
