#include "filter/interior_filter.h"

#include <algorithm>
#include <cmath>

#include "algo/point_in_polygon.h"
#include "common/macros.h"
#include "geom/segment.h"

namespace hasj::filter {

InteriorFilter::InteriorFilter(const geom::Polygon& query, int tiling_level)
    : level_(tiling_level), n_(1 << tiling_level), mbr_(query.Bounds()) {
  HASJ_CHECK(tiling_level >= 0 && tiling_level <= 12);
  tile_w_ = mbr_.Width() / n_;
  tile_h_ = mbr_.Height() / n_;

  // Phase 1: mark tiles crossed by the polygon boundary. Each edge marks
  // the tiles its bounding box spans that it actually (exactly) intersects.
  std::vector<uint8_t> boundary(static_cast<size_t>(n_) * n_, 0);
  const auto tile_box = [&](int i, int j) {
    return geom::Box(mbr_.min_x + i * tile_w_, mbr_.min_y + j * tile_h_,
                     mbr_.min_x + (i + 1) * tile_w_,
                     mbr_.min_y + (j + 1) * tile_h_);
  };
  const auto clamp_idx = [&](double v, double lo, double tile) {
    if (tile <= 0.0) return 0;
    const int idx = static_cast<int>(std::floor((v - lo) / tile));
    return std::clamp(idx, 0, n_ - 1);
  };
  for (size_t e = 0; e < query.size(); ++e) {
    const geom::Segment seg = query.edge(e);
    const geom::Box sb = seg.Bounds();
    const int i0 = clamp_idx(sb.min_x, mbr_.min_x, tile_w_);
    const int i1 = clamp_idx(sb.max_x, mbr_.min_x, tile_w_);
    const int j0 = clamp_idx(sb.min_y, mbr_.min_y, tile_h_);
    const int j1 = clamp_idx(sb.max_y, mbr_.min_y, tile_h_);
    for (int j = j0; j <= j1; ++j) {
      for (int i = i0; i <= i1; ++i) {
        if (boundary[static_cast<size_t>(j) * n_ + i]) continue;
        if (geom::SegmentIntersectsBox(seg, tile_box(i, j))) {
          boundary[static_cast<size_t>(j) * n_ + i] = 1;
        }
      }
    }
  }

  // Phase 2: classify non-boundary tiles. Within a run of consecutive
  // non-boundary tiles in a row, all tiles have the same inside/outside
  // status (a status change would require the boundary to cross the shared
  // tile edge, marking both tiles), so one point-in-polygon test per run
  // suffices.
  interior_.assign(static_cast<size_t>(n_) * n_, 0);
  for (int j = 0; j < n_; ++j) {
    int i = 0;
    while (i < n_) {
      if (boundary[static_cast<size_t>(j) * n_ + i]) {
        ++i;
        continue;
      }
      int end = i;
      while (end < n_ && !boundary[static_cast<size_t>(j) * n_ + end]) ++end;
      const geom::Box probe = tile_box(i, j);
      const bool inside =
          algo::LocatePoint(probe.Center(), query) == algo::PointLocation::kInside;
      if (inside) {
        for (int k = i; k < end; ++k) {
          interior_[static_cast<size_t>(j) * n_ + k] = 1;
          ++interior_count_;
        }
      }
      i = end;
    }
  }

  // 2D prefix sums for O(1) "all tiles in a range are interior" queries.
  prefix_.assign(static_cast<size_t>(n_ + 1) * (n_ + 1), 0);
  for (int j = 0; j < n_; ++j) {
    for (int i = 0; i < n_; ++i) {
      prefix_[static_cast<size_t>(j + 1) * (n_ + 1) + (i + 1)] =
          interior_[static_cast<size_t>(j) * n_ + i] +
          prefix_[static_cast<size_t>(j) * (n_ + 1) + (i + 1)] +
          prefix_[static_cast<size_t>(j + 1) * (n_ + 1) + i] -
          prefix_[static_cast<size_t>(j) * (n_ + 1) + i];
    }
  }
}

bool InteriorFilter::IsInteriorTile(int i, int j) const {
  HASJ_CHECK(i >= 0 && i < n_ && j >= 0 && j < n_);
  return interior_[static_cast<size_t>(j) * n_ + i] != 0;
}

bool InteriorFilter::IdentifiesPositive(const geom::Box& candidate_mbr) const {
  if (candidate_mbr.IsEmpty()) return false;
  // Anything outside the query MBR cannot be covered by interior tiles.
  if (!mbr_.Contains(candidate_mbr)) return false;
  if (tile_w_ <= 0.0 || tile_h_ <= 0.0) return false;

  const int i0 = std::clamp(
      static_cast<int>(std::floor((candidate_mbr.min_x - mbr_.min_x) / tile_w_)),
      0, n_ - 1);
  const int i1 = std::clamp(
      static_cast<int>(std::floor((candidate_mbr.max_x - mbr_.min_x) / tile_w_)),
      0, n_ - 1);
  const int j0 = std::clamp(
      static_cast<int>(std::floor((candidate_mbr.min_y - mbr_.min_y) / tile_h_)),
      0, n_ - 1);
  const int j1 = std::clamp(
      static_cast<int>(std::floor((candidate_mbr.max_y - mbr_.min_y) / tile_h_)),
      0, n_ - 1);
  const int64_t covered = PrefixCount(i1, j1) - PrefixCount(i0 - 1, j1) -
                          PrefixCount(i1, j0 - 1) + PrefixCount(i0 - 1, j0 - 1);
  const int64_t total =
      static_cast<int64_t>(i1 - i0 + 1) * static_cast<int64_t>(j1 - j0 + 1);
  return covered == total;
}

}  // namespace hasj::filter
