#include "filter/slot_interval_grid.h"

#include <utility>

namespace hasj::filter {

Result<SlotIntervalGrid> SlotIntervalGrid::Create(
    const geom::Box& frame, size_t capacity,
    const IntervalApproxConfig& config) {
  if (frame.IsEmpty() || frame.Width() <= 0.0 || frame.Height() <= 0.0) {
    return Status::InvalidArgument("slot interval grid needs a 2-d frame");
  }
  // Zero-polygon build: validates the config and captures the frame/grid
  // mapping every later per-slot approximation reuses.
  auto base = BuildIntervalApprox({}, frame, config);
  if (!base.ok()) return base.status();
  SlotIntervalGrid grid;
  grid.base_ = std::move(base).value();
  grid.slots_ = std::make_unique<std::vector<ObjectIntervals>>(capacity);
  grid.flags_ = std::make_unique<std::once_flag[]>(capacity);
  return grid;
}

const ObjectIntervals& SlotIntervalGrid::Get(
    int64_t id, const geom::Polygon& polygon) const {
  ObjectIntervals& slot = (*slots_)[static_cast<size_t>(id)];
  std::call_once(flags_[static_cast<size_t>(id)],
                 [&] { slot = base_.ApproximateObject(polygon); });
  return slot;
}

}  // namespace hasj::filter
