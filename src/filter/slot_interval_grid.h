#ifndef HASJ_FILTER_SLOT_INTERVAL_GRID_H_
#define HASJ_FILTER_SLOT_INTERVAL_GRID_H_

#include <cstdint>
#include <memory>
// lint:allow(naked-mutex): once_flag/call_once only, per-slot one-time init
#include <mutex>
#include <vector>

#include "common/status.h"
#include "filter/interval_approx.h"
#include "geom/box.h"
#include "geom/polygon.h"

namespace hasj::filter {

// Per-slot raster-interval approximations for a mutable store
// (data::VersionedDataset). The dataset-level IntervalApproxCache rebuilds
// the whole approximation whenever the epoch moves — correct for reloads,
// hopeless under update traffic where every insert bumps the epoch. This
// grid instead fixes the frame and resolution up front (the serving frame
// is known at store creation) and approximates each write-once slot at most
// once, on first use, under a per-slot std::call_once. Slots are immutable
// once written and ids are never reused, so a cached approximation can
// never go stale.
//
// Thread-safe: any number of readers may call Get/Approximate concurrently.
class SlotIntervalGrid {
 public:
  // `frame` must enclose every polygon the store will ever hold (the
  // generator profile extent); out-of-frame geometry would degrade to
  // kInconclusive-only approximations, never wrong verdicts. `capacity`
  // matches the store's slot capacity.
  [[nodiscard]] static Result<SlotIntervalGrid> Create(
      const geom::Box& frame, size_t capacity,
      const IntervalApproxConfig& config = {});

  SlotIntervalGrid(SlotIntervalGrid&&) = default;
  SlotIntervalGrid& operator=(SlotIntervalGrid&&) = default;

  // The approximation of slot `id`, computing it on first use. `polygon`
  // must be slot id's geometry (write-once, so every caller passes the same
  // object).
  const ObjectIntervals& Get(int64_t id, const geom::Polygon& polygon) const;

  // Approximates an ad-hoc (query) object against the same grid.
  ObjectIntervals Approximate(const geom::Polygon& polygon) const {
    return base_.ApproximateObject(polygon);
  }

  int grid_bits() const { return base_.grid_bits(); }
  const geom::Box& frame() const { return base_.frame(); }
  size_t capacity() const { return slots_->size(); }

 private:
  SlotIntervalGrid() = default;

  // Zero-object approximation carrying the frame/grid mapping.
  IntervalApprox base_;
  // Write-once slot approximations; slot i is written inside flags_[i]'s
  // call_once, which sequences the write before every later reader.
  std::unique_ptr<std::vector<ObjectIntervals>> slots_;
  std::unique_ptr<std::once_flag[]> flags_;
};

}  // namespace hasj::filter

#endif  // HASJ_FILTER_SLOT_INTERVAL_GRID_H_
