#ifndef HASJ_OBS_METRICS_H_
#define HASJ_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace hasj::obs {

// Metrics registry (DESIGN.md §10).
//
// A Registry owns named Counter / Gauge / Histogram instruments. Lookup
// (Get*) takes a mutex and is meant to happen once per call site — hot
// paths resolve the returned reference at construction time and then
// record through it lock-free. Counters and histograms are sharded: each
// recording thread lands on one of kMetricShards cache-line-padded slots
// (relaxed atomics, no contention below kMetricShards concurrent writers),
// and Snapshot() merges the shards. Totals are therefore exact and
// scheduling-independent at every thread count; only the merge pays a
// full-fence read.
//
// The registry absorbs the per-query StageCosts / StageCounts / HwCounters
// aggregation (core/query_obs.h ingests those structs under canonical
// names, obs/names.h) and adds what plain struct totals cannot express:
// distribution histograms (per-pair n+m, pixels colored, atlas occupancy,
// batch sizes, per-worker queue wait) with power-of-two buckets.

// Number of metric shards; threads beyond this share slots (still safe,
// just contended).
inline constexpr int kMetricShards = 16;

// Power-of-two histogram buckets: bucket 0 holds values <= 0, bucket b >= 1
// holds [2^(b-1), 2^b - 1], and the last bucket absorbs the overflow tail.
inline constexpr int kHistogramBuckets = 64;

// Stable per-thread shard index in [0, kMetricShards).
int ThreadShard();

// Monotonic integer counter. Add() is lock-free (relaxed fetch_add on the
// calling thread's shard); Sum() merges shards.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Add(int64_t delta) {
    shards_[static_cast<size_t>(ThreadShard())].value.fetch_add(
        delta, std::memory_order_relaxed);
  }
  void Increment() { Add(1); }

  int64_t Sum() const;

 private:
  struct alignas(64) Shard {
    std::atomic<int64_t> value{0};
  };
  std::array<Shard, kMetricShards> shards_;
};

// Double-valued gauge: Set() overwrites, Add() accumulates (CAS loop; gauges
// record per-run aggregates, not per-pair events, so contention is nil).
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  void Add(double delta);
  double Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

// Merged view of one histogram: totals plus the power-of-two bucket counts.
struct HistogramSnapshot {
  int64_t count = 0;
  int64_t sum = 0;
  int64_t min = 0;  // meaningful only when count > 0
  int64_t max = 0;
  std::array<int64_t, kHistogramBuckets> buckets{};

  double Mean() const {
    return count > 0 ? static_cast<double>(sum) / static_cast<double>(count)
                     : 0.0;
  }

  // Exact bucket-resolved quantile: the value reported for the
  // ceil(q * count)-th smallest sample is its bucket's inclusive upper
  // bound (2^b - 1), clamped to the recorded [min, max]. Deterministic,
  // hand-computable from the bucket layout, and merge-invariant: because
  // shard/snapshot merges sum buckets exactly, quantiles are identical at
  // every thread count. 0 when the histogram is empty; q is clamped to
  // [0, 1].
  int64_t Quantile(double q) const;
  int64_t P50() const { return Quantile(0.50); }
  int64_t P90() const { return Quantile(0.90); }
  int64_t P99() const { return Quantile(0.99); }

  HistogramSnapshot& operator+=(const HistogramSnapshot& o);
  bool operator==(const HistogramSnapshot& o) const = default;
};

// Sharded power-of-two-bucket histogram of int64 samples.
class Histogram {
 public:
  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Record(int64_t value);

  // Bucket index of a value (see kHistogramBuckets for the layout).
  static int BucketOf(int64_t value);
  // Smallest value a bucket holds (bucket 0 has no lower bound; returns the
  // most negative int64 there).
  static int64_t BucketLowerBound(int bucket);
  // Largest value a bucket holds: 0 for bucket 0 (which ends at <= 0),
  // 2^b - 1 for 1 <= b < 63, INT64_MAX for the overflow tail bucket.
  static int64_t BucketUpperBound(int bucket);

  HistogramSnapshot Snapshot() const;

 private:
  struct alignas(64) Shard {
    std::array<std::atomic<int64_t>, kHistogramBuckets> buckets{};
    std::atomic<int64_t> sum{0};
    std::atomic<int64_t> count{0};
    std::atomic<int64_t> min{INT64_MAX};
    std::atomic<int64_t> max{INT64_MIN};
  };
  std::array<Shard, kMetricShards> shards_;
};

// Point-in-time merge of a whole registry. std::map keeps the iteration
// order deterministic for reports and JSON output.
struct MetricsSnapshot {
  std::map<std::string, int64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  MetricsSnapshot& operator+=(const MetricsSnapshot& o);

  // Lookup with default; absent metrics read as zero so report code can
  // stay branch-light.
  int64_t counter(std::string_view name) const;
  double gauge(std::string_view name) const;
};

class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  // Find-or-create by name. The returned reference stays valid for the
  // registry's lifetime (instruments are never removed). Each call takes
  // mu_ itself — resolve references once per call site, then record through
  // them lock-free (the instruments are sharded atomics, not guarded
  // state; mu_ protects only the name → instrument maps).
  Counter& GetCounter(std::string_view name) HASJ_EXCLUDES(mu_);
  Gauge& GetGauge(std::string_view name) HASJ_EXCLUDES(mu_);
  Histogram& GetHistogram(std::string_view name) HASJ_EXCLUDES(mu_);

  // Merges every instrument's shards into a point-in-time view. Takes mu_
  // for the map walk; the per-shard reads are the atomics' own full-fence
  // loads, so the merge must never be called with mu_ already held.
  MetricsSnapshot Snapshot() const HASJ_EXCLUDES(mu_);

 private:
  mutable Mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_
      HASJ_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_
      HASJ_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_
      HASJ_GUARDED_BY(mu_);
};

}  // namespace hasj::obs

#endif  // HASJ_OBS_METRICS_H_
