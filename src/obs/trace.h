#ifndef HASJ_OBS_TRACE_H_
#define HASJ_OBS_TRACE_H_

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <initializer_list>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace hasj::obs {

// Query trace recorder (DESIGN.md §10) emitting Chrome trace_event JSON
// (load the file in chrome://tracing or https://ui.perfetto.dev).
//
// Recording is lock-free per thread: each recording thread owns a private
// event buffer registered with the session once (mutex only on the first
// event of a thread), and every subsequent span/instant is one vector
// append plus two steady_clock reads. Buffers map to trace tracks — one
// track per refinement worker — and NameCurrentTrack() labels them.
//
// The disabled path costs one null-pointer test: every instrumentation site
// is guarded by `session != nullptr` (HASJ_TRACE_SCOPE compiles to a
// pointer check when HwConfig::trace is null), so pipelines pay nothing
// when tracing is off.
//
// WriteJson()/WriteFile() must not run concurrently with recording (call
// them after the traced work has completed, as the bench harness does).
class TraceSession {
 public:
  // Events kept per track; the tail beyond this is counted in
  // dropped_events() instead of growing without bound.
  static constexpr size_t kMaxEventsPerTrack = 1 << 18;

  TraceSession();
  ~TraceSession();
  TraceSession(const TraceSession&) = delete;
  TraceSession& operator=(const TraceSession&) = delete;

  // Microseconds since session construction (steady clock, monotonic).
  double NowUs() const {
    return std::chrono::duration<double, std::micro>(Clock::now() - epoch_)
        .count();
  }

  // Labels the calling thread's track in the trace viewer.
  void NameCurrentTrack(std::string name);

  // Zero-duration marker on the calling thread's track ("i" event).
  void Instant(const char* name, const char* cat = "hasj");

  // Complete span ("X" event) on the calling thread's track. `name`, `cat`
  // and `arg_name` must be string literals (or otherwise outlive the
  // session); pass arg_name == nullptr for no argument.
  void Span(const char* name, const char* cat, double ts_us, double dur_us,
            const char* arg_name = nullptr, int64_t arg = 0);

  // Up to kMaxSpanArgs named integer args on one span (the PMU scopes
  // attach their per-stage counter deltas this way). Extra args beyond the
  // cap are ignored; names must outlive the session like `name`/`cat`.
  static constexpr int kMaxSpanArgs = 4;
  struct SpanArg {
    const char* name;
    int64_t value;
  };
  void SpanWithArgs(const char* name, const char* cat, double ts_us,
                    double dur_us, std::initializer_list<SpanArg> args);

  // Events dropped because a track hit kMaxEventsPerTrack.
  int64_t dropped_events() const {
    return dropped_.load(std::memory_order_relaxed);
  }

  // Serializes all tracks as a Chrome trace_event JSON object. Takes mu_
  // itself; must not run concurrently with recording (see class comment).
  void WriteJson(std::string* out) const HASJ_EXCLUDES(mu_);
  [[nodiscard]] Status WriteFile(const std::string& path) const
      HASJ_EXCLUDES(mu_);

 private:
  using Clock = std::chrono::steady_clock;

  struct Event {
    const char* name;
    const char* cat;
    std::array<const char*, kMaxSpanArgs> arg_names;  // first arg_count set
    std::array<int64_t, kMaxSpanArgs> args;
    double ts_us;
    double dur_us;  // spans only
    int arg_count;  // 0 = no args
    char phase;     // 'X' span, 'i' instant
  };
  struct Track {
    int tid = 0;
    std::string label;
    std::vector<Event> events;
  };

  // The calling thread's track, registered on first use (mu_ is taken on
  // the registration miss only).
  Track* track() HASJ_EXCLUDES(mu_);
  // Lock-free append to the calling thread's own track.
  //
  // Invariant (why no lock is needed): mu_ guards the registry structure
  // (by_thread_, tracks_) — never the Track contents. Each Track's events
  // vector is written exclusively by the one thread that registered it
  // (track() hands a thread its own track only), and the readers
  // (WriteJson/WriteFile) run only after the traced work has quiesced, per
  // the class contract. There is therefore never a concurrent reader or
  // second writer of t->events; only the shared dropped_ counter needs to
  // be (and is) atomic.
  void Append(Track* t, const Event& event);

  const uint64_t session_id_;
  const Clock::time_point epoch_;
  std::atomic<int64_t> dropped_{0};

  mutable Mutex mu_;
  // Registry structure only; Track contents are thread-owned (see Append).
  std::map<std::thread::id, Track*> by_thread_ HASJ_GUARDED_BY(mu_);
  std::vector<std::unique_ptr<Track>> tracks_ HASJ_GUARDED_BY(mu_);
};

// RAII span: records an "X" event covering its lifetime when the session is
// non-null, nothing otherwise.
class TraceScope {
 public:
  explicit TraceScope(TraceSession* session, const char* name,
                      const char* cat = "hasj",
                      const char* arg_name = nullptr, int64_t arg = 0)
      : session_(session) {
    if (session_ != nullptr) {
      name_ = name;
      cat_ = cat;
      arg_name_ = arg_name;
      arg_ = arg;
      start_us_ = session_->NowUs();
    }
  }
  ~TraceScope() {
    if (session_ != nullptr) {
      session_->Span(name_, cat_, start_us_, session_->NowUs() - start_us_,
                     arg_name_, arg_);
    }
  }
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  TraceSession* session_;
  const char* name_ = nullptr;
  const char* cat_ = nullptr;
  const char* arg_name_ = nullptr;
  int64_t arg_ = 0;
  double start_us_ = 0.0;
};

// Re-usable manual span for code where the start and end points do not form
// a lexical scope (the pipeline stage boundaries). Start() on a null
// session makes End() a no-op.
class ManualSpan {
 public:
  void Start(TraceSession* session, const char* name,
             const char* cat = "hasj") {
    session_ = session;
    if (session_ != nullptr) {
      name_ = name;
      cat_ = cat;
      start_us_ = session_->NowUs();
    }
  }
  void End() {
    if (session_ != nullptr) {
      session_->Span(name_, cat_, start_us_, session_->NowUs() - start_us_);
      session_ = nullptr;
    }
  }

 private:
  TraceSession* session_ = nullptr;
  const char* name_ = nullptr;
  const char* cat_ = nullptr;
  double start_us_ = 0.0;
};

#define HASJ_TRACE_CONCAT_INNER(a, b) a##b
#define HASJ_TRACE_CONCAT(a, b) HASJ_TRACE_CONCAT_INNER(a, b)

// Span over the enclosing scope: HASJ_TRACE_SCOPE(session, "name", "cat").
// Compiles to a null test when the session pointer is null.
#define HASJ_TRACE_SCOPE(session, ...)                          \
  ::hasj::obs::TraceScope HASJ_TRACE_CONCAT(hasj_trace_scope_, \
                                            __LINE__)((session), __VA_ARGS__)

}  // namespace hasj::obs

#endif  // HASJ_OBS_TRACE_H_
