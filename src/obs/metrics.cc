#include "obs/metrics.h"

#include <algorithm>
#include <bit>
#include <cmath>

namespace hasj::obs {

int ThreadShard() {
  static std::atomic<uint32_t> next{0};
  thread_local const uint32_t slot =
      next.fetch_add(1, std::memory_order_relaxed);
  return static_cast<int>(slot % static_cast<uint32_t>(kMetricShards));
}

int64_t Counter::Sum() const {
  int64_t total = 0;
  for (const Shard& shard : shards_) {
    total += shard.value.load(std::memory_order_relaxed);
  }
  return total;
}

void Gauge::Add(double delta) {
  double current = value_.load(std::memory_order_relaxed);
  while (!value_.compare_exchange_weak(current, current + delta,
                                       std::memory_order_relaxed)) {
  }
}

int Histogram::BucketOf(int64_t value) {
  if (value <= 0) return 0;
  const int bucket = std::bit_width(static_cast<uint64_t>(value));
  return std::min(bucket, kHistogramBuckets - 1);
}

int64_t Histogram::BucketLowerBound(int bucket) {
  if (bucket <= 0) return INT64_MIN;
  return int64_t{1} << (bucket - 1);
}

int64_t Histogram::BucketUpperBound(int bucket) {
  if (bucket <= 0) return 0;
  if (bucket >= kHistogramBuckets - 1) return INT64_MAX;
  return (int64_t{1} << bucket) - 1;
}

void Histogram::Record(int64_t value) {
  Shard& shard = shards_[static_cast<size_t>(ThreadShard())];
  shard.buckets[static_cast<size_t>(BucketOf(value))].fetch_add(
      1, std::memory_order_relaxed);
  shard.sum.fetch_add(value, std::memory_order_relaxed);
  shard.count.fetch_add(1, std::memory_order_relaxed);
  int64_t seen = shard.min.load(std::memory_order_relaxed);
  while (value < seen &&
         !shard.min.compare_exchange_weak(seen, value,
                                          std::memory_order_relaxed)) {
  }
  seen = shard.max.load(std::memory_order_relaxed);
  while (value > seen &&
         !shard.max.compare_exchange_weak(seen, value,
                                          std::memory_order_relaxed)) {
  }
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snap;
  int64_t min = INT64_MAX;
  int64_t max = INT64_MIN;
  for (const Shard& shard : shards_) {
    for (int b = 0; b < kHistogramBuckets; ++b) {
      snap.buckets[static_cast<size_t>(b)] +=
          shard.buckets[static_cast<size_t>(b)].load(std::memory_order_relaxed);
    }
    snap.sum += shard.sum.load(std::memory_order_relaxed);
    snap.count += shard.count.load(std::memory_order_relaxed);
    min = std::min(min, shard.min.load(std::memory_order_relaxed));
    max = std::max(max, shard.max.load(std::memory_order_relaxed));
  }
  if (snap.count > 0) {
    snap.min = min;
    snap.max = max;
  }
  return snap;
}

int64_t HistogramSnapshot::Quantile(double q) const {
  if (count <= 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the target sample, 1-based; ceil without floating error for
  // the q = 0 and q = 1 edges.
  int64_t rank = static_cast<int64_t>(
      std::ceil(q * static_cast<double>(count)));
  rank = std::clamp<int64_t>(rank, 1, count);
  int64_t seen = 0;
  for (int b = 0; b < kHistogramBuckets; ++b) {
    seen += buckets[static_cast<size_t>(b)];
    if (seen >= rank) {
      return std::clamp(Histogram::BucketUpperBound(b), min, max);
    }
  }
  return max;
}

HistogramSnapshot& HistogramSnapshot::operator+=(const HistogramSnapshot& o) {
  if (o.count > 0) {
    min = count > 0 ? std::min(min, o.min) : o.min;
    max = count > 0 ? std::max(max, o.max) : o.max;
  }
  count += o.count;
  sum += o.sum;
  for (int b = 0; b < kHistogramBuckets; ++b) {
    buckets[static_cast<size_t>(b)] += o.buckets[static_cast<size_t>(b)];
  }
  return *this;
}

MetricsSnapshot& MetricsSnapshot::operator+=(const MetricsSnapshot& o) {
  for (const auto& [name, value] : o.counters) counters[name] += value;
  for (const auto& [name, value] : o.gauges) gauges[name] += value;
  for (const auto& [name, hist] : o.histograms) histograms[name] += hist;
  return *this;
}

int64_t MetricsSnapshot::counter(std::string_view name) const {
  const auto it = counters.find(std::string(name));
  return it == counters.end() ? 0 : it->second;
}

double MetricsSnapshot::gauge(std::string_view name) const {
  const auto it = gauges.find(std::string(name));
  return it == gauges.end() ? 0.0 : it->second;
}

Counter& Registry::GetCounter(std::string_view name) {
  MutexLock lock(&mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& Registry::GetGauge(std::string_view name) {
  MutexLock lock(&mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& Registry::GetHistogram(std::string_view name) {
  MutexLock lock(&mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return *it->second;
}

MetricsSnapshot Registry::Snapshot() const {
  MutexLock lock(&mu_);
  MetricsSnapshot snap;
  for (const auto& [name, counter] : counters_) {
    snap.counters.emplace(name, counter->Sum());
  }
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges.emplace(name, gauge->Value());
  }
  for (const auto& [name, hist] : histograms_) {
    snap.histograms.emplace(name, hist->Snapshot());
  }
  return snap;
}

}  // namespace hasj::obs
