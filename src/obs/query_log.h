#ifndef HASJ_OBS_QUERY_LOG_H_
#define HASJ_OBS_QUERY_LOG_H_

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <deque>
#include <string>
#include <thread>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace hasj::obs {

// Structured query log (DESIGN.md §15): an asynchronous JSONL writer
// emitting one record per query, attached through HwConfig::query_log and
// null-gated like trace/metrics — a query path with no log attached pays
// one pointer test.
//
// The producer side (core/query_obs.cc, at end of every pipeline Run) is
// lock-cheap: rendering the record happens on the query thread, but the
// write is one bounded-queue push under a mutex held for a deque splice —
// never for I/O. A dedicated writer thread drains the queue to the file,
// so fwrite latency and fsync stalls cannot land in query tail latency.
// When the queue is full the record is dropped and counted (dropped()),
// bounding memory under any production rate.
//
// Sampling: ShouldSample(rate) is a deterministic fixed-point accumulator
// — rate 1 keeps every record, 0.25 every 4th, 0 none. Rate 0 with a log
// attached is the "enabled but unsampled" configuration the ablation_obs
// overhead gate measures: every query pays the pointer test and the
// sampling add, nothing else.
class QueryLog {
 public:
  // Bounded queue capacity in records; beyond it Append drops.
  static constexpr size_t kDefaultCapacity = 4096;

  QueryLog() = default;
  ~QueryLog();
  QueryLog(const QueryLog&) = delete;
  QueryLog& operator=(const QueryLog&) = delete;

  // Opens `path` for writing and starts the writer thread. Fails if the
  // file cannot be created or the log is already open.
  [[nodiscard]] Status Open(const std::string& path,
                            size_t capacity = kDefaultCapacity);

  // Enqueues one JSONL record (a complete JSON object, no trailing
  // newline — the writer adds it). Drops (and counts) when the queue is
  // full or the log is closed.
  void Append(std::string line);

  // Deterministic sampling gate: accumulates `rate` per call and fires on
  // unit-interval crossings. Thread-safe; the accumulator is shared, so at
  // rate r an r-fraction of *all* calls samples regardless of which thread
  // makes them.
  bool ShouldSample(double rate);

  // Flushes the queue, joins the writer and closes the file. Returns the
  // first write error seen over the log's lifetime. Idempotent.
  [[nodiscard]] Status Close();

  bool open() const { return open_.load(std::memory_order_acquire); }
  int64_t written() const { return written_.load(std::memory_order_relaxed); }
  int64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }

 private:
  void WriterLoop();

  std::atomic<bool> open_{false};
  std::atomic<int64_t> written_{0};
  std::atomic<int64_t> dropped_{0};
  // ShouldSample's fixed-point accumulator, in 2^-16 units of a record.
  std::atomic<int64_t> sample_acc_{0};

  Mutex mu_;
  CondVar cv_;
  std::deque<std::string> queue_ HASJ_GUARDED_BY(mu_);
  bool closing_ HASJ_GUARDED_BY(mu_) = false;
  Status write_error_ HASJ_GUARDED_BY(mu_);
  size_t capacity_ HASJ_GUARDED_BY(mu_) = kDefaultCapacity;
  // Written only by the writer thread after Open; Close joins before
  // fclose, so there is never a concurrent user.
  // lint:allow(guarded-by-coverage): confined to the writer thread
  std::FILE* file_ = nullptr;
  // lint:allow(guarded-by-coverage): set in Open, joined in Close
  std::thread writer_;
};

}  // namespace hasj::obs

#endif  // HASJ_OBS_QUERY_LOG_H_
