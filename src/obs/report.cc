#include "obs/report.h"

#include <cstdarg>
#include <cstdio>
#include <string_view>

#include "obs/names.h"

namespace hasj::obs {

namespace {

void Appendf(std::string* out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

void Appendf(std::string* out, const char* fmt, ...) {
  char buf[512];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  out->append(buf);
}

double Pct(int64_t part, int64_t whole) {
  return whole > 0
             ? 100.0 * static_cast<double>(part) / static_cast<double>(whole)
             : 0.0;
}

void AppendHistogram(std::string* out, const std::string& name,
                     const HistogramSnapshot& h) {
  Appendf(out,
          "  %-24s count=%lld mean=%.1f min=%lld max=%lld"
          " p50=%lld p90=%lld p99=%lld\n",
          name.c_str(), static_cast<long long>(h.count), h.Mean(),
          static_cast<long long>(h.count > 0 ? h.min : 0),
          static_cast<long long>(h.count > 0 ? h.max : 0),
          static_cast<long long>(h.P50()), static_cast<long long>(h.P90()),
          static_cast<long long>(h.P99()));
}

// Latency quantile columns for one pipeline stage histogram
// ("pipeline.<kind><suffix>"); silently absent when the histogram is not
// in the snapshot (pre-quantile producers, hand-built fixtures).
void AppendLatencyRow(std::string* out, const MetricsSnapshot& snapshot,
                      const std::string& kind, const char* stage,
                      const char* suffix) {
  const auto it =
      snapshot.histograms.find(std::string(kPipelinePrefix) + kind + suffix);
  if (it == snapshot.histograms.end()) return;
  const HistogramSnapshot& h = it->second;
  Appendf(out,
          "  %-10s %-8s p50=%lldus p90=%lldus p99=%lldus max=%lldus"
          " (n=%lld)\n",
          kind.c_str(), stage, static_cast<long long>(h.P50()),
          static_cast<long long>(h.P90()), static_cast<long long>(h.P99()),
          static_cast<long long>(h.count > 0 ? h.max : 0),
          static_cast<long long>(h.count));
}

}  // namespace

std::string RenderReport(const MetricsSnapshot& snapshot) {
  std::string out;

  // Header: which pipeline kinds ran (counters "pipeline.<kind>.runs").
  out.append("EXPLAIN ANALYZE");
  bool first_kind = true;
  for (const auto& [name, value] : snapshot.counters) {
    const std::string_view sv(name);
    if (!sv.starts_with(kPipelinePrefix) ||
        !sv.ends_with(kPipelineRunsSuffix) || value <= 0) {
      continue;
    }
    const std::string_view kind = sv.substr(
        sizeof(kPipelinePrefix) - 1,
        sv.size() - (sizeof(kPipelinePrefix) - 1) -
            (sizeof(kPipelineRunsSuffix) - 1));
    Appendf(&out, "%s %.*s x%lld", first_kind ? "" : ",",
            static_cast<int>(kind.size()), kind.data(),
            static_cast<long long>(value));
    first_kind = false;
  }
  if (first_kind) out.append(" (no pipeline runs recorded)");
  out.push_back('\n');

  const int64_t candidates = snapshot.counter(kStageMbrOut);
  const int64_t decided = snapshot.counter(kStageFilterDecided);
  const int64_t compared = snapshot.counter(kStageCompareIn);
  const int64_t results = snapshot.counter(kQueryResults);

  Appendf(&out, "|- mbr filter        %9.3f ms | candidates: %lld\n",
          snapshot.gauge(kStageMbrMs), static_cast<long long>(candidates));
  Appendf(&out,
          "|- interm. filter    %9.3f ms | decided: %lld (%.1f%%)"
          "  raster+: %lld  raster-: %lld\n",
          snapshot.gauge(kStageFilterMs), static_cast<long long>(decided),
          Pct(decided, candidates),
          static_cast<long long>(snapshot.counter(kStageFilterRasterPos)),
          static_cast<long long>(snapshot.counter(kStageFilterRasterNeg)));
  Appendf(&out,
          "`- geometry compare  %9.3f ms | in: %lld  results: %lld"
          " (selectivity %.1f%%)\n",
          snapshot.gauge(kStageCompareMs), static_cast<long long>(compared),
          static_cast<long long>(results), Pct(results, candidates));

  // Refinement routing: how the compared pairs were decided.
  const int64_t tests = snapshot.counter(kRefineTests);
  const int64_t mbr_misses = snapshot.counter(kRefineMbrMisses);
  const int64_t pip_hits = snapshot.counter(kRefinePipHits);
  const int64_t sw_skips = snapshot.counter(kRefineSwThresholdSkips);
  const int64_t hw_tests = snapshot.counter(kRefineHwTests);
  const int64_t sw_tests = snapshot.counter(kRefineSwTests);
  Appendf(&out, "   |- routing (of %lld tests)\n",
          static_cast<long long>(tests));
  Appendf(&out, "   |    mbr-miss: %lld (%.1f%%)  pip-hit: %lld (%.1f%%)\n",
          static_cast<long long>(mbr_misses), Pct(mbr_misses, tests),
          static_cast<long long>(pip_hits), Pct(pip_hits, tests));
  Appendf(&out,
          "   |    hw: %lld (%.1f%%)  sw: %lld (%.1f%%)"
          "  [sw-threshold skips: %lld]\n",
          static_cast<long long>(hw_tests), Pct(hw_tests, tests),
          static_cast<long long>(sw_tests), Pct(sw_tests, tests),
          static_cast<long long>(sw_skips));
  Appendf(&out,
          "   |- hw path          %9.3f ms | rejects: %lld"
          "  width fallbacks: %lld\n",
          snapshot.gauge(kRefineHwMs),
          static_cast<long long>(snapshot.counter(kRefineHwRejects)),
          static_cast<long long>(snapshot.counter(kRefineWidthFallbacks)));
  Appendf(&out, "   |- sw path          %9.3f ms | pip: %9.3f ms\n",
          snapshot.gauge(kRefineSwMs), snapshot.gauge(kRefinePipMs));

  const int64_t batches = snapshot.counter(kBatchBatches);
  if (batches > 0) {
    Appendf(&out,
            "   `- batching: %lld batches, %lld pairs"
            " | fill %9.3f ms  scan %9.3f ms\n",
            static_cast<long long>(batches),
            static_cast<long long>(snapshot.counter(kBatchBatchedPairs)),
            snapshot.gauge(kBatchFillMs), snapshot.gauge(kBatchScanMs));
  } else {
    out.append("   `- batching: off\n");
  }

  // Trace truncation (harness-exported trace.dropped counter): silent drops
  // would make a capped trace look complete, so surface them here.
  const int64_t trace_dropped = snapshot.counter(kTraceDropped);
  if (trace_dropped > 0) {
    Appendf(&out,
            "   trace: %lld event(s) dropped"
            " (per-track cap hit; trace truncated)\n",
            static_cast<long long>(trace_dropped));
  }

  // Per-pipeline per-stage latency quantiles (exact bucket-resolved; see
  // HistogramSnapshot::Quantile). Emitted only when the latency histograms
  // exist — i.e. at least one pipeline ran with metrics attached.
  bool latency_header = false;
  for (const auto& [name, value] : snapshot.counters) {
    const std::string_view sv(name);
    if (!sv.starts_with(kPipelinePrefix) ||
        !sv.ends_with(kPipelineRunsSuffix) || value <= 0) {
      continue;
    }
    const std::string kind(sv.substr(
        sizeof(kPipelinePrefix) - 1,
        sv.size() - (sizeof(kPipelinePrefix) - 1) -
            (sizeof(kPipelineRunsSuffix) - 1)));
    if (!latency_header &&
        snapshot.histograms.contains(std::string(kPipelinePrefix) + kind +
                                     kPipelineTotalUsSuffix)) {
      out.append("latency quantiles (us/query):\n");
      latency_header = true;
    }
    AppendLatencyRow(&out, snapshot, kind, "mbr", kPipelineMbrUsSuffix);
    AppendLatencyRow(&out, snapshot, kind, "filter", kPipelineFilterUsSuffix);
    AppendLatencyRow(&out, snapshot, kind, "compare",
                     kPipelineCompareUsSuffix);
    AppendLatencyRow(&out, snapshot, kind, "total", kPipelineTotalUsSuffix);
  }

  // PMU section (obs/perf_counters.h): present iff a PerfCounters session
  // was attached; `pmu.available` says whether perf_event_open worked.
  if (snapshot.gauges.contains(kPmuAvailable)) {
    if (snapshot.gauge(kPmuAvailable) > 0.0) {
      out.append("pmu (per stage, multiplex-scaled):\n");
      for (const auto* row : kPmuStageEventNames) {
        const int64_t cycles = snapshot.counter(row[0]);
        const int64_t instructions = snapshot.counter(row[1]);
        // row[0] is "pmu.<stage>.cycles"; print the stage part.
        const std::string_view stage_name =
            std::string_view(row[0]).substr(4,
                                            std::string_view(row[0]).size() -
                                                4 - sizeof(".cycles") + 1);
        Appendf(&out,
                "  %-16.*s cycles=%lld instr=%lld ipc=%.2f"
                " cache-miss=%lld branch-miss=%lld\n",
                static_cast<int>(stage_name.size()), stage_name.data(),
                static_cast<long long>(cycles),
                static_cast<long long>(instructions),
                cycles > 0 ? static_cast<double>(instructions) /
                                 static_cast<double>(cycles)
                           : 0.0,
                static_cast<long long>(snapshot.counter(row[2])),
                static_cast<long long>(snapshot.counter(row[3])));
      }
    } else {
      out.append(
          "pmu: unavailable (perf_event_open denied; counters zero)\n");
    }
  }

  if (!snapshot.histograms.empty()) {
    out.append("histograms:\n");
    for (const auto& [name, h] : snapshot.histograms) {
      AppendHistogram(&out, name, h);
    }
  }
  return out;
}

}  // namespace hasj::obs
