#include "obs/trace.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <utility>
#include <vector>

#include "obs/json.h"

namespace hasj::obs {

namespace {

// Sessions are numbered globally so the thread-local track cache can tell a
// live session apart from a dead one that happened to reuse its address.
std::atomic<uint64_t> g_next_session_id{1};

struct TrackCache {
  uint64_t session_id = 0;
  void* track = nullptr;
};

thread_local TrackCache t_track_cache;

}  // namespace

TraceSession::TraceSession()
    : session_id_(g_next_session_id.fetch_add(1, std::memory_order_relaxed)),
      epoch_(Clock::now()) {}

TraceSession::~TraceSession() = default;

TraceSession::Track* TraceSession::track() {
  if (t_track_cache.session_id == session_id_) {
    return static_cast<Track*>(t_track_cache.track);
  }
  const std::thread::id self = std::this_thread::get_id();
  Track* t = nullptr;
  {
    MutexLock lock(&mu_);
    const auto it = by_thread_.find(self);
    if (it != by_thread_.end()) {
      t = it->second;
    } else {
      auto owned = std::make_unique<Track>();
      owned->tid = static_cast<int>(tracks_.size());
      t = owned.get();
      tracks_.push_back(std::move(owned));
      by_thread_.emplace(self, t);
    }
  }
  t_track_cache = {session_id_, t};
  return t;
}

void TraceSession::Append(Track* t, const Event& event) {
  if (t->events.size() >= kMaxEventsPerTrack) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  t->events.push_back(event);
}

void TraceSession::NameCurrentTrack(std::string name) {
  Track* t = track();
  // The label (unlike the thread-owned events buffer) is read by WriteJson
  // under mu_, so the write takes mu_ too.
  MutexLock lock(&mu_);
  t->label = std::move(name);
}

void TraceSession::Instant(const char* name, const char* cat) {
  Event event;
  event.name = name;
  event.cat = cat;
  event.arg_names = {};
  event.args = {};
  event.ts_us = NowUs();
  event.dur_us = 0.0;
  event.arg_count = 0;
  event.phase = 'i';
  Append(track(), event);
}

void TraceSession::Span(const char* name, const char* cat, double ts_us,
                        double dur_us, const char* arg_name, int64_t arg) {
  if (arg_name != nullptr) {
    SpanWithArgs(name, cat, ts_us, dur_us, {{arg_name, arg}});
  } else {
    SpanWithArgs(name, cat, ts_us, dur_us, {});
  }
}

void TraceSession::SpanWithArgs(const char* name, const char* cat,
                                double ts_us, double dur_us,
                                std::initializer_list<SpanArg> args) {
  Event event;
  event.name = name;
  event.cat = cat;
  event.arg_names = {};
  event.args = {};
  event.arg_count = 0;
  for (const SpanArg& a : args) {
    if (event.arg_count >= kMaxSpanArgs) break;
    event.arg_names[static_cast<size_t>(event.arg_count)] = a.name;
    event.args[static_cast<size_t>(event.arg_count)] = a.value;
    ++event.arg_count;
  }
  event.ts_us = ts_us;
  event.dur_us = dur_us;
  event.phase = 'X';
  Append(track(), event);
}

void TraceSession::WriteJson(std::string* out) const {
  MutexLock lock(&mu_);
  JsonWriter w(out);
  w.BeginObject();
  w.Key("displayTimeUnit");
  w.String("ms");
  w.Key("traceEvents");
  w.BeginArray();
  for (const auto& t : tracks_) {
    if (!t->label.empty()) {
      // Metadata event labelling the track in the viewer.
      w.BeginObject();
      w.Key("name");
      w.String("thread_name");
      w.Key("ph");
      w.String("M");
      w.Key("pid");
      w.Int(1);
      w.Key("tid");
      w.Int(t->tid);
      w.Key("args");
      w.BeginObject();
      w.Key("name");
      w.String(t->label);
      w.EndObject();
      w.EndObject();
    }
    // Complete events are appended when their span ENDS, so a nested span
    // precedes its parent in the buffer. Emit each track sorted by start
    // time instead: viewers accept any order, but sorted output lets the
    // schema validator (and tests) assert per-track ts monotonicity. The
    // stable sort keeps append order for equal timestamps.
    std::vector<const Event*> ordered;
    ordered.reserve(t->events.size());
    for (const Event& e : t->events) ordered.push_back(&e);
    std::stable_sort(ordered.begin(), ordered.end(),
                     [](const Event* a, const Event* b) {
                       return a->ts_us < b->ts_us;
                     });
    for (const Event* ep : ordered) {
      const Event& e = *ep;
      w.BeginObject();
      w.Key("name");
      w.String(e.name);
      w.Key("cat");
      w.String(e.cat);
      w.Key("ph");
      w.String(std::string_view(&e.phase, 1));
      w.Key("pid");
      w.Int(1);
      w.Key("tid");
      w.Int(t->tid);
      w.Key("ts");
      w.Double(e.ts_us);
      if (e.phase == 'X') {
        w.Key("dur");
        w.Double(e.dur_us);
      }
      if (e.phase == 'i') {
        w.Key("s");
        w.String("t");
      }
      if (e.arg_count > 0) {
        w.Key("args");
        w.BeginObject();
        for (int a = 0; a < e.arg_count; ++a) {
          w.Key(e.arg_names[static_cast<size_t>(a)]);
          w.Int(e.args[static_cast<size_t>(a)]);
        }
        w.EndObject();
      }
      w.EndObject();
    }
  }
  w.EndArray();
  w.EndObject();
}

Status TraceSession::WriteFile(const std::string& path) const {
  std::string json;
  WriteJson(&json);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::InvalidArgument("cannot open trace file: " + path);
  }
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const int close_rc = std::fclose(f);
  if (written != json.size() || close_rc != 0) {
    return Status::Internal("short write to trace file: " + path);
  }
  return Status::Ok();
}

}  // namespace hasj::obs
