#ifndef HASJ_OBS_NAMES_H_
#define HASJ_OBS_NAMES_H_

namespace hasj::obs {

// Canonical metric names (DESIGN.md §10). Every producer and every consumer
// (core/query_obs.cc ingestion, the EXPLAIN report, bench JSON, tests) goes
// through these constants so the schema cannot drift silently.

// Pipeline runs: one counter per query kind, suffixed onto this prefix by
// core/query_obs.cc ("pipeline.selection.runs", ...).
inline constexpr char kPipelinePrefix[] = "pipeline.";
inline constexpr char kPipelineRunsSuffix[] = ".runs";

// Stage aggregates (from StageCosts / StageCounts).
inline constexpr char kStageMbrMs[] = "stage.mbr.ms";            // gauge
inline constexpr char kStageMbrOut[] = "stage.mbr.out";          // counter
inline constexpr char kStageFilterMs[] = "stage.filter.ms";      // gauge
inline constexpr char kStageFilterDecided[] = "stage.filter.decided";
inline constexpr char kStageFilterRasterPos[] = "stage.filter.raster_pos";
inline constexpr char kStageFilterRasterNeg[] = "stage.filter.raster_neg";
inline constexpr char kStageCompareMs[] = "stage.compare.ms";    // gauge
inline constexpr char kStageCompareIn[] = "stage.compare.in";    // counter
inline constexpr char kQueryResults[] = "query.results";         // counter

// Refinement routing (from HwCounters).
inline constexpr char kRefineTests[] = "refine.tests";
inline constexpr char kRefineMbrMisses[] = "refine.mbr_misses";
inline constexpr char kRefinePipHits[] = "refine.pip_hits";
inline constexpr char kRefineSwThresholdSkips[] = "refine.sw_threshold_skips";
inline constexpr char kRefineHwTests[] = "refine.hw_tests";
inline constexpr char kRefineHwRejects[] = "refine.hw_rejects";
inline constexpr char kRefineSwTests[] = "refine.sw_tests";
inline constexpr char kRefineWidthFallbacks[] = "refine.width_fallbacks";
inline constexpr char kRefineFillSpans[] = "refine.fill_spans";
inline constexpr char kRefineScanSpans[] = "refine.scan_spans";
inline constexpr char kRefineFillSaturationStops[] =
    "refine.fill_saturation_stops";
inline constexpr char kRefineScanHitStops[] = "refine.scan_hit_stops";
inline constexpr char kRefinePipMs[] = "refine.pip_ms";  // gauge
inline constexpr char kRefineHwMs[] = "refine.hw_ms";    // gauge
inline constexpr char kRefineSwMs[] = "refine.sw_ms";    // gauge

// Batched hardware testing (from BatchCounters).
inline constexpr char kBatchBatches[] = "batch.batches";
inline constexpr char kBatchBatchedPairs[] = "batch.batched_pairs";
inline constexpr char kBatchFillMs[] = "batch.fill_ms";  // gauge
inline constexpr char kBatchScanMs[] = "batch.scan_ms";  // gauge

// Distribution histograms (power-of-two buckets).
inline constexpr char kHistPairVertices[] = "refine.pair_vertices";
inline constexpr char kHistPixelsColored[] = "hw.pixels_colored";
inline constexpr char kHistBatchPairs[] = "batch.pairs_per_batch";
inline constexpr char kHistBatchTiles[] = "batch.tiles_per_batch";
inline constexpr char kHistBatchOccupancyPct[] = "batch.occupancy_pct";
inline constexpr char kHistQueueWaitUs[] = "pool.queue_wait_us";

// Row-span kernel backend actually running (DESIGN.md §14).
// gauge: 0 = scalar, 1 = avx2. Set once per tester at construction.
inline constexpr char kHwSimdBackend[] = "hw.simd_backend";

// Simulated-hardware primitive counts (glsim::RenderContext).
inline constexpr char kGlsimDrawSegments[] = "glsim.draw_segments";
inline constexpr char kGlsimDrawPoints[] = "glsim.draw_points";
inline constexpr char kGlsimAccumOps[] = "glsim.accum_ops";
inline constexpr char kGlsimMinmaxSearches[] = "glsim.minmax_searches";
inline constexpr char kGlsimClears[] = "glsim.clears";

// Raster-interval approximation (filter/interval_approx, DESIGN.md §12).
inline constexpr char kStageIntervalHits[] = "stage.interval.hits";
inline constexpr char kStageIntervalMisses[] = "stage.interval.misses";
inline constexpr char kStageIntervalUndecided[] = "stage.interval.undecided";
inline constexpr char kIntervalBuildMs[] = "interval.build_ms";  // gauge
inline constexpr char kIntervalObjects[] = "interval.build_objects";
inline constexpr char kIntervalUnapproximated[] =
    "interval.build_unapproximated";
inline constexpr char kIntervalIntervals[] = "interval.build_intervals";

// Per-pipeline per-stage latency histograms (microseconds per query),
// suffixed onto kPipelinePrefix + kind by core/query_obs.cc
// ("pipeline.join.filter_us", ...). Power-of-two buckets; the report's
// p50/p90/p99 columns come from HistogramSnapshot::Quantile over these.
inline constexpr char kPipelineMbrUsSuffix[] = ".mbr_us";
inline constexpr char kPipelineFilterUsSuffix[] = ".filter_us";
inline constexpr char kPipelineCompareUsSuffix[] = ".compare_us";
inline constexpr char kPipelineTotalUsSuffix[] = ".total_us";

// Hardware PMU telemetry (obs/perf_counters.h, DESIGN.md §15).
// kPmuAvailable is a 0/1 gauge: whether perf_event_open worked in this
// environment (0 in most containers/CI — the counters then stay zero).
inline constexpr char kPmuAvailable[] = "pmu.available";  // gauge
// Counters of multiplex-corrected event deltas, indexed
// [obs::PmuStage][obs::PmuEvent] — keep rows/columns in lockstep with
// those enums (4 stages x 4 events).
inline constexpr const char* kPmuStageEventNames[4][4] = {
    {"pmu.hw_fill.cycles", "pmu.hw_fill.instructions",
     "pmu.hw_fill.cache_misses", "pmu.hw_fill.branch_misses"},
    {"pmu.hw_scan.cycles", "pmu.hw_scan.instructions",
     "pmu.hw_scan.cache_misses", "pmu.hw_scan.branch_misses"},
    {"pmu.interval_decide.cycles", "pmu.interval_decide.instructions",
     "pmu.interval_decide.cache_misses", "pmu.interval_decide.branch_misses"},
    {"pmu.exact_compare.cycles", "pmu.exact_compare.instructions",
     "pmu.exact_compare.cache_misses", "pmu.exact_compare.branch_misses"},
};

// Trace drop-cap visibility: events discarded after a track hit
// TraceSession::kMaxEventsPerTrack. The session only counts internally;
// the bench harness exports the count under this name so truncated traces
// are visible in reports and JSON.
inline constexpr char kTraceDropped[] = "trace.dropped";

// Paranoid conservativeness oracle (core/paranoid.h).
inline constexpr char kParanoidChecks[] = "paranoid.checks";

// Robustness: faults, degradation, deadlines (DESIGN.md §11).
inline constexpr char kRefineHwFaults[] = "refine.hw_faults";
inline constexpr char kRefineHwFallbackPairs[] = "refine.hw_fallback_pairs";
inline constexpr char kBreakerState[] = "breaker.state";  // gauge: 0=closed,
                                                          // 1=open, 2=half
inline constexpr char kBreakerTransitions[] = "breaker.transitions";
inline constexpr char kBreakerOpens[] = "breaker.opens";
inline constexpr char kQueryDeadlineExceeded[] = "query.deadline_exceeded";
inline constexpr char kQueryTruncated[] = "query.truncated";

// Query server (core/server.h, DESIGN.md §16): bounded admission queue with
// overload shedding and a deterministic degradation ladder.
inline constexpr char kServerQueueDepth[] = "server.queue_depth";  // gauge
inline constexpr char kServerQueueDepthMax[] =
    "server.queue_depth_max";                                      // gauge
inline constexpr char kServerAdmitted[] = "server.admitted";
inline constexpr char kServerShed[] = "server.shed";
inline constexpr char kServerCompleted[] = "server.completed";
inline constexpr char kServerDegradedL1[] = "server.degraded_l1";
inline constexpr char kServerDegradedL2[] = "server.degraded_l2";
inline constexpr char kServerDegradedL3[] = "server.degraded_l3";
inline constexpr char kServerVerified[] = "server.verified";
inline constexpr char kServerVerifyMismatch[] = "server.verify_mismatch";
inline constexpr char kHistAdmissionWaitUs[] = "server.admission_wait_us";

}  // namespace hasj::obs

#endif  // HASJ_OBS_NAMES_H_
