#include "obs/json.h"

#include <cmath>
#include <cstdio>

namespace hasj::obs {

void JsonWriter::BeforeValue() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!stack_.empty()) {
    if (stack_.back().has_value) out_->push_back(',');
    stack_.back().has_value = true;
  }
}

void JsonWriter::BeginObject() {
  BeforeValue();
  out_->push_back('{');
  stack_.push_back({});
}

void JsonWriter::EndObject() {
  stack_.pop_back();
  out_->push_back('}');
}

void JsonWriter::BeginArray() {
  BeforeValue();
  out_->push_back('[');
  stack_.push_back({});
}

void JsonWriter::EndArray() {
  stack_.pop_back();
  out_->push_back(']');
}

void JsonWriter::Key(std::string_view key) {
  if (!stack_.empty()) {
    if (stack_.back().has_value) out_->push_back(',');
    stack_.back().has_value = true;
  }
  out_->push_back('"');
  Escape(key);
  out_->append("\":");
  after_key_ = true;
}

void JsonWriter::String(std::string_view value) {
  BeforeValue();
  out_->push_back('"');
  Escape(value);
  out_->push_back('"');
}

void JsonWriter::Int(int64_t value) {
  BeforeValue();
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(value));
  out_->append(buf);
}

void JsonWriter::Double(double value) {
  BeforeValue();
  if (!std::isfinite(value)) {
    out_->append("null");
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  out_->append(buf);
}

void JsonWriter::Bool(bool value) {
  BeforeValue();
  out_->append(value ? "true" : "false");
}

void JsonWriter::Null() {
  BeforeValue();
  out_->append("null");
}

void JsonWriter::Escape(std::string_view value) {
  for (const char c : value) {
    switch (c) {
      case '"':
        out_->append("\\\"");
        break;
      case '\\':
        out_->append("\\\\");
        break;
      case '\n':
        out_->append("\\n");
        break;
      case '\r':
        out_->append("\\r");
        break;
      case '\t':
        out_->append("\\t");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out_->append(buf);
        } else {
          out_->push_back(c);
        }
        break;
    }
  }
}

}  // namespace hasj::obs
