#include "obs/perf_counters.h"

#include <atomic>
#include <cstring>

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace hasj::obs {

namespace {

// Sessions are numbered globally so the thread-local group cache can tell a
// live session apart from a dead one that reused its address (the same
// scheme as TraceSession's track cache).
std::atomic<uint64_t> g_next_pmu_id{1};

struct GroupCache {
  uint64_t session_id = 0;
  void* group = nullptr;
};

thread_local GroupCache t_group_cache;

const char* const kStageNames[kPmuStageCount] = {
    "hw_fill", "hw_scan", "interval_decide", "exact_compare"};
const char* const kEventNames[kPmuEventCount] = {
    "cycles", "instructions", "cache_misses", "branch_misses"};
// Span names must outlive the trace session, hence static literals.
const char* const kStageSpanNames[kPmuStageCount] = {
    "pmu.hw_fill", "pmu.hw_scan", "pmu.interval_decide", "pmu.exact_compare"};

}  // namespace

const char* PmuStageName(PmuStage stage) {
  return kStageNames[static_cast<size_t>(stage)];
}

const char* PmuEventName(PmuEvent event) {
  return kEventNames[static_cast<size_t>(event)];
}

int64_t PmuSnapshot::total(PmuEvent event) const {
  int64_t sum = 0;
  for (int s = 0; s < kPmuStageCount; ++s) {
    sum += value[static_cast<size_t>(s)][static_cast<size_t>(event)];
  }
  return sum;
}

PmuSnapshot& PmuSnapshot::operator-=(const PmuSnapshot& o) {
  for (int s = 0; s < kPmuStageCount; ++s) {
    for (int e = 0; e < kPmuEventCount; ++e) {
      value[static_cast<size_t>(s)][static_cast<size_t>(e)] -=
          o.value[static_cast<size_t>(s)][static_cast<size_t>(e)];
    }
    scopes[static_cast<size_t>(s)] -= o.scopes[static_cast<size_t>(s)];
  }
  return *this;
}

PmuSnapshot PmuSnapshotOf(const PerfCounters* pmu) {
  return pmu != nullptr ? pmu->Snapshot() : PmuSnapshot{};
}

#if defined(__linux__)

namespace {

// Hardware event ids in PmuEvent order.
constexpr uint64_t kEventConfigs[kPmuEventCount] = {
    PERF_COUNT_HW_CPU_CYCLES, PERF_COUNT_HW_INSTRUCTIONS,
    PERF_COUNT_HW_CACHE_MISSES, PERF_COUNT_HW_BRANCH_MISSES};

int OpenEvent(uint64_t config, int group_fd) {
  perf_event_attr attr;
  std::memset(&attr, 0, sizeof(attr));
  attr.size = sizeof(attr);
  attr.type = PERF_TYPE_HARDWARE;
  attr.config = config;
  // User space only: counting kernel time needs elevated
  // perf_event_paranoid, and the rasterizer/compare hot paths are pure
  // user-space work anyway.
  attr.exclude_kernel = 1;
  attr.exclude_hv = 1;
  // One read() returns the whole group plus the enabled/running times the
  // multiplex correction needs.
  attr.read_format = PERF_FORMAT_GROUP | PERF_FORMAT_TOTAL_TIME_ENABLED |
                     PERF_FORMAT_TOTAL_TIME_RUNNING;
  return static_cast<int>(syscall(SYS_perf_event_open, &attr, /*pid=*/0,
                                  /*cpu=*/-1, group_fd, /*flags=*/0UL));
}

}  // namespace

// One perf event group for one thread: the leader fd plus the read-buffer
// position of each PmuEvent (-1 when that sibling failed to open — the
// group degrades per event, not as a whole).
struct PerfCounters::ThreadGroup {
  int leader_fd = -1;
  int n_values = 0;
  std::array<int, kPmuEventCount> position{-1, -1, -1, -1};

  ~ThreadGroup() {
    // Closing the leader last keeps the group valid while siblings close.
    for (int e = kPmuEventCount - 1; e >= 1; --e) {
      if (fds[static_cast<size_t>(e)] >= 0) close(fds[static_cast<size_t>(e)]);
    }
    if (leader_fd >= 0) close(leader_fd);
  }

  std::array<int, kPmuEventCount> fds{-1, -1, -1, -1};
};

bool PerfCounters::Supported() {
  static const bool supported = [] {
    const int fd = OpenEvent(PERF_COUNT_HW_CPU_CYCLES, -1);
    if (fd < 0) return false;
    close(fd);
    return true;
  }();
  return supported;
}

PerfCounters::ThreadGroup* PerfCounters::AcquireThreadGroup() {
  if (t_group_cache.session_id == instance_id_) {
    return static_cast<ThreadGroup*>(t_group_cache.group);
  }
  ThreadGroup* group = nullptr;
  if (available()) {
    auto owned = std::make_unique<ThreadGroup>();
    owned->leader_fd = OpenEvent(kEventConfigs[0], -1);
    if (owned->leader_fd >= 0) {
      owned->fds[0] = owned->leader_fd;
      owned->position[0] = 0;
      owned->n_values = 1;
      for (int e = 1; e < kPmuEventCount; ++e) {
        const int fd =
            OpenEvent(kEventConfigs[e], owned->leader_fd);
        if (fd < 0) continue;  // that event reads as zero
        owned->fds[static_cast<size_t>(e)] = fd;
        owned->position[static_cast<size_t>(e)] = owned->n_values++;
      }
      group = owned.get();
      MutexLock lock(&mu_);
      groups_.push_back(std::move(owned));
    }
  }
  // Cache failures too, so a thread that cannot open a group pays one
  // thread_local compare per scope, not one syscall.
  t_group_cache = {instance_id_, group};
  return group;
}

bool PerfCounters::ReadGroup(ThreadGroup* group, PmuRawSample* sample) {
  // read() layout with PERF_FORMAT_GROUP: nr, time_enabled, time_running,
  // value[nr].
  uint64_t buf[3 + kPmuEventCount] = {};
  const size_t want =
      (3 + static_cast<size_t>(group->n_values)) * sizeof(uint64_t);
  const ssize_t got = read(group->leader_fd, buf, want);
  if (got != static_cast<ssize_t>(want)) return false;
  sample->time_enabled = buf[1];
  sample->time_running = buf[2];
  for (int e = 0; e < kPmuEventCount; ++e) {
    const int pos = group->position[static_cast<size_t>(e)];
    sample->value[static_cast<size_t>(e)] =
        pos >= 0 ? buf[3 + static_cast<size_t>(pos)] : 0;
  }
  return true;
}

#else  // !defined(__linux__)

struct PerfCounters::ThreadGroup {};

bool PerfCounters::Supported() { return false; }

PerfCounters::ThreadGroup* PerfCounters::AcquireThreadGroup() {
  return nullptr;
}

bool PerfCounters::ReadGroup(ThreadGroup* /*group*/,
                             PmuRawSample* /*sample*/) {
  return false;
}

#endif  // defined(__linux__)

PerfCounters::PerfCounters()
    : instance_id_(g_next_pmu_id.fetch_add(1, std::memory_order_relaxed)) {
  available_.store(Supported(), std::memory_order_relaxed);
}

PerfCounters::~PerfCounters() = default;

PmuSnapshot PerfCounters::Snapshot() const {
  PmuSnapshot snap;
  for (int s = 0; s < kPmuStageCount; ++s) {
    for (int e = 0; e < kPmuEventCount; ++e) {
      snap.value[static_cast<size_t>(s)][static_cast<size_t>(e)] =
          events_[static_cast<size_t>(s)][static_cast<size_t>(e)].Sum();
    }
    snap.scopes[static_cast<size_t>(s)] =
        scopes_[static_cast<size_t>(s)].Sum();
  }
  return snap;
}

void PerfCounters::Accumulate(
    PmuStage stage, const std::array<int64_t, kPmuEventCount>& delta) {
  auto& row = events_[static_cast<size_t>(stage)];
  for (int e = 0; e < kPmuEventCount; ++e) {
    row[static_cast<size_t>(e)].Add(delta[static_cast<size_t>(e)]);
  }
  scopes_[static_cast<size_t>(stage)].Increment();
}

void PmuScope::Begin() {
  group_ = pmu_->AcquireThreadGroup();
  if (group_ == nullptr) return;
  if (!PerfCounters::ReadGroup(group_, &begin_)) {
    group_ = nullptr;
    return;
  }
  if (trace_ != nullptr) start_us_ = trace_->NowUs();
}

void PmuScope::End() {
  PmuRawSample end;
  if (!PerfCounters::ReadGroup(group_, &end)) return;
  // Multiplex correction: scale the raw delta by the fraction of the
  // scope's interval the group was actually scheduled on the PMU.
  const uint64_t enabled = end.time_enabled - begin_.time_enabled;
  const uint64_t running = end.time_running - begin_.time_running;
  std::array<int64_t, kPmuEventCount> delta{};
  if (running > 0) {
    const double scale =
        static_cast<double>(enabled) / static_cast<double>(running);
    for (int e = 0; e < kPmuEventCount; ++e) {
      const uint64_t raw = end.value[static_cast<size_t>(e)] -
                           begin_.value[static_cast<size_t>(e)];
      delta[static_cast<size_t>(e)] =
          static_cast<int64_t>(static_cast<double>(raw) * scale + 0.5);
    }
  }
  pmu_->Accumulate(stage_, delta);
  if (trace_ != nullptr) {
    const size_t s = static_cast<size_t>(stage_);
    trace_->SpanWithArgs(
        kStageSpanNames[s], "pmu", start_us_, trace_->NowUs() - start_us_,
        {{kEventNames[0], delta[0]},
         {kEventNames[1], delta[1]},
         {kEventNames[2], delta[2]},
         {kEventNames[3], delta[3]}});
  }
}

}  // namespace hasj::obs
