#ifndef HASJ_OBS_PERF_COUNTERS_H_
#define HASJ_OBS_PERF_COUNTERS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace hasj::obs {

// Hardware PMU telemetry (DESIGN.md §15).
//
// A PerfCounters session samples the CPU's performance monitoring unit via
// perf_event_open(2): cycles, instructions, cache misses and branch misses,
// opened as one counter group per recording thread (pid = self, cpu = any,
// user space only, so no privileges beyond perf_event_paranoid <= 2 are
// needed). PmuScope reads the group at scope entry and exit and attributes
// the multiplex-corrected delta to one of four pipeline stages — the
// hardware fill and scan passes, the interval decision loop, and the exact
// software compare — which is exactly the attribution the paper's
// hardware/software crossover argument needs and wall clocks cannot give.
//
// Multiplex correction: the kernel rotates counter groups when more groups
// exist than hardware counters, so each read reports TIME_ENABLED and
// TIME_RUNNING alongside the raw values. A scope's delta is scaled by
// enabled/running over the scope's own interval, the standard unbiased
// estimate; when the group ran the whole time the factor is exactly 1.
//
// Degradation: in containers and CI the syscall is typically denied
// (seccomp, perf_event_paranoid, missing PMU). Construction probes once;
// when unavailable every PmuScope is inert and available() reports false,
// which consumers export as the `pmu.available` gauge — runs degrade to
// zeros, never to errors. A null PerfCounters* (the HwConfig default)
// costs one pointer test per scope, like trace/metrics/faults.
//
// Accumulation is sharded (obs::Counter) so concurrent refinement workers
// do not contend; Snapshot() merges the shards. Per-query deltas come from
// snapshot subtraction: snapshot at query start, subtract from the snapshot
// at query end (core/query_obs.cc does this).

// Pipeline stages the PMU attributes cost to. Values index
// kPmuStageEventNames (obs/names.h); keep the two in lockstep.
enum class PmuStage {
  kHwFill = 0,         // hardware rasterization fill pass
  kHwScan = 1,         // hardware probe/scan pass
  kIntervalDecide = 2, // raster-interval filter decision loop
  kExactCompare = 3,   // exact software segment/distance tests
};
inline constexpr int kPmuStageCount = 4;

// Hardware events sampled per stage. Values index the inner dimension of
// kPmuStageEventNames (obs/names.h).
enum class PmuEvent {
  kCycles = 0,
  kInstructions = 1,
  kCacheMisses = 2,
  kBranchMisses = 3,
};
inline constexpr int kPmuEventCount = 4;

const char* PmuStageName(PmuStage stage);  // "hw_fill", ...
const char* PmuEventName(PmuEvent event);  // "cycles", ...

// One raw group read: the kernel's enabled/running times plus the raw
// (unscaled) event values. Events whose counter failed to open read 0.
struct PmuRawSample {
  uint64_t time_enabled = 0;
  uint64_t time_running = 0;
  std::array<uint64_t, kPmuEventCount> value{};
};

// Point-in-time merge of a session's accumulated stage deltas
// (multiplex-corrected counts) plus how many scopes closed per stage.
struct PmuSnapshot {
  std::array<std::array<int64_t, kPmuEventCount>, kPmuStageCount> value{};
  std::array<int64_t, kPmuStageCount> scopes{};

  int64_t at(PmuStage stage, PmuEvent event) const {
    return value[static_cast<size_t>(stage)][static_cast<size_t>(event)];
  }
  // Sum of one event across all stages.
  int64_t total(PmuEvent event) const;
  PmuSnapshot& operator-=(const PmuSnapshot& o);
  bool operator==(const PmuSnapshot& o) const = default;
};

// Convenience for per-query deltas: empty snapshot when no session is
// attached, so pipelines can capture unconditionally.
class PerfCounters;
PmuSnapshot PmuSnapshotOf(const PerfCounters* pmu);

class PerfCounters {
 public:
  PerfCounters();
  ~PerfCounters();
  PerfCounters(const PerfCounters&) = delete;
  PerfCounters& operator=(const PerfCounters&) = delete;

  // Whether this process can open the hardware counter group at all
  // (probed once per process; false on non-Linux builds and when
  // perf_event_open is denied or the PMU is absent).
  static bool Supported();

  // Probed at construction; false means every scope is inert and all
  // deltas stay zero. Exported as the pmu.available gauge.
  bool available() const {
    return available_.load(std::memory_order_relaxed);
  }

  PmuSnapshot Snapshot() const;

 private:
  friend class PmuScope;

  // Per-thread perf event group (leader + siblings), opened lazily on a
  // thread's first scope and cached thread-locally (keyed by instance id,
  // mirroring TraceSession's track cache). Defined in the .cc.
  struct ThreadGroup;

  // The calling thread's group; null when the PMU is unavailable or this
  // thread's open failed. One thread_local lookup on the fast path.
  ThreadGroup* AcquireThreadGroup();
  // Reads the group into *sample; false on a short or failed read.
  static bool ReadGroup(ThreadGroup* group, PmuRawSample* sample);
  void Accumulate(PmuStage stage,
                  const std::array<int64_t, kPmuEventCount>& delta);

  const uint64_t instance_id_;
  std::atomic<bool> available_{false};

  // Sharded accumulators; Counter is internally synchronized.
  // lint:allow(guarded-by-coverage): sharded relaxed atomics, not mu_ state
  std::array<std::array<Counter, kPmuEventCount>, kPmuStageCount> events_;
  // lint:allow(guarded-by-coverage): sharded relaxed atomics, not mu_ state
  std::array<Counter, kPmuStageCount> scopes_;

  mutable Mutex mu_;
  // Owns the per-thread groups (fd cleanup at destruction); the groups
  // themselves are only ever read by their owning thread.
  std::vector<std::unique_ptr<ThreadGroup>> groups_ HASJ_GUARDED_BY(mu_);
};

// RAII stage attribution: reads the calling thread's counter group at
// construction and destruction and accumulates the multiplex-corrected
// delta under `stage`. Inert (two pointer tests) when `pmu` is null or
// unavailable. When `trace` is also non-null, the scope additionally emits
// a "pmu.<stage>" span carrying the four deltas as args — this is how PMU
// numbers land on Chrome-trace spans; pass null at per-pair granularity
// where a span per pair would drown the trace.
class PmuScope {
 public:
  explicit PmuScope(PerfCounters* pmu, PmuStage stage,
                    TraceSession* trace = nullptr)
      : pmu_(pmu), stage_(stage), trace_(trace) {
    if (pmu_ != nullptr) Begin();
  }
  ~PmuScope() {
    if (group_ != nullptr) End();
  }
  PmuScope(const PmuScope&) = delete;
  PmuScope& operator=(const PmuScope&) = delete;

 private:
  void Begin();
  void End();

  PerfCounters* pmu_;
  PerfCounters::ThreadGroup* group_ = nullptr;
  PmuStage stage_;
  TraceSession* trace_;
  double start_us_ = 0.0;
  PmuRawSample begin_;
};

}  // namespace hasj::obs

#endif  // HASJ_OBS_PERF_COUNTERS_H_
