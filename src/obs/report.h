#ifndef HASJ_OBS_REPORT_H_
#define HASJ_OBS_REPORT_H_

#include <string>

#include "obs/metrics.h"

namespace hasj::obs {

// EXPLAIN ANALYZE: renders a metrics snapshot as the Figure-8-style ASCII
// pipeline tree (MBR filter -> intermediate filter -> geometry comparison)
// with per-stage times, cardinalities, filter selectivity, and hw/sw
// routing fractions, followed by the recorded distribution histograms.
// Deterministic for a given snapshot, so it is golden-testable.
std::string RenderReport(const MetricsSnapshot& snapshot);

}  // namespace hasj::obs

#endif  // HASJ_OBS_REPORT_H_
