#include "obs/query_log.h"

#include <cmath>
#include <utility>
#include <vector>

namespace hasj::obs {

namespace {

// ShouldSample's fixed-point scale: rates are quantized to 2^-16, so the
// smallest non-zero rate keeps one record in 65536.
constexpr int64_t kSampleOne = int64_t{1} << 16;

}  // namespace

QueryLog::~QueryLog() {
  // Best effort on destruction; callers that care about write errors call
  // Close() themselves (the bench harness does).
  (void)Close();
}

Status QueryLog::Open(const std::string& path, size_t capacity) {
  if (open()) {
    return Status::InvalidArgument("query log already open");
  }
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::InvalidArgument("cannot open query log file: " + path);
  }
  {
    MutexLock lock(&mu_);
    closing_ = false;
    write_error_ = Status::Ok();
    capacity_ = capacity > 0 ? capacity : 1;
  }
  file_ = f;
  writer_ = std::thread([this] { WriterLoop(); });
  open_.store(true, std::memory_order_release);
  return Status::Ok();
}

void QueryLog::Append(std::string line) {
  if (!open()) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  bool notify = false;
  {
    MutexLock lock(&mu_);
    if (closing_ || queue_.size() >= capacity_) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    notify = queue_.empty();
    queue_.push_back(std::move(line));
  }
  if (notify) cv_.NotifyOne();
}

bool QueryLog::ShouldSample(double rate) {
  if (rate >= 1.0) return true;
  const int64_t step = static_cast<int64_t>(rate * kSampleOne);
  if (step <= 0) return false;
  // The accumulator gains `rate` (in 2^-16 units) per call; a call samples
  // iff it carries the accumulator across a whole-record boundary. Exact,
  // deterministic in the number of calls, and one relaxed fetch_add.
  const int64_t before = sample_acc_.fetch_add(step, std::memory_order_relaxed);
  return (before + step) / kSampleOne > before / kSampleOne;
}

Status QueryLog::Close() {
  if (!open()) {
    MutexLock lock(&mu_);
    return write_error_;
  }
  {
    MutexLock lock(&mu_);
    closing_ = true;
  }
  cv_.NotifyAll();
  writer_.join();
  open_.store(false, std::memory_order_release);
  const int close_rc = std::fclose(file_);
  file_ = nullptr;
  MutexLock lock(&mu_);
  if (write_error_.ok() && close_rc != 0) {
    write_error_ = Status::Internal("query log close failed");
  }
  return write_error_;
}

void QueryLog::WriterLoop() {
  std::vector<std::string> batch;
  bool failed = false;
  for (;;) {
    batch.clear();
    {
      MutexLock lock(&mu_);
      while (queue_.empty() && !closing_) cv_.Wait(mu_);
      while (!queue_.empty()) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      if (batch.empty() && closing_) return;
    }
    // I/O outside the lock: producers can keep appending while the batch
    // drains to disk.
    for (std::string& line : batch) {
      line.push_back('\n');
      if (!failed &&
          std::fwrite(line.data(), 1, line.size(), file_) != line.size()) {
        failed = true;
        MutexLock lock(&mu_);
        if (write_error_.ok()) {
          write_error_ = Status::Internal("query log short write");
        }
      }
      if (failed) {
        dropped_.fetch_add(1, std::memory_order_relaxed);
      } else {
        written_.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }
}

}  // namespace hasj::obs
