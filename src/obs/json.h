#ifndef HASJ_OBS_JSON_H_
#define HASJ_OBS_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace hasj::obs {

// Minimal streaming JSON writer (no external dependency). Handles comma
// placement and string escaping; numbers are emitted with enough precision
// to round-trip and non-finite doubles degrade to null, so the output is
// always syntactically valid JSON. Used by the trace writer (Chrome
// trace_event files) and the bench harness (--json reports).
class JsonWriter {
 public:
  explicit JsonWriter(std::string* out) : out_(out) {}

  void BeginObject();
  void EndObject();
  void BeginArray();
  void EndArray();

  // Object member key; must be followed by exactly one value (or
  // Begin{Object,Array}).
  void Key(std::string_view key);

  void String(std::string_view value);
  void Int(int64_t value);
  void Double(double value);
  void Bool(bool value);
  void Null();

 private:
  void BeforeValue();
  void Escape(std::string_view value);

  std::string* out_;
  // One frame per open container: whether a value has been written (comma
  // management) and whether the pending slot is a member value after Key().
  struct Frame {
    bool has_value = false;
  };
  std::vector<Frame> stack_;
  bool after_key_ = false;
};

}  // namespace hasj::obs

#endif  // HASJ_OBS_JSON_H_
