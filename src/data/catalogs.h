#ifndef HASJ_DATA_CATALOGS_H_
#define HASJ_DATA_CATALOGS_H_

#include "data/generator.h"

namespace hasj::data {

// Synthetic stand-ins for the paper's five real datasets, calibrated to
// Table 2 (object count and min/max/mean vertex counts) and §4.1.2's
// descriptions of their roles. Extents use real lon/lat boxes (Wyoming for
// the land datasets, the contiguous US for the others) so coordinates have
// the 4-6 digit accuracy §3 discusses.
//
// Table 2 reference values:
//   LANDC     N=14,731  vertices 3 / 4,397  / 192
//   LANDO     N=33,860  vertices 3 / 8,807  / 20
//   STATES50  N=31      vertices 4 / 10,744 / 138 (printed value; the mean
//                       is inconsistent with the max and likely truncated,
//                       taken literally here and noted in EXPERIMENTS.md)
//   PRISM     N=6,243   vertices 3 / 29,556 / 68
//   WATER     N=21,866  vertices 3 / 39,360 / 91
//
// `scale` in [0, 1] shrinks object counts proportionally for bench runs
// while keeping every distribution; 1.0 reproduces the Table 2 sizes.

GeneratorProfile LandcProfile(double scale = 1.0);     // WY land cover
GeneratorProfile LandoProfile(double scale = 1.0);     // WY land ownership
GeneratorProfile States50Profile(double scale = 1.0); // US state boundaries
GeneratorProfile PrismProfile(double scale = 1.0);     // US precipitation
GeneratorProfile WaterProfile(double scale = 1.0);     // US water bodies

}  // namespace hasj::data

#endif  // HASJ_DATA_CATALOGS_H_
