#ifndef HASJ_DATA_IO_H_
#define HASJ_DATA_IO_H_

#include <string>

#include "common/status.h"
#include "data/dataset.h"

namespace hasj::data {

// Plain-text dataset format: one WKT POLYGON per line; '#' lines are
// comments. Lets users run the pipelines on real data (e.g. shapefiles
// exported with ogr2ogr to WKT) instead of the synthetic profiles.
[[nodiscard]] Status SaveDataset(const Dataset& dataset, const std::string& path);
[[nodiscard]] Result<Dataset> LoadDataset(const std::string& path, std::string name = "");

}  // namespace hasj::data

#endif  // HASJ_DATA_IO_H_
