#ifndef HASJ_DATA_IO_H_
#define HASJ_DATA_IO_H_

#include <cstdint>
#include <string>

#include "common/fault.h"
#include "common/status.h"
#include "data/dataset.h"
#include "geom/wkt.h"

namespace hasj::data {

// Input hardening caps for dataset loading (DESIGN.md §11): a dataset file
// is untrusted input, so the loader bounds line length, object count, and
// the per-polygon WKT limits before anything is allocated proportionally.
// Violations return kOutOfRange with the offending line number; 0 disables
// a cap.
struct LoadLimits {
  int64_t max_line_bytes = 16 << 20;  // one WKT polygon per line
  int64_t max_objects = 0;            // unlimited by default
  geom::WktLimits wkt;
  // Fault-injection hook (null = none): the kDatasetLoad site fires once
  // per loaded object, letting chaos tests exercise mid-load failures.
  FaultInjector* faults = nullptr;
};

// Plain-text dataset format: one WKT POLYGON per line; '#' lines are
// comments. Lets users run the pipelines on real data (e.g. shapefiles
// exported with ogr2ogr to WKT) instead of the synthetic profiles.
[[nodiscard]] Status SaveDataset(const Dataset& dataset, const std::string& path);
[[nodiscard]] Result<Dataset> LoadDataset(const std::string& path, std::string name = "",
                                          const LoadLimits& limits = {});

// Replaces `dataset`'s polygons with the file's contents, keeping its name
// and bumping its epoch (so signature/interval caches keyed on the epoch
// rebuild instead of serving stale snapshots). All-or-nothing: the file is
// parsed into a scratch dataset first, and on any error `dataset` is left
// untouched.
[[nodiscard]] Status ReloadDatasetInPlace(const std::string& path, Dataset* dataset,
                                          const LoadLimits& limits = {});

}  // namespace hasj::data

#endif  // HASJ_DATA_IO_H_
