#include "data/io.h"

#include <fstream>
#include <utility>

#include "geom/wkt.h"

namespace hasj::data {

Status SaveDataset(const Dataset& dataset, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::NotFound("cannot open for writing: " + path);
  out << "# hasj dataset: " << dataset.name() << "\n";
  for (const geom::Polygon& p : dataset.polygons()) {
    out << geom::ToWkt(p) << "\n";
  }
  out.flush();
  if (!out) return Status::Internal("write failed: " + path);
  return Status::Ok();
}

Result<Dataset> LoadDataset(const std::string& path, std::string name,
                            const LoadLimits& limits) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open for reading: " + path);
  Dataset dataset(name.empty() ? path : std::move(name));
  std::string line;
  int64_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (limits.max_line_bytes > 0 &&
        static_cast<int64_t>(line.size()) > limits.max_line_bytes) {
      return Status::OutOfRange(path + ":" + std::to_string(line_no) +
                                ": line exceeds " +
                                std::to_string(limits.max_line_bytes) +
                                " bytes");
    }
    if (line.empty() || line[0] == '#') continue;
    if (limits.max_objects > 0 && dataset.size() >=
                                      static_cast<size_t>(limits.max_objects)) {
      return Status::OutOfRange(path + ":" + std::to_string(line_no) +
                                ": dataset exceeds " +
                                std::to_string(limits.max_objects) +
                                " objects");
    }
    if (limits.faults != nullptr) {
      if (Status s = limits.faults->Check(FaultSite::kDatasetLoad); !s.ok()) {
        return Status(s.code(), path + ":" + std::to_string(line_no) + ": " +
                                    s.message());
      }
    }
    Result<geom::Polygon> poly = geom::ParseWktPolygon(line, limits.wkt);
    if (!poly.ok()) {
      return Status(poly.status().code(),
                    path + ":" + std::to_string(line_no) + ": " +
                        poly.status().message());
    }
    dataset.Add(std::move(poly).value());
  }
  return dataset;
}

Status ReloadDatasetInPlace(const std::string& path, Dataset* dataset,
                            const LoadLimits& limits) {
  Result<Dataset> loaded = LoadDataset(path, dataset->name(), limits);
  if (!loaded.ok()) return loaded.status();
  // Single-bump atomic swap: a reader pinning a snapshot concurrently sees
  // either the full pre-reload or full post-reload content, never the
  // emptied-out intermediate the old Clear+Add loop exposed mid-swap.
  dataset->ReplaceWith(std::move(loaded).value());
  return Status::Ok();
}

}  // namespace hasj::data
