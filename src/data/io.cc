#include "data/io.h"

#include <fstream>
#include <utility>

#include "geom/wkt.h"

namespace hasj::data {

Status SaveDataset(const Dataset& dataset, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::NotFound("cannot open for writing: " + path);
  out << "# hasj dataset: " << dataset.name() << "\n";
  for (const geom::Polygon& p : dataset.polygons()) {
    out << geom::ToWkt(p) << "\n";
  }
  out.flush();
  if (!out) return Status::Internal("write failed: " + path);
  return Status::Ok();
}

Result<Dataset> LoadDataset(const std::string& path, std::string name) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open for reading: " + path);
  Dataset dataset(name.empty() ? path : std::move(name));
  std::string line;
  int64_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    Result<geom::Polygon> poly = geom::ParseWktPolygon(line);
    if (!poly.ok()) {
      return Status::InvalidArgument(path + ":" + std::to_string(line_no) +
                                     ": " + poly.status().message());
    }
    dataset.Add(std::move(poly).value());
  }
  return dataset;
}

}  // namespace hasj::data
