#include "data/versioned_dataset.h"

#include <algorithm>
#include <utility>

#include "common/macros.h"

namespace hasj::data {

VersionedDataset::VersionedDataset(std::string name, size_t capacity,
                                   int max_entries)
    : name_(std::move(name)), slots_(capacity), index_(max_entries) {}

Status VersionedDataset::SeedFrom(const Dataset& dataset) {
  int64_t expected = 0;
  if (!next_.compare_exchange_strong(expected,
                                     static_cast<int64_t>(dataset.size()),
                                     std::memory_order_acq_rel,
                                     std::memory_order_acquire)) {
    return Status::InvalidArgument("SeedFrom requires an empty store");
  }
  if (dataset.size() > capacity()) {
    return Status::ResourceExhausted("seed dataset exceeds store capacity");
  }
  std::vector<index::DynamicRTree::Entry> entries;
  entries.reserve(dataset.size());
  for (size_t i = 0; i < dataset.size(); ++i) {
    slots_[i] = dataset.polygon(i);
    entries.push_back({slots_[i].Bounds(), static_cast<int64_t>(i)});
  }
  return index_.BulkLoad(std::move(entries));
}

Result<int64_t> VersionedDataset::Insert(geom::Polygon polygon) {
  if (polygon.size() < 3) {
    return Status::InvalidArgument("Insert polygon needs >= 3 vertices");
  }
  // Claim a slot. Claims are not returned on failure: ids are never
  // reused, so capacity is a lifetime budget.
  const int64_t slot = next_.fetch_add(1, std::memory_order_acq_rel);
  if (slot >= static_cast<int64_t>(capacity())) {
    return Status::ResourceExhausted("versioned dataset capacity spent");
  }
  slots_[static_cast<size_t>(slot)] = std::move(polygon);
  const Status s =
      index_.Insert(slots_[static_cast<size_t>(slot)].Bounds(), slot);
  if (!s.ok()) return s;
  return slot;
}

Status VersionedDataset::Delete(int64_t id) {
  if (id < 0 || id >= static_cast<int64_t>(capacity())) {
    return Status::NotFound("Delete: id outside store capacity");
  }
  return index_.Delete(slots_[static_cast<size_t>(id)].Bounds(), id);
}

VersionedDataset::Snapshot VersionedDataset::snapshot() const {
  Snapshot snap;
  snap.store_ = this;
  snap.index_ = index_.snapshot();
  return snap;
}

const geom::Polygon& VersionedDataset::Snapshot::polygon(int64_t id) const {
  HASJ_CHECK(store_ != nullptr && id >= 0 &&
             id < static_cast<int64_t>(store_->capacity()));
  return store_->slots_[static_cast<size_t>(id)];
}

const geom::Box& VersionedDataset::Snapshot::mbr(int64_t id) const {
  return polygon(id).Bounds();
}

std::vector<int64_t> VersionedDataset::Snapshot::LiveIds() const {
  std::vector<int64_t> ids;
  ids.reserve(live());
  index_.Visit([](const geom::Box&) { return true; },
               [&](const geom::Box&, int64_t id) { ids.push_back(id); });
  std::sort(ids.begin(), ids.end());
  return ids;
}

Status ApplyUpdateOp(const UpdateOp& op, VersionedDataset* store,
                     std::unordered_map<int64_t, int64_t>* key_to_id) {
  if (op.kind == UpdateOp::Kind::kInsert) {
    Result<int64_t> id = store->Insert(op.polygon);
    if (!id.ok()) return id.status();
    (*key_to_id)[op.key] = id.value();
    return Status::Ok();
  }
  auto it = key_to_id->find(op.key);
  if (it == key_to_id->end()) return Status::Ok();  // insert never admitted
  const int64_t id = it->second;
  key_to_id->erase(it);
  return store->Delete(id);
}

}  // namespace hasj::data
