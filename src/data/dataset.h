#ifndef HASJ_DATA_DATASET_H_
#define HASJ_DATA_DATASET_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "common/stats.h"
#include "common/thread_annotations.h"
#include "geom/box.h"
#include "geom/polygon.h"
#include "index/rtree.h"

namespace hasj::data {

// Summary statistics in the shape of the paper's Table 2.
struct DatasetStats {
  int64_t count = 0;
  int64_t min_vertices = 0;
  int64_t max_vertices = 0;
  double mean_vertices = 0.0;
  int64_t total_vertices = 0;
  geom::Box extent;
  double mean_mbr_width = 0.0;
  double mean_mbr_height = 0.0;
};

// An immutable view of a dataset's content at one epoch. Holds the polygon
// vector alive independently of later mutations/reloads of the source
// Dataset, so a pipeline that pins a snapshot at query start computes its
// whole result against one consistent version (DESIGN.md §16).
class DatasetSnapshot {
 public:
  DatasetSnapshot() = default;

  size_t size() const { return polygons_ == nullptr ? 0 : polygons_->size(); }
  bool empty() const { return size() == 0; }
  const geom::Polygon& polygon(size_t id) const { return (*polygons_)[id]; }
  const geom::Box& mbr(size_t id) const { return (*polygons_)[id].Bounds(); }
  const std::vector<geom::Polygon>& polygons() const { return *polygons_; }
  const geom::Box& Bounds() const { return extent_; }
  uint64_t epoch() const { return epoch_; }

 private:
  friend class Dataset;
  std::shared_ptr<const std::vector<geom::Polygon>> polygons_;
  geom::Box extent_ = geom::Box::Empty();
  uint64_t epoch_ = 0;
};

// An in-memory polygon dataset: the unit the query pipelines operate on.
// Object ids are positions in the polygon vector.
//
// Content is held copy-on-write: snapshot() is O(1) and returns an
// immutable view; a mutation that would affect outstanding snapshots
// clones the vector first, so snapshots are never torn. Mutations and
// snapshot()/ReplaceWith are safe against each other from any thread; the
// plain accessors (polygon/size/Bounds/...) read without locking and keep
// the legacy contract — callers serialize them against mutations, or pin a
// snapshot and read that instead.
class Dataset {
 public:
  Dataset() : content_(std::make_shared<std::vector<geom::Polygon>>()) {}
  explicit Dataset(std::string name)
      : name_(std::move(name)),
        content_(std::make_shared<std::vector<geom::Polygon>>()) {}

  // Copies share content copy-on-write (either side's next mutation
  // clones); moves steal it. (Explicit because of the Mutex member.)
  Dataset(const Dataset& other);
  Dataset(Dataset&& other) noexcept;
  Dataset& operator=(const Dataset& other);
  Dataset& operator=(Dataset&& other) noexcept;

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  size_t size() const { return content_->size(); }
  bool empty() const { return content_->empty(); }
  const geom::Polygon& polygon(size_t id) const { return (*content_)[id]; }
  const geom::Box& mbr(size_t id) const { return (*content_)[id].Bounds(); }
  const std::vector<geom::Polygon>& polygons() const { return *content_; }

  void Add(geom::Polygon polygon) HASJ_EXCLUDES(mu_);

  // Drops every polygon (keeping the name) so the dataset can be refilled
  // in place, e.g. by ReloadDatasetInPlace.
  void Clear() HASJ_EXCLUDES(mu_);

  // Atomically replaces the content with `other`'s in a single epoch bump:
  // readers pinning a snapshot see either the full old or the full new
  // content, never the emptied-out intermediate a Clear+Add loop exposes.
  void ReplaceWith(Dataset&& other) HASJ_EXCLUDES(mu_);

  // Monotone content version: bumped by every Add/Clear/ReplaceWith.
  // Derived snapshots (filter/signature_cache, filter/interval_approx) key
  // on it so a dataset reloaded in place invalidates them instead of
  // silently serving approximations of polygons that no longer exist.
  uint64_t epoch() const { return epoch_.load(std::memory_order_acquire); }

  const geom::Box& Bounds() const { return extent_; }

  // Pins the current content. O(1); safe against concurrent mutations.
  DatasetSnapshot snapshot() const HASJ_EXCLUDES(mu_);

  DatasetStats Stats() const;

  // STR bulk-loaded R-tree over the MBRs (ids = positions).
  index::RTree BuildRTree(int max_entries = 16) const;

 private:
  // Clones content_ if any snapshot (or dataset copy) still shares it.
  void EnsureUniqueLocked() HASJ_REQUIRES(mu_);

  // lint:allow(guarded-by-coverage): set in constructors only, then const.
  std::string name_;
  // Serializes mutations and snapshot()'s pointer copy against them.
  mutable Mutex mu_;
  // Written under mu_; the lock-free legacy accessors above read it under
  // the caller-serialized contract in the class comment.
  // lint:allow(guarded-by-coverage): legacy accessors caller-serialized
  std::shared_ptr<std::vector<geom::Polygon>> content_;
  // lint:allow(guarded-by-coverage): same contract as content_.
  geom::Box extent_ = geom::Box::Empty();
  std::atomic<uint64_t> epoch_{0};
};

// The paper's Equation 2: the base query distance for a within-distance
// join is the mean of the two datasets' average MBR diagonals
// (sqrt(mean width * mean height) per dataset).
double BaseDistance(const Dataset& a, const Dataset& b);

}  // namespace hasj::data

#endif  // HASJ_DATA_DATASET_H_
