#ifndef HASJ_DATA_DATASET_H_
#define HASJ_DATA_DATASET_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/stats.h"
#include "geom/box.h"
#include "geom/polygon.h"
#include "index/rtree.h"

namespace hasj::data {

// Summary statistics in the shape of the paper's Table 2.
struct DatasetStats {
  int64_t count = 0;
  int64_t min_vertices = 0;
  int64_t max_vertices = 0;
  double mean_vertices = 0.0;
  int64_t total_vertices = 0;
  geom::Box extent;
  double mean_mbr_width = 0.0;
  double mean_mbr_height = 0.0;
};

// An in-memory polygon dataset: the unit the query pipelines operate on.
// Object ids are positions in the polygon vector.
class Dataset {
 public:
  Dataset() = default;
  explicit Dataset(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  size_t size() const { return polygons_.size(); }
  bool empty() const { return polygons_.empty(); }
  const geom::Polygon& polygon(size_t id) const { return polygons_[id]; }
  const geom::Box& mbr(size_t id) const { return polygons_[id].Bounds(); }
  const std::vector<geom::Polygon>& polygons() const { return polygons_; }

  void Add(geom::Polygon polygon) {
    extent_.Extend(polygon.Bounds());
    polygons_.push_back(std::move(polygon));
    ++epoch_;
  }

  // Drops every polygon (keeping the name) so the dataset can be refilled
  // in place, e.g. by ReloadDatasetInPlace.
  void Clear() {
    polygons_.clear();
    extent_ = geom::Box::Empty();
    ++epoch_;
  }

  // Monotone content version: bumped by every Add/Clear. Derived snapshots
  // (filter/signature_cache, filter/interval_approx) key on it so a dataset
  // reloaded in place invalidates them instead of silently serving
  // approximations of polygons that no longer exist.
  uint64_t epoch() const { return epoch_; }

  const geom::Box& Bounds() const { return extent_; }

  DatasetStats Stats() const;

  // STR bulk-loaded R-tree over the MBRs (ids = positions).
  index::RTree BuildRTree(int max_entries = 16) const;

 private:
  std::string name_;
  std::vector<geom::Polygon> polygons_;
  geom::Box extent_ = geom::Box::Empty();
  uint64_t epoch_ = 0;
};

// The paper's Equation 2: the base query distance for a within-distance
// join is the mean of the two datasets' average MBR diagonals
// (sqrt(mean width * mean height) per dataset).
double BaseDistance(const Dataset& a, const Dataset& b);

}  // namespace hasj::data

#endif  // HASJ_DATA_DATASET_H_
