#include "data/svg.h"

#include <algorithm>
#include <cstdio>
#include <fstream>

namespace hasj::data {

Status WriteSvg(const Dataset& dataset, const std::string& path,
                size_t max_polygons, int pixel_width) {
  if (dataset.empty()) return Status::InvalidArgument("empty dataset");
  const size_t n = max_polygons == 0
                       ? dataset.size()
                       : std::min(max_polygons, dataset.size());

  geom::Box extent = geom::Box::Empty();
  for (size_t i = 0; i < n; ++i) extent.Extend(dataset.mbr(i));
  const double scale = pixel_width / std::max(extent.Width(), 1e-12);
  const int pixel_height =
      std::max(1, static_cast<int>(extent.Height() * scale));

  std::ofstream out(path);
  if (!out) return Status::NotFound("cannot open for writing: " + path);
  out << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << pixel_width
      << "\" height=\"" << pixel_height << "\">\n";
  out << "<rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n";

  char buf[64];
  for (size_t i = 0; i < n; ++i) {
    const geom::Polygon& p = dataset.polygon(i);
    out << "<polygon points=\"";
    for (const geom::Point& v : p.vertices()) {
      // SVG y grows downward.
      std::snprintf(buf, sizeof(buf), "%.2f,%.2f ",
                    (v.x - extent.min_x) * scale,
                    (extent.max_y - v.y) * scale);
      out << buf;
    }
    out << "\" fill=\"none\" stroke=\"black\" stroke-width=\"0.6\"/>\n";
  }
  out << "</svg>\n";
  out.flush();
  if (!out) return Status::Internal("write failed: " + path);
  return Status::Ok();
}

}  // namespace hasj::data
