#ifndef HASJ_DATA_VERSIONED_DATASET_H_
#define HASJ_DATA_VERSIONED_DATASET_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "data/dataset.h"
#include "data/generator.h"
#include "geom/box.h"
#include "geom/polygon.h"
#include "index/dynamic_rtree.h"

namespace hasj::data {

// A mutable polygon store with snapshot-isolated readers (DESIGN.md §16):
// the serving-layer counterpart of the immutable Dataset. Geometry lives in
// a fixed-capacity slot array with write-once slots and stable addresses
// (point-locator caches key on polygon identity), while visibility is
// governed entirely by a DynamicRTree over the slot MBRs — a snapshot sees
// exactly the slots live in its pinned index version. Ids are slot
// positions and are never reused; the index version counter doubles as the
// content epoch for epoch-keyed caches.
//
// Concurrency: Insert claims a slot with an atomic counter, writes the
// polygon, then publishes it through the index (the index's publish mutex
// orders the slot write before any reader that can see the id). Writers
// need no further coordination. Delete requires an id a completed
// Insert/SeedFrom returned — so the slot read it does cannot race the slot
// write that produced it.
class VersionedDataset {
 public:
  // A pinned, immutable view: one index version plus the slot array. Cheap
  // to copy. Must not outlive the store.
  class Snapshot {
   public:
    Snapshot() = default;

    // Objects visible in this version.
    size_t live() const { return index_.size(); }
    // Content version at pin time (index::DynamicRTree::version).
    uint64_t epoch() const { return index_.version(); }
    geom::Box Bounds() const { return index_.Bounds(); }

    // `id` must be live in this snapshot (returned by one of its queries
    // or LiveIds).
    const geom::Polygon& polygon(int64_t id) const;
    const geom::Box& mbr(int64_t id) const;

    std::vector<int64_t> QueryIntersects(const geom::Box& window) const {
      return index_.QueryIntersects(window);
    }
    std::vector<int64_t> QueryWithinDistance(const geom::Box& query,
                                             double distance) const {
      return index_.QueryWithinDistance(query, distance);
    }
    // Ids live in this version, ascending (for oracle scans).
    std::vector<int64_t> LiveIds() const;

    const index::DynamicRTree::Snapshot& index() const { return index_; }

   private:
    friend class VersionedDataset;
    const VersionedDataset* store_ = nullptr;
    index::DynamicRTree::Snapshot index_;
  };

  // `capacity` bounds the total number of Insert/SeedFrom objects over the
  // store's lifetime (ids are never reused, so deletes do not return
  // capacity).
  VersionedDataset(std::string name, size_t capacity, int max_entries = 16);

  VersionedDataset(const VersionedDataset&) = delete;
  VersionedDataset& operator=(const VersionedDataset&) = delete;

  const std::string& name() const { return name_; }
  size_t capacity() const { return slots_.size(); }
  size_t live() const { return index_.size(); }
  uint64_t epoch() const { return index_.version(); }

  // Bulk-seeds an empty store from `dataset` (ids = dataset positions) in
  // one published version.
  [[nodiscard]] Status SeedFrom(const Dataset& dataset);

  // Adds one polygon; returns its id. kResourceExhausted when lifetime
  // capacity is spent, kInvalidArgument for degenerate polygons. Safe to
  // call from concurrent writers.
  [[nodiscard]] Result<int64_t> Insert(geom::Polygon polygon);

  // Removes object `id` (which a completed Insert/SeedFrom returned);
  // kNotFound when already deleted.
  [[nodiscard]] Status Delete(int64_t id);

  Snapshot snapshot() const;

 private:
  const std::string name_;
  // Write-once geometry slots. Never resized; slot i is written by exactly
  // one Insert (or SeedFrom) before the index publish that makes id i
  // visible, and is immutable afterwards — the publish/pin mutex pair
  // orders the write before every reader that can learn the id.
  // lint:allow(guarded-by-coverage): write-once slots sequenced by the
  // index publish; see the class comment.
  std::vector<geom::Polygon> slots_;
  // Claims slots; min(next_, capacity) slots are spoken for.
  std::atomic<int64_t> next_{0};
  index::DynamicRTree index_;
};

// Applies one generator update op to `store`, maintaining the caller's
// stream-local key -> store id map. Inserts that fail (capacity) surface
// their status and leave the key unmapped; a later delete of such a key is
// a no-op Ok (the stream contract says the key existed, but the store
// never admitted it).
[[nodiscard]] Status ApplyUpdateOp(
    const UpdateOp& op, VersionedDataset* store,
    std::unordered_map<int64_t, int64_t>* key_to_id);

}  // namespace hasj::data

#endif  // HASJ_DATA_VERSIONED_DATASET_H_
