#include "data/dataset_index.h"

#include <utility>
#include <vector>

namespace hasj::data {

namespace {

std::shared_ptr<const index::RTree> BuildTree(const DatasetSnapshot& snap,
                                              int max_entries) {
  std::vector<index::RTree::Entry> entries;
  entries.reserve(snap.size());
  for (size_t i = 0; i < snap.size(); ++i) {
    entries.push_back({snap.mbr(i), static_cast<int64_t>(i)});
  }
  return std::make_shared<const index::RTree>(
      index::RTree::BulkLoad(std::move(entries), max_entries));
}

}  // namespace

DatasetIndex::DatasetIndex(const Dataset& dataset, int max_entries)
    : dataset_(dataset), max_entries_(max_entries) {
  const DatasetSnapshot snap = dataset_.snapshot();
  MutexLock lock(&mu_);
  cached_epoch_ = snap.epoch();
  cached_tree_ = BuildTree(snap, max_entries_);
}

DatasetIndex::Pinned DatasetIndex::Acquire() const {
  Pinned pin;
  pin.data = dataset_.snapshot();
  MutexLock lock(&mu_);
  if (cached_tree_ == nullptr || cached_epoch_ != pin.data.epoch()) {
    cached_tree_ = BuildTree(pin.data, max_entries_);
    cached_epoch_ = pin.data.epoch();
  }
  pin.rtree = cached_tree_;
  return pin;
}

}  // namespace hasj::data
