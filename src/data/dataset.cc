#include "data/dataset.h"

#include <algorithm>
#include <cmath>

namespace hasj::data {

Dataset::Dataset(const Dataset& other) {
  MutexLock lock(&other.mu_);
  name_ = other.name_;
  content_ = other.content_;  // shared until either side mutates
  extent_ = other.extent_;
  epoch_.store(other.epoch_.load(std::memory_order_acquire),
               std::memory_order_release);
}

Dataset::Dataset(Dataset&& other) noexcept {
  MutexLock lock(&other.mu_);
  name_ = std::move(other.name_);
  content_ = std::move(other.content_);
  other.content_ = std::make_shared<std::vector<geom::Polygon>>();
  extent_ = other.extent_;
  other.extent_ = geom::Box::Empty();
  epoch_.store(other.epoch_.load(std::memory_order_acquire),
               std::memory_order_release);
}

Dataset& Dataset::operator=(const Dataset& other) {
  if (this == &other) return *this;
  Dataset copy(other);
  return *this = std::move(copy);
}

Dataset& Dataset::operator=(Dataset&& other) noexcept {
  if (this == &other) return *this;
  std::shared_ptr<std::vector<geom::Polygon>> content;
  geom::Box extent;
  std::string name;
  uint64_t other_epoch;
  {
    MutexLock lock(&other.mu_);
    name = std::move(other.name_);
    content = std::move(other.content_);
    other.content_ = std::make_shared<std::vector<geom::Polygon>>();
    extent = other.extent_;
    other.extent_ = geom::Box::Empty();
    other_epoch = other.epoch_.load(std::memory_order_acquire);
  }
  {
    MutexLock lock(&mu_);
    name_ = std::move(name);
    content_ = std::move(content);
    extent_ = extent;
    // Keep the epoch monotone for any cache already keyed on this dataset.
    const uint64_t mine = epoch_.load(std::memory_order_acquire);
    epoch_.store(std::max(mine + 1, other_epoch + 1),
                 std::memory_order_release);
  }
  return *this;
}

void Dataset::EnsureUniqueLocked() {
  if (content_.use_count() > 1) {
    content_ = std::make_shared<std::vector<geom::Polygon>>(*content_);
  }
}

void Dataset::Add(geom::Polygon polygon) {
  MutexLock lock(&mu_);
  EnsureUniqueLocked();
  extent_.Extend(polygon.Bounds());
  content_->push_back(std::move(polygon));
  epoch_.fetch_add(1, std::memory_order_acq_rel);
}

void Dataset::Clear() {
  MutexLock lock(&mu_);
  // Snapshots holding the old content keep it alive; start fresh here.
  content_ = std::make_shared<std::vector<geom::Polygon>>();
  extent_ = geom::Box::Empty();
  epoch_.fetch_add(1, std::memory_order_acq_rel);
}

void Dataset::ReplaceWith(Dataset&& other) {
  std::shared_ptr<std::vector<geom::Polygon>> content;
  geom::Box extent;
  {
    MutexLock lock(&other.mu_);
    content = std::move(other.content_);
    other.content_ = std::make_shared<std::vector<geom::Polygon>>();
    extent = other.extent_;
    other.extent_ = geom::Box::Empty();
  }
  MutexLock lock(&mu_);
  content_ = std::move(content);
  extent_ = extent;
  epoch_.fetch_add(1, std::memory_order_acq_rel);
}

DatasetSnapshot Dataset::snapshot() const {
  DatasetSnapshot snap;
  MutexLock lock(&mu_);
  snap.polygons_ = content_;
  snap.extent_ = extent_;
  snap.epoch_ = epoch_.load(std::memory_order_acquire);
  return snap;
}

DatasetStats Dataset::Stats() const {
  DatasetStats s;
  s.count = static_cast<int64_t>(content_->size());
  s.extent = extent_;
  if (content_->empty()) return s;
  RunningStats vertices, widths, heights;
  for (const geom::Polygon& p : *content_) {
    vertices.Add(static_cast<double>(p.size()));
    widths.Add(p.Bounds().Width());
    heights.Add(p.Bounds().Height());
  }
  s.min_vertices = static_cast<int64_t>(vertices.min());
  s.max_vertices = static_cast<int64_t>(vertices.max());
  s.mean_vertices = vertices.mean();
  s.total_vertices = static_cast<int64_t>(vertices.sum());
  s.mean_mbr_width = widths.mean();
  s.mean_mbr_height = heights.mean();
  return s;
}

index::RTree Dataset::BuildRTree(int max_entries) const {
  std::vector<index::RTree::Entry> entries;
  entries.reserve(content_->size());
  for (size_t i = 0; i < content_->size(); ++i) {
    entries.push_back({(*content_)[i].Bounds(), static_cast<int64_t>(i)});
  }
  return index::RTree::BulkLoad(std::move(entries), max_entries);
}

double BaseDistance(const Dataset& a, const Dataset& b) {
  const DatasetStats sa = a.Stats();
  const DatasetStats sb = b.Stats();
  const double da = std::sqrt(sa.mean_mbr_width * sa.mean_mbr_height);
  const double db = std::sqrt(sb.mean_mbr_width * sb.mean_mbr_height);
  return (da + db) * 0.5;
}

}  // namespace hasj::data
