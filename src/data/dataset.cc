#include "data/dataset.h"

#include <cmath>

namespace hasj::data {

DatasetStats Dataset::Stats() const {
  DatasetStats s;
  s.count = static_cast<int64_t>(polygons_.size());
  s.extent = extent_;
  if (polygons_.empty()) return s;
  RunningStats vertices, widths, heights;
  for (const geom::Polygon& p : polygons_) {
    vertices.Add(static_cast<double>(p.size()));
    widths.Add(p.Bounds().Width());
    heights.Add(p.Bounds().Height());
  }
  s.min_vertices = static_cast<int64_t>(vertices.min());
  s.max_vertices = static_cast<int64_t>(vertices.max());
  s.mean_vertices = vertices.mean();
  s.total_vertices = static_cast<int64_t>(vertices.sum());
  s.mean_mbr_width = widths.mean();
  s.mean_mbr_height = heights.mean();
  return s;
}

index::RTree Dataset::BuildRTree(int max_entries) const {
  std::vector<index::RTree::Entry> entries;
  entries.reserve(polygons_.size());
  for (size_t i = 0; i < polygons_.size(); ++i) {
    entries.push_back({polygons_[i].Bounds(), static_cast<int64_t>(i)});
  }
  return index::RTree::BulkLoad(std::move(entries), max_entries);
}

double BaseDistance(const Dataset& a, const Dataset& b) {
  const DatasetStats sa = a.Stats();
  const DatasetStats sb = b.Stats();
  const double da = std::sqrt(sa.mean_mbr_width * sa.mean_mbr_height);
  const double db = std::sqrt(sb.mean_mbr_width * sb.mean_mbr_height);
  return (da + db) * 0.5;
}

}  // namespace hasj::data
