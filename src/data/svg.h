#ifndef HASJ_DATA_SVG_H_
#define HASJ_DATA_SVG_H_

#include <cstddef>
#include <string>

#include "common/status.h"
#include "data/dataset.h"

namespace hasj::data {

// Renders the first `max_polygons` polygons of a dataset to an SVG file
// (the Figure 1 analog: eyeballing the generated shapes). 0 = all.
[[nodiscard]] Status WriteSvg(const Dataset& dataset, const std::string& path,
                size_t max_polygons = 0, int pixel_width = 800);

}  // namespace hasj::data

#endif  // HASJ_DATA_SVG_H_
