#ifndef HASJ_DATA_GENERATOR_H_
#define HASJ_DATA_GENERATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "geom/box.h"
#include "geom/polygon.h"

namespace hasj::data {

// Recipe for a synthetic polygon dataset calibrated to the statistics of a
// real dataset (paper Table 2). The generator substitutes for the paper's
// Wyoming / US shapefiles (DESIGN.md "Substitutions"): what the hardware
// technique's behaviour depends on is the vertex-count distribution, the
// shapes' concavity, and the MBR overlap density — all of which the profile
// controls.
struct GeneratorProfile {
  std::string name;
  // Object count and Table 2 vertex-count statistics. Counts are drawn from
  // a log-normal fitted to mean_vertices with tail weight `sigma`, clipped
  // to [min_vertices, max_vertices].
  int64_t count = 0;
  int min_vertices = 3;
  int max_vertices = 1000;
  double mean_vertices = 50.0;
  double sigma = 1.0;  // log-normal shape: larger = heavier complexity tail
  // Spatial layout.
  geom::Box extent;
  double coverage = 1.0;   // sum of object MBR areas / extent area
  int clusters = 0;        // 0 = uniform centers; >0 = clustered layout
  double roughness = 0.45; // radial noise amplitude: 0 = convex-ish blobs
  // Fraction of objects generated as elongated "snake" polygons (rivers,
  // precipitation contour bands) instead of radial blobs. Snakes produce
  // the close-parallel non-crossing boundary pairs that dominate the
  // refinement cost of the paper's WATER and PRISM datasets.
  double snake_fraction = 0.0;
  double snake_curvature = 0.25;  // radians of heading drift per step
  // Snakes follow a shared deterministic terrain flow field instead of
  // independent random walks. Rivers and precipitation contours both trace
  // the same topography, so nearby objects run locally parallel — the
  // close-but-disjoint configurations whose refinement dominates the
  // paper's WATER ⋈ PRISM workloads.
  bool follow_terrain = false;
  uint64_t seed = 1;

  // Same distributions, `fraction` of the objects; for bench scaling.
  GeneratorProfile Scaled(double fraction) const;
};

// Generates a dataset of simple (star-shaped, strongly concave) polygons
// matching the profile. Deterministic in profile.seed.
Dataset GenerateDataset(const GeneratorProfile& profile);

// Generates one random simple polygon: `vertices` vertices star-shaped
// around `center` with mean radius `radius` and multi-octave radial noise
// of relative amplitude `roughness`. Always simple by construction.
geom::Polygon GenerateBlobPolygon(geom::Point center, double radius,
                                  int vertices, double roughness,
                                  uint64_t seed);

// Generates one elongated simple polygon (a buffered meandering path, like
// a river or a contour band): `vertices` total vertices, overall extent on
// the order of `radius`, rotated by a random angle. Simple by construction
// (x-monotone path with curvature and width bounds chosen so the two offset
// chains cannot cross).
geom::Polygon GenerateSnakePolygon(geom::Point center, double radius,
                                   int vertices, double curvature,
                                   uint64_t seed);

// Recipe for a deterministic stream of insert/delete operations — the one
// traffic source shared by bench/serve and the concurrent chaos suite, so
// both exercise identical workloads for a given seed (DESIGN.md §16).
struct UpdateStreamProfile {
  // Shape/extent recipe for inserted polygons. `objects.count` is not a
  // stream length; it is the reference population used to size objects the
  // same way GenerateDataset(objects) would (coverage calibration), so
  // inserts are statistically exchangeable with a base dataset generated
  // from the same profile. Centers are drawn uniformly (no clustering).
  GeneratorProfile objects;
  int64_t operations = 0;
  // Probability an op is an insert; the rest are deletes of a uniformly
  // chosen live key. When nothing is live, an insert is emitted instead.
  double insert_fraction = 0.6;
  uint64_t seed = 1;
};

// One operation of an update stream. Keys are stream-local: kInsert
// introduces `key` (dense, starting at 0), kDelete targets a key that a
// preceding kInsert in the same stream introduced and no earlier kDelete
// consumed — so a stream can never reference objects it does not own, and
// concurrent writers applying disjoint streams cannot conflict. Consumers
// map keys to store ids (data::ApplyUpdateOp).
struct UpdateOp {
  enum class Kind { kInsert, kDelete };
  Kind kind = Kind::kInsert;
  int64_t key = 0;
  geom::Polygon polygon;  // kInsert only
};

// Deterministic in profile.seed.
std::vector<UpdateOp> GenerateUpdateStream(const UpdateStreamProfile& profile);

// The shared terrain flow direction (radians) at a point: a fixed smooth
// pseudo-random field, identical for every dataset so that objects from
// different layers correlate like real topography-driven features do.
double TerrainFlowAngle(geom::Point p);

// Terrain-following variant of GenerateSnakePolygon: the path is steered
// toward the flow field (deviation bounded, so the polygon stays simple by
// the same monotonicity argument) and built directly in world coordinates.
geom::Polygon GenerateTerrainSnakePolygon(geom::Point center, double radius,
                                          int vertices, double curvature,
                                          uint64_t seed);

}  // namespace hasj::data

#endif  // HASJ_DATA_GENERATOR_H_
