#include "data/generator.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"
#include "common/random.h"

namespace hasj::data {

GeneratorProfile GeneratorProfile::Scaled(double fraction) const {
  GeneratorProfile p = *this;
  p.count = std::max<int64_t>(
      1, static_cast<int64_t>(std::llround(count * fraction)));
  // Shrink the extent by sqrt(fraction) per dimension so that object sizes
  // and spatial density — the quantities per-pair comparison costs depend
  // on — are the same at every scale; only the number of objects changes.
  const double shrink = std::sqrt(std::min(1.0, std::max(fraction, 1e-12)));
  const geom::Point c = extent.Center();
  p.extent = geom::Box(c.x - extent.Width() * 0.5 * shrink,
                       c.y - extent.Height() * 0.5 * shrink,
                       c.x + extent.Width() * 0.5 * shrink,
                       c.y + extent.Height() * 0.5 * shrink);
  return p;
}

geom::Polygon GenerateBlobPolygon(geom::Point center, double radius,
                                  int vertices, double roughness,
                                  uint64_t seed) {
  HASJ_CHECK(vertices >= 3);
  HASJ_CHECK(radius > 0.0);
  Rng rng(seed);

  // Multi-octave radial noise: low frequencies bend the outline, high
  // frequencies add the jagged detail real land-cover polygons have.
  constexpr int kOctaves = 4;
  const double freqs[kOctaves] = {2.0, 5.0, 11.0, 23.0};
  double amps[kOctaves];
  double phases[kOctaves];
  double amp_sum = 0.0;
  for (int k = 0; k < kOctaves; ++k) {
    amps[k] = 1.0 / (k + 1);
    amp_sum += amps[k];
    phases[k] = rng.Uniform(0.0, 2.0 * 3.14159265358979323846);
  }

  std::vector<geom::Point> pts;
  pts.reserve(static_cast<size_t>(vertices));
  const double two_pi = 2.0 * 3.14159265358979323846;
  for (int i = 0; i < vertices; ++i) {
    // Jittered but strictly increasing angles keep the polygon star-shaped
    // around `center`, hence always simple.
    const double theta =
        two_pi * (static_cast<double>(i) + 0.8 * rng.NextDouble()) / vertices;
    double noise = 0.0;
    for (int k = 0; k < kOctaves; ++k) {
      noise += amps[k] * std::sin(freqs[k] * theta + phases[k]);
    }
    noise /= amp_sum;                       // in [-1, 1]
    noise += 0.25 * (rng.NextDouble() - 0.5);  // per-vertex jaggedness
    const double r = radius * std::max(0.15, 1.0 + roughness * noise);
    pts.push_back(
        {center.x + r * std::cos(theta), center.y + r * std::sin(theta)});
  }
  return geom::Polygon(std::move(pts));
}

namespace {

double WrapAngle(double a) {
  const double two_pi = 2.0 * 3.14159265358979323846;
  a = std::fmod(a + 3.14159265358979323846, two_pi);
  if (a < 0.0) a += two_pi;
  return a - 3.14159265358979323846;
}

// Buffers a path into a simple polygon: left offsets forward, right
// offsets backward, per-vertex averaged normals. Requires the path to be
// monotone along some axis with per-step turn and half-width bounds (the
// generators guarantee this).
geom::Polygon BufferPath(const std::vector<geom::Point>& path,
                         double half_width) {
  const size_t n = path.size();
  const auto normal_at = [&](size_t i) {
    const geom::Point d0 = i == 0 ? path[1] - path[0] : path[i] - path[i - 1];
    const geom::Point d1 =
        i + 1 == n ? path[n - 1] - path[n - 2] : path[i + 1] - path[i];
    geom::Point d = d0 + d1;
    const double len = geom::Norm(d);
    return geom::Point{-d.y / len, d.x / len};
  };
  std::vector<geom::Point> ring;
  ring.reserve(2 * n);
  for (size_t i = 0; i < n; ++i) {
    ring.push_back(path[i] + normal_at(i) * half_width);
  }
  for (size_t i = n; i-- > 0;) {
    ring.push_back(path[i] - normal_at(i) * half_width);
  }
  return geom::Polygon(std::move(ring));
}

}  // namespace

geom::Polygon GenerateSnakePolygon(geom::Point center, double radius,
                                   int vertices, double curvature,
                                   uint64_t seed) {
  HASJ_CHECK(vertices >= 8);
  HASJ_CHECK(radius > 0.0);
  Rng rng(seed);
  const int segments = vertices / 2 - 1;

  // Meandering path with unit steps. The heading is kept within ±0.9 rad of
  // +x and its per-step change within ±0.5 rad, so the path is x-monotone
  // with turning radius > 2; buffering such a path with half-width < 0.4
  // keeps both offset chains x-monotone and non-crossing, hence the ring is
  // simple by construction.
  std::vector<geom::Point> path;
  path.reserve(static_cast<size_t>(segments) + 1);
  geom::Point p{0.0, 0.0};
  path.push_back(p);
  double heading = rng.Uniform(-0.4, 0.4);
  for (int i = 0; i < segments; ++i) {
    double delta = rng.Normal(0.0, curvature);
    delta = std::clamp(delta, -0.5, 0.5);
    heading = std::clamp(0.98 * heading + delta, -0.9, 0.9);
    p = {p.x + std::cos(heading), p.y + std::sin(heading)};
    path.push_back(p);
  }

  const double half_width = rng.Uniform(0.18, 0.38);
  std::vector<geom::Point> ring = BufferPath(path, half_width).vertices();

  // Rotate by a random angle first (rotation changes the axis-aligned MBR
  // of an elongated shape), then scale so the MBR area matches a blob of
  // the given radius, then translate to the center.
  const double angle = rng.Uniform(0.0, 2.0 * 3.14159265358979323846);
  const double ca = std::cos(angle), sa = std::sin(angle);
  geom::Box bounds = geom::Box::Empty();
  for (geom::Point& v : ring) {
    v = {ca * v.x - sa * v.y, sa * v.x + ca * v.y};
    bounds.Extend(v);
  }
  const double mbr_side =
      std::sqrt(std::max(1e-12, bounds.Width() * bounds.Height()));
  const double scale = 2.0 * radius / mbr_side;
  const geom::Point mid = bounds.Center();
  for (geom::Point& v : ring) {
    v = {center.x + (v.x - mid.x) * scale, center.y + (v.y - mid.y) * scale};
  }
  return geom::Polygon(std::move(ring));
}

double TerrainFlowAngle(geom::Point p) {
  // Smooth direction field with features a few degrees across (the extents
  // are lon/lat boxes); coefficients are fixed so every dataset sees the
  // same topography.
  const double s = std::sin(0.53 * p.x + 0.91 * p.y) +
                   std::sin(0.17 * p.x - 0.33 * p.y + 1.7) +
                   0.6 * std::sin(1.07 * p.x + 0.19 * p.y + 4.2);
  return 1.05 * s;  // radians, roughly in [-2.7, 2.7]
}


geom::Polygon GenerateTerrainSnakePolygon(geom::Point center, double radius,
                                          int vertices, double curvature,
                                          uint64_t seed) {
  HASJ_CHECK(vertices >= 8);
  HASJ_CHECK(radius > 0.0);
  Rng rng(seed);
  const int segments = vertices / 2 - 1;

  // The base direction is the flow at the center; the path deviates from it
  // by at most 0.9 rad, keeping it monotone along the base axis (hence the
  // buffered polygon simple), while tracking the local flow.
  const double base = TerrainFlowAngle(center);
  const double length = 2.6 * radius;
  const double step = length / segments;
  geom::Point p{center.x - 0.45 * length * std::cos(base),
                center.y - 0.45 * length * std::sin(base)};
  std::vector<geom::Point> path;
  path.reserve(static_cast<size_t>(segments) + 1);
  path.push_back(p);
  double noise = 0.0;
  for (int i = 0; i < segments; ++i) {
    const double desired =
        std::clamp(WrapAngle(TerrainFlowAngle(p) - base), -0.85, 0.85);
    noise = std::clamp(0.95 * noise + rng.Normal(0.0, curvature), -0.4, 0.4);
    const double off = std::clamp(desired + noise, -0.9, 0.9);
    const double heading = base + off;
    p = {p.x + step * std::cos(heading), p.y + step * std::sin(heading)};
    path.push_back(p);
  }
  const double half_width = step * rng.Uniform(0.18, 0.38);
  return BufferPath(path, half_width);
}

Dataset GenerateDataset(const GeneratorProfile& profile) {
  HASJ_CHECK(profile.count > 0);
  HASJ_CHECK(!profile.extent.IsEmpty());
  HASJ_CHECK(profile.mean_vertices >= 3.0);
  Rng rng(profile.seed);

  // Vertex counts: log-normal matched to the target mean (before clipping),
  // clipped to the Table 2 min/max.
  const double sigma = profile.sigma;
  const double mu = std::log(profile.mean_vertices) - 0.5 * sigma * sigma;
  std::vector<int> counts(static_cast<size_t>(profile.count));
  double sum_nv = 0.0;
  for (int& nv : counts) {
    const double draw = rng.LogNormal(mu, sigma);
    nv = static_cast<int>(std::llround(std::clamp(
        draw, static_cast<double>(profile.min_vertices),
        static_cast<double>(profile.max_vertices))));
    sum_nv += nv;
  }

  // Size objects so that total MBR area is roughly coverage * extent area,
  // with per-object area proportional to its vertex count (complex objects
  // are big, like in the real datasets).
  const double extent_area = profile.extent.Area();
  const double k =
      std::sqrt(profile.coverage * extent_area / (4.0 * std::max(1.0, sum_nv)));

  // Optional clustered layout.
  std::vector<geom::Point> cluster_centers;
  double cluster_spread = 0.0;
  if (profile.clusters > 0) {
    for (int c = 0; c < profile.clusters; ++c) {
      cluster_centers.push_back(
          {rng.Uniform(profile.extent.min_x, profile.extent.max_x),
           rng.Uniform(profile.extent.min_y, profile.extent.max_y)});
    }
    cluster_spread =
        std::sqrt(extent_area / profile.clusters) * 0.35;
  }

  Dataset out(profile.name);
  for (int64_t i = 0; i < profile.count; ++i) {
    const int nv = counts[static_cast<size_t>(i)];
    const double radius = k * std::sqrt(static_cast<double>(nv));
    geom::Point center;
    if (profile.clusters > 0 && rng.Bernoulli(0.8)) {
      const geom::Point c = cluster_centers[static_cast<size_t>(
          rng.UniformInt(0, profile.clusters - 1))];
      center = {c.x + rng.Normal(0.0, cluster_spread),
                c.y + rng.Normal(0.0, cluster_spread)};
    } else {
      center = {rng.Uniform(profile.extent.min_x, profile.extent.max_x),
                rng.Uniform(profile.extent.min_y, profile.extent.max_y)};
    }
    if (nv >= 8 && rng.Bernoulli(profile.snake_fraction)) {
      out.Add(profile.follow_terrain
                  ? GenerateTerrainSnakePolygon(center, radius, nv,
                                                profile.snake_curvature,
                                                rng.Next())
                  : GenerateSnakePolygon(center, radius, nv,
                                         profile.snake_curvature, rng.Next()));
    } else {
      out.Add(GenerateBlobPolygon(center, radius, nv, profile.roughness,
                                  rng.Next()));
    }
  }
  return out;
}

std::vector<UpdateOp> GenerateUpdateStream(const UpdateStreamProfile& profile) {
  const GeneratorProfile& obj = profile.objects;
  HASJ_CHECK(profile.operations >= 0);
  HASJ_CHECK(!obj.extent.IsEmpty());
  HASJ_CHECK(obj.mean_vertices >= 3.0);
  HASJ_CHECK(profile.insert_fraction >= 0.0 && profile.insert_fraction <= 1.0);
  Rng rng(profile.seed);

  // Same vertex-count and sizing model as GenerateDataset, calibrated
  // against the reference population obj.count so inserted objects are
  // exchangeable with a base dataset drawn from the same profile.
  const double sigma = obj.sigma;
  const double mu = std::log(obj.mean_vertices) - 0.5 * sigma * sigma;
  const double expected_sum_nv =
      obj.mean_vertices * static_cast<double>(std::max<int64_t>(1, obj.count));
  const double k = std::sqrt(obj.coverage * obj.extent.Area() /
                             (4.0 * std::max(1.0, expected_sum_nv)));

  std::vector<UpdateOp> ops;
  ops.reserve(static_cast<size_t>(profile.operations));
  std::vector<int64_t> live;
  int64_t next_key = 0;
  for (int64_t i = 0; i < profile.operations; ++i) {
    UpdateOp op;
    if (live.empty() || rng.Bernoulli(profile.insert_fraction)) {
      const double draw = rng.LogNormal(mu, sigma);
      const int nv = static_cast<int>(std::llround(std::clamp(
          draw, static_cast<double>(obj.min_vertices),
          static_cast<double>(obj.max_vertices))));
      const double radius = k * std::sqrt(static_cast<double>(nv));
      const geom::Point center = {
          rng.Uniform(obj.extent.min_x, obj.extent.max_x),
          rng.Uniform(obj.extent.min_y, obj.extent.max_y)};
      op.kind = UpdateOp::Kind::kInsert;
      op.key = next_key++;
      if (nv >= 8 && rng.Bernoulli(obj.snake_fraction)) {
        op.polygon = obj.follow_terrain
                         ? GenerateTerrainSnakePolygon(
                               center, radius, nv, obj.snake_curvature,
                               rng.Next())
                         : GenerateSnakePolygon(center, radius, nv,
                                                obj.snake_curvature,
                                                rng.Next());
      } else {
        op.polygon = GenerateBlobPolygon(center, radius, nv, obj.roughness,
                                         rng.Next());
      }
      live.push_back(op.key);
    } else {
      const size_t pick = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(live.size()) - 1));
      op.kind = UpdateOp::Kind::kDelete;
      op.key = live[pick];
      live[pick] = live.back();
      live.pop_back();
    }
    ops.push_back(std::move(op));
  }
  return ops;
}

}  // namespace hasj::data
