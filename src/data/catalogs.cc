#include "data/catalogs.h"

namespace hasj::data {
namespace {

// Wyoming at 1:100,000 scale (the LANDC / LANDO source extent).
const geom::Box kWyoming(-111.05, 41.0, -104.05, 45.0);
// Contiguous United States (STATES50 / PRISM / WATER).
const geom::Box kConusBox(-124.7, 24.5, -66.9, 49.4);

}  // namespace

GeneratorProfile LandcProfile(double scale) {
  GeneratorProfile p;
  p.name = "LANDC";
  p.count = 14731;
  p.min_vertices = 3;
  p.max_vertices = 4397;
  p.mean_vertices = 192.0;
  p.sigma = 1.15;
  p.extent = kWyoming;
  // Land cover tessellates the state; generated blobs overlap their
  // neighbors, giving the dense candidate sets a real tessellation has.
  p.coverage = 1.4;
  p.clusters = 0;
  p.roughness = 0.5;
  p.seed = 0x1a2dc001;
  return p.Scaled(scale);
}

GeneratorProfile LandoProfile(double scale) {
  GeneratorProfile p;
  p.name = "LANDO";
  p.count = 33860;
  p.min_vertices = 3;
  p.max_vertices = 8807;
  p.mean_vertices = 20.0;
  // Mean 20 with max 8,807 is an extremely skewed distribution: mostly tiny
  // parcels plus a few huge management areas.
  p.sigma = 1.0;
  p.extent = kWyoming;
  p.coverage = 1.2;
  p.clusters = 0;
  p.roughness = 0.4;
  p.seed = 0x1a2dc002;
  return p.Scaled(scale);
}

GeneratorProfile States50Profile(double scale) {
  GeneratorProfile p;
  p.name = "STATES50";
  p.count = 31;
  p.min_vertices = 4;
  p.max_vertices = 10744;
  p.mean_vertices = 138.0;
  p.sigma = 1.3;
  p.extent = kConusBox;
  // State boundaries cover the country about once.
  p.coverage = 1.0;
  p.clusters = 0;
  p.roughness = 0.35;
  p.seed = 0x1a2dc003;
  // The query set keeps all 31 objects at every scale; only the extent
  // shrinks, in lockstep with the data datasets.
  GeneratorProfile scaled = p.Scaled(scale);
  scaled.count = p.count;
  return scaled;
}

GeneratorProfile PrismProfile(double scale) {
  GeneratorProfile p;
  p.name = "PRISM";
  p.count = 6243;
  p.min_vertices = 3;
  p.max_vertices = 29556;
  p.mean_vertices = 68.0;
  // Precipitation contours: very heavy complexity tail (few enormous
  // isohyet polygons dominate the comparison cost). Mostly long smooth
  // bands, which create the close-parallel non-crossing boundary pairs
  // that make the refinement step expensive on this dataset.
  p.sigma = 1.5;
  p.extent = kConusBox;
  p.coverage = 1.1;
  p.clusters = 0;
  p.roughness = 0.55;
  p.snake_fraction = 0.85;
  p.snake_curvature = 0.12;
  p.follow_terrain = true;
  p.seed = 0x1a2dc004;
  return p.Scaled(scale);
}

GeneratorProfile WaterProfile(double scale) {
  GeneratorProfile p;
  p.name = "WATER";
  p.count = 21866;
  p.min_vertices = 3;
  p.max_vertices = 39360;
  p.mean_vertices = 91.0;
  p.sigma = 1.45;
  p.extent = kConusBox;
  // Water bodies cluster along river systems and coasts; most complex
  // objects are elongated rivers rather than round lakes.
  p.coverage = 0.7;
  p.clusters = 24;
  p.roughness = 0.6;
  p.snake_fraction = 0.65;
  p.snake_curvature = 0.3;
  p.follow_terrain = true;
  p.seed = 0x1a2dc005;
  return p.Scaled(scale);
}

}  // namespace hasj::data
