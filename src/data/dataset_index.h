#ifndef HASJ_DATA_DATASET_INDEX_H_
#define HASJ_DATA_DATASET_INDEX_H_

#include <cstdint>
#include <memory>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "data/dataset.h"
#include "index/rtree.h"

namespace hasj::data {

// Epoch-keyed R-tree cache over a Dataset: pipelines acquire one Pinned
// view at Run() start, getting a content snapshot and the matching R-tree
// as one consistent unit (DESIGN.md §16). A reload-in-place between two
// queries rebuilds the tree on the next Acquire; a reload *during* a query
// changes nothing the running query can see — every polygon/mbr/tree
// access routes through its pin.
class DatasetIndex {
 public:
  // A dataset version and its index. Copyable; keeps the content alive.
  struct Pinned {
    DatasetSnapshot data;
    std::shared_ptr<const index::RTree> rtree;

    size_t size() const { return data.size(); }
    uint64_t epoch() const { return data.epoch(); }
    const geom::Box& Bounds() const { return data.Bounds(); }
    const geom::Polygon& polygon(size_t id) const { return data.polygon(id); }
    const geom::Box& mbr(size_t id) const { return data.mbr(id); }
  };

  // Builds the first tree eagerly so the initial query does not pay the
  // bulk load inside its timed region (matching the old
  // build-in-pipeline-constructor behaviour).
  explicit DatasetIndex(const Dataset& dataset, int max_entries = 16);

  DatasetIndex(const DatasetIndex&) = delete;
  DatasetIndex& operator=(const DatasetIndex&) = delete;

  // Pins the dataset's current content and returns it with the matching
  // tree, rebuilding (under the cache lock) if the epoch moved.
  Pinned Acquire() const HASJ_EXCLUDES(mu_);

 private:
  const Dataset& dataset_;
  const int max_entries_;
  mutable Mutex mu_;
  mutable uint64_t cached_epoch_ HASJ_GUARDED_BY(mu_) = 0;
  mutable std::shared_ptr<const index::RTree> cached_tree_
      HASJ_GUARDED_BY(mu_);
};

}  // namespace hasj::data

#endif  // HASJ_DATA_DATASET_INDEX_H_
