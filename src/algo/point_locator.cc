#include "algo/point_locator.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"
#include "geom/predicates.h"

namespace hasj::algo {

PointLocator::PointLocator(const geom::Polygon& polygon) : polygon_(&polygon) {
  const int n = static_cast<int>(polygon.size());
  HASJ_CHECK(n >= 3);
  const geom::Box& b = polygon.Bounds();
  y0_ = b.min_y;
  const double height = std::max(b.Height(), 1e-300);
  buckets_ = std::clamp(n, 1, 1024);
  inv_dy_ = buckets_ / height;

  const auto bucket_of = [&](double y) {
    const double raw = (y - y0_) * inv_dy_;
    return std::clamp(static_cast<int>(raw), 0, buckets_ - 1);
  };

  // Two-pass counting sort of edge ids into buckets by y-span.
  std::vector<int32_t> counts(static_cast<size_t>(buckets_) + 1, 0);
  for (int e = 0; e < n; ++e) {
    const geom::Segment s = polygon.edge(e);
    const int lo = bucket_of(std::min(s.a.y, s.b.y));
    const int hi = bucket_of(std::max(s.a.y, s.b.y));
    for (int j = lo; j <= hi; ++j) ++counts[static_cast<size_t>(j) + 1];
  }
  offsets_.assign(counts.begin(), counts.end());
  for (int j = 0; j < buckets_; ++j) {
    offsets_[static_cast<size_t>(j) + 1] += offsets_[static_cast<size_t>(j)];
  }
  edges_.resize(static_cast<size_t>(offsets_[static_cast<size_t>(buckets_)]));
  std::vector<int32_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (int e = 0; e < n; ++e) {
    const geom::Segment s = polygon.edge(e);
    const int lo = bucket_of(std::min(s.a.y, s.b.y));
    const int hi = bucket_of(std::max(s.a.y, s.b.y));
    for (int j = lo; j <= hi; ++j) {
      edges_[static_cast<size_t>(cursor[static_cast<size_t>(j)]++)] = e;
    }
  }
}

PointLocation PointLocator::Locate(geom::Point p) const {
  const geom::Polygon& poly = *polygon_;
  if (!poly.Bounds().Contains(p)) return PointLocation::kOutside;

  const double raw = (p.y - y0_) * inv_dy_;
  const int bucket = std::clamp(static_cast<int>(raw), 0, buckets_ - 1);
  const int32_t begin = offsets_[static_cast<size_t>(bucket)];
  const int32_t end = offsets_[static_cast<size_t>(bucket) + 1];

  // Same crossing-number logic as LocatePoint, restricted to the bucket's
  // edges: every edge straddling or touching p's horizontal line has a
  // y-span overlapping this bucket.
  bool inside = false;
  for (int32_t k = begin; k < end; ++k) {
    const geom::Segment s = poly.edge(static_cast<size_t>(edges_[k]));
    const geom::Point a = s.a;
    const geom::Point b = s.b;
    if (geom::OnSegment(a, b, p)) return PointLocation::kBoundary;
    const bool a_below = a.y <= p.y;
    const bool b_below = b.y <= p.y;
    if (a_below == b_below) continue;
    const int orient = geom::Orient2d(a, b, p);
    if (a_below ? (orient > 0) : (orient < 0)) inside = !inside;
  }
  return inside ? PointLocation::kInside : PointLocation::kOutside;
}

}  // namespace hasj::algo
