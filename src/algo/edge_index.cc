#include "algo/edge_index.h"

#include <utility>
#include <vector>

#include "common/macros.h"
#include "geom/segment.h"

namespace hasj::algo {
namespace {

index::RTree BuildEdgeTree(const geom::Polygon& polygon) {
  std::vector<index::RTree::Entry> entries;
  entries.reserve(polygon.size());
  for (size_t i = 0; i < polygon.size(); ++i) {
    entries.push_back({polygon.edge(i).Bounds(), static_cast<int64_t>(i)});
  }
  return index::RTree::BulkLoad(std::move(entries), 8);
}

}  // namespace

EdgeIndex::EdgeIndex(const geom::Polygon& polygon)
    : polygon_(&polygon), tree_(BuildEdgeTree(polygon)) {
  HASJ_CHECK(polygon.size() >= 3);
}

bool EdgeIndex::BoundariesIntersect(const EdgeIndex& a, const EdgeIndex& b) {
  return index::JoinDetect(a.tree_, b.tree_, [&](int64_t ea, int64_t eb) {
    return geom::SegmentsIntersect(a.polygon_->edge(static_cast<size_t>(ea)),
                                   b.polygon_->edge(static_cast<size_t>(eb)));
  });
}

}  // namespace hasj::algo
