#ifndef HASJ_ALGO_TRIANGULATE_H_
#define HASJ_ALGO_TRIANGULATE_H_

#include <array>
#include <cstdint>
#include <vector>

#include "geom/polygon.h"

namespace hasj::algo {

// Ear-clipping triangulation of a simple polygon (O(n^2) worst case).
// Returns up to n-2 vertex-index triples with counter-clockwise
// orientation (degenerate collinear corners are clipped without emitting a
// triangle); the triangles partition the polygon, so their areas sum to
// the polygon area.
//
// Graphics hardware renders only convex primitives, so the paper's §3
// "general strategy" — render both polygons filled and look for a
// doubly-colored pixel — must triangulate concave polygons in software
// first. This is exactly the cost Algorithm 3.1 avoids by rendering edge
// chains; bench/ablation_filled measures the difference.
std::vector<std::array<int32_t, 3>> Triangulate(const geom::Polygon& polygon);

}  // namespace hasj::algo

#endif  // HASJ_ALGO_TRIANGULATE_H_
