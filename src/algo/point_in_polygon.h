#ifndef HASJ_ALGO_POINT_IN_POLYGON_H_
#define HASJ_ALGO_POINT_IN_POLYGON_H_

#include "geom/point.h"
#include "geom/polygon.h"

namespace hasj::algo {

enum class PointLocation {
  kInside,
  kOutside,
  kBoundary,
};

// Exact point location against a simple polygon via the crossing-number rule
// (the paper's ray-shooting Point-in-Polygon test, O(n)). Boundary cases are
// decided exactly with the robust orientation predicate, so a point on an
// edge or vertex is always reported kBoundary.
PointLocation LocatePoint(geom::Point p, const geom::Polygon& polygon);

// Convenience for closed-region predicates: inside or on the boundary.
inline bool ContainsPoint(const geom::Polygon& polygon, geom::Point p) {
  return LocatePoint(p, polygon) != PointLocation::kOutside;
}

}  // namespace hasj::algo

#endif  // HASJ_ALGO_POINT_IN_POLYGON_H_
