#include "algo/triangulate.h"

#include "common/macros.h"
#include "geom/predicates.h"

namespace hasj::algo {
namespace {

// Closed point-in-triangle for a counter-clockwise triangle.
bool InClosedTriangle(geom::Point a, geom::Point b, geom::Point c,
                      geom::Point p) {
  return geom::Orient2d(a, b, p) >= 0 && geom::Orient2d(b, c, p) >= 0 &&
         geom::Orient2d(c, a, p) >= 0;
}

}  // namespace

std::vector<std::array<int32_t, 3>> Triangulate(const geom::Polygon& polygon) {
  const int n = static_cast<int>(polygon.size());
  HASJ_CHECK(n >= 3);

  // Work on a circular doubly-linked list of vertex indices, traversed in
  // counter-clockwise order.
  std::vector<int32_t> next(static_cast<size_t>(n));
  std::vector<int32_t> prev(static_cast<size_t>(n));
  const bool ccw = polygon.IsCcw();
  for (int i = 0; i < n; ++i) {
    const int fwd = (i + 1) % n;
    const int bwd = (i + n - 1) % n;
    next[static_cast<size_t>(i)] = ccw ? fwd : bwd;
    prev[static_cast<size_t>(i)] = ccw ? bwd : fwd;
  }
  const auto vertex = [&](int32_t i) {
    return polygon.vertex(static_cast<size_t>(i));
  };

  std::vector<std::array<int32_t, 3>> triangles;
  triangles.reserve(static_cast<size_t>(n) - 2);

  int remaining = n;
  int32_t cur = 0;
  int since_last_clip = 0;
  while (remaining > 3) {
    const int32_t p = prev[static_cast<size_t>(cur)];
    const int32_t q = next[static_cast<size_t>(cur)];
    const int orient = geom::Orient2d(vertex(p), vertex(cur), vertex(q));

    bool is_ear = false;
    if (orient == 0) {
      // Degenerate (collinear) corner: removing it leaves the boundary
      // unchanged, so it is always safe to clip (zero-area triangle).
      is_ear = true;
    } else if (orient > 0) {
      // Convex corner: an ear iff no other remaining vertex lies in the
      // closed triangle (on-boundary blockers are treated as blocking,
      // which is conservative).
      is_ear = true;
      for (int32_t v = next[static_cast<size_t>(q)]; v != p;
           v = next[static_cast<size_t>(v)]) {
        if (InClosedTriangle(vertex(p), vertex(cur), vertex(q), vertex(v))) {
          is_ear = false;
          break;
        }
      }
    }

    if (is_ear) {
      if (orient != 0) triangles.push_back({p, cur, q});
      next[static_cast<size_t>(p)] = q;
      prev[static_cast<size_t>(q)] = p;
      --remaining;
      cur = q;
      since_last_clip = 0;
      continue;
    }

    cur = q;
    if (++since_last_clip > remaining) {
      // Numeric corner case: no ear found in a full pass (cannot happen for
      // exact simple polygons by the two-ears theorem, but near-degenerate
      // inputs may confuse the closed blocking test). Clip the first convex
      // corner to guarantee progress; the result stays a covering of the
      // polygon up to slivers of the blocking degeneracy.
      for (int pass = 0; pass < remaining; ++pass) {
        const int32_t pp = prev[static_cast<size_t>(cur)];
        const int32_t qq = next[static_cast<size_t>(cur)];
        if (geom::Orient2d(vertex(pp), vertex(cur), vertex(qq)) > 0) break;
        cur = qq;
      }
      const int32_t pp = prev[static_cast<size_t>(cur)];
      const int32_t qq = next[static_cast<size_t>(cur)];
      triangles.push_back({pp, cur, qq});
      next[static_cast<size_t>(pp)] = qq;
      prev[static_cast<size_t>(qq)] = pp;
      --remaining;
      cur = qq;
      since_last_clip = 0;
    }
  }

  // Final triangle.
  const int32_t p = prev[static_cast<size_t>(cur)];
  const int32_t q = next[static_cast<size_t>(cur)];
  if (geom::Orient2d(vertex(p), vertex(cur), vertex(q)) != 0) {
    triangles.push_back({p, cur, q});
  }
  return triangles;
}

}  // namespace hasj::algo
