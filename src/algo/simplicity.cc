#include "algo/simplicity.h"

#include "geom/predicates.h"
#include "geom/segment.h"

namespace hasj::algo {

bool IsSimple(const geom::Polygon& polygon) {
  const size_t n = polygon.size();
  if (n < 3) return false;
  if (!polygon.Validate().ok()) return false;

  for (size_t i = 0; i < n; ++i) {
    const geom::Segment ei = polygon.edge(i);

    // Adjacent edge (i, i+1): a spike folds edge i+1 back onto edge i, which
    // shows as the far endpoint of one edge lying on the other.
    const size_t next = (i + 1) % n;
    const geom::Segment en = polygon.edge(next);
    if (geom::OnSegment(ei.a, ei.b, en.b) || geom::OnSegment(en.a, en.b, ei.a)) {
      return false;
    }

    // Non-adjacent edges must be disjoint.
    for (size_t j = i + 2; j < n; ++j) {
      if (i == 0 && j == n - 1) continue;  // wrap-around adjacency
      if (geom::SegmentsIntersect(ei, polygon.edge(j))) return false;
    }
  }
  return true;
}

}  // namespace hasj::algo
