#ifndef HASJ_ALGO_CONVEX_HULL_H_
#define HASJ_ALGO_CONVEX_HULL_H_

#include <span>
#include <vector>

#include "geom/point.h"
#include "geom/polygon.h"

namespace hasj::algo {

// Convex hull (Andrew's monotone chain, O(n log n)), returned
// counter-clockwise without collinear points. Degenerate inputs (all points
// collinear) return the 2-point chain. Backs the geometric false-hit filter
// (Brinkhoff et al.'s convex-hull approximation, Table 1 of the paper).
std::vector<geom::Point> ConvexHull(std::span<const geom::Point> points);

// Hull of a polygon's vertices as a Polygon.
geom::Polygon ConvexHullPolygon(const geom::Polygon& polygon);

}  // namespace hasj::algo

#endif  // HASJ_ALGO_CONVEX_HULL_H_
