#include "algo/polygon_intersect.h"

#include <vector>

#include "algo/point_in_polygon.h"
#include "algo/segment_tests.h"
#include "geom/box.h"
#include "geom/segment.h"

namespace hasj::algo {
namespace {

// Gathers all edges of a polygon (unrestricted search space).
std::vector<geom::Segment> AllEdges(const geom::Polygon& polygon) {
  std::vector<geom::Segment> out;
  out.reserve(polygon.size());
  for (size_t i = 0; i < polygon.size(); ++i) out.push_back(polygon.edge(i));
  return out;
}

}  // namespace

bool PolygonsIntersect(const geom::Polygon& p, const geom::Polygon& q,
                       const SoftwareIntersectOptions& options,
                       IntersectCounters* counters) {
  if (!p.Bounds().Intersects(q.Bounds())) return false;

  // Segment test first: it decides every pair except pure containment.
  if (BoundariesIntersect(p, q, options, counters)) return true;

  // Point-in-Polygon step: with non-crossing boundaries the regions
  // intersect iff one polygon contains the other, which any single vertex
  // witnesses. Containment implies MBR containment, so the O(n) ray test
  // only runs when the MBRs nest.
  if (q.Bounds().Contains(p.Bounds()) && ContainsPoint(q, p.vertex(0))) {
    if (counters != nullptr) ++counters->point_in_polygon_hits;
    return true;
  }
  if (p.Bounds().Contains(q.Bounds()) && ContainsPoint(p, q.vertex(0))) {
    if (counters != nullptr) ++counters->point_in_polygon_hits;
    return true;
  }
  return false;
}

bool BoundariesIntersect(const geom::Polygon& p, const geom::Polygon& q,
                         const SoftwareIntersectOptions& options,
                         IntersectCounters* counters) {
  if (!p.Bounds().Intersects(q.Bounds())) return false;
  // Segment intersection test, restricted to the window where a boundary
  // crossing can occur: any crossing point lies in both MBRs, so both
  // crossing edges intersect MBR(P) ∩ MBR(Q).
  std::vector<geom::Segment> ep, eq;
  if (options.restricted_search) {
    const geom::Box window = p.Bounds().Intersection(q.Bounds());
    ep = EdgesInWindow(p, window);
    if (ep.empty()) return false;
    eq = EdgesInWindow(q, window);
    if (eq.empty()) return false;
  } else {
    ep = AllEdges(p);
    eq = AllEdges(q);
  }
  if (counters != nullptr) {
    ++counters->segment_tests;
    counters->edges_considered += static_cast<int64_t>(ep.size() + eq.size());
  }
  const bool small_case =
      ep.size() + eq.size() <= static_cast<size_t>(options.brute_threshold);
  return (options.use_sweep && !small_case) ? SweepRedBlueIntersect(ep, eq)
                                            : BruteRedBlueIntersect(ep, eq);
}

}  // namespace hasj::algo
