#include "algo/point_in_polygon.h"

#include "geom/predicates.h"

namespace hasj::algo {

PointLocation LocatePoint(geom::Point p, const geom::Polygon& polygon) {
  if (!polygon.Bounds().Contains(p)) return PointLocation::kOutside;

  // Crossing-number with a ray to +x. Each edge is counted with the
  // half-open rule (a.y <= p.y < b.y for upward edges, mirrored for
  // downward), which makes vertices on the ray count exactly once and makes
  // horizontal edges never count. Whether the crossing lies strictly to the
  // right of p is decided by the exact orientation of (a, b, p).
  bool inside = false;
  const size_t n = polygon.size();
  for (size_t i = 0, j = n - 1; i < n; j = i++) {
    const geom::Point a = polygon.vertex(j);
    const geom::Point b = polygon.vertex(i);
    if (geom::OnSegment(a, b, p)) return PointLocation::kBoundary;
    const bool a_below = a.y <= p.y;
    const bool b_below = b.y <= p.y;
    if (a_below == b_below) continue;  // edge does not straddle the ray level
    const int orient = geom::Orient2d(a, b, p);
    // Upward edge (a below, b above): crossing is right of p iff p is
    // strictly left of a->b. Downward edge: strictly right.
    if (a_below ? (orient > 0) : (orient < 0)) inside = !inside;
  }
  return inside ? PointLocation::kInside : PointLocation::kOutside;
}

}  // namespace hasj::algo
