#ifndef HASJ_ALGO_POLYGON_INTERSECT_H_
#define HASJ_ALGO_POLYGON_INTERSECT_H_

#include <cstdint>

#include "geom/polygon.h"

namespace hasj::algo {

// Knobs for the software intersection test; defaults reproduce the paper's
// software baseline (plane sweep with the restricted-search-space
// optimization of Brinkhoff et al.).
struct SoftwareIntersectOptions {
  // Use the O((n+m)log(n+m)) plane sweep; false runs the O(n*m) brute pair
  // loop (reference / ablation).
  bool use_sweep = true;
  // Only consider edges intersecting MBR(P) ∩ MBR(Q) (Figure 9(b)); gives
  // the paper's reported 30-40% practical improvement.
  bool restricted_search = true;
  // Hybrid cutover: when the clipped edge sets total at most this many
  // edges, run the brute pair loop even if use_sweep is set — on modern
  // CPUs the allocation-free O(k^2) loop beats the tree-based sweep for
  // small k (see bench/ablation_sweep). 0 keeps the paper's pure-sweep
  // baseline, which the figure benchmarks use.
  int brute_threshold = 0;
};

// Optional instrumentation populated by PolygonsIntersect.
struct IntersectCounters {
  int64_t point_in_polygon_hits = 0;  // decided by the point-in-polygon step
  int64_t segment_tests = 0;          // pairs that reached a segment test
  int64_t edges_considered = 0;       // edges after restricted-search clip
};

// Exact intersection test between two simple polygons viewed as closed
// regions (touching counts as intersecting). This is the paper's software
// refinement test: Point-in-Polygon first (O(n+m), also handles
// containment), then the segment intersection test on the boundaries.
bool PolygonsIntersect(const geom::Polygon& p, const geom::Polygon& q,
                       const SoftwareIntersectOptions& options = {},
                       IntersectCounters* counters = nullptr);

// The segment-test step alone: true iff the polygon boundaries intersect
// (does not detect containment). The hardware-assisted tester calls this
// after its own point-in-polygon and hardware filtering steps.
bool BoundariesIntersect(const geom::Polygon& p, const geom::Polygon& q,
                         const SoftwareIntersectOptions& options = {},
                         IntersectCounters* counters = nullptr);

}  // namespace hasj::algo

#endif  // HASJ_ALGO_POLYGON_INTERSECT_H_
