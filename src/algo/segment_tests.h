#ifndef HASJ_ALGO_SEGMENT_TESTS_H_
#define HASJ_ALGO_SEGMENT_TESTS_H_

#include <span>
#include <vector>

#include "geom/box.h"
#include "geom/polygon.h"
#include "geom/segment.h"

namespace hasj::algo {

// O(|red| * |blue|) exact red-blue segment intersection detection. Reference
// implementation used to validate the plane sweep and as the small-input
// fast path.
bool BruteRedBlueIntersect(std::span<const geom::Segment> red,
                           std::span<const geom::Segment> blue);

// Shamos-Hoey plane-sweep red-blue intersection detection,
// O((n+m) log(n+m)). Requires that segments of the same color intersect at
// most at shared endpoints (true for edge sets of simple polygons); detects
// every red-blue intersection including endpoint touching and collinear
// overlap. This is the paper's software Segment Intersection Test.
bool SweepRedBlueIntersect(std::span<const geom::Segment> red,
                           std::span<const geom::Segment> blue);

// Edges of `polygon` that intersect `window`, the restricted-search-space
// optimization of Brinkhoff et al. used by the paper's software test
// (Figure 9(b)): only edges meeting the intersection of the two MBRs can
// participate in a boundary crossing.
std::vector<geom::Segment> EdgesInWindow(const geom::Polygon& polygon,
                                         const geom::Box& window);

}  // namespace hasj::algo

#endif  // HASJ_ALGO_SEGMENT_TESTS_H_
