#include "algo/convex_hull.h"

#include <algorithm>

#include "geom/predicates.h"

namespace hasj::algo {

std::vector<geom::Point> ConvexHull(std::span<const geom::Point> points) {
  std::vector<geom::Point> pts(points.begin(), points.end());
  std::sort(pts.begin(), pts.end());
  pts.erase(std::unique(pts.begin(), pts.end()), pts.end());
  const size_t n = pts.size();
  if (n <= 2) return pts;

  std::vector<geom::Point> hull(2 * n);
  size_t k = 0;
  // Lower hull.
  for (size_t i = 0; i < n; ++i) {
    while (k >= 2 &&
           geom::Orient2d(hull[k - 2], hull[k - 1], pts[i]) <= 0) {
      --k;
    }
    hull[k++] = pts[i];
  }
  // Upper hull.
  for (size_t i = n - 1, t = k + 1; i-- > 0;) {
    while (k >= t && geom::Orient2d(hull[k - 2], hull[k - 1], pts[i]) <= 0) {
      --k;
    }
    hull[k++] = pts[i];
  }
  hull.resize(k - 1);  // last point equals the first
  return hull;
}

geom::Polygon ConvexHullPolygon(const geom::Polygon& polygon) {
  return geom::Polygon(ConvexHull(polygon.vertices()));
}

}  // namespace hasj::algo
