#include "algo/segment_tests.h"

#include <algorithm>
#include <set>

#include "common/macros.h"
#include "geom/predicates.h"

namespace hasj::algo {

bool BruteRedBlueIntersect(std::span<const geom::Segment> red,
                           std::span<const geom::Segment> blue) {
  for (const geom::Segment& r : red) {
    for (const geom::Segment& b : blue) {
      if (geom::SegmentsIntersect(r, b)) return true;
    }
  }
  return false;
}

std::vector<geom::Segment> EdgesInWindow(const geom::Polygon& polygon,
                                         const geom::Box& window) {
  std::vector<geom::Segment> out;
  const size_t n = polygon.size();
  for (size_t i = 0; i < n; ++i) {
    const geom::Segment e = polygon.edge(i);
    if (geom::SegmentIntersectsBox(e, window)) out.push_back(e);
  }
  return out;
}

namespace {

// Internal segment representation for the sweep: endpoints normalized to
// lexicographic order (left to right; verticals bottom to top).
struct SweepSeg {
  geom::Point a;
  geom::Point b;
  int color;
  int id;
  bool vertical;
};

// Position of the sweep-front segment `n` (its left endpoint is exactly on
// the sweep line) relative to the active segment `t` (which spans the sweep
// line): +1 above, -1 below, 0 collinear with t. Ties at the point are
// broken by slope (the order just right of the sweep line).
int RelPos(const SweepSeg* n, const SweepSeg* t) {
  const int at_point = geom::Orient2d(t->a, t->b, n->a);
  if (at_point != 0) return at_point;
  return geom::Orient2d(t->a, t->b, n->b);
}

// Orders active segments bottom-to-top at the current sweep position. Only
// comparisons involving the segment currently being inserted (or used as a
// probe) ever occur; `current` identifies it.
struct StatusLess {
  const SweepSeg* const* current;

  bool operator()(const SweepSeg* u, const SweepSeg* v) const {
    if (u == v) return false;
    if (u == *current) {
      const int r = RelPos(u, v);
      return r != 0 ? r < 0 : u->id < v->id;
    }
    HASJ_DCHECK(v == *current);
    const int r = RelPos(v, u);
    return r != 0 ? r > 0 : u->id < v->id;
  }
};

enum class EventType { kInsert = 0, kVertical = 1, kRemove = 2 };

struct Event {
  geom::Point p;
  EventType type;
  SweepSeg* seg;
};

bool CrossColorIntersect(const SweepSeg* u, const SweepSeg* v) {
  if (u->color == v->color) return false;
  return geom::SegmentsIntersect(geom::Segment(u->a, u->b),
                                 geom::Segment(v->a, v->b));
}

}  // namespace

bool SweepRedBlueIntersect(std::span<const geom::Segment> red,
                           std::span<const geom::Segment> blue) {
  std::vector<SweepSeg> segs;
  segs.reserve(red.size() + blue.size());
  int next_id = 0;
  auto add = [&](const geom::Segment& s, int color) {
    SweepSeg ss;
    ss.a = s.a;
    ss.b = s.b;
    if (ss.b < ss.a) std::swap(ss.a, ss.b);
    ss.color = color;
    ss.id = next_id++;
    // lint:allow(float-eq): exact verticality decides the sweep branch
    ss.vertical = ss.a.x == ss.b.x;  // includes degenerate point segments
    segs.push_back(ss);
  };
  for (const geom::Segment& s : red) add(s, 0);
  for (const geom::Segment& s : blue) add(s, 1);

  std::vector<Event> events;
  events.reserve(2 * segs.size());
  for (SweepSeg& s : segs) {
    if (s.vertical) {
      events.push_back({s.a, EventType::kVertical, &s});
    } else {
      events.push_back({s.a, EventType::kInsert, &s});
      events.push_back({s.b, EventType::kRemove, &s});
    }
  }
  // Process inserts, then verticals, then removals at equal x so that
  // segments meeting exactly at x are simultaneously active when tested.
  std::sort(events.begin(), events.end(), [](const Event& x, const Event& y) {
    if (x.p.x != y.p.x) return x.p.x < y.p.x;  // lint:allow(float-eq): exact event tie-break
    if (x.type != y.type) return static_cast<int>(x.type) < static_cast<int>(y.type);
    if (x.p.y != y.p.y) return x.p.y < y.p.y;  // lint:allow(float-eq): exact event tie-break
    return x.seg->id < y.seg->id;
  });

  const SweepSeg* current = nullptr;
  using Status = std::set<SweepSeg*, StatusLess>;
  Status status{StatusLess{&current}};
  std::vector<Status::iterator> handle(segs.size());

  // Verticals already processed at the current x (for vertical-vertical
  // overlap testing; they never enter the status structure).
  std::vector<SweepSeg*> verticals_here;
  double verticals_x = 0.0;

  for (const Event& e : events) {
    switch (e.type) {
      case EventType::kInsert: {
        current = e.seg;
        const auto [it, inserted] = status.insert(e.seg);
        HASJ_CHECK(inserted);
        handle[static_cast<size_t>(e.seg->id)] = it;
        if (const auto nx = std::next(it);
            nx != status.end() && CrossColorIntersect(e.seg, *nx)) {
          return true;
        }
        if (it != status.begin() &&
            CrossColorIntersect(e.seg, *std::prev(it))) {
          return true;
        }
        break;
      }
      case EventType::kRemove: {
        const auto it = handle[static_cast<size_t>(e.seg->id)];
        SweepSeg* below = it != status.begin() ? *std::prev(it) : nullptr;
        const auto nx = std::next(it);
        SweepSeg* above = nx != status.end() ? *nx : nullptr;
        status.erase(it);
        // The removed segment's neighbors become adjacent: test them.
        if (below != nullptr && above != nullptr &&
            CrossColorIntersect(below, above)) {
          return true;
        }
        break;
      }
      case EventType::kVertical: {
        // lint:allow(float-eq): verticals batch by exact event x
        if (!verticals_here.empty() && verticals_x != e.p.x) {
          verticals_here.clear();
        }
        for (SweepSeg* other : verticals_here) {
          if (CrossColorIntersect(e.seg, other)) return true;
        }
        verticals_here.push_back(e.seg);
        verticals_x = e.p.x;

        // Walk the status from just below the vertical's bottom endpoint
        // upward until an active segment is strictly above its top.
        current = e.seg;
        auto it = status.lower_bound(e.seg);
        if (it != status.begin() && CrossColorIntersect(e.seg, *std::prev(it))) {
          return true;
        }
        for (; it != status.end(); ++it) {
          if (CrossColorIntersect(e.seg, *it)) return true;
          if (geom::Orient2d((*it)->a, (*it)->b, e.seg->b) < 0) break;
        }
        break;
      }
    }
  }
  return false;
}

}  // namespace hasj::algo
