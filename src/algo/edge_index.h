#ifndef HASJ_ALGO_EDGE_INDEX_H_
#define HASJ_ALGO_EDGE_INDEX_H_

#include "geom/polygon.h"
#include "index/rtree.h"

namespace hasj::algo {

// Per-polygon edge R-tree: the runtime analog of Brinkhoff et al.'s
// TR*-tree refinement technique (Table 1 of the paper). An STR-packed
// R-tree over the polygon's edge MBRs; boundary intersection between two
// indexed polygons becomes an early-exit synchronized tree traversal with
// exact segment tests at candidate leaf pairs — O(log) descent into the
// region where a crossing can exist instead of a full sweep. Built in
// O(n log n); worthwhile when the polygon participates in many pairs and
// the index can be cached, which is why the paper classifies TR*-trees as
// a pre-processing technique.
//
// Keeps a pointer to the polygon; the polygon must outlive the index.
class EdgeIndex {
 public:
  explicit EdgeIndex(const geom::Polygon& polygon);
  // A temporary would leave polygon_ dangling after the statement.
  explicit EdgeIndex(geom::Polygon&&) = delete;

  const geom::Polygon& polygon() const { return *polygon_; }

  // Exact: true iff the two polygon boundaries intersect (touching counts).
  static bool BoundariesIntersect(const EdgeIndex& a, const EdgeIndex& b);

 private:
  const geom::Polygon* polygon_;
  index::RTree tree_;
};

}  // namespace hasj::algo

#endif  // HASJ_ALGO_EDGE_INDEX_H_
