#ifndef HASJ_ALGO_SIMPLICITY_H_
#define HASJ_ALGO_SIMPLICITY_H_

#include "geom/polygon.h"

namespace hasj::algo {

// Exact simplicity test: no two non-adjacent edges intersect, and adjacent
// edges meet only at their shared vertex (no spikes / collinear backtracks).
// O(n^2); intended for validating generated and loaded data, not for hot
// query paths.
bool IsSimple(const geom::Polygon& polygon);

}  // namespace hasj::algo

#endif  // HASJ_ALGO_SIMPLICITY_H_
