#include "algo/polygon_distance.h"

#include <algorithm>
#include <vector>

#include "algo/point_in_polygon.h"
#include "algo/polygon_intersect.h"
#include "geom/box.h"
#include "geom/segment.h"

namespace hasj::algo {
namespace {

// Frontier chain of `polygon` with respect to the other object's MBR: edges
// that can participate in a minimum-distance pair given the upper bound.
std::vector<geom::Segment> FrontierEdges(const geom::Polygon& polygon,
                                         const geom::Box& other_mbr,
                                         double upper_bound) {
  std::vector<geom::Segment> out;
  for (size_t i = 0; i < polygon.size(); ++i) {
    const geom::Segment e = polygon.edge(i);
    if (geom::Distance(e, other_mbr) <= upper_bound) out.push_back(e);
  }
  return out;
}

std::vector<geom::Segment> AllEdges(const geom::Polygon& polygon) {
  std::vector<geom::Segment> out;
  out.reserve(polygon.size());
  for (size_t i = 0; i < polygon.size(); ++i) out.push_back(polygon.edge(i));
  return out;
}

}  // namespace

double PolygonDistanceBrute(const geom::Polygon& p, const geom::Polygon& q) {
  if (PolygonsIntersect(p, q)) return 0.0;
  double best = geom::MaxDistance(p.Bounds(), q.Bounds());
  for (size_t i = 0; i < p.size(); ++i) {
    const geom::Segment e = p.edge(i);
    for (size_t j = 0; j < q.size(); ++j) {
      best = std::min(best, geom::Distance(e, q.edge(j)));
    }
  }
  return best;
}

double PolygonDistance(const geom::Polygon& p, const geom::Polygon& q,
                       const DistanceOptions& options,
                       DistanceCounters* counters) {
  if (PolygonsIntersect(p, q)) return 0.0;

  // Seed the upper bound with the 0-Object MinMax bound, then tighten with
  // one concrete vertex pair so the frontier clip has a real distance to
  // work with.
  double best = geom::MinMaxDistance(p.Bounds(), q.Bounds());
  best = std::min(best, geom::Distance(p.vertex(0), q.vertex(0)));

  std::vector<geom::Segment> ep =
      options.use_frontier ? FrontierEdges(p, q.Bounds(), best) : AllEdges(p);
  std::vector<geom::Segment> eq =
      options.use_frontier ? FrontierEdges(q, p.Bounds(), best) : AllEdges(q);
  if (counters != nullptr) {
    counters->frontier_edges += static_cast<int64_t>(ep.size() + eq.size());
  }

  for (const geom::Segment& e : ep) {
    if (options.prune_edge_pairs &&
        geom::Distance(e, q.Bounds()) > best) {
      continue;
    }
    const geom::Box eb = e.Bounds();
    for (const geom::Segment& f : eq) {
      if (options.prune_edge_pairs && geom::MinDistance(eb, f.Bounds()) > best) {
        continue;
      }
      if (counters != nullptr) ++counters->edge_pairs_tested;
      best = std::min(best, geom::Distance(e, f));
    }
  }
  return best;
}

bool WithinDistance(const geom::Polygon& p, const geom::Polygon& q, double d,
                    const DistanceOptions& options,
                    DistanceCounters* counters) {
  if (geom::MinDistance(p.Bounds(), q.Bounds()) > d) return false;
  if (BoundariesWithinDistance(p, q, d, options, counters)) return true;
  // Only pure containment remains; it implies nested MBRs.
  if (q.Bounds().Contains(p.Bounds()) && ContainsPoint(q, p.vertex(0))) {
    return true;
  }
  if (p.Bounds().Contains(q.Bounds()) && ContainsPoint(p, q.vertex(0))) {
    return true;
  }
  return false;
}

bool BoundariesWithinDistance(const geom::Polygon& p, const geom::Polygon& q,
                              double d, const DistanceOptions& options,
                              DistanceCounters* counters) {
  if (geom::MinDistance(p.Bounds(), q.Bounds()) > d) return false;
  // Crossing boundaries short-circuit via the segment test, which finds a
  // crossing far faster than the edge-pair distance loop.
  if (BoundariesIntersect(p, q)) return true;

  // Candidate edges: only edges intersecting the other MBR extended by d can
  // realize a pair within d (the extension is per-axis, a conservative
  // superset of the Euclidean d-neighborhood).
  std::vector<geom::Segment> ep, eq;
  if (options.use_frontier) {
    const geom::Box qx = q.Bounds().Expanded(d);
    const geom::Box px = p.Bounds().Expanded(d);
    for (size_t i = 0; i < p.size(); ++i) {
      if (geom::SegmentIntersectsBox(p.edge(i), qx)) ep.push_back(p.edge(i));
    }
    if (ep.empty()) return false;
    for (size_t j = 0; j < q.size(); ++j) {
      if (geom::SegmentIntersectsBox(q.edge(j), px)) eq.push_back(q.edge(j));
    }
    if (eq.empty()) return false;
  } else {
    ep = AllEdges(p);
    eq = AllEdges(q);
  }
  if (counters != nullptr) {
    counters->frontier_edges += static_cast<int64_t>(ep.size() + eq.size());
  }

  double best = geom::MaxDistance(p.Bounds(), q.Bounds());
  for (const geom::Segment& e : ep) {
    const geom::Box eb = e.Bounds();
    for (const geom::Segment& f : eq) {
      if (options.prune_edge_pairs && geom::MinDistance(eb, f.Bounds()) > d) {
        continue;
      }
      if (counters != nullptr) ++counters->edge_pairs_tested;
      const double dist = geom::Distance(e, f);
      best = std::min(best, dist);
      if (options.early_exit && best <= d) return true;
    }
  }
  return best <= d;
}

}  // namespace hasj::algo
