#ifndef HASJ_ALGO_POINT_LOCATOR_H_
#define HASJ_ALGO_POINT_LOCATOR_H_

#include <cstdint>
#include <vector>

#include "algo/point_in_polygon.h"
#include "geom/polygon.h"

namespace hasj::algo {

// Accelerated exact point location against one polygon: a y-bucketed edge
// index built once in O(n) makes each query touch only the edges whose
// y-span overlaps the query's bucket, instead of all n edges. Exactly
// equivalent to LocatePoint (same predicates); worthwhile when the same
// polygon is probed against many candidates, as in the refinement step of
// joins with large polygons.
//
// Keeps a pointer to the polygon; the polygon must outlive the locator.
class PointLocator {
 public:
  explicit PointLocator(const geom::Polygon& polygon);

  PointLocation Locate(geom::Point p) const;

  bool Contains(geom::Point p) const {
    return Locate(p) != PointLocation::kOutside;
  }

 private:
  const geom::Polygon* polygon_;
  double y0_ = 0.0;
  double inv_dy_ = 0.0;
  int buckets_ = 1;
  std::vector<int32_t> offsets_;  // buckets_ + 1 prefix offsets into edges_
  std::vector<int32_t> edges_;    // edge ids grouped by bucket
};

}  // namespace hasj::algo

#endif  // HASJ_ALGO_POINT_LOCATOR_H_
