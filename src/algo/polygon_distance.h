#ifndef HASJ_ALGO_POLYGON_DISTANCE_H_
#define HASJ_ALGO_POLYGON_DISTANCE_H_

#include <cstdint>

#include "geom/polygon.h"

namespace hasj::algo {

// Knobs for the software distance test; defaults reproduce the paper's
// modified minDist algorithm (Chan's frontier chains plus the paper's two
// optimizations: early exit at <= D and D-extended-MBR clipping).
struct DistanceOptions {
  // Restrict each polygon to its frontier chain: edges whose distance to the
  // other MBR does not exceed the current upper bound / query distance.
  bool use_frontier = true;
  // Skip edge pairs whose bounding boxes are farther apart than the current
  // bound (the restricted-search analogue for distance, Figure 9(d)).
  bool prune_edge_pairs = true;
  // For within-distance queries, return as soon as a pair within D is found.
  bool early_exit = true;
};

struct DistanceCounters {
  int64_t edge_pairs_tested = 0;  // segment-segment distance evaluations
  int64_t frontier_edges = 0;     // edges surviving the frontier clip
};

// Reference O(n*m) distance between two simple polygons viewed as closed
// regions: 0 if they intersect, otherwise the minimum boundary-to-boundary
// distance. Ground truth for tests.
double PolygonDistanceBrute(const geom::Polygon& p, const geom::Polygon& q);

// minDist-style exact distance with frontier-chain pruning seeded by the
// MinMax MBR upper bound. Equal to PolygonDistanceBrute on all inputs.
double PolygonDistance(const geom::Polygon& p, const geom::Polygon& q,
                       const DistanceOptions& options = {},
                       DistanceCounters* counters = nullptr);

// The paper's software distance test: true iff the polygons are within
// distance d of each other (closed regions; intersection counts).
bool WithinDistance(const geom::Polygon& p, const geom::Polygon& q, double d,
                    const DistanceOptions& options = {},
                    DistanceCounters* counters = nullptr);

// Boundary-only variant: true iff the boundaries come within distance d
// (crossing boundaries have distance 0). Misses only pure containment;
// callers that have already ruled containment out (or check it separately,
// like the hardware-assisted tester with its cached point locators) use
// this to avoid a redundant embedded intersection test.
bool BoundariesWithinDistance(const geom::Polygon& p, const geom::Polygon& q,
                              double d, const DistanceOptions& options = {},
                              DistanceCounters* counters = nullptr);

}  // namespace hasj::algo

#endif  // HASJ_ALGO_POLYGON_DISTANCE_H_
