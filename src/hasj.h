#ifndef HASJ_HASJ_H_
#define HASJ_HASJ_H_

// Umbrella header: the public API of the hardware-accelerated spatial
// selection and join library (reproduction of Sun, Agrawal, El Abbadi,
// SIGMOD 2003). See README.md for a guided tour.

#include "algo/edge_index.h"
#include "algo/point_in_polygon.h"
#include "algo/point_locator.h"
#include "algo/polygon_distance.h"
#include "algo/triangulate.h"
#include "algo/polygon_intersect.h"
#include "common/thread_pool.h"
#include "core/distance_join.h"
#include "core/distance_selection.h"
#include "core/hw_distance.h"
#include "core/hw_filled.h"
#include "core/hw_intersection.h"
#include "core/hw_nearest.h"
#include "core/join.h"
#include "core/refinement_executor.h"
#include "core/selection.h"
#include "data/catalogs.h"
#include "data/dataset.h"
#include "data/generator.h"
#include "data/io.h"
#include "data/svg.h"
#include "filter/interior_filter.h"
#include "filter/raster_signature.h"
#include "filter/signature_cache.h"
#include "filter/object_filters.h"
#include "geom/box.h"
#include "geom/clip.h"
#include "geom/point.h"
#include "geom/polygon.h"
#include "geom/segment.h"
#include "geom/wkt.h"
#include "index/rtree.h"
#include "obs/metrics.h"
#include "obs/names.h"
#include "obs/report.h"
#include "obs/trace.h"

#endif  // HASJ_HASJ_H_
