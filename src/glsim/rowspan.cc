#include "glsim/rowspan.h"

#include "common/macros.h"
#include "common/simd.h"

namespace hasj::glsim {

namespace {

const RowSpanKernels* Avx2KernelsIfUsable() {
  // Both halves must hold: the TU was compiled with -mavx2 (non-null
  // table) AND the CPU+OS enable AVX2 at runtime (cpuid/xgetbv).
  if (!common::CpuHasAvx2()) return nullptr;
  return rowspan_internal::GetAvx2RowSpanKernels();
}

}  // namespace

bool RowSpanEngine::Available(common::SimdMode mode) {
  switch (mode) {
    case common::SimdMode::kAuto:
    case common::SimdMode::kScalar:
      return true;
    case common::SimdMode::kAvx2:
      return Avx2KernelsIfUsable() != nullptr;
  }
  return false;
}

const RowSpanEngine& RowSpanEngine::Get(common::SimdMode mode) {
  static const RowSpanEngine scalar(common::SimdMode::kScalar,
                                    &rowspan_internal::kScalarRowSpanKernels);
  static const RowSpanKernels* avx2_kernels = Avx2KernelsIfUsable();
  static const RowSpanEngine avx2(common::SimdMode::kAvx2,
                                  avx2_kernels != nullptr
                                      ? avx2_kernels
                                      : &rowspan_internal::kScalarRowSpanKernels);
  switch (mode) {
    case common::SimdMode::kScalar:
      return scalar;
    case common::SimdMode::kAvx2:
      HASJ_CHECK(avx2_kernels != nullptr);  // check Available() first
      return avx2;
    case common::SimdMode::kAuto:
      return avx2_kernels != nullptr ? avx2 : scalar;
  }
  return scalar;
}

}  // namespace hasj::glsim
