#ifndef HASJ_GLSIM_ATLAS_H_
#define HASJ_GLSIM_ATLAS_H_

#include <cstdint>
#include <vector>

#include "common/fault.h"
#include "common/macros.h"
#include "common/status.h"
#include "glsim/rowspan.h"

namespace hasj::glsim {

// Tile-atlas framebuffer for batched hardware testing (DESIGN.md §9).
//
// One Atlas models a single large off-screen framebuffer (e.g. 1024x1024)
// partitioned into `capacity` square tiles of tile_res x tile_res pixels,
// one tile per candidate pair. Rendering a pair is scissored to its tile by
// construction: the rasterizer clips to a tile_res x tile_res viewport and
// the tile's pixels are stored contiguously, so no draw can spill into a
// neighbor (the tile-isolation argument of DESIGN.md §9). Clearing and
// scanning touch the whole buffer once per batch instead of once per pair —
// the amortization the paper's per-pair windows cannot get.
//
// Storage is one bit per pixel, tile-major:
//  * tile_res^2 <= 64 ("packed"): a whole tile is ONE machine word; row y
//    occupies bits [y*tile_res, y*tile_res + tile_res). An 8x8 tile — the
//    paper's recommended window — is exactly a uint64_t, so a row-span
//    write is a single OR and a shared-pixel probe a single AND.
//  * tile_res <= 64 otherwise: one word per row, tile_res words per tile.
//
// Fill and probe go through RowFiller/RowProber, which plug into the
// row-span rasterizers of raster.h. Because those share the span->column
// snapping with the per-pixel rasterizers, an atlas tile holds exactly the
// pixels a per-pair PixelMask render would — asserted pixel-for-pixel by
// tests/property_differential_test.cc.
class Atlas {
 public:
  // Largest tile resolution the word-per-row layout supports.
  static constexpr int kMaxTileRes = 64;

  Atlas(int tile_res, int capacity);

  int tile_res() const { return tile_res_; }
  int capacity() const { return capacity_; }
  bool packed() const { return packed_; }
  int words_per_tile() const { return words_per_tile_; }

  // Conceptual framebuffer dimensions (tiles laid out row-major in a
  // near-square grid), for reporting and the golden tests.
  int width() const { return tiles_per_row_ * tile_res_; }
  int height() const {
    return ((capacity_ + tiles_per_row_ - 1) / tiles_per_row_) * tile_res_;
  }

  // One pass over the whole framebuffer — the per-batch clear.
  void Clear();

  // Fault hook, null-pointer-gated like RenderContext::set_faults: with no
  // injector attached the atlas cannot fail and each Begin* below is one
  // pointer test. Not owned.
  void set_faults(FaultInjector* faults) { faults_ = faults; }

  // Failable phases of a batch (DESIGN.md §11). TryClear models the
  // per-batch buffer (re)allocation + clear (kFramebufferAlloc): on a fault
  // nothing is cleared and the batch must not use the atlas. BeginFill and
  // BeginScan gate the fill pass (kBatchFill) and the probe pass
  // (kScanReadback). A batch whose Begin* faults is retried pair-by-pair
  // through the per-pair testers — never failed outright.
  [[nodiscard]] Status TryClear();
  [[nodiscard]] Status BeginFill();
  [[nodiscard]] Status BeginScan();

  uint64_t* tile_words(int tile) {
    HASJ_DCHECK(tile >= 0 && tile < capacity_);
    return words_.data() + static_cast<size_t>(tile) * words_per_tile_;
  }
  const uint64_t* tile_words(int tile) const {
    HASJ_DCHECK(tile >= 0 && tile < capacity_);
    return words_.data() + static_cast<size_t>(tile) * words_per_tile_;
  }

  // Pixel test in tile-local coordinates (debug/test accessor; the hot
  // paths work on whole words).
  bool Test(int tile, int x, int y) const;
  int CountSet(int tile) const;

  // True once every pixel of the tile is set — the saturation early-stop of
  // the first-chain render (same decision as the per-pair path's `unset`
  // counter: a full mask stays full).
  bool TileFull(int tile) const;

  // All bits of a full tile_res-pixel row (bits 0..tile_res-1).
  uint64_t row_mask_full() const { return row_full_; }

  // Kernel entry points of the batch hot path (DESIGN.md §14): apply a
  // primitive's row-span buffer to one tile through the given engine —
  // packed tiles take the whole-grid-in-one-word kernels, word-per-row
  // tiles the stride-1 row kernels. Identical bits and counts under every
  // backend (the engine's bit-identity contract), and identical pixels to
  // a RowFiller/RowProber emit walk of the same spans (asserted by
  // tests/simd_differential_test.cc).
  FillResult FillTileSpans(const RowSpanEngine& engine, int tile,
                           RowSpanBuffer* spans) {
    if (packed_) return engine.FillPacked(spans, tile_res_, tile_words(tile));
    return engine.FillRows(spans, tile_res_, 1, tile_words(tile));
  }
  ProbeResult ProbeTileSpans(const RowSpanEngine& engine, int tile,
                             RowSpanBuffer* spans) const {
    if (packed_) return engine.ProbePacked(spans, tile_res_, tile_words(tile));
    return engine.ProbeRows(spans, tile_res_, 1, tile_words(tile));
  }

  // Row emitter writing row spans into one tile; plugs into
  // RasterizeLineAARowSpans / RasterizeWidePointRowSpans. Row/column
  // ranges arrive pre-clipped to [0, tile_res). Kept as the reference
  // emitter of the golden tests; the batch tester goes through
  // FillTileSpans/ProbeTileSpans above.
  class RowFiller {
   public:
    RowFiller(Atlas* atlas, int tile)
        : words_(atlas->tile_words(tile)),
          tile_res_(atlas->tile_res_),
          packed_(atlas->packed_) {}

    void operator()(int c0, int c1, int y) {
      const uint64_t span = RowMask(c0, c1);
      if (packed_) {
        words_[0] |= span << (y * tile_res_);
      } else {
        words_[y] |= span;
      }
    }

   private:
    uint64_t* words_;
    int tile_res_;
    bool packed_;
  };

  // Row emitter probing one tile of a (previously filled) atlas for a
  // doubly-colored pixel; stops the primitive at the first hit (the fused
  // scan of the batch tester). The probed spans are exactly the pixels the
  // second chain would color, so a hit == "some pixel colored by both".
  class RowProber {
   public:
    RowProber(const Atlas& atlas, int tile)
        : words_(atlas.tile_words(tile)),
          tile_res_(atlas.tile_res_),
          packed_(atlas.packed_) {}

    bool operator()(int c0, int c1, int y) {
      const uint64_t span = RowMask(c0, c1);
      const uint64_t overlap = packed_
                                   ? (words_[0] >> (y * tile_res_)) & span
                                   : words_[y] & span;
      hit_ = hit_ || overlap != 0;
      return hit_;
    }

    bool hit() const { return hit_; }

   private:
    const uint64_t* words_;
    int tile_res_;
    bool packed_;
    bool hit_ = false;
  };

 private:
  int tile_res_;
  int capacity_;
  bool packed_;
  int words_per_tile_;
  int tiles_per_row_;
  uint64_t row_full_ = 0;
  FaultInjector* faults_ = nullptr;  // null = cannot fail
  std::vector<uint64_t> words_;
};

}  // namespace hasj::glsim

#endif  // HASJ_GLSIM_ATLAS_H_
