#include "glsim/coverage.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"
#include "geom/segment.h"

namespace hasj::glsim {

LineFootprint LineFootprint::Make(geom::Point a, geom::Point b, double width) {
  LineFootprint fp;
  const geom::Point d = b - a;
  const double len = geom::Norm(d);
  HASJ_DCHECK(len > 0.0);
  fp.axis_dir = d / len;
  fp.axis_perp = geom::Point{-fp.axis_dir.y, fp.axis_dir.x};
  const geom::Point h = fp.axis_perp * (width * 0.5);
  fp.corner[0] = a + h;
  fp.corner[1] = b + h;
  fp.corner[2] = b - h;
  fp.corner[3] = a - h;
  return fp;
}

namespace {

// Projects points onto axis and returns [min, max].
template <int N>
void Project(const geom::Point (&pts)[N], geom::Point axis, double& lo,
             double& hi) {
  lo = hi = geom::Dot(pts[0], axis);
  for (int i = 1; i < N; ++i) {
    const double v = geom::Dot(pts[i], axis);
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
}

// Closed interval overlap with a conservative relative tolerance. The
// hardware filter is only allowed to over-approximate coverage, never to
// under-approximate it: a single-point contact (e.g. a segment endpoint on
// a cell corner) produces exactly-touching projection intervals in exact
// arithmetic, which a handful of rounding errors can pull apart by a few
// ulps. The tolerance re-closes that gap; it can only add boundary pixels.
bool IntervalsOverlapClosed(double lo1, double hi1, double lo2, double hi2) {
  const double tol =
      1e-12 * (std::fabs(lo1) + std::fabs(hi1) + std::fabs(lo2) +
               std::fabs(hi2)) +
      1e-300;
  return lo1 <= hi2 + tol && lo2 <= hi1 + tol;
}

}  // namespace

bool CellIntersectsFootprint(int px, int py, const LineFootprint& fp) {
  const geom::Point cell[4] = {
      {static_cast<double>(px), static_cast<double>(py)},
      {static_cast<double>(px + 1), static_cast<double>(py)},
      {static_cast<double>(px + 1), static_cast<double>(py + 1)},
      {static_cast<double>(px), static_cast<double>(py + 1)},
  };
  const geom::Point axes[4] = {
      {1.0, 0.0}, {0.0, 1.0}, fp.axis_dir, fp.axis_perp};
  for (const geom::Point& axis : axes) {
    double alo, ahi, blo, bhi;
    Project(cell, axis, alo, ahi);
    Project(fp.corner, axis, blo, bhi);
    if (!IntervalsOverlapClosed(alo, ahi, blo, bhi)) return false;
  }
  return true;
}

bool CellIntersectsDisc(int px, int py, geom::Point c, double r) {
  const double dx = std::max({0.0, px - c.x, c.x - (px + 1.0)});
  const double dy = std::max({0.0, py - c.y, c.y - (py + 1.0)});
  const double d2 = dx * dx + dy * dy;
  const double r2 = r * r;
  return d2 <= r2 + 1e-12 * (d2 + r2);  // same conservative closing as above
}

bool CellIntersectsSegment(int px, int py, geom::Point a, geom::Point b) {
  const geom::Box cell(px, py, px + 1.0, py + 1.0);
  return geom::SegmentIntersectsBox(geom::Segment(a, b), cell);
}

}  // namespace hasj::glsim
