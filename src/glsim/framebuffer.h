#ifndef HASJ_GLSIM_FRAMEBUFFER_H_
#define HASJ_GLSIM_FRAMEBUFFER_H_

#include <vector>

#include "common/macros.h"

namespace hasj::glsim {

// RGB color value. The simulator's buffers store plain floats; the color
// buffer clamps to [0, 1] on write like a fixed-point GL color buffer, the
// accumulation buffer is unclamped until GL_RETURN.
struct Rgb {
  float r = 0.0f;
  float g = 0.0f;
  float b = 0.0f;

  friend bool operator==(Rgb x, Rgb y) {
    return x.r == y.r && x.g == y.g && x.b == y.b;
  }
};

// Per-channel minimum and maximum over a buffer, mirroring the hardware
// Minmax function (ARB_imaging) the paper uses to search the frame buffer
// without reading pixels back over the bus (§3.2).
struct MinMax {
  Rgb min;
  Rgb max;
};

// Color buffer: width x height RGB pixels, clamped writes.
class ColorBuffer {
 public:
  ColorBuffer(int width, int height);

  int width() const { return width_; }
  int height() const { return height_; }

  void Clear(Rgb value = {});
  void Set(int x, int y, Rgb value);
  Rgb Get(int x, int y) const {
    HASJ_DCHECK(InBounds(x, y));
    return pixels_[Index(x, y)];
  }
  bool InBounds(int x, int y) const {
    return x >= 0 && x < width_ && y >= 0 && y < height_;
  }

  // Hardware Minmax over the whole buffer.
  MinMax ComputeMinMax() const;

  // Readback-style search: true if any pixel's max channel reaches
  // `threshold`. Models the slow path the paper avoids; kept for the
  // backend ablation.
  bool AnyPixelAtLeast(float threshold) const;

 private:
  int Index(int x, int y) const { return y * width_ + x; }

  int width_;
  int height_;
  std::vector<Rgb> pixels_;
};

// Depth buffer with a GL_LESS depth test. Used by the hardware Voronoi
// rendering ([12], the paper's §5 future-work direction): each site's
// distance field is a depth pass, and the surviving fragment per pixel
// belongs to the nearest site.
class DepthBuffer {
 public:
  DepthBuffer(int width, int height);

  void Clear();  // all depths to +infinity

  // GL_LESS: returns true (fragment passes, depth written) iff depth is
  // strictly less than the stored value.
  bool TestAndSet(int x, int y, float depth) {
    HASJ_DCHECK(x >= 0 && x < width_ && y >= 0 && y < height_);
    float& stored = depths_[static_cast<size_t>(y) * width_ + x];
    if (depth < stored) {
      stored = depth;
      return true;
    }
    return false;
  }

  float Get(int x, int y) const {
    HASJ_DCHECK(x >= 0 && x < width_ && y >= 0 && y < height_);
    return depths_[static_cast<size_t>(y) * width_ + x];
  }

 private:
  int width_;
  int height_;
  std::vector<float> depths_;
};

// Accumulation buffer with the three GL ops the paper's Algorithm 3.1 uses.
class AccumBuffer {
 public:
  AccumBuffer(int width, int height);

  void Clear();
  // GL_LOAD: accum = color * value.
  void Load(const ColorBuffer& color, float value);
  // GL_ACCUM: accum += color * value.
  void Accum(const ColorBuffer& color, float value);
  // GL_RETURN: color = clamp(accum * value).
  void Return(ColorBuffer& color, float value) const;

 private:
  int width_;
  int height_;
  std::vector<Rgb> values_;
};

}  // namespace hasj::glsim

#endif  // HASJ_GLSIM_FRAMEBUFFER_H_
