#include "glsim/atlas.h"

#include <algorithm>
#include <cmath>

#include "glsim/pixel_snap.h"

namespace hasj::glsim {

Atlas::Atlas(int tile_res, int capacity)
    : tile_res_(tile_res),
      capacity_(capacity),
      packed_(tile_res * tile_res <= 64),
      words_per_tile_(packed_ ? 1 : tile_res),
      tiles_per_row_(std::max(
          1, PixelFromCoord(std::ceil(std::sqrt(static_cast<double>(capacity))),
                            1, capacity))),
      words_(static_cast<size_t>(capacity) * words_per_tile_, 0) {
  HASJ_CHECK(tile_res >= 1 && tile_res <= kMaxTileRes);
  HASJ_CHECK(capacity >= 1);
  row_full_ = RowMask(0, tile_res_ - 1);
}

void Atlas::Clear() { std::fill(words_.begin(), words_.end(), 0); }

Status Atlas::TryClear() {
  if (faults_ != nullptr) {
    if (Status s = faults_->Check(FaultSite::kFramebufferAlloc); !s.ok()) {
      return s;
    }
  }
  Clear();
  return Status::Ok();
}

Status Atlas::BeginFill() {
  if (faults_ == nullptr) return Status::Ok();
  return faults_->Check(FaultSite::kBatchFill);
}

Status Atlas::BeginScan() {
  if (faults_ == nullptr) return Status::Ok();
  return faults_->Check(FaultSite::kScanReadback);
}

bool Atlas::Test(int tile, int x, int y) const {
  HASJ_DCHECK(x >= 0 && x < tile_res_ && y >= 0 && y < tile_res_);
  const uint64_t* words = tile_words(tile);
  if (packed_) return (words[0] >> (y * tile_res_ + x)) & 1;
  return (words[y] >> x) & 1;
}

int Atlas::CountSet(int tile) const {
  const uint64_t* words = tile_words(tile);
  int n = 0;
  for (int w = 0; w < words_per_tile_; ++w) {
    n += __builtin_popcountll(words[w]);
  }
  return n;
}

bool Atlas::TileFull(int tile) const {
  const uint64_t* words = tile_words(tile);
  if (packed_) {
    // Rows are contiguous: a full tile is tile_res_^2 low bits set.
    const int bits = tile_res_ * tile_res_;
    const uint64_t full =
        bits == 64 ? ~uint64_t{0} : (uint64_t{1} << bits) - 1;
    return words[0] == full;
  }
  for (int y = 0; y < tile_res_; ++y) {
    if (words[y] != row_full_) return false;
  }
  return true;
}

}  // namespace hasj::glsim
