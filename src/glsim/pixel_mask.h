#ifndef HASJ_GLSIM_PIXEL_MASK_H_
#define HASJ_GLSIM_PIXEL_MASK_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/macros.h"
#include "glsim/rowspan.h"

namespace hasj::glsim {

// Dense bitset over a pixel grid. The fast backend of the hardware tests:
// rasterizing each polygon into a mask and intersecting masks is
// decision-equivalent to the faithful color/accumulation-buffer pipeline
// (asserted by tests and the backend ablation bench).
//
// Storage follows the two row-span kernel layouts (rowspan.h):
//  * width*height <= 64 ("packed"): the whole grid is one word, pixel
//    (x, y) = bit y*width + x — bit-for-bit the historical flat layout, so
//    the paper's 8x8 per-pair window stays a single-word mask.
//  * otherwise row-aligned: pixel (x, y) = bit x&63 of word
//    y*stride_words + (x>>6). Costs up to one partial word per row over
//    the flat layout but makes every row word-addressable, which is what
//    the SIMD fill/probe kernels need.
class PixelMask {
 public:
  PixelMask(int width, int height)
      : width_(width),
        height_(height),
        packed_(static_cast<int64_t>(width) * height <= 64),
        stride_words_(packed_ ? 1 : (width + 63) / 64),
        words_(packed_ ? 1
                       : static_cast<size_t>(stride_words_) *
                             static_cast<size_t>(height)) {
    HASJ_CHECK(width > 0 && height > 0);
  }

  int width() const { return width_; }
  int height() const { return height_; }
  bool packed() const { return packed_; }
  int stride_words() const { return stride_words_; }
  const uint64_t* words() const { return words_.data(); }

  void Clear() { std::fill(words_.begin(), words_.end(), 0); }

  void Set(int x, int y) {
    const size_t bit = Index(x, y);
    words_[bit >> 6] |= uint64_t{1} << (bit & 63);
  }

  bool Test(int x, int y) const {
    const size_t bit = Index(x, y);
    return (words_[bit >> 6] >> (bit & 63)) & 1;
  }

  // Applies a primitive's row-span buffer through the given kernel engine
  // (rowspan.h) — the hot path of the per-pair bitmask testers; Set() is
  // the per-pixel reference the differential tests compare against.
  FillResult FillSpans(const RowSpanEngine& engine, RowSpanBuffer* spans) {
    if (packed_) return engine.FillPacked(spans, width_, words_.data());
    return engine.FillRows(spans, width_, stride_words_, words_.data());
  }
  ProbeResult ProbeSpans(const RowSpanEngine& engine,
                         RowSpanBuffer* spans) const {
    if (packed_) return engine.ProbePacked(spans, width_, words_.data());
    return engine.ProbeRows(spans, width_, stride_words_, words_.data());
  }

  // True if any pixel is set in both masks. Masks must match in size (and
  // therefore in layout, so the word-wise AND is pixel-wise).
  bool IntersectsAny(const PixelMask& other) const {
    HASJ_CHECK(width_ == other.width_ && height_ == other.height_);
    for (size_t i = 0; i < words_.size(); ++i) {
      if ((words_[i] & other.words_[i]) != 0) return true;
    }
    return false;
  }

  int CountSet() const {
    int n = 0;
    for (uint64_t w : words_) n += __builtin_popcountll(w);
    return n;
  }

 private:
  // Bit index of pixel (x, y) within words_. Both layouts keep every
  // addressable bit inside the vector, and the row-aligned layout never
  // sets the pad bits past `width` of a row's last word.
  size_t Index(int x, int y) const {
    HASJ_DCHECK(x >= 0 && x < width_ && y >= 0 && y < height_);
    if (packed_) {
      return static_cast<size_t>(y) * static_cast<size_t>(width_) +
             static_cast<size_t>(x);
    }
    return (static_cast<size_t>(y) * static_cast<size_t>(stride_words_) +
            (static_cast<size_t>(x) >> 6)) *
               64 +
           (static_cast<size_t>(x) & 63);
  }

  int width_;
  int height_;
  bool packed_;
  int stride_words_;
  std::vector<uint64_t> words_;
};

}  // namespace hasj::glsim

#endif  // HASJ_GLSIM_PIXEL_MASK_H_
