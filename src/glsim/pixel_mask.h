#ifndef HASJ_GLSIM_PIXEL_MASK_H_
#define HASJ_GLSIM_PIXEL_MASK_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/macros.h"

namespace hasj::glsim {

// Dense bitset over a pixel grid. The fast backend of the hardware tests:
// rasterizing each polygon into a mask and intersecting masks is
// decision-equivalent to the faithful color/accumulation-buffer pipeline
// (asserted by tests and the backend ablation bench).
class PixelMask {
 public:
  PixelMask(int width, int height)
      : width_(width),
        height_(height),
        words_((static_cast<size_t>(width) * static_cast<size_t>(height) + 63) /
               64) {
    HASJ_CHECK(width > 0 && height > 0);
  }

  int width() const { return width_; }
  int height() const { return height_; }

  void Clear() { std::fill(words_.begin(), words_.end(), 0); }

  void Set(int x, int y) {
    const size_t bit = Index(x, y);
    words_[bit >> 6] |= uint64_t{1} << (bit & 63);
  }

  bool Test(int x, int y) const {
    const size_t bit = Index(x, y);
    return (words_[bit >> 6] >> (bit & 63)) & 1;
  }

  // True if any pixel is set in both masks. Masks must match in size.
  bool IntersectsAny(const PixelMask& other) const {
    HASJ_CHECK(words_.size() == other.words_.size());
    for (size_t i = 0; i < words_.size(); ++i) {
      if ((words_[i] & other.words_[i]) != 0) return true;
    }
    return false;
  }

  int CountSet() const {
    int n = 0;
    for (uint64_t w : words_) n += __builtin_popcountll(w);
    return n;
  }

 private:
  size_t Index(int x, int y) const {
    HASJ_DCHECK(x >= 0 && x < width_ && y >= 0 && y < height_);
    return static_cast<size_t>(y) * static_cast<size_t>(width_) +
           static_cast<size_t>(x);
  }

  int width_;
  int height_;
  std::vector<uint64_t> words_;
};

}  // namespace hasj::glsim

#endif  // HASJ_GLSIM_PIXEL_MASK_H_
