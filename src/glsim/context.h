#ifndef HASJ_GLSIM_CONTEXT_H_
#define HASJ_GLSIM_CONTEXT_H_

#include <span>

#include "common/fault.h"
#include "common/status.h"
#include "geom/box.h"
#include "geom/point.h"
#include "geom/polygon.h"
#include "glsim/framebuffer.h"
#include "obs/metrics.h"

namespace hasj::glsim {

// Hardware capability limits modeled after the paper's testbed (GeForce4):
// the maximum anti-aliased line width is 10 pixels, which is what forces
// the software fallback at large query distances (§4.4).
struct HwLimits {
  double max_line_width = 10.0;
  double max_point_size = 10.0;
};

// GL_ACCUM-style accumulation operations (the subset Algorithm 3.1 uses).
enum class AccumOp {
  kLoad,    // accum = color * value
  kAccum,   // accum += color * value
  kReturn,  // color = clamp(accum * value)
};

// The orthographic data-rect -> window projection, factored out of
// RenderContext so the batch tile atlas (glsim/atlas.h) projects with the
// exact same arithmetic — bit-identical window coordinates are one of the
// two ingredients of the batched path's decision identity (the other is
// the shared row-span snapping in raster.h).
struct WindowTransform {
  geom::Box data_rect;
  double scale_x = 1.0;
  double scale_y = 1.0;

  // data_rect -> [0, width] x [0, height]. A degenerate data_rect (zero
  // width or height) is inflated minimally so the projection stays finite;
  // the pad is relative to the coordinate magnitude or it would be absorbed
  // by floating-point rounding.
  static WindowTransform Make(const geom::Box& data_rect, int width,
                              int height);

  geom::Point ToWindow(geom::Point p) const {
    return {(p.x - data_rect.min_x) * scale_x,
            (p.y - data_rect.min_y) * scale_y};
  }
};

// Off-screen rendering context emulating the fixed-function OpenGL pipeline
// fragment the paper relies on: an orthographic projection of a data-space
// rectangle onto a small window, anti-aliased line/point rasterization with
// blending disabled, a color buffer, an accumulation buffer, and the
// hardware Minmax query.
//
// The projection maps `data_rect` onto the full window; rendering is
// clipped to the viewport like GL clipping would.
class RenderContext {
 public:
  RenderContext(int width, int height);

  int width() const { return width_; }
  int height() const { return height_; }
  const HwLimits& limits() const { return limits_; }
  void set_limits(const HwLimits& limits) { limits_ = limits; }

  // Attaches a metrics registry counting the simulated hardware primitives
  // (glsim.* counters, obs/names.h). Null (the default) detaches: every
  // recording site is one pointer test. Not owned.
  void set_metrics(obs::Registry* metrics);

  // Attaches a fault injector (DESIGN.md §11). Null (the default) means
  // the context cannot fail: BeginRender/BeginScan reduce to one pointer
  // test, keeping the production path zero-cost like set_metrics. Not
  // owned.
  void set_faults(FaultInjector* faults) { faults_ = faults; }

  // Fault gates for the two failable phases of a per-pair hardware test.
  // Callers must consume the Status (the domain lint enforces it in core/)
  // and route a non-OK pair to the exact software test.
  //
  // BeginRender models (re)binding the off-screen buffer for a pair plus
  // starting its render pass — it checks kFramebufferAlloc then
  // kRenderPass. BeginScan models the coverage probe/readback
  // (kScanReadback). Neither mutates any buffer state: on a fault the
  // caller simply abandons the pair's hardware attempt.
  [[nodiscard]] Status BeginRender();
  [[nodiscard]] Status BeginScan();

  // Orthographic projection: data_rect -> [0, width] x [0, height]. A
  // degenerate data_rect (zero width or height) is inflated minimally so
  // the projection stays finite.
  void SetDataRect(const geom::Box& data_rect);
  geom::Point ToWindow(geom::Point data_point) const;

  void Clear(Rgb value = {});
  void ClearAccum();

  void SetColor(Rgb color) { color_ = color; }
  // Width/size in pixels; values beyond the hardware limit are an error
  // (callers must check limits() and fall back to software, as the paper's
  // implementation does).
  void SetLineWidth(double width);
  void SetPointSize(double size);

  // Anti-aliased, blending-disabled primitives (the paper's §2.2.2 setup).
  // Inputs are data-space coordinates. Pixels covered more than once per
  // draw call are written once (GL writes fragments, not additive color).
  void DrawLineLoop(std::span<const geom::Point> ring);
  void DrawLineStrip(std::span<const geom::Point> chain);
  void DrawSegment(geom::Point a, geom::Point b) { DrawSegmentAA(a, b); }
  void DrawPoints(std::span<const geom::Point> points);
  // Filled simple polygon via the scanline point-sampling rule.
  void DrawPolygonFilled(const geom::Polygon& polygon);

  void Accum(AccumOp op, float value);

  // Hardware Minmax over the color buffer (no readback).
  MinMax Minmax() const {
    if (minmax_searches_ != nullptr) minmax_searches_->Increment();
    return color_buffer_.ComputeMinMax();
  }

  const ColorBuffer& color_buffer() const { return color_buffer_; }

 private:
  void DrawSegmentAA(geom::Point a, geom::Point b);

  int width_;
  int height_;
  HwLimits limits_;
  ColorBuffer color_buffer_;
  AccumBuffer accum_buffer_;
  geom::Box data_rect_;
  double scale_x_ = 1.0;
  double scale_y_ = 1.0;
  Rgb color_{1.0f, 1.0f, 1.0f};
  double line_width_ = 1.0;
  double point_size_ = 1.0;
  FaultInjector* faults_ = nullptr;  // null = cannot fail
  // Resolved once in set_metrics(); null = detached.
  obs::Counter* draw_segments_ = nullptr;
  obs::Counter* draw_points_ = nullptr;
  obs::Counter* accum_ops_ = nullptr;
  obs::Counter* minmax_searches_ = nullptr;
  obs::Counter* clears_ = nullptr;
};

}  // namespace hasj::glsim

#endif  // HASJ_GLSIM_CONTEXT_H_
