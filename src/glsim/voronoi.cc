#include "glsim/voronoi.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"
#include "glsim/framebuffer.h"
#include "glsim/pixel_snap.h"

namespace hasj::glsim {

void VoronoiDiagram::PixelOf(geom::Point p, int& x, int& y) const {
  const double sx = resolution / std::max(window.Width(), 1e-300);
  const double sy = resolution / std::max(window.Height(), 1e-300);
  // PixelFromCoord clamps in floating point before the int cast: a query
  // point far outside the window would otherwise overflow the cast (UB).
  x = PixelFromCoord(std::floor((p.x - window.min_x) * sx), 0, resolution - 1);
  y = PixelFromCoord(std::floor((p.y - window.min_y) * sy), 0, resolution - 1);
}

VoronoiDiagram RenderVoronoi(std::span<const geom::Point> sites,
                             const geom::Box& window, int resolution) {
  HASJ_CHECK(!sites.empty());
  HASJ_CHECK(resolution >= 1);
  HASJ_CHECK(!window.IsEmpty());

  VoronoiDiagram out;
  out.window = window;
  out.resolution = resolution;
  out.cell_site.assign(
      static_cast<size_t>(resolution) * static_cast<size_t>(resolution), 0);

  DepthBuffer depth(resolution, resolution);
  const double cw = window.Width() / resolution;
  const double ch = window.Height() / resolution;

  // One distance-field pass per site: the depth test keeps the nearest.
  // Squared distance is a monotone depth; float precision suffices because
  // only the comparison matters and ties fall to the earlier site.
  for (size_t s = 0; s < sites.size(); ++s) {
    const geom::Point site = sites[s];
    for (int y = 0; y < resolution; ++y) {
      const double cy = window.min_y + (y + 0.5) * ch;
      const double dy = cy - site.y;
      for (int x = 0; x < resolution; ++x) {
        const double cx = window.min_x + (x + 0.5) * cw;
        const double dx = cx - site.x;
        const float d2 = static_cast<float>(dx * dx + dy * dy);
        if (depth.TestAndSet(x, y, d2)) {
          out.cell_site[static_cast<size_t>(y) * resolution + x] =
              static_cast<int32_t>(s);
        }
      }
    }
  }
  return out;
}

}  // namespace hasj::glsim
