#ifndef HASJ_GLSIM_ROWSPAN_H_
#define HASJ_GLSIM_ROWSPAN_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>

#include "common/macros.h"
#include "common/simd.h"
#include "geom/point.h"
#include "glsim/pixel_snap.h"

namespace hasj::glsim {

// Row-span rasterizer core (DESIGN.md §14).
//
// The hot per-pair fill/probe loops decompose every primitive into one
// x-interval [xlo, xhi] per covered row (a RowSpanBuffer), snap each
// interval to cell columns (SnapSpanToCols — the single source of truth
// shared with the per-pixel rasterizers of raster.h), and apply the
// resulting bit spans to a word-packed pixel buffer. The snapping plus the
// word arithmetic is exactly the wide, regular loop SIMD wants, so the
// buffer->words step is routed through a kernel table (RowSpanKernels)
// with a portable scalar implementation and an AVX2 one, selected at
// startup by RowSpanEngine::Get.
//
// Bit-identity contract: every backend must produce identical words,
// identical span/newly-set counts, and identical early-stop points
// (probe kernels stop at the first *row* containing a hit). Verdicts,
// HwCounters, and the HASJ_PARANOID oracle are therefore backend-invariant
// — enforced by tests/simd_differential_test.cc.
//
// Two buffer layouts cover every consumer:
//  * packed: the whole vw x vh grid fits one uint64_t; pixel (x, y) is bit
//    y*vw + x. This is the Atlas packed tile (tile_res <= 8) and the small
//    PixelMask (w*h <= 64) — bit-compatible with both.
//  * row-aligned: pixel (x, y) is bit x&63 of word y*stride_words + (x>>6).
//    stride_words == 1 is the Atlas word-per-row tile; stride_words > 1 is
//    the wide PixelMask (vw up to 1024).

// Test-only fault injection: when set, span emission shrinks each span by
// 0.75 px at both ends instead of conservatively closing it, so the spans
// of a default-width (√2 px) line vanish — the seeded coverage-rule bug the
// HASJ_PARANOID oracle must catch (tests/stress_paranoid_test.cc). Never
// set outside tests.
inline bool& TestCoverageShrink() {
  static bool shrink = false;
  return shrink;
}

// Maps the closed x-interval [xlo, xhi] to the cell columns whose closed
// cell intersects it, with a conservative relative tolerance (the same
// reasoning as coverage.cc: rounding must only ever add pixels), clamped
// into [0, vw-1]. Returns false for an empty interval (xlo > xhi — the
// ±inf-initialized untouched rows of a RowSpanBuffer land here). The
// single source of truth for span->column snapping: the per-pixel
// rasterizers, the kernel scalar tails, and the AVX2 quad snap all follow
// exactly this sequence of IEEE operations (kernel TUs are compiled with
// -ffp-contract=off so no backend contracts the tolerance mul+add into an
// FMA), which is what makes the batched hardware test decision-identical
// to the per-pair one (DESIGN.md §9, §14).
inline bool SnapSpanToCols(double xlo, double xhi, int vw, int* c0, int* c1) {
  if (xlo > xhi) return false;
  const double tol = 1e-12 * (std::fabs(xlo) + std::fabs(xhi)) + 1e-300;
  // Column c (cell [c, c+1]) intersects [xlo, xhi] iff c <= xhi and
  // c+1 >= xlo.
  *c0 = PixelFromCoord(std::ceil(xlo - tol) - 1.0, 0, vw - 1);
  *c1 = PixelFromCoord(std::floor(xhi + tol), 0, vw - 1);
  return true;
}

// Bits c0..c1 inclusive (0 <= c0 <= c1 <= 63).
inline uint64_t RowMask(int c0, int c1) {
  return (~uint64_t{0} >> (63 - (c1 - c0))) << c0;
}

// Per-row x-extents of a convex footprint over the cell rows of a
// viewport. One incremental walk per edge: each border crossing y = k
// contributes its x to the two adjacent rows, each vertex to its own row
// (and, when it sits exactly on a border, to the row below — closed-slab
// semantics). The result per row is exactly the x-projection of
// footprint ∩ closed slab. Untouched rows stay empty (+inf extent), which
// SnapSpanToCols and the kernels treat as "no span".
struct RowSpanBuffer {
  static constexpr int kMaxRows = 4096;
  double xlo[kMaxRows];
  double xhi[kMaxRows];
  int row_min = 0;
  int row_max = -1;

  // Prepares rows covering [ymin, ymax] (one guard row each side), clipped
  // to the viewport.
  void Init(double ymin, double ymax, int vh) {
    row_min = PixelFromCoord(std::floor(ymin) - 1.0, 0, vh - 1);
    row_max = PixelFromCoord(std::floor(ymax) + 1.0, 0, vh - 1);
    for (int r = row_min; r <= row_max; ++r) {
      xlo[r] = std::numeric_limits<double>::infinity();
      xhi[r] = -std::numeric_limits<double>::infinity();
    }
  }

  void Update(int row, double x) {
    xlo[row] = std::min(xlo[row], x);
    xhi[row] = std::max(xhi[row], x);
  }

  // A boundary point at height y: touches row floor(y), and also the row
  // below when it lies exactly on a border. Bounds-checked in double to
  // avoid integer overflow on extreme coordinates.
  void AddPoint(double y, double x) {
    const double f = std::floor(y);
    if (f >= row_min && f <= row_max) Update(PixelFromCoord(f, row_min, row_max), x);
    if (y == f) {
      const double g = f - 1.0;
      if (g >= row_min && g <= row_max) Update(PixelFromCoord(g, row_min, row_max), x);
    }
  }

  // One polygon edge (p -> q, any order).
  void AddEdge(geom::Point p, geom::Point q) {
    if (p.y > q.y) std::swap(p, q);
    AddPoint(p.y, p.x);
    AddPoint(q.y, q.x);
    // Border crossings k in (p.y, q.y): crossing k belongs to rows k-1, k.
    double k0 = std::floor(p.y) + 1.0;
    if (k0 < static_cast<double>(row_min)) k0 = row_min;
    double k1 = std::ceil(q.y) - 1.0;
    const double kmax = static_cast<double>(row_max) + 1.0;
    if (k1 > kmax) k1 = kmax;
    if (k0 > k1) return;  // no crossings: skip the division entirely
    const double slope = (q.x - p.x) / (q.y - p.y);
    for (double k = k0; k <= k1; k += 1.0) {
      const double x = p.x + (k - p.y) * slope;
      const int row = PixelFromCoord(k, row_min, row_max + 1);
      if (row - 1 >= row_min) Update(row - 1, x);
      if (row <= row_max) Update(row, x);
    }
  }
};

// Builds the row spans of a wide point (disc of diameter `size` centered
// at p) — the footprint of RasterizeWidePoint. Rows outside the disc stay
// empty. Returns false when the footprint misses the viewport entirely.
inline bool ComputeWidePointSpans(geom::Point p, double size, int /*vw*/,
                                  int vh, RowSpanBuffer* spans) {
  HASJ_DCHECK(vh <= RowSpanBuffer::kMaxRows);
  const double r = size * 0.5;
  const double rtol = r + 1e-12 * (r + std::fabs(p.x) + std::fabs(p.y));
  const int y0 = PixelFromCoord(std::floor(p.y - rtol) - 1, 0, vh - 1);
  const int y1 = PixelFromCoord(std::floor(p.y + rtol) + 1, 0, vh - 1);
  spans->row_min = y0;
  spans->row_max = y1;
  for (int y = y0; y <= y1; ++y) {
    // x-extent of disc ∩ slab [y, y+1]: width at the slab's closest y.
    const double dy = std::max({0.0, y - p.y, p.y - (y + 1.0)});
    const double under = rtol * rtol - dy * dy;
    if (under < 0.0) {
      spans->xlo[y] = std::numeric_limits<double>::infinity();
      spans->xhi[y] = -std::numeric_limits<double>::infinity();
      continue;
    }
    const double halfw = std::sqrt(under);
    spans->xlo[y] = p.x - halfw;
    spans->xhi[y] = p.x + halfw;
  }
  return true;
}

// Builds the row spans of an anti-aliased line segment (the paper-Figure-4
// width rectangle; a == b degenerates to the wide point). Returns false
// when the footprint is clipped away — the caller skips the primitive, the
// same decision the emit loop of RasterizeLineAARowSpans used to make.
inline bool ComputeLineAASpans(geom::Point a, geom::Point b, double width,
                               int vw, int vh, RowSpanBuffer* spans) {
  if (a == b) return ComputeWidePointSpans(a, width, vw, vh, spans);
  HASJ_DCHECK(vh <= RowSpanBuffer::kMaxRows);
  // Footprint corners a±h, b±h with h the half-width normal; computed with
  // a single division (no normalized axes — the scan conversion does not
  // need them, unlike the SAT predicate in coverage.h).
  const double dx = b.x - a.x;
  const double dy = b.y - a.y;
  const double scale = (width * 0.5) / std::sqrt(dx * dx + dy * dy);
  const double hx = -dy * scale;
  const double hy = dx * scale;
  const geom::Point c0{a.x + hx, a.y + hy};
  const geom::Point c1{b.x + hx, b.y + hy};
  const geom::Point c2{b.x - hx, b.y - hy};
  const geom::Point c3{a.x - hx, a.y - hy};
  const double miny = std::min(std::min(c0.y, c1.y), std::min(c2.y, c3.y));
  const double maxy = std::max(std::max(c0.y, c1.y), std::max(c2.y, c3.y));
  if (maxy < 0.0 || miny > vh) return false;
  spans->Init(miny, maxy, vh);
  spans->AddEdge(c0, c1);
  spans->AddEdge(c1, c2);
  spans->AddEdge(c2, c3);
  spans->AddEdge(c3, c0);
  return true;
}

// Result of a fill kernel: how many non-empty row spans were applied, and
// how many previously-unset bits they set (the per-pair `unset` budget and
// the hw.fill_spans counter both hang off this).
struct FillResult {
  int64_t spans = 0;
  int64_t newly_set = 0;
};

// Result of a probe kernel: how many non-empty row spans were probed (up
// to and including the hit row — the early-stop point every backend must
// share), and the first row containing a doubly-colored pixel (-1 = none).
struct ProbeResult {
  int64_t spans = 0;
  int hit_row = -1;
};

// Shared word arithmetic for the row-aligned layout: bits c0..c1 of a row
// of `stride_words` words. Inline in the header so the scalar kernels and
// the AVX2 kernels' wide-row paths execute literally the same code.
inline int64_t FillRowWords(uint64_t* row, int c0, int c1) {
  const int w0 = c0 >> 6;
  const int w1 = c1 >> 6;
  const uint64_t head = ~uint64_t{0} << (c0 & 63);
  const uint64_t tail = ~uint64_t{0} >> (63 - (c1 & 63));
  int64_t newly = 0;
  if (w0 == w1) {
    const uint64_t m = head & tail;
    newly += __builtin_popcountll(m & ~row[w0]);
    row[w0] |= m;
    return newly;
  }
  newly += __builtin_popcountll(head & ~row[w0]);
  row[w0] |= head;
  for (int w = w0 + 1; w < w1; ++w) {
    newly += __builtin_popcountll(~row[w]);
    row[w] = ~uint64_t{0};
  }
  newly += __builtin_popcountll(tail & ~row[w1]);
  row[w1] |= tail;
  return newly;
}

inline bool ProbeRowWords(const uint64_t* row, int c0, int c1) {
  const int w0 = c0 >> 6;
  const int w1 = c1 >> 6;
  const uint64_t head = ~uint64_t{0} << (c0 & 63);
  const uint64_t tail = ~uint64_t{0} >> (63 - (c1 & 63));
  if (w0 == w1) return (row[w0] & head & tail) != 0;
  if ((row[w0] & head) != 0) return true;
  for (int w = w0 + 1; w < w1; ++w) {
    if (row[w] != 0) return true;
  }
  return (row[w1] & tail) != 0;
}

// The kernel table one backend implements. All kernels walk the buffer's
// rows [row_min, row_max], snap via the SnapSpanToCols contract, and skip
// empty rows without counting them.
//
//  * fill_packed / probe_packed: the whole grid is one word (vw*vh <= 64),
//    pixel (x, y) = bit y*vw + x.
//  * fill_rows / probe_rows: row y starts at words[y*stride_words], pixel
//    x = bit x&63 of word x>>6 (columns pre-clamped to [0, vw) <= 64*stride).
//
// Fill kernels process every row (saturation early-stop lives in the
// callers at primitive granularity — skipped fills on a full buffer are
// all no-ops, so stopping there is observably identical). Probe kernels
// stop at the first row whose span intersects the buffer; `spans` counts
// the non-empty rows probed up to and including that row.
struct RowSpanKernels {
  FillResult (*fill_packed)(const RowSpanBuffer& spans, int vw,
                            uint64_t* word);
  ProbeResult (*probe_packed)(const RowSpanBuffer& spans, int vw,
                              const uint64_t* word);
  FillResult (*fill_rows)(const RowSpanBuffer& spans, int vw,
                          int stride_words, uint64_t* words);
  ProbeResult (*probe_rows)(const RowSpanBuffer& spans, int vw,
                            int stride_words, const uint64_t* words);
};

namespace rowspan_internal {

// Portable backend (rowspan_scalar.cc) — the reference the differential
// tests compare against.
extern const RowSpanKernels kScalarRowSpanKernels;

// AVX2 backend (rowspan_avx2.cc); null when the TU was built without
// -mavx2 (non-x86 hosts, or HASJ_ARCH_FLAGS overridden to a baseline that
// lacks it).
const RowSpanKernels* GetAvx2RowSpanKernels();

}  // namespace rowspan_internal

// Dispatch facade: resolves a SimdMode to a kernel table once (cpuid at
// first use) and applies the test-only coverage-shrink pre-pass so the
// kernels themselves stay branch-free on the fault hook.
class RowSpanEngine {
 public:
  // True when `mode` can run on this host (kScalar and kAuto always can).
  static bool Available(common::SimdMode mode);

  // The engine for `mode`; kAuto resolves to the widest available backend.
  // HASJ_CHECKs that the mode is available — callers asking for an
  // explicit backend (tests, bench --simd) must check Available() first.
  static const RowSpanEngine& Get(common::SimdMode mode);

  // Resolved mode: kScalar or kAvx2, never kAuto.
  common::SimdMode mode() const { return mode_; }
  const char* name() const { return common::SimdModeName(mode_); }
  const RowSpanKernels& kernels() const { return *kernels_; }

  FillResult FillPacked(RowSpanBuffer* spans, int vw, uint64_t* word) const {
    ApplyTestShrink(spans);
    return kernels_->fill_packed(*spans, vw, word);
  }
  ProbeResult ProbePacked(RowSpanBuffer* spans, int vw,
                          const uint64_t* word) const {
    ApplyTestShrink(spans);
    return kernels_->probe_packed(*spans, vw, word);
  }
  FillResult FillRows(RowSpanBuffer* spans, int vw, int stride_words,
                      uint64_t* words) const {
    ApplyTestShrink(spans);
    return kernels_->fill_rows(*spans, vw, stride_words, words);
  }
  ProbeResult ProbeRows(RowSpanBuffer* spans, int vw, int stride_words,
                        const uint64_t* words) const {
    ApplyTestShrink(spans);
    return kernels_->probe_rows(*spans, vw, stride_words, words);
  }

 private:
  RowSpanEngine(common::SimdMode mode, const RowSpanKernels* kernels)
      : mode_(mode), kernels_(kernels) {}

  // The seeded under-coverage bug (TestCoverageShrink above), applied at
  // the same point of the pipeline as the per-pixel rasterizers apply it
  // (between span construction and column snapping) so the HASJ_PARANOID
  // oracle sees the identical violation through every backend.
  static void ApplyTestShrink(RowSpanBuffer* spans) {
    if (!TestCoverageShrink()) return;
    for (int r = spans->row_min; r <= spans->row_max; ++r) {
      if (spans->xlo[r] > spans->xhi[r]) continue;  // already empty
      spans->xlo[r] += 0.75;
      spans->xhi[r] -= 0.75;
    }
  }

  common::SimdMode mode_;
  const RowSpanKernels* kernels_;
};

}  // namespace hasj::glsim

#endif  // HASJ_GLSIM_ROWSPAN_H_
