#ifndef HASJ_GLSIM_PIXEL_SNAP_H_
#define HASJ_GLSIM_PIXEL_SNAP_H_

namespace hasj::glsim {

// The single blessed float->pixel boundary of the rasterizer.
//
// A bare static_cast<int>(double) is undefined behavior when the value does
// not fit in int, and degenerate viewports can magnify window coordinates
// past INT_MAX (and produce NaN) before any cell index is computed. Every
// float->int conversion in src/glsim must therefore go through
// PixelFromCoord, which clamps in floating point BEFORE the cast so the
// cast operand is always in range. The domain lint
// (scripts/lint_hasj.py, rule glsim-raw-cast) rejects any other
// floating->integral cast in this directory.
//
// Snapping a *lower* bound clamps NaN and -inf to `lo`, an *upper* bound
// clamps +inf to `hi`; both directions only ever widen the emitted pixel
// range, preserving the conservativeness invariant (DESIGN.md §6).
inline int PixelFromCoord(double v, int lo, int hi) {
  if (!(v >= lo)) return lo;  // also catches NaN
  if (v > hi) return hi;
  return static_cast<int>(v);  // in [lo, hi]: cast is defined
}

}  // namespace hasj::glsim

#endif  // HASJ_GLSIM_PIXEL_SNAP_H_
