#include "glsim/context.h"

#include "common/macros.h"
#include "glsim/raster.h"
#include "obs/names.h"

namespace hasj::glsim {

RenderContext::RenderContext(int width, int height)
    : width_(width),
      height_(height),
      color_buffer_(width, height),
      accum_buffer_(width, height),
      data_rect_(0.0, 0.0, width, height) {
  HASJ_CHECK(width > 0 && height > 0);
}

WindowTransform WindowTransform::Make(const geom::Box& data_rect, int width,
                                      int height) {
  HASJ_CHECK(!data_rect.IsEmpty());
  WindowTransform t;
  t.data_rect = data_rect;
  // Inflate degenerate extents so the projection stays finite (a data rect
  // can collapse to a line or point when two MBRs touch). The pad must be
  // large relative to the coordinate magnitude or it is absorbed by
  // floating-point rounding and the extent stays zero.
  const double w = t.data_rect.Width();
  const double h = t.data_rect.Height();
  const double magnitude = std::max(
      {w, h, std::fabs(t.data_rect.min_x), std::fabs(t.data_rect.max_x),
       std::fabs(t.data_rect.min_y), std::fabs(t.data_rect.max_y), 1.0});
  const double pad = magnitude * 1e-9;
  if (w <= 0.0) {
    t.data_rect.min_x -= pad;
    t.data_rect.max_x += pad;
  }
  if (h <= 0.0) {
    t.data_rect.min_y -= pad;
    t.data_rect.max_y += pad;
  }
  t.scale_x = width / t.data_rect.Width();
  t.scale_y = height / t.data_rect.Height();
  return t;
}

void RenderContext::SetDataRect(const geom::Box& data_rect) {
  const WindowTransform t = WindowTransform::Make(data_rect, width_, height_);
  data_rect_ = t.data_rect;
  scale_x_ = t.scale_x;
  scale_y_ = t.scale_y;
}

geom::Point RenderContext::ToWindow(geom::Point p) const {
  return {(p.x - data_rect_.min_x) * scale_x_,
          (p.y - data_rect_.min_y) * scale_y_};
}

void RenderContext::set_metrics(obs::Registry* metrics) {
  if (metrics == nullptr) {
    draw_segments_ = nullptr;
    draw_points_ = nullptr;
    accum_ops_ = nullptr;
    minmax_searches_ = nullptr;
    clears_ = nullptr;
    return;
  }
  draw_segments_ = &metrics->GetCounter(obs::kGlsimDrawSegments);
  draw_points_ = &metrics->GetCounter(obs::kGlsimDrawPoints);
  accum_ops_ = &metrics->GetCounter(obs::kGlsimAccumOps);
  minmax_searches_ = &metrics->GetCounter(obs::kGlsimMinmaxSearches);
  clears_ = &metrics->GetCounter(obs::kGlsimClears);
}

Status RenderContext::BeginRender() {
  if (faults_ == nullptr) return Status::Ok();
  if (Status s = faults_->Check(FaultSite::kFramebufferAlloc); !s.ok()) {
    return s;
  }
  return faults_->Check(FaultSite::kRenderPass);
}

Status RenderContext::BeginScan() {
  if (faults_ == nullptr) return Status::Ok();
  return faults_->Check(FaultSite::kScanReadback);
}

void RenderContext::Clear(Rgb value) {
  if (clears_ != nullptr) clears_->Increment();
  color_buffer_.Clear(value);
}

void RenderContext::ClearAccum() { accum_buffer_.Clear(); }

void RenderContext::SetLineWidth(double width) {
  HASJ_CHECK(width > 0.0 && width <= limits_.max_line_width);
  line_width_ = width;
}

void RenderContext::SetPointSize(double size) {
  HASJ_CHECK(size > 0.0 && size <= limits_.max_point_size);
  point_size_ = size;
}

void RenderContext::DrawSegmentAA(geom::Point a, geom::Point b) {
  if (draw_segments_ != nullptr) draw_segments_->Increment();
  RasterizeLineAA(ToWindow(a), ToWindow(b), line_width_, width_, height_,
                  [&](int x, int y) { color_buffer_.Set(x, y, color_); });
}

void RenderContext::DrawLineLoop(std::span<const geom::Point> ring) {
  const size_t n = ring.size();
  if (n < 2) return;
  for (size_t i = 0, j = n - 1; i < n; j = i++) {
    DrawSegmentAA(ring[j], ring[i]);
  }
}

void RenderContext::DrawLineStrip(std::span<const geom::Point> chain) {
  for (size_t i = 1; i < chain.size(); ++i) {
    DrawSegmentAA(chain[i - 1], chain[i]);
  }
}

void RenderContext::DrawPoints(std::span<const geom::Point> points) {
  if (draw_points_ != nullptr) {
    draw_points_->Add(static_cast<int64_t>(points.size()));
  }
  for (const geom::Point& p : points) {
    RasterizeWidePoint(ToWindow(p), point_size_, width_, height_,
                       [&](int x, int y) { color_buffer_.Set(x, y, color_); });
  }
}

void RenderContext::DrawPolygonFilled(const geom::Polygon& polygon) {
  std::vector<geom::Point> window_ring;
  window_ring.reserve(polygon.size());
  for (const geom::Point& p : polygon.vertices()) {
    window_ring.push_back(ToWindow(p));
  }
  RasterizePolygonFill(std::span<const geom::Point>(window_ring), width_,
                       height_,
                       [&](int x, int y) { color_buffer_.Set(x, y, color_); });
}

void RenderContext::Accum(AccumOp op, float value) {
  if (accum_ops_ != nullptr) accum_ops_->Increment();
  switch (op) {
    case AccumOp::kLoad:
      accum_buffer_.Load(color_buffer_, value);
      break;
    case AccumOp::kAccum:
      accum_buffer_.Accum(color_buffer_, value);
      break;
    case AccumOp::kReturn:
      accum_buffer_.Return(color_buffer_, value);
      break;
  }
}

}  // namespace hasj::glsim
