#ifndef HASJ_GLSIM_VORONOI_H_
#define HASJ_GLSIM_VORONOI_H_

#include <cstdint>
#include <span>
#include <vector>

#include "geom/box.h"
#include "geom/point.h"

namespace hasj::glsim {

// Discrete Voronoi diagram rendered the hardware way (Hoff et al. [12],
// the paper's §5 direction for nearest-neighbor queries): each site is a
// full-window distance-field pass through the depth test, so the fragment
// surviving at a pixel carries the id of the site nearest to that pixel's
// center. Cost is fill-rate bound — O(sites x resolution^2) — exactly the
// GPU algorithm's cost model, executed in software here.
struct VoronoiDiagram {
  geom::Box window;            // data-space rectangle rendered
  int resolution = 0;          // pixels per side
  std::vector<int32_t> cell_site;  // per pixel: index of the nearest site

  int32_t site_at(int x, int y) const {
    return cell_site[static_cast<size_t>(y) * resolution + x];
  }

  // Pixel containing a data-space point (clamped to the window).
  void PixelOf(geom::Point p, int& x, int& y) const;
};

// Renders the diagram for `sites` over `window` (sites may lie outside).
// Ties at a pixel keep the lower site index (first pass wins under
// GL_LESS). `sites` must be non-empty.
VoronoiDiagram RenderVoronoi(std::span<const geom::Point> sites,
                             const geom::Box& window, int resolution);

}  // namespace hasj::glsim

#endif  // HASJ_GLSIM_VORONOI_H_
