#ifndef HASJ_GLSIM_COVERAGE_H_
#define HASJ_GLSIM_COVERAGE_H_

#include "geom/point.h"

namespace hasj::glsim {

// Geometric predicates between a pixel cell and anti-aliased primitive
// footprints, all in window coordinates where pixel (px, py) is the closed
// unit square [px, px+1] x [py, py+1].
//
// OpenGL's anti-aliased rasterization colors a pixel when its coverage by
// the primitive footprint is nonzero. Zero-area (boundary-only) contact is
// implementation-defined on real hardware; this simulator uses CLOSED
// intersection tests, i.e. boundary contact counts. That is the strictly
// conservative choice the hardware filter's correctness proof needs: two
// touching segments always share at least one doubly-colored pixel, even
// when they touch in a single point on a cell border (see
// DESIGN.md, "Substitutions").

// The footprint of an anti-aliased line segment of width w: the rectangle
// with two sides parallel to the segment at distance w/2 and two end-cap
// sides through the endpoints (paper Figure 4(b)). Degenerate segments
// (a == b) produce an empty rectangle; use discs for wide points instead.
struct LineFootprint {
  geom::Point corner[4];  // quad corners, consecutive
  geom::Point axis_dir;   // unit direction of the segment
  geom::Point axis_perp;  // unit normal

  static LineFootprint Make(geom::Point a, geom::Point b, double width);
};

// Closed intersection between pixel (px, py) and the footprint quad
// (separating-axis test over the 4 candidate axes).
bool CellIntersectsFootprint(int px, int py, const LineFootprint& fp);

// Closed intersection between pixel (px, py) and the disc of radius r
// centered at c (anti-aliased wide point footprint).
bool CellIntersectsDisc(int px, int py, geom::Point c, double r);

// Closed intersection between pixel (px, py) and the bare segment [a, b]
// (width-0 footprint); used by conservativeness tests as the "pixels the
// segment passes through" reference.
bool CellIntersectsSegment(int px, int py, geom::Point a, geom::Point b);

}  // namespace hasj::glsim

#endif  // HASJ_GLSIM_COVERAGE_H_
