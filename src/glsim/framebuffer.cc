#include "glsim/framebuffer.h"

#include <algorithm>
#include <limits>

namespace hasj::glsim {
namespace {

float Clamp01(float v) { return std::clamp(v, 0.0f, 1.0f); }

}  // namespace

ColorBuffer::ColorBuffer(int width, int height)
    : width_(width),
      height_(height),
      pixels_(static_cast<size_t>(width) * static_cast<size_t>(height)) {
  HASJ_CHECK(width > 0 && height > 0);
}

void ColorBuffer::Clear(Rgb value) {
  std::fill(pixels_.begin(), pixels_.end(), value);
}

void ColorBuffer::Set(int x, int y, Rgb value) {
  HASJ_DCHECK(InBounds(x, y));
  pixels_[Index(x, y)] =
      Rgb{Clamp01(value.r), Clamp01(value.g), Clamp01(value.b)};
}

MinMax ColorBuffer::ComputeMinMax() const {
  MinMax mm;
  mm.min = Rgb{1.0f, 1.0f, 1.0f};
  mm.max = Rgb{0.0f, 0.0f, 0.0f};
  for (const Rgb& p : pixels_) {
    mm.min.r = std::min(mm.min.r, p.r);
    mm.min.g = std::min(mm.min.g, p.g);
    mm.min.b = std::min(mm.min.b, p.b);
    mm.max.r = std::max(mm.max.r, p.r);
    mm.max.g = std::max(mm.max.g, p.g);
    mm.max.b = std::max(mm.max.b, p.b);
  }
  return mm;
}

bool ColorBuffer::AnyPixelAtLeast(float threshold) const {
  for (const Rgb& p : pixels_) {
    if (std::max({p.r, p.g, p.b}) >= threshold) return true;
  }
  return false;
}

DepthBuffer::DepthBuffer(int width, int height)
    : width_(width),
      height_(height),
      depths_(static_cast<size_t>(width) * static_cast<size_t>(height),
              std::numeric_limits<float>::infinity()) {
  HASJ_CHECK(width > 0 && height > 0);
}

void DepthBuffer::Clear() {
  std::fill(depths_.begin(), depths_.end(),
            std::numeric_limits<float>::infinity());
}

AccumBuffer::AccumBuffer(int width, int height)
    : width_(width),
      height_(height),
      values_(static_cast<size_t>(width) * static_cast<size_t>(height)) {
  HASJ_CHECK(width > 0 && height > 0);
}

void AccumBuffer::Clear() {
  std::fill(values_.begin(), values_.end(), Rgb{});
}

void AccumBuffer::Load(const ColorBuffer& color, float value) {
  HASJ_CHECK(color.width() == width_ && color.height() == height_);
  for (int y = 0; y < height_; ++y) {
    for (int x = 0; x < width_; ++x) {
      const Rgb c = color.Get(x, y);
      values_[static_cast<size_t>(y) * width_ + x] =
          Rgb{c.r * value, c.g * value, c.b * value};
    }
  }
}

void AccumBuffer::Accum(const ColorBuffer& color, float value) {
  HASJ_CHECK(color.width() == width_ && color.height() == height_);
  for (int y = 0; y < height_; ++y) {
    for (int x = 0; x < width_; ++x) {
      const Rgb c = color.Get(x, y);
      Rgb& a = values_[static_cast<size_t>(y) * width_ + x];
      a.r += c.r * value;
      a.g += c.g * value;
      a.b += c.b * value;
    }
  }
}

void AccumBuffer::Return(ColorBuffer& color, float value) const {
  HASJ_CHECK(color.width() == width_ && color.height() == height_);
  for (int y = 0; y < height_; ++y) {
    for (int x = 0; x < width_; ++x) {
      const Rgb& a = values_[static_cast<size_t>(y) * width_ + x];
      color.Set(x, y, Rgb{a.r * value, a.g * value, a.b * value});
    }
  }
}

}  // namespace hasj::glsim
