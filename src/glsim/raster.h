#ifndef HASJ_GLSIM_RASTER_H_
#define HASJ_GLSIM_RASTER_H_

#include <algorithm>
#include <cmath>
#include <limits>
#include <span>
#include <type_traits>
#include <vector>

#include "common/macros.h"
#include "geom/point.h"
#include "glsim/coverage.h"
#include "glsim/pixel_snap.h"
#include "glsim/rowspan.h"

namespace hasj::glsim {

// Rasterization rules from §2.2 of the paper / the OpenGL specification.
// All functions work in window coordinates, clip to the viewport
// [0, vw) x [0, vh) (in cells), and invoke emit(px, py) once per covered
// pixel. They are templates so the render context's buffer writes inline.
//
// Early-exit contract (RasterizeWidePoint, RasterizeLineAA,
// RasterizeTriangleConservative): emit may return bool, and returning true
// stops the rasterization of the current primitive — the remaining pixels
// are skipped. The bitmask testers' probe loops use this to stop at the
// first doubly-colored pixel instead of clipping and emitting every span
// of the remaining edge. A void-returning emit never stops (the buffer
// writes of the render context).

namespace raster_internal {

// Invokes emit and normalizes its result to the early-exit contract:
// void -> never stop, bool -> stop when true.
template <typename Emit>
inline bool EmitStops(Emit& emit, int x, int y) {
  if constexpr (std::is_same_v<decltype(emit(x, y)), bool>) {
    return emit(x, y);
  } else {
    emit(x, y);
    return false;
  }
}

// Same normalization for row-range emitters: emit_row(c0, c1, y) covers the
// whole closed column range [c0, c1] of row y at once.
template <typename EmitRow>
inline bool EmitRowStops(EmitRow& emit_row, int c0, int c1, int y) {
  if constexpr (std::is_same_v<decltype(emit_row(c0, c1, y)), bool>) {
    return emit_row(c0, c1, y);
  } else {
    emit_row(c0, c1, y);
    return false;
  }
}

// The shrink fault hook and the span buffer moved to glsim scope
// (rowspan.h) with the SIMD core; aliased here so existing callers —
// tests/stress_paranoid_test.cc flips
// glsim::raster_internal::TestCoverageShrink() — keep compiling.
using ::hasj::glsim::TestCoverageShrink;
using RowSpans = ::hasj::glsim::RowSpanBuffer;

// Maps the closed x-interval [xlo, xhi] of row `y` to the cell columns
// whose closed cell intersects it (SnapSpanToCols, rowspan.h — the single
// source of truth shared with the SIMD kernels, which is what makes the
// batched hardware test decision-identical to the per-pair one, DESIGN.md
// §9/§14) and hands the whole range to emit_row(c0, c1, y) in one call.
// Returns true when emit_row stopped the rasterization.
template <typename EmitRow>
bool EmitRowSpanCols(double xlo, double xhi, int y, int vw, EmitRow& emit_row) {
  if (TestCoverageShrink()) {
    xlo += 0.75;
    xhi -= 0.75;  // injected under-coverage: the span may shrink away
  }
  int c0, c1;
  if (!SnapSpanToCols(xlo, xhi, vw, &c0, &c1)) return false;
  return EmitRowStops(emit_row, c0, c1, y);
}

// Per-pixel adapter over EmitRowSpanCols: emits every column of the range
// individually. Returns true when emit stopped the rasterization.
template <typename Emit>
bool EmitRowSpan(double xlo, double xhi, int y, int vw, Emit& emit) {
  auto per_pixel = [&emit](int c0, int c1, int y2) {
    for (int c = c0; c <= c1; ++c) {
      if (EmitStops(emit, c, y2)) return true;
    }
    return false;
  };
  return EmitRowSpanCols(xlo, xhi, y, vw, per_pixel);
}

}  // namespace raster_internal

// Basic point rasterization: window coordinates truncated to integers,
// pixel (floor(x), floor(y)) colored (paper Figure 3(b)).
template <typename Emit>
void RasterizePointTruncate(geom::Point p, int vw, int vh, Emit emit) {
  const double fx = std::floor(p.x);
  const double fy = std::floor(p.y);
  if (fx < 0.0 || fx >= vw || fy < 0.0 || fy >= vh) return;  // clipped
  emit(PixelFromCoord(fx, 0, vw - 1), PixelFromCoord(fy, 0, vh - 1));
}

namespace raster_internal {

// Per-pixel adapter: turns a pixel emitter into a row-range emitter so the
// classic per-pixel rasterizers are thin wrappers over the row-span cores
// below (one span walk, two consumers — per-pixel buffers and the batch
// tile atlas — with identical coverage by construction).
template <typename Emit>
auto PerPixelRows(Emit& emit) {
  return [&emit](int c0, int c1, int y) {
    for (int c = c0; c <= c1; ++c) {
      if (EmitStops(emit, c, y)) return true;
    }
    return false;
  };
}

}  // namespace raster_internal

// Row-span core of RasterizeWidePoint: emit_row(c0, c1, y) receives, for
// each covered row, the closed column range of pixels whose (closed) cell
// intersects the disc of diameter `size` centered at p. Conservative
// closed-contact semantics; see coverage.h. The early-exit contract applies
// to emit_row (returning true stops the primitive).
template <typename EmitRow>
void RasterizeWidePointRowSpans(geom::Point p, double size, int vw, int vh,
                                EmitRow emit_row) {
  static thread_local RowSpanBuffer spans;
  if (!ComputeWidePointSpans(p, size, vw, vh, &spans)) return;
  for (int y = spans.row_min; y <= spans.row_max; ++y) {
    if (raster_internal::EmitRowSpanCols(spans.xlo[y], spans.xhi[y], y, vw,
                                         emit_row)) {
      return;
    }
  }
}

// Anti-aliased wide point: every pixel whose (closed) cell intersects the
// disc of diameter `size` centered at p. Conservative closed-contact
// semantics; see coverage.h.
template <typename Emit>
void RasterizeWidePoint(geom::Point p, double size, int vw, int vh, Emit emit) {
  RasterizeWidePointRowSpans(p, size, vw, vh,
                             raster_internal::PerPixelRows(emit));
}

// Row-span core of RasterizeLineAA (same contract as
// RasterizeWidePointRowSpans; the footprint is the paper-Figure-4 width
// rectangle).
template <typename EmitRow>
void RasterizeLineAARowSpans(geom::Point a, geom::Point b, double width,
                             int vw, int vh, EmitRow emit_row) {
  static thread_local RowSpanBuffer spans;
  if (!ComputeLineAASpans(a, b, width, vw, vh, &spans)) return;
  for (int r = spans.row_min; r <= spans.row_max; ++r) {
    if (raster_internal::EmitRowSpanCols(spans.xlo[r], spans.xhi[r], r, vw,
                                         emit_row)) {
      return;
    }
  }
}

// Anti-aliased line segment of width `width`: every pixel whose (closed)
// cell intersects the bounding-rectangle footprint (paper Figure 4). This
// is the rule whose conservativeness the hardware intersection test relies
// on: every pixel the segment passes through is colored.
template <typename Emit>
void RasterizeLineAA(geom::Point a, geom::Point b, double width, int vw,
                     int vh, Emit emit) {
  RasterizeLineAARowSpans(a, b, width, vw, vh,
                          raster_internal::PerPixelRows(emit));
}

// Row-span core of RasterizeTriangleConservative (same contract as above).
template <typename EmitRow>
void RasterizeTriangleRowSpans(geom::Point a, geom::Point b, geom::Point c,
                               int vw, int vh, EmitRow emit_row) {
  HASJ_DCHECK(vh <= RowSpanBuffer::kMaxRows);
  const double miny = std::min(a.y, std::min(b.y, c.y));
  const double maxy = std::max(a.y, std::max(b.y, c.y));
  if (maxy < 0.0 || miny > vh) return;
  static thread_local RowSpanBuffer spans;
  spans.Init(miny, maxy, vh);
  spans.AddEdge(a, b);
  spans.AddEdge(b, c);
  spans.AddEdge(c, a);
  for (int r = spans.row_min; r <= spans.row_max; ++r) {
    if (raster_internal::EmitRowSpanCols(spans.xlo[r], spans.xhi[r], r, vw,
                                         emit_row)) {
      return;
    }
  }
}

// Conservative filled-triangle rasterization: every pixel whose closed
// cell intersects the closed triangle — a superset of GL's center-sampled
// fill. Used by the filled-strategy baseline tester, whose reject decision
// must be conservative exactly like the edge-chain test's.
template <typename Emit>
void RasterizeTriangleConservative(geom::Point a, geom::Point b,
                                   geom::Point c, int vw, int vh, Emit emit) {
  RasterizeTriangleRowSpans(a, b, c, vw, vh,
                            raster_internal::PerPixelRows(emit));
}

// Basic (aliased) line rasterization with the diamond-exit rule (paper
// Figure 3(c)/(d)): a pixel is colored iff the segment intersects its open
// diamond R_f = { |x-xc| + |y-yc| < 1/2 } and the segment's end point does
// not lie inside that diamond. Exhibits the "disappearing segment" behavior
// that makes it unusable for the conservative test; provided for
// completeness and for the tests that reproduce Figure 3(d).
template <typename Emit>
void RasterizeLineDiamondExit(geom::Point a, geom::Point b, int vw, int vh,
                              Emit emit) {
  // Minimum L1 distance from point c to segment [a, b]; the objective is
  // convex piecewise-linear in the parameter, so the minimum is attained at
  // an endpoint or where a coordinate difference changes sign.
  const auto min_l1 = [&](geom::Point c) {
    const geom::Point d = b - a;
    double candidates[4] = {0.0, 1.0, 0.0, 0.0};
    int n = 2;
    if (d.x != 0.0) candidates[n++] = std::clamp((c.x - a.x) / d.x, 0.0, 1.0);
    if (d.y != 0.0) candidates[n++] = std::clamp((c.y - a.y) / d.y, 0.0, 1.0);
    double best = std::numeric_limits<double>::infinity();
    for (int i = 0; i < n; ++i) {
      const geom::Point p = a + d * candidates[i];
      best = std::min(best, std::fabs(p.x - c.x) + std::fabs(p.y - c.y));
    }
    return best;
  };

  const int x0 = PixelFromCoord(std::floor(std::min(a.x, b.x)) - 1, 0, vw - 1);
  const int x1 = PixelFromCoord(std::floor(std::max(a.x, b.x)) + 1, 0, vw - 1);
  const int y0 = PixelFromCoord(std::floor(std::min(a.y, b.y)) - 1, 0, vh - 1);
  const int y1 = PixelFromCoord(std::floor(std::max(a.y, b.y)) + 1, 0, vh - 1);
  for (int y = y0; y <= y1; ++y) {
    for (int x = x0; x <= x1; ++x) {
      const geom::Point center{x + 0.5, y + 0.5};
      if (min_l1(center) >= 0.5) continue;  // does not enter the diamond
      const double end_l1 =
          std::fabs(b.x - center.x) + std::fabs(b.y - center.y);
      if (end_l1 < 0.5) continue;  // ends inside: no exit, not colored
      emit(x, y);
    }
  }
}

// Filled-polygon scanline rasterization with the OpenGL point-sampling
// rule (§2.2.3): a pixel is colored iff its center lies inside the polygon,
// with half-open crossing intervals so that a pixel centered on the shared
// edge of two polygons is colored exactly once across the two.
template <typename Emit>
void RasterizePolygonFill(std::span<const geom::Point> ring, int vw, int vh,
                          Emit emit) {
  HASJ_CHECK(ring.size() >= 3);
  double miny = ring[0].y, maxy = ring[0].y;
  for (const geom::Point& p : ring) {
    miny = std::min(miny, p.y);
    maxy = std::max(maxy, p.y);
  }
  const int y0 = PixelFromCoord(std::floor(miny - 0.5), 0, vh - 1);
  const int y1 = PixelFromCoord(std::floor(maxy), 0, vh - 1);
  std::vector<double> xs;
  for (int y = y0; y <= y1; ++y) {
    const double yc = y + 0.5;
    xs.clear();
    for (size_t i = 0, j = ring.size() - 1; i < ring.size(); j = i++) {
      const geom::Point p = ring[j];
      const geom::Point q = ring[i];
      if ((p.y <= yc) == (q.y <= yc)) continue;  // no straddle (half-open)
      xs.push_back(p.x + (yc - p.y) * (q.x - p.x) / (q.y - p.y));
    }
    std::sort(xs.begin(), xs.end());
    for (size_t k = 0; k + 1 < xs.size(); k += 2) {
      // Pixel centers in [xs[k], xs[k+1]): half-open so shared vertical
      // edges color once.
      const int lo = PixelFromCoord(std::ceil(xs[k] - 0.5), 0, vw - 1);
      const int hi = PixelFromCoord(std::ceil(xs[k + 1] - 0.5) - 1.0, -1, vw - 1);
      for (int px = lo; px <= hi; ++px) emit(px, y);
    }
  }
}

}  // namespace hasj::glsim

#endif  // HASJ_GLSIM_RASTER_H_
