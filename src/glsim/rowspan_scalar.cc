// Portable row-span kernels — the reference backend of the bit-identity
// contract (DESIGN.md §14). Compiled with -ffp-contract=off (see
// glsim/CMakeLists.txt) so the SnapSpanToCols tolerance arithmetic runs
// the same IEEE sequence here as in the AVX2 backend, even under
// -march=native builds where GCC would otherwise fuse the mul+add.

#include <cstdint>

#include "glsim/rowspan.h"

namespace hasj::glsim::rowspan_internal {

namespace {

FillResult FillPackedScalar(const RowSpanBuffer& spans, int vw,
                            uint64_t* word) {
  FillResult out;
  const uint64_t initial = *word;
  uint64_t acc = 0;
  for (int r = spans.row_min; r <= spans.row_max; ++r) {
    int c0, c1;
    if (!SnapSpanToCols(spans.xlo[r], spans.xhi[r], vw, &c0, &c1)) continue;
    ++out.spans;
    acc |= RowMask(c0, c1) << (r * vw);
  }
  *word = initial | acc;
  out.newly_set = __builtin_popcountll(acc & ~initial);
  return out;
}

ProbeResult ProbePackedScalar(const RowSpanBuffer& spans, int vw,
                              const uint64_t* word) {
  ProbeResult out;
  for (int r = spans.row_min; r <= spans.row_max; ++r) {
    int c0, c1;
    if (!SnapSpanToCols(spans.xlo[r], spans.xhi[r], vw, &c0, &c1)) continue;
    ++out.spans;
    if (((*word >> (r * vw)) & RowMask(c0, c1)) != 0) {
      out.hit_row = r;
      return out;
    }
  }
  return out;
}

FillResult FillRowsScalar(const RowSpanBuffer& spans, int vw,
                          int stride_words, uint64_t* words) {
  FillResult out;
  for (int r = spans.row_min; r <= spans.row_max; ++r) {
    int c0, c1;
    if (!SnapSpanToCols(spans.xlo[r], spans.xhi[r], vw, &c0, &c1)) continue;
    ++out.spans;
    out.newly_set += FillRowWords(words + static_cast<size_t>(r) * stride_words,
                                  c0, c1);
  }
  return out;
}

ProbeResult ProbeRowsScalar(const RowSpanBuffer& spans, int vw,
                            int stride_words, const uint64_t* words) {
  ProbeResult out;
  for (int r = spans.row_min; r <= spans.row_max; ++r) {
    int c0, c1;
    if (!SnapSpanToCols(spans.xlo[r], spans.xhi[r], vw, &c0, &c1)) continue;
    ++out.spans;
    if (ProbeRowWords(words + static_cast<size_t>(r) * stride_words, c0, c1)) {
      out.hit_row = r;
      return out;
    }
  }
  return out;
}

}  // namespace

const RowSpanKernels kScalarRowSpanKernels = {
    FillPackedScalar,
    ProbePackedScalar,
    FillRowsScalar,
    ProbeRowsScalar,
};

}  // namespace hasj::glsim::rowspan_internal
