// AVX2 row-span kernels. The only TU in the tree (besides common/simd.h)
// allowed to touch raw intrinsics — enforced by scripts/lint_hasj.py rule
// simd-intrinsics. Compiled with -mavx2 -ffp-contract=off (see
// glsim/CMakeLists.txt): the contract-off flag keeps the SnapSpanToCols
// tolerance arithmetic bit-identical to the scalar backend (GCC would
// otherwise fuse _mm256_mul_pd + _mm256_add_pd into an FMA under
// -march=native, changing the rounding of the tolerance and thus,
// potentially, a snapped column on a knife-edge span).
//
// Bit-identity argument (DESIGN.md §14), per quad of 4 rows:
//  * Emptiness is decided on the ORIGINAL xlo/xhi with _CMP_NGT_UQ —
//    exactly the scalar `!(xlo > xhi)`, including unordered operands: a
//    NaN extent is NON-empty for both backends and snaps to column 0
//    through the PixelFromCoord NaN branch below. The ±inf-initialized
//    untouched rows (+inf > -inf) are empty for both.
//  * ceil/floor/abs/mul/add are IEEE-exact and identical to the scalar
//    sequence (no contraction, same rounding mode).
//  * PixelFromCoord's branches map to max/min: maxpd/minpd return their
//    SECOND operand when an operand is NaN, so max(v, 0) sends NaN to 0
//    exactly like the scalar `!(v >= lo)` branch, and min(·, vw-1) sends
//    +inf to vw-1. The truncating convert then only ever sees values in
//    [0, vw-1], matching the scalar static_cast.
//  * For a non-empty span, c0 <= c1 (an integer a < xhi+tol implies
//    a <= floor(xhi+tol)), so 63-(c1-c0) and c0 are valid shift counts;
//    garbage lanes are zeroed both by shift counts >= 64 (sllv/srlv yield
//    0, unlike scalar shifts) and by the AND with the validity mask.

#include <cstdint>

#include "glsim/rowspan.h"

#if defined(__AVX2__)

#include <immintrin.h>

namespace hasj::glsim::rowspan_internal {

namespace {

struct Quad {
  __m256i valid;  // all-ones per non-empty row lane
  __m256i span;   // RowMask(c0, c1) per lane; 0 in empty lanes
};

// Snaps rows r..r+3 (xlo/xhi pointers at row r) to per-lane span masks.
inline Quad SnapQuad(const double* xlo, const double* xhi, int vw) {
  const __m256d lo = _mm256_loadu_pd(xlo);
  const __m256d hi = _mm256_loadu_pd(xhi);
  const __m256d nonempty = _mm256_cmp_pd(lo, hi, _CMP_NGT_UQ);
  const __m256d absmask =
      _mm256_castsi256_pd(_mm256_set1_epi64x(0x7fffffffffffffffLL));
  const __m256d tol = _mm256_add_pd(
      _mm256_mul_pd(_mm256_set1_pd(1e-12),
                    _mm256_add_pd(_mm256_and_pd(lo, absmask),
                                  _mm256_and_pd(hi, absmask))),
      _mm256_set1_pd(1e-300));
  const __m256d a = _mm256_sub_pd(_mm256_ceil_pd(_mm256_sub_pd(lo, tol)),
                                  _mm256_set1_pd(1.0));
  const __m256d b = _mm256_floor_pd(_mm256_add_pd(hi, tol));
  const __m256d zero = _mm256_setzero_pd();
  const __m256d top = _mm256_set1_pd(static_cast<double>(vw - 1));
  const __m256d ac = _mm256_min_pd(_mm256_max_pd(a, zero), top);
  const __m256d bc = _mm256_min_pd(_mm256_max_pd(b, zero), top);
  const __m256i c0 = _mm256_cvtepi32_epi64(_mm256_cvttpd_epi32(ac));
  const __m256i c1 = _mm256_cvtepi32_epi64(_mm256_cvttpd_epi32(bc));
  const __m256i ones = _mm256_set1_epi64x(-1);
  const __m256i diff = _mm256_sub_epi64(c1, c0);
  const __m256i span = _mm256_sllv_epi64(
      _mm256_srlv_epi64(ones, _mm256_sub_epi64(_mm256_set1_epi64x(63), diff)),
      c0);
  Quad q;
  q.valid = _mm256_castpd_si256(nonempty);
  q.span = _mm256_and_si256(span, q.valid);
  return q;
}

inline int ValidMask(const Quad& q) {
  return _mm256_movemask_pd(_mm256_castsi256_pd(q.valid));
}

// Lanes whose value is nonzero, as a 4-bit mask.
inline int NonzeroMask(__m256i v) {
  const __m256i iszero = _mm256_cmpeq_epi64(v, _mm256_setzero_si256());
  return (~_mm256_movemask_pd(_mm256_castsi256_pd(iszero))) & 0xf;
}

inline uint64_t OrReduce(__m256i v) {
  const __m128i halves = _mm_or_si128(_mm256_castsi256_si128(v),
                                      _mm256_extracti128_si256(v, 1));
  return static_cast<uint64_t>(_mm_cvtsi128_si64(halves)) |
         static_cast<uint64_t>(_mm_extract_epi64(halves, 1));
}

// Bit positions of rows r..r+3 in the packed word: r*vw plus the hoisted
// per-lane offsets {0, vw, 2vw, 3vw}.
inline __m256i LaneOffsets(int vw) {
  return _mm256_setr_epi64x(0, vw, 2 * static_cast<int64_t>(vw),
                            3 * static_cast<int64_t>(vw));
}

inline __m256i RowShifts(int r, int vw, __m256i lane_off) {
  return _mm256_add_epi64(_mm256_set1_epi64x(static_cast<int64_t>(r) * vw),
                          lane_off);
}

FillResult FillPackedAvx2(const RowSpanBuffer& spans, int vw,
                          uint64_t* word) {
  FillResult out;
  const uint64_t initial = *word;
  uint64_t acc = 0;
  int r = spans.row_min;
  if (r + 3 <= spans.row_max) {
    const __m256i lane_off = LaneOffsets(vw);
    __m256i vacc = _mm256_setzero_si256();
    for (; r + 3 <= spans.row_max; r += 4) {
      const Quad q = SnapQuad(&spans.xlo[r], &spans.xhi[r], vw);
      out.spans += __builtin_popcount(static_cast<unsigned>(ValidMask(q)));
      // Distinct rows occupy disjoint bit ranges of the packed word, so
      // the OR accumulator (reduced once after the loop) sets exactly the
      // union the scalar loop sets.
      vacc = _mm256_or_si256(
          vacc, _mm256_sllv_epi64(q.span, RowShifts(r, vw, lane_off)));
    }
    acc = OrReduce(vacc);
  }
  for (; r <= spans.row_max; ++r) {
    int c0, c1;
    if (!SnapSpanToCols(spans.xlo[r], spans.xhi[r], vw, &c0, &c1)) continue;
    ++out.spans;
    acc |= RowMask(c0, c1) << (r * vw);
  }
  *word = initial | acc;
  out.newly_set = __builtin_popcountll(acc & ~initial);
  return out;
}

ProbeResult ProbePackedAvx2(const RowSpanBuffer& spans, int vw,
                            const uint64_t* word) {
  ProbeResult out;
  const __m256i grid = _mm256_set1_epi64x(static_cast<int64_t>(*word));
  const __m256i lane_off = LaneOffsets(vw);
  int r = spans.row_min;
  for (; r + 3 <= spans.row_max; r += 4) {
    const Quad q = SnapQuad(&spans.xlo[r], &spans.xhi[r], vw);
    const int m = ValidMask(q);
    const __m256i overlap = _mm256_and_si256(
        _mm256_srlv_epi64(grid, RowShifts(r, vw, lane_off)), q.span);
    const int h = NonzeroMask(overlap) & m;
    if (h != 0) {
      // First hitting lane; spans counts the non-empty lanes up to and
      // including it — the scalar loop's early-stop point exactly.
      const int k = __builtin_ctz(static_cast<unsigned>(h));
      out.spans += __builtin_popcount(
          static_cast<unsigned>(m) & ((2u << k) - 1));
      out.hit_row = r + k;
      return out;
    }
    out.spans += __builtin_popcount(static_cast<unsigned>(m));
  }
  for (; r <= spans.row_max; ++r) {
    int c0, c1;
    if (!SnapSpanToCols(spans.xlo[r], spans.xhi[r], vw, &c0, &c1)) continue;
    ++out.spans;
    if (((*word >> (r * vw)) & RowMask(c0, c1)) != 0) {
      out.hit_row = r;
      return out;
    }
  }
  return out;
}

FillResult FillRowsAvx2(const RowSpanBuffer& spans, int vw, int stride_words,
                        uint64_t* words) {
  FillResult out;
  int r = spans.row_min;
  if (stride_words == 1) {
    // Word-per-row tiles: four rows are four consecutive words — one
    // unaligned load/OR/store per quad.
    for (; r + 3 <= spans.row_max; r += 4) {
      const Quad q = SnapQuad(&spans.xlo[r], &spans.xhi[r], vw);
      out.spans += __builtin_popcount(static_cast<unsigned>(ValidMask(q)));
      __m256i* p = reinterpret_cast<__m256i*>(words + r);
      const __m256i old = _mm256_loadu_si256(p);
      _mm256_storeu_si256(p, _mm256_or_si256(old, q.span));
      alignas(32) uint64_t fresh[4];
      _mm256_store_si256(reinterpret_cast<__m256i*>(fresh),
                         _mm256_andnot_si256(old, q.span));
      out.newly_set += __builtin_popcountll(fresh[0]) +
                       __builtin_popcountll(fresh[1]) +
                       __builtin_popcountll(fresh[2]) +
                       __builtin_popcountll(fresh[3]);
    }
  }
  // Tail rows of the stride-1 layout, and the whole multi-word-row layout
  // (wide PixelMask): the shared scalar word walk. Snapping dominates the
  // narrow-tile cost, not the word walk, and the wide layout is the cold
  // 1024-px paranoid-render path.
  for (; r <= spans.row_max; ++r) {
    int c0, c1;
    if (!SnapSpanToCols(spans.xlo[r], spans.xhi[r], vw, &c0, &c1)) continue;
    ++out.spans;
    out.newly_set += FillRowWords(words + static_cast<size_t>(r) * stride_words,
                                  c0, c1);
  }
  return out;
}

ProbeResult ProbeRowsAvx2(const RowSpanBuffer& spans, int vw,
                          int stride_words, const uint64_t* words) {
  ProbeResult out;
  int r = spans.row_min;
  if (stride_words == 1) {
    for (; r + 3 <= spans.row_max; r += 4) {
      const Quad q = SnapQuad(&spans.xlo[r], &spans.xhi[r], vw);
      const int m = ValidMask(q);
      const __m256i old =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(words + r));
      const int h = NonzeroMask(_mm256_and_si256(old, q.span)) & m;
      if (h != 0) {
        const int k = __builtin_ctz(static_cast<unsigned>(h));
        out.spans += __builtin_popcount(
            static_cast<unsigned>(m) & ((2u << k) - 1));
        out.hit_row = r + k;
        return out;
      }
      out.spans += __builtin_popcount(static_cast<unsigned>(m));
    }
  }
  for (; r <= spans.row_max; ++r) {
    int c0, c1;
    if (!SnapSpanToCols(spans.xlo[r], spans.xhi[r], vw, &c0, &c1)) continue;
    ++out.spans;
    if (ProbeRowWords(words + static_cast<size_t>(r) * stride_words, c0, c1)) {
      out.hit_row = r;
      return out;
    }
  }
  return out;
}

const RowSpanKernels kAvx2RowSpanKernels = {
    FillPackedAvx2,
    ProbePackedAvx2,
    FillRowsAvx2,
    ProbeRowsAvx2,
};

}  // namespace

const RowSpanKernels* GetAvx2RowSpanKernels() { return &kAvx2RowSpanKernels; }

}  // namespace hasj::glsim::rowspan_internal

#else  // !__AVX2__

namespace hasj::glsim::rowspan_internal {

// Built without -mavx2 (non-x86 host or a baseline HASJ_ARCH_FLAGS): no
// AVX2 backend; RowSpanEngine falls back to scalar and Available(kAvx2)
// reports false.
const RowSpanKernels* GetAvx2RowSpanKernels() { return nullptr; }

}  // namespace hasj::glsim::rowspan_internal

#endif  // __AVX2__
