#ifndef HASJ_INDEX_DYNAMIC_RTREE_H_
#define HASJ_INDEX_DYNAMIC_RTREE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "geom/box.h"

namespace hasj::index {

// Mutable R-tree with snapshot-isolated concurrent readers (DESIGN.md §16).
//
// Writers (Insert/Delete/BulkLoad) serialize on a writer mutex and build a
// new version by copy-on-write path cloning: only the nodes on the
// root-to-leaf descent path are copied, every untouched subtree is shared
// with the previous version by pointer. The finished version is published
// by swapping an immutable version-state pointer under a second, briefly
// held state mutex — the only lock readers ever take, so readers never
// block on an in-progress build and never observe torn state.
//
// Reclamation is epoch-based: snapshot() pins the current version; retired
// versions park on a limbo list until no pin at or below their version
// remains, at which point the writer (or the last unpinning reader) frees
// them outside the lock. shared_ptr sharing already makes this memory-safe;
// the pin/limbo protocol makes it deterministic — retired roots die at a
// publish/unpin boundary, never lazily on a reader's query path.
//
// Snapshots must not outlive the tree. The version counter doubles as the
// dataset epoch for downstream epoch-keyed caches (SignatureCache,
// IntervalApproxCache).
class DynamicRTree {
 public:
  struct Entry {
    geom::Box box;
    int64_t id = 0;
  };

  // Immutable once published. Children of a published node are themselves
  // published (const), so any subtree reachable from a snapshot is frozen.
  struct Node {
    bool leaf = true;
    geom::Box box;
    // Leaf: boxes[i]/ids[i] are entries. Internal: boxes[i] mirrors
    // children[i]->box (cached to keep descent scans contiguous).
    std::vector<geom::Box> boxes;
    std::vector<int64_t> ids;
    std::vector<std::shared_ptr<const Node>> children;

    size_t Count() const { return leaf ? ids.size() : children.size(); }
  };

  struct VersionState;

  // A pinned, immutable view of one published version. Copyable (copies
  // share the pin); the version unpins when the last copy is destroyed.
  // Default-constructed snapshots are empty and pin nothing.
  class Snapshot {
   public:
    Snapshot() = default;

    size_t size() const;
    uint64_t version() const;
    geom::Box Bounds() const;

    // Ids of entries whose box intersects `query` (closed-region
    // semantics, as RTree::QueryIntersects).
    std::vector<int64_t> QueryIntersects(const geom::Box& query) const;
    // Ids of entries with MinDistance(entry box, query) <= distance.
    std::vector<int64_t> QueryWithinDistance(const geom::Box& query,
                                             double distance) const;
    // Entries in tree order, pruned by the monotone `node_pred`.
    void Visit(const std::function<bool(const geom::Box&)>& node_pred,
               const std::function<void(const geom::Box&, int64_t)>& emit)
        const;

    // Structural invariants of this version (mirrors RTree::CheckInvariants
    // plus an entry-count check): uniform leaf depth, tight and contained
    // boxes, no overfull nodes, no empty non-root node. Underfull nodes are
    // legal — deletes do not rebalance (see DESIGN.md §16).
    [[nodiscard]] Status CheckInvariants() const;

    // Root for structure-walking joins; nullptr when empty.
    const Node* root() const;

   private:
    friend class DynamicRTree;
    struct Pin;
    std::shared_ptr<const Pin> pin_;
  };

  explicit DynamicRTree(int max_entries = 16);
  ~DynamicRTree();

  DynamicRTree(const DynamicRTree&) = delete;
  DynamicRTree& operator=(const DynamicRTree&) = delete;

  // Bulk STR load into an empty tree (kFailedPrecondition-free: returns
  // InvalidArgument if the tree already holds entries). Publishes one
  // version.
  [[nodiscard]] Status BulkLoad(std::vector<Entry> entries);

  // Inserts one entry and publishes a new version. `box` must be
  // non-empty and finite. Duplicate (box, id) pairs are legal (the tree is
  // a multiset); Delete removes one occurrence.
  [[nodiscard]] Status Insert(const geom::Box& box, int64_t id);

  // Removes one entry matching (box, id) exactly and publishes a new
  // version; kNotFound when absent. Emptied nodes are dropped and a
  // single-child internal root collapses, but no re-distribution happens —
  // underfull nodes are tolerated exactly as STR bulk load's are.
  [[nodiscard]] Status Delete(const geom::Box& box, int64_t id);

  // Pins and returns the current version. O(1); never blocks on writers.
  Snapshot snapshot() const HASJ_EXCLUDES(state_mu_);

  size_t size() const HASJ_EXCLUDES(state_mu_);
  // Published version counter; bumps once per successful mutation. Doubles
  // as the epoch for epoch-keyed caches.
  uint64_t version() const HASJ_EXCLUDES(state_mu_);
  int max_entries() const { return max_entries_; }

  // Reclamation telemetry for tests: versions retired to limbo / freed.
  int64_t retired_versions() const HASJ_EXCLUDES(state_mu_);
  int64_t reclaimed_versions() const HASJ_EXCLUDES(state_mu_);
  // Versions currently parked in limbo (pinned by some snapshot).
  int64_t limbo_versions() const HASJ_EXCLUDES(state_mu_);

 private:
  void Publish(std::shared_ptr<const VersionState> next)
      HASJ_REQUIRES(writer_mu_) HASJ_EXCLUDES(state_mu_);
  void Unpin(uint64_t version) const HASJ_EXCLUDES(state_mu_);
  // Moves every limbo version below the lowest pin into *reclaim (caller
  // destroys outside the lock).
  void CollectLocked(
      std::vector<std::shared_ptr<const VersionState>>* reclaim) const
      HASJ_REQUIRES(state_mu_);

  const int max_entries_;
  const int min_entries_;

  // Serializes writers across their whole copy-on-write build; never held
  // by readers. Acquired before state_mu_ (Publish).
  mutable Mutex writer_mu_;
  // Guards only the publish/pin/unpin bookkeeping below; held for O(1)
  // (plus a limbo sweep) so readers never wait behind a build.
  mutable Mutex state_mu_;
  std::shared_ptr<const VersionState> current_ HASJ_GUARDED_BY(state_mu_);
  // Pin count per still-referenced version.
  mutable std::map<uint64_t, int64_t> pins_ HASJ_GUARDED_BY(state_mu_);
  // Retired versions awaiting the release of older pins.
  mutable std::vector<std::shared_ptr<const VersionState>> limbo_
      HASJ_GUARDED_BY(state_mu_);
  mutable int64_t retired_total_ HASJ_GUARDED_BY(state_mu_) = 0;
  mutable int64_t reclaimed_total_ HASJ_GUARDED_BY(state_mu_) = 0;
};

// Snapshot-pair joins, mirroring the static-tree JoinIntersects /
// JoinWithinDistance over pinned versions. Either side may come from a
// different tree (or the same tree at different versions).
std::vector<std::pair<int64_t, int64_t>> JoinIntersects(
    const DynamicRTree::Snapshot& a, const DynamicRTree::Snapshot& b);
std::vector<std::pair<int64_t, int64_t>> JoinWithinDistance(
    const DynamicRTree::Snapshot& a, const DynamicRTree::Snapshot& b,
    double distance);

}  // namespace hasj::index

#endif  // HASJ_INDEX_DYNAMIC_RTREE_H_
