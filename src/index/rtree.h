#ifndef HASJ_INDEX_RTREE_H_
#define HASJ_INDEX_RTREE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/status.h"
#include "geom/box.h"

namespace hasj::index {

// Node split algorithm used on insertion overflow.
enum class SplitPolicy {
  kQuadratic,  // Guttman's quadratic split (the 2003-era default)
  kRStar,      // R*-tree split: margin-sum axis choice, min-overlap cut
};

// R-tree over (MBR, id) entries: Guttman insertion with a choice of split
// policy, plus Sort-Tile-Recursive bulk loading. This is the MBR-filtering
// substrate of the paper's query pipeline (Figure 8); ids refer into a
// dataset.
//
// Move-only (owns its node tree).
class RTree {
 public:
  struct Entry {
    geom::Box box;
    int64_t id = 0;
  };

  // max_entries: node fanout M; min fill is max(2, M * 2/5) per Guttman's
  // recommendation.
  explicit RTree(int max_entries = 16,
                 SplitPolicy split = SplitPolicy::kQuadratic);
  RTree(RTree&&) noexcept;             // defined out of line: Node is
  RTree& operator=(RTree&&) noexcept;  // incomplete at this point
  RTree(const RTree&) = delete;
  RTree& operator=(const RTree&) = delete;
  ~RTree();

  // Builds a packed tree bottom-up with Sort-Tile-Recursive; much better
  // quality and build time than repeated insertion for static datasets.
  [[nodiscard]] static RTree BulkLoad(std::vector<Entry> entries, int max_entries = 16);

  void Insert(const geom::Box& box, int64_t id);

  size_t size() const { return size_; }
  int height() const;  // 1 for a single leaf; 0 only for the empty tree

  // Ids of entries whose box intersects the window (closed boxes).
  std::vector<int64_t> QueryIntersects(const geom::Box& window) const;

  // Number of tree nodes a window query touches — the I/O proxy used to
  // compare split policies (bench/ablation_rtree).
  int64_t NodesTouched(const geom::Box& window) const;

  // Ids of entries whose box is within distance d of the query box.
  std::vector<int64_t> QueryWithinDistance(const geom::Box& query,
                                           double d) const;

  // Visits ids of entries whose box satisfies the (conservative) node
  // predicate; `node_pred` must be monotone: true for an entry box implies
  // true for every ancestor box.
  void Visit(const std::function<bool(const geom::Box&)>& node_pred,
             const std::function<void(const geom::Box&, int64_t)>& emit) const;

  // Structural invariants: child boxes contained in parent boxes, fill
  // bounds respected (root excepted), uniform leaf depth.
  [[nodiscard]] Status CheckInvariants() const;

  struct Node;  // exposed for the join's synchronized traversal
  const Node* root() const { return root_.get(); }

 private:
  friend struct RTreeJoinAccess;

  std::unique_ptr<Node> root_;
  int max_entries_;
  int min_entries_;
  SplitPolicy split_ = SplitPolicy::kQuadratic;
  size_t size_ = 0;
};

// All candidate pairs (id_a, id_b) with intersecting MBRs, via synchronized
// tree traversal. The MBR-filtering step of the intersection join.
std::vector<std::pair<int64_t, int64_t>> JoinIntersects(const RTree& a,
                                                        const RTree& b);

// All candidate pairs whose MBRs are within distance d (the MBR distance is
// a lower bound of the object distance). The MBR-filtering step of the
// within-distance join.
std::vector<std::pair<int64_t, int64_t>> JoinWithinDistance(const RTree& a,
                                                            const RTree& b,
                                                            double d);

// Early-exit synchronized traversal: invokes `probe` on entry pairs with
// intersecting boxes until it returns true. Returns whether any probe
// returned true. Used for detection problems (e.g. boundary intersection
// via per-polygon edge trees) where materializing all pairs would waste
// the common early hit.
bool JoinDetect(const RTree& a, const RTree& b,
                const std::function<bool(int64_t, int64_t)>& probe);

}  // namespace hasj::index

#endif  // HASJ_INDEX_RTREE_H_
