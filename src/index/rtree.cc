#include "index/rtree.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/macros.h"

namespace hasj::index {

struct RTree::Node {
  bool leaf = true;
  geom::Box box;                                  // union of children
  std::vector<geom::Box> boxes;                   // per-child boxes
  std::vector<int64_t> ids;                       // leaf entries
  std::vector<std::unique_ptr<Node>> children;    // internal children

  size_t Count() const { return leaf ? ids.size() : children.size(); }

  void Recompute() {
    box = geom::Box::Empty();
    for (const geom::Box& b : boxes) box.Extend(b);
  }
};

namespace {

using Node = RTree::Node;

double EnlargementNeeded(const geom::Box& node, const geom::Box& add) {
  geom::Box merged = node;
  merged.Extend(add);
  return merged.Area() - node.Area();
}

// Guttman's quadratic PickSeeds: the pair wasting the most area together.
std::pair<size_t, size_t> PickSeeds(const std::vector<geom::Box>& boxes) {
  size_t s0 = 0, s1 = 1;
  double worst = -std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < boxes.size(); ++i) {
    for (size_t j = i + 1; j < boxes.size(); ++j) {
      geom::Box merged = boxes[i];
      merged.Extend(boxes[j]);
      const double waste = merged.Area() - boxes[i].Area() - boxes[j].Area();
      if (waste > worst) {
        worst = waste;
        s0 = i;
        s1 = j;
      }
    }
  }
  return {s0, s1};
}

}  // namespace

RTree::RTree(int max_entries, SplitPolicy split)
    : root_(std::make_unique<Node>()),
      max_entries_(max_entries),
      min_entries_(std::max(2, max_entries * 2 / 5)),
      split_(split) {
  HASJ_CHECK(max_entries >= 4);
}

RTree::~RTree() = default;
RTree::RTree(RTree&&) noexcept = default;
RTree& RTree::operator=(RTree&&) noexcept = default;

int RTree::height() const {
  if (size_ == 0) return 0;
  int h = 1;
  const Node* n = root_.get();
  while (!n->leaf) {
    n = n->children[0].get();
    ++h;
  }
  return h;
}

namespace {

// Splits the children of `node` (boxes plus either ids or child nodes) into
// two groups with Guttman's quadratic algorithm. Returns the new sibling;
// `node` keeps group 1.
std::unique_ptr<Node> QuadraticSplit(Node* node, int min_entries) {
  const size_t n = node->boxes.size();
  auto [seed0, seed1] = PickSeeds(node->boxes);

  std::vector<geom::Box> boxes = std::move(node->boxes);
  std::vector<int64_t> ids = std::move(node->ids);
  std::vector<std::unique_ptr<Node>> children = std::move(node->children);
  node->boxes.clear();
  node->ids.clear();
  node->children.clear();

  auto sibling = std::make_unique<Node>();
  sibling->leaf = node->leaf;

  std::vector<bool> assigned(n, false);
  auto put = [&](Node* dst, size_t i) {
    dst->boxes.push_back(boxes[i]);
    if (dst->leaf) {
      dst->ids.push_back(ids[i]);
    } else {
      dst->children.push_back(std::move(children[i]));
    }
    assigned[i] = true;
  };
  put(node, seed0);
  put(sibling.get(), seed1);
  geom::Box cover0 = boxes[seed0];
  geom::Box cover1 = boxes[seed1];

  size_t remaining = n - 2;
  while (remaining > 0) {
    // If one group must take everything left to reach the minimum fill,
    // assign the rest to it.
    Node* forced = nullptr;
    if (node->Count() + remaining == static_cast<size_t>(min_entries)) {
      forced = node;
    } else if (sibling->Count() + remaining ==
               static_cast<size_t>(min_entries)) {
      forced = sibling.get();
    }
    if (forced != nullptr) {
      for (size_t i = 0; i < n; ++i) {
        if (!assigned[i]) {
          put(forced, i);
          (forced == node ? cover0 : cover1).Extend(boxes[i]);
        }
      }
      remaining = 0;
      break;
    }

    // PickNext: the entry with the largest preference for one group.
    size_t best = 0;
    double best_diff = -1.0;
    for (size_t i = 0; i < n; ++i) {
      if (assigned[i]) continue;
      const double d0 = EnlargementNeeded(cover0, boxes[i]);
      const double d1 = EnlargementNeeded(cover1, boxes[i]);
      const double diff = std::fabs(d0 - d1);
      if (diff > best_diff) {
        best_diff = diff;
        best = i;
      }
    }
    const double d0 = EnlargementNeeded(cover0, boxes[best]);
    const double d1 = EnlargementNeeded(cover1, boxes[best]);
    Node* dst;
    if (d0 < d1) {
      dst = node;
    } else if (d1 < d0) {
      dst = sibling.get();
    } else {
      dst = cover0.Area() <= cover1.Area() ? node : sibling.get();
    }
    put(dst, best);
    (dst == node ? cover0 : cover1).Extend(boxes[best]);
    --remaining;
  }

  node->Recompute();
  sibling->Recompute();
  return sibling;
}

// R*-tree split (Beckmann et al.): pick the axis with the smallest sum of
// group margins over all valid sorted distributions, then the distribution
// with the least overlap between the two group boxes (ties: least total
// area). No forced reinsertion — this is the split alone, which already
// captures most of the query-quality difference against the quadratic
// split (see bench/ablation_rtree).
std::unique_ptr<Node> RStarSplit(Node* node, int min_entries) {
  const int n = static_cast<int>(node->boxes.size());
  std::vector<int> order(static_cast<size_t>(n));

  double best_axis_margin = std::numeric_limits<double>::infinity();
  std::vector<int> best_order;
  int best_axis = 0;
  for (int axis = 0; axis < 2; ++axis) {
    for (int i = 0; i < n; ++i) order[static_cast<size_t>(i)] = i;
    std::sort(order.begin(), order.end(), [&](int a, int b) {
      const geom::Box& ba = node->boxes[static_cast<size_t>(a)];
      const geom::Box& bb = node->boxes[static_cast<size_t>(b)];
      const double la = axis == 0 ? ba.min_x : ba.min_y;
      const double lb = axis == 0 ? bb.min_x : bb.min_y;
      if (la != lb) return la < lb;
      const double ua = axis == 0 ? ba.max_x : ba.max_y;
      const double ub = axis == 0 ? bb.max_x : bb.max_y;
      return ua < ub;
    });
    // Prefix/suffix covers for O(1) group boxes per distribution.
    std::vector<geom::Box> prefix(static_cast<size_t>(n)),
        suffix(static_cast<size_t>(n));
    geom::Box cover = geom::Box::Empty();
    for (int i = 0; i < n; ++i) {
      cover.Extend(node->boxes[static_cast<size_t>(order[static_cast<size_t>(i)])]);
      prefix[static_cast<size_t>(i)] = cover;
    }
    cover = geom::Box::Empty();
    for (int i = n - 1; i >= 0; --i) {
      cover.Extend(node->boxes[static_cast<size_t>(order[static_cast<size_t>(i)])]);
      suffix[static_cast<size_t>(i)] = cover;
    }
    double margin_sum = 0.0;
    for (int k = min_entries; k <= n - min_entries; ++k) {
      margin_sum += prefix[static_cast<size_t>(k - 1)].Perimeter() +
                    suffix[static_cast<size_t>(k)].Perimeter();
    }
    if (margin_sum < best_axis_margin) {
      best_axis_margin = margin_sum;
      best_order = order;
      best_axis = axis;
    }
  }
  (void)best_axis;

  // Pick the distribution on the chosen axis.
  std::vector<geom::Box> prefix(static_cast<size_t>(n)),
      suffix(static_cast<size_t>(n));
  geom::Box cover = geom::Box::Empty();
  for (int i = 0; i < n; ++i) {
    cover.Extend(
        node->boxes[static_cast<size_t>(best_order[static_cast<size_t>(i)])]);
    prefix[static_cast<size_t>(i)] = cover;
  }
  cover = geom::Box::Empty();
  for (int i = n - 1; i >= 0; --i) {
    cover.Extend(
        node->boxes[static_cast<size_t>(best_order[static_cast<size_t>(i)])]);
    suffix[static_cast<size_t>(i)] = cover;
  }
  int best_k = min_entries;
  double best_overlap = std::numeric_limits<double>::infinity();
  double best_area = std::numeric_limits<double>::infinity();
  for (int k = min_entries; k <= n - min_entries; ++k) {
    const geom::Box& g1 = prefix[static_cast<size_t>(k - 1)];
    const geom::Box& g2 = suffix[static_cast<size_t>(k)];
    const double overlap = g1.Intersection(g2).Area();
    const double area = g1.Area() + g2.Area();
    if (overlap < best_overlap ||
        (overlap == best_overlap && area < best_area)) {
      best_overlap = overlap;
      best_area = area;
      best_k = k;
    }
  }

  // Materialize the two groups: node keeps the first best_k in sort order.
  std::vector<geom::Box> boxes = std::move(node->boxes);
  std::vector<int64_t> ids = std::move(node->ids);
  std::vector<std::unique_ptr<Node>> children = std::move(node->children);
  node->boxes.clear();
  node->ids.clear();
  node->children.clear();
  auto sibling = std::make_unique<Node>();
  sibling->leaf = node->leaf;
  for (int i = 0; i < n; ++i) {
    const size_t src = static_cast<size_t>(best_order[static_cast<size_t>(i)]);
    Node* dst = i < best_k ? node : sibling.get();
    dst->boxes.push_back(boxes[src]);
    if (dst->leaf) {
      dst->ids.push_back(ids[src]);
    } else {
      dst->children.push_back(std::move(children[src]));
    }
  }
  node->Recompute();
  sibling->Recompute();
  return sibling;
}

std::unique_ptr<Node> Split(Node* node, int min_entries, SplitPolicy policy) {
  return policy == SplitPolicy::kRStar ? RStarSplit(node, min_entries)
                                       : QuadraticSplit(node, min_entries);
}

// Recursive insert; returns the new sibling if the child split.
std::unique_ptr<Node> InsertRec(Node* node, const geom::Box& box, int64_t id,
                                int max_entries, int min_entries,
                                SplitPolicy policy) {
  if (node->leaf) {
    node->boxes.push_back(box);
    node->ids.push_back(id);
    node->box.Extend(box);
    if (node->Count() > static_cast<size_t>(max_entries)) {
      return Split(node, min_entries, policy);
    }
    return nullptr;
  }

  // ChooseLeaf: child needing least enlargement, ties by smallest area.
  size_t best = 0;
  double best_enl = std::numeric_limits<double>::infinity();
  double best_area = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < node->boxes.size(); ++i) {
    const double enl = EnlargementNeeded(node->boxes[i], box);
    const double area = node->boxes[i].Area();
    if (enl < best_enl || (enl == best_enl && area < best_area)) {
      best_enl = enl;
      best_area = area;
      best = i;
    }
  }

  std::unique_ptr<Node> split = InsertRec(node->children[best].get(), box, id,
                                          max_entries, min_entries, policy);
  node->boxes[best] = node->children[best]->box;
  node->box.Extend(box);
  if (split != nullptr) {
    node->boxes.push_back(split->box);
    node->children.push_back(std::move(split));
    if (node->Count() > static_cast<size_t>(max_entries)) {
      return Split(node, min_entries, policy);
    }
  }
  return nullptr;
}

}  // namespace

void RTree::Insert(const geom::Box& box, int64_t id) {
  std::unique_ptr<Node> split =
      InsertRec(root_.get(), box, id, max_entries_, min_entries_, split_);
  if (split != nullptr) {
    auto new_root = std::make_unique<Node>();
    new_root->leaf = false;
    new_root->boxes.push_back(root_->box);
    new_root->boxes.push_back(split->box);
    new_root->children.push_back(std::move(root_));
    new_root->children.push_back(std::move(split));
    new_root->Recompute();
    root_ = std::move(new_root);
  }
  ++size_;
}

RTree RTree::BulkLoad(std::vector<Entry> entries, int max_entries) {
  RTree tree(max_entries);
  tree.size_ = entries.size();
  if (entries.empty()) return tree;

  // Sort-Tile-Recursive: sort by center x, cut into vertical slices of
  // ~sqrt(n/M) * M entries, sort each slice by center y, pack runs of M.
  const auto center_x_less = [](const Entry& a, const Entry& b) {
    return a.box.Center().x < b.box.Center().x;
  };
  const auto center_y_less = [](const Entry& a, const Entry& b) {
    return a.box.Center().y < b.box.Center().y;
  };

  std::sort(entries.begin(), entries.end(), center_x_less);
  const size_t n = entries.size();
  const size_t m = static_cast<size_t>(max_entries);
  const size_t num_leaves = (n + m - 1) / m;
  const size_t num_slices =
      static_cast<size_t>(std::ceil(std::sqrt(static_cast<double>(num_leaves))));
  const size_t slice_size = ((num_leaves + num_slices - 1) / num_slices) * m;

  std::vector<std::unique_ptr<Node>> level;
  for (size_t s = 0; s < n; s += slice_size) {
    const size_t end = std::min(n, s + slice_size);
    std::sort(entries.begin() + static_cast<ptrdiff_t>(s),
              entries.begin() + static_cast<ptrdiff_t>(end), center_y_less);
    for (size_t i = s; i < end; i += m) {
      auto leaf = std::make_unique<Node>();
      leaf->leaf = true;
      for (size_t j = i; j < std::min(end, i + m); ++j) {
        leaf->boxes.push_back(entries[j].box);
        leaf->ids.push_back(entries[j].id);
      }
      leaf->Recompute();
      level.push_back(std::move(leaf));
    }
  }

  // Pack upper levels the same way until a single root remains.
  while (level.size() > 1) {
    std::sort(level.begin(), level.end(),
              [](const std::unique_ptr<Node>& a, const std::unique_ptr<Node>& b) {
                return a->box.Center().x < b->box.Center().x;
              });
    const size_t nodes = level.size();
    const size_t num_parents = (nodes + m - 1) / m;
    const size_t slices =
        static_cast<size_t>(std::ceil(std::sqrt(static_cast<double>(num_parents))));
    const size_t sz = ((num_parents + slices - 1) / slices) * m;

    std::vector<std::unique_ptr<Node>> next;
    for (size_t s = 0; s < nodes; s += sz) {
      const size_t end = std::min(nodes, s + sz);
      std::sort(level.begin() + static_cast<ptrdiff_t>(s),
                level.begin() + static_cast<ptrdiff_t>(end),
                [](const std::unique_ptr<Node>& a, const std::unique_ptr<Node>& b) {
                  return a->box.Center().y < b->box.Center().y;
                });
      for (size_t i = s; i < end; i += m) {
        auto parent = std::make_unique<Node>();
        parent->leaf = false;
        for (size_t j = i; j < std::min(end, i + m); ++j) {
          parent->boxes.push_back(level[j]->box);
          parent->children.push_back(std::move(level[j]));
        }
        parent->Recompute();
        next.push_back(std::move(parent));
      }
    }
    level = std::move(next);
  }
  tree.root_ = std::move(level.front());
  return tree;
}

void RTree::Visit(
    const std::function<bool(const geom::Box&)>& node_pred,
    const std::function<void(const geom::Box&, int64_t)>& emit) const {
  if (size_ == 0) return;
  std::vector<const Node*> stack = {root_.get()};
  while (!stack.empty()) {
    const Node* node = stack.back();
    stack.pop_back();
    if (node->leaf) {
      for (size_t i = 0; i < node->boxes.size(); ++i) {
        if (node_pred(node->boxes[i])) emit(node->boxes[i], node->ids[i]);
      }
    } else {
      for (size_t i = 0; i < node->boxes.size(); ++i) {
        if (node_pred(node->boxes[i])) stack.push_back(node->children[i].get());
      }
    }
  }
}

int64_t RTree::NodesTouched(const geom::Box& window) const {
  if (size_ == 0) return 0;
  int64_t touched = 0;
  std::vector<const Node*> stack = {root_.get()};
  while (!stack.empty()) {
    const Node* node = stack.back();
    stack.pop_back();
    if (!node->box.Intersects(window)) continue;
    ++touched;
    if (!node->leaf) {
      for (const auto& child : node->children) stack.push_back(child.get());
    }
  }
  return touched;
}

std::vector<int64_t> RTree::QueryIntersects(const geom::Box& window) const {
  std::vector<int64_t> out;
  Visit([&](const geom::Box& b) { return b.Intersects(window); },
        [&](const geom::Box&, int64_t id) { out.push_back(id); });
  return out;
}

std::vector<int64_t> RTree::QueryWithinDistance(const geom::Box& query,
                                                double d) const {
  std::vector<int64_t> out;
  Visit([&](const geom::Box& b) { return geom::MinDistance(b, query) <= d; },
        [&](const geom::Box&, int64_t id) { out.push_back(id); });
  return out;
}

namespace {

Status CheckNode(const Node* node, bool is_root, int max_entries,
                 int min_entries, int depth, int leaf_depth) {
  if (node->leaf) {
    if (depth != leaf_depth) return Status::Internal("leaves at unequal depth");
    if (node->ids.size() != node->boxes.size()) {
      return Status::Internal("leaf id/box count mismatch");
    }
  } else {
    if (node->children.size() != node->boxes.size()) {
      return Status::Internal("internal child/box count mismatch");
    }
  }
  const size_t count = node->Count();
  // STR bulk loading legitimately leaves tail nodes below Guttman's minimum
  // fill, so only emptiness is an error for non-root nodes.
  (void)min_entries;
  if (!is_root && count == 0) {
    return Status::Internal("empty non-root node");
  }
  if (count > static_cast<size_t>(max_entries)) {
    return Status::Internal("node overfull");
  }
  geom::Box cover = geom::Box::Empty();
  for (const geom::Box& b : node->boxes) {
    if (!node->box.Contains(b)) return Status::Internal("child box escapes parent");
    cover.Extend(b);
  }
  if (count > 0 && !(cover == node->box)) {
    return Status::Internal("node box not tight");
  }
  if (!node->leaf) {
    for (size_t i = 0; i < node->children.size(); ++i) {
      if (!(node->children[i]->box == node->boxes[i])) {
        return Status::Internal("stale child box");
      }
      Status s = CheckNode(node->children[i].get(), false, max_entries,
                           min_entries, depth + 1, leaf_depth);
      if (!s.ok()) return s;
    }
  }
  return Status::Ok();
}

}  // namespace

Status RTree::CheckInvariants() const {
  if (size_ == 0) return Status::Ok();
  int leaf_depth = 0;
  const Node* n = root_.get();
  while (!n->leaf) {
    n = n->children[0].get();
    ++leaf_depth;
  }
  return CheckNode(root_.get(), true, max_entries_, min_entries_, 0, leaf_depth);
}

namespace {

// Synchronized traversal emitting entry pairs whose boxes satisfy `pred`
// (monotone under box enlargement).
template <typename Pred>
void JoinRec(const Node* a, const Node* b, const Pred& pred,
             std::vector<std::pair<int64_t, int64_t>>& out) {
  if (!pred(a->box, b->box)) return;
  if (a->leaf && b->leaf) {
    for (size_t i = 0; i < a->boxes.size(); ++i) {
      for (size_t j = 0; j < b->boxes.size(); ++j) {
        if (pred(a->boxes[i], b->boxes[j])) {
          out.emplace_back(a->ids[i], b->ids[j]);
        }
      }
    }
    return;
  }
  // Descend the non-leaf side(s); with both internal, descend pairwise.
  if (a->leaf) {
    for (const auto& child : b->children) JoinRec(a, child.get(), pred, out);
  } else if (b->leaf) {
    for (const auto& child : a->children) JoinRec(child.get(), b, pred, out);
  } else {
    for (const auto& ca : a->children) {
      for (const auto& cb : b->children) {
        JoinRec(ca.get(), cb.get(), pred, out);
      }
    }
  }
}

}  // namespace

std::vector<std::pair<int64_t, int64_t>> JoinIntersects(const RTree& a,
                                                        const RTree& b) {
  std::vector<std::pair<int64_t, int64_t>> out;
  if (a.size() == 0 || b.size() == 0) return out;
  JoinRec(a.root(), b.root(),
          [](const geom::Box& x, const geom::Box& y) { return x.Intersects(y); },
          out);
  return out;
}

namespace {

bool JoinDetectRec(const Node* a, const Node* b,
                   const std::function<bool(int64_t, int64_t)>& probe) {
  if (!a->box.Intersects(b->box)) return false;
  if (a->leaf && b->leaf) {
    for (size_t i = 0; i < a->boxes.size(); ++i) {
      for (size_t j = 0; j < b->boxes.size(); ++j) {
        if (a->boxes[i].Intersects(b->boxes[j]) &&
            probe(a->ids[i], b->ids[j])) {
          return true;
        }
      }
    }
    return false;
  }
  if (a->leaf) {
    for (const auto& child : b->children) {
      if (JoinDetectRec(a, child.get(), probe)) return true;
    }
    return false;
  }
  if (b->leaf) {
    for (const auto& child : a->children) {
      if (JoinDetectRec(child.get(), b, probe)) return true;
    }
    return false;
  }
  for (const auto& ca : a->children) {
    for (const auto& cb : b->children) {
      if (JoinDetectRec(ca.get(), cb.get(), probe)) return true;
    }
  }
  return false;
}

}  // namespace

bool JoinDetect(const RTree& a, const RTree& b,
                const std::function<bool(int64_t, int64_t)>& probe) {
  if (a.size() == 0 || b.size() == 0) return false;
  return JoinDetectRec(a.root(), b.root(), probe);
}

std::vector<std::pair<int64_t, int64_t>> JoinWithinDistance(const RTree& a,
                                                            const RTree& b,
                                                            double d) {
  std::vector<std::pair<int64_t, int64_t>> out;
  if (a.size() == 0 || b.size() == 0) return out;
  JoinRec(a.root(), b.root(),
          [d](const geom::Box& x, const geom::Box& y) {
            return geom::MinDistance(x, y) <= d;
          },
          out);
  return out;
}

}  // namespace hasj::index
