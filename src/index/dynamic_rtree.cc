#include "index/dynamic_rtree.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "common/macros.h"

namespace hasj::index {

// A published version: root plus the entry count and version stamp frozen
// at publish time. VersionStates are immutable after Publish.
struct DynamicRTree::VersionState {
  std::shared_ptr<const Node> root;  // nullptr when the version is empty
  size_t size = 0;
  uint64_t version = 0;
};

// Unpins its version on destruction. Shared by every copy of a Snapshot.
struct DynamicRTree::Snapshot::Pin {
  const DynamicRTree* tree = nullptr;
  std::shared_ptr<const VersionState> state;

  Pin(const DynamicRTree* t, std::shared_ptr<const VersionState> s)
      : tree(t), state(std::move(s)) {}
  Pin(const Pin&) = delete;
  Pin& operator=(const Pin&) = delete;
  ~Pin() { tree->Unpin(state->version); }
};

namespace {

using Node = DynamicRTree::Node;
using Entry = DynamicRTree::Entry;

geom::Box RecomputeBox(const Node& node) {
  geom::Box box = geom::Box::Empty();
  for (const geom::Box& b : node.boxes) box.Extend(b);
  return box;
}

double EnlargementNeeded(const geom::Box& node, const geom::Box& add) {
  geom::Box merged = node;
  merged.Extend(add);
  return merged.Area() - node.Area();
}

// Guttman's quadratic PickSeeds: the pair wasting the most area together.
std::pair<size_t, size_t> PickSeeds(const std::vector<geom::Box>& boxes) {
  size_t s0 = 0, s1 = 1;
  double worst = -std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < boxes.size(); ++i) {
    for (size_t j = i + 1; j < boxes.size(); ++j) {
      geom::Box merged = boxes[i];
      merged.Extend(boxes[j]);
      const double waste = merged.Area() - boxes[i].Area() - boxes[j].Area();
      if (waste > worst) {
        worst = waste;
        s0 = i;
        s1 = j;
      }
    }
  }
  return {s0, s1};
}

// Quadratic split over a freshly built (not yet published) node. `node`
// keeps group 1, the returned sibling takes group 2. Same algorithm as the
// static tree's QuadraticSplit; operates on shared_ptr children because
// untouched subtrees stay shared with older versions.
std::shared_ptr<Node> QuadraticSplit(Node* node, int min_entries) {
  const size_t n = node->boxes.size();
  auto [seed0, seed1] = PickSeeds(node->boxes);

  std::vector<geom::Box> boxes = std::move(node->boxes);
  std::vector<int64_t> ids = std::move(node->ids);
  std::vector<std::shared_ptr<const Node>> children =
      std::move(node->children);
  node->boxes.clear();
  node->ids.clear();
  node->children.clear();

  auto sibling = std::make_shared<Node>();
  sibling->leaf = node->leaf;

  std::vector<bool> assigned(n, false);
  auto put = [&](Node* dst, size_t i) {
    dst->boxes.push_back(boxes[i]);
    if (dst->leaf) {
      dst->ids.push_back(ids[i]);
    } else {
      dst->children.push_back(std::move(children[i]));
    }
    assigned[i] = true;
  };
  put(node, seed0);
  put(sibling.get(), seed1);
  geom::Box cover0 = boxes[seed0];
  geom::Box cover1 = boxes[seed1];

  size_t remaining = n - 2;
  while (remaining > 0) {
    // If one group must take everything left to reach the minimum fill,
    // assign the rest to it.
    Node* forced = nullptr;
    if (node->Count() + remaining == static_cast<size_t>(min_entries)) {
      forced = node;
    } else if (sibling->Count() + remaining ==
               static_cast<size_t>(min_entries)) {
      forced = sibling.get();
    }
    if (forced != nullptr) {
      for (size_t i = 0; i < n; ++i) {
        if (!assigned[i]) {
          put(forced, i);
          (forced == node ? cover0 : cover1).Extend(boxes[i]);
        }
      }
      remaining = 0;
      break;
    }

    // PickNext: the entry with the largest preference for one group.
    size_t best = 0;
    double best_diff = -1.0;
    for (size_t i = 0; i < n; ++i) {
      if (assigned[i]) continue;
      const double d0 = EnlargementNeeded(cover0, boxes[i]);
      const double d1 = EnlargementNeeded(cover1, boxes[i]);
      const double diff = std::fabs(d0 - d1);
      if (diff > best_diff) {
        best_diff = diff;
        best = i;
      }
    }
    const double d0 = EnlargementNeeded(cover0, boxes[best]);
    const double d1 = EnlargementNeeded(cover1, boxes[best]);
    Node* dst;
    if (d0 < d1) {
      dst = node;
    } else if (d1 < d0) {
      dst = sibling.get();
    } else {
      dst = cover0.Area() <= cover1.Area() ? node : sibling.get();
    }
    put(dst, best);
    (dst == node ? cover0 : cover1).Extend(boxes[best]);
    --remaining;
  }

  node->box = RecomputeBox(*node);
  sibling->box = RecomputeBox(*sibling);
  return sibling;
}

// Copy-on-write insert: returns a clone of `node` with (box, id) added.
// Only the descent path is cloned; all other subtrees are shared with the
// source version. On overflow the clone is split and *split receives the
// sibling.
std::shared_ptr<Node> InsertCow(const Node& node, const geom::Box& box,
                                int64_t id, int max_entries, int min_entries,
                                std::shared_ptr<Node>* split) {
  auto clone = std::make_shared<Node>(node);
  if (clone->leaf) {
    clone->boxes.push_back(box);
    clone->ids.push_back(id);
    clone->box.Extend(box);
    if (clone->Count() > static_cast<size_t>(max_entries)) {
      *split = QuadraticSplit(clone.get(), min_entries);
    }
    return clone;
  }

  // ChooseLeaf: child needing least enlargement, ties by smallest area.
  size_t best = 0;
  double best_enl = std::numeric_limits<double>::infinity();
  double best_area = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < clone->boxes.size(); ++i) {
    const double enl = EnlargementNeeded(clone->boxes[i], box);
    const double area = clone->boxes[i].Area();
    if (enl < best_enl || (enl == best_enl && area < best_area)) {
      best_enl = enl;
      best_area = area;
      best = i;
    }
  }

  std::shared_ptr<Node> child_split;
  clone->children[best] = InsertCow(*clone->children[best], box, id,
                                    max_entries, min_entries, &child_split);
  clone->boxes[best] = clone->children[best]->box;
  clone->box.Extend(box);
  if (child_split != nullptr) {
    clone->boxes.push_back(child_split->box);
    clone->children.push_back(std::move(child_split));
    if (clone->Count() > static_cast<size_t>(max_entries)) {
      *split = QuadraticSplit(clone.get(), min_entries);
    }
  }
  return clone;
}

// Copy-on-write delete of one exact (box, id) entry. Returns the cloned
// subtree with the entry removed, or nullptr when the subtree emptied out
// (the caller drops it). *found stays false when no entry matched, in
// which case nothing was cloned along this branch.
std::shared_ptr<const Node> DeleteCow(const Node& node, const geom::Box& box,
                                      int64_t id, bool* found) {
  if (node.leaf) {
    for (size_t i = 0; i < node.ids.size(); ++i) {
      if (node.ids[i] == id && node.boxes[i] == box) {
        *found = true;
        if (node.ids.size() == 1) return nullptr;
        auto clone = std::make_shared<Node>(node);
        clone->boxes.erase(clone->boxes.begin() +
                           static_cast<ptrdiff_t>(i));
        clone->ids.erase(clone->ids.begin() + static_cast<ptrdiff_t>(i));
        clone->box = RecomputeBox(*clone);
        return clone;
      }
    }
    return nullptr;
  }

  for (size_t i = 0; i < node.children.size(); ++i) {
    // Every entry box is contained in its ancestors' boxes (Insert extends
    // the whole descent path), so only containing children can hold it.
    if (!node.boxes[i].Contains(box)) continue;
    bool child_found = false;
    std::shared_ptr<const Node> child =
        DeleteCow(*node.children[i], box, id, &child_found);
    if (!child_found) continue;
    *found = true;
    if (child == nullptr && node.children.size() == 1) return nullptr;
    auto clone = std::make_shared<Node>(node);
    if (child == nullptr) {
      clone->boxes.erase(clone->boxes.begin() + static_cast<ptrdiff_t>(i));
      clone->children.erase(clone->children.begin() +
                            static_cast<ptrdiff_t>(i));
    } else {
      clone->boxes[i] = child->box;
      clone->children[i] = std::move(child);
    }
    clone->box = RecomputeBox(*clone);
    return clone;
  }
  return nullptr;
}

}  // namespace

DynamicRTree::DynamicRTree(int max_entries)
    : max_entries_(max_entries),
      min_entries_(std::max(2, max_entries * 2 / 5)) {
  HASJ_CHECK(max_entries >= 4);
  auto empty = std::make_shared<VersionState>();
  MutexLock lock(&state_mu_);
  current_ = std::move(empty);
}

DynamicRTree::~DynamicRTree() = default;

void DynamicRTree::Publish(std::shared_ptr<const VersionState> next) {
  std::vector<std::shared_ptr<const VersionState>> reclaim;
  {
    MutexLock lock(&state_mu_);
    limbo_.push_back(std::move(current_));
    ++retired_total_;
    current_ = std::move(next);
    CollectLocked(&reclaim);
  }
  // Node destruction (potentially a whole unshared subtree) happens here,
  // outside both locks.
}

void DynamicRTree::Unpin(uint64_t version) const {
  std::vector<std::shared_ptr<const VersionState>> reclaim;
  {
    MutexLock lock(&state_mu_);
    auto it = pins_.find(version);
    HASJ_CHECK(it != pins_.end());
    if (--it->second == 0) {
      pins_.erase(it);
      CollectLocked(&reclaim);
    }
  }
}

void DynamicRTree::CollectLocked(
    std::vector<std::shared_ptr<const VersionState>>* reclaim) const {
  const uint64_t min_pinned = pins_.empty()
                                  ? std::numeric_limits<uint64_t>::max()
                                  : pins_.begin()->first;
  size_t kept = 0;
  for (auto& state : limbo_) {
    if (state->version < min_pinned) {
      reclaim->push_back(std::move(state));
      ++reclaimed_total_;
    } else {
      limbo_[kept++] = std::move(state);
    }
  }
  limbo_.resize(kept);
}

Status DynamicRTree::BulkLoad(std::vector<Entry> entries) {
  MutexLock writer(&writer_mu_);
  {
    MutexLock lock(&state_mu_);
    if (current_->size != 0) {
      return Status::InvalidArgument("BulkLoad requires an empty tree");
    }
  }
  for (const Entry& entry : entries) {
    if (entry.box.IsEmpty()) {
      return Status::InvalidArgument("BulkLoad entry with empty box");
    }
  }

  auto next = std::make_shared<VersionState>();
  next->size = entries.size();
  {
    MutexLock lock(&state_mu_);
    next->version = current_->version + 1;
  }
  if (entries.empty()) {
    Publish(std::move(next));
    return Status::Ok();
  }

  // Sort-Tile-Recursive, as RTree::BulkLoad: sort by center x, cut into
  // ~sqrt(n/M) vertical slices, sort each by center y, pack runs of M.
  const auto center_x_less = [](const Entry& a, const Entry& b) {
    return a.box.Center().x < b.box.Center().x;
  };
  const auto center_y_less = [](const Entry& a, const Entry& b) {
    return a.box.Center().y < b.box.Center().y;
  };

  std::sort(entries.begin(), entries.end(), center_x_less);
  const size_t n = entries.size();
  const size_t m = static_cast<size_t>(max_entries_);
  const size_t num_leaves = (n + m - 1) / m;
  const size_t num_slices = static_cast<size_t>(
      std::ceil(std::sqrt(static_cast<double>(num_leaves))));
  const size_t slice_size = ((num_leaves + num_slices - 1) / num_slices) * m;

  std::vector<std::shared_ptr<Node>> level;
  for (size_t s = 0; s < n; s += slice_size) {
    const size_t end = std::min(n, s + slice_size);
    std::sort(entries.begin() + static_cast<ptrdiff_t>(s),
              entries.begin() + static_cast<ptrdiff_t>(end), center_y_less);
    for (size_t i = s; i < end; i += m) {
      auto leaf = std::make_shared<Node>();
      leaf->leaf = true;
      for (size_t j = i; j < std::min(end, i + m); ++j) {
        leaf->boxes.push_back(entries[j].box);
        leaf->ids.push_back(entries[j].id);
      }
      leaf->box = RecomputeBox(*leaf);
      level.push_back(std::move(leaf));
    }
  }

  while (level.size() > 1) {
    const auto node_center_x_less = [](const std::shared_ptr<Node>& a,
                                       const std::shared_ptr<Node>& b) {
      return a->box.Center().x < b->box.Center().x;
    };
    const auto node_center_y_less = [](const std::shared_ptr<Node>& a,
                                       const std::shared_ptr<Node>& b) {
      return a->box.Center().y < b->box.Center().y;
    };
    std::sort(level.begin(), level.end(), node_center_x_less);
    const size_t nodes = level.size();
    const size_t num_parents = (nodes + m - 1) / m;
    const size_t slices = static_cast<size_t>(
        std::ceil(std::sqrt(static_cast<double>(num_parents))));
    const size_t sz = ((num_parents + slices - 1) / slices) * m;

    std::vector<std::shared_ptr<Node>> next_level;
    for (size_t s = 0; s < nodes; s += sz) {
      const size_t end = std::min(nodes, s + sz);
      std::sort(level.begin() + static_cast<ptrdiff_t>(s),
                level.begin() + static_cast<ptrdiff_t>(end),
                node_center_y_less);
      for (size_t i = s; i < end; i += m) {
        auto parent = std::make_shared<Node>();
        parent->leaf = false;
        for (size_t j = i; j < std::min(end, i + m); ++j) {
          parent->boxes.push_back(level[j]->box);
          parent->children.push_back(std::move(level[j]));
        }
        parent->box = RecomputeBox(*parent);
        next_level.push_back(std::move(parent));
      }
    }
    level = std::move(next_level);
  }
  next->root = std::move(level.front());
  Publish(std::move(next));
  return Status::Ok();
}

Status DynamicRTree::Insert(const geom::Box& box, int64_t id) {
  if (box.IsEmpty() || !std::isfinite(box.min_x) ||
      !std::isfinite(box.min_y) || !std::isfinite(box.max_x) ||
      !std::isfinite(box.max_y)) {
    return Status::InvalidArgument("Insert box must be non-empty and finite");
  }

  MutexLock writer(&writer_mu_);
  std::shared_ptr<const VersionState> cur;
  {
    MutexLock lock(&state_mu_);
    cur = current_;
  }

  auto next = std::make_shared<VersionState>();
  next->size = cur->size + 1;
  next->version = cur->version + 1;
  if (cur->root == nullptr) {
    auto root = std::make_shared<Node>();
    root->leaf = true;
    root->boxes.push_back(box);
    root->ids.push_back(id);
    root->box = box;
    next->root = std::move(root);
  } else {
    std::shared_ptr<Node> split;
    std::shared_ptr<Node> root =
        InsertCow(*cur->root, box, id, max_entries_, min_entries_, &split);
    if (split != nullptr) {
      auto new_root = std::make_shared<Node>();
      new_root->leaf = false;
      new_root->boxes.push_back(root->box);
      new_root->boxes.push_back(split->box);
      new_root->children.push_back(std::move(root));
      new_root->children.push_back(std::move(split));
      new_root->box = RecomputeBox(*new_root);
      root = std::move(new_root);
    }
    next->root = std::move(root);
  }
  Publish(std::move(next));
  return Status::Ok();
}

Status DynamicRTree::Delete(const geom::Box& box, int64_t id) {
  MutexLock writer(&writer_mu_);
  std::shared_ptr<const VersionState> cur;
  {
    MutexLock lock(&state_mu_);
    cur = current_;
  }
  if (cur->root == nullptr) {
    return Status::NotFound("Delete: entry not in tree");
  }

  bool found = false;
  std::shared_ptr<const Node> root = DeleteCow(*cur->root, box, id, &found);
  if (!found) {
    return Status::NotFound("Delete: entry not in tree");
  }
  // Collapse a single-child internal root so the height shrinks back.
  while (root != nullptr && !root->leaf && root->children.size() == 1) {
    root = root->children[0];
  }

  auto next = std::make_shared<VersionState>();
  next->size = cur->size - 1;
  next->version = cur->version + 1;
  next->root = std::move(root);
  Publish(std::move(next));
  return Status::Ok();
}

DynamicRTree::Snapshot DynamicRTree::snapshot() const {
  Snapshot snap;
  MutexLock lock(&state_mu_);
  ++pins_[current_->version];
  snap.pin_ = std::make_shared<const Snapshot::Pin>(this, current_);
  return snap;
}

size_t DynamicRTree::size() const {
  MutexLock lock(&state_mu_);
  return current_->size;
}

uint64_t DynamicRTree::version() const {
  MutexLock lock(&state_mu_);
  return current_->version;
}

int64_t DynamicRTree::retired_versions() const {
  MutexLock lock(&state_mu_);
  return retired_total_;
}

int64_t DynamicRTree::reclaimed_versions() const {
  MutexLock lock(&state_mu_);
  return reclaimed_total_;
}

int64_t DynamicRTree::limbo_versions() const {
  MutexLock lock(&state_mu_);
  return static_cast<int64_t>(limbo_.size());
}

size_t DynamicRTree::Snapshot::size() const {
  return pin_ == nullptr ? 0 : pin_->state->size;
}

uint64_t DynamicRTree::Snapshot::version() const {
  return pin_ == nullptr ? 0 : pin_->state->version;
}

geom::Box DynamicRTree::Snapshot::Bounds() const {
  const Node* r = root();
  return r == nullptr ? geom::Box::Empty() : r->box;
}

const Node* DynamicRTree::Snapshot::root() const {
  return pin_ == nullptr ? nullptr : pin_->state->root.get();
}

void DynamicRTree::Snapshot::Visit(
    const std::function<bool(const geom::Box&)>& node_pred,
    const std::function<void(const geom::Box&, int64_t)>& emit) const {
  const Node* r = root();
  if (r == nullptr) return;
  std::vector<const Node*> stack = {r};
  while (!stack.empty()) {
    const Node* node = stack.back();
    stack.pop_back();
    if (node->leaf) {
      for (size_t i = 0; i < node->boxes.size(); ++i) {
        if (node_pred(node->boxes[i])) emit(node->boxes[i], node->ids[i]);
      }
    } else {
      for (size_t i = 0; i < node->boxes.size(); ++i) {
        if (node_pred(node->boxes[i])) {
          stack.push_back(node->children[i].get());
        }
      }
    }
  }
}

std::vector<int64_t> DynamicRTree::Snapshot::QueryIntersects(
    const geom::Box& query) const {
  std::vector<int64_t> out;
  Visit([&](const geom::Box& b) { return b.Intersects(query); },
        [&](const geom::Box&, int64_t id) { out.push_back(id); });
  return out;
}

std::vector<int64_t> DynamicRTree::Snapshot::QueryWithinDistance(
    const geom::Box& query, double distance) const {
  std::vector<int64_t> out;
  Visit(
      [&](const geom::Box& b) {
        return geom::MinDistance(b, query) <= distance;
      },
      [&](const geom::Box&, int64_t id) { out.push_back(id); });
  return out;
}

namespace {

Status CheckNode(const Node* node, bool is_root, int max_entries, int depth,
                 int leaf_depth, size_t* entries) {
  if (node->leaf) {
    if (depth != leaf_depth) return Status::Internal("leaves at unequal depth");
    if (node->ids.size() != node->boxes.size()) {
      return Status::Internal("leaf id/box count mismatch");
    }
    *entries += node->ids.size();
  } else {
    if (node->children.size() != node->boxes.size()) {
      return Status::Internal("internal child/box count mismatch");
    }
  }
  const size_t count = node->Count();
  // Underfull nodes are legal (STR tails, non-rebalancing deletes); only
  // emptiness is an error for non-root nodes.
  if (!is_root && count == 0) {
    return Status::Internal("empty non-root node");
  }
  if (count > static_cast<size_t>(max_entries)) {
    return Status::Internal("node overfull");
  }
  geom::Box cover = geom::Box::Empty();
  for (const geom::Box& b : node->boxes) {
    if (!node->box.Contains(b)) {
      return Status::Internal("child box escapes parent");
    }
    cover.Extend(b);
  }
  if (count > 0 && !(cover == node->box)) {
    return Status::Internal("node box not tight");
  }
  if (!node->leaf) {
    for (size_t i = 0; i < node->children.size(); ++i) {
      if (!(node->children[i]->box == node->boxes[i])) {
        return Status::Internal("stale child box");
      }
      Status s = CheckNode(node->children[i].get(), false, max_entries,
                           depth + 1, leaf_depth, entries);
      if (!s.ok()) return s;
    }
  }
  return Status::Ok();
}

}  // namespace

Status DynamicRTree::Snapshot::CheckInvariants() const {
  const Node* r = root();
  if (r == nullptr) {
    if (size() != 0) return Status::Internal("size nonzero with null root");
    return Status::Ok();
  }
  if (size() == 0) return Status::Internal("size zero with live root");
  int leaf_depth = 0;
  const Node* n = r;
  while (!n->leaf) {
    n = n->children[0].get();
    ++leaf_depth;
  }
  size_t entries = 0;
  Status s =
      CheckNode(r, true, pin_->tree->max_entries(), 0, leaf_depth, &entries);
  if (!s.ok()) return s;
  if (entries != size()) {
    return Status::Internal("entry count does not match published size");
  }
  return Status::Ok();
}

namespace {

// Synchronized traversal emitting entry pairs whose boxes satisfy `pred`
// (monotone under box enlargement), as the static tree's JoinRec.
template <typename Pred>
void JoinRec(const Node* a, const Node* b, const Pred& pred,
             std::vector<std::pair<int64_t, int64_t>>& out) {
  if (!pred(a->box, b->box)) return;
  if (a->leaf && b->leaf) {
    for (size_t i = 0; i < a->boxes.size(); ++i) {
      for (size_t j = 0; j < b->boxes.size(); ++j) {
        if (pred(a->boxes[i], b->boxes[j])) {
          out.emplace_back(a->ids[i], b->ids[j]);
        }
      }
    }
    return;
  }
  if (a->leaf) {
    for (const auto& child : b->children) JoinRec(a, child.get(), pred, out);
  } else if (b->leaf) {
    for (const auto& child : a->children) JoinRec(child.get(), b, pred, out);
  } else {
    for (const auto& ca : a->children) {
      for (const auto& cb : b->children) {
        JoinRec(ca.get(), cb.get(), pred, out);
      }
    }
  }
}

}  // namespace

std::vector<std::pair<int64_t, int64_t>> JoinIntersects(
    const DynamicRTree::Snapshot& a, const DynamicRTree::Snapshot& b) {
  std::vector<std::pair<int64_t, int64_t>> out;
  if (a.root() == nullptr || b.root() == nullptr) return out;
  JoinRec(
      a.root(), b.root(),
      [](const geom::Box& x, const geom::Box& y) { return x.Intersects(y); },
      out);
  return out;
}

std::vector<std::pair<int64_t, int64_t>> JoinWithinDistance(
    const DynamicRTree::Snapshot& a, const DynamicRTree::Snapshot& b,
    double distance) {
  std::vector<std::pair<int64_t, int64_t>> out;
  if (a.root() == nullptr || b.root() == nullptr) return out;
  JoinRec(
      a.root(), b.root(),
      [distance](const geom::Box& x, const geom::Box& y) {
        return geom::MinDistance(x, y) <= distance;
      },
      out);
  return out;
}

}  // namespace hasj::index
