#include "geom/clip.h"

#include <cmath>

namespace hasj::geom {
namespace {

// One Sutherland-Hodgman pass against a half-plane. `inside` tests the
// half-plane, `cross` computes the border crossing of an edge.
template <typename InsideFn, typename CrossFn>
std::vector<Point> ClipAgainst(const std::vector<Point>& ring,
                               InsideFn inside, CrossFn cross) {
  std::vector<Point> out;
  out.reserve(ring.size() + 4);
  const size_t n = ring.size();
  for (size_t i = 0, j = n - 1; i < n; j = i++) {
    const Point& prev = ring[j];
    const Point& cur = ring[i];
    const bool prev_in = inside(prev);
    const bool cur_in = inside(cur);
    if (cur_in) {
      if (!prev_in) out.push_back(cross(prev, cur));
      out.push_back(cur);
    } else if (prev_in) {
      out.push_back(cross(prev, cur));
    }
  }
  return out;
}

Point CrossAtX(Point a, Point b, double x) {
  const double t = (x - a.x) / (b.x - a.x);
  return {x, a.y + t * (b.y - a.y)};
}

Point CrossAtY(Point a, Point b, double y) {
  const double t = (y - a.y) / (b.y - a.y);
  return {a.x + t * (b.x - a.x), y};
}

}  // namespace

std::vector<Point> ClipPolygonToBox(const Polygon& polygon, const Box& box) {
  if (box.IsEmpty() || !polygon.Bounds().Intersects(box)) return {};
  std::vector<Point> ring = polygon.vertices();
  ring = ClipAgainst(
      ring, [&](Point p) { return p.x >= box.min_x; },
      [&](Point a, Point b) { return CrossAtX(a, b, box.min_x); });
  if (ring.empty()) return ring;
  ring = ClipAgainst(
      ring, [&](Point p) { return p.x <= box.max_x; },
      [&](Point a, Point b) { return CrossAtX(a, b, box.max_x); });
  if (ring.empty()) return ring;
  ring = ClipAgainst(
      ring, [&](Point p) { return p.y >= box.min_y; },
      [&](Point a, Point b) { return CrossAtY(a, b, box.min_y); });
  if (ring.empty()) return ring;
  ring = ClipAgainst(
      ring, [&](Point p) { return p.y <= box.max_y; },
      [&](Point a, Point b) { return CrossAtY(a, b, box.max_y); });
  return ring;
}

double ClippedArea(const Polygon& polygon, const Box& box) {
  const std::vector<Point> ring = ClipPolygonToBox(polygon, box);
  const size_t n = ring.size();
  if (n < 3) return 0.0;
  double sum = 0.0;
  for (size_t i = 0, j = n - 1; i < n; j = i++) {
    sum += Cross(ring[j], ring[i]);
  }
  return std::fabs(0.5 * sum);
}

}  // namespace hasj::geom
