#include "geom/predicates.h"

#include <cmath>

namespace hasj::geom {
namespace {

// --- Floating-point expansion arithmetic (Shewchuk 1997) -------------------
//
// An expansion is a sum of doubles x = e[n-1] + ... + e[0] whose components
// are nonoverlapping and ordered by increasing magnitude. The sign of the
// expansion is the sign of its largest-magnitude (last nonzero) component.

// Knuth's TwoSum: a + b = hi + lo exactly.
inline void TwoSum(double a, double b, double& hi, double& lo) {
  hi = a + b;
  const double bv = hi - a;
  const double av = hi - bv;
  lo = (a - av) + (b - bv);
}

// a * b = hi + lo exactly, via fused multiply-add.
inline void TwoProd(double a, double b, double& hi, double& lo) {
  hi = a * b;
  lo = std::fma(a, b, -hi);
}

// Adds scalar b into expansion e of length n (result length n+1), preserving
// the nonoverlapping property (Shewchuk, GROW-EXPANSION).
inline int GrowExpansion(int n, const double* e, double b, double* h) {
  double q = b;
  for (int i = 0; i < n; ++i) {
    double hi, lo;
    TwoSum(q, e[i], hi, lo);
    h[i] = lo;
    q = hi;
  }
  h[n] = q;
  return n + 1;
}

// Sign of an expansion: sign of its largest-magnitude component. Components
// are ordered by increasing magnitude so scan from the top.
inline int ExpansionSign(int n, const double* e) {
  for (int i = n - 1; i >= 0; --i) {
    if (e[i] > 0.0) return 1;
    if (e[i] < 0.0) return -1;
  }
  return 0;
}

// Error bound coefficient for the orientation filter: (3 + 16 eps) eps.
const double kCcwErrBound = []() {
  const double eps = 0x1.0p-53;  // double unit roundoff
  return (3.0 + 16.0 * eps) * eps;
}();

// Exact orientation sign via full expansion of the 2x2 determinant:
//   ax*by - ax*cy - cx*by - ay*bx + ay*cx + cy*bx
// (the cx*cy terms of the expanded determinant cancel symbolically).
int Orient2dExact(Point a, Point b, Point c) {
  double terms[12];
  TwoProd(a.x, b.y, terms[0], terms[1]);
  TwoProd(-a.x, c.y, terms[2], terms[3]);
  TwoProd(-c.x, b.y, terms[4], terms[5]);
  TwoProd(-a.y, b.x, terms[6], terms[7]);
  TwoProd(a.y, c.x, terms[8], terms[9]);
  TwoProd(c.y, b.x, terms[10], terms[11]);

  double e[13], h[13];
  int n = 0;
  for (double t : terms) {
    n = GrowExpansion(n, e, t, h);
    for (int i = 0; i < n; ++i) e[i] = h[i];
  }
  return ExpansionSign(n, e);
}

}  // namespace

int Orient2d(Point a, Point b, Point c) {
  const double detleft = (a.x - c.x) * (b.y - c.y);
  const double detright = (a.y - c.y) * (b.x - c.x);
  const double det = detleft - detright;

  double detsum;
  if (detleft > 0.0) {
    if (detright <= 0.0) return det > 0.0 ? 1 : (det < 0.0 ? -1 : 1);
    detsum = detleft + detright;
  } else if (detleft < 0.0) {
    if (detright >= 0.0) return det < 0.0 ? -1 : (det > 0.0 ? 1 : -1);
    detsum = -detleft - detright;
  } else {
    // detleft == 0: det == -detright computed exactly only if detright is
    // a single rounding; fall through to the filter with detsum = |detright|.
    detsum = std::fabs(detright);
  }

  const double errbound = kCcwErrBound * detsum;
  if (det > errbound) return 1;
  if (det < -errbound) return -1;
  return Orient2dExact(a, b, c);
}

bool OnSegment(Point a, Point b, Point c) {
  if (Orient2d(a, b, c) != 0) return false;
  // Collinear: on the segment iff inside its bounding box (checking both
  // coordinates also handles degenerate a == b segments).
  return (c.x >= std::fmin(a.x, b.x)) && (c.x <= std::fmax(a.x, b.x)) &&
         (c.y >= std::fmin(a.y, b.y)) && (c.y <= std::fmax(a.y, b.y));
}

}  // namespace hasj::geom
