#ifndef HASJ_GEOM_WKT_H_
#define HASJ_GEOM_WKT_H_

#include <string>
#include <string_view>

#include "common/status.h"
#include "geom/polygon.h"

namespace hasj::geom {

// Input hardening caps for WKT parsing (DESIGN.md §11): untrusted text must
// not be able to allocate unbounded memory before validation runs. Both
// caps return kOutOfRange; 0 disables a cap.
struct WktLimits {
  size_t max_text_bytes = 16u << 20;  // reject pathological inputs up front
  size_t max_vertices = 1u << 20;     // checked as the ring is parsed
};

// Well-Known Text for the geometry subset the library supports.
//
// Supported input: `POLYGON ((x y, x y, ...))` with a single ring; the
// closing duplicate vertex is optional and removed. Rings with holes are
// rejected with kUnimplemented. Parsing is whitespace- and case-insensitive.
// Inputs exceeding `limits` are rejected with kOutOfRange.
[[nodiscard]] Result<Polygon> ParseWktPolygon(std::string_view wkt,
                                              const WktLimits& limits = {});

// Round-trippable output (`%.17g` coordinates), closing vertex included as
// WKT requires.
std::string ToWkt(const Polygon& polygon);

}  // namespace hasj::geom

#endif  // HASJ_GEOM_WKT_H_
