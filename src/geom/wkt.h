#ifndef HASJ_GEOM_WKT_H_
#define HASJ_GEOM_WKT_H_

#include <string>
#include <string_view>

#include "common/status.h"
#include "geom/polygon.h"

namespace hasj::geom {

// Well-Known Text for the geometry subset the library supports.
//
// Supported input: `POLYGON ((x y, x y, ...))` with a single ring; the
// closing duplicate vertex is optional and removed. Rings with holes are
// rejected with kUnimplemented. Parsing is whitespace- and case-insensitive.
[[nodiscard]] Result<Polygon> ParseWktPolygon(std::string_view wkt);

// Round-trippable output (`%.17g` coordinates), closing vertex included as
// WKT requires.
std::string ToWkt(const Polygon& polygon);

}  // namespace hasj::geom

#endif  // HASJ_GEOM_WKT_H_
