#include "geom/polygon.h"

#include <algorithm>
#include <cmath>

namespace hasj::geom {

Polygon::Polygon(std::vector<Point> vertices) : vertices_(std::move(vertices)) {
  for (const Point& p : vertices_) bounds_.Extend(p);
}

double Polygon::SignedArea() const {
  const size_t n = vertices_.size();
  if (n < 3) return 0.0;
  double sum = 0.0;
  for (size_t i = 0, j = n - 1; i < n; j = i++) {
    sum += Cross(vertices_[j], vertices_[i]);
  }
  return 0.5 * sum;
}

double Polygon::Area() const { return std::fabs(SignedArea()); }

void Polygon::Reverse() { std::reverse(vertices_.begin(), vertices_.end()); }

Status Polygon::Validate() const {
  const size_t n = vertices_.size();
  if (n < 3) return Status::InvalidArgument("polygon has fewer than 3 vertices");
  for (size_t i = 0; i < n; ++i) {
    const size_t j = i + 1 == n ? 0 : i + 1;
    if (vertices_[i] == vertices_[j]) {
      return Status::InvalidArgument("polygon has consecutive duplicate vertices");
    }
    if (!std::isfinite(vertices_[i].x) || !std::isfinite(vertices_[i].y)) {
      return Status::InvalidArgument("polygon has non-finite coordinates");
    }
  }
  // lint:allow(float-eq): exactly-zero area is the degeneracy being rejected
  if (Area() == 0.0) return Status::InvalidArgument("polygon has zero area");
  return Status::Ok();
}

}  // namespace hasj::geom
