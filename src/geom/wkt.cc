#include "geom/wkt.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace hasj::geom {
namespace {

// Minimal recursive-descent style cursor over the WKT text.
class Cursor {
 public:
  explicit Cursor(std::string_view text) : text_(text) {}

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool ConsumeChar(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  // Case-insensitive keyword match.
  bool ConsumeKeyword(std::string_view keyword) {
    SkipSpace();
    if (text_.size() - pos_ < keyword.size()) return false;
    for (size_t i = 0; i < keyword.size(); ++i) {
      if (std::toupper(static_cast<unsigned char>(text_[pos_ + i])) !=
          keyword[i]) {
        return false;
      }
    }
    pos_ += keyword.size();
    return true;
  }

  bool ConsumeDouble(double* out) {
    SkipSpace();
    if (pos_ >= text_.size()) return false;
    // strtod needs a NUL-terminated buffer; copy the number's local window.
    char buf[64];
    size_t len = 0;
    while (pos_ + len < text_.size() && len + 1 < sizeof(buf)) {
      const char c = text_[pos_ + len];
      if (std::isdigit(static_cast<unsigned char>(c)) || c == '+' ||
          c == '-' || c == '.' || c == 'e' || c == 'E') {
        buf[len++] = c;
      } else {
        break;
      }
    }
    buf[len] = '\0';
    char* end = nullptr;
    const double value = std::strtod(buf, &end);
    if (end == buf) return false;
    pos_ += static_cast<size_t>(end - buf);
    *out = value;
    return true;
  }

  bool AtEnd() {
    SkipSpace();
    return pos_ >= text_.size();
  }

 private:
  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

Result<Polygon> ParseWktPolygon(std::string_view wkt,
                                const WktLimits& limits) {
  if (limits.max_text_bytes > 0 && wkt.size() > limits.max_text_bytes) {
    return Status::OutOfRange("WKT text exceeds " +
                              std::to_string(limits.max_text_bytes) +
                              " bytes");
  }
  Cursor cur(wkt);
  if (!cur.ConsumeKeyword("POLYGON")) {
    return Status::InvalidArgument("expected POLYGON keyword");
  }
  if (!cur.ConsumeChar('(')) {
    return Status::InvalidArgument("expected '(' after POLYGON");
  }
  if (!cur.ConsumeChar('(')) {
    return Status::InvalidArgument("expected '((' opening the ring");
  }
  std::vector<Point> pts;
  do {
    double x = 0.0, y = 0.0;
    if (!cur.ConsumeDouble(&x) || !cur.ConsumeDouble(&y)) {
      return Status::InvalidArgument("malformed coordinate pair");
    }
    if (limits.max_vertices > 0 && pts.size() >= limits.max_vertices) {
      return Status::OutOfRange("ring exceeds " +
                                std::to_string(limits.max_vertices) +
                                " vertices");
    }
    pts.push_back({x, y});
  } while (cur.ConsumeChar(','));
  if (!cur.ConsumeChar(')')) {
    return Status::InvalidArgument("expected ')' closing the ring");
  }
  if (cur.ConsumeChar(',')) {
    return Status::Unimplemented("polygons with holes are not supported");
  }
  if (!cur.ConsumeChar(')')) {
    return Status::InvalidArgument("expected ')' closing POLYGON");
  }
  if (!cur.AtEnd()) {
    return Status::InvalidArgument("trailing characters after POLYGON");
  }
  if (pts.size() >= 2 && pts.front() == pts.back()) pts.pop_back();
  Polygon poly(std::move(pts));
  if (Status s = poly.Validate(); !s.ok()) return s;
  return poly;
}

std::string ToWkt(const Polygon& polygon) {
  std::string out = "POLYGON ((";
  char buf[80];
  const size_t n = polygon.size();
  for (size_t i = 0; i <= n; ++i) {  // repeat vertex 0 to close the ring
    const Point& p = polygon.vertex(i % n);
    std::snprintf(buf, sizeof(buf), "%.17g %.17g", p.x, p.y);
    if (i != 0) out += ", ";
    out += buf;
  }
  out += "))";
  return out;
}

}  // namespace hasj::geom
