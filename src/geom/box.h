#ifndef HASJ_GEOM_BOX_H_
#define HASJ_GEOM_BOX_H_

#include <algorithm>
#include <string>

#include "geom/point.h"

namespace hasj::geom {

// Axis-aligned rectangle, used as minimum bounding rectangle (MBR) and as
// rendering-viewport data rectangle. An empty box has min > max and behaves
// as the identity for Extend/Union.
struct Box {
  double min_x = 1.0;
  double min_y = 1.0;
  double max_x = 0.0;
  double max_y = 0.0;

  Box() = default;
  Box(double x0, double y0, double x1, double y1)
      : min_x(x0), min_y(y0), max_x(x1), max_y(y1) {}

  static Box Empty() { return Box(); }

  // Smallest box containing both corner points, in any order.
  static Box FromCorners(Point a, Point b) {
    return Box(std::min(a.x, b.x), std::min(a.y, b.y), std::max(a.x, b.x),
               std::max(a.y, b.y));
  }

  bool IsEmpty() const { return min_x > max_x || min_y > max_y; }

  double Width() const { return IsEmpty() ? 0.0 : max_x - min_x; }
  double Height() const { return IsEmpty() ? 0.0 : max_y - min_y; }
  double Area() const { return Width() * Height(); }
  double Perimeter() const { return 2.0 * (Width() + Height()); }
  Point Center() const {
    return {(min_x + max_x) * 0.5, (min_y + max_y) * 0.5};
  }

  // Grows to include p (or another box).
  void Extend(Point p);
  void Extend(const Box& other);

  // Box expanded by d on all four sides (d may be negative; result may be
  // empty). Used for D-extended MBRs in the distance optimizations.
  Box Expanded(double d) const {
    return Box(min_x - d, min_y - d, max_x + d, max_y + d);
  }

  bool Contains(Point p) const {
    return !IsEmpty() && p.x >= min_x && p.x <= max_x && p.y >= min_y &&
           p.y <= max_y;
  }
  bool Contains(const Box& other) const {
    return !IsEmpty() && !other.IsEmpty() && other.min_x >= min_x &&
           other.max_x <= max_x && other.min_y >= min_y && other.max_y <= max_y;
  }

  // Closed-rectangle intersection test (touching boxes intersect).
  bool Intersects(const Box& other) const {
    return !IsEmpty() && !other.IsEmpty() && min_x <= other.max_x &&
           other.min_x <= max_x && min_y <= other.max_y && other.min_y <= max_y;
  }

  // The common region (empty box if disjoint).
  Box Intersection(const Box& other) const;

  friend bool operator==(const Box& a, const Box& b) {
    return a.min_x == b.min_x && a.min_y == b.min_y && a.max_x == b.max_x &&
           a.max_y == b.max_y;
  }
};

// Minimum distance between two boxes (0 if they intersect). Lower bound of
// the distance between the objects inside them — the MBR filter of the
// within-distance join.
double MinDistance(const Box& a, const Box& b);

// Minimum distance between a point and a box (0 if inside).
double MinDistance(Point p, const Box& b);

// Maximum distance between any point of a and any point of b (the diameter
// of the pair); attained at corners.
double MaxDistance(const Box& a, const Box& b);

// Upper bound on the minimum distance between two objects known only by
// their MBRs, using the fact that an object touches every side of its own
// MBR (the bound behind Chan's 0-Object filter): the minimum over side
// pairs of the maximum side-to-side distance.
double MinMaxDistance(const Box& a, const Box& b);

std::string ToString(const Box& b);

}  // namespace hasj::geom

#endif  // HASJ_GEOM_BOX_H_
