#ifndef HASJ_GEOM_CLIP_H_
#define HASJ_GEOM_CLIP_H_

#include <vector>

#include "geom/box.h"
#include "geom/point.h"
#include "geom/polygon.h"

namespace hasj::geom {

// Sutherland-Hodgman clipping of a simple polygon against an axis-aligned
// box. Returns the vertices of the clipped region (empty if the polygon
// misses the box). For concave subjects the result ring may contain
// coincident edges along the box border where the region is disconnected —
// standard Sutherland-Hodgman behavior; its area is still the area of
// polygon ∩ box, which is what the overlay statistics use.
std::vector<Point> ClipPolygonToBox(const Polygon& polygon, const Box& box);

// Area of polygon ∩ box (0 when disjoint).
double ClippedArea(const Polygon& polygon, const Box& box);

}  // namespace hasj::geom

#endif  // HASJ_GEOM_CLIP_H_
