#include "geom/box.h"

#include <cmath>
#include <cstdio>

namespace hasj::geom {

void Box::Extend(Point p) {
  if (IsEmpty()) {
    min_x = max_x = p.x;
    min_y = max_y = p.y;
    return;
  }
  min_x = std::min(min_x, p.x);
  min_y = std::min(min_y, p.y);
  max_x = std::max(max_x, p.x);
  max_y = std::max(max_y, p.y);
}

void Box::Extend(const Box& other) {
  if (other.IsEmpty()) return;
  Extend(Point{other.min_x, other.min_y});
  Extend(Point{other.max_x, other.max_y});
}

Box Box::Intersection(const Box& other) const {
  if (!Intersects(other)) return Box::Empty();
  return Box(std::max(min_x, other.min_x), std::max(min_y, other.min_y),
             std::min(max_x, other.max_x), std::min(max_y, other.max_y));
}

double MinDistance(const Box& a, const Box& b) {
  const double dx =
      std::max({0.0, a.min_x - b.max_x, b.min_x - a.max_x});
  const double dy =
      std::max({0.0, a.min_y - b.max_y, b.min_y - a.max_y});
  return std::hypot(dx, dy);
}

double MinDistance(Point p, const Box& b) {
  const double dx = std::max({0.0, b.min_x - p.x, p.x - b.max_x});
  const double dy = std::max({0.0, b.min_y - p.y, p.y - b.max_y});
  return std::hypot(dx, dy);
}

double MaxDistance(const Box& a, const Box& b) {
  const double dx = std::max(a.max_x - b.min_x, b.max_x - a.min_x);
  const double dy = std::max(a.max_y - b.min_y, b.max_y - a.min_y);
  return std::hypot(dx, dy);
}

namespace {

// Maximum distance between two segments; the maximizing pair of points is a
// pair of endpoints (the squared distance is convex in each argument).
double MaxSegmentDistance(Point a0, Point a1, Point b0, Point b1) {
  return std::max(std::max(Distance(a0, b0), Distance(a0, b1)),
                  std::max(Distance(a1, b0), Distance(a1, b1)));
}

// The four sides of a box as endpoint pairs.
void BoxSides(const Box& b, Point sides[4][2]) {
  const Point p00{b.min_x, b.min_y}, p10{b.max_x, b.min_y};
  const Point p11{b.max_x, b.max_y}, p01{b.min_x, b.max_y};
  sides[0][0] = p00, sides[0][1] = p10;
  sides[1][0] = p10, sides[1][1] = p11;
  sides[2][0] = p11, sides[2][1] = p01;
  sides[3][0] = p01, sides[3][1] = p00;
}

}  // namespace

double MinMaxDistance(const Box& a, const Box& b) {
  Point sa[4][2], sb[4][2];
  BoxSides(a, sa);
  BoxSides(b, sb);
  double best = MaxDistance(a, b);
  for (const auto& i : sa) {
    for (const auto& j : sb) {
      best = std::min(best, MaxSegmentDistance(i[0], i[1], j[0], j[1]));
    }
  }
  return best;
}

std::string ToString(const Box& b) {
  char buf[120];
  std::snprintf(buf, sizeof(buf), "[%.6g,%.6g x %.6g,%.6g]", b.min_x, b.min_y,
                b.max_x, b.max_y);
  return buf;
}

std::string ToString(Point p) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "(%.6g,%.6g)", p.x, p.y);
  return buf;
}

}  // namespace hasj::geom
