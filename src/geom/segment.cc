#include "geom/segment.h"

#include <algorithm>

#include "geom/predicates.h"

namespace hasj::geom {

bool SegmentsIntersect(const Segment& s, const Segment& t) {
  // Cheap MBR reject first; the common case in sweeps and brute loops.
  if (!s.Bounds().Intersects(t.Bounds())) return false;

  const int d1 = Orient2d(t.a, t.b, s.a);
  const int d2 = Orient2d(t.a, t.b, s.b);
  const int d3 = Orient2d(s.a, s.b, t.a);
  const int d4 = Orient2d(s.a, s.b, t.b);

  if (((d1 > 0 && d2 < 0) || (d1 < 0 && d2 > 0)) &&
      ((d3 > 0 && d4 < 0) || (d3 < 0 && d4 > 0))) {
    return true;  // proper crossing
  }
  // Improper cases: an endpoint lies on the other segment (covers endpoint
  // touching and collinear overlap, since overlap implies an endpoint of one
  // segment inside the other given the MBRs intersect).
  if (d1 == 0 && OnSegment(t.a, t.b, s.a)) return true;
  if (d2 == 0 && OnSegment(t.a, t.b, s.b)) return true;
  if (d3 == 0 && OnSegment(s.a, s.b, t.a)) return true;
  if (d4 == 0 && OnSegment(s.a, s.b, t.b)) return true;
  return false;
}

double Distance(Point p, const Segment& s) {
  const Point d = s.b - s.a;
  const double len2 = SquaredNorm(d);
  // lint:allow(float-eq): exactly-zero length is the degenerate case
  if (len2 == 0.0) return Distance(p, s.a);
  double t = Dot(p - s.a, d) / len2;
  t = std::clamp(t, 0.0, 1.0);
  return Distance(p, s.a + d * t);
}

double Distance(const Segment& s, const Segment& t) {
  if (SegmentsIntersect(s, t)) return 0.0;
  // Disjoint closed segments: the minimum is attained endpoint-to-segment.
  return std::min(std::min(Distance(s.a, t), Distance(s.b, t)),
                  std::min(Distance(t.a, s), Distance(t.b, s)));
}

double Distance(const Segment& s, const Box& box) {
  if (SegmentIntersectsBox(s, box)) return 0.0;
  const Point p00{box.min_x, box.min_y}, p10{box.max_x, box.min_y};
  const Point p11{box.max_x, box.max_y}, p01{box.min_x, box.max_y};
  const double d0 = Distance(s, Segment(p00, p10));
  const double d1 = Distance(s, Segment(p10, p11));
  const double d2 = Distance(s, Segment(p11, p01));
  const double d3 = Distance(s, Segment(p01, p00));
  return std::min(std::min(d0, d1), std::min(d2, d3));
}

bool SegmentIntersectsBox(const Segment& s, const Box& box) {
  if (box.IsEmpty()) return false;
  if (!s.Bounds().Intersects(box)) return false;
  if (box.Contains(s.a) || box.Contains(s.b)) return true;
  // Neither endpoint inside but MBRs overlap: the segment intersects the box
  // iff it crosses one of its edges.
  const Point p00{box.min_x, box.min_y}, p10{box.max_x, box.min_y};
  const Point p11{box.max_x, box.max_y}, p01{box.min_x, box.max_y};
  return SegmentsIntersect(s, {p00, p10}) || SegmentsIntersect(s, {p10, p11}) ||
         SegmentsIntersect(s, {p11, p01}) || SegmentsIntersect(s, {p01, p00});
}

}  // namespace hasj::geom
