#ifndef HASJ_GEOM_PREDICATES_H_
#define HASJ_GEOM_PREDICATES_H_

#include "geom/point.h"

namespace hasj::geom {

// Sign of the orientation of the triangle (a, b, c):
//   +1 if counter-clockwise, -1 if clockwise, 0 if exactly collinear.
//
// Exact for all double inputs. Uses a floating-point filter (Shewchuk's
// ccwerrboundA) and falls back to exact floating-point-expansion arithmetic
// when the filter cannot certify the sign. The software intersection test is
// the ground truth the hardware filter is validated against, so this
// predicate must never be wrong.
int Orient2d(Point a, Point b, Point c);

// The (possibly inaccurate) determinant value itself; callers that need a
// magnitude rather than a sign use this, sign decisions must use Orient2d.
inline double Orient2dApprox(Point a, Point b, Point c) {
  return (a.x - c.x) * (b.y - c.y) - (a.y - c.y) * (b.x - c.x);
}

// True if c lies on the closed segment [a, b]. Exact: uses Orient2d for the
// collinearity decision and coordinate comparisons for the range check.
bool OnSegment(Point a, Point b, Point c);

}  // namespace hasj::geom

#endif  // HASJ_GEOM_PREDICATES_H_
