#ifndef HASJ_GEOM_SEGMENT_H_
#define HASJ_GEOM_SEGMENT_H_

#include "geom/box.h"
#include "geom/point.h"

namespace hasj::geom {

// Closed line segment [a, b]. Degenerate (a == b) segments are allowed and
// behave as points.
struct Segment {
  Point a;
  Point b;

  Segment() = default;
  Segment(Point pa, Point pb) : a(pa), b(pb) {}

  Box Bounds() const { return Box::FromCorners(a, b); }
  double Length() const { return Distance(a, b); }
};

// Exact closed-segment intersection test: true if the segments share at
// least one point, including endpoint touching and collinear overlap.
// Spatial predicates treat boundaries as closed sets, so touching counts.
bool SegmentsIntersect(const Segment& s, const Segment& t);

// Distance from point p to the closed segment s.
double Distance(Point p, const Segment& s);

// Minimum distance between two closed segments (0 if they intersect).
double Distance(const Segment& s, const Segment& t);

// True if the closed segment intersects the closed box (degenerate boxes and
// segments included). Used by restricted-search-space clipping, the interior
// filter's boundary-tile marking, and frontier-chain clipping.
bool SegmentIntersectsBox(const Segment& s, const Box& box);

// Minimum distance between a closed segment and a closed box (0 if they
// intersect). Used by the frontier-chain pruning of the minDist algorithm.
double Distance(const Segment& s, const Box& box);

}  // namespace hasj::geom

#endif  // HASJ_GEOM_SEGMENT_H_
