#ifndef HASJ_GEOM_POLYGON_H_
#define HASJ_GEOM_POLYGON_H_

#include <cstddef>
#include <utility>
#include <vector>

#include "common/status.h"
#include "geom/box.h"
#include "geom/segment.h"

namespace hasj::geom {

// Simple polygon: a single closed ring of vertices without the closing
// duplicate (edge i runs from vertex i to vertex (i+1) mod n). The paper's
// datasets are simple polygons; holes and multipolygons are out of scope
// (see DESIGN.md).
//
// The ring orientation is not enforced; use SignedArea()/Reverse() if a
// specific orientation is needed. The bounding box is computed on
// construction and cached, since MBRs are consulted constantly by the
// filtering steps.
class Polygon {
 public:
  Polygon() = default;
  explicit Polygon(std::vector<Point> vertices);

  size_t size() const { return vertices_.size(); }
  bool empty() const { return vertices_.empty(); }
  const Point& vertex(size_t i) const { return vertices_[i]; }
  const std::vector<Point>& vertices() const { return vertices_; }

  // Edge from vertex i to vertex (i+1) mod size().
  Segment edge(size_t i) const {
    const size_t j = i + 1 == vertices_.size() ? 0 : i + 1;
    return Segment(vertices_[i], vertices_[j]);
  }

  const Box& Bounds() const { return bounds_; }

  // Positive for counter-clockwise rings (shoelace formula).
  double SignedArea() const;
  double Area() const;
  bool IsCcw() const { return SignedArea() > 0.0; }
  void Reverse();

  // Checks the polygon is usable by the library: at least 3 vertices, no
  // consecutive duplicate vertices, nonzero area. (Full simplicity is
  // checked by algo::IsSimple, which is O(n^2) and test-oriented.)
  [[nodiscard]] Status Validate() const;

 private:
  std::vector<Point> vertices_;
  Box bounds_;
};

}  // namespace hasj::geom

#endif  // HASJ_GEOM_POLYGON_H_
