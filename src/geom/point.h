#ifndef HASJ_GEOM_POINT_H_
#define HASJ_GEOM_POINT_H_

#include <cmath>
#include <string>

namespace hasj::geom {

// 2D point / vector with double coordinates. The datasets the paper targets
// are 2D GIS polygons; all coordinates in this library are doubles.
struct Point {
  double x = 0.0;
  double y = 0.0;

  Point() = default;
  Point(double px, double py) : x(px), y(py) {}

  Point operator+(Point o) const { return {x + o.x, y + o.y}; }
  Point operator-(Point o) const { return {x - o.x, y - o.y}; }
  Point operator*(double s) const { return {x * s, y * s}; }
  Point operator/(double s) const { return {x / s, y / s}; }

  // Bitwise-exact equality on purpose: shared polygon endpoints must
  // compare equal, distinct-but-close vertices must not.
  // lint:allow(float-eq): exact identity, not numeric closeness
  friend bool operator==(Point a, Point b) { return a.x == b.x && a.y == b.y; }
  friend bool operator!=(Point a, Point b) { return !(a == b); }

  // Lexicographic (x, then y) order; used for sweep-line event ordering.
  friend bool operator<(Point a, Point b) {
    return a.x < b.x || (a.x == b.x && a.y < b.y);  // lint:allow(float-eq): exact tie-break
  }
};

inline double Dot(Point a, Point b) { return a.x * b.x + a.y * b.y; }

// z-component of the 3D cross product of vectors a and b. Not robust; use
// geom::Orient2d for sign decisions.
inline double Cross(Point a, Point b) { return a.x * b.y - a.y * b.x; }

inline double SquaredNorm(Point a) { return a.x * a.x + a.y * a.y; }
inline double Norm(Point a) { return std::sqrt(SquaredNorm(a)); }

inline double SquaredDistance(Point a, Point b) { return SquaredNorm(a - b); }
inline double Distance(Point a, Point b) { return Norm(a - b); }

std::string ToString(Point p);

}  // namespace hasj::geom

#endif  // HASJ_GEOM_POINT_H_
