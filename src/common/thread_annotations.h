#ifndef HASJ_COMMON_THREAD_ANNOTATIONS_H_
#define HASJ_COMMON_THREAD_ANNOTATIONS_H_

// Portable Clang Thread Safety Analysis annotations (DESIGN.md §13).
//
// These macros let the locking contracts the concurrency layer documents in
// prose — "guarded by mu_", "call with the lock held", "never call while
// holding shard locks" — be machine-checked at compile time. Under clang
// they expand to the thread-safety attributes that -Wthread-safety (and the
// -Werror=thread-safety CI job behind the HASJ_THREAD_SAFETY CMake option)
// enforces; under every other compiler they expand to nothing, so gcc
// builds are byte-identical to the unannotated tree.
//
// The annotated capability types live in common/mutex.h; raw std::mutex use
// outside that header is rejected by the naked-mutex lint rule
// (scripts/lint_hasj.py), which is what keeps new locking sites inside the
// analyzed vocabulary.
//
// Semantics (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html):
//
//   HASJ_GUARDED_BY(mu)     data member readable/writable only with mu held
//   HASJ_PT_GUARDED_BY(mu)  pointer member whose *pointee* needs mu held
//   HASJ_REQUIRES(mu)       function must be called with mu held (exclusive)
//   HASJ_REQUIRES_SHARED(mu)  ... with at least a shared (reader) hold
//   HASJ_ACQUIRE(mu)        function acquires mu and returns holding it
//   HASJ_RELEASE(mu)        function releases mu
//   HASJ_EXCLUDES(mu)       function must be called *without* mu held (it
//                           takes mu itself; guards against self-deadlock)
//   HASJ_CAPABILITY(name)   class is a lockable capability (Mutex)
//   HASJ_SCOPED_CAPABILITY  RAII class acquiring in ctor / releasing in dtor
//   HASJ_NO_THREAD_SAFETY_ANALYSIS
//                           opt a function out of the analysis. Every use
//                           site MUST carry a written invariant explaining
//                           why the unanalyzed access is safe (acceptance
//                           criterion; grep for the macro to audit them).

#if defined(__clang__)
#define HASJ_THREAD_ANNOTATION_ATTRIBUTE__(x) __attribute__((x))
#else
#define HASJ_THREAD_ANNOTATION_ATTRIBUTE__(x)  // off-clang: compiles away
#endif

#define HASJ_CAPABILITY(x) \
  HASJ_THREAD_ANNOTATION_ATTRIBUTE__(capability(x))

#define HASJ_SCOPED_CAPABILITY \
  HASJ_THREAD_ANNOTATION_ATTRIBUTE__(scoped_lockable)

#define HASJ_GUARDED_BY(x) \
  HASJ_THREAD_ANNOTATION_ATTRIBUTE__(guarded_by(x))

#define HASJ_PT_GUARDED_BY(x) \
  HASJ_THREAD_ANNOTATION_ATTRIBUTE__(pt_guarded_by(x))

#define HASJ_ACQUIRED_BEFORE(...) \
  HASJ_THREAD_ANNOTATION_ATTRIBUTE__(acquired_before(__VA_ARGS__))

#define HASJ_ACQUIRED_AFTER(...) \
  HASJ_THREAD_ANNOTATION_ATTRIBUTE__(acquired_after(__VA_ARGS__))

#define HASJ_REQUIRES(...) \
  HASJ_THREAD_ANNOTATION_ATTRIBUTE__(requires_capability(__VA_ARGS__))

#define HASJ_REQUIRES_SHARED(...) \
  HASJ_THREAD_ANNOTATION_ATTRIBUTE__(requires_shared_capability(__VA_ARGS__))

#define HASJ_ACQUIRE(...) \
  HASJ_THREAD_ANNOTATION_ATTRIBUTE__(acquire_capability(__VA_ARGS__))

#define HASJ_ACQUIRE_SHARED(...) \
  HASJ_THREAD_ANNOTATION_ATTRIBUTE__(acquire_shared_capability(__VA_ARGS__))

#define HASJ_RELEASE(...) \
  HASJ_THREAD_ANNOTATION_ATTRIBUTE__(release_capability(__VA_ARGS__))

#define HASJ_RELEASE_SHARED(...) \
  HASJ_THREAD_ANNOTATION_ATTRIBUTE__(release_shared_capability(__VA_ARGS__))

#define HASJ_TRY_ACQUIRE(...) \
  HASJ_THREAD_ANNOTATION_ATTRIBUTE__(try_acquire_capability(__VA_ARGS__))

#define HASJ_TRY_ACQUIRE_SHARED(...) \
  HASJ_THREAD_ANNOTATION_ATTRIBUTE__( \
      try_acquire_shared_capability(__VA_ARGS__))

#define HASJ_EXCLUDES(...) \
  HASJ_THREAD_ANNOTATION_ATTRIBUTE__(locks_excluded(__VA_ARGS__))

#define HASJ_ASSERT_CAPABILITY(x) \
  HASJ_THREAD_ANNOTATION_ATTRIBUTE__(assert_capability(x))

#define HASJ_RETURN_CAPABILITY(x) \
  HASJ_THREAD_ANNOTATION_ATTRIBUTE__(lock_returned(x))

#define HASJ_NO_THREAD_SAFETY_ANALYSIS \
  HASJ_THREAD_ANNOTATION_ATTRIBUTE__(no_thread_safety_analysis)

#endif  // HASJ_COMMON_THREAD_ANNOTATIONS_H_
