#ifndef HASJ_COMMON_MACROS_H_
#define HASJ_COMMON_MACROS_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>

// HASJ_CHECK(cond): always-on invariant check. Prints the failing condition
// with its location and aborts. Used for programmer errors; recoverable
// conditions go through Status instead.
#define HASJ_CHECK(cond)                                                     \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::fprintf(stderr, "HASJ_CHECK failed: %s at %s:%d\n", #cond,        \
                   __FILE__, __LINE__);                                      \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

// HASJ_DCHECK(cond): debug-only invariant check, compiled out in NDEBUG
// builds so it can guard hot paths. The condition stays odr-used (but never
// evaluated) in NDEBUG so variables referenced only by the check do not
// trip -Wunused under -Werror in Release.
#ifdef NDEBUG
#define HASJ_DCHECK(cond)   \
  do {                      \
    if (false) (void)(cond); \
  } while (0)
#else
#define HASJ_DCHECK(cond) HASJ_CHECK(cond)
#endif

// HASJ_CHECK_OK(expr): expr must yield an OK Status (or a Result whose
// status is OK); prints the status and aborts otherwise. The canonical way
// to consume a [[nodiscard]] Status that is not allowed to fail.
#define HASJ_CHECK_OK(expr)                                                \
  do {                                                                     \
    const auto& hasj_status_ok_ = (expr);                                  \
    if (!hasj_status_ok_.ok()) {                                           \
      std::fprintf(stderr, "HASJ_CHECK_OK failed: %s at %s:%d\n",          \
                   ::hasj::internal::StatusToCString(hasj_status_ok_),     \
                   __FILE__, __LINE__);                                    \
      std::abort();                                                        \
    }                                                                      \
  } while (0)

// HASJ_ASSIGN_OR_RETURN(lhs, expr): evaluates expr (a Result<T>); on error
// returns the error Status from the enclosing function, otherwise
// move-assigns the value into lhs. lhs may be a declaration
// (`HASJ_ASSIGN_OR_RETURN(auto v, Parse(...))`).
#define HASJ_ASSIGN_OR_RETURN(lhs, expr)                           \
  HASJ_ASSIGN_OR_RETURN_IMPL_(                                     \
      HASJ_MACRO_CONCAT_(hasj_result_, __LINE__), lhs, expr)

#define HASJ_ASSIGN_OR_RETURN_IMPL_(result, lhs, expr) \
  auto result = (expr);                                \
  if (!result.ok()) return result.status();            \
  lhs = std::move(result).value()

#define HASJ_MACRO_CONCAT_INNER_(a, b) a##b
#define HASJ_MACRO_CONCAT_(a, b) HASJ_MACRO_CONCAT_INNER_(a, b)

#define HASJ_PREDICT_FALSE(x) (__builtin_expect(false || (x), false))
#define HASJ_PREDICT_TRUE(x) (__builtin_expect(false || (x), true))

namespace hasj::internal {

// Renders a Status or Result<T> for HASJ_CHECK_OK without macros.h needing
// to include status.h (status.h includes macros.h).
template <typename StatusLike>
const char* StatusToCString(const StatusLike& s) {
  static thread_local std::string buffer;
  if constexpr (requires { s.ToString(); }) {
    buffer = s.ToString();
  } else {
    buffer = s.status().ToString();
  }
  return buffer.c_str();
}

}  // namespace hasj::internal

#endif  // HASJ_COMMON_MACROS_H_
