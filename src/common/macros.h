#ifndef HASJ_COMMON_MACROS_H_
#define HASJ_COMMON_MACROS_H_

#include <cstdio>
#include <cstdlib>

// HASJ_CHECK(cond): always-on invariant check. Prints the failing condition
// with its location and aborts. Used for programmer errors; recoverable
// conditions go through Status instead.
#define HASJ_CHECK(cond)                                                     \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::fprintf(stderr, "HASJ_CHECK failed: %s at %s:%d\n", #cond,        \
                   __FILE__, __LINE__);                                      \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

// HASJ_DCHECK(cond): debug-only invariant check, compiled out in NDEBUG
// builds so it can guard hot paths.
#ifdef NDEBUG
#define HASJ_DCHECK(cond) \
  do {                    \
  } while (0)
#else
#define HASJ_DCHECK(cond) HASJ_CHECK(cond)
#endif

#define HASJ_PREDICT_FALSE(x) (__builtin_expect(false || (x), false))
#define HASJ_PREDICT_TRUE(x) (__builtin_expect(false || (x), true))

#endif  // HASJ_COMMON_MACROS_H_
