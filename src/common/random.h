#ifndef HASJ_COMMON_RANDOM_H_
#define HASJ_COMMON_RANDOM_H_

#include <cmath>
#include <cstdint>

#include "common/macros.h"

namespace hasj {

// Deterministic, seedable PRNG (xoshiro256** seeded via SplitMix64).
// Every randomized component of the library (dataset generation, property
// tests) takes an explicit seed so runs are reproducible bit-for-bit.
class Rng {
 public:
  explicit Rng(uint64_t seed) {
    // SplitMix64 expansion of the seed into the xoshiro state.
    uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      s = z ^ (z >> 31);
    }
  }

  // Uniform 64-bit value.
  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform double in [0, 1).
  double NextDouble() { return static_cast<double>(Next() >> 11) * 0x1.0p-53; }

  // Uniform double in [lo, hi).
  double Uniform(double lo, double hi) { return lo + (hi - lo) * NextDouble(); }

  // Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    HASJ_DCHECK(lo <= hi);
    const uint64_t range = static_cast<uint64_t>(hi - lo) + 1;
    if (range == 0) return static_cast<int64_t>(Next());  // full 64-bit range
    return lo + static_cast<int64_t>(Next() % range);
  }

  // True with probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

  // Standard normal via Box-Muller (one value per call; simple and exact
  // enough for synthetic data generation).
  double Normal() {
    double u1 = NextDouble();
    double u2 = NextDouble();
    while (u1 <= 1e-300) u1 = NextDouble();
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.28318530717958647692 * u2);
  }

  double Normal(double mean, double stddev) { return mean + stddev * Normal(); }

  // Log-normal: exp(N(mu, sigma)). Used for heavy-tailed vertex counts.
  double LogNormal(double mu, double sigma) { return std::exp(Normal(mu, sigma)); }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t state_[4];
};

}  // namespace hasj

#endif  // HASJ_COMMON_RANDOM_H_
