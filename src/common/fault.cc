#include "common/fault.h"

#include <string>

#include "common/macros.h"

namespace hasj {
namespace {

// SplitMix64 finalizer (same mixer as common/random.h uses for seeding):
// full-avalanche, so consecutive ordinals decorrelate completely.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

Status MakeFaultStatus(StatusCode code, FaultSite site, int64_t ordinal) {
  std::string msg = "injected fault at ";
  msg += FaultSiteName(site);
  msg += " #";
  msg += std::to_string(ordinal);
  return Status(code, std::move(msg));
}

}  // namespace

const char* FaultSiteName(FaultSite site) {
  switch (site) {
    case FaultSite::kFramebufferAlloc:
      return "framebuffer-alloc";
    case FaultSite::kRenderPass:
      return "render-pass";
    case FaultSite::kScanReadback:
      return "scan-readback";
    case FaultSite::kBatchFill:
      return "batch-fill";
    case FaultSite::kPoolTask:
      return "pool-task";
    case FaultSite::kDatasetLoad:
      return "dataset-load";
  }
  return "unknown";
}

FaultPlan FaultPlan::Probability(double p) {
  FaultPlan plan;
  plan.probability = p;
  return plan;
}

FaultPlan FaultPlan::EveryNth(int64_t n) {
  FaultPlan plan;
  plan.every_nth = n;
  return plan;
}

FaultPlan FaultPlan::OneShot(int64_t at) {
  FaultPlan plan;
  plan.one_shot_at = at;
  return plan;
}

FaultPlan FaultPlan::Burst(int64_t start, int64_t len) {
  FaultPlan plan;
  plan.burst_start = start;
  plan.burst_len = len;
  return plan;
}

void FaultInjector::SetPlan(FaultSite site, const FaultPlan& plan) {
  HASJ_CHECK(plan.probability >= 0.0 && plan.probability <= 1.0);
  sites_[static_cast<int>(site)].plan = plan;
}

const FaultPlan& FaultInjector::plan(FaultSite site) const {
  return sites_[static_cast<int>(site)].plan;
}

bool FaultInjector::WouldFire(FaultSite site, int64_t ordinal) const {
  const FaultPlan& plan = sites_[static_cast<int>(site)].plan;
  if (plan.every_nth > 0 && ordinal % plan.every_nth == 0) return true;
  if (plan.one_shot_at > 0 && ordinal == plan.one_shot_at) return true;
  if (plan.burst_len > 0 && ordinal >= plan.burst_start &&
      ordinal < plan.burst_start + plan.burst_len) {
    return true;
  }
  if (plan.probability > 0.0) {
    if (plan.probability >= 1.0) return true;
    // Decision is a pure function of (seed, site, ordinal): hash to a
    // uniform in [0, 1) with 53 random bits, the full double mantissa.
    const uint64_t h = Mix64(seed_ ^ Mix64(static_cast<uint64_t>(site) * 0x632be59bd9b4e019ULL +
                                           static_cast<uint64_t>(ordinal)));
    const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
    if (u < plan.probability) return true;
  }
  return false;
}

Status FaultInjector::Check(FaultSite site) {
  SiteState& s = sites_[static_cast<int>(site)];
  const int64_t ordinal = s.checks.fetch_add(1, std::memory_order_relaxed) + 1;
  if (HASJ_PREDICT_FALSE(WouldFire(site, ordinal))) {
    s.fired.fetch_add(1, std::memory_order_relaxed);
    return MakeFaultStatus(s.plan.code, site, ordinal);
  }
  return Status::Ok();
}

int64_t FaultInjector::checks(FaultSite site) const {
  return sites_[static_cast<int>(site)].checks.load(std::memory_order_relaxed);
}

int64_t FaultInjector::fired(FaultSite site) const {
  return sites_[static_cast<int>(site)].fired.load(std::memory_order_relaxed);
}

int64_t FaultInjector::total_fired() const {
  int64_t total = 0;
  for (const SiteState& s : sites_) {
    total += s.fired.load(std::memory_order_relaxed);
  }
  return total;
}

void FaultInjector::ResetCounts() {
  for (SiteState& s : sites_) {
    s.checks.store(0, std::memory_order_relaxed);
    s.fired.store(0, std::memory_order_relaxed);
  }
}

CircuitBreaker::CircuitBreaker(int fault_threshold, int64_t reprobe_pairs)
    : fault_threshold_(fault_threshold), reprobe_pairs_(reprobe_pairs) {
  HASJ_CHECK(fault_threshold >= 1);
  HASJ_CHECK(reprobe_pairs >= 1);
}

const char* CircuitBreaker::StateName(State state) {
  switch (state) {
    case State::kClosed:
      return "closed";
    case State::kOpen:
      return "open";
    case State::kHalfOpen:
      return "half-open";
  }
  return "unknown";
}

void CircuitBreaker::MoveTo(State next) {
  if (state_ == next) return;
  if (next == State::kOpen) ++opens_;
  state_ = next;
  transition_pending_ = true;
}

bool CircuitBreaker::Allow() {
  switch (state_) {
    case State::kClosed:
    case State::kHalfOpen:
      return true;
    case State::kOpen:
      if (++skipped_pairs_ >= reprobe_pairs_) {
        MoveTo(State::kHalfOpen);
        return true;  // this pair is the re-probe
      }
      return false;
  }
  return true;
}

void CircuitBreaker::RecordSuccess() {
  consecutive_faults_ = 0;
  if (state_ == State::kHalfOpen) MoveTo(State::kClosed);
}

void CircuitBreaker::RecordFault() {
  if (state_ == State::kHalfOpen) {
    skipped_pairs_ = 0;
    consecutive_faults_ = 0;
    MoveTo(State::kOpen);
    return;
  }
  if (state_ == State::kClosed && ++consecutive_faults_ >= fault_threshold_) {
    skipped_pairs_ = 0;
    consecutive_faults_ = 0;
    MoveTo(State::kOpen);
  }
}

bool CircuitBreaker::ConsumeTransition() {
  bool pending = transition_pending_;
  transition_pending_ = false;
  return pending;
}

}  // namespace hasj
