#ifndef HASJ_COMMON_STOPWATCH_H_
#define HASJ_COMMON_STOPWATCH_H_

#include <chrono>

namespace hasj {

// Wall-clock stopwatch. The paper measures per-stage computational cost with
// wall-clock time (§4.1.1); query pipelines use this to attribute cost to
// MBR filtering / intermediate filtering / geometry comparison.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  // Seconds elapsed since construction or last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace hasj

#endif  // HASJ_COMMON_STOPWATCH_H_
