#ifndef HASJ_COMMON_THREAD_POOL_H_
#define HASJ_COMMON_THREAD_POOL_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace hasj {

// Fixed-size pool of worker threads driving a chunked parallel-for: the
// index range [0, n) is split into contiguous chunks handed out through a
// shared atomic cursor (no work stealing, no per-item locking), and the
// calling thread participates as worker 0, so a pool of size 1 executes
// the loop inline with no worker threads and no synchronization.
//
// The body may run concurrently on different workers, but invocations for
// one worker index are serial, so per-worker state (a tester, a scratch
// buffer) needs no locking. Chunk-to-worker assignment is load-dependent
// and therefore nondeterministic; callers that need deterministic output
// write results into per-index slots and gather them afterwards (see
// core::RefinementExecutor).
//
// Only one ParallelFor may run on a pool at a time (not reentrant: the
// body must not call back into the same pool).
class ThreadPool {
 public:
  // body(begin, end, worker): half-open index chunk, worker in
  // [0, num_threads).
  using Body = std::function<void(int64_t, int64_t, int)>;

  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return num_threads_; }

  // Runs body over [0, n) in chunks of at most `grain` indices; returns
  // once every chunk has completed (never deadlocks Wait-side even when a
  // chunk throws). A body exception is caught at the chunk boundary — the
  // worker survives and keeps draining chunks — and surfaces here as
  // kInternal carrying the first exception's message.
  [[nodiscard]] Status ParallelFor(int64_t n, int64_t grain, const Body& body);

  // Resolves a requested thread count the way the query options fields do:
  // 0 = hardware concurrency, anything positive is taken as-is.
  static int ResolveThreadCount(int requested);

  // Per-worker queue wait of the most recent ParallelFor: microseconds from
  // job publication to each worker picking up its first chunk (worker 0 is
  // the caller and always reads 0). The pool itself stays free of any
  // metrics dependency; core::RefinementExecutor feeds these into the
  // obs registry. Valid only between ParallelFor calls.
  //
  // Invariant (unanalyzed read of wait_us_): workers write wait_us_ only
  // under mu_ while a job is running, and ParallelFor returns only after
  // every worker has finished the job (done_cv_ handshake). Between
  // ParallelFor calls the pool is quiescent, so this lock-free read cannot
  // race — a contract the caller carries ("valid only between ParallelFor
  // calls"), not one the analysis can express.
  const std::vector<double>& last_wait_us() const
      HASJ_NO_THREAD_SAFETY_ANALYSIS {
    return wait_us_;
  }

 private:
  void WorkerLoop(int worker);
  // Drains chunks of the current job. The job parameters are read under
  // mu_ by the caller (WorkerLoop / ParallelFor) and passed by value, so
  // this hot loop touches no guarded state — only the atomic cursor.
  void RunChunks(int worker, const Body& body, int64_t n, int64_t grain);

  const int num_threads_;
  std::vector<std::thread> workers_;  // lint:allow(guarded-by-coverage): written only in the constructor and joined in the destructor, both quiescent by the no-concurrent-ParallelFor contract

  Mutex mu_;
  CondVar work_cv_;  // workers wait here for the next job
  CondVar done_cv_;  // ParallelFor waits here for workers
  const Body* body_ HASJ_GUARDED_BY(mu_) = nullptr;  // non-null while a job runs
  int64_t n_ HASJ_GUARDED_BY(mu_) = 0;
  int64_t grain_ HASJ_GUARDED_BY(mu_) = 1;
  std::atomic<int64_t> cursor_{0};
  // Bumped per ParallelFor to wake the workers.
  uint64_t job_ HASJ_GUARDED_BY(mu_) = 0;
  // Workers that have not finished the job yet.
  int pending_workers_ HASJ_GUARDED_BY(mu_) = 0;
  bool shutdown_ HASJ_GUARDED_BY(mu_) = false;
  std::chrono::steady_clock::time_point job_start_ HASJ_GUARDED_BY(mu_);
  // Per-worker queue wait of the last job (see last_wait_us()).
  std::vector<double> wait_us_ HASJ_GUARDED_BY(mu_);
  // First body exception message of the job.
  std::string job_error_ HASJ_GUARDED_BY(mu_);
  bool job_failed_ HASJ_GUARDED_BY(mu_) = false;
};

}  // namespace hasj

#endif  // HASJ_COMMON_THREAD_POOL_H_
