#include "common/stats.h"

#include <cmath>
#include <cstdio>

namespace hasj {

double RunningStats::stddev() const { return std::sqrt(variance()); }

std::string RunningStats::ToString() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "count=%lld min=%.6g max=%.6g mean=%.6g stddev=%.6g",
                static_cast<long long>(count_), min(), max(), mean(),
                stddev());
  return buf;
}

}  // namespace hasj
