#ifndef HASJ_COMMON_ARENA_H_
#define HASJ_COMMON_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <type_traits>
#include <vector>

namespace hasj::common {

// Bump allocator for per-batch scratch (the batch tester's tile arrays and
// row-span buffers). Reset() rewinds the cursor without releasing memory,
// so after a warm-up cycle the steady state allocates nothing — asserted
// via grow_count() by tests/property_differential_test.cc. Alloc returns
// uninitialized storage and runs no destructors, hence the
// trivially-copyable restriction.
//
// Overflow appends a fresh block (never moves live data, so pointers from
// earlier Allocs of the same cycle stay valid); Reset() coalesces a
// multi-block cycle into one block sized for the whole cycle, so the next
// cycle runs allocation-free.
class ScratchArena {
 public:
  explicit ScratchArena(size_t initial_bytes = 1 << 16)
      : next_block_bytes_(initial_bytes) {}

  // Uninitialized array of n Ts, aligned for T. Grows (and counts the
  // growth) when the current block cannot fit the request.
  template <typename T>
  T* Alloc(size_t n) {
    static_assert(std::is_trivially_copyable_v<T> &&
                      std::is_trivially_destructible_v<T>,
                  "ScratchArena runs no constructors or destructors");
    return reinterpret_cast<T*>(AllocBytes(n * sizeof(T), alignof(T)));
  }

  // Zero-initialized variant for the verdict/flag arrays.
  template <typename T>
  T* AllocZeroed(size_t n) {
    T* out = Alloc<T>(n);
    std::memset(static_cast<void*>(out), 0, n * sizeof(T));
    return out;
  }

  // Rewinds the cursor; capacity is retained. A cycle that overflowed into
  // extra blocks is coalesced into one block big enough for everything it
  // used, so one warm-up cycle reaches the steady state.
  void Reset() {
    if (blocks_.size() > 1) {
      size_t total = 0;
      for (const Block& b : blocks_) total += b.bytes;
      blocks_.clear();
      AppendBlock(total);
    }
    cursor_ = 0;
  }

  // Number of times Alloc had to obtain memory from the system. Stable
  // across Reset(); the zero-steady-state-allocation assertion watches it.
  int64_t grow_count() const { return grow_count_; }

  size_t capacity_bytes() const {
    size_t total = 0;
    for (const Block& b : blocks_) total += b.bytes;
    return total;
  }

 private:
  struct Block {
    std::unique_ptr<char[]> data;
    size_t bytes = 0;
  };

  char* AllocBytes(size_t bytes, size_t align) {
    if (!blocks_.empty()) {
      Block& back = blocks_.back();
      const size_t offset = (cursor_ + align - 1) & ~(align - 1);
      if (offset + bytes <= back.bytes) {
        cursor_ = offset + bytes;
        return back.data.get() + offset;
      }
    }
    size_t want = next_block_bytes_;
    while (want < bytes + align) want *= 2;
    AppendBlock(want);
    const size_t offset = (size_t{0} + align - 1) & ~(align - 1);
    cursor_ = offset + bytes;
    return blocks_.back().data.get() + offset;
  }

  void AppendBlock(size_t bytes) {
    Block b;
    b.data.reset(new char[bytes]);
    b.bytes = bytes;
    blocks_.push_back(std::move(b));
    next_block_bytes_ = bytes * 2;
    ++grow_count_;
  }

  std::vector<Block> blocks_;
  size_t cursor_ = 0;  // offset into blocks_.back()
  size_t next_block_bytes_;
  int64_t grow_count_ = 0;
};

}  // namespace hasj::common

#endif  // HASJ_COMMON_ARENA_H_
