#ifndef HASJ_COMMON_SIMD_H_
#define HASJ_COMMON_SIMD_H_

#include <cstring>

namespace hasj::common {

// Which row-span kernel backend to run (HwConfig::simd, the bench --simd
// flag). The backends are bit-identical by contract — same tile words, same
// verdicts, same early-stop points (DESIGN.md §14) — so this knob trades
// only throughput, never decisions. kAuto resolves to the widest backend
// the CPU supports at startup; the explicit modes exist for the
// differential tests and the ablation bench.
enum class SimdMode {
  kAuto,
  kScalar,
  kAvx2,
};

// Runtime AVX2 capability. __builtin_cpu_supports checks CPUID *and* the
// OS-enabled YMM state (XCR0), so a true here means 256-bit code is safe to
// execute, not just advertised.
inline bool CpuHasAvx2() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

inline const char* SimdModeName(SimdMode mode) {
  switch (mode) {
    case SimdMode::kAuto:
      return "auto";
    case SimdMode::kScalar:
      return "scalar";
    case SimdMode::kAvx2:
      return "avx2";
  }
  return "unknown";
}

// Parses a --simd flag value; returns false on unknown names.
inline bool ParseSimdMode(const char* text, SimdMode* out) {
  if (text == nullptr) return false;
  if (std::strcmp(text, "auto") == 0) {
    *out = SimdMode::kAuto;
    return true;
  }
  if (std::strcmp(text, "scalar") == 0) {
    *out = SimdMode::kScalar;
    return true;
  }
  if (std::strcmp(text, "avx2") == 0) {
    *out = SimdMode::kAvx2;
    return true;
  }
  return false;
}

}  // namespace hasj::common

#endif  // HASJ_COMMON_SIMD_H_
