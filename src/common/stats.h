#ifndef HASJ_COMMON_STATS_H_
#define HASJ_COMMON_STATS_H_

#include <cstdint>
#include <limits>
#include <string>

namespace hasj {

// Streaming count/min/max/mean/variance accumulator (Welford). Used for
// dataset statistics (Table 2) and benchmark summaries.
class RunningStats {
 public:
  RunningStats() = default;

  void Add(double x) {
    ++count_;
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    sum_ += x;
  }

  int64_t count() const { return count_; }
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  double sum() const { return sum_; }
  double variance() const {
    return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
  }
  double stddev() const;

  // "count=… min=… max=… mean=… stddev=…" for logs.
  std::string ToString() const;

 private:
  int64_t count_ = 0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
};

}  // namespace hasj

#endif  // HASJ_COMMON_STATS_H_
