#include "common/thread_pool.h"

#include <algorithm>
#include <exception>

#include "common/macros.h"

namespace hasj {

ThreadPool::ThreadPool(int num_threads) : num_threads_(num_threads) {
  HASJ_CHECK(num_threads >= 1);
  wait_us_.resize(static_cast<size_t>(num_threads), 0.0);
  workers_.reserve(static_cast<size_t>(num_threads - 1));
  for (int w = 1; w < num_threads; ++w) {
    workers_.emplace_back([this, w] { WorkerLoop(w); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

int ThreadPool::ResolveThreadCount(int requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

Status ThreadPool::ParallelFor(int64_t n, int64_t grain, const Body& body) {
  if (n <= 0) return Status::Ok();
  HASJ_CHECK(grain >= 1);
  if (workers_.empty()) {
    // One pool thread = the caller: chunking collapses to a single inline
    // call, with the same catch boundary as the worker path.
    try {
      body(0, n, 0);
    } catch (const std::exception& e) {
      return Status::Internal(e.what());
    } catch (...) {
      return Status::Internal("non-std exception in ParallelFor body");
    }
    return Status::Ok();
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    HASJ_CHECK(body_ == nullptr);  // ParallelFor is not reentrant
    body_ = &body;
    n_ = n;
    grain_ = grain;
    cursor_.store(0, std::memory_order_relaxed);
    pending_workers_ = static_cast<int>(workers_.size());
    std::fill(wait_us_.begin(), wait_us_.end(), 0.0);
    job_failed_ = false;
    job_error_.clear();
    job_start_ = std::chrono::steady_clock::now();
    ++job_;
  }
  work_cv_.notify_all();
  RunChunks(0);  // the caller is worker 0
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&] { return pending_workers_ == 0; });
  body_ = nullptr;
  return job_failed_ ? Status::Internal(job_error_) : Status::Ok();
}

void ThreadPool::WorkerLoop(int worker) {
  uint64_t last_job = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] { return shutdown_ || job_ != last_job; });
      if (shutdown_) return;
      last_job = job_;
      wait_us_[static_cast<size_t>(worker)] =
          std::chrono::duration<double, std::micro>(
              std::chrono::steady_clock::now() - job_start_)
              .count();
    }
    RunChunks(worker);
    {
      std::lock_guard<std::mutex> lock(mu_);
      --pending_workers_;
    }
    done_cv_.notify_one();
  }
}

void ThreadPool::RunChunks(int worker) {
  // n_/grain_/body_ are published before the job counter bump under mu_,
  // which every worker re-reads under mu_ before getting here.
  for (;;) {
    const int64_t begin = cursor_.fetch_add(grain_, std::memory_order_relaxed);
    if (begin >= n_) return;
    // The catch boundary is the chunk: a throwing body must neither kill
    // the worker thread (the pool would deadlock on the next job) nor skip
    // the pending-worker bookkeeping that ParallelFor's wait depends on.
    // The worker keeps draining chunks; the first message wins.
    try {
      (*body_)(begin, std::min(begin + grain_, n_), worker);
    } catch (const std::exception& e) {
      std::lock_guard<std::mutex> lock(mu_);
      if (!job_failed_) {
        job_failed_ = true;
        job_error_ = e.what();
      }
    } catch (...) {
      std::lock_guard<std::mutex> lock(mu_);
      if (!job_failed_) {
        job_failed_ = true;
        job_error_ = "non-std exception in ParallelFor body";
      }
    }
  }
}

}  // namespace hasj
