#include "common/thread_pool.h"

#include <algorithm>
#include <exception>

#include "common/macros.h"

namespace hasj {

ThreadPool::ThreadPool(int num_threads) : num_threads_(num_threads) {
  HASJ_CHECK(num_threads >= 1);
  wait_us_.resize(static_cast<size_t>(num_threads), 0.0);
  workers_.reserve(static_cast<size_t>(num_threads - 1));
  for (int w = 1; w < num_threads; ++w) {
    workers_.emplace_back([this, w] { WorkerLoop(w); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(&mu_);
    shutdown_ = true;
  }
  work_cv_.NotifyAll();
  for (std::thread& t : workers_) t.join();
}

int ThreadPool::ResolveThreadCount(int requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

Status ThreadPool::ParallelFor(int64_t n, int64_t grain, const Body& body) {
  if (n <= 0) return Status::Ok();
  HASJ_CHECK(grain >= 1);
  if (workers_.empty()) {
    // One pool thread = the caller: chunking collapses to a single inline
    // call, with the same catch boundary as the worker path.
    try {
      body(0, n, 0);
    } catch (const std::exception& e) {
      return Status::Internal(e.what());
    } catch (...) {
      return Status::Internal("non-std exception in ParallelFor body");
    }
    return Status::Ok();
  }
  {
    MutexLock lock(&mu_);
    HASJ_CHECK(body_ == nullptr);  // ParallelFor is not reentrant
    body_ = &body;
    n_ = n;
    grain_ = grain;
    cursor_.store(0, std::memory_order_relaxed);
    pending_workers_ = static_cast<int>(workers_.size());
    std::fill(wait_us_.begin(), wait_us_.end(), 0.0);
    job_failed_ = false;
    job_error_.clear();
    job_start_ = std::chrono::steady_clock::now();
    ++job_;
  }
  work_cv_.NotifyAll();
  RunChunks(0, body, n, grain);  // the caller is worker 0
  MutexLock lock(&mu_);
  while (pending_workers_ != 0) done_cv_.Wait(mu_);
  body_ = nullptr;
  return job_failed_ ? Status::Internal(job_error_) : Status::Ok();
}

void ThreadPool::WorkerLoop(int worker) {
  uint64_t last_job = 0;
  for (;;) {
    // Snapshot the job parameters under mu_ so the chunk loop below never
    // touches guarded state: ParallelFor publishes body_/n_/grain_ before
    // bumping job_, and cannot change them again until every worker has
    // reported done.
    const Body* body = nullptr;
    int64_t n = 0;
    int64_t grain = 1;
    {
      MutexLock lock(&mu_);
      while (!shutdown_ && job_ == last_job) work_cv_.Wait(mu_);
      if (shutdown_) return;
      last_job = job_;
      body = body_;
      n = n_;
      grain = grain_;
      wait_us_[static_cast<size_t>(worker)] =
          std::chrono::duration<double, std::micro>(
              std::chrono::steady_clock::now() - job_start_)
              .count();
    }
    RunChunks(worker, *body, n, grain);
    {
      MutexLock lock(&mu_);
      --pending_workers_;
    }
    done_cv_.NotifyOne();
  }
}

void ThreadPool::RunChunks(int worker, const Body& body, int64_t n,
                           int64_t grain) {
  for (;;) {
    const int64_t begin = cursor_.fetch_add(grain, std::memory_order_relaxed);
    if (begin >= n) return;
    // The catch boundary is the chunk: a throwing body must neither kill
    // the worker thread (the pool would deadlock on the next job) nor skip
    // the pending-worker bookkeeping that ParallelFor's wait depends on.
    // The worker keeps draining chunks; the first message wins.
    try {
      body(begin, std::min(begin + grain, n), worker);
    } catch (const std::exception& e) {
      MutexLock lock(&mu_);
      if (!job_failed_) {
        job_failed_ = true;
        job_error_ = e.what();
      }
    } catch (...) {
      MutexLock lock(&mu_);
      if (!job_failed_) {
        job_failed_ = true;
        job_error_ = "non-std exception in ParallelFor body";
      }
    }
  }
}

}  // namespace hasj
