#ifndef HASJ_COMMON_CANCEL_H_
#define HASJ_COMMON_CANCEL_H_

#include <atomic>
#include <chrono>

#include "common/status.h"

namespace hasj {

// Cooperative cancellation flag. The issuer calls Cancel() from any thread;
// query code polls cancelled() at refinement-batch boundaries (DESIGN.md
// §11) and returns its partial result with kDeadlineExceeded. Reusable
// across queries via Reset().
//
// Ordering contract (DESIGN.md §13): the flag is a pure boolean signal with
// no payload — no data is published through it, and the poll sites only
// decide "keep going or stop". memory_order_relaxed is therefore explicit
// and deliberate: a stale read costs at most one extra poll stride of work,
// which the deadline-overshoot bound already allows for.
class CancelToken {
 public:
  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }
  void Reset() { cancelled_.store(false, std::memory_order_relaxed); }
  [[nodiscard]] bool cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<bool> cancelled_{false};
};

// A query's latency budget, resolved once at pipeline entry from
// HwConfig::deadline_ms + HwConfig::cancel. Inactive (the common case) when
// neither is set: Expired() is then a single bool test. Checks are
// cooperative — the pipelines and RefinementExecutor poll at stage and
// chunk boundaries, so a long individual pair can overshoot the budget by
// one pair's worth of work, never by more.
class QueryDeadline {
 public:
  QueryDeadline() = default;  // inactive

  static QueryDeadline Start(double deadline_ms, const CancelToken* cancel) {
    QueryDeadline d;
    d.deadline_ms_ = deadline_ms;
    d.cancel_ = cancel;
    d.active_ = deadline_ms > 0.0 || cancel != nullptr;
    if (deadline_ms > 0.0) d.start_ = std::chrono::steady_clock::now();
    return d;
  }

  [[nodiscard]] bool active() const { return active_; }

  [[nodiscard]] bool Expired() const {
    if (!active_) return false;
    if (cancel_ != nullptr && cancel_->cancelled()) return true;
    if (deadline_ms_ > 0.0) {
      const auto elapsed = std::chrono::steady_clock::now() - start_;
      return std::chrono::duration<double, std::milli>(elapsed).count() >
             deadline_ms_;
    }
    return false;
  }

  // The status a truncated query reports. Cancellation shares the
  // kDeadlineExceeded code: both mean "budget gone, result is a prefix".
  [[nodiscard]] Status ToStatus() const {
    if (cancel_ != nullptr && cancel_->cancelled()) {
      return Status::DeadlineExceeded("query cancelled");
    }
    return Status::DeadlineExceeded("query deadline exceeded");
  }

 private:
  std::chrono::steady_clock::time_point start_{};
  double deadline_ms_ = 0.0;
  const CancelToken* cancel_ = nullptr;
  bool active_ = false;
};

}  // namespace hasj

#endif  // HASJ_COMMON_CANCEL_H_
