#ifndef HASJ_COMMON_MUTEX_H_
#define HASJ_COMMON_MUTEX_H_

// lint:allow(naked-mutex): this header IS the blessed wrapper over the raw
// std primitives; everything else goes through the annotated types below.

#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#include "common/thread_annotations.h"

namespace hasj {

// Annotated locking vocabulary for the whole tree (DESIGN.md §13).
//
// Every lock in the system is one of these wrappers, and every piece of
// state a lock protects carries HASJ_GUARDED_BY naming it, so Clang Thread
// Safety Analysis can prove at compile time that no guarded field is
// touched without its lock and no lock is taken twice. The naked-mutex lint
// rule (scripts/lint_hasj.py) rejects raw std::mutex / std::shared_mutex /
// std::lock_guard / std::condition_variable outside this header, which
// keeps future locking sites (the mutable R*-tree, the query server) inside
// the analyzed vocabulary by construction.
//
// The wrappers add no state and no branches over the std primitives; under
// a non-clang compiler the annotation macros expand to nothing and the
// whole header is a zero-cost rename.

// Exclusive-only capability over std::mutex.
class HASJ_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() HASJ_ACQUIRE() { mu_.lock(); }
  void Unlock() HASJ_RELEASE() { mu_.unlock(); }
  [[nodiscard]] bool TryLock() HASJ_TRY_ACQUIRE(true) {
    return mu_.try_lock();
  }

  // Documents (and under clang, asserts to the analysis) that the calling
  // context holds this mutex — for branches the analysis cannot follow.
  void AssertHeld() const HASJ_ASSERT_CAPABILITY(this) {}

 private:
  friend class CondVar;
  std::mutex mu_;
};

// Reader/writer capability over std::shared_mutex. Writers use
// Lock/Unlock (or WriterMutexLock), readers ReaderLock/ReaderUnlock (or
// ReaderMutexLock). Present for the snapshot-isolated readers the dynamic
// R*-tree needs (ROADMAP); no current subsystem holds one.
class HASJ_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() HASJ_ACQUIRE() { mu_.lock(); }
  void Unlock() HASJ_RELEASE() { mu_.unlock(); }
  void ReaderLock() HASJ_ACQUIRE_SHARED() { mu_.lock_shared(); }
  void ReaderUnlock() HASJ_RELEASE_SHARED() { mu_.unlock_shared(); }

  void AssertHeld() const HASJ_ASSERT_CAPABILITY(this) {}

 private:
  std::shared_mutex mu_;
};

// RAII exclusive lock; the annotated replacement for std::lock_guard.
class HASJ_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) HASJ_ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() HASJ_RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

// RAII exclusive lock over a SharedMutex.
class HASJ_SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex* mu) HASJ_ACQUIRE(mu) : mu_(mu) {
    mu_->Lock();
  }
  ~WriterMutexLock() HASJ_RELEASE() { mu_->Unlock(); }

  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex* const mu_;
};

// RAII shared (reader) lock over a SharedMutex.
class HASJ_SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex* mu) HASJ_ACQUIRE_SHARED(mu)
      : mu_(mu) {
    mu_->ReaderLock();
  }
  ~ReaderMutexLock() HASJ_RELEASE() { mu_->ReaderUnlock(); }

  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex* const mu_;
};

// Condition variable bound to the annotated Mutex. Wait() requires the
// mutex held and holds it again on return — exactly the contract the
// analysis checks at call sites. There is deliberately no predicate-lambda
// overload: `while (!cond) cv.Wait(mu);` keeps the predicate's guarded
// reads in the calling function, where the analysis can see the lock is
// held (a lambda body is analyzed as a separate unannotated function and
// would defeat the check).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  // Atomically releases mu, blocks, and reacquires mu before returning.
  // Spurious wakeups are possible, as with any condition variable: always
  // wait in a predicate loop.
  void Wait(Mutex& mu) HASJ_REQUIRES(mu) {
    // Adopt the caller's hold for the duration of the wait, then release
    // ownership back so the unique_lock's destructor does not double-unlock
    // a mutex the annotated contract says the caller still holds.
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace hasj

#endif  // HASJ_COMMON_MUTEX_H_
