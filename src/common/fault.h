#ifndef HASJ_COMMON_FAULT_H_
#define HASJ_COMMON_FAULT_H_

#include <array>
#include <atomic>
#include <cstdint>

#include "common/status.h"

namespace hasj {

// Named injection sites (DESIGN.md §11 fault-site table). Every site maps
// to one operation class that can fail in a real deployment: off-screen
// buffer allocation, a render pass, reading coverage back, the batched
// atlas fill, a thread-pool task body, or streaming a dataset from disk.
enum class FaultSite {
  kFramebufferAlloc = 0,  // per-pair window / atlas buffer (re)allocation
  kRenderPass,            // drawing a boundary chain into the framebuffer
  kScanReadback,          // probing / reading coverage back from the buffer
  kBatchFill,             // batched tile-atlas fill pass
  kPoolTask,              // a thread-pool chunk body
  kDatasetLoad,           // streaming WKT lines from disk
};
inline constexpr int kNumFaultSites = 6;

const char* FaultSiteName(FaultSite site);

// What a site does when checked. Indices below are 1-based check ordinals
// *per site*; a default-constructed plan never fires. `code` selects which
// degradation StatusCode a firing check returns.
struct FaultPlan {
  double probability = 0.0;  // independent chance per check, in [0, 1]
  int64_t every_nth = 0;     // >0: fire when ordinal % every_nth == 0
  int64_t one_shot_at = 0;   // >0: fire exactly at this ordinal
  int64_t burst_start = 0;   // >0 with burst_len: fire for ordinals in
  int64_t burst_len = 0;     //     [burst_start, burst_start + burst_len)
  StatusCode code = StatusCode::kUnavailable;

  static FaultPlan Probability(double p);
  static FaultPlan EveryNth(int64_t n);
  static FaultPlan OneShot(int64_t at);
  static FaultPlan Burst(int64_t start, int64_t len);
};

// Deterministic, seeded fault injector. Hooked into the hardware path via
// the null-pointer-gated HwConfig::faults member exactly like metrics and
// trace: when no injector is attached the per-operation cost is one pointer
// test, and glsim can never fail (DESIGN.md §11).
//
// Determinism: each Check() atomically claims the next per-site ordinal,
// and whether that ordinal fires is a pure function of (seed, site,
// ordinal) — for probability plans via a SplitMix64 hash of the triple. The
// fired/checked sequence is therefore replayable for a fixed seed; under a
// thread pool the *assignment* of ordinals to pairs varies with the
// schedule, which is exactly why correctness must never depend on which
// pairs fault (the chaos identity property, tests/chaos_fault_test.cc).
//
// Concurrency contract (DESIGN.md §13): the injector splits into plan
// state and ordinal state. Plans (SiteState::plan) are plain data written
// only by SetPlan/ResetCounts during the configure phase — SetPlan is NOT
// synchronized against concurrent Check, so configure the injector before
// handing it to a query, like the rest of HwConfig; publication to the
// query's worker threads rides the thread-pool job handoff (the pool's
// mutex orders everything written before ParallelFor against the workers).
// Ordinals (SiteState::checks/fired) are the only cross-thread mutable
// state and are atomic with explicit relaxed ordering: each counter is an
// independent tally that publishes nothing — WouldFire reads only the
// immutable seed and plan, so no acquire/release pairing is needed.
class FaultInjector {
 public:
  explicit FaultInjector(uint64_t seed = 0) : seed_(seed) {}

  void SetPlan(FaultSite site, const FaultPlan& plan);
  const FaultPlan& plan(FaultSite site) const;

  // Claims the next ordinal for `site` and returns the plan's error Status
  // if that ordinal fires, OK otherwise. Thread-safe.
  [[nodiscard]] Status Check(FaultSite site);

  // Would ordinal `ordinal` (1-based) fire at `site`? Pure; advances
  // nothing. Exposed so tests can predict the firing sequence.
  bool WouldFire(FaultSite site, int64_t ordinal) const;

  int64_t checks(FaultSite site) const;
  int64_t fired(FaultSite site) const;
  int64_t total_fired() const;

  // Zeroes all per-site counters/ordinals; plans and seed stay.
  void ResetCounts();

  uint64_t seed() const { return seed_; }

 private:
  // Cache-line separation keeps concurrent checks on different sites (and
  // the hot fetch_add on the same site) from false sharing.
  struct alignas(64) SiteState {
    FaultPlan plan;
    std::atomic<int64_t> checks{0};
    std::atomic<int64_t> fired{0};
  };

  uint64_t seed_;
  std::array<SiteState, kNumFaultSites> sites_;
};

// Deterministic circuit breaker for a persistently failing hardware path
// (DESIGN.md §11 state machine). All transitions are counted in hardware
// attempts and skipped pairs — never wall time — so a seeded run replays
// exactly:
//
//   closed     --[fault_threshold consecutive faults]-->  open
//   open       --[reprobe_pairs pairs routed around]-->   half-open
//   half-open  --[probe succeeds]-->                      closed
//   half-open  --[probe faults]-->                        open
//
// Not thread-safe: each per-worker hardware tester owns its own breaker,
// matching the executor's per-worker tester design.
class CircuitBreaker {
 public:
  enum class State { kClosed = 0, kOpen = 1, kHalfOpen = 2 };

  CircuitBreaker(int fault_threshold, int64_t reprobe_pairs);

  // Should the next pair attempt hardware? While open, counts the skipped
  // pair and flips to half-open (allowing this pair as the probe) once
  // reprobe_pairs pairs have been routed around.
  bool Allow();

  // Outcome of a hardware attempt that Allow() admitted.
  void RecordSuccess();
  void RecordFault();

  State state() const { return state_; }
  // Total transitions into kOpen; the "breaker opened" event count.
  int64_t opens() const { return opens_; }
  // True once after any state change; callers use it to emit the
  // transition trace instant + gauge update only when something moved.
  bool ConsumeTransition();

  static const char* StateName(State state);

 private:
  void MoveTo(State next);

  int fault_threshold_;
  int64_t reprobe_pairs_;
  State state_ = State::kClosed;
  int consecutive_faults_ = 0;
  int64_t skipped_pairs_ = 0;
  int64_t opens_ = 0;
  bool transition_pending_ = false;
};

}  // namespace hasj

#endif  // HASJ_COMMON_FAULT_H_
