#ifndef HASJ_COMMON_STATUS_H_
#define HASJ_COMMON_STATUS_H_

#include <optional>
#include <string>
#include <utility>

#include "common/macros.h"

namespace hasj {

// Error category for recoverable failures (parsing, IO, bad arguments).
// Programmer errors use HASJ_CHECK instead.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kInternal,
  kUnimplemented,
  // Degradation codes (DESIGN.md §11): a hardware/glsim operation that is
  // temporarily unusable (injected fault, breaker open) or out of resources.
  // Callers on the refinement path treat both as "route this pair to the
  // exact software test"; they never abort a query.
  kUnavailable,
  kResourceExhausted,
  // A query hit its HwConfig::deadline_ms budget or its CancelToken; the
  // partial result returned alongside this code is a prefix of the full
  // result set (core/refinement_executor.h gather order).
  kDeadlineExceeded,
};

// Lightweight absl::Status-alike. Copyable; OK status carries no message.
// [[nodiscard]] on the class makes every function returning a Status by
// value warn (and fail under -Werror) when the caller ignores the result —
// the contract-hardening rule the domain lint backs up for out-parameters.
class [[nodiscard]] Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  [[nodiscard]] bool ok() const { return code_ == StatusCode::kOk; }
  [[nodiscard]] StatusCode code() const { return code_; }
  [[nodiscard]] const std::string& message() const { return message_; }

  // Human-readable "CODE: message" string for logs and test failures.
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

// Result<T>: a value or an error Status. Accessing value() on an error
// aborts, mirroring absl::StatusOr semantics without exceptions.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT: implicit by design
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    HASJ_CHECK(!status_.ok());
  }

  [[nodiscard]] bool ok() const { return value_.has_value(); }

  [[nodiscard]] const Status& status() const { return status_; }

  const T& value() const& {
    HASJ_CHECK(ok());
    return *value_;
  }
  T& value() & {
    HASJ_CHECK(ok());
    return *value_;
  }
  T&& value() && {
    HASJ_CHECK(ok());
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;  // OK when a value is present
  std::optional<T> value_;
};

}  // namespace hasj

#endif  // HASJ_COMMON_STATUS_H_
