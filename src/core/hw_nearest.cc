#include "core/hw_nearest.h"

#include <utility>

#include "common/macros.h"
#include "core/paranoid.h"

namespace hasj::core {
namespace {

geom::Box SiteWindow(const std::vector<geom::Point>& sites) {
  geom::Box box = geom::Box::Empty();
  for (const geom::Point& p : sites) box.Extend(p);
  const double margin =
      0.05 * std::max({box.Width(), box.Height(), 1e-9});
  return box.Expanded(margin);
}

index::RTree SiteTree(const std::vector<geom::Point>& sites) {
  std::vector<index::RTree::Entry> entries;
  entries.reserve(sites.size());
  for (size_t i = 0; i < sites.size(); ++i) {
    entries.push_back({geom::Box(sites[i].x, sites[i].y, sites[i].x,
                                 sites[i].y),
                       static_cast<int64_t>(i)});
  }
  return index::RTree::BulkLoad(std::move(entries));
}

}  // namespace

HwNearestNeighbor::HwNearestNeighbor(std::vector<geom::Point> sites,
                                     int resolution)
    : sites_(std::move(sites)),
      diagram_(glsim::RenderVoronoi(sites_, SiteWindow(sites_), resolution)),
      tree_(SiteTree(sites_)) {
  HASJ_CHECK(!sites_.empty());
}

int64_t HwNearestNeighbor::QueryApproximate(geom::Point q) const {
  int x, y;
  diagram_.PixelOf(q, x, y);
  return diagram_.site_at(x, y);
}

int64_t HwNearestNeighbor::Query(geom::Point q) const {
  // The hinted site bounds the nearest distance from above; every site that
  // can beat it lies within that radius of q.
  const int64_t hint = QueryApproximate(q);
  const double bound =
      geom::Distance(q, sites_[static_cast<size_t>(hint)]);
  const geom::Box probe(q.x, q.y, q.x, q.y);
  int64_t best = hint;
  double best_d = bound;
  for (int64_t id : tree_.QueryWithinDistance(probe, bound)) {
    const double d = geom::Distance(q, sites_[static_cast<size_t>(id)]);
    if (d < best_d || (d == best_d && id < best)) {
      best = id;
      best_d = d;
    }
  }
  HASJ_PARANOID_ONLY(paranoid::CheckNearestResult(sites_, q, best));
  return best;
}

}  // namespace hasj::core
