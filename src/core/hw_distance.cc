#include "core/hw_distance.h"

#include <algorithm>
#include <cmath>

#include "algo/point_in_polygon.h"
#include "common/macros.h"
#include "common/stopwatch.h"
#include "core/paranoid.h"
#include "glsim/raster.h"
#include "obs/names.h"
#include "obs/perf_counters.h"
#include "obs/trace.h"

namespace hasj::core {
namespace {

constexpr float kOverlapThreshold = 0.999f;

// Expands the shorter dimension so the box is square (isotropic pixels).
geom::Box SquareUp(const geom::Box& b) {
  const double side = std::max(b.Width(), b.Height());
  const geom::Point c = b.Center();
  return geom::Box(c.x - side * 0.5, c.y - side * 0.5, c.x + side * 0.5,
                   c.y + side * 0.5);
}

}  // namespace

HwDistanceTester::HwDistanceTester(const HwConfig& config,
                                   const algo::DistanceOptions& sw_options)
    : config_(config),
      sw_options_(sw_options),
      degrade_(config),
      engine_(&glsim::RowSpanEngine::Get(config.simd)),
      ctx_(config.resolution, config.resolution),
      mask_a_(config.resolution, config.resolution),
      mask_b_(config.resolution, config.resolution) {
  HASJ_CHECK(config.resolution >= 1);
  ctx_.set_limits(config.limits);
  ctx_.set_metrics(config.metrics);
  ctx_.set_faults(config.faults);
  if (config.metrics != nullptr) {
    pair_vertices_hist_ = &config.metrics->GetHistogram(obs::kHistPairVertices);
    pixels_hist_ = &config.metrics->GetHistogram(obs::kHistPixelsColored);
    config.metrics->GetGauge(obs::kHwSimdBackend)
        .Set(engine_->mode() == common::SimdMode::kAvx2 ? 1.0 : 0.0);
  }
}

void HwDistanceTester::Plan(const geom::Polygon& p, const geom::Polygon& q,
                            double d, DistancePlan* plan) {
  HASJ_CHECK(d >= 0.0);
  ++counters_.tests;
  const int64_t total_vertices =
      static_cast<int64_t>(p.size()) + static_cast<int64_t>(q.size());
  if (pair_vertices_hist_ != nullptr) {
    pair_vertices_hist_->Record(total_vertices);
  }
  plan->ep.clear();
  plan->eq.clear();
  if (geom::MinDistance(p.Bounds(), q.Bounds()) > d) {
    ++counters_.mbr_misses;
    plan->stage = DistancePlan::Stage::kDecided;
    plan->decision = false;
    return;
  }

  // Pure software mode: same refinement without the hardware filter.
  if (!config_.enable_hw) {
    plan->stage = DistancePlan::Stage::kSoftware;
    return;
  }

  if (total_vertices <= config_.sw_threshold) {
    ++counters_.sw_threshold_skips;
    plan->stage = DistancePlan::Stage::kSoftware;
    return;
  }

  // Viewport: the smaller object's MBR expanded by d/2 (§3.2), squared up.
  // Any point within d/2 of the smaller boundary — in particular the
  // midpoint of a realizing distance pair — lands inside it.
  const bool p_smaller = p.Bounds().Area() <= q.Bounds().Area();
  const geom::Box base = (p_smaller ? p : q).Bounds().Expanded(d * 0.5);
  plan->viewport = SquareUp(base);
  const double side = std::max(plan->viewport.Width(), plan->viewport.Height());

  // Equation 1: line and point width in pixels covering a dilation of d.
  const double scale = config_.resolution / std::max(side, 1e-300);
  plan->width_px = std::max(config_.line_width, std::ceil(d * scale));
  if (plan->width_px > config_.limits.max_line_width ||
      plan->width_px > config_.limits.max_point_size) {
    ++counters_.width_fallbacks;
    plan->stage = DistancePlan::Stage::kSoftware;
    return;
  }

  // Edges whose d/2-dilation can reach the viewport (cheap conservative
  // bounding-box clip; extra edges only add pixels).
  const geom::Box clip = plan->viewport.Expanded(d * 0.5);
  for (size_t i = 0; i < p.size(); ++i) {
    if (p.edge(i).Bounds().Intersects(clip)) plan->ep.push_back(p.edge(i));
  }
  // Empty clip sets preclude a close boundary pair but not containment.
  if (plan->ep.empty()) {
    HASJ_PARANOID_ONLY(paranoid::CheckDistanceReject(
        p, q, d, plan->viewport, plan->width_px, config_));
    plan->stage = DistancePlan::Stage::kEmptyClip;
    return;
  }
  for (size_t i = 0; i < q.size(); ++i) {
    if (q.edge(i).Bounds().Intersects(clip)) plan->eq.push_back(q.edge(i));
  }
  if (plan->eq.empty()) {
    HASJ_PARANOID_ONLY(paranoid::CheckDistanceReject(
        p, q, d, plan->viewport, plan->width_px, config_));
    plan->stage = DistancePlan::Stage::kEmptyClip;
    return;
  }

  plan->stage = DistancePlan::Stage::kHardware;
}

bool HwDistanceTester::Containment(const geom::Polygon& p,
                                   const geom::Polygon& q) {
  // Containment makes the distance 0 with possibly distant boundaries, so a
  // hardware reject (boundaries not within d) does not rule it out. As in
  // the intersection tester, the O(n+m) point-in-polygon check is deferred
  // to the reject path and guarded by MBR nesting; the software distance
  // test handles containment itself.
  Stopwatch watch;
  const bool pip =
      (q.Bounds().Contains(p.Bounds()) && PolygonContains(q, p.vertex(0))) ||
      (p.Bounds().Contains(q.Bounds()) && PolygonContains(p, q.vertex(0)));
  counters_.pip_ms += watch.ElapsedMillis();
  if (pip) ++counters_.pip_hits;
  return pip;
}

bool HwDistanceTester::BoundariesWithin(const geom::Polygon& p,
                                        const geom::Polygon& q, double d) {
  ++counters_.sw_tests;
  // Per-pair PMU scope; no trace span — one span per pair would drown the
  // trace, and the pipeline already emits per-stage spans.
  obs::PmuScope pmu(config_.pmu, obs::PmuStage::kExactCompare);
  Stopwatch watch;
  const bool result = algo::BoundariesWithinDistance(p, q, d, sw_options_);
  counters_.sw_ms += watch.ElapsedMillis();
  return result;
}

bool HwDistanceTester::FinishSurvivor(const geom::Polygon& p,
                                      const geom::Polygon& q, double d) {
  return BoundariesWithin(p, q, d) || Containment(p, q);
}

bool HwDistanceTester::FinishReject(const geom::Polygon& p,
                                    const geom::Polygon& q,
                                    [[maybe_unused]] double d,
                                    [[maybe_unused]] const DistancePlan& plan) {
  ++counters_.hw_rejects;
  HASJ_PARANOID_ONLY(paranoid::CheckDistanceReject(
      p, q, d, plan.viewport, plan.width_px, config_));
  return Containment(p, q);
}

bool HwDistanceTester::FinishEmptyClip(const geom::Polygon& p,
                                       const geom::Polygon& q) {
  return Containment(p, q);
}

bool HwDistanceTester::Test(const geom::Polygon& p, const geom::Polygon& q,
                            double d) {
  Plan(p, q, d, &plan_scratch_);
  switch (plan_scratch_.stage) {
    case DistancePlan::Stage::kDecided:
      return plan_scratch_.decision;
    case DistancePlan::Stage::kSoftware:
      return FinishSurvivor(p, q, d);
    case DistancePlan::Stage::kEmptyClip:
      return FinishEmptyClip(p, q);
    case DistancePlan::Stage::kHardware:
      break;
  }

  bool overlap = false;
  if (const Status hw = HwStep(plan_scratch_, &overlap); !hw.ok()) {
    return FinishFallback(p, q, d);
  }
  if (!overlap) return FinishReject(p, q, d, plan_scratch_);
  return FinishSurvivor(p, q, d);
}

Status HwDistanceTester::HwStep(const DistancePlan& plan, bool* overlap) {
  if (HASJ_PREDICT_FALSE(!degrade_.Allow())) {
    return Status::Unavailable("hw breaker open");
  }
  Stopwatch watch;
  Status status = HwDilatedBoundariesOverlap(plan.ep, plan.eq, plan.viewport,
                                             plan.width_px, overlap);
  if (HASJ_PREDICT_FALSE(!status.ok())) {
    NoteHwFault();
    return status;
  }
  ++counters_.hw_tests;
  counters_.hw_ms += watch.ElapsedMillis();
  degrade_.Note(true, &counters_);
  return status;
}

void HwDistanceTester::NoteHwFault() {
  ++counters_.hw_faults;
  degrade_.Note(false, &counters_);
  if (config_.trace != nullptr) config_.trace->Instant("hw-fault", "fault");
}

bool HwDistanceTester::FinishFallback(const geom::Polygon& p,
                                      const geom::Polygon& q, double d) {
  ++counters_.hw_fallback_pairs;
  return FinishSurvivor(p, q, d);
}

bool HwDistanceTester::PolygonContains(const geom::Polygon& outer,
                                       geom::Point pt) {
  if (outer.size() < 64) return algo::ContainsPoint(outer, pt);
  auto it = locators_.find(&outer);
  if (it == locators_.end()) {
    it = locators_.emplace(&outer, algo::PointLocator(outer)).first;
  }
  return it->second.Contains(pt);
}

Status HwDistanceTester::HwDilatedBoundariesOverlap(
    const std::vector<geom::Segment>& ep, const std::vector<geom::Segment>& eq,
    const geom::Box& viewport, double width_px, bool* overlap) {
  ctx_.SetDataRect(viewport);
  if (Status s = ctx_.BeginRender(); !s.ok()) return s;
  const int res = config_.resolution;

  if (config_.backend == HwBackend::kBitmask) {
    // Draw the smaller edge set (it saturates the mask anyway when dense)
    // and probe with the larger one, stopping at the first shared pixel.
    const std::vector<geom::Segment>& first = ep.size() <= eq.size() ? ep : eq;
    const std::vector<geom::Segment>& second = ep.size() <= eq.size() ? eq : ep;

    // Fill and probe run through the row-span kernel engine (DESIGN.md
    // §14). Saturation stops at primitive granularity — identical masks,
    // since unset == 0 means every pixel is already set — and the cap
    // fills are guarded the same way so the span counters are a
    // deterministic function of the edge chains under every backend.
    mask_a_.Clear();
    int64_t unset = static_cast<int64_t>(res) * res;
    const auto fill = [&](bool built) {
      if (!built) return;
      const glsim::FillResult fr = mask_a_.FillSpans(*engine_, &spans_);
      counters_.fill_spans += fr.spans;
      unset -= fr.newly_set;
    };
    // Chained edges share endpoints; draw each capsule end cap once.
    {
      obs::PmuScope fill_pmu(config_.pmu, obs::PmuStage::kHwFill);
      for (size_t i = 0; i < first.size() && unset > 0; ++i) {
        const geom::Point a = ctx_.ToWindow(first[i].a);
        const geom::Point b = ctx_.ToWindow(first[i].b);
        fill(glsim::ComputeLineAASpans(a, b, width_px, res, res, &spans_));
        if (unset > 0 && (i == 0 || !(first[i - 1].b == first[i].a))) {
          fill(glsim::ComputeWidePointSpans(a, width_px, res, res, &spans_));
        }
        if (unset > 0) {
          fill(glsim::ComputeWidePointSpans(b, width_px, res, res, &spans_));
        }
      }
    }
    if (pixels_hist_ != nullptr) {
      pixels_hist_->Record(static_cast<int64_t>(res) * res - unset);
    }
    if (unset == 0) {
      ++counters_.fill_saturation_stops;
      if (config_.trace != nullptr) {
        config_.trace->Instant("hw-saturated", "hw");
      }
    }
    // The probe kernel stops at the first row with a doubly-colored pixel
    // (the shared early-stop point of the bit-identity contract).
    if (Status s = ctx_.BeginScan(); !s.ok()) return s;
    bool found = false;
    const auto probe = [&](bool built) {
      if (!built || found) return;
      const glsim::ProbeResult pr = mask_a_.ProbeSpans(*engine_, &spans_);
      counters_.scan_spans += pr.spans;
      found = pr.hit_row >= 0;
    };
    {
      obs::PmuScope scan_pmu(config_.pmu, obs::PmuStage::kHwScan);
      for (size_t i = 0; i < second.size() && !found; ++i) {
        const geom::Point a = ctx_.ToWindow(second[i].a);
        const geom::Point b = ctx_.ToWindow(second[i].b);
        probe(glsim::ComputeLineAASpans(a, b, width_px, res, res, &spans_));
        if (!found && (i == 0 || !(second[i - 1].b == second[i].a))) {
          probe(glsim::ComputeWidePointSpans(a, width_px, res, res, &spans_));
        }
        if (!found) {
          probe(glsim::ComputeWidePointSpans(b, width_px, res, res, &spans_));
        }
      }
    }
    if (found) ++counters_.scan_hit_stops;
    *overlap = found;
    return Status::Ok();
  }

  ctx_.SetLineWidth(width_px);
  ctx_.SetPointSize(width_px);
  ctx_.SetColor(glsim::Rgb{0.5f, 0.5f, 0.5f});
  const auto draw = [&](const std::vector<geom::Segment>& edges) {
    for (size_t i = 0; i < edges.size(); ++i) {
      ctx_.DrawSegment(edges[i].a, edges[i].b);
      // Chained edges share endpoints; draw each end cap once.
      if (i == 0 || !(edges[i - 1].b == edges[i].a)) {
        const geom::Point pt[1] = {edges[i].a};
        ctx_.DrawPoints(pt);
      }
      const geom::Point pt[1] = {edges[i].b};
      ctx_.DrawPoints(pt);
    }
  };
  ctx_.Clear();
  ctx_.ClearAccum();
  {
    obs::PmuScope fill_pmu(config_.pmu, obs::PmuStage::kHwFill);
    draw(ep);
    ctx_.Accum(glsim::AccumOp::kLoad, 1.0f);
  }
  obs::PmuScope scan_pmu(config_.pmu, obs::PmuStage::kHwScan);
  ctx_.Clear();
  draw(eq);
  ctx_.Accum(glsim::AccumOp::kAccum, 1.0f);
  ctx_.Accum(glsim::AccumOp::kReturn, 1.0f);

  if (Status s = ctx_.BeginScan(); !s.ok()) return s;
  if (config_.use_minmax) {
    *overlap = ctx_.Minmax().max.r >= kOverlapThreshold;
  } else {
    *overlap = ctx_.color_buffer().AnyPixelAtLeast(kOverlapThreshold);
  }
  return Status::Ok();
}

}  // namespace hasj::core
