#ifndef HASJ_CORE_HW_DISTANCE_H_
#define HASJ_CORE_HW_DISTANCE_H_

#include <unordered_map>
#include <vector>

#include "algo/point_locator.h"
#include "algo/polygon_distance.h"
#include "core/hw_config.h"
#include "geom/polygon.h"
#include "geom/segment.h"
#include "glsim/context.h"
#include "glsim/pixel_mask.h"

namespace hasj::core {

// Hardware-assisted within-distance test (the distance extension of
// Algorithm 3.1, §3.1): each polygon boundary is rendered dilated by D/2 —
// edges as anti-aliased lines of width D and vertices as wide points of
// size D (together a capsule per edge, the exact Minkowski dilation) — and
// a shared pixel is a necessary condition for the boundaries being within
// distance D.
//
// Deviations from exact paper mechanics, both conservative (see DESIGN.md):
//  * the viewport (the smaller object's MBR expanded by D/2, §3.2) is
//    squared up so pixels are isotropic and the pixel line width
//    ceil(D * resolution / side) dilates by at least D/2 in every
//    direction;
//  * when the needed width exceeds the hardware line-width limit the test
//    falls back to software, exactly as the paper's implementation does
//    (§4.4 explains the resulting degradation at large D).
class HwDistanceTester {
 public:
  explicit HwDistanceTester(const HwConfig& config = {},
                            const algo::DistanceOptions& sw_options = {});

  // Exact result: true iff the closed regions are within distance d.
  [[nodiscard]] bool Test(const geom::Polygon& p, const geom::Polygon& q, double d);

  const HwConfig& config() const { return config_; }
  const HwCounters& counters() const { return counters_; }
  void ResetCounters() { counters_ = HwCounters{}; }

 private:
  bool HwDilatedBoundariesOverlap(const std::vector<geom::Segment>& ep,
                                  const std::vector<geom::Segment>& eq,
                                  const geom::Box& viewport, double width_px);

  // Cached-locator containment; see HwIntersectionTester::PolygonContains.
  bool PolygonContains(const geom::Polygon& outer, geom::Point pt);

  HwConfig config_;
  algo::DistanceOptions sw_options_;
  HwCounters counters_;
  glsim::RenderContext ctx_;
  glsim::PixelMask mask_a_;
  glsim::PixelMask mask_b_;
  std::unordered_map<const geom::Polygon*, algo::PointLocator> locators_;
};

}  // namespace hasj::core

#endif  // HASJ_CORE_HW_DISTANCE_H_
