#ifndef HASJ_CORE_HW_DISTANCE_H_
#define HASJ_CORE_HW_DISTANCE_H_

#include <unordered_map>
#include <vector>

#include "algo/point_locator.h"
#include "algo/polygon_distance.h"
#include "common/status.h"
#include "core/degrade.h"
#include "core/hw_config.h"
#include "geom/polygon.h"
#include "geom/segment.h"
#include "glsim/context.h"
#include "glsim/pixel_mask.h"
#include "glsim/rowspan.h"
#include "obs/metrics.h"

namespace hasj::core {

// Routing decision of the within-distance refinement skeleton — the
// distance analogue of PairPlan (hw_intersection.h), likewise exposed so
// BatchHardwareTester shares the exact per-pair logic. The in-view dilated
// edge chains are part of the plan because the batch path renders them in
// two atlas passes (all first chains, then all second chains) and must not
// re-derive them differently. Vectors keep their capacity across Plan()
// calls when the same DistancePlan object is reused.
struct DistancePlan {
  enum class Stage {
    kDecided,    // decided without any test (MBR distance miss)
    kSoftware,   // skip hardware (disabled / sw_threshold / width fallback)
    kEmptyClip,  // a clip set is empty: reject path, containment only
    kHardware,   // render the dilated chains over `viewport`
  };
  Stage stage = Stage::kDecided;
  bool decision = false;  // valid for kDecided
  geom::Box viewport;     // valid for kEmptyClip / kHardware
  double width_px = 0.0;  // valid for kEmptyClip / kHardware
  // In-view dilated edges of p and q (kHardware only).
  std::vector<geom::Segment> ep;
  std::vector<geom::Segment> eq;
};

// Hardware-assisted within-distance test (the distance extension of
// Algorithm 3.1, §3.1): each polygon boundary is rendered dilated by D/2 —
// edges as anti-aliased lines of width D and vertices as wide points of
// size D (together a capsule per edge, the exact Minkowski dilation) — and
// a shared pixel is a necessary condition for the boundaries being within
// distance D.
//
// Deviations from exact paper mechanics, both conservative (see DESIGN.md):
//  * the viewport (the smaller object's MBR expanded by D/2, §3.2) is
//    squared up so pixels are isotropic and the pixel line width
//    ceil(D * resolution / side) dilates by at least D/2 in every
//    direction;
//  * when the needed width exceeds the hardware line-width limit the test
//    falls back to software, exactly as the paper's implementation does
//    (§4.4 explains the resulting degradation at large D).
class HwDistanceTester {
 public:
  explicit HwDistanceTester(const HwConfig& config = {},
                            const algo::DistanceOptions& sw_options = {});

  // Exact result: true iff the closed regions are within distance d.
  [[nodiscard]] bool Test(const geom::Polygon& p, const geom::Polygon& q, double d);

  const HwConfig& config() const { return config_; }
  const HwCounters& counters() const { return counters_; }
  void ResetCounters() { counters_ = HwCounters{}; }

  // Row-span kernel backend resolved from config.simd at construction
  // (DESIGN.md §14); the batch tester renders through the same engine.
  const glsim::RowSpanEngine& engine() const { return *engine_; }

  // Decision skeleton, exposed for BatchHardwareTester (see DistancePlan).
  // Reuses plan->ep/eq capacity; the kEmptyClip paranoid cross-check runs
  // inside Plan(), at the same program point as in the monolithic test.
  void Plan(const geom::Polygon& p, const geom::Polygon& q, double d,
            DistancePlan* plan);
  // Exact software confirmation (survivors and software-routed pairs).
  [[nodiscard]] bool FinishSurvivor(const geom::Polygon& p,
                                    const geom::Polygon& q, double d);
  // Completes a hardware reject: counts it, cross-checks in HASJ_PARANOID,
  // decides by containment alone.
  [[nodiscard]] bool FinishReject(const geom::Polygon& p,
                                  const geom::Polygon& q, double d,
                                  const DistancePlan& plan);
  // Completes the kEmptyClip reject path (containment alone; the paranoid
  // check already ran in Plan()).
  [[nodiscard]] bool FinishEmptyClip(const geom::Polygon& p,
                                     const geom::Polygon& q);

  // Hardware step of a kHardware plan with degradation routing, the
  // distance analogue of HwIntersectionTester::HwStep: breaker check,
  // fault-gated dilated render + scan; non-OK routes the pair to
  // FinishFallback (DESIGN.md §11).
  [[nodiscard]] Status HwStep(const DistancePlan& plan, bool* overlap);
  // Exact software decision for a pair whose hardware step was
  // unavailable; counted in hw_fallback_pairs.
  [[nodiscard]] bool FinishFallback(const geom::Polygon& p,
                                    const geom::Polygon& q, double d);

  // Batch-tester degradation hooks (see HwIntersectionTester).
  bool HwBatchAllowed() const { return degrade_.BatchAllowed(); }
  void NoteHwFault();
  void NoteHwSuccess() { degrade_.Note(true, &counters_); }

 private:
  [[nodiscard]] Status HwDilatedBoundariesOverlap(
      const std::vector<geom::Segment>& ep,
      const std::vector<geom::Segment>& eq, const geom::Box& viewport,
      double width_px, bool* overlap);

  // Closed-region containment of the pair, guarded by MBR nesting.
  bool Containment(const geom::Polygon& p, const geom::Polygon& q);

  // Exact software within-distance test of the boundaries, with counters.
  bool BoundariesWithin(const geom::Polygon& p, const geom::Polygon& q,
                        double d);

  // Cached-locator containment; see HwIntersectionTester::PolygonContains.
  bool PolygonContains(const geom::Polygon& outer, geom::Point pt);

  HwConfig config_;
  algo::DistanceOptions sw_options_;
  HwCounters counters_;
  HwDegrade degrade_;
  // Resolved once from config.metrics (null when metrics are off), so the
  // per-pair hot path pays a pointer test, not a registry lookup.
  obs::Histogram* pair_vertices_hist_ = nullptr;
  obs::Histogram* pixels_hist_ = nullptr;
  DistancePlan plan_scratch_;  // reused across Test() calls (edge capacity)
  const glsim::RowSpanEngine* engine_;
  glsim::RenderContext ctx_;
  glsim::PixelMask mask_a_;
  glsim::PixelMask mask_b_;
  // Per-primitive row-span scratch of the bitmask hot path (fixed array,
  // reused across calls).
  glsim::RowSpanBuffer spans_;
  std::unordered_map<const geom::Polygon*, algo::PointLocator> locators_;
};

}  // namespace hasj::core

#endif  // HASJ_CORE_HW_DISTANCE_H_
