#ifndef HASJ_CORE_HW_FILLED_H_
#define HASJ_CORE_HW_FILLED_H_

#include "algo/polygon_intersect.h"
#include "core/hw_config.h"
#include "geom/polygon.h"
#include "glsim/context.h"
#include "glsim/pixel_mask.h"

namespace hasj::core {

// The paper's §3 "general strategy" baseline: render both polygons FILLED
// and search for a doubly-colored pixel. Concave polygons must be
// triangulated in software first — the cost Algorithm 3.1 avoids by
// rendering edge chains (and the reason the paper rejects this approach);
// bench/ablation_filled quantifies the difference.
//
// Exactness is preserved the same way as in the edge-chain tester: the
// triangles are rasterized with conservative closed-cell coverage, so "no
// shared pixel" proves the regions disjoint, and survivors are confirmed
// by the exact software test. Unlike Algorithm 3.1, no point-in-polygon
// step is needed — filled rendering detects containment directly.
class HwFilledIntersectionTester {
 public:
  explicit HwFilledIntersectionTester(
      const HwConfig& config = {},
      const algo::SoftwareIntersectOptions& sw_options = {});

  // Exact result: true iff the closed regions intersect.
  [[nodiscard]] bool Test(const geom::Polygon& p, const geom::Polygon& q);

  const HwCounters& counters() const { return counters_; }
  // Time spent in software triangulation (the strategy's Achilles heel).
  double triangulate_ms() const { return triangulate_ms_; }

 private:
  bool FilledRegionsOverlap(const geom::Polygon& p, const geom::Polygon& q,
                            const geom::Box& viewport);

  HwConfig config_;
  algo::SoftwareIntersectOptions sw_options_;
  HwCounters counters_;
  double triangulate_ms_ = 0.0;
  glsim::RenderContext ctx_;
  glsim::PixelMask mask_a_;
};

}  // namespace hasj::core

#endif  // HASJ_CORE_HW_FILLED_H_
