#ifndef HASJ_CORE_HW_INTERSECTION_H_
#define HASJ_CORE_HW_INTERSECTION_H_

#include <unordered_map>

#include "algo/point_locator.h"
#include "algo/polygon_intersect.h"
#include "common/status.h"
#include "core/degrade.h"
#include "core/hw_config.h"
#include "geom/polygon.h"
#include "glsim/context.h"
#include "glsim/pixel_mask.h"
#include "glsim/rowspan.h"
#include "obs/metrics.h"

namespace hasj::core {

// Routing decision of the shared per-pair refinement skeleton: Plan()
// classifies a pair, the hardware step (per-pair render or a batch atlas
// tile) resolves kHardware, and the Finish*() methods complete the
// decision. Exposed so BatchHardwareTester (core/batch_tester.h) executes
// the exact same software-side logic as the per-pair Test() — decision
// identity between the two paths then reduces to the hardware step, which
// is bit-identical by construction (glsim/raster.h row-span core).
struct PairPlan {
  enum class Stage {
    kDecided,   // decided without any segment test (MBR miss)
    kSoftware,  // skip hardware, run the exact software confirmation
    kHardware,  // run the hardware segment test over `viewport`
  };
  Stage stage = Stage::kDecided;
  bool decision = false;  // valid for kDecided
  geom::Box viewport;     // valid for kHardware
};

// Algorithm 3.1: hardware-assisted polygon intersection test.
//
//   1. Software point-in-polygon test (handles containment; O(n+m)).
//   2. Hardware segment intersection test: render both boundaries as
//      anti-aliased line chains into a small window projected onto
//      MBR(P) ∩ MBR(Q); if no pixel is colored by both, the boundaries
//      cannot cross and the pair is rejected.
//   3. Software segment intersection test (exact) for survivors.
//
// The hardware step is a conservative filter: the anti-aliased
// rasterization rule colors every pixel a segment passes through, so two
// crossing boundaries always share a pixel. Exactness therefore never
// depends on the window resolution.
//
// The tester owns a render context sized to config.resolution and reuses it
// across calls, as a real implementation reuses its off-screen window.
class HwIntersectionTester {
 public:
  explicit HwIntersectionTester(
      const HwConfig& config = {},
      const algo::SoftwareIntersectOptions& sw_options = {});

  // Exact result: true iff the closed regions intersect.
  [[nodiscard]] bool Test(const geom::Polygon& p, const geom::Polygon& q);

  const HwConfig& config() const { return config_; }
  const HwCounters& counters() const { return counters_; }
  void ResetCounters() { counters_ = HwCounters{}; }

  // Row-span kernel backend resolved from config.simd at construction
  // (DESIGN.md §14); the batch tester renders through the same engine.
  const glsim::RowSpanEngine& engine() const { return *engine_; }

  // Decision skeleton, exposed for BatchHardwareTester (see PairPlan).
  // Test(p, q) == Plan -> [hardware step] -> Finish*, in that order.
  PairPlan Plan(const geom::Polygon& p, const geom::Polygon& q);
  // Completes a pair whose hardware filter kept it (or that skipped the
  // hardware step): exact software segment test, then containment.
  [[nodiscard]] bool FinishSurvivor(const geom::Polygon& p,
                                    const geom::Polygon& q);
  // Completes a hardware reject: counts it, cross-checks conservativeness
  // in a HASJ_PARANOID build, and decides by containment alone.
  [[nodiscard]] bool FinishReject(const geom::Polygon& p,
                                  const geom::Polygon& q,
                                  const geom::Box& viewport);

  // Hardware step of a kHardware plan with degradation routing (DESIGN.md
  // §11): consults the circuit breaker, runs the fault-gated glsim render
  // and scan, and on success stores the conservative filter's verdict in
  // *overlap. Non-OK (kUnavailable/kResourceExhausted) means the hardware
  // path was unavailable for this pair; the caller must FinishFallback.
  [[nodiscard]] Status HwStep(const geom::Polygon& p, const geom::Polygon& q,
                              const geom::Box& viewport, bool* overlap);
  // Completes a pair whose hardware step was unavailable: the exact
  // software decision (identical to FinishSurvivor — skipping the
  // conservative filter is always legal), counted in hw_fallback_pairs.
  [[nodiscard]] bool FinishFallback(const geom::Polygon& p,
                                    const geom::Polygon& q);

  // Batch-tester degradation hooks: whether the breaker admits a whole
  // atlas batch, and the outcome of a batch-level hardware event.
  bool HwBatchAllowed() const { return degrade_.BatchAllowed(); }
  void NoteHwFault();
  void NoteHwSuccess() { degrade_.Note(true, &counters_); }

 private:
  // True if some pixel is covered by both boundaries within the window
  // projected onto `viewport`; non-OK when a fault-gated glsim phase
  // failed (the overlap result is then meaningless).
  [[nodiscard]] Status HwBoundariesOverlap(const geom::Polygon& p,
                                           const geom::Polygon& q,
                                           const geom::Box& viewport,
                                           bool* overlap);

  // Closed-region containment of the pair (either direction), guarded by
  // MBR nesting; deferred to the reject/confirm paths (see Test()).
  bool Containment(const geom::Polygon& p, const geom::Polygon& q);

  // Exact software segment intersection test, with counters.
  bool BoundariesCross(const geom::Polygon& p, const geom::Polygon& q);

  // Closed-region containment of `pt` in `outer`, via a lazily built and
  // cached point locator for large polygons. Cache keys are polygon
  // addresses: polygons passed to Test() must outlive the tester or at
  // least stay put between calls (true for dataset-owned polygons).
  bool PolygonContains(const geom::Polygon& outer, geom::Point pt);

  HwConfig config_;
  algo::SoftwareIntersectOptions sw_options_;
  HwCounters counters_;
  HwDegrade degrade_;
  // Resolved once from config.metrics (null when metrics are off), so the
  // per-pair hot path pays a pointer test, not a registry lookup.
  obs::Histogram* pair_vertices_hist_ = nullptr;
  obs::Histogram* pixels_hist_ = nullptr;
  const glsim::RowSpanEngine* engine_;
  glsim::RenderContext ctx_;
  glsim::PixelMask mask_a_;
  glsim::PixelMask mask_b_;
  // Per-primitive row-span scratch of the bitmask hot path; reused across
  // calls like the render context (RowSpanBuffer is a fixed 64 KiB array,
  // not a heap allocation).
  glsim::RowSpanBuffer spans_;
  std::unordered_map<const geom::Polygon*, algo::PointLocator> locators_;
};

}  // namespace hasj::core

#endif  // HASJ_CORE_HW_INTERSECTION_H_
