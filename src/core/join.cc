#include "core/join.h"

#include <optional>
#include <utility>

#include "common/stopwatch.h"
#include "core/batch_tester.h"
#include "core/hw_intersection.h"
#include "core/interval_stage.h"
#include "core/paranoid.h"
#include "core/query_obs.h"
#include "core/refinement_executor.h"
#include "obs/perf_counters.h"
#include "obs/trace.h"

namespace hasj::core {

IntersectionJoin::IntersectionJoin(const data::Dataset& a,
                                   const data::Dataset& b)
    : index_a_(a), index_b_(b) {}

JoinResult IntersectionJoin::Run(const JoinOptions& options) const {
  JoinResult result;
  Stopwatch watch;
  const obs::PmuSnapshot pmu_begin = obs::PmuSnapshotOf(options.hw.pmu);
  const QueryDeadline deadline =
      QueryDeadline::Start(options.hw.deadline_ms, options.hw.cancel);
  RefinementExecutor executor(options.num_threads);
  executor.SetObservability(options.hw.trace, options.hw.metrics);
  executor.SetDeadline(&deadline);
  executor.SetFaults(options.hw.faults);
  obs::ManualSpan stage_span;
  // Pin both dataset versions for the whole query.
  const data::DatasetIndex::Pinned a = index_a_.Acquire();
  const data::DatasetIndex::Pinned b = index_b_.Acquire();

  // Stage 1: MBR join.
  stage_span.Start(options.hw.trace, "mbr", "stage");
  const std::vector<std::pair<int64_t, int64_t>> candidates =
      index::JoinIntersects(*a.rtree, *b.rtree);
  result.counts.candidates = static_cast<int64_t>(candidates.size());
  result.costs.mbr_ms = watch.ElapsedMillis();
  stage_span.End();

  // Stage 2 (optional): rasterization intermediate filter. Signatures are
  // built lazily per polygon (at most once, std::call_once per slot) and
  // cached in the join object across runs; with a parallel executor the
  // candidate signatures are pre-built concurrently before the serial
  // decision loop reads them.
  stage_span.Start(options.hw.trace, "filter", "stage");
  watch.Restart();
  std::vector<std::pair<int64_t, int64_t>> undecided;
  const std::vector<std::pair<int64_t, int64_t>>* to_compare = &candidates;
  const bool use_raster = options.raster_filter_grid > 0;
  // Interval secondary filter (DESIGN.md §12): both sides are approximated
  // over one frame — the union of the two extents — so their Hilbert cell
  // indices are directly comparable.
  std::shared_ptr<const filter::IntervalApprox> intervals_a;
  std::shared_ptr<const filter::IntervalApprox> intervals_b;
  if (options.hw.use_intervals && result.status.ok()) {
    geom::Box frame = a.Bounds();
    frame.Extend(b.Bounds());
    const filter::IntervalApproxConfig interval_config =
        IntervalConfigFrom(options.hw, options.num_threads);
    auto acquired_a = interval_cache_a_.Acquire(a.data.polygons(), frame,
                                                a.epoch(), interval_config);
    auto acquired_b = interval_cache_b_.Acquire(b.data.polygons(), frame,
                                                b.epoch(), interval_config);
    if (acquired_a.ok() && acquired_b.ok()) {
      intervals_a = std::move(acquired_a).value();
      intervals_b = std::move(acquired_b).value();
    } else {
      result.status =
          acquired_a.ok() ? acquired_b.status() : acquired_a.status();
    }
  }
  if ((use_raster || intervals_a != nullptr) && result.status.ok()) {
    std::optional<filter::SignatureCache::Snapshot> sig_a;
    std::optional<filter::SignatureCache::Snapshot> sig_b;
    if (use_raster) {
      sig_a = sig_cache_a_.Acquire(options.raster_filter_grid, a.size(),
                                   a.epoch());
      sig_b = sig_cache_b_.Acquire(options.raster_filter_grid, b.size(),
                                   b.epoch());
      if (executor.threads() > 1) {
        if (Status s = executor.ParallelFor(
                static_cast<int64_t>(candidates.size()),
                [&](int64_t begin, int64_t end, int /*worker*/) {
                  for (int64_t i = begin; i < end; ++i) {
                    const auto& [ida, idb] =
                        candidates[static_cast<size_t>(i)];
                    sig_a->Get(static_cast<size_t>(ida),
                               a.polygon(static_cast<size_t>(ida)));
                    sig_b->Get(static_cast<size_t>(idb),
                               b.polygon(static_cast<size_t>(idb)));
                  }
                });
            !s.ok()) {
          result.status = std::move(s);
        }
      }
    }
    undecided.reserve(candidates.size());
    const bool guarded = deadline.active();
    // PMU attribution for the serial decision loop, active only when the
    // interval filter (which dominates the loop) is; ended explicitly
    // after the loop so the compare stage is not attributed here.
    std::optional<obs::PmuScope> interval_pmu;
    if (intervals_a != nullptr && options.hw.pmu != nullptr) {
      interval_pmu.emplace(options.hw.pmu, obs::PmuStage::kIntervalDecide,
                           options.hw.trace);
    }
    for (size_t ci = 0; ci < candidates.size() && result.status.ok(); ++ci) {
      // Poll the budget every 64 candidates: truncating here leaves
      // `pairs` a prefix of the filter hits, which lead the full result.
      if (guarded && (ci % 64) == 0 && deadline.Expired()) {
        result.status = deadline.ToStatus();
        break;
      }
      const auto& [ida, idb] = candidates[ci];
      if (intervals_a != nullptr) {
        bool decided = true;
        switch (filter::DecidePair(
            intervals_a->object(static_cast<size_t>(ida)),
            intervals_b->object(static_cast<size_t>(idb)))) {
          case filter::IntervalVerdict::kHit:
            HASJ_PARANOID_ONLY(paranoid::CheckIntervalAccept(
                a.polygon(static_cast<size_t>(ida)),
                b.polygon(static_cast<size_t>(idb)), options.hw));
            result.pairs.emplace_back(ida, idb);
            ++result.interval_hits;
            ++result.counts.filter_hits;
            break;
          case filter::IntervalVerdict::kMiss:
            HASJ_PARANOID_ONLY(paranoid::CheckIntervalReject(
                a.polygon(static_cast<size_t>(ida)),
                b.polygon(static_cast<size_t>(idb)), options.hw));
            ++result.interval_misses;
            ++result.counts.filter_hits;
            break;
          case filter::IntervalVerdict::kInconclusive:
            ++result.interval_undecided;
            decided = false;
            break;
        }
        if (decided) continue;
      }
      if (!use_raster) {
        undecided.emplace_back(ida, idb);
        continue;
      }
      switch (filter::CompareRasterSignatures(
          sig_a->Get(static_cast<size_t>(ida),
                     a.polygon(static_cast<size_t>(ida))),
          sig_b->Get(static_cast<size_t>(idb),
                     b.polygon(static_cast<size_t>(idb))))) {
        case filter::RasterFilterDecision::kIntersect:
          result.pairs.emplace_back(ida, idb);
          ++result.raster_positives;
          ++result.counts.filter_hits;
          break;
        case filter::RasterFilterDecision::kDisjoint:
          ++result.raster_negatives;
          ++result.counts.filter_hits;
          break;
        case filter::RasterFilterDecision::kUnknown:
          undecided.emplace_back(ida, idb);
          break;
      }
    }
    interval_pmu.reset();
    to_compare = &undecided;
  }
  result.costs.filter_ms = watch.ElapsedMillis();
  stage_span.End();

  // Stage 3: geometry comparison (the intersection join of the paper uses
  // no intermediate filter; the interior filter targets selections). The
  // tester is the refinement engine for both modes, so the software
  // baseline shares the cached point locators. Each worker owns a tester;
  // accepted pairs come back in candidate order at every thread count.
  stage_span.Start(options.hw.trace, "compare", "stage");
  watch.Restart();
  HwConfig hw_config = options.hw;
  hw_config.enable_hw = options.use_hw;
  RefinementOutcome<std::pair<int64_t, int64_t>> refined;
  if (result.status.ok()) {
    if (hw_config.use_batching && hw_config.enable_hw &&
        hw_config.backend == HwBackend::kBitmask) {
      // Batched hardware step: workers drain their candidate chunks through
      // a tile-atlas tester (DESIGN.md §9); decisions and output order are
      // identical to the per-pair branch below.
      refined = executor.RefineBatches(
          *to_compare,
          [&] { return BatchHardwareTester(hw_config, options.sw); },
          [&](const std::pair<int64_t, int64_t>& c) {
            return PolygonPair{&a.polygon(static_cast<size_t>(c.first)),
                               &b.polygon(static_cast<size_t>(c.second))};
          },
          [](BatchHardwareTester& tester, std::span<const PolygonPair> pairs,
             uint8_t* verdicts) {
            tester.TestIntersectionBatch(pairs, verdicts);
          });
    } else {
      refined = executor.Refine(
          *to_compare,
          [&] { return HwIntersectionTester(hw_config, options.sw); },
          [&](HwIntersectionTester& tester,
              const std::pair<int64_t, int64_t>& c) {
            return tester.Test(a.polygon(static_cast<size_t>(c.first)),
                               b.polygon(static_cast<size_t>(c.second)));
          });
    }
    result.counts.compared += refined.attempted;
    result.pairs.insert(result.pairs.end(), refined.accepted.begin(),
                        refined.accepted.end());
    result.status = refined.status;
  }
  result.costs.compare_ms = watch.ElapsedMillis();
  stage_span.End();
  result.counts.truncated = !result.status.ok();
  result.counts.results = static_cast<int64_t>(result.pairs.size());
  result.hw_counters = refined.counters;
  RecordQueryObs(options.hw, "join", result.costs, result.counts,
                 result.hw_counters,
                 {.raster_positives = result.raster_positives,
                  .raster_negatives = result.raster_negatives,
                  .interval_hits = result.interval_hits,
                  .interval_misses = result.interval_misses,
                  .interval_undecided = result.interval_undecided},
                 pmu_begin);
  return result;
}

}  // namespace hasj::core
