#include "core/join.h"

#include <memory>

#include "common/stopwatch.h"
#include "core/hw_intersection.h"
#include "filter/raster_signature.h"

namespace hasj::core {

IntersectionJoin::IntersectionJoin(const data::Dataset& a,
                                   const data::Dataset& b)
    : a_(a), b_(b), rtree_a_(a.BuildRTree()), rtree_b_(b.BuildRTree()) {}

JoinResult IntersectionJoin::Run(const JoinOptions& options) const {
  JoinResult result;
  Stopwatch watch;

  // Stage 1: MBR join.
  const std::vector<std::pair<int64_t, int64_t>> candidates =
      index::JoinIntersects(rtree_a_, rtree_b_);
  result.counts.candidates = static_cast<int64_t>(candidates.size());
  result.costs.mbr_ms = watch.ElapsedMillis();

  // Stage 2 (optional): rasterization intermediate filter. Signatures are
  // built lazily per polygon and reused across the pairs of this run.
  watch.Restart();
  std::vector<std::pair<int64_t, int64_t>> undecided;
  const std::vector<std::pair<int64_t, int64_t>>* to_compare = &candidates;
  if (options.raster_filter_grid > 0) {
    std::vector<std::unique_ptr<filter::RasterSignature>> sig_a(a_.size());
    std::vector<std::unique_ptr<filter::RasterSignature>> sig_b(b_.size());
    const auto signature =
        [&](std::vector<std::unique_ptr<filter::RasterSignature>>& cache,
            const data::Dataset& ds,
            int64_t id) -> const filter::RasterSignature& {
      auto& slot = cache[static_cast<size_t>(id)];
      if (slot == nullptr) {
        slot = std::make_unique<filter::RasterSignature>(
            ds.polygon(static_cast<size_t>(id)), options.raster_filter_grid);
      }
      return *slot;
    };
    undecided.reserve(candidates.size());
    for (const auto& [ida, idb] : candidates) {
      switch (filter::CompareRasterSignatures(signature(sig_a, a_, ida),
                                              signature(sig_b, b_, idb))) {
        case filter::RasterFilterDecision::kIntersect:
          result.pairs.emplace_back(ida, idb);
          ++result.raster_positives;
          ++result.counts.filter_hits;
          break;
        case filter::RasterFilterDecision::kDisjoint:
          ++result.raster_negatives;
          ++result.counts.filter_hits;
          break;
        case filter::RasterFilterDecision::kUnknown:
          undecided.emplace_back(ida, idb);
          break;
      }
    }
    to_compare = &undecided;
  }
  result.costs.filter_ms = watch.ElapsedMillis();

  // Stage 3: geometry comparison (the intersection join of the paper uses
  // no intermediate filter; the interior filter targets selections). The
  // tester is the refinement engine for both modes, so the software
  // baseline shares the cached point locators.
  watch.Restart();
  HwConfig hw_config = options.hw;
  hw_config.enable_hw = options.use_hw;
  HwIntersectionTester tester(hw_config, options.sw);
  for (const auto& [ida, idb] : *to_compare) {
    const geom::Polygon& pa = a_.polygon(static_cast<size_t>(ida));
    const geom::Polygon& pb = b_.polygon(static_cast<size_t>(idb));
    ++result.counts.compared;
    if (tester.Test(pa, pb)) result.pairs.emplace_back(ida, idb);
  }
  result.costs.compare_ms = watch.ElapsedMillis();
  result.counts.results = static_cast<int64_t>(result.pairs.size());
  result.hw_counters = tester.counters();
  return result;
}

}  // namespace hasj::core
