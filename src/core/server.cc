#include "core/server.h"

#include <algorithm>
#include <utility>

#include "obs/names.h"

namespace hasj::core {

namespace {

// Sorted copies for order-insensitive comparison against the oracle.
std::vector<int64_t> Sorted(std::vector<int64_t> v) {
  std::sort(v.begin(), v.end());
  return v;
}

std::vector<std::pair<int64_t, int64_t>> Sorted(
    std::vector<std::pair<int64_t, int64_t>> v) {
  std::sort(v.begin(), v.end());
  return v;
}

}  // namespace

QueryServer::QueryServer(const data::VersionedDataset* store,
                         const ServerConfig& config)
    : store_(store), config_(config) {}

QueryServer::~QueryServer() { Shutdown(); }

DegradeLevel QueryServer::DegradeLevelForDepth(size_t depth,
                                               const ServerConfig& config) {
  const double cap = static_cast<double>(config.queue_capacity);
  const double d = static_cast<double>(depth);
  if (d >= config.l3_watermark * cap) return DegradeLevel::kIntervalsOnly;
  if (d >= config.l2_watermark * cap) return DegradeLevel::kLowRes;
  if (d >= config.l1_watermark * cap) return DegradeLevel::kNoBatch;
  return DegradeLevel::kNone;
}

void QueryServer::BumpCounter(const char* name, int64_t delta) {
  if (config_.metrics != nullptr) {
    config_.metrics->GetCounter(name).Add(delta);
  }
}

Status QueryServer::Start() {
  if (config_.num_workers < 0) {
    return Status::InvalidArgument("server worker count must be >= 0");
  }
  if (config_.queue_capacity < 1) {
    return Status::InvalidArgument("server needs a positive queue capacity");
  }
  if (!(config_.l1_watermark <= config_.l2_watermark &&
        config_.l2_watermark <= config_.l3_watermark)) {
    return Status::InvalidArgument(
        "degradation watermarks must be non-decreasing");
  }
  MutexLock lock(&mu_);
  if (started_) return Status::Unavailable("server already started");
  started_ = true;
  stopping_ = false;
  workers_.reserve(static_cast<size_t>(config_.num_workers));
  for (int i = 0; i < config_.num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  return Status::Ok();
}

void QueryServer::Shutdown() {
  std::vector<std::thread> workers;
  {
    MutexLock lock(&mu_);
    if (!started_) return;
    stopping_ = true;
    // Fail everything still queued; in-flight queries run to completion.
    while (!interactive_.empty() || !batch_.empty()) {
      std::deque<PendingQuery*>& q =
          interactive_.empty() ? batch_ : interactive_;
      PendingQuery* pending = q.front();
      q.pop_front();
      pending->response.status =
          Status::Unavailable("server shut down before the query ran");
      pending->done = true;
    }
    done_cv_.NotifyAll();
    work_cv_.NotifyAll();
    workers.swap(workers_);
  }
  for (std::thread& worker : workers) worker.join();
  MutexLock lock(&mu_);
  started_ = false;
}

size_t QueryServer::queue_depth() const {
  MutexLock lock(&mu_);
  return interactive_.size() + batch_.size();
}

size_t QueryServer::inflight() const {
  MutexLock lock(&mu_);
  return inflight_;
}

QueryResponse QueryServer::Execute(const QueryRequest& request) {
  PendingQuery pending;
  pending.request = &request;
  MutexLock lock(&mu_);
  if (!started_ || stopping_) {
    pending.response.status = Status::Unavailable("server is not running");
    return std::move(pending.response);
  }
  const size_t depth = interactive_.size() + batch_.size();
  if (depth >= config_.queue_capacity) {
    BumpCounter(obs::kServerShed);
    pending.response.status = Status::ResourceExhausted(
        "admission queue at capacity; retry with backoff");
    return std::move(pending.response);
  }
  // The ladder level is fixed at admission, from the depth including this
  // query — deterministic in the queue state, regardless of which worker
  // picks it up when.
  pending.response.degrade = DegradeLevelForDepth(depth + 1, config_);
  pending.queued_at.Restart();
  (request.priority == QueryPriority::kInteractive ? interactive_ : batch_)
      .push_back(&pending);
  max_depth_seen_ = std::max(max_depth_seen_, depth + 1);
  BumpCounter(obs::kServerAdmitted);
  switch (pending.response.degrade) {
    case DegradeLevel::kNone:
      break;
    case DegradeLevel::kNoBatch:
      BumpCounter(obs::kServerDegradedL1);
      break;
    case DegradeLevel::kLowRes:
      BumpCounter(obs::kServerDegradedL2);
      break;
    case DegradeLevel::kIntervalsOnly:
      BumpCounter(obs::kServerDegradedL3);
      break;
  }
  if (config_.metrics != nullptr) {
    config_.metrics->GetGauge(obs::kServerQueueDepth)
        .Set(static_cast<double>(depth + 1));
    config_.metrics->GetGauge(obs::kServerQueueDepthMax)
        .Set(static_cast<double>(max_depth_seen_));
  }
  work_cv_.NotifyOne();
  while (!pending.done) done_cv_.Wait(mu_);
  return std::move(pending.response);
}

void QueryServer::WorkerLoop() {
  while (true) {
    PendingQuery* pending = nullptr;
    {
      MutexLock lock(&mu_);
      while (!stopping_ && interactive_.empty() && batch_.empty()) {
        work_cv_.Wait(mu_);
      }
      if (stopping_) return;
      std::deque<PendingQuery*>& q =
          !interactive_.empty() ? interactive_ : batch_;
      pending = q.front();
      q.pop_front();
      if (config_.metrics != nullptr) {
        config_.metrics->GetGauge(obs::kServerQueueDepth)
            .Set(static_cast<double>(interactive_.size() + batch_.size()));
      }
      ++inflight_;
      ++completed_;
      pending->verify = config_.verify_every > 0 &&
                        (completed_ % config_.verify_every) == 0;
    }
    pending->response.wait_ms = pending->queued_at.ElapsedMillis();
    if (config_.metrics != nullptr) {
      config_.metrics->GetHistogram(obs::kHistAdmissionWaitUs)
          .Record(static_cast<int64_t>(pending->response.wait_ms * 1e3));
    }
    RunQuery(pending);
    BumpCounter(obs::kServerCompleted);
    MutexLock lock(&mu_);
    --inflight_;
    pending->done = true;
    done_cv_.NotifyAll();
  }
}

void QueryServer::RunQuery(PendingQuery* pending) {
  const QueryRequest& request = *pending->request;
  QueryResponse& response = pending->response;
  // A query cancelled while it sat in the queue fails without running.
  if (request.cancel != nullptr && request.cancel->cancelled()) {
    response.status = Status::DeadlineExceeded("cancelled while queued");
    return;
  }
  SnapshotQueryOptions options = config_.options;
  options.degrade = response.degrade;
  options.hw.deadline_ms = request.deadline_ms;
  options.hw.cancel = request.cancel;
  // Pin one store version for this query; updates published after this
  // line are invisible to it (and to its oracle replay).
  const data::VersionedDataset::Snapshot snap = store_->snapshot();
  response.epoch = snap.epoch();
  switch (request.kind) {
    case QueryKind::kSelection:
      response.result = SnapshotSelection(snap, request.query, options);
      break;
    case QueryKind::kJoin:
      response.result = SnapshotJoin(snap, snap, options);
      break;
    case QueryKind::kDistanceSelection:
      response.result = SnapshotDistanceSelection(snap, request.query,
                                                  request.distance, options);
      break;
    case QueryKind::kDistanceJoin:
      response.result =
          SnapshotDistanceJoin(snap, snap, request.distance, options);
      break;
  }
  response.status = response.result.status;
  if (!pending->verify || !response.status.ok()) return;
  // Sampled self-verification: replay against the serial oracle on the
  // same pinned snapshot. Any divergence is a correctness bug, not load.
  BumpCounter(obs::kServerVerified);
  bool match = true;
  switch (request.kind) {
    case QueryKind::kSelection:
      match = Sorted(response.result.ids) == OracleSelection(snap, request.query);
      break;
    case QueryKind::kJoin:
      match = Sorted(response.result.pairs) == OracleJoin(snap, snap);
      break;
    case QueryKind::kDistanceSelection:
      match = Sorted(response.result.ids) ==
              OracleDistanceSelection(snap, request.query, request.distance);
      break;
    case QueryKind::kDistanceJoin:
      match = Sorted(response.result.pairs) ==
              OracleDistanceJoin(snap, snap, request.distance);
      break;
  }
  if (!match) {
    BumpCounter(obs::kServerVerifyMismatch);
    response.status =
        Status::Internal("server verdict diverged from the serial oracle");
  }
}

}  // namespace hasj::core
