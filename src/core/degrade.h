#ifndef HASJ_CORE_DEGRADE_H_
#define HASJ_CORE_DEGRADE_H_

#include <optional>

#include "common/fault.h"
#include "core/hw_config.h"
#include "obs/metrics.h"
#include "obs/names.h"
#include "obs/trace.h"

namespace hasj::core {

// Degradation state shared by the per-pair hardware testers (DESIGN.md
// §11): a circuit breaker over the hardware path plus the observability of
// its transitions. Instantiated per tester — the executor gives each worker
// its own tester, so no locking — and entirely inert when the config has no
// fault injector attached (glsim cannot fail then, and active() lets the
// hot path skip every breaker branch).
//
// Concurrency contract (DESIGN.md §13): HwDegrade and the CircuitBreaker
// it owns are thread-confined by construction — ownership follows the
// executor's one-tester-per-worker design, invocations for one worker are
// serial (ThreadPool contract), and the state never crosses threads, so
// there is no capability to annotate. The observability sinks it writes to
// (Gauge/Counter via relaxed atomics, TraceSession via its thread-owned
// track) are themselves safe for concurrent writers from other testers.
class HwDegrade {
 public:
  explicit HwDegrade(const HwConfig& config) : trace_(config.trace) {
    if (config.faults != nullptr) {
      breaker_.emplace(config.breaker_fault_threshold,
                       config.breaker_reprobe_pairs);
      if (config.metrics != nullptr) {
        state_gauge_ = &config.metrics->GetGauge(obs::kBreakerState);
        transitions_ = &config.metrics->GetCounter(obs::kBreakerTransitions);
      }
    }
  }

  bool active() const { return breaker_.has_value(); }

  // Is the breaker letting the next pair attempt hardware? Counts the
  // skipped pair while open and publishes any open -> half-open flip. The
  // caller routes a denied pair through FinishFallback, which owns the
  // hw_fallback_pairs accounting.
  bool Allow() {
    if (!breaker_.has_value()) return true;
    const bool allowed = breaker_->Allow();
    PublishTransition();
    return allowed;
  }

  // Breaker is fully closed — the batch tester only runs an atlas batch in
  // this state, so that an open breaker's re-probe countdown stays counted
  // per pair through the per-pair path.
  bool BatchAllowed() const {
    return !breaker_.has_value() ||
           breaker_->state() == CircuitBreaker::State::kClosed;
  }

  // Outcome of an admitted hardware attempt (one pair, or one batch pass
  // counted as a single event).
  void Note(bool success, HwCounters* counters) {
    if (!breaker_.has_value()) return;
    const int64_t opens_before = breaker_->opens();
    if (success) {
      breaker_->RecordSuccess();
    } else {
      breaker_->RecordFault();
    }
    counters->breaker_opens += breaker_->opens() - opens_before;
    PublishTransition();
  }

 private:
  void PublishTransition() {
    if (!breaker_->ConsumeTransition()) return;
    const CircuitBreaker::State state = breaker_->state();
    if (state_gauge_ != nullptr) {
      state_gauge_->Set(static_cast<double>(state));
    }
    if (transitions_ != nullptr) transitions_->Increment();
    if (trace_ != nullptr) {
      switch (state) {
        case CircuitBreaker::State::kClosed:
          trace_->Instant("breaker-close", "fault");
          break;
        case CircuitBreaker::State::kOpen:
          trace_->Instant("breaker-open", "fault");
          break;
        case CircuitBreaker::State::kHalfOpen:
          trace_->Instant("breaker-half-open", "fault");
          break;
      }
    }
  }

  std::optional<CircuitBreaker> breaker_;
  obs::TraceSession* trace_ = nullptr;
  obs::Gauge* state_gauge_ = nullptr;
  obs::Counter* transitions_ = nullptr;
};

}  // namespace hasj::core

#endif  // HASJ_CORE_DEGRADE_H_
