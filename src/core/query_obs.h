#ifndef HASJ_CORE_QUERY_OBS_H_
#define HASJ_CORE_QUERY_OBS_H_

#include <cstdint>

#include "core/hw_config.h"
#include "core/query_stats.h"
#include "obs/metrics.h"

namespace hasj::core {

// Canonical ingestion of one pipeline run's aggregates into a metrics
// registry (DESIGN.md §10). The per-query StageCosts / StageCounts /
// HwCounters structs stay the pipelines' return values; this bridge is the
// single place that translates them into the registry's canonical names
// (obs/names.h), so every consumer — EXPLAIN ANALYZE, bench --json, tests —
// reads one schema. No-op when `metrics` is null.
//
// `kind` is the pipeline name ("selection", "join", "distance_selection",
// "distance_join"); raster_positives/raster_negatives are the raster-filter
// decisions and interval_hits/interval_misses/interval_undecided the
// raster-interval filter's decisions (zero for pipelines without those
// filters).
void RecordQueryMetrics(obs::Registry* metrics, const char* kind,
                        const StageCosts& costs, const StageCounts& counts,
                        const HwCounters& hw, int64_t raster_positives = 0,
                        int64_t raster_negatives = 0,
                        int64_t interval_hits = 0,
                        int64_t interval_misses = 0,
                        int64_t interval_undecided = 0);

}  // namespace hasj::core

#endif  // HASJ_CORE_QUERY_OBS_H_
