#ifndef HASJ_CORE_QUERY_OBS_H_
#define HASJ_CORE_QUERY_OBS_H_

#include <cstdint>

#include "core/hw_config.h"
#include "core/query_stats.h"
#include "obs/metrics.h"
#include "obs/perf_counters.h"

namespace hasj::core {

// Intermediate-filter decision tallies a pipeline run reports alongside
// its StageCounts (zero for pipelines without the corresponding filter).
struct QueryObsTallies {
  int64_t raster_positives = 0;   // raster-signature filter decisions
  int64_t raster_negatives = 0;
  int64_t interval_hits = 0;      // raster-interval filter decisions
  int64_t interval_misses = 0;
  int64_t interval_undecided = 0;
};

// Canonical per-query observability fan-out (DESIGN.md §10, §15). The
// per-query StageCosts / StageCounts / HwCounters structs stay the
// pipelines' return values; this bridge is the single place that
// translates them into every attached sink, so all consumers — EXPLAIN
// ANALYZE, bench --json, the query log, tests — read one schema:
//
//  * config.metrics   — counters/gauges under obs/names.h names, plus the
//                       per-pipeline per-stage latency histograms
//                       ("pipeline.<kind>.mbr_us", ...) feeding the
//                       report's p50/p90/p99 columns, plus the per-stage
//                       PMU delta counters and the pmu.available gauge
//                       when config.pmu is attached;
//  * config.query_log — one JSONL record (config fingerprint, costs,
//                       counts, hardware counters, filter tallies,
//                       fault/breaker/deadline events, PMU deltas) when
//                       ShouldSample(config.query_log_sample) fires.
//
// `kind` is the pipeline name ("selection", "join", "distance_selection",
// "distance_join"). `pmu_begin` is the PMU snapshot the pipeline captured
// at Run() entry (obs::PmuSnapshotOf(config.pmu)); the per-query delta is
// the session snapshot now minus then. No-op per sink when that sink is
// null.
void RecordQueryObs(const HwConfig& config, const char* kind,
                    const StageCosts& costs, const StageCounts& counts,
                    const HwCounters& hw, const QueryObsTallies& tallies,
                    const obs::PmuSnapshot& pmu_begin);

}  // namespace hasj::core

#endif  // HASJ_CORE_QUERY_OBS_H_
