#include "core/paranoid.h"

#include <cstdio>
#include <cstdlib>
#include <limits>
#include <utility>

#include "algo/polygon_distance.h"
#include "algo/polygon_intersect.h"
#include "geom/wkt.h"
#include "glsim/context.h"
#include "glsim/pixel_mask.h"
#include "glsim/raster.h"
#include "obs/metrics.h"
#include "obs/names.h"
#include "obs/trace.h"

namespace hasj::core::paranoid {
namespace {

// Marks one oracle invocation: an instant event on the calling worker's
// trace track plus the paranoid.checks counter. Paranoid builds trade speed
// for verification, so the per-call registry lookup is acceptable here.
void NoteOracleCheck(const HwConfig& config) {
  if (config.trace != nullptr) {
    config.trace->Instant("paranoid-oracle", "paranoid");
  }
  if (config.metrics != nullptr) {
    config.metrics->GetCounter(obs::kParanoidChecks).Increment();
  }
}

ViolationHandler& Handler() {
  static ViolationHandler handler;
  return handler;
}

void Append(std::string& out, const char* fmt, double a, double b) {
  char buf[128];
  std::snprintf(buf, sizeof(buf), fmt, a, b);
  out += buf;
}

void Append1(std::string& out, const char* fmt, double a) {
  char buf[128];
  std::snprintf(buf, sizeof(buf), fmt, a);
  out += buf;
}

// Renders the two boundaries the way the bitmask backend does and formats
// the window as ASCII art: '.' empty, 'a'/'b' single coverage, 'X' both —
// an 'X'-free grid is exactly a hardware reject, so the dump shows what the
// filter saw when it (wrongly) dropped the pair. Rows are printed top-down
// (window row vh-1 first).
std::string RenderPair(const geom::Polygon& p, const geom::Polygon& q,
                       const geom::Box& viewport, const HwConfig& config,
                       double width_px, bool capsule_ends) {
  const int res = config.resolution;
  glsim::RenderContext ctx(res, res);
  ctx.set_limits(config.limits);
  ctx.SetDataRect(viewport);
  glsim::PixelMask mask_a(res, res);
  glsim::PixelMask mask_b(res, res);

  const auto draw = [&](const geom::Polygon& poly, glsim::PixelMask& mask) {
    const auto set = [&mask](int x, int y) { mask.Set(x, y); };
    for (size_t i = 0; i < poly.size(); ++i) {
      const geom::Segment e = poly.edge(i);
      if (!e.Bounds().Intersects(viewport)) continue;
      const geom::Point a = ctx.ToWindow(e.a);
      const geom::Point b = ctx.ToWindow(e.b);
      glsim::RasterizeLineAA(a, b, width_px, res, res, set);
      if (capsule_ends) {
        glsim::RasterizeWidePoint(a, width_px, res, res, set);
        glsim::RasterizeWidePoint(b, width_px, res, res, set);
      }
    }
  };
  draw(p, mask_a);
  draw(q, mask_b);

  std::string art;
  for (int y = res - 1; y >= 0; --y) {
    art += "    ";
    for (int x = 0; x < res; ++x) {
      const bool in_a = mask_a.Test(x, y);
      const bool in_b = mask_b.Test(x, y);
      art += in_a && in_b ? 'X' : in_a ? 'a' : in_b ? 'b' : '.';
    }
    art += '\n';
  }
  return art;
}

std::string PairDump(const char* tester, const char* claim,
                     const geom::Polygon& p, const geom::Polygon& q,
                     const geom::Box& viewport, const HwConfig& config,
                     double width_px, bool capsule_ends) {
  std::string dump = "CONSERVATIVENESS VIOLATION in ";
  dump += tester;
  dump += ": hardware filter rejected a pair the exact predicate says ";
  dump += claim;
  dump += "\n  P = ";
  dump += geom::ToWkt(p);
  dump += "\n  Q = ";
  dump += geom::ToWkt(q);
  dump += "\n  viewport = [";
  Append(dump, "%.17g, %.17g", viewport.min_x, viewport.min_y);
  dump += "] - [";
  Append(dump, "%.17g, %.17g", viewport.max_x, viewport.max_y);
  dump += "]\n";
  Append(dump, "  resolution = %.0f, width_px = %.17g\n",
         static_cast<double>(config.resolution), width_px);
  dump += config.backend == HwBackend::kBitmask ? "  backend = bitmask\n"
                                                : "  backend = faithful\n";
  dump += "  rendered pair ('a'/'b' one boundary, 'X' both, '.' empty):\n";
  dump += RenderPair(p, q, viewport, config, width_px, capsule_ends);
  return dump;
}

}  // namespace

void SetViolationHandlerForTest(ViolationHandler handler) {
  Handler() = std::move(handler);
}

void ReportViolation(const std::string& dump) {
  if (Handler()) {
    Handler()(dump);
    return;
  }
  std::fprintf(stderr, "%s\n", dump.c_str());
  std::abort();
}

void CheckIntersectionReject(const geom::Polygon& p, const geom::Polygon& q,
                             const geom::Box& viewport,
                             const HwConfig& config) {
  NoteOracleCheck(config);
  if (!algo::BoundariesIntersect(p, q)) return;
  ReportViolation(PairDump("hw_intersection", "intersects", p, q, viewport,
                           config, config.line_width,
                           /*capsule_ends=*/false));
}

void CheckDistanceReject(const geom::Polygon& p, const geom::Polygon& q,
                         double d, const geom::Box& viewport, double width_px,
                         const HwConfig& config) {
  NoteOracleCheck(config);
  if (!algo::BoundariesWithinDistance(p, q, d)) return;
  std::string dump = PairDump("hw_distance", "is within distance", p, q,
                              viewport, config, width_px,
                              /*capsule_ends=*/true);
  Append1(dump, "  d = %.17g\n", d);
  ReportViolation(dump);
}

void CheckFilledReject(const geom::Polygon& p, const geom::Polygon& q,
                       const geom::Box& viewport, const HwConfig& config) {
  NoteOracleCheck(config);
  if (!algo::PolygonsIntersect(p, q)) return;
  ReportViolation(PairDump("hw_filled", "intersects", p, q, viewport, config,
                           config.line_width, /*capsule_ends=*/false));
}

namespace {

// Dump for the interval filter's decisions: no viewport or rendering — the
// decision came from precomputed interval lists, not a framebuffer — so the
// dump carries the exact geometry needed to replay DecidePair.
std::string IntervalDump(const char* claim, const geom::Polygon& p,
                         const geom::Polygon& q, const HwConfig& config) {
  std::string dump =
      "CONSERVATIVENESS VIOLATION in interval_approx: interval filter "
      "decided a pair the exact predicate says ";
  dump += claim;
  dump += "\n  P = ";
  dump += geom::ToWkt(p);
  dump += "\n  Q = ";
  dump += geom::ToWkt(q);
  dump += "\n";
  Append(dump, "  interval_grid_bits = %.0f, interval_budget_bytes = %.0f\n",
         static_cast<double>(config.interval_grid_bits),
         static_cast<double>(config.interval_budget_bytes));
  return dump;
}

}  // namespace

void CheckIntervalAccept(const geom::Polygon& p, const geom::Polygon& q,
                         const HwConfig& config) {
  NoteOracleCheck(config);
  if (algo::PolygonsIntersect(p, q)) return;
  ReportViolation(IntervalDump("does NOT intersect (bad TRUE HIT)", p, q,
                               config));
}

void CheckIntervalReject(const geom::Polygon& p, const geom::Polygon& q,
                         const HwConfig& config) {
  NoteOracleCheck(config);
  if (!algo::PolygonsIntersect(p, q)) return;
  ReportViolation(IntervalDump("DOES intersect (bad TRUE MISS)", p, q,
                               config));
}

void CheckNearestResult(const std::vector<geom::Point>& sites, geom::Point q,
                        int64_t got) {
  int64_t want = 0;
  double want_d2 = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < sites.size(); ++i) {
    const double dx = sites[i].x - q.x;
    const double dy = sites[i].y - q.y;
    const double d2 = dx * dx + dy * dy;
    if (d2 < want_d2) {
      want_d2 = d2;
      want = static_cast<int64_t>(i);
    }
  }
  if (got == want) return;
  std::string dump =
      "CONSERVATIVENESS VIOLATION in hw_nearest: refined answer differs "
      "from the brute-force nearest site\n";
  Append(dump, "  query = (%.17g, %.17g)\n", q.x, q.y);
  Append(dump, "  got site %.0f, want site %.0f\n", static_cast<double>(got),
         static_cast<double>(want));
  ReportViolation(dump);
}

}  // namespace hasj::core::paranoid
