#include "core/hw_intersection.h"

#include "algo/point_in_polygon.h"
#include "algo/segment_tests.h"
#include "common/macros.h"
#include "common/stopwatch.h"
#include "core/paranoid.h"
#include "glsim/raster.h"
#include "obs/names.h"
#include "obs/perf_counters.h"
#include "obs/trace.h"

namespace hasj::core {
namespace {

// Overlap pixels carry color 0.5 + 0.5 = 1.0 after accumulation; compare
// against a float-safe threshold.
constexpr float kOverlapThreshold = 0.999f;

}  // namespace

HwIntersectionTester::HwIntersectionTester(
    const HwConfig& config, const algo::SoftwareIntersectOptions& sw_options)
    : config_(config),
      sw_options_(sw_options),
      degrade_(config),
      engine_(&glsim::RowSpanEngine::Get(config.simd)),
      ctx_(config.resolution, config.resolution),
      mask_a_(config.resolution, config.resolution),
      mask_b_(config.resolution, config.resolution) {
  HASJ_CHECK(config.resolution >= 1);
  HASJ_CHECK(config.line_width > 0.0 &&
             config.line_width <= config.limits.max_line_width);
  ctx_.set_limits(config.limits);
  ctx_.set_metrics(config.metrics);
  ctx_.set_faults(config.faults);
  if (config.metrics != nullptr) {
    pair_vertices_hist_ = &config.metrics->GetHistogram(obs::kHistPairVertices);
    pixels_hist_ = &config.metrics->GetHistogram(obs::kHistPixelsColored);
    config.metrics->GetGauge(obs::kHwSimdBackend)
        .Set(engine_->mode() == common::SimdMode::kAvx2 ? 1.0 : 0.0);
  }
}

PairPlan HwIntersectionTester::Plan(const geom::Polygon& p,
                                    const geom::Polygon& q) {
  ++counters_.tests;
  const int64_t total_vertices =
      static_cast<int64_t>(p.size()) + static_cast<int64_t>(q.size());
  if (pair_vertices_hist_ != nullptr) {
    pair_vertices_hist_->Record(total_vertices);
  }
  PairPlan plan;
  if (!p.Bounds().Intersects(q.Bounds())) {
    ++counters_.mbr_misses;
    plan.stage = PairPlan::Stage::kDecided;
    plan.decision = false;
    return plan;
  }

  // Pure software mode: same refinement without the hardware filter.
  if (!config_.enable_hw) {
    plan.stage = PairPlan::Stage::kSoftware;
    return plan;
  }

  // sw_threshold adaptation (§4.3): simple pairs skip the hardware test.
  if (total_vertices <= config_.sw_threshold) {
    ++counters_.sw_threshold_skips;
    plan.stage = PairPlan::Stage::kSoftware;
    return plan;
  }

  plan.stage = PairPlan::Stage::kHardware;
  plan.viewport = p.Bounds().Intersection(q.Bounds());
  return plan;
}

bool HwIntersectionTester::Containment(const geom::Polygon& p,
                                       const geom::Polygon& q) {
  // Point-in-polygon step of Algorithm 3.1, deferred: it is only *needed*
  // for pure containment (a boundary crossing is caught by the segment
  // tests), containment implies nested MBRs, and the ray test is O(n+m) —
  // so it runs last and only when the MBRs nest (DESIGN.md lists this
  // reordering; the outcome is identical to the paper's listing).
  Stopwatch watch;
  const bool pip =
      (q.Bounds().Contains(p.Bounds()) && PolygonContains(q, p.vertex(0))) ||
      (p.Bounds().Contains(q.Bounds()) && PolygonContains(p, q.vertex(0)));
  counters_.pip_ms += watch.ElapsedMillis();
  if (pip) ++counters_.pip_hits;
  return pip;
}

bool HwIntersectionTester::BoundariesCross(const geom::Polygon& p,
                                           const geom::Polygon& q) {
  ++counters_.sw_tests;
  // Per-pair PMU scope; no trace span — one span per pair would drown the
  // trace, and the pipeline already emits per-stage spans.
  obs::PmuScope pmu(config_.pmu, obs::PmuStage::kExactCompare);
  Stopwatch watch;
  const bool result = algo::BoundariesIntersect(p, q, sw_options_);
  counters_.sw_ms += watch.ElapsedMillis();
  return result;
}

bool HwIntersectionTester::FinishSurvivor(const geom::Polygon& p,
                                          const geom::Polygon& q) {
  // Software segment intersection test (exact), then containment.
  return BoundariesCross(p, q) || Containment(p, q);
}

bool HwIntersectionTester::FinishReject(
    const geom::Polygon& p, const geom::Polygon& q,
    [[maybe_unused]] const geom::Box& viewport) {
  ++counters_.hw_rejects;
  HASJ_PARANOID_ONLY(
      paranoid::CheckIntersectionReject(p, q, viewport, config_));
  return Containment(p, q);
}

bool HwIntersectionTester::Test(const geom::Polygon& p,
                                const geom::Polygon& q) {
  const PairPlan plan = Plan(p, q);
  switch (plan.stage) {
    case PairPlan::Stage::kDecided:
      return plan.decision;
    case PairPlan::Stage::kSoftware:
      return FinishSurvivor(p, q);
    case PairPlan::Stage::kHardware:
      break;
  }

  // Hardware segment intersection test (conservative filter): no shared
  // pixel means the boundaries cannot cross, leaving only containment. An
  // unavailable hardware path (fault or open breaker) degrades to the
  // exact software decision.
  bool overlap = false;
  if (const Status hw = HwStep(p, q, plan.viewport, &overlap); !hw.ok()) {
    return FinishFallback(p, q);
  }
  if (!overlap) return FinishReject(p, q, plan.viewport);
  return FinishSurvivor(p, q);
}

Status HwIntersectionTester::HwStep(const geom::Polygon& p,
                                    const geom::Polygon& q,
                                    const geom::Box& viewport, bool* overlap) {
  if (HASJ_PREDICT_FALSE(!degrade_.Allow())) {
    return Status::Unavailable("hw breaker open");
  }
  Stopwatch watch;
  Status status = HwBoundariesOverlap(p, q, viewport, overlap);
  if (HASJ_PREDICT_FALSE(!status.ok())) {
    NoteHwFault();
    return status;
  }
  // hw_tests counts *completed* hardware executions, so the per-pair and
  // batched paths agree on it under faults too.
  ++counters_.hw_tests;
  counters_.hw_ms += watch.ElapsedMillis();
  degrade_.Note(true, &counters_);
  return status;
}

void HwIntersectionTester::NoteHwFault() {
  ++counters_.hw_faults;
  degrade_.Note(false, &counters_);
  if (config_.trace != nullptr) config_.trace->Instant("hw-fault", "fault");
}

bool HwIntersectionTester::FinishFallback(const geom::Polygon& p,
                                          const geom::Polygon& q) {
  ++counters_.hw_fallback_pairs;
  return FinishSurvivor(p, q);
}

bool HwIntersectionTester::PolygonContains(const geom::Polygon& outer,
                                           geom::Point pt) {
  // Tiny polygons are cheaper to scan than to index.
  if (outer.size() < 64) return algo::ContainsPoint(outer, pt);
  auto it = locators_.find(&outer);
  if (it == locators_.end()) {
    it = locators_.emplace(&outer, algo::PointLocator(outer)).first;
  }
  return it->second.Contains(pt);
}

Status HwIntersectionTester::HwBoundariesOverlap(const geom::Polygon& p,
                                                 const geom::Polygon& q,
                                                 const geom::Box& viewport,
                                                 bool* overlap) {
  // §3.2: project the MBR intersection onto the window and render only the
  // edges that reach it. The clip is a cheap per-edge bounding-box test —
  // a conservative superset of GL clipping: extra edges only add pixels,
  // and a boundary crossing lies in the viewport, so its two edges are
  // always rendered.
  ctx_.SetDataRect(viewport);
  if (Status s = ctx_.BeginRender(); !s.ok()) return s;
  const int res = config_.resolution;
  const auto in_view = [&viewport](const geom::Segment& e) {
    return e.Bounds().Intersects(viewport);
  };

  if (config_.backend == HwBackend::kBitmask) {
    // Fill and probe run through the row-span kernel engine (DESIGN.md
    // §14): each edge's footprint becomes a row-span buffer, applied to
    // the mask by whole rows instead of per pixel. The saturation stop
    // moved from pixel to primitive granularity with no observable change:
    // unset == 0 means the mask is full, so the pixels a mid-primitive
    // stop would have skipped are all already set.
    mask_a_.Clear();
    bool any_first = false;
    int64_t unset = static_cast<int64_t>(res) * res;
    {
      obs::PmuScope fill_pmu(config_.pmu, obs::PmuStage::kHwFill);
      for (size_t i = 0; i < p.size() && unset > 0; ++i) {
        const geom::Segment e = p.edge(i);
        if (!in_view(e)) continue;
        any_first = true;
        if (!glsim::ComputeLineAASpans(ctx_.ToWindow(e.a), ctx_.ToWindow(e.b),
                                       config_.line_width, res, res,
                                       &spans_)) {
          continue;
        }
        const glsim::FillResult fr = mask_a_.FillSpans(*engine_, &spans_);
        counters_.fill_spans += fr.spans;
        unset -= fr.newly_set;
      }
    }
    if (pixels_hist_ != nullptr) {
      pixels_hist_->Record(static_cast<int64_t>(res) * res - unset);
    }
    if (unset == 0) {
      ++counters_.fill_saturation_stops;
      if (config_.trace != nullptr) {
        config_.trace->Instant("hw-saturated", "hw");
      }
    }
    if (!any_first) {
      *overlap = false;
      return Status::Ok();
    }
    // Probe the first mask while rasterizing the second boundary: the
    // decision is identical to building both masks, found sooner. The
    // probe kernel stops at the first row containing a doubly-colored
    // pixel — the early-stop point every simd backend must share — and
    // the edge loop stops with it.
    if (Status s = ctx_.BeginScan(); !s.ok()) return s;
    bool found = false;
    {
      obs::PmuScope scan_pmu(config_.pmu, obs::PmuStage::kHwScan);
      for (size_t i = 0; i < q.size() && !found; ++i) {
        const geom::Segment e = q.edge(i);
        if (!in_view(e)) continue;
        if (!glsim::ComputeLineAASpans(ctx_.ToWindow(e.a), ctx_.ToWindow(e.b),
                                       config_.line_width, res, res,
                                       &spans_)) {
          continue;
        }
        const glsim::ProbeResult pr = mask_a_.ProbeSpans(*engine_, &spans_);
        counters_.scan_spans += pr.spans;
        found = pr.hit_row >= 0;
      }
    }
    if (found) ++counters_.scan_hit_stops;
    *overlap = found;
    return Status::Ok();
  }

  // Faithful Algorithm 3.1 (steps 2.1-2.8). The color buffer is cleared
  // between the two renders so GL_ACCUM adds the two boundary images rather
  // than the first image twice (the paper's listing leaves this implicit).
  ctx_.SetLineWidth(config_.line_width);
  ctx_.SetColor(glsim::Rgb{0.5f, 0.5f, 0.5f});
  ctx_.Clear();
  ctx_.ClearAccum();
  {
    obs::PmuScope fill_pmu(config_.pmu, obs::PmuStage::kHwFill);
    for (size_t i = 0; i < p.size(); ++i) {
      const geom::Segment e = p.edge(i);
      if (in_view(e)) ctx_.DrawSegment(e.a, e.b);
    }
    ctx_.Accum(glsim::AccumOp::kLoad, 1.0f);
  }
  obs::PmuScope scan_pmu(config_.pmu, obs::PmuStage::kHwScan);
  ctx_.Clear();
  for (size_t i = 0; i < q.size(); ++i) {
    const geom::Segment e = q.edge(i);
    if (in_view(e)) ctx_.DrawSegment(e.a, e.b);
  }
  ctx_.Accum(glsim::AccumOp::kAccum, 1.0f);
  ctx_.Accum(glsim::AccumOp::kReturn, 1.0f);

  if (Status s = ctx_.BeginScan(); !s.ok()) return s;
  if (config_.use_minmax) {
    *overlap = ctx_.Minmax().max.r >= kOverlapThreshold;
  } else {
    *overlap = ctx_.color_buffer().AnyPixelAtLeast(kOverlapThreshold);
  }
  return Status::Ok();
}

}  // namespace hasj::core
