#include "core/distance_join.h"

#include <optional>

#include "common/stopwatch.h"
#include "core/batch_tester.h"
#include "core/hw_distance.h"
#include "core/interval_stage.h"
#include "core/paranoid.h"
#include "core/query_obs.h"
#include "core/refinement_executor.h"
#include "filter/object_filters.h"
#include "obs/perf_counters.h"
#include "obs/trace.h"

namespace hasj::core {

WithinDistanceJoin::WithinDistanceJoin(const data::Dataset& a,
                                       const data::Dataset& b)
    : index_a_(a), index_b_(b) {}

DistanceJoinResult WithinDistanceJoin::Run(
    double d, const DistanceJoinOptions& options) const {
  DistanceJoinResult result;
  Stopwatch watch;
  const obs::PmuSnapshot pmu_begin = obs::PmuSnapshotOf(options.hw.pmu);
  const QueryDeadline deadline =
      QueryDeadline::Start(options.hw.deadline_ms, options.hw.cancel);
  obs::ManualSpan stage_span;
  // Pin one version of each dataset for the whole query: a concurrent
  // ReloadDatasetInPlace cannot change what this run sees.
  const data::DatasetIndex::Pinned a = index_a_.Acquire();
  const data::DatasetIndex::Pinned b = index_b_.Acquire();

  // Stage 1: MBR distance join (MBR distance lower-bounds object distance).
  stage_span.Start(options.hw.trace, "mbr", "stage");
  const std::vector<std::pair<int64_t, int64_t>> candidates =
      index::JoinWithinDistance(*a.rtree, *b.rtree, d);
  result.counts.candidates = static_cast<int64_t>(candidates.size());
  result.costs.mbr_ms = watch.ElapsedMillis();
  stage_span.End();

  // Stage 2: 0-Object and 1-Object filters (distance upper bounds; a bound
  // <= d makes the pair a definite positive).
  stage_span.Start(options.hw.trace, "filter", "stage");
  watch.Restart();
  std::vector<std::pair<int64_t, int64_t>> undecided;
  undecided.reserve(candidates.size());
  // Interval secondary filter (DESIGN.md §12), accept-only here: a TRUE-HIT
  // intersection implies distance 0 <= d; interval misses prove nothing
  // about the gap and fall through to refinement.
  std::shared_ptr<const filter::IntervalApprox> intervals_a;
  std::shared_ptr<const filter::IntervalApprox> intervals_b;
  if (options.hw.use_intervals && d >= 0.0 && result.status.ok()) {
    geom::Box frame = a.Bounds();
    frame.Extend(b.Bounds());
    const filter::IntervalApproxConfig interval_config =
        IntervalConfigFrom(options.hw, options.num_threads);
    auto acquired_a = interval_cache_a_.Acquire(a.data.polygons(), frame,
                                                a.epoch(), interval_config);
    auto acquired_b = interval_cache_b_.Acquire(b.data.polygons(), frame,
                                                b.epoch(), interval_config);
    if (acquired_a.ok() && acquired_b.ok()) {
      intervals_a = std::move(acquired_a).value();
      intervals_b = std::move(acquired_b).value();
    } else {
      result.status =
          acquired_a.ok() ? acquired_b.status() : acquired_a.status();
    }
  }
  const bool guarded = deadline.active();
  // PMU attribution for the serial decision loop, active only when the
  // interval filter (which dominates the loop) is; ended explicitly after
  // the loop so the compare stage is not attributed here.
  std::optional<obs::PmuScope> interval_pmu;
  if (intervals_a != nullptr && options.hw.pmu != nullptr) {
    interval_pmu.emplace(options.hw.pmu, obs::PmuStage::kIntervalDecide,
                         options.hw.trace);
  }
  for (size_t ci = 0; ci < candidates.size() && result.status.ok(); ++ci) {
    // Poll the budget every 64 candidates: truncating here leaves `pairs`
    // a prefix of the filter hits, which lead the complete result list.
    if (guarded && (ci % 64) == 0 && deadline.Expired()) {
      result.status = deadline.ToStatus();
      break;
    }
    const auto& [ida, idb] = candidates[ci];
    const geom::Box& ba = a.mbr(static_cast<size_t>(ida));
    const geom::Box& bb = b.mbr(static_cast<size_t>(idb));
    if (options.use_zero_object_filter &&
        filter::ZeroObjectUpperBound(ba, bb) <= d) {
      result.pairs.emplace_back(ida, idb);
      ++result.zero_object_hits;
      ++result.counts.filter_hits;
      continue;
    }
    if (options.use_one_object_filter) {
      // The paper retrieves the larger object's geometry for the tighter
      // one-sided bound.
      const bool a_larger = ba.Area() >= bb.Area();
      const geom::Polygon& larger = a_larger
                                        ? a.polygon(static_cast<size_t>(ida))
                                        : b.polygon(static_cast<size_t>(idb));
      const geom::Box& other = a_larger ? bb : ba;
      if (filter::OneObjectUpperBound(larger, other) <= d) {
        result.pairs.emplace_back(ida, idb);
        ++result.one_object_hits;
        ++result.counts.filter_hits;
        continue;
      }
    }
    if (intervals_a != nullptr) {
      if (filter::DecidePair(intervals_a->object(static_cast<size_t>(ida)),
                             intervals_b->object(static_cast<size_t>(idb))) ==
          filter::IntervalVerdict::kHit) {
        HASJ_PARANOID_ONLY(paranoid::CheckIntervalAccept(
            a.polygon(static_cast<size_t>(ida)),
            b.polygon(static_cast<size_t>(idb)), options.hw));
        result.pairs.emplace_back(ida, idb);
        ++result.interval_hits;
        ++result.counts.filter_hits;
        continue;
      }
      ++result.interval_undecided;
    }
    undecided.emplace_back(ida, idb);
  }
  interval_pmu.reset();
  result.costs.filter_ms = watch.ElapsedMillis();
  stage_span.End();

  // Stage 3: geometry comparison; the tester is the refinement engine for
  // both modes, so the software baseline shares the cached point locators.
  // One tester per worker; accepted pairs come back in candidate order at
  // every thread count.
  stage_span.Start(options.hw.trace, "compare", "stage");
  watch.Restart();
  HwConfig hw_config = options.hw;
  hw_config.enable_hw = options.use_hw;
  RefinementExecutor executor(options.num_threads);
  executor.SetObservability(options.hw.trace, options.hw.metrics);
  executor.SetDeadline(&deadline);
  executor.SetFaults(options.hw.faults);
  RefinementOutcome<std::pair<int64_t, int64_t>> refined;
  if (result.status.ok()) {
    if (hw_config.use_batching && hw_config.enable_hw &&
        hw_config.backend == HwBackend::kBitmask) {
      // Batched hardware step (DESIGN.md §9): decision-identical to the
      // per-pair branch below, amortized over atlas tiles.
      refined = executor.RefineBatches(
          undecided,
          [&] { return BatchHardwareTester(hw_config, {}, options.sw); },
          [&](const std::pair<int64_t, int64_t>& c) {
            return PolygonPair{&a.polygon(static_cast<size_t>(c.first)),
                               &b.polygon(static_cast<size_t>(c.second))};
          },
          [d](BatchHardwareTester& tester, std::span<const PolygonPair> pairs,
              uint8_t* verdicts) {
            tester.TestWithinDistanceBatch(pairs, d, verdicts);
          });
    } else {
      refined = executor.Refine(
          undecided, [&] { return HwDistanceTester(hw_config, options.sw); },
          [&](HwDistanceTester& tester,
              const std::pair<int64_t, int64_t>& c) {
            return tester.Test(a.polygon(static_cast<size_t>(c.first)),
                               b.polygon(static_cast<size_t>(c.second)), d);
          });
    }
    result.counts.compared += refined.attempted;
    result.pairs.insert(result.pairs.end(), refined.accepted.begin(),
                        refined.accepted.end());
    result.status = refined.status;
  }
  result.costs.compare_ms = watch.ElapsedMillis();
  stage_span.End();
  result.counts.truncated = !result.status.ok();
  result.counts.results = static_cast<int64_t>(result.pairs.size());
  result.hw_counters = refined.counters;
  RecordQueryObs(options.hw, "distance_join", result.costs, result.counts,
                 result.hw_counters,
                 {.interval_hits = result.interval_hits,
                  .interval_undecided = result.interval_undecided},
                 pmu_begin);
  return result;
}

}  // namespace hasj::core
