#ifndef HASJ_CORE_PARANOID_H_
#define HASJ_CORE_PARANOID_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/hw_config.h"
#include "geom/box.h"
#include "geom/point.h"
#include "geom/polygon.h"

namespace hasj::core::paranoid {

// Conservativeness oracle (DESIGN.md §6).
//
// The paper's entire speedup rests on one invariant: the hardware test is a
// conservative filter — it may keep a disjoint pair (a false hit costs one
// software test) but must NEVER reject a truly intersecting one (Eq. 1 /
// §2.2). A HASJ_PARANOID build (cmake -DHASJ_PARANOID=ON) compiles a
// cross-check into every hardware-filter rejection in hw_intersection,
// hw_distance, hw_filled and hw_nearest: the rejected pair is re-tested
// with the exact algo/ predicate, and a violation aborts the process with a
// rendered-pair dump (WKT of both polygons, the viewport, and an ASCII
// rendering of the two boundary masks) so the failing geometry can be
// replayed.
//
// The Check* functions themselves are compiled unconditionally (tests use
// them directly in any configuration); HASJ_PARANOID only controls whether
// the hot paths invoke them. Call sites use HASJ_PARANOID_ONLY so the
// normal build pays nothing.

#if HASJ_PARANOID
#define HASJ_PARANOID_ONLY(stmt) \
  do {                           \
    stmt;                        \
  } while (0)
#else
#define HASJ_PARANOID_ONLY(stmt) \
  do {                           \
  } while (0)
#endif

// What a violation handler receives: the full human-readable dump.
using ViolationHandler = std::function<void(const std::string& dump)>;

// Installs a handler invoked instead of the default print-and-abort; pass
// nullptr to restore the default. Test-only (not thread-safe by design: the
// negative tests that use it run single-threaded).
void SetViolationHandlerForTest(ViolationHandler handler);

// Routes a violation to the installed handler, or prints the dump and
// aborts. Every dump starts with "CONSERVATIVENESS VIOLATION".
void ReportViolation(const std::string& dump);

// Oracle checks, one per hardware tester. Each is called at the moment the
// hardware filter rejected a pair; it re-runs the exact predicate and
// reports a violation when the exact answer contradicts the rejection.

// hw_intersection rejected: the boundaries must not intersect.
void CheckIntersectionReject(const geom::Polygon& p, const geom::Polygon& q,
                             const geom::Box& viewport,
                             const HwConfig& config);

// hw_distance rejected: the boundaries must not be within distance d.
void CheckDistanceReject(const geom::Polygon& p, const geom::Polygon& q,
                         double d, const geom::Box& viewport, double width_px,
                         const HwConfig& config);

// hw_filled rejected: the closed regions must be disjoint (filled rendering
// covers containment, so the exact predicate here is the full test).
void CheckFilledReject(const geom::Polygon& p, const geom::Polygon& q,
                       const geom::Box& viewport, const HwConfig& config);

// hw_nearest answered: the refined result must equal the brute-force
// nearest site (smallest index on ties).
void CheckNearestResult(const std::vector<geom::Point>& sites, geom::Point q,
                        int64_t got);

// Interval filter decided TRUE HIT: the closed regions must intersect.
// Unlike the hardware testers the interval filter can *accept* without
// refinement, so the oracle guards both sides of its decisions.
void CheckIntervalAccept(const geom::Polygon& p, const geom::Polygon& q,
                         const HwConfig& config);

// Interval filter decided TRUE MISS: the closed regions must be disjoint.
void CheckIntervalReject(const geom::Polygon& p, const geom::Polygon& q,
                         const HwConfig& config);

}  // namespace hasj::core::paranoid

#endif  // HASJ_CORE_PARANOID_H_
