#ifndef HASJ_CORE_JOIN_H_
#define HASJ_CORE_JOIN_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "algo/polygon_intersect.h"
#include "common/status.h"
#include "core/hw_config.h"
#include "core/query_stats.h"
#include "data/dataset.h"
#include "filter/interval_approx.h"
#include "filter/signature_cache.h"
#include "data/dataset_index.h"
#include "index/rtree.h"

namespace hasj::core {

struct JoinOptions {
  bool use_hw = false;
  HwConfig hw;
  algo::SoftwareIntersectOptions sw;
  // Rasterization intermediate filter (Zimbrão & Souza, Table 1 of the
  // paper): per-polygon raster signatures, built lazily and cached in the
  // join object across runs, prove candidate pairs intersecting or
  // disjoint before geometry comparison. Value = signature grid size; 0
  // disables (the paper's evaluated configuration).
  int raster_filter_grid = 0;
  // Worker threads for the geometry-comparison stage and the raster-
  // signature pre-build; 1 = serial, 0 = hardware concurrency. Results and
  // counter totals are identical at every thread count
  // (core/refinement_executor.h).
  int num_threads = 1;
};

struct JoinResult {
  std::vector<std::pair<int64_t, int64_t>> pairs;  // intersecting (a, b) ids
  StageCosts costs;
  StageCounts counts;
  int64_t raster_positives = 0;  // pairs proven intersecting by the filter
  int64_t raster_negatives = 0;  // pairs proven disjoint by the filter
  // Interval-filter decisions (zero unless hw.use_intervals): TRUE-HIT
  // pairs accepted without refinement, TRUE-MISS pairs dropped, and the
  // INCONCLUSIVE remainder routed to the geometry comparison.
  int64_t interval_hits = 0;
  int64_t interval_misses = 0;
  int64_t interval_undecided = 0;
  HwCounters hw_counters;
  // Ok for a complete run; on kDeadlineExceeded / kInternal `pairs` is an
  // exact prefix of the complete result and counts.truncated is set.
  Status status;
};

// Intersection join A ⋈ B: all object pairs with intersecting geometries.
// MBR filtering is a synchronized R-tree traversal; geometry comparison is
// the software or hardware-assisted intersection test (Figures 12-13).
//
// Run() is const and internally synchronized (thread-safe signature
// caches; per-worker testers), so concurrent Run() calls are safe.
class IntersectionJoin {
 public:
  // Keeps references to both datasets; builds both R-trees eagerly. Each
  // Run() pins both datasets' content and trees at entry, so an in-place
  // reload mid-query cannot mix epochs (DESIGN.md §16).
  IntersectionJoin(const data::Dataset& a, const data::Dataset& b);

  [[nodiscard]] JoinResult Run(const JoinOptions& options = {}) const;

 private:
  // Epoch-pinned content + R-tree per side, acquired once per Run().
  data::DatasetIndex index_a_;
  data::DatasetIndex index_b_;
  // Per-side raster signatures, cached across runs at a fixed grid.
  filter::SignatureCache sig_cache_a_;
  filter::SignatureCache sig_cache_b_;
  // Per-side raster-interval approximations (hw.use_intervals), built over
  // the union frame of both datasets so cell indices are comparable; keyed
  // on each dataset's epoch so in-place reloads rebuild them.
  filter::IntervalApproxCache interval_cache_a_;
  filter::IntervalApproxCache interval_cache_b_;
};

}  // namespace hasj::core

#endif  // HASJ_CORE_JOIN_H_
