#ifndef HASJ_CORE_SELECTION_H_
#define HASJ_CORE_SELECTION_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "algo/polygon_intersect.h"
#include "core/hw_config.h"
#include "core/query_stats.h"
#include "data/dataset.h"
#include "filter/raster_signature.h"
#include "geom/polygon.h"
#include "index/rtree.h"

namespace hasj::core {

struct SelectionOptions {
  // Interior-filter tiling level l (grid 2^l x 2^l); negative disables the
  // intermediate filter (Figure 10 sweeps 0..6).
  int interior_tiling_level = -1;
  // Rasterization intermediate filter (Zimbrão & Souza, Table 1): candidate
  // signatures are cached in the selection object across queries, so the
  // build cost amortizes the way pre-processing techniques do in the
  // paper's taxonomy. Value = signature grid size; 0 disables.
  int raster_filter_grid = 0;
  // Geometry comparison with the hardware-assisted test (Algorithm 3.1)
  // instead of the software-only test.
  bool use_hw = false;
  HwConfig hw;
  algo::SoftwareIntersectOptions sw;
};

struct SelectionResult {
  std::vector<int64_t> ids;  // objects intersecting the query polygon
  StageCosts costs;
  StageCounts counts;
  int64_t raster_positives = 0;  // decided intersecting by the raster filter
  int64_t raster_negatives = 0;  // decided disjoint by the raster filter
  HwCounters hw_counters;        // zero unless use_hw
};

// Intersection selection: all dataset objects intersecting a query polygon,
// processed as MBR filtering (R-tree) -> intermediate filters (interior
// and/or raster) -> geometry comparison, the paper's Figure 8 pipeline.
//
// Not thread-safe: Run() populates the lazy per-object signature cache.
class IntersectionSelection {
 public:
  // Keeps a reference to the dataset; builds the R-tree once.
  explicit IntersectionSelection(const data::Dataset& dataset);
  ~IntersectionSelection();

  SelectionResult Run(const geom::Polygon& query,
                      const SelectionOptions& options = {}) const;

 private:
  const filter::RasterSignature& SignatureOf(int64_t id, int grid) const;

  const data::Dataset& dataset_;
  index::RTree rtree_;
  // Lazy raster signatures, keyed by object id; invalidated when a run
  // requests a different grid size.
  mutable std::vector<std::unique_ptr<filter::RasterSignature>> signatures_;
  mutable int signature_grid_ = 0;
};

}  // namespace hasj::core

#endif  // HASJ_CORE_SELECTION_H_
