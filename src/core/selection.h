#ifndef HASJ_CORE_SELECTION_H_
#define HASJ_CORE_SELECTION_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "algo/polygon_intersect.h"
#include "common/status.h"
#include "core/hw_config.h"
#include "core/query_stats.h"
#include "data/dataset.h"
#include "data/dataset_index.h"
#include "filter/interval_approx.h"
#include "filter/signature_cache.h"
#include "geom/polygon.h"
#include "index/rtree.h"

namespace hasj::core {

struct SelectionOptions {
  // Interior-filter tiling level l (grid 2^l x 2^l); negative disables the
  // intermediate filter (Figure 10 sweeps 0..6).
  int interior_tiling_level = -1;
  // Rasterization intermediate filter (Zimbrão & Souza, Table 1): candidate
  // signatures are cached in the selection object across queries, so the
  // build cost amortizes the way pre-processing techniques do in the
  // paper's taxonomy. Value = signature grid size; 0 disables.
  int raster_filter_grid = 0;
  // Geometry comparison with the hardware-assisted test (Algorithm 3.1)
  // instead of the software-only test.
  bool use_hw = false;
  HwConfig hw;
  algo::SoftwareIntersectOptions sw;
  // Worker threads for the geometry-comparison stage (and the raster-
  // signature pre-build): each worker runs its own tester over a chunk of
  // the candidate list (core/refinement_executor.h). 1 = serial (the
  // paper's single off-screen window), 0 = hardware concurrency. Results
  // and counter totals are identical at every thread count.
  int num_threads = 1;
};

struct SelectionResult {
  std::vector<int64_t> ids;  // objects intersecting the query polygon
  StageCosts costs;
  StageCounts counts;
  int64_t raster_positives = 0;  // decided intersecting by the raster filter
  int64_t raster_negatives = 0;  // decided disjoint by the raster filter
  // Interval-filter decisions (zero unless hw.use_intervals): TRUE-HIT
  // pairs accepted without refinement, TRUE-MISS pairs dropped, and the
  // INCONCLUSIVE remainder routed to the geometry comparison.
  int64_t interval_hits = 0;
  int64_t interval_misses = 0;
  int64_t interval_undecided = 0;
  HwCounters hw_counters;        // zero unless use_hw
  // Ok for a complete run. kDeadlineExceeded (budget/cancel) or kInternal
  // (a refinement worker failed): `ids` is then an exact prefix of the
  // complete result and counts.truncated is set.
  Status status;
};

// Intersection selection: all dataset objects intersecting a query polygon,
// processed as MBR filtering (R-tree) -> intermediate filters (interior
// and/or raster) -> geometry comparison, the paper's Figure 8 pipeline.
//
// Run() is const and internally synchronized: the per-object signature
// cache is a filter::SignatureCache (per-slot std::call_once builds,
// snapshot-pinned grid resets), so concurrent Run() calls — and the
// parallel refinement workers inside one call — are safe.
class IntersectionSelection {
 public:
  // Keeps a reference to the dataset; builds the R-tree eagerly. Each
  // Run() pins the dataset content and tree at entry, so a reload-in-place
  // mid-query cannot mix epochs (DESIGN.md §16).
  explicit IntersectionSelection(const data::Dataset& dataset);
  ~IntersectionSelection();

  [[nodiscard]] SelectionResult Run(const geom::Polygon& query,
                      const SelectionOptions& options = {}) const;

 private:
  // Epoch-pinned content + R-tree, acquired once per Run().
  data::DatasetIndex index_;
  // Lazy raster signatures, keyed by object id; a run acquires a snapshot
  // for its grid size, so grid changes install a fresh slot array instead
  // of clearing one that another run may still be reading.
  filter::SignatureCache signature_cache_;
  // Dataset-level raster-interval approximation (hw.use_intervals), built
  // on first use and shared across queries; keyed on the dataset epoch so
  // an in-place reload rebuilds it.
  filter::IntervalApproxCache interval_cache_;
};

}  // namespace hasj::core

#endif  // HASJ_CORE_SELECTION_H_
