#ifndef HASJ_CORE_INTERVAL_STAGE_H_
#define HASJ_CORE_INTERVAL_STAGE_H_

#include "core/hw_config.h"
#include "filter/interval_approx.h"

namespace hasj::core {

// Translates the pipeline-facing HwConfig knobs into the filter-layer
// interval build configuration. One place, so all four pipelines build
// interval approximations with identical semantics (same grid, budget,
// fault site, and instrumentation hooks).
inline filter::IntervalApproxConfig IntervalConfigFrom(const HwConfig& hw,
                                                       int num_threads) {
  filter::IntervalApproxConfig config;
  config.grid_bits = hw.interval_grid_bits;
  config.memory_budget_bytes = hw.interval_budget_bytes;
  config.num_threads = num_threads;
  config.faults = hw.faults;
  config.trace = hw.trace;
  config.metrics = hw.metrics;
  return config;
}

}  // namespace hasj::core

#endif  // HASJ_CORE_INTERVAL_STAGE_H_
