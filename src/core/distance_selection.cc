#include "core/distance_selection.h"

#include <optional>

#include "common/stopwatch.h"
#include "core/batch_tester.h"
#include "core/hw_distance.h"
#include "core/interval_stage.h"
#include "core/paranoid.h"
#include "core/query_obs.h"
#include "core/refinement_executor.h"
#include "filter/object_filters.h"
#include "obs/perf_counters.h"
#include "obs/trace.h"

namespace hasj::core {

WithinDistanceSelection::WithinDistanceSelection(const data::Dataset& dataset)
    : index_(dataset) {}

DistanceSelectionResult WithinDistanceSelection::Run(
    const geom::Polygon& query, double d,
    const DistanceSelectionOptions& options) const {
  DistanceSelectionResult result;
  Stopwatch watch;
  const obs::PmuSnapshot pmu_begin = obs::PmuSnapshotOf(options.hw.pmu);
  const QueryDeadline deadline =
      QueryDeadline::Start(options.hw.deadline_ms, options.hw.cancel);
  obs::ManualSpan stage_span;
  // Pin one dataset version for the whole query: a concurrent
  // ReloadDatasetInPlace cannot change what this run sees.
  const data::DatasetIndex::Pinned pin = index_.Acquire();

  // Stage 1: MBR distance filtering.
  stage_span.Start(options.hw.trace, "mbr", "stage");
  const std::vector<int64_t> candidates =
      pin.rtree->QueryWithinDistance(query.Bounds(), d);
  result.counts.candidates = static_cast<int64_t>(candidates.size());
  result.costs.mbr_ms = watch.ElapsedMillis();
  stage_span.End();

  // Stage 2: 0/1-Object distance upper-bound filters.
  stage_span.Start(options.hw.trace, "filter", "stage");
  watch.Restart();
  std::vector<int64_t> undecided;
  undecided.reserve(candidates.size());
  // Interval secondary filter (DESIGN.md §12), accept-only here: a TRUE-HIT
  // intersection implies distance 0 <= d; interval misses prove nothing
  // about the gap and fall through to refinement.
  std::shared_ptr<const filter::IntervalApprox> intervals;
  filter::ObjectIntervals query_intervals;
  if (options.hw.use_intervals && result.status.ok()) {
    auto acquired = interval_cache_.Acquire(
        pin.data.polygons(), pin.Bounds(), pin.epoch(),
        IntervalConfigFrom(options.hw, options.num_threads));
    if (acquired.ok()) {
      intervals = std::move(acquired).value();
      query_intervals = intervals->ApproximateObject(query);
    } else {
      result.status = acquired.status();
    }
  }
  const bool guarded = deadline.active();
  // PMU attribution for the serial decision loop, active only when the
  // interval filter (which dominates the loop) is; ended explicitly after
  // the loop so the compare stage is not attributed here.
  std::optional<obs::PmuScope> interval_pmu;
  if (intervals != nullptr && options.hw.pmu != nullptr) {
    interval_pmu.emplace(options.hw.pmu, obs::PmuStage::kIntervalDecide,
                         options.hw.trace);
  }
  for (size_t ci = 0; ci < candidates.size() && result.status.ok(); ++ci) {
    // Poll the budget every 64 candidates: truncating here leaves `ids` a
    // prefix of the filter hits, which lead the complete result list.
    if (guarded && (ci % 64) == 0 && deadline.Expired()) {
      result.status = deadline.ToStatus();
      break;
    }
    const int64_t id = candidates[ci];
    const geom::Box& mbr = pin.mbr(static_cast<size_t>(id));
    if (options.use_zero_object_filter &&
        filter::ZeroObjectUpperBound(mbr, query.Bounds()) <= d) {
      result.ids.push_back(id);
      ++result.zero_object_hits;
      ++result.counts.filter_hits;
      continue;
    }
    if (options.use_one_object_filter &&
        filter::OneObjectUpperBound(query, mbr) <= d) {
      result.ids.push_back(id);
      ++result.one_object_hits;
      ++result.counts.filter_hits;
      continue;
    }
    if (intervals != nullptr && d >= 0.0) {
      if (filter::DecidePair(query_intervals,
                             intervals->object(static_cast<size_t>(id))) ==
          filter::IntervalVerdict::kHit) {
        HASJ_PARANOID_ONLY(paranoid::CheckIntervalAccept(
            pin.polygon(static_cast<size_t>(id)), query, options.hw));
        result.ids.push_back(id);
        ++result.interval_hits;
        ++result.counts.filter_hits;
        continue;
      }
      ++result.interval_undecided;
    }
    undecided.push_back(id);
  }
  interval_pmu.reset();
  result.costs.filter_ms = watch.ElapsedMillis();
  stage_span.End();

  // Stage 3: geometry comparison through the shared refinement engine,
  // one tester per worker; accepted ids come back in candidate order at
  // every thread count.
  stage_span.Start(options.hw.trace, "compare", "stage");
  watch.Restart();
  HwConfig hw_config = options.hw;
  hw_config.enable_hw = options.use_hw;
  RefinementExecutor executor(options.num_threads);
  executor.SetObservability(options.hw.trace, options.hw.metrics);
  executor.SetDeadline(&deadline);
  executor.SetFaults(options.hw.faults);
  RefinementOutcome<int64_t> refined;
  if (result.status.ok()) {
    if (hw_config.use_batching && hw_config.enable_hw &&
        hw_config.backend == HwBackend::kBitmask) {
      // Batched hardware step (DESIGN.md §9): decision-identical to the
      // per-pair branch below, amortized over atlas tiles.
      refined = executor.RefineBatches(
          undecided,
          [&] { return BatchHardwareTester(hw_config, {}, options.sw); },
          [&](int64_t id) {
            return PolygonPair{&pin.polygon(static_cast<size_t>(id)),
                               &query};
          },
          [d](BatchHardwareTester& tester, std::span<const PolygonPair> pairs,
              uint8_t* verdicts) {
            tester.TestWithinDistanceBatch(pairs, d, verdicts);
          });
    } else {
      refined = executor.Refine(
          undecided, [&] { return HwDistanceTester(hw_config, options.sw); },
          [&](HwDistanceTester& tester, int64_t id) {
            return tester.Test(pin.polygon(static_cast<size_t>(id)),
                               query, d);
          });
    }
    result.counts.compared += refined.attempted;
    result.ids.insert(result.ids.end(), refined.accepted.begin(),
                      refined.accepted.end());
    result.status = refined.status;
  }
  result.costs.compare_ms = watch.ElapsedMillis();
  stage_span.End();
  result.counts.truncated = !result.status.ok();
  result.counts.results = static_cast<int64_t>(result.ids.size());
  result.hw_counters = refined.counters;
  RecordQueryObs(options.hw, "distance_selection", result.costs,
                 result.counts, result.hw_counters,
                 {.interval_hits = result.interval_hits,
                  .interval_undecided = result.interval_undecided},
                 pmu_begin);
  return result;
}

}  // namespace hasj::core
