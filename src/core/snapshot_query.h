#ifndef HASJ_CORE_SNAPSHOT_QUERY_H_
#define HASJ_CORE_SNAPSHOT_QUERY_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "algo/polygon_distance.h"
#include "algo/polygon_intersect.h"
#include "common/status.h"
#include "core/hw_config.h"
#include "data/versioned_dataset.h"
#include "filter/slot_interval_grid.h"
#include "geom/polygon.h"

namespace hasj::core {

// Overload-degradation ladder for the serving layer (DESIGN.md §16).
// Levels are cumulative — each one keeps every cheaper level's concession —
// and strictly performance-only: verdicts are exact at every level, because
// each step swaps one exact execution strategy for another (batching off,
// coarser-but-still-conservative raster window, interval pre-decision with
// exact software refinement of inconclusive pairs).
enum class DegradeLevel {
  kNone = 0,
  // L1: drop tile-atlas batching — smaller per-query working set, same
  // per-pair decisions (the batched path is decision-identical by design).
  kNoBatch = 1,
  // L2: also lower the hardware raster resolution — cheaper per-pair
  // hardware step; the conservative filter simply decides fewer pairs.
  kLowRes = 2,
  // L3: also bypass the hardware testers entirely — interval pre-decision
  // (when a grid is attached) plus exact software refinement.
  kIntervalsOnly = 3,
};

// The hardware config a query actually runs with at `level`. Split out so
// tests can assert the ladder deterministically.
HwConfig DegradedHwConfig(const HwConfig& hw, bool use_hw, DegradeLevel level);

struct SnapshotQueryOptions {
  // Geometry comparison with the hardware-assisted testers (subject to the
  // degradation ladder).
  bool use_hw = true;
  HwConfig hw;
  algo::SoftwareIntersectOptions sw_intersect;
  algo::DistanceOptions sw_distance;
  DegradeLevel degrade = DegradeLevel::kNone;
  // Per-store slot interval grids, consulted at kIntervalsOnly only (may be
  // null: refinement is pure software then). `intervals` serves the
  // selection snapshot / join side A; `intervals_b` join side B. A
  // self-join passes the same grid twice.
  const filter::SlotIntervalGrid* intervals = nullptr;
  const filter::SlotIntervalGrid* intervals_b = nullptr;
};

struct SnapshotQueryResult {
  std::vector<int64_t> ids;                          // selection forms
  std::vector<std::pair<int64_t, int64_t>> pairs;    // join forms
  int64_t candidates = 0;
  int64_t interval_hits = 0;
  int64_t interval_misses = 0;
  HwCounters hw_counters;
  // Ok for a complete run; kDeadlineExceeded / kCancelled results are
  // partial and must not be served as exact.
  Status status;
};

// Snapshot-pinned query forms for the mutable store: each runs entirely
// against the pinned index version + write-once slots it is handed, so
// concurrent Insert/Delete traffic cannot change what a running query sees.
// Results use candidate order (filter accepts first, refined accepts
// after); callers comparing against an oracle sort both sides.
SnapshotQueryResult SnapshotSelection(const data::VersionedDataset::Snapshot& snap,
                                      const geom::Polygon& query,
                                      const SnapshotQueryOptions& options = {});
SnapshotQueryResult SnapshotJoin(const data::VersionedDataset::Snapshot& a,
                                 const data::VersionedDataset::Snapshot& b,
                                 const SnapshotQueryOptions& options = {});
SnapshotQueryResult SnapshotDistanceSelection(
    const data::VersionedDataset::Snapshot& snap, const geom::Polygon& query,
    double d, const SnapshotQueryOptions& options = {});
SnapshotQueryResult SnapshotDistanceJoin(
    const data::VersionedDataset::Snapshot& a,
    const data::VersionedDataset::Snapshot& b, double d,
    const SnapshotQueryOptions& options = {});

// Serial oracles: brute-force scans over the snapshot's live ids with the
// exact software predicates, no index, no filters, no hardware. Ground
// truth for the chaos suite and the server's sampled self-verification.
// Sorted ascending (lexicographically for pairs).
std::vector<int64_t> OracleSelection(const data::VersionedDataset::Snapshot& snap,
                                     const geom::Polygon& query);
std::vector<std::pair<int64_t, int64_t>> OracleJoin(
    const data::VersionedDataset::Snapshot& a,
    const data::VersionedDataset::Snapshot& b);
std::vector<int64_t> OracleDistanceSelection(
    const data::VersionedDataset::Snapshot& snap, const geom::Polygon& query,
    double d);
std::vector<std::pair<int64_t, int64_t>> OracleDistanceJoin(
    const data::VersionedDataset::Snapshot& a,
    const data::VersionedDataset::Snapshot& b, double d);

}  // namespace hasj::core

#endif  // HASJ_CORE_SNAPSHOT_QUERY_H_
