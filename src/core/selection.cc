#include "core/selection.h"

#include <optional>

#include "common/stopwatch.h"
#include "core/hw_intersection.h"
#include "filter/interior_filter.h"

namespace hasj::core {

IntersectionSelection::IntersectionSelection(const data::Dataset& dataset)
    : dataset_(dataset), rtree_(dataset.BuildRTree()) {}

IntersectionSelection::~IntersectionSelection() = default;

const filter::RasterSignature& IntersectionSelection::SignatureOf(
    int64_t id, int grid) const {
  if (signature_grid_ != grid) {
    signatures_.clear();
    signatures_.resize(dataset_.size());
    signature_grid_ = grid;
  }
  auto& slot = signatures_[static_cast<size_t>(id)];
  if (slot == nullptr) {
    slot = std::make_unique<filter::RasterSignature>(
        dataset_.polygon(static_cast<size_t>(id)), grid);
  }
  return *slot;
}

SelectionResult IntersectionSelection::Run(
    const geom::Polygon& query, const SelectionOptions& options) const {
  SelectionResult result;
  Stopwatch watch;

  // Stage 1: MBR filtering.
  const std::vector<int64_t> candidates =
      rtree_.QueryIntersects(query.Bounds());
  result.counts.candidates = static_cast<int64_t>(candidates.size());
  result.costs.mbr_ms = watch.ElapsedMillis();

  // Stage 2: intermediate filtering (interior filter and/or raster
  // signature filter; the latter can also prove negatives).
  watch.Restart();
  std::vector<int64_t> undecided;
  undecided.reserve(candidates.size());
  std::optional<filter::InteriorFilter> interior;
  if (options.interior_tiling_level >= 0) {
    interior.emplace(query, options.interior_tiling_level);
  }
  std::optional<filter::RasterSignature> query_signature;
  if (options.raster_filter_grid > 0) {
    query_signature.emplace(query, options.raster_filter_grid);
  }
  for (int64_t id : candidates) {
    if (interior.has_value() &&
        interior->IdentifiesPositive(dataset_.mbr(static_cast<size_t>(id)))) {
      result.ids.push_back(id);
      ++result.counts.filter_hits;
      continue;
    }
    if (query_signature.has_value()) {
      switch (filter::CompareRasterSignatures(
          SignatureOf(id, options.raster_filter_grid), *query_signature)) {
        case filter::RasterFilterDecision::kIntersect:
          result.ids.push_back(id);
          ++result.raster_positives;
          ++result.counts.filter_hits;
          continue;
        case filter::RasterFilterDecision::kDisjoint:
          ++result.raster_negatives;
          ++result.counts.filter_hits;
          continue;
        case filter::RasterFilterDecision::kUnknown:
          break;
      }
    }
    undecided.push_back(id);
  }
  result.costs.filter_ms = watch.ElapsedMillis();

  // Stage 3: geometry comparison. The tester is the refinement engine for
  // both modes (use_hw toggles the hardware filter), so the software
  // baseline shares the cached point locators.
  watch.Restart();
  HwConfig hw_config = options.hw;
  hw_config.enable_hw = options.use_hw;
  HwIntersectionTester tester(hw_config, options.sw);
  for (int64_t id : undecided) {
    const geom::Polygon& object = dataset_.polygon(static_cast<size_t>(id));
    ++result.counts.compared;
    if (tester.Test(object, query)) result.ids.push_back(id);
  }
  result.costs.compare_ms = watch.ElapsedMillis();
  result.counts.results = static_cast<int64_t>(result.ids.size());
  result.hw_counters = tester.counters();
  return result;
}

}  // namespace hasj::core
