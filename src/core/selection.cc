#include "core/selection.h"

#include <optional>
#include <utility>

#include "common/stopwatch.h"
#include "core/batch_tester.h"
#include "core/hw_intersection.h"
#include "core/interval_stage.h"
#include "core/paranoid.h"
#include "core/query_obs.h"
#include "core/refinement_executor.h"
#include "filter/interior_filter.h"
#include "obs/perf_counters.h"
#include "obs/trace.h"

namespace hasj::core {

IntersectionSelection::IntersectionSelection(const data::Dataset& dataset)
    : index_(dataset) {}

IntersectionSelection::~IntersectionSelection() = default;

SelectionResult IntersectionSelection::Run(
    const geom::Polygon& query, const SelectionOptions& options) const {
  SelectionResult result;
  Stopwatch watch;
  const obs::PmuSnapshot pmu_begin = obs::PmuSnapshotOf(options.hw.pmu);
  const QueryDeadline deadline =
      QueryDeadline::Start(options.hw.deadline_ms, options.hw.cancel);
  RefinementExecutor executor(options.num_threads);
  executor.SetObservability(options.hw.trace, options.hw.metrics);
  executor.SetDeadline(&deadline);
  executor.SetFaults(options.hw.faults);
  obs::ManualSpan stage_span;
  // Pin the dataset version for the whole query: content, tree, and every
  // derived cache below key off this one epoch.
  const data::DatasetIndex::Pinned pin = index_.Acquire();

  // Stage 1: MBR filtering.
  stage_span.Start(options.hw.trace, "mbr", "stage");
  const std::vector<int64_t> candidates =
      pin.rtree->QueryIntersects(query.Bounds());
  result.counts.candidates = static_cast<int64_t>(candidates.size());
  result.costs.mbr_ms = watch.ElapsedMillis();
  stage_span.End();

  // Stage 2: intermediate filtering (interior filter and/or raster
  // signature filter; the latter can also prove negatives).
  stage_span.Start(options.hw.trace, "filter", "stage");
  watch.Restart();
  std::vector<int64_t> undecided;
  undecided.reserve(candidates.size());
  std::optional<filter::InteriorFilter> interior;
  if (options.interior_tiling_level >= 0) {
    interior.emplace(query, options.interior_tiling_level);
  }
  std::optional<filter::RasterSignature> query_signature;
  std::optional<filter::SignatureCache::Snapshot> signatures;
  if (options.raster_filter_grid > 0) {
    query_signature.emplace(query, options.raster_filter_grid);
    signatures = signature_cache_.Acquire(options.raster_filter_grid,
                                          pin.size(), pin.epoch());
    // Pre-build the candidate signatures in parallel (per-slot call_once,
    // so duplicate builds cannot happen); the serial decision loop below
    // then reads a warm cache. Candidates the interior filter will decide
    // never need a signature, so they are skipped here too.
    if (executor.threads() > 1) {
      if (Status s = executor.ParallelFor(
              static_cast<int64_t>(candidates.size()),
              [&](int64_t begin, int64_t end, int /*worker*/) {
                for (int64_t i = begin; i < end; ++i) {
                  const size_t id = static_cast<size_t>(candidates[i]);
                  if (interior.has_value() &&
                      interior->IdentifiesPositive(pin.mbr(id))) {
                    continue;
                  }
                  signatures->Get(id, pin.polygon(id));
                }
              });
          !s.ok()) {
        result.status = std::move(s);
      }
    }
  }
  // Interval secondary filter (DESIGN.md §12): dataset approximation built
  // once per (grid, budget, epoch) and shared across queries; the query
  // object is approximated against the same grid here.
  std::shared_ptr<const filter::IntervalApprox> intervals;
  filter::ObjectIntervals query_intervals;
  if (options.hw.use_intervals && result.status.ok()) {
    auto acquired = interval_cache_.Acquire(
        pin.data.polygons(), pin.Bounds(), pin.epoch(),
        IntervalConfigFrom(options.hw, options.num_threads));
    if (acquired.ok()) {
      intervals = std::move(acquired).value();
      query_intervals = intervals->ApproximateObject(query);
    } else {
      result.status = acquired.status();
    }
  }
  const bool guarded = deadline.active();
  // PMU attribution for the serial decision loop, active only when the
  // interval filter (which dominates the loop) is; ended explicitly after
  // the loop so the compare stage is not attributed here.
  std::optional<obs::PmuScope> interval_pmu;
  if (intervals != nullptr && options.hw.pmu != nullptr) {
    interval_pmu.emplace(options.hw.pmu, obs::PmuStage::kIntervalDecide,
                         options.hw.trace);
  }
  for (size_t ci = 0; ci < candidates.size() && result.status.ok(); ++ci) {
    // Poll the budget every 64 candidates: truncating here leaves `ids` a
    // prefix of the filter hits, which lead the complete result list.
    if (guarded && (ci % 64) == 0 && deadline.Expired()) {
      result.status = deadline.ToStatus();
      break;
    }
    const int64_t id = candidates[ci];
    if (interior.has_value() &&
        interior->IdentifiesPositive(pin.mbr(static_cast<size_t>(id)))) {
      result.ids.push_back(id);
      ++result.counts.filter_hits;
      continue;
    }
    if (intervals != nullptr) {
      switch (filter::DecidePair(query_intervals,
                                 intervals->object(static_cast<size_t>(id)))) {
        case filter::IntervalVerdict::kHit:
          HASJ_PARANOID_ONLY(paranoid::CheckIntervalAccept(
              pin.polygon(static_cast<size_t>(id)), query, options.hw));
          result.ids.push_back(id);
          ++result.interval_hits;
          ++result.counts.filter_hits;
          continue;
        case filter::IntervalVerdict::kMiss:
          HASJ_PARANOID_ONLY(paranoid::CheckIntervalReject(
              pin.polygon(static_cast<size_t>(id)), query, options.hw));
          ++result.interval_misses;
          ++result.counts.filter_hits;
          continue;
        case filter::IntervalVerdict::kInconclusive:
          ++result.interval_undecided;
          break;
      }
    }
    if (query_signature.has_value()) {
      switch (filter::CompareRasterSignatures(
          signatures->Get(static_cast<size_t>(id),
                          pin.polygon(static_cast<size_t>(id))),
          *query_signature)) {
        case filter::RasterFilterDecision::kIntersect:
          result.ids.push_back(id);
          ++result.raster_positives;
          ++result.counts.filter_hits;
          continue;
        case filter::RasterFilterDecision::kDisjoint:
          ++result.raster_negatives;
          ++result.counts.filter_hits;
          continue;
        case filter::RasterFilterDecision::kUnknown:
          break;
      }
    }
    undecided.push_back(id);
  }
  interval_pmu.reset();
  result.costs.filter_ms = watch.ElapsedMillis();
  stage_span.End();

  // Stage 3: geometry comparison. The tester is the refinement engine for
  // both modes (use_hw toggles the hardware filter), so the software
  // baseline shares the cached point locators. Each worker owns a tester;
  // accepted ids come back in candidate order at every thread count.
  stage_span.Start(options.hw.trace, "compare", "stage");
  watch.Restart();
  HwConfig hw_config = options.hw;
  hw_config.enable_hw = options.use_hw;
  RefinementOutcome<int64_t> refined;
  if (result.status.ok()) {
    if (hw_config.use_batching && hw_config.enable_hw &&
        hw_config.backend == HwBackend::kBitmask) {
      // Batched hardware step (DESIGN.md §9): decision-identical to the
      // per-pair branch below, amortized over atlas tiles.
      refined = executor.RefineBatches(
          undecided, [&] { return BatchHardwareTester(hw_config, options.sw); },
          [&](int64_t id) {
            return PolygonPair{&pin.polygon(static_cast<size_t>(id)),
                               &query};
          },
          [](BatchHardwareTester& tester, std::span<const PolygonPair> pairs,
             uint8_t* verdicts) { tester.TestIntersectionBatch(pairs, verdicts); });
    } else {
      refined = executor.Refine(
          undecided,
          [&] { return HwIntersectionTester(hw_config, options.sw); },
          [&](HwIntersectionTester& tester, int64_t id) {
            return tester.Test(pin.polygon(static_cast<size_t>(id)), query);
          });
    }
    result.counts.compared += refined.attempted;
    result.ids.insert(result.ids.end(), refined.accepted.begin(),
                      refined.accepted.end());
    result.status = refined.status;
  }
  result.costs.compare_ms = watch.ElapsedMillis();
  stage_span.End();
  result.counts.truncated = !result.status.ok();
  result.counts.results = static_cast<int64_t>(result.ids.size());
  result.hw_counters = refined.counters;
  RecordQueryObs(options.hw, "selection", result.costs, result.counts,
                 result.hw_counters,
                 {.raster_positives = result.raster_positives,
                  .raster_negatives = result.raster_negatives,
                  .interval_hits = result.interval_hits,
                  .interval_misses = result.interval_misses,
                  .interval_undecided = result.interval_undecided},
                 pmu_begin);
  return result;
}

}  // namespace hasj::core
