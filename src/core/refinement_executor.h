#ifndef HASJ_CORE_REFINEMENT_EXECUTOR_H_
#define HASJ_CORE_REFINEMENT_EXECUTOR_H_

#include <algorithm>
#include <cstdint>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "common/cancel.h"
#include "common/fault.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "core/batch_tester.h"
#include "core/hw_config.h"
#include "obs/metrics.h"
#include "obs/names.h"
#include "obs/trace.h"

namespace hasj::core {

// Outcome of one refinement stage: the accepted candidates in candidate
// order plus the per-worker testers' counters merged in worker order.
//
// status/attempted carry the deadline contract (DESIGN.md §11): on
// kDeadlineExceeded (budget or cancellation) or kInternal (a worker task
// failed), `accepted` holds the verdicts of the first `attempted`
// candidates only — a prefix of the full refinement in candidate order, so
// a truncated query result is a prefix of the untruncated one.
template <typename Item>
struct RefinementOutcome {
  std::vector<Item> accepted;
  HwCounters counters;
  Status status;           // Ok unless truncated
  int64_t attempted = 0;   // length of the refined candidate prefix
};

// Runs the geometry-comparison stage of a query pipeline over a candidate
// list, optionally in parallel.
//
// Each worker gets its own tester from the factory — an
// HwIntersectionTester/HwDistanceTester owns its render context, pixel
// masks, and point-locator cache, so workers share nothing and need no
// locks (the paper's off-screen window simply exists once per worker).
// Workers record per-candidate verdicts into a preallocated array and a
// serial pass gathers the accepted items, so the output order is the
// candidate order and byte-identical to the serial loop at every thread
// count. Counters are merged in worker order: the integer totals are
// scheduling-independent (every candidate is tested exactly once); only
// the wall-clock fields vary run to run, as they do for the serial loop.
//
// num_threads as carried by the query options: 1 (the default) is the
// serial loop with a single tester, 0 means hardware concurrency.
class RefinementExecutor {
 public:
  explicit RefinementExecutor(int num_threads)
      : threads_(ThreadPool::ResolveThreadCount(num_threads)) {
    if (threads_ > 1) pool_.emplace(threads_);
  }

  int threads() const { return threads_; }

  // Attaches the query's trace session and metrics registry (both may be
  // null, the default): workers name their trace tracks, chunks get spans,
  // and per-worker queue wait lands in the pool.queue_wait_us histogram.
  void SetObservability(obs::TraceSession* trace, obs::Registry* metrics) {
    trace_ = trace;
    metrics_ = metrics;
  }

  // Attaches the query's resolved deadline (null = none): Refine and
  // RefineBatches then poll it at chunk/batch boundaries and truncate to a
  // candidate prefix on expiry. The deadline object must outlive the calls.
  void SetDeadline(const QueryDeadline* deadline) { deadline_ = deadline; }

  // Attaches the fault injector (null = none) so the kPoolTask site can
  // fail worker chunks — exercising the thread pool's exception surface
  // end-to-end (the chunk body throws, the pool catches at the chunk
  // boundary, the executor reports kInternal with a prefix result).
  void SetFaults(FaultInjector* faults) { faults_ = faults; }

  // Chunked parallel loop over [0, n): body(begin, end, worker). Runs
  // inline when the executor is serial. Used by the pipelines to pre-build
  // shared read-only state (raster-signature caches) before a serial scan.
  // Non-OK only when a body threw (kInternal, first message).
  [[nodiscard]] Status ParallelFor(int64_t n, const ThreadPool::Body& body) {
    if (n <= 0) return Status::Ok();
    if (!pool_.has_value()) {
      body(0, n, 0);
      return Status::Ok();
    }
    Status status = pool_->ParallelFor(n, Grain(n), body);
    RecordPoolWait();
    return status;
  }

  // test(tester, item) -> keep? with tester built once per worker by
  // make_tester(). Returns accepted items in input order plus merged
  // counters.
  template <typename Item, typename MakeTester, typename Test>
  RefinementOutcome<Item> Refine(const std::vector<Item>& items,
                                 MakeTester&& make_tester, Test&& test) const {
    RefinementOutcome<Item> out;
    const int64_t n = static_cast<int64_t>(items.size());
    const bool guarded = deadline_ != nullptr && deadline_->active();
    if (!pool_.has_value() || n <= 1) {
      HASJ_TRACE_SCOPE(trace_, "compare-chunk", "refine", "pairs", n);
      auto tester = make_tester();
      out.accepted.reserve(items.size());
      out.attempted = n;
      for (int64_t i = 0; i < n; ++i) {
        // kDeadlineStride amortizes the clock read; the budget can overrun
        // by at most one stride's worth of pairs.
        if (guarded && (i % kDeadlineStride) == 0 && deadline_->Expired()) {
          out.status = deadline_->ToStatus();
          out.attempted = i;
          break;
        }
        const Item& item = items[static_cast<size_t>(i)];
        if (test(tester, item)) out.accepted.push_back(item);
      }
      out.counters = tester.counters();
      return out;
    }

    using Tester = decltype(make_tester());
    std::vector<Tester> testers;
    testers.reserve(static_cast<size_t>(threads_));
    for (int w = 0; w < threads_; ++w) testers.push_back(make_tester());

    named_.assign(static_cast<size_t>(threads_), 0);
    verdict_.assign(items.size(), 0);
    tested_.assign(items.size(), 0);
    const Status pool_status = pool_->ParallelFor(
        n, Grain(n), [&](int64_t begin, int64_t end, int worker) {
          MaybeInjectPoolFault();
          if (guarded && deadline_->Expired()) return;  // skip, stays untested
          NameWorkerTrack(named_, worker);
          HASJ_TRACE_SCOPE(trace_, "compare-chunk", "refine", "pairs",
                           end - begin);
          Tester& tester = testers[static_cast<size_t>(worker)];
          for (int64_t i = begin; i < end; ++i) {
            verdict_[static_cast<size_t>(i)] =
                test(tester, items[static_cast<size_t>(i)]) ? 1 : 0;
            tested_[static_cast<size_t>(i)] = 1;
          }
        });
    RecordPoolWait();

    GatherPrefix(items, verdict_, tested_, pool_status, &out);
    for (const Tester& tester : testers) out.counters += tester.counters();
    return out;
  }

  // Batched variant of Refine() for BatchHardwareTester (hw_config
  // use_batching): workers drain their candidate chunks through
  // test_batch(tester, pairs, verdicts) instead of one call per item, and
  // the tester amortizes the hardware step over atlas-sized sub-batches.
  // to_pair(item) -> PolygonPair resolves items to dataset polygons once,
  // up front. Output order and counter totals are identical to Refine()
  // with the per-pair tester at every thread count (the batch tester's
  // decisions are identical by construction, and the verdict-array gather
  // is the same).
  template <typename Item, typename MakeTester, typename ToPair,
            typename TestBatch>
  RefinementOutcome<Item> RefineBatches(const std::vector<Item>& items,
                                        MakeTester&& make_tester,
                                        ToPair&& to_pair,
                                        TestBatch&& test_batch) const {
    RefinementOutcome<Item> out;
    const int64_t n = static_cast<int64_t>(items.size());
    const bool guarded = deadline_ != nullptr && deadline_->active();
    // Member scratch: repeated RefineBatches calls (the steady state of a
    // batched query loop) reuse the vectors' capacity instead of
    // reallocating the pair/verdict arrays per call.
    pairs_.resize(items.size());
    verdict_.assign(items.size(), 0);
    if (!pool_.has_value() || n <= 1) {
      HASJ_TRACE_SCOPE(trace_, "compare-chunk", "refine", "pairs", n);
      auto tester = make_tester();
      for (size_t i = 0; i < items.size(); ++i) pairs_[i] = to_pair(items[i]);
      out.attempted = n;
      if (n > 0 && !guarded) {
        test_batch(tester, std::span<const PolygonPair>(pairs_),
                   verdict_.data());
      } else if (n > 0) {
        // Deadline active: hand the tester one atlas-batch-sized slice at a
        // time so the budget is polled at refinement-batch boundaries.
        // Verdicts are per-pair, so slicing never changes them.
        const int64_t stride =
            std::max<int64_t>(1, tester.config().batch_size);
        for (int64_t off = 0; off < n; off += stride) {
          if (deadline_->Expired()) {
            out.status = deadline_->ToStatus();
            out.attempted = off;
            break;
          }
          const size_t len =
              static_cast<size_t>(std::min<int64_t>(stride, n - off));
          test_batch(tester,
                     std::span<const PolygonPair>(pairs_.data() + off, len),
                     verdict_.data() + off);
        }
      }
      out.accepted.reserve(items.size());
      for (int64_t i = 0; i < out.attempted; ++i) {
        if (verdict_[static_cast<size_t>(i)]) {
          out.accepted.push_back(items[static_cast<size_t>(i)]);
        }
      }
      out.counters = tester.counters();
      return out;
    }

    using Tester = decltype(make_tester());
    std::vector<Tester> testers;
    testers.reserve(static_cast<size_t>(threads_));
    for (int w = 0; w < threads_; ++w) testers.push_back(make_tester());

    named_.assign(static_cast<size_t>(threads_), 0);
    tested_.assign(items.size(), 0);
    const Status pool_status = pool_->ParallelFor(
        n, Grain(n), [&](int64_t begin, int64_t end, int worker) {
          MaybeInjectPoolFault();
          if (guarded && deadline_->Expired()) return;  // skip, stays untested
          NameWorkerTrack(named_, worker);
          HASJ_TRACE_SCOPE(trace_, "compare-chunk", "refine", "pairs",
                           end - begin);
          for (int64_t i = begin; i < end; ++i) {
            pairs_[static_cast<size_t>(i)] =
                to_pair(items[static_cast<size_t>(i)]);
          }
          Tester& tester = testers[static_cast<size_t>(worker)];
          test_batch(tester,
                     std::span<const PolygonPair>(
                         pairs_.data() + begin,
                         static_cast<size_t>(end - begin)),
                     verdict_.data() + begin);
          for (int64_t i = begin; i < end; ++i) {
            tested_[static_cast<size_t>(i)] = 1;
          }
        });
    RecordPoolWait();

    GatherPrefix(items, verdict_, tested_, pool_status, &out);
    for (const Tester& tester : testers) out.counters += tester.counters();
    return out;
  }

 private:
  // Serial-path deadline poll stride (pairs between clock reads).
  static constexpr int64_t kDeadlineStride = 64;

  // ~8 handouts per worker: coarse enough that the shared cursor is cold,
  // fine enough that one slow chunk cannot serialize the tail.
  int64_t Grain(int64_t n) const {
    return std::max<int64_t>(1, n / (static_cast<int64_t>(threads_) * 8));
  }

  // kPoolTask injection: a firing check fails the whole chunk by throwing,
  // which is exactly the failure mode the pool's chunk-boundary catch
  // exists for. No-op (one pointer test) without an injector.
  void MaybeInjectPoolFault() const {
    if (faults_ == nullptr) return;
    if (Status s = faults_->Check(FaultSite::kPoolTask); !s.ok()) {
      throw std::runtime_error(s.ToString());
    }
  }

  // Serial gather of the parallel paths: accepted = verdicts over the
  // fully-tested candidate prefix, in candidate order. With no truncation
  // the prefix is everything and the output is byte-identical to the
  // serial loop at every thread count; with truncation (deadline skip or a
  // failed worker task) it is a prefix of that output.
  template <typename Item>
  void GatherPrefix(const std::vector<Item>& items,
                    const std::vector<uint8_t>& verdict,
                    const std::vector<uint8_t>& tested,
                    const Status& pool_status,
                    RefinementOutcome<Item>* out) const {
    const int64_t n = static_cast<int64_t>(items.size());
    int64_t prefix = n;
    for (int64_t i = 0; i < n; ++i) {
      if (!tested[static_cast<size_t>(i)]) {
        prefix = i;
        break;
      }
    }
    out->attempted = prefix;
    out->accepted.reserve(static_cast<size_t>(prefix));
    for (int64_t i = 0; i < prefix; ++i) {
      if (verdict[static_cast<size_t>(i)]) {
        out->accepted.push_back(items[static_cast<size_t>(i)]);
      }
    }
    if (!pool_status.ok()) {
      out->status = pool_status;
    } else if (prefix < n) {
      out->status = deadline_ != nullptr ? deadline_->ToStatus()
                                         : Status::DeadlineExceeded(
                                               "refinement truncated");
    }
  }

  // Labels the calling worker's trace track on its first chunk. Safe
  // without atomics: invocations for one worker index are serial, and each
  // worker touches only its own slot.
  void NameWorkerTrack(std::vector<uint8_t>& named, int worker) const {
    if (trace_ == nullptr || named[static_cast<size_t>(worker)] != 0) return;
    named[static_cast<size_t>(worker)] = 1;
    trace_->NameCurrentTrack("refine-worker-" + std::to_string(worker));
  }

  // Feeds the last job's per-worker queue wait into the registry (worker 0
  // is the caller and never queues, so it is skipped).
  void RecordPoolWait() const {
    if (metrics_ == nullptr || !pool_.has_value()) return;
    obs::Histogram& hist = metrics_->GetHistogram(obs::kHistQueueWaitUs);
    const std::vector<double>& waits = pool_->last_wait_us();
    for (size_t w = 1; w < waits.size(); ++w) {
      hist.Record(static_cast<int64_t>(waits[w]));
    }
  }

  int threads_;
  mutable std::optional<ThreadPool> pool_;
  // Gather scratch reused across Refine/RefineBatches calls (capacity
  // persists; assign() only rewrites contents). Mutable for the same
  // reason as pool_: the executor runs one refinement stage at a time, so
  // the const entry points may use per-executor scratch.
  mutable std::vector<PolygonPair> pairs_;
  mutable std::vector<uint8_t> verdict_;
  mutable std::vector<uint8_t> tested_;
  mutable std::vector<uint8_t> named_;
  obs::TraceSession* trace_ = nullptr;
  obs::Registry* metrics_ = nullptr;
  const QueryDeadline* deadline_ = nullptr;
  FaultInjector* faults_ = nullptr;
};

}  // namespace hasj::core

#endif  // HASJ_CORE_REFINEMENT_EXECUTOR_H_
