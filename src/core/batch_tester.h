#ifndef HASJ_CORE_BATCH_TESTER_H_
#define HASJ_CORE_BATCH_TESTER_H_

#include <cstdint>
#include <span>
#include <vector>

#include "algo/polygon_distance.h"
#include "algo/polygon_intersect.h"
#include "common/arena.h"
#include "core/hw_config.h"
#include "core/hw_distance.h"
#include "core/hw_intersection.h"
#include "geom/polygon.h"
#include "glsim/atlas.h"
#include "obs/metrics.h"

namespace hasj::core {

// One refinement candidate by reference. The polygons must outlive the
// batch call — true for dataset-owned polygons, as everywhere in the
// refinement stage.
struct PolygonPair {
  const geom::Polygon* first = nullptr;
  const geom::Polygon* second = nullptr;
};

// Batched tile-atlas execution of the hardware tests (DESIGN.md §9).
//
// The per-pair testers render each candidate into their own tiny window:
// one clear, one projection setup, one readback per pair. This tester packs
// config.batch_size candidates into one glsim::Atlas framebuffer — one tile
// of resolution x resolution pixels per pair — and runs the hardware step
// of a whole batch in two passes:
//
//   fill:  render every pair's FIRST edge chain into its tile
//          (Atlas::FillTileSpans through the row-span kernel engine: a
//          packed 8x8 tile is one OR per primitive);
//   scan:  render every pair's SECOND chain probing the filled tiles
//          (Atlas::ProbeTileSpans), stopping a tile at its first row with
//          a doubly-colored pixel.
//
// The atlas is cleared once per batch instead of once per pair, and the
// whole batch shares two Stopwatch reads. Everything around the hardware
// step is delegated to the per-pair testers' exposed decision skeleton
// (Plan / FinishSurvivor / FinishReject), so the batched decisions — and
// the integer counters — are identical to calling Test() per pair; the
// property-differential suite asserts this pair-for-pair.
//
// Requires the bitmask backend and resolution <= glsim::Atlas::kMaxTileRes
// (checked at construction).
class BatchHardwareTester {
 public:
  explicit BatchHardwareTester(
      const HwConfig& config = {},
      const algo::SoftwareIntersectOptions& isect_options = {},
      const algo::DistanceOptions& dist_options = {});

  // Intersection verdicts for `pairs`: verdicts[i] = Test(first, second).
  // Handles any pair count by looping over atlas-capacity sub-batches.
  void TestIntersectionBatch(std::span<const PolygonPair> pairs,
                             uint8_t* verdicts);

  // Within-distance verdicts: verdicts[i] = Test(first, second, d).
  void TestWithinDistanceBatch(std::span<const PolygonPair> pairs, double d,
                               uint8_t* verdicts);

  const HwConfig& config() const { return config_; }

  // Inner testers' counters plus the batch-side hardware counters, merged.
  // The totals match the per-pair path; only batch.* is new.
  HwCounters counters() const;

  // Row-span kernel backend the batch passes render through — the same
  // engine the inner per-pair testers resolved from config.simd.
  const glsim::RowSpanEngine& engine() const { return isect_.engine(); }

  // System allocations the per-sub-batch scratch arena has performed.
  // After one warm-up sub-batch at a given size this stops moving — the
  // zero-steady-state-allocation property asserted by
  // tests/property_differential_test.cc.
  int64_t scratch_grow_count() const { return arena_.grow_count(); }

 private:
  void IntersectionSubBatch(std::span<const PolygonPair> pairs,
                            uint8_t* verdicts);
  void DistanceSubBatch(std::span<const PolygonPair> pairs, double d,
                        uint8_t* verdicts);

  // Records the batch-shape histograms of one sub-batch (no-op when
  // metrics are detached).
  void RecordSubBatchShape(size_t pairs, int tiles);

  HwConfig config_;
  HwIntersectionTester isect_;
  HwDistanceTester dist_;
  glsim::Atlas atlas_;
  // Resolved once from config.metrics (null when metrics are off).
  obs::Histogram* batch_pairs_hist_ = nullptr;
  obs::Histogram* batch_tiles_hist_ = nullptr;
  obs::Histogram* occupancy_hist_ = nullptr;
  obs::Histogram* tile_pixels_hist_ = nullptr;
  // Hardware-step counters accrued here (the inner testers never see the
  // batched hardware step): hw_tests, hw_ms, batch.*.
  HwCounters batch_counters_;
  // Per-sub-batch scratch. The plan vectors stay members and are reused
  // for capacity (PairPlan/DistancePlan own std::vectors, so they cannot
  // live in the arena); the trivially-copyable gather scratch — the
  // pair->tile map, the per-tile flag arrays, and the row-span buffer —
  // comes from the bump arena below, Reset() once per sub-batch, so the
  // steady-state batch loop performs zero heap allocations
  // (scratch_grow_count() above).
  std::vector<PairPlan> isect_plans_;
  std::vector<DistancePlan> dist_plans_;
  common::ScratchArena arena_;
};

}  // namespace hasj::core

#endif  // HASJ_CORE_BATCH_TESTER_H_
