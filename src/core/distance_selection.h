#ifndef HASJ_CORE_DISTANCE_SELECTION_H_
#define HASJ_CORE_DISTANCE_SELECTION_H_

#include <cstdint>
#include <vector>

#include "algo/polygon_distance.h"
#include "common/status.h"
#include "core/hw_config.h"
#include "core/query_stats.h"
#include "data/dataset.h"
#include "data/dataset_index.h"
#include "filter/interval_approx.h"
#include "geom/polygon.h"
#include "index/rtree.h"

namespace hasj::core {

struct DistanceSelectionOptions {
  // Intermediate filters (Chan's runtime filters; positives only).
  bool use_zero_object_filter = true;
  bool use_one_object_filter = true;
  bool use_hw = false;
  HwConfig hw;
  algo::DistanceOptions sw;
  // Worker threads for the geometry-comparison stage; 1 = serial, 0 =
  // hardware concurrency. Results and counter totals are identical at
  // every thread count (core/refinement_executor.h).
  int num_threads = 1;
};

struct DistanceSelectionResult {
  std::vector<int64_t> ids;  // objects within distance d of the query
  StageCosts costs;
  StageCounts counts;
  int64_t zero_object_hits = 0;
  int64_t one_object_hits = 0;
  // Interval-filter accepts (zero unless hw.use_intervals). Distance
  // queries use the interval decision accept-only: a TRUE-HIT intersection
  // implies distance 0 <= d, but disjoint interval lists say nothing about
  // the gap, so there is no TRUE-MISS side here.
  int64_t interval_hits = 0;
  int64_t interval_undecided = 0;
  HwCounters hw_counters;
  // Ok for a complete run; on kDeadlineExceeded / kInternal `ids` is an
  // exact prefix of the complete result and counts.truncated is set.
  Status status;
};

// Within-distance selection ("all objects within d of this polygon" — the
// selection form of the paper's buffer query): MBR distance filtering via
// the R-tree, 0/1-Object filters, then the software or hardware-assisted
// distance test.
class WithinDistanceSelection {
 public:
  explicit WithinDistanceSelection(const data::Dataset& dataset);

  [[nodiscard]] DistanceSelectionResult Run(const geom::Polygon& query, double d,
                              const DistanceSelectionOptions& options = {}) const;

 private:
  // Epoch-keyed snapshot + R-tree pair; Run() pins one consistent view at
  // entry so a concurrent reload cannot mix dataset versions mid-query.
  data::DatasetIndex index_;
  // Dataset-level raster-interval approximation (hw.use_intervals), built
  // on first use and keyed on the dataset epoch.
  filter::IntervalApproxCache interval_cache_;
};

}  // namespace hasj::core

#endif  // HASJ_CORE_DISTANCE_SELECTION_H_
