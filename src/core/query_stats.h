#ifndef HASJ_CORE_QUERY_STATS_H_
#define HASJ_CORE_QUERY_STATS_H_

#include <cstdint>

namespace hasj::core {

// Per-stage wall-clock costs of one query, matching the paper's three-stage
// measurement breakdown (Figure 8 / §4.1.1): MBR filtering, intermediate
// filtering, geometry comparison. Milliseconds.
struct StageCosts {
  double mbr_ms = 0.0;
  double filter_ms = 0.0;
  double compare_ms = 0.0;

  double total_ms() const { return mbr_ms + filter_ms + compare_ms; }

  StageCosts& operator+=(const StageCosts& o) {
    mbr_ms += o.mbr_ms;
    filter_ms += o.filter_ms;
    compare_ms += o.compare_ms;
    return *this;
  }
};

// Cardinalities at each pipeline stage.
struct StageCounts {
  int64_t candidates = 0;    // survivors of MBR filtering
  int64_t filter_hits = 0;   // decided by the intermediate filter
  int64_t compared = 0;      // pairs that reached geometry comparison
  int64_t results = 0;       // final result size

  StageCounts& operator+=(const StageCounts& o) {
    candidates += o.candidates;
    filter_hits += o.filter_hits;
    compared += o.compared;
    results += o.results;
    return *this;
  }
};

}  // namespace hasj::core

#endif  // HASJ_CORE_QUERY_STATS_H_
