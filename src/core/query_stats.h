#ifndef HASJ_CORE_QUERY_STATS_H_
#define HASJ_CORE_QUERY_STATS_H_

#include <cstdint>

namespace hasj::core {

// Per-stage wall-clock costs of one query, matching the paper's three-stage
// measurement breakdown (Figure 8 / §4.1.1): MBR filtering, intermediate
// filtering, geometry comparison. Milliseconds.
struct StageCosts {
  double mbr_ms = 0.0;
  double filter_ms = 0.0;
  double compare_ms = 0.0;

  double total_ms() const { return mbr_ms + filter_ms + compare_ms; }

  StageCosts& operator+=(const StageCosts& o) {
    mbr_ms += o.mbr_ms;
    filter_ms += o.filter_ms;
    compare_ms += o.compare_ms;
    return *this;
  }
};

// Observability into the batched tile-atlas execution of the hardware step
// (DESIGN.md §9). Embedded in HwCounters, so every pipeline result carries
// it; all fields stay zero on the per-pair path.
struct BatchCounters {
  int64_t batches = 0;        // atlas passes executed
  int64_t batched_pairs = 0;  // pairs whose hardware step ran in a tile
  double fill_ms = 0.0;       // first-chain render into the atlas
  double scan_ms = 0.0;       // second-chain render + shared-pixel scan

  BatchCounters& operator+=(const BatchCounters& o) {
    batches += o.batches;
    batched_pairs += o.batched_pairs;
    fill_ms += o.fill_ms;
    scan_ms += o.scan_ms;
    return *this;
  }
};

// Cardinalities at each pipeline stage.
struct StageCounts {
  int64_t candidates = 0;    // survivors of MBR filtering
  int64_t filter_hits = 0;   // decided by the intermediate filter
  int64_t compared = 0;      // pairs that reached geometry comparison
  int64_t results = 0;       // final result size
  // A deadline or cancellation truncated the run: the result is an exact
  // prefix of the full result in candidate order (DESIGN.md §11), and the
  // pipeline's status is kDeadlineExceeded.
  bool truncated = false;

  StageCounts& operator+=(const StageCounts& o) {
    candidates += o.candidates;
    filter_hits += o.filter_hits;
    compared += o.compared;
    results += o.results;
    truncated = truncated || o.truncated;
    return *this;
  }
};

}  // namespace hasj::core

#endif  // HASJ_CORE_QUERY_STATS_H_
