#include "core/query_obs.h"

#include <string>

#include "obs/names.h"

namespace hasj::core {

void RecordQueryMetrics(obs::Registry* metrics, const char* kind,
                        const StageCosts& costs, const StageCounts& counts,
                        const HwCounters& hw, int64_t raster_positives,
                        int64_t raster_negatives, int64_t interval_hits,
                        int64_t interval_misses, int64_t interval_undecided) {
  if (metrics == nullptr) return;

  metrics
      ->GetCounter(std::string(obs::kPipelinePrefix) + kind +
                   obs::kPipelineRunsSuffix)
      .Increment();

  metrics->GetGauge(obs::kStageMbrMs).Add(costs.mbr_ms);
  metrics->GetCounter(obs::kStageMbrOut).Add(counts.candidates);
  metrics->GetGauge(obs::kStageFilterMs).Add(costs.filter_ms);
  metrics->GetCounter(obs::kStageFilterDecided).Add(counts.filter_hits);
  metrics->GetCounter(obs::kStageFilterRasterPos).Add(raster_positives);
  metrics->GetCounter(obs::kStageFilterRasterNeg).Add(raster_negatives);
  metrics->GetCounter(obs::kStageIntervalHits).Add(interval_hits);
  metrics->GetCounter(obs::kStageIntervalMisses).Add(interval_misses);
  metrics->GetCounter(obs::kStageIntervalUndecided).Add(interval_undecided);
  metrics->GetGauge(obs::kStageCompareMs).Add(costs.compare_ms);
  metrics->GetCounter(obs::kStageCompareIn).Add(counts.compared);
  metrics->GetCounter(obs::kQueryResults).Add(counts.results);

  metrics->GetCounter(obs::kRefineTests).Add(hw.tests);
  metrics->GetCounter(obs::kRefineMbrMisses).Add(hw.mbr_misses);
  metrics->GetCounter(obs::kRefinePipHits).Add(hw.pip_hits);
  metrics->GetCounter(obs::kRefineSwThresholdSkips).Add(hw.sw_threshold_skips);
  metrics->GetCounter(obs::kRefineHwTests).Add(hw.hw_tests);
  metrics->GetCounter(obs::kRefineHwRejects).Add(hw.hw_rejects);
  metrics->GetCounter(obs::kRefineSwTests).Add(hw.sw_tests);
  metrics->GetCounter(obs::kRefineWidthFallbacks).Add(hw.width_fallbacks);
  metrics->GetCounter(obs::kRefineFillSpans).Add(hw.fill_spans);
  metrics->GetCounter(obs::kRefineScanSpans).Add(hw.scan_spans);
  metrics->GetCounter(obs::kRefineFillSaturationStops)
      .Add(hw.fill_saturation_stops);
  metrics->GetCounter(obs::kRefineScanHitStops).Add(hw.scan_hit_stops);
  metrics->GetGauge(obs::kRefinePipMs).Add(hw.pip_ms);
  metrics->GetGauge(obs::kRefineHwMs).Add(hw.hw_ms);
  metrics->GetGauge(obs::kRefineSwMs).Add(hw.sw_ms);

  metrics->GetCounter(obs::kBatchBatches).Add(hw.batch.batches);
  metrics->GetCounter(obs::kBatchBatchedPairs).Add(hw.batch.batched_pairs);
  metrics->GetGauge(obs::kBatchFillMs).Add(hw.batch.fill_ms);
  metrics->GetGauge(obs::kBatchScanMs).Add(hw.batch.scan_ms);

  // Robustness (DESIGN.md §11): degradation and truncation aggregates.
  metrics->GetCounter(obs::kRefineHwFaults).Add(hw.hw_faults);
  metrics->GetCounter(obs::kRefineHwFallbackPairs).Add(hw.hw_fallback_pairs);
  metrics->GetCounter(obs::kBreakerOpens).Add(hw.breaker_opens);
  if (counts.truncated) {
    metrics->GetCounter(obs::kQueryDeadlineExceeded).Increment();
    metrics->GetCounter(obs::kQueryTruncated).Increment();
  }
}

}  // namespace hasj::core
