#include "core/query_obs.h"

#include <cmath>
#include <string>
#include <utility>

#include "common/simd.h"
#include "obs/json.h"
#include "obs/names.h"
#include "obs/query_log.h"

namespace hasj::core {

namespace {

int64_t ToMicros(double ms) {
  return static_cast<int64_t>(std::llround(ms * 1000.0));
}

// One query-log JSONL record (schema_version 1; DESIGN.md §15 documents
// the schema, scripts/validate_bench_json.py --query-log validates it).
void RenderQueryLogRecord(std::string* out, const HwConfig& config,
                          const char* kind, const StageCosts& costs,
                          const StageCounts& counts, const HwCounters& hw,
                          const QueryObsTallies& tallies,
                          const obs::PmuSnapshot& pmu_delta) {
  obs::JsonWriter w(out);
  w.BeginObject();
  w.Key("schema_version");
  w.Int(1);
  w.Key("kind");
  w.String(kind);

  // Config fingerprint: every knob that changes routing or throughput, so
  // longitudinal analysis can group records by configuration.
  w.Key("config");
  w.BeginObject();
  w.Key("enable_hw");
  w.Bool(config.enable_hw);
  w.Key("backend");
  w.String(config.backend == HwBackend::kBitmask ? "bitmask" : "faithful");
  w.Key("resolution");
  w.Int(config.resolution);
  w.Key("sw_threshold");
  w.Int(config.sw_threshold);
  w.Key("simd");
  w.String(common::SimdModeName(config.simd));
  w.Key("use_batching");
  w.Bool(config.use_batching);
  w.Key("batch_size");
  w.Int(config.batch_size);
  w.Key("use_intervals");
  w.Bool(config.use_intervals);
  w.Key("interval_grid_bits");
  w.Int(config.interval_grid_bits);
  w.Key("deadline_ms");
  w.Double(config.deadline_ms);
  w.Key("faults");
  w.Bool(config.faults != nullptr);
  w.EndObject();

  w.Key("costs");
  w.BeginObject();
  w.Key("mbr_ms");
  w.Double(costs.mbr_ms);
  w.Key("filter_ms");
  w.Double(costs.filter_ms);
  w.Key("compare_ms");
  w.Double(costs.compare_ms);
  w.Key("total_ms");
  w.Double(costs.mbr_ms + costs.filter_ms + costs.compare_ms);
  w.EndObject();

  w.Key("counts");
  w.BeginObject();
  w.Key("candidates");
  w.Int(counts.candidates);
  w.Key("filter_hits");
  w.Int(counts.filter_hits);
  w.Key("compared");
  w.Int(counts.compared);
  w.Key("results");
  w.Int(counts.results);
  w.Key("truncated");
  w.Bool(counts.truncated);
  w.EndObject();

  w.Key("hw");
  w.BeginObject();
  w.Key("tests");
  w.Int(hw.tests);
  w.Key("mbr_misses");
  w.Int(hw.mbr_misses);
  w.Key("pip_hits");
  w.Int(hw.pip_hits);
  w.Key("sw_threshold_skips");
  w.Int(hw.sw_threshold_skips);
  w.Key("hw_tests");
  w.Int(hw.hw_tests);
  w.Key("hw_rejects");
  w.Int(hw.hw_rejects);
  w.Key("sw_tests");
  w.Int(hw.sw_tests);
  w.Key("width_fallbacks");
  w.Int(hw.width_fallbacks);
  w.Key("hw_faults");
  w.Int(hw.hw_faults);
  w.Key("hw_fallback_pairs");
  w.Int(hw.hw_fallback_pairs);
  w.Key("breaker_opens");
  w.Int(hw.breaker_opens);
  w.Key("fill_spans");
  w.Int(hw.fill_spans);
  w.Key("scan_spans");
  w.Int(hw.scan_spans);
  w.Key("batches");
  w.Int(hw.batch.batches);
  w.Key("batched_pairs");
  w.Int(hw.batch.batched_pairs);
  w.EndObject();

  w.Key("filter");
  w.BeginObject();
  w.Key("raster_pos");
  w.Int(tallies.raster_positives);
  w.Key("raster_neg");
  w.Int(tallies.raster_negatives);
  w.Key("interval_hits");
  w.Int(tallies.interval_hits);
  w.Key("interval_misses");
  w.Int(tallies.interval_misses);
  w.Key("interval_undecided");
  w.Int(tallies.interval_undecided);
  w.EndObject();

  w.Key("events");
  w.BeginObject();
  w.Key("deadline_exceeded");
  w.Bool(counts.truncated);
  w.Key("faulted");
  w.Bool(hw.hw_faults > 0);
  w.Key("breaker_opened");
  w.Bool(hw.breaker_opens > 0);
  w.EndObject();

  w.Key("pmu");
  if (config.pmu == nullptr) {
    w.Null();
  } else {
    w.BeginObject();
    w.Key("available");
    w.Bool(config.pmu->available());
    for (int s = 0; s < obs::kPmuStageCount; ++s) {
      const auto stage = static_cast<obs::PmuStage>(s);
      w.Key(obs::PmuStageName(stage));
      w.BeginObject();
      for (int e = 0; e < obs::kPmuEventCount; ++e) {
        const auto event = static_cast<obs::PmuEvent>(e);
        w.Key(obs::PmuEventName(event));
        w.Int(pmu_delta.at(stage, event));
      }
      w.EndObject();
    }
    w.EndObject();
  }

  w.EndObject();
}

}  // namespace

void RecordQueryObs(const HwConfig& config, const char* kind,
                    const StageCosts& costs, const StageCounts& counts,
                    const HwCounters& hw, const QueryObsTallies& tallies,
                    const obs::PmuSnapshot& pmu_begin) {
  // Per-query PMU delta: session totals now minus the snapshot the
  // pipeline captured at Run() entry.
  obs::PmuSnapshot pmu_delta;
  if (config.pmu != nullptr) {
    pmu_delta = config.pmu->Snapshot();
    pmu_delta -= pmu_begin;
  }

  obs::Registry* metrics = config.metrics;
  if (metrics != nullptr) {
    const std::string prefix = std::string(obs::kPipelinePrefix) + kind;
    metrics->GetCounter(prefix + obs::kPipelineRunsSuffix).Increment();

    metrics->GetGauge(obs::kStageMbrMs).Add(costs.mbr_ms);
    metrics->GetCounter(obs::kStageMbrOut).Add(counts.candidates);
    metrics->GetGauge(obs::kStageFilterMs).Add(costs.filter_ms);
    metrics->GetCounter(obs::kStageFilterDecided).Add(counts.filter_hits);
    metrics->GetCounter(obs::kStageFilterRasterPos)
        .Add(tallies.raster_positives);
    metrics->GetCounter(obs::kStageFilterRasterNeg)
        .Add(tallies.raster_negatives);
    metrics->GetCounter(obs::kStageIntervalHits).Add(tallies.interval_hits);
    metrics->GetCounter(obs::kStageIntervalMisses)
        .Add(tallies.interval_misses);
    metrics->GetCounter(obs::kStageIntervalUndecided)
        .Add(tallies.interval_undecided);
    metrics->GetGauge(obs::kStageCompareMs).Add(costs.compare_ms);
    metrics->GetCounter(obs::kStageCompareIn).Add(counts.compared);
    metrics->GetCounter(obs::kQueryResults).Add(counts.results);

    // Per-pipeline per-stage latency distributions (microseconds). The
    // stage gauges above are sums; these give the report and bench JSON
    // exact bucket-resolved p50/p90/p99 tails.
    metrics->GetHistogram(prefix + obs::kPipelineMbrUsSuffix)
        .Record(ToMicros(costs.mbr_ms));
    metrics->GetHistogram(prefix + obs::kPipelineFilterUsSuffix)
        .Record(ToMicros(costs.filter_ms));
    metrics->GetHistogram(prefix + obs::kPipelineCompareUsSuffix)
        .Record(ToMicros(costs.compare_ms));
    metrics->GetHistogram(prefix + obs::kPipelineTotalUsSuffix)
        .Record(ToMicros(costs.mbr_ms + costs.filter_ms + costs.compare_ms));

    metrics->GetCounter(obs::kRefineTests).Add(hw.tests);
    metrics->GetCounter(obs::kRefineMbrMisses).Add(hw.mbr_misses);
    metrics->GetCounter(obs::kRefinePipHits).Add(hw.pip_hits);
    metrics->GetCounter(obs::kRefineSwThresholdSkips)
        .Add(hw.sw_threshold_skips);
    metrics->GetCounter(obs::kRefineHwTests).Add(hw.hw_tests);
    metrics->GetCounter(obs::kRefineHwRejects).Add(hw.hw_rejects);
    metrics->GetCounter(obs::kRefineSwTests).Add(hw.sw_tests);
    metrics->GetCounter(obs::kRefineWidthFallbacks).Add(hw.width_fallbacks);
    metrics->GetCounter(obs::kRefineFillSpans).Add(hw.fill_spans);
    metrics->GetCounter(obs::kRefineScanSpans).Add(hw.scan_spans);
    metrics->GetCounter(obs::kRefineFillSaturationStops)
        .Add(hw.fill_saturation_stops);
    metrics->GetCounter(obs::kRefineScanHitStops).Add(hw.scan_hit_stops);
    metrics->GetGauge(obs::kRefinePipMs).Add(hw.pip_ms);
    metrics->GetGauge(obs::kRefineHwMs).Add(hw.hw_ms);
    metrics->GetGauge(obs::kRefineSwMs).Add(hw.sw_ms);

    metrics->GetCounter(obs::kBatchBatches).Add(hw.batch.batches);
    metrics->GetCounter(obs::kBatchBatchedPairs).Add(hw.batch.batched_pairs);
    metrics->GetGauge(obs::kBatchFillMs).Add(hw.batch.fill_ms);
    metrics->GetGauge(obs::kBatchScanMs).Add(hw.batch.scan_ms);

    // Robustness (DESIGN.md §11): degradation and truncation aggregates.
    metrics->GetCounter(obs::kRefineHwFaults).Add(hw.hw_faults);
    metrics->GetCounter(obs::kRefineHwFallbackPairs)
        .Add(hw.hw_fallback_pairs);
    metrics->GetCounter(obs::kBreakerOpens).Add(hw.breaker_opens);
    if (counts.truncated) {
      metrics->GetCounter(obs::kQueryDeadlineExceeded).Increment();
      metrics->GetCounter(obs::kQueryTruncated).Increment();
    }

    // PMU deltas under canonical names. Added even when zero so the full
    // pmu.* name set exists whenever a session is attached (validators and
    // CI --require-counter rely on the presence being deterministic).
    if (config.pmu != nullptr) {
      metrics->GetGauge(obs::kPmuAvailable)
          .Set(config.pmu->available() ? 1.0 : 0.0);
      for (int s = 0; s < obs::kPmuStageCount; ++s) {
        for (int e = 0; e < obs::kPmuEventCount; ++e) {
          metrics->GetCounter(obs::kPmuStageEventNames[s][e])
              .Add(pmu_delta.at(static_cast<obs::PmuStage>(s),
                                static_cast<obs::PmuEvent>(e)));
        }
      }
    }
  }

  if (config.query_log != nullptr &&
      config.query_log->ShouldSample(config.query_log_sample)) {
    std::string line;
    RenderQueryLogRecord(&line, config, kind, costs, counts, hw, tallies,
                         pmu_delta);
    config.query_log->Append(std::move(line));
  }
}

}  // namespace hasj::core
