#ifndef HASJ_CORE_DISTANCE_JOIN_H_
#define HASJ_CORE_DISTANCE_JOIN_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "algo/polygon_distance.h"
#include "common/status.h"
#include "core/hw_config.h"
#include "core/query_stats.h"
#include "data/dataset.h"
#include "data/dataset_index.h"
#include "filter/interval_approx.h"
#include "index/rtree.h"

namespace hasj::core {

struct DistanceJoinOptions {
  // Intermediate filters (Chan's runtime filters; positives only).
  bool use_zero_object_filter = true;
  bool use_one_object_filter = true;
  // Geometry comparison with the hardware-assisted distance test.
  bool use_hw = false;
  HwConfig hw;
  algo::DistanceOptions sw;
  // Worker threads for the geometry-comparison stage; 1 = serial, 0 =
  // hardware concurrency. Results and counter totals are identical at
  // every thread count (core/refinement_executor.h).
  int num_threads = 1;
};

struct DistanceJoinResult {
  std::vector<std::pair<int64_t, int64_t>> pairs;  // ids within distance d
  StageCosts costs;
  StageCounts counts;
  int64_t zero_object_hits = 0;
  int64_t one_object_hits = 0;
  // Interval-filter accepts (zero unless hw.use_intervals). Distance joins
  // use the interval decision accept-only: a TRUE-HIT intersection implies
  // distance 0 <= d, but disjoint interval lists say nothing about the
  // gap, so there is no TRUE-MISS side here.
  int64_t interval_hits = 0;
  int64_t interval_undecided = 0;
  HwCounters hw_counters;
  // Ok for a complete run; on kDeadlineExceeded / kInternal `pairs` is an
  // exact prefix of the complete result and counts.truncated is set.
  Status status;
};

// Within-distance join A ⋈_dist B (the buffer query of Chan [4]): all object
// pairs within distance d. Pipeline: MBR distance join -> 0-Object filter
// -> 1-Object filter -> geometry comparison (Figures 14-16).
class WithinDistanceJoin {
 public:
  WithinDistanceJoin(const data::Dataset& a, const data::Dataset& b);

  [[nodiscard]] DistanceJoinResult Run(double d, const DistanceJoinOptions& options = {}) const;

 private:
  // Epoch-keyed snapshot + R-tree pairs; Run() pins one consistent view of
  // each side at entry so a concurrent reload cannot mix versions mid-query.
  data::DatasetIndex index_a_;
  data::DatasetIndex index_b_;
  // Per-side raster-interval approximations (hw.use_intervals) over the
  // union frame; keyed on each dataset's epoch.
  filter::IntervalApproxCache interval_cache_a_;
  filter::IntervalApproxCache interval_cache_b_;
};

}  // namespace hasj::core

#endif  // HASJ_CORE_DISTANCE_JOIN_H_
