#include "core/snapshot_query.h"

#include <algorithm>

#include "common/cancel.h"
#include "core/batch_tester.h"
#include "core/hw_distance.h"
#include "core/hw_intersection.h"
#include "core/paranoid.h"
#include "core/refinement_executor.h"
#include "filter/interval_approx.h"
#include "filter/object_filters.h"
#include "geom/box.h"
#include "index/dynamic_rtree.h"

namespace hasj::core {

namespace {

using data::VersionedDataset;

// The interval grid in effect for a query: the ladder consults intervals
// only at its last rung, where the hardware testers are off.
const filter::SlotIntervalGrid* EffectiveGrid(
    const filter::SlotIntervalGrid* grid, DegradeLevel level) {
  return level >= DegradeLevel::kIntervalsOnly ? grid : nullptr;
}

// Shared refinement tail: serial executor wired to the query's deadline
// and fault injector (the server parallelizes across queries, not inside
// one).
void ConfigureExecutor(RefinementExecutor* executor, const HwConfig& hw,
                       const QueryDeadline* deadline) {
  executor->SetObservability(hw.trace, hw.metrics);
  executor->SetDeadline(deadline);
  executor->SetFaults(hw.faults);
}

}  // namespace

HwConfig DegradedHwConfig(const HwConfig& hw, bool use_hw,
                          DegradeLevel level) {
  HwConfig out = hw;
  out.enable_hw = use_hw;
  if (level >= DegradeLevel::kNoBatch) out.use_batching = false;
  if (level >= DegradeLevel::kLowRes) {
    out.resolution = std::min(out.resolution, 4);
  }
  if (level >= DegradeLevel::kIntervalsOnly) out.enable_hw = false;
  return out;
}

SnapshotQueryResult SnapshotSelection(const VersionedDataset::Snapshot& snap,
                                      const geom::Polygon& query,
                                      const SnapshotQueryOptions& options) {
  SnapshotQueryResult result;
  const HwConfig hw = DegradedHwConfig(options.hw, options.use_hw,
                                       options.degrade);
  const QueryDeadline deadline =
      QueryDeadline::Start(hw.deadline_ms, hw.cancel);

  const std::vector<int64_t> candidates = snap.QueryIntersects(query.Bounds());
  result.candidates = static_cast<int64_t>(candidates.size());

  const filter::SlotIntervalGrid* grid =
      EffectiveGrid(options.intervals, options.degrade);
  filter::ObjectIntervals query_intervals;
  if (grid != nullptr) query_intervals = grid->Approximate(query);

  const bool guarded = deadline.active();
  std::vector<int64_t> undecided;
  undecided.reserve(candidates.size());
  for (size_t ci = 0; ci < candidates.size(); ++ci) {
    if (guarded && (ci % 64) == 0 && deadline.Expired()) {
      result.status = deadline.ToStatus();
      return result;
    }
    const int64_t id = candidates[ci];
    if (grid != nullptr) {
      switch (filter::DecidePair(query_intervals,
                                 grid->Get(id, snap.polygon(id)))) {
        case filter::IntervalVerdict::kHit:
          HASJ_PARANOID_ONLY(
              paranoid::CheckIntervalAccept(snap.polygon(id), query, hw));
          result.ids.push_back(id);
          ++result.interval_hits;
          continue;
        case filter::IntervalVerdict::kMiss:
          HASJ_PARANOID_ONLY(
              paranoid::CheckIntervalReject(snap.polygon(id), query, hw));
          ++result.interval_misses;
          continue;
        case filter::IntervalVerdict::kInconclusive:
          break;
      }
    }
    undecided.push_back(id);
  }

  RefinementExecutor executor(1);
  ConfigureExecutor(&executor, hw, &deadline);
  RefinementOutcome<int64_t> refined;
  if (hw.use_batching && hw.enable_hw && hw.backend == HwBackend::kBitmask) {
    refined = executor.RefineBatches(
        undecided, [&] { return BatchHardwareTester(hw, options.sw_intersect); },
        [&](int64_t id) { return PolygonPair{&snap.polygon(id), &query}; },
        [](BatchHardwareTester& tester, std::span<const PolygonPair> pairs,
           uint8_t* verdicts) { tester.TestIntersectionBatch(pairs, verdicts); });
  } else {
    refined = executor.Refine(
        undecided,
        [&] { return HwIntersectionTester(hw, options.sw_intersect); },
        [&](HwIntersectionTester& tester, int64_t id) {
          return tester.Test(snap.polygon(id), query);
        });
  }
  result.ids.insert(result.ids.end(), refined.accepted.begin(),
                    refined.accepted.end());
  result.hw_counters = refined.counters;
  result.status = refined.status;
  return result;
}

SnapshotQueryResult SnapshotJoin(const VersionedDataset::Snapshot& a,
                                 const VersionedDataset::Snapshot& b,
                                 const SnapshotQueryOptions& options) {
  SnapshotQueryResult result;
  const HwConfig hw = DegradedHwConfig(options.hw, options.use_hw,
                                       options.degrade);
  const QueryDeadline deadline =
      QueryDeadline::Start(hw.deadline_ms, hw.cancel);

  const std::vector<std::pair<int64_t, int64_t>> candidates =
      index::JoinIntersects(a.index(), b.index());
  result.candidates = static_cast<int64_t>(candidates.size());

  const filter::SlotIntervalGrid* grid_a =
      EffectiveGrid(options.intervals, options.degrade);
  const filter::SlotIntervalGrid* grid_b =
      EffectiveGrid(options.intervals_b, options.degrade);

  const bool guarded = deadline.active();
  std::vector<std::pair<int64_t, int64_t>> undecided;
  undecided.reserve(candidates.size());
  for (size_t ci = 0; ci < candidates.size(); ++ci) {
    if (guarded && (ci % 64) == 0 && deadline.Expired()) {
      result.status = deadline.ToStatus();
      return result;
    }
    const auto& [ida, idb] = candidates[ci];
    if (grid_a != nullptr && grid_b != nullptr) {
      switch (filter::DecidePair(grid_a->Get(ida, a.polygon(ida)),
                                 grid_b->Get(idb, b.polygon(idb)))) {
        case filter::IntervalVerdict::kHit:
          HASJ_PARANOID_ONLY(paranoid::CheckIntervalAccept(
              a.polygon(ida), b.polygon(idb), hw));
          result.pairs.emplace_back(ida, idb);
          ++result.interval_hits;
          continue;
        case filter::IntervalVerdict::kMiss:
          HASJ_PARANOID_ONLY(paranoid::CheckIntervalReject(
              a.polygon(ida), b.polygon(idb), hw));
          ++result.interval_misses;
          continue;
        case filter::IntervalVerdict::kInconclusive:
          break;
      }
    }
    undecided.emplace_back(ida, idb);
  }

  RefinementExecutor executor(1);
  ConfigureExecutor(&executor, hw, &deadline);
  RefinementOutcome<std::pair<int64_t, int64_t>> refined;
  if (hw.use_batching && hw.enable_hw && hw.backend == HwBackend::kBitmask) {
    refined = executor.RefineBatches(
        undecided, [&] { return BatchHardwareTester(hw, options.sw_intersect); },
        [&](const std::pair<int64_t, int64_t>& c) {
          return PolygonPair{&a.polygon(c.first), &b.polygon(c.second)};
        },
        [](BatchHardwareTester& tester, std::span<const PolygonPair> pairs,
           uint8_t* verdicts) { tester.TestIntersectionBatch(pairs, verdicts); });
  } else {
    refined = executor.Refine(
        undecided,
        [&] { return HwIntersectionTester(hw, options.sw_intersect); },
        [&](HwIntersectionTester& tester, const std::pair<int64_t, int64_t>& c) {
          return tester.Test(a.polygon(c.first), b.polygon(c.second));
        });
  }
  result.pairs.insert(result.pairs.end(), refined.accepted.begin(),
                      refined.accepted.end());
  result.hw_counters = refined.counters;
  result.status = refined.status;
  return result;
}

SnapshotQueryResult SnapshotDistanceSelection(
    const VersionedDataset::Snapshot& snap, const geom::Polygon& query,
    double d, const SnapshotQueryOptions& options) {
  SnapshotQueryResult result;
  const HwConfig hw = DegradedHwConfig(options.hw, options.use_hw,
                                       options.degrade);
  const QueryDeadline deadline =
      QueryDeadline::Start(hw.deadline_ms, hw.cancel);

  const std::vector<int64_t> candidates =
      snap.QueryWithinDistance(query.Bounds(), d);
  result.candidates = static_cast<int64_t>(candidates.size());

  // Accept-only interval use (a TRUE-HIT intersection implies distance
  // 0 <= d; misses prove nothing about the gap).
  const filter::SlotIntervalGrid* grid =
      d >= 0.0 ? EffectiveGrid(options.intervals, options.degrade) : nullptr;
  filter::ObjectIntervals query_intervals;
  if (grid != nullptr) query_intervals = grid->Approximate(query);

  const bool guarded = deadline.active();
  std::vector<int64_t> undecided;
  undecided.reserve(candidates.size());
  for (size_t ci = 0; ci < candidates.size(); ++ci) {
    if (guarded && (ci % 64) == 0 && deadline.Expired()) {
      result.status = deadline.ToStatus();
      return result;
    }
    const int64_t id = candidates[ci];
    const geom::Box& mbr = snap.mbr(id);
    if (filter::ZeroObjectUpperBound(mbr, query.Bounds()) <= d) {
      result.ids.push_back(id);
      continue;
    }
    if (filter::OneObjectUpperBound(query, mbr) <= d) {
      result.ids.push_back(id);
      continue;
    }
    if (grid != nullptr &&
        filter::DecidePair(query_intervals, grid->Get(id, snap.polygon(id))) ==
            filter::IntervalVerdict::kHit) {
      HASJ_PARANOID_ONLY(
          paranoid::CheckIntervalAccept(snap.polygon(id), query, hw));
      result.ids.push_back(id);
      ++result.interval_hits;
      continue;
    }
    undecided.push_back(id);
  }

  RefinementExecutor executor(1);
  ConfigureExecutor(&executor, hw, &deadline);
  RefinementOutcome<int64_t> refined;
  if (hw.use_batching && hw.enable_hw && hw.backend == HwBackend::kBitmask) {
    refined = executor.RefineBatches(
        undecided,
        [&] { return BatchHardwareTester(hw, {}, options.sw_distance); },
        [&](int64_t id) { return PolygonPair{&snap.polygon(id), &query}; },
        [d](BatchHardwareTester& tester, std::span<const PolygonPair> pairs,
            uint8_t* verdicts) {
          tester.TestWithinDistanceBatch(pairs, d, verdicts);
        });
  } else {
    refined = executor.Refine(
        undecided, [&] { return HwDistanceTester(hw, options.sw_distance); },
        [&](HwDistanceTester& tester, int64_t id) {
          return tester.Test(snap.polygon(id), query, d);
        });
  }
  result.ids.insert(result.ids.end(), refined.accepted.begin(),
                    refined.accepted.end());
  result.hw_counters = refined.counters;
  result.status = refined.status;
  return result;
}

SnapshotQueryResult SnapshotDistanceJoin(const VersionedDataset::Snapshot& a,
                                         const VersionedDataset::Snapshot& b,
                                         double d,
                                         const SnapshotQueryOptions& options) {
  SnapshotQueryResult result;
  const HwConfig hw = DegradedHwConfig(options.hw, options.use_hw,
                                       options.degrade);
  const QueryDeadline deadline =
      QueryDeadline::Start(hw.deadline_ms, hw.cancel);

  const std::vector<std::pair<int64_t, int64_t>> candidates =
      index::JoinWithinDistance(a.index(), b.index(), d);
  result.candidates = static_cast<int64_t>(candidates.size());

  const filter::SlotIntervalGrid* grid_a =
      d >= 0.0 ? EffectiveGrid(options.intervals, options.degrade) : nullptr;
  const filter::SlotIntervalGrid* grid_b =
      d >= 0.0 ? EffectiveGrid(options.intervals_b, options.degrade) : nullptr;

  const bool guarded = deadline.active();
  std::vector<std::pair<int64_t, int64_t>> undecided;
  undecided.reserve(candidates.size());
  for (size_t ci = 0; ci < candidates.size(); ++ci) {
    if (guarded && (ci % 64) == 0 && deadline.Expired()) {
      result.status = deadline.ToStatus();
      return result;
    }
    const auto& [ida, idb] = candidates[ci];
    const geom::Box& ba = a.mbr(ida);
    const geom::Box& bb = b.mbr(idb);
    if (filter::ZeroObjectUpperBound(ba, bb) <= d) {
      result.pairs.emplace_back(ida, idb);
      continue;
    }
    const bool a_larger = ba.Area() >= bb.Area();
    const geom::Polygon& larger = a_larger ? a.polygon(ida) : b.polygon(idb);
    const geom::Box& other = a_larger ? bb : ba;
    if (filter::OneObjectUpperBound(larger, other) <= d) {
      result.pairs.emplace_back(ida, idb);
      continue;
    }
    if (grid_a != nullptr && grid_b != nullptr &&
        filter::DecidePair(grid_a->Get(ida, a.polygon(ida)),
                           grid_b->Get(idb, b.polygon(idb))) ==
            filter::IntervalVerdict::kHit) {
      HASJ_PARANOID_ONLY(paranoid::CheckIntervalAccept(a.polygon(ida),
                                                       b.polygon(idb), hw));
      result.pairs.emplace_back(ida, idb);
      ++result.interval_hits;
      continue;
    }
    undecided.emplace_back(ida, idb);
  }

  RefinementExecutor executor(1);
  ConfigureExecutor(&executor, hw, &deadline);
  RefinementOutcome<std::pair<int64_t, int64_t>> refined;
  if (hw.use_batching && hw.enable_hw && hw.backend == HwBackend::kBitmask) {
    refined = executor.RefineBatches(
        undecided,
        [&] { return BatchHardwareTester(hw, {}, options.sw_distance); },
        [&](const std::pair<int64_t, int64_t>& c) {
          return PolygonPair{&a.polygon(c.first), &b.polygon(c.second)};
        },
        [d](BatchHardwareTester& tester, std::span<const PolygonPair> pairs,
            uint8_t* verdicts) {
          tester.TestWithinDistanceBatch(pairs, d, verdicts);
        });
  } else {
    refined = executor.Refine(
        undecided, [&] { return HwDistanceTester(hw, options.sw_distance); },
        [&](HwDistanceTester& tester, const std::pair<int64_t, int64_t>& c) {
          return tester.Test(a.polygon(c.first), b.polygon(c.second), d);
        });
  }
  result.pairs.insert(result.pairs.end(), refined.accepted.begin(),
                      refined.accepted.end());
  result.hw_counters = refined.counters;
  result.status = refined.status;
  return result;
}

std::vector<int64_t> OracleSelection(const VersionedDataset::Snapshot& snap,
                                     const geom::Polygon& query) {
  std::vector<int64_t> out;
  const geom::Box window = query.Bounds();
  for (const int64_t id : snap.LiveIds()) {
    // The MBR pre-check is sound (disjoint boxes ⇒ disjoint polygons) and
    // keeps the oracle usable at chaos-suite query counts.
    if (!snap.mbr(id).Intersects(window)) continue;
    if (algo::PolygonsIntersect(snap.polygon(id), query)) out.push_back(id);
  }
  return out;
}

std::vector<std::pair<int64_t, int64_t>> OracleJoin(
    const VersionedDataset::Snapshot& a, const VersionedDataset::Snapshot& b) {
  std::vector<std::pair<int64_t, int64_t>> out;
  const std::vector<int64_t> ids_b = b.LiveIds();
  for (const int64_t ida : a.LiveIds()) {
    const geom::Box& box_a = a.mbr(ida);
    for (const int64_t idb : ids_b) {
      if (!box_a.Intersects(b.mbr(idb))) continue;
      if (algo::PolygonsIntersect(a.polygon(ida), b.polygon(idb))) {
        out.emplace_back(ida, idb);
      }
    }
  }
  return out;
}

std::vector<int64_t> OracleDistanceSelection(
    const VersionedDataset::Snapshot& snap, const geom::Polygon& query,
    double d) {
  std::vector<int64_t> out;
  const geom::Box window = query.Bounds();
  for (const int64_t id : snap.LiveIds()) {
    if (geom::MinDistance(snap.mbr(id), window) > d) continue;
    if (algo::WithinDistance(snap.polygon(id), query, d)) out.push_back(id);
  }
  return out;
}

std::vector<std::pair<int64_t, int64_t>> OracleDistanceJoin(
    const VersionedDataset::Snapshot& a, const VersionedDataset::Snapshot& b,
    double d) {
  std::vector<std::pair<int64_t, int64_t>> out;
  const std::vector<int64_t> ids_b = b.LiveIds();
  for (const int64_t ida : a.LiveIds()) {
    const geom::Box& box_a = a.mbr(ida);
    for (const int64_t idb : ids_b) {
      if (geom::MinDistance(box_a, b.mbr(idb)) > d) continue;
      if (algo::WithinDistance(a.polygon(ida), b.polygon(idb), d)) {
        out.emplace_back(ida, idb);
      }
    }
  }
  return out;
}

}  // namespace hasj::core
