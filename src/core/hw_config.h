#ifndef HASJ_CORE_HW_CONFIG_H_
#define HASJ_CORE_HW_CONFIG_H_

#include <cstdint>

#include "common/cancel.h"
#include "common/fault.h"
#include "common/simd.h"
#include "core/query_stats.h"
#include "glsim/context.h"

namespace hasj::obs {
class PerfCounters;
class QueryLog;
class Registry;
class TraceSession;
}  // namespace hasj::obs

namespace hasj::core {

// How the hardware segment test is executed.
enum class HwBackend {
  // Faithful Algorithm 3.1: color buffer at (0.5, 0.5, 0.5), accumulation
  // buffer GL_LOAD / GL_ACCUM / GL_RETURN, hardware Minmax search for
  // (1, 1, 1). Demonstrates the exact paper mechanics.
  kFaithful,
  // Decision-identical fast path (the default): rasterize the first
  // boundary into a bitmask, probe it while rasterizing the second.
  kBitmask,
};

// Configuration of the hardware-assisted tests (Algorithm 3.1 and its
// distance extension).
struct HwConfig {
  // false disables the hardware filter: the tester runs the pure software
  // refinement through the same engine (sharing the cached point locators),
  // which is the software baseline of the figure benchmarks.
  bool enable_hw = true;
  // Rendering window is resolution x resolution pixels (paper sweeps 1-32;
  // 8x8 is the recommended balance, §5).
  int resolution = 8;
  // Skip the hardware test when the two polygons have at most this many
  // vertices combined (§4.3's sw_threshold; 0 = always use hardware).
  int sw_threshold = 0;
  HwBackend backend = HwBackend::kBitmask;
  // Row-span kernel backend for the bitmask path (DESIGN.md §14). The
  // backends are bit-identical by contract — identical masks, verdicts,
  // counters, and early-stop points — so this knob trades only throughput;
  // kAuto picks the widest backend the CPU supports. Explicit kAvx2 on a
  // host without AVX2 is a startup HASJ_CHECK failure (check
  // glsim::RowSpanEngine::Available first; the bench --simd flag does).
  common::SimdMode simd = common::SimdMode::kAuto;
  // Anti-aliased line width in pixels for the intersection test; the paper
  // assumes the pixel diagonal.
  double line_width = 1.4142135623730951;
  // In the faithful backend, search the color buffer with the hardware
  // Minmax function; false models the slow readback scan (§3.2 ablation).
  bool use_minmax = true;
  // Hardware limits (GeForce4-like 10-pixel maximum anti-aliased width).
  glsim::HwLimits limits;
  // Batched tile-atlas execution of the hardware step (DESIGN.md §9): the
  // refinement executor hands each worker's candidates to a
  // BatchHardwareTester in chunks of batch_size pairs, rendered as tiles of
  // one shared atlas framebuffer instead of one tiny window per pair.
  // Decision-identical to the per-pair path (the property-differential
  // suite asserts it); only throughput changes. Requires the bitmask
  // backend and resolution <= glsim::Atlas::kMaxTileRes.
  bool use_batching = false;
  // Pairs per atlas pass; 1024 tiles of 8x8 are a 256x256 framebuffer.
  int batch_size = 1024;
  // Raster-interval secondary filter (filter/interval_approx, DESIGN.md
  // §12): approximate every dataset object as sorted Hilbert-cell interval
  // lists once per dataset epoch, then decide candidate pairs before
  // refinement — TRUE-HIT pairs skip the hardware testers entirely,
  // TRUE-MISS pairs are dropped, only INCONCLUSIVE pairs are refined.
  bool use_intervals = false;
  // Interval grid is 2^interval_grid_bits cells per side (1..12).
  int interval_grid_bits = 10;
  // Whole-dataset interval storage budget; objects over their share stay
  // unapproximated (always-inconclusive, never wrong).
  int64_t interval_budget_bytes = 64 << 20;
  // Observability hooks (DESIGN.md §10). Both default to null, which
  // compiles every instrumentation site down to a pointer test: tracing and
  // metrics cost nothing unless a session/registry is attached. Not owned.
  obs::TraceSession* trace = nullptr;
  obs::Registry* metrics = nullptr;
  // Hardware PMU telemetry (obs/perf_counters.h, DESIGN.md §15):
  // cycles/instructions/cache-misses/branch-misses per pipeline stage via
  // perf_event_open. Null-gated like trace/metrics; degrades to zeros when
  // the syscall is denied (pmu.available gauge says which). Not owned.
  obs::PerfCounters* pmu = nullptr;
  // Structured query log (obs/query_log.h): one JSONL record per query,
  // written asynchronously, sampled by query_log_sample (1 = every query,
  // 0 = attached but never sampled — the ablation_obs overhead
  // configuration). Null-gated and not owned, like the other sinks.
  obs::QueryLog* query_log = nullptr;
  double query_log_sample = 1.0;
  // Fault injection hook (DESIGN.md §11), null-pointer-gated exactly like
  // trace/metrics: null (the default) means glsim cannot fail and every
  // fault gate is one pointer test. With an injector attached, a glsim op
  // returning non-OK routes that pair to the exact software test — the
  // conservative filter makes the fallback free in correctness terms. Not
  // owned; configure plans before the query starts.
  FaultInjector* faults = nullptr;
  // Circuit breaker over the hardware path, active only when `faults` is
  // attached (the simulator cannot fail otherwise). Counted in pairs, not
  // wall time, so runs replay: closed -> open after
  // breaker_fault_threshold consecutive faults; open -> half-open re-probe
  // after breaker_reprobe_pairs pairs routed straight to software.
  int breaker_fault_threshold = 8;
  int64_t breaker_reprobe_pairs = 256;
  // Query latency budget in wall milliseconds (0 = none) and cooperative
  // cancellation flag (null = none). Checked at stage and refinement-chunk
  // boundaries; on expiry a pipeline returns the refined prefix of its
  // result with kDeadlineExceeded and QueryStats.counts.truncated set.
  double deadline_ms = 0.0;
  const CancelToken* cancel = nullptr;
};

// Observability into how often each path decided the outcome and where the
// time went.
struct HwCounters {
  int64_t tests = 0;             // total Test() calls
  int64_t mbr_misses = 0;        // decided by the per-pair MBR pre-check
  int64_t pip_hits = 0;          // decided by the point-in-polygon step
  int64_t sw_threshold_skips = 0;  // hardware skipped, software test direct
  int64_t hw_tests = 0;          // hardware segment tests executed
  int64_t hw_rejects = 0;        // pairs rejected by the hardware test
  int64_t sw_tests = 0;          // software segment/distance tests run
  int64_t width_fallbacks = 0;   // distance only: width limit exceeded
  int64_t hw_faults = 0;         // glsim ops that returned non-OK
  int64_t hw_fallback_pairs = 0;  // pairs routed to software by a fault
                                  // or an open breaker
  int64_t breaker_opens = 0;     // breaker transitions into kOpen
  // Row-span kernel work (DESIGN.md §14): non-empty row spans applied by
  // fill kernels / probed by probe kernels, and the early-stop events both
  // backends must reproduce exactly — fills cut short by a saturated
  // buffer, probes cut short by the first doubly-colored row. Identical
  // across simd backends (asserted by tests/simd_differential_test.cc);
  // the per-pair and batched paths count fills at different granularities
  // (primitive vs tile), so these are compared per-path only.
  int64_t fill_spans = 0;
  int64_t scan_spans = 0;
  int64_t fill_saturation_stops = 0;
  int64_t scan_hit_stops = 0;
  double pip_ms = 0.0;           // point-in-polygon step wall time
  double hw_ms = 0.0;            // hardware (rendering + search) wall time
  double sw_ms = 0.0;            // software segment/distance test wall time
  BatchCounters batch;           // tile-atlas stats (zero on per-pair path)

  // Merges another tester's counters (the parallel refinement executor
  // sums per-worker testers in worker order). The integer totals are
  // scheduling-independent; the *_ms fields are summed per-worker wall
  // time, which exceeds the stage's elapsed time when workers overlap.
  HwCounters& operator+=(const HwCounters& o) {
    tests += o.tests;
    mbr_misses += o.mbr_misses;
    pip_hits += o.pip_hits;
    sw_threshold_skips += o.sw_threshold_skips;
    hw_tests += o.hw_tests;
    hw_rejects += o.hw_rejects;
    sw_tests += o.sw_tests;
    width_fallbacks += o.width_fallbacks;
    hw_faults += o.hw_faults;
    hw_fallback_pairs += o.hw_fallback_pairs;
    breaker_opens += o.breaker_opens;
    fill_spans += o.fill_spans;
    scan_spans += o.scan_spans;
    fill_saturation_stops += o.fill_saturation_stops;
    scan_hit_stops += o.scan_hit_stops;
    pip_ms += o.pip_ms;
    hw_ms += o.hw_ms;
    sw_ms += o.sw_ms;
    batch += o.batch;
    return *this;
  }
};

}  // namespace hasj::core

#endif  // HASJ_CORE_HW_CONFIG_H_
