#ifndef HASJ_CORE_SERVER_H_
#define HASJ_CORE_SERVER_H_

#include <cstdint>
#include <deque>
#include <thread>
#include <vector>

#include "common/cancel.h"
#include "common/mutex.h"
#include "common/status.h"
#include "common/stopwatch.h"
#include "common/thread_annotations.h"
#include "core/snapshot_query.h"
#include "data/versioned_dataset.h"
#include "filter/slot_interval_grid.h"
#include "geom/polygon.h"
#include "obs/metrics.h"

namespace hasj::core {

enum class QueryKind {
  kSelection,
  kJoin,              // self-join of the store against one pinned snapshot
  kDistanceSelection,
  kDistanceJoin,      // self-join within `distance`
};

// Two admission classes: interactive queries are always dequeued before
// batch queries; both count against the same queue cap.
enum class QueryPriority { kInteractive = 0, kBatch = 1 };

struct QueryRequest {
  QueryKind kind = QueryKind::kSelection;
  // Query geometry for the selection forms; ignored by the join forms.
  geom::Polygon query;
  // Distance budget for the distance forms.
  double distance = 0.0;
  QueryPriority priority = QueryPriority::kInteractive;
  // Per-query latency budget / cooperative cancellation, forwarded into
  // the snapshot query's HwConfig (common/cancel.h semantics). A query
  // cancelled while still queued fails without running.
  double deadline_ms = 0.0;
  const CancelToken* cancel = nullptr;
};

struct QueryResponse {
  SnapshotQueryResult result;
  // The ladder level this query actually ran at.
  DegradeLevel degrade = DegradeLevel::kNone;
  // The store version the query was pinned to (for oracle replay).
  uint64_t epoch = 0;
  // Time spent waiting in the admission queue.
  double wait_ms = 0.0;
  // kResourceExhausted: shed at admission (queue at cap; nothing ran).
  // kUnavailable: server not running, or shut down while queued.
  // kDeadlineExceeded: budget/cancellation truncated the run.
  Status status;
};

struct ServerConfig {
  // 0 is admission-only mode: queries queue (and shed at cap) but never
  // execute until Shutdown fails them — deterministic queue-policy tests.
  int num_workers = 2;
  // Admission cap across both priority classes; a Submit finding the queue
  // at cap fails fast with kResourceExhausted.
  size_t queue_capacity = 64;
  // Degradation-ladder watermarks as fractions of queue_capacity
  // (DESIGN.md §16): queue depth >= l1 drops batching, >= l2 also lowers
  // the raster resolution, >= l3 also goes intervals-only. Verdicts are
  // exact at every level.
  double l1_watermark = 0.5;
  double l2_watermark = 0.75;
  double l3_watermark = 0.9;
  // Base execution options; the server overrides degrade/deadline/cancel
  // per query.
  SnapshotQueryOptions options;
  // Re-run every verify_every-th completed query against the serial oracle
  // on its pinned snapshot (0 = never). A mismatch bumps
  // server.verify_mismatch and fails that query with kInternal.
  int64_t verify_every = 0;
  // Metric export (server.* names in obs/names.h); may be null.
  obs::Registry* metrics = nullptr;
};

// A long-running query server over a mutable VersionedDataset: worker
// threads drain a bounded two-priority admission queue, pin a store
// snapshot per query, and execute through the snapshot query engine —
// so concurrent Insert/Delete traffic never changes what a running query
// sees. Overload behaviour is deterministic: beyond queue_capacity,
// Execute fails fast; between the watermarks, queries run at the ladder
// level their admission-time depth dictates.
class QueryServer {
 public:
  QueryServer(const data::VersionedDataset* store, const ServerConfig& config);
  ~QueryServer();  // implies Shutdown()

  QueryServer(const QueryServer&) = delete;
  QueryServer& operator=(const QueryServer&) = delete;

  // Spawns the workers. kFailedPrecondition-free: Ok, or kInvalidArgument
  // for a bad config, or kUnavailable if already started.
  [[nodiscard]] Status Start() HASJ_EXCLUDES(mu_);

  // Stops accepting queries, fails every still-queued query with
  // kUnavailable, lets in-flight queries finish, and joins the workers.
  // Idempotent.
  void Shutdown() HASJ_EXCLUDES(mu_);

  // Submits `request` and blocks until its outcome; the response's status
  // says how far it got (see QueryResponse). Safe from any number of
  // threads. The request (and its cancel token) must stay alive for the
  // duration of the call.
  QueryResponse Execute(const QueryRequest& request) HASJ_EXCLUDES(mu_);

  // The ladder level a query admitted at `depth` queued entries runs at —
  // the deterministic core of the overload policy, exposed for tests.
  static DegradeLevel DegradeLevelForDepth(size_t depth,
                                           const ServerConfig& config);

  // Point-in-time queued count (both classes).
  size_t queue_depth() const HASJ_EXCLUDES(mu_);

  // Queries dequeued and currently executing.
  size_t inflight() const HASJ_EXCLUDES(mu_);

 private:
  // One submitted query, owned by its Execute frame; done_cv_ hands it
  // back.
  struct PendingQuery {
    const QueryRequest* request = nullptr;
    QueryResponse response;
    Stopwatch queued_at;
    bool verify = false;  // sampled-oracle check, decided at dequeue
    bool done = false;
  };

  void WorkerLoop() HASJ_EXCLUDES(mu_);
  // Executes one query against a fresh snapshot pin. Called without mu_.
  void RunQuery(PendingQuery* pending);
  void BumpCounter(const char* name, int64_t delta = 1);

  const data::VersionedDataset* const store_;
  const ServerConfig config_;

  mutable Mutex mu_;
  CondVar work_cv_;  // workers wait: queue non-empty or stopping
  CondVar done_cv_;  // Execute frames wait: their PendingQuery done
  bool started_ HASJ_GUARDED_BY(mu_) = false;
  bool stopping_ HASJ_GUARDED_BY(mu_) = false;
  std::deque<PendingQuery*> interactive_ HASJ_GUARDED_BY(mu_);
  std::deque<PendingQuery*> batch_ HASJ_GUARDED_BY(mu_);
  size_t max_depth_seen_ HASJ_GUARDED_BY(mu_) = 0;
  size_t inflight_ HASJ_GUARDED_BY(mu_) = 0;
  int64_t completed_ HASJ_GUARDED_BY(mu_) = 0;
  std::vector<std::thread> workers_ HASJ_GUARDED_BY(mu_);
};

}  // namespace hasj::core

#endif  // HASJ_CORE_SERVER_H_
