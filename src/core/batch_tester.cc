#include "core/batch_tester.h"

#include <algorithm>
#include <optional>

#include "common/macros.h"
#include "common/status.h"
#include "common/stopwatch.h"
#include "glsim/context.h"
#include "glsim/rowspan.h"
#include "obs/names.h"
#include "obs/perf_counters.h"
#include "obs/trace.h"

namespace hasj::core {

BatchHardwareTester::BatchHardwareTester(
    const HwConfig& config, const algo::SoftwareIntersectOptions& isect_options,
    const algo::DistanceOptions& dist_options)
    : config_(config),
      isect_(config, isect_options),
      dist_(config, dist_options),
      atlas_(config.resolution, std::max(1, config.batch_size)) {
  HASJ_CHECK(config.backend == HwBackend::kBitmask);
  HASJ_CHECK(config.resolution <= glsim::Atlas::kMaxTileRes);
  HASJ_CHECK(config.batch_size >= 1);
  atlas_.set_faults(config.faults);
  if (config.metrics != nullptr) {
    batch_pairs_hist_ = &config.metrics->GetHistogram(obs::kHistBatchPairs);
    batch_tiles_hist_ = &config.metrics->GetHistogram(obs::kHistBatchTiles);
    occupancy_hist_ =
        &config.metrics->GetHistogram(obs::kHistBatchOccupancyPct);
    tile_pixels_hist_ = &config.metrics->GetHistogram(obs::kHistPixelsColored);
  }
}

void BatchHardwareTester::RecordSubBatchShape(size_t pairs, int tiles) {
  if (batch_pairs_hist_ == nullptr) return;
  batch_pairs_hist_->Record(static_cast<int64_t>(pairs));
  batch_tiles_hist_->Record(tiles);
  occupancy_hist_->Record(static_cast<int64_t>(100) * tiles /
                          atlas_.capacity());
}

HwCounters BatchHardwareTester::counters() const {
  HwCounters merged = isect_.counters();
  merged += dist_.counters();
  merged += batch_counters_;
  return merged;
}

void BatchHardwareTester::TestIntersectionBatch(
    std::span<const PolygonPair> pairs, uint8_t* verdicts) {
  const size_t cap = static_cast<size_t>(atlas_.capacity());
  for (size_t off = 0; off < pairs.size(); off += cap) {
    const size_t len = std::min(cap, pairs.size() - off);
    IntersectionSubBatch(pairs.subspan(off, len), verdicts + off);
  }
}

void BatchHardwareTester::TestWithinDistanceBatch(
    std::span<const PolygonPair> pairs, double d, uint8_t* verdicts) {
  const size_t cap = static_cast<size_t>(atlas_.capacity());
  for (size_t off = 0; off < pairs.size(); off += cap) {
    const size_t len = std::min(cap, pairs.size() - off);
    DistanceSubBatch(pairs.subspan(off, len), d, verdicts + off);
  }
}

void BatchHardwareTester::IntersectionSubBatch(
    std::span<const PolygonPair> pairs, uint8_t* verdicts) {
  const size_t n = pairs.size();
  const int res = config_.resolution;
  if (isect_plans_.size() < n) isect_plans_.resize(n);
  arena_.Reset();
  int32_t* tile_of = arena_.Alloc<int32_t>(n);
  glsim::RowSpanBuffer* spans = arena_.Alloc<glsim::RowSpanBuffer>(1);

  // Route every pair through the shared per-pair skeleton; assign atlas
  // tiles to the kHardware ones in order.
  int tiles = 0;
  for (size_t i = 0; i < n; ++i) {
    isect_plans_[i] = isect_.Plan(*pairs[i].first, *pairs[i].second);
    tile_of[i] =
        isect_plans_[i].stage == PairPlan::Stage::kHardware ? tiles++ : -1;
  }

  // Degradation routing (DESIGN.md §11): the atlas batch only runs when
  // the breaker is fully closed and every batch-level fault gate passes.
  // Otherwise batch_hw_ok stays false and the finish pass routes each
  // kHardware pair through the per-pair tester's HwStep — which handles
  // its own faults and breaker — so a batch fault degrades pair-by-pair
  // instead of failing the batch.
  bool batch_hw_ok = false;
  bool batch_attempted = false;
  Status batch_status = Status::Ok();
  if (tiles > 0 && isect_.HwBatchAllowed()) {
    batch_attempted = true;
    batch_status = atlas_.TryClear();
    if (batch_status.ok()) batch_status = atlas_.BeginFill();
  }

  uint8_t* any_first = nullptr;
  uint8_t* hw_overlap = nullptr;
  if (batch_attempted && batch_status.ok()) {
    RecordSubBatchShape(n, tiles);
    any_first = arena_.AllocZeroed<uint8_t>(static_cast<size_t>(tiles));
    hw_overlap = arena_.AllocZeroed<uint8_t>(static_cast<size_t>(tiles));
    const glsim::RowSpanEngine& engine = isect_.engine();

    // Fill pass: every pair's first boundary into its tile. The projection
    // (WindowTransform) and the span->column snapping (rowspan.h) are the
    // ones the per-pair tester uses, so a tile holds exactly the pixels a
    // per-pair render would produce.
    obs::ManualSpan pass_span;
    pass_span.Start(config_.trace, "hw-fill", "hw");
    // Batch-granular PMU scope (per-pair scopes would dominate the cost
    // here); the trace span carries the pass's event deltas as args.
    std::optional<obs::PmuScope> fill_pmu(std::in_place, config_.pmu,
                                          obs::PmuStage::kHwFill,
                                          config_.trace);
    Stopwatch fill_watch;
    for (size_t i = 0; i < n; ++i) {
      if (tile_of[i] < 0) continue;
      const int tile = tile_of[i];
      const geom::Box& viewport = isect_plans_[i].viewport;
      const glsim::WindowTransform xf =
          glsim::WindowTransform::Make(viewport, res, res);
      const geom::Polygon& p = *pairs[i].first;
      for (size_t e = 0; e < p.size(); ++e) {
        const geom::Segment edge = p.edge(e);
        if (!edge.Bounds().Intersects(viewport)) continue;
        any_first[static_cast<size_t>(tile)] = 1;
        if (glsim::ComputeLineAASpans(xf.ToWindow(edge.a), xf.ToWindow(edge.b),
                                      config_.line_width, res, res, spans)) {
          const glsim::FillResult fr = atlas_.FillTileSpans(engine, tile, spans);
          batch_counters_.fill_spans += fr.spans;
        }
        // Saturation early-stop, like the per-pair `unset` counter: a full
        // tile stays full, so skipping the rest changes nothing.
        if (atlas_.TileFull(tile)) {
          ++batch_counters_.fill_saturation_stops;
          if (config_.trace != nullptr) {
            config_.trace->Instant("tile-saturated", "hw");
          }
          break;
        }
      }
    }
    const double fill_ms = fill_watch.ElapsedMillis();
    fill_pmu.reset();
    pass_span.End();
    if (tile_pixels_hist_ != nullptr) {
      for (size_t i = 0; i < n; ++i) {
        if (tile_of[i] >= 0) {
          tile_pixels_hist_->Record(atlas_.CountSet(tile_of[i]));
        }
      }
    }

    // Scan pass: every pair's second boundary probes its tile, fused with
    // the shared-pixel search — a tile stops at the first primitive whose
    // probe finds a doubly-colored row (the kernel's first-hit early stop).
    batch_status = atlas_.BeginScan();
    pass_span.Start(config_.trace, "hw-scan", "hw");
    std::optional<obs::PmuScope> scan_pmu(std::in_place, config_.pmu,
                                          obs::PmuStage::kHwScan,
                                          config_.trace);
    Stopwatch scan_watch;
    for (size_t i = 0; i < n && batch_status.ok(); ++i) {
      if (tile_of[i] < 0) continue;
      const int tile = tile_of[i];
      if (!any_first[static_cast<size_t>(tile)]) continue;  // empty tile
      const geom::Box& viewport = isect_plans_[i].viewport;
      const glsim::WindowTransform xf =
          glsim::WindowTransform::Make(viewport, res, res);
      const geom::Polygon& q = *pairs[i].second;
      bool hit = false;
      for (size_t e = 0; e < q.size() && !hit; ++e) {
        const geom::Segment edge = q.edge(e);
        if (!edge.Bounds().Intersects(viewport)) continue;
        if (!glsim::ComputeLineAASpans(xf.ToWindow(edge.a), xf.ToWindow(edge.b),
                                       config_.line_width, res, res, spans)) {
          continue;
        }
        const glsim::ProbeResult pr = atlas_.ProbeTileSpans(engine, tile, spans);
        batch_counters_.scan_spans += pr.spans;
        hit = pr.hit_row >= 0;
      }
      if (hit) ++batch_counters_.scan_hit_stops;
      hw_overlap[static_cast<size_t>(tile)] = hit ? 1 : 0;
    }
    const double scan_ms = scan_watch.ElapsedMillis();
    scan_pmu.reset();
    pass_span.End();

    if (batch_status.ok()) {
      batch_hw_ok = true;
      isect_.NoteHwSuccess();
      batch_counters_.hw_tests += tiles;
      batch_counters_.hw_ms += fill_ms + scan_ms;
      ++batch_counters_.batch.batches;
      batch_counters_.batch.batched_pairs += tiles;
      batch_counters_.batch.fill_ms += fill_ms;
      batch_counters_.batch.scan_ms += scan_ms;
    }
  }
  if (batch_attempted && !batch_status.ok()) {
    // One batch-level fault event: count it, feed the breaker, and leave
    // every kHardware pair to the per-pair route below.
    isect_.NoteHwFault();
  }

  // Finish pass: complete every decision through the shared skeleton, in
  // pair order (identical counters and paranoid checks to the per-pair
  // path).
  for (size_t i = 0; i < n; ++i) {
    const PairPlan& plan = isect_plans_[i];
    const geom::Polygon& a = *pairs[i].first;
    const geom::Polygon& b = *pairs[i].second;
    bool keep = false;
    switch (plan.stage) {
      case PairPlan::Stage::kDecided:
        keep = plan.decision;
        break;
      case PairPlan::Stage::kSoftware:
        keep = isect_.FinishSurvivor(a, b);
        break;
      case PairPlan::Stage::kHardware:
        if (batch_hw_ok) {
          keep = hw_overlap[static_cast<size_t>(tile_of[i])]
                     ? isect_.FinishSurvivor(a, b)
                     : isect_.FinishReject(a, b, plan.viewport);
        } else {
          // Per-pair retry of a faulted/bypassed batch: HwStep handles its
          // own faults and the breaker's pair-counted reprobe.
          bool overlap = false;
          if (const Status hw = isect_.HwStep(a, b, plan.viewport, &overlap);
              !hw.ok()) {
            keep = isect_.FinishFallback(a, b);
          } else {
            keep = overlap ? isect_.FinishSurvivor(a, b)
                           : isect_.FinishReject(a, b, plan.viewport);
          }
        }
        break;
    }
    verdicts[i] = keep ? 1 : 0;
  }
}

void BatchHardwareTester::DistanceSubBatch(std::span<const PolygonPair> pairs,
                                           double d, uint8_t* verdicts) {
  const size_t n = pairs.size();
  const int res = config_.resolution;
  if (dist_plans_.size() < n) dist_plans_.resize(n);
  arena_.Reset();
  int32_t* tile_of = arena_.Alloc<int32_t>(n);
  glsim::RowSpanBuffer* spans = arena_.Alloc<glsim::RowSpanBuffer>(1);

  int tiles = 0;
  for (size_t i = 0; i < n; ++i) {
    dist_.Plan(*pairs[i].first, *pairs[i].second, d, &dist_plans_[i]);
    tile_of[i] =
        dist_plans_[i].stage == DistancePlan::Stage::kHardware ? tiles++ : -1;
  }

  // Same degradation routing as IntersectionSubBatch: atlas only when the
  // breaker is closed and the batch-level gates pass; otherwise kHardware
  // pairs retry per-pair in the finish pass.
  bool batch_hw_ok = false;
  bool batch_attempted = false;
  Status batch_status = Status::Ok();
  if (tiles > 0 && dist_.HwBatchAllowed()) {
    batch_attempted = true;
    batch_status = atlas_.TryClear();
    if (batch_status.ok()) batch_status = atlas_.BeginFill();
  }

  uint8_t* hw_overlap = nullptr;
  if (batch_attempted && batch_status.ok()) {
    RecordSubBatchShape(n, tiles);
    hw_overlap = arena_.AllocZeroed<uint8_t>(static_cast<size_t>(tiles));
    const glsim::RowSpanEngine& engine = dist_.engine();

    // The per-pair tester draws the smaller clipped edge set and probes
    // with the larger; replicate the choice so the filled tile is the same.
    const auto chains = [](const DistancePlan& plan) {
      const bool ep_first = plan.ep.size() <= plan.eq.size();
      return std::pair<const std::vector<geom::Segment>*,
                       const std::vector<geom::Segment>*>{
          ep_first ? &plan.ep : &plan.eq, ep_first ? &plan.eq : &plan.ep};
    };

    // Fill pass: each pair's smaller dilated chain — width-D lines with
    // wide-point end caps (one cap per chained endpoint, as per-pair).
    obs::ManualSpan pass_span;
    pass_span.Start(config_.trace, "hw-fill", "hw");
    // Batch-granular PMU scope, as in IntersectionSubBatch.
    std::optional<obs::PmuScope> fill_pmu(std::in_place, config_.pmu,
                                          obs::PmuStage::kHwFill,
                                          config_.trace);
    Stopwatch fill_watch;
    for (size_t i = 0; i < n; ++i) {
      if (tile_of[i] < 0) continue;
      const int tile = tile_of[i];
      const DistancePlan& plan = dist_plans_[i];
      const std::vector<geom::Segment>& first = *chains(plan).first;
      const glsim::WindowTransform xf =
          glsim::WindowTransform::Make(plan.viewport, res, res);
      const auto fill = [&](bool built) {
        if (!built) return;
        const glsim::FillResult fr = atlas_.FillTileSpans(engine, tile, spans);
        batch_counters_.fill_spans += fr.spans;
      };
      for (size_t e = 0; e < first.size(); ++e) {
        const geom::Point a = xf.ToWindow(first[e].a);
        const geom::Point b = xf.ToWindow(first[e].b);
        fill(glsim::ComputeLineAASpans(a, b, plan.width_px, res, res, spans));
        if (e == 0 || !(first[e - 1].b == first[e].a)) {
          fill(glsim::ComputeWidePointSpans(a, plan.width_px, res, res, spans));
        }
        fill(glsim::ComputeWidePointSpans(b, plan.width_px, res, res, spans));
        if (atlas_.TileFull(tile)) {
          ++batch_counters_.fill_saturation_stops;
          if (config_.trace != nullptr) {
            config_.trace->Instant("tile-saturated", "hw");
          }
          break;
        }
      }
    }
    const double fill_ms = fill_watch.ElapsedMillis();
    fill_pmu.reset();
    pass_span.End();
    if (tile_pixels_hist_ != nullptr) {
      for (size_t i = 0; i < n; ++i) {
        if (tile_of[i] >= 0) {
          tile_pixels_hist_->Record(atlas_.CountSet(tile_of[i]));
        }
      }
    }

    // Scan pass: the larger chain probes the tile, stopping at the first
    // shared pixel.
    batch_status = atlas_.BeginScan();
    pass_span.Start(config_.trace, "hw-scan", "hw");
    std::optional<obs::PmuScope> scan_pmu(std::in_place, config_.pmu,
                                          obs::PmuStage::kHwScan,
                                          config_.trace);
    Stopwatch scan_watch;
    for (size_t i = 0; i < n && batch_status.ok(); ++i) {
      if (tile_of[i] < 0) continue;
      const int tile = tile_of[i];
      const DistancePlan& plan = dist_plans_[i];
      const std::vector<geom::Segment>& second = *chains(plan).second;
      const glsim::WindowTransform xf =
          glsim::WindowTransform::Make(plan.viewport, res, res);
      bool hit = false;
      const auto probe = [&](bool built) {
        if (!built || hit) return;
        const glsim::ProbeResult pr = atlas_.ProbeTileSpans(engine, tile, spans);
        batch_counters_.scan_spans += pr.spans;
        hit = pr.hit_row >= 0;
      };
      for (size_t e = 0; e < second.size() && !hit; ++e) {
        const geom::Point a = xf.ToWindow(second[e].a);
        const geom::Point b = xf.ToWindow(second[e].b);
        probe(glsim::ComputeLineAASpans(a, b, plan.width_px, res, res, spans));
        if (e == 0 || !(second[e - 1].b == second[e].a)) {
          probe(
              glsim::ComputeWidePointSpans(a, plan.width_px, res, res, spans));
        }
        if (!hit) {
          probe(
              glsim::ComputeWidePointSpans(b, plan.width_px, res, res, spans));
        }
      }
      if (hit) ++batch_counters_.scan_hit_stops;
      hw_overlap[static_cast<size_t>(tile)] = hit ? 1 : 0;
    }
    const double scan_ms = scan_watch.ElapsedMillis();
    scan_pmu.reset();
    pass_span.End();

    if (batch_status.ok()) {
      batch_hw_ok = true;
      dist_.NoteHwSuccess();
      batch_counters_.hw_tests += tiles;
      batch_counters_.hw_ms += fill_ms + scan_ms;
      ++batch_counters_.batch.batches;
      batch_counters_.batch.batched_pairs += tiles;
      batch_counters_.batch.fill_ms += fill_ms;
      batch_counters_.batch.scan_ms += scan_ms;
    }
  }
  if (batch_attempted && !batch_status.ok()) {
    dist_.NoteHwFault();
  }

  for (size_t i = 0; i < n; ++i) {
    const DistancePlan& plan = dist_plans_[i];
    const geom::Polygon& a = *pairs[i].first;
    const geom::Polygon& b = *pairs[i].second;
    bool keep = false;
    switch (plan.stage) {
      case DistancePlan::Stage::kDecided:
        keep = plan.decision;
        break;
      case DistancePlan::Stage::kSoftware:
        keep = dist_.FinishSurvivor(a, b, d);
        break;
      case DistancePlan::Stage::kEmptyClip:
        keep = dist_.FinishEmptyClip(a, b);
        break;
      case DistancePlan::Stage::kHardware:
        if (batch_hw_ok) {
          keep = hw_overlap[static_cast<size_t>(tile_of[i])]
                     ? dist_.FinishSurvivor(a, b, d)
                     : dist_.FinishReject(a, b, d, plan);
        } else {
          bool overlap = false;
          if (const Status hw = dist_.HwStep(plan, &overlap); !hw.ok()) {
            keep = dist_.FinishFallback(a, b, d);
          } else {
            keep = overlap ? dist_.FinishSurvivor(a, b, d)
                           : dist_.FinishReject(a, b, d, plan);
          }
        }
        break;
    }
    verdicts[i] = keep ? 1 : 0;
  }
}

}  // namespace hasj::core
