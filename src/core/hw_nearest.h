#ifndef HASJ_CORE_HW_NEAREST_H_
#define HASJ_CORE_HW_NEAREST_H_

#include <cstdint>
#include <vector>

#include "geom/box.h"
#include "geom/point.h"
#include "glsim/voronoi.h"
#include "index/rtree.h"

namespace hasj::core {

// Nearest-neighbor queries via a hardware-rendered Voronoi diagram — the
// paper's §5 future-work direction, implemented on the glsim substrate.
//
// The diagram gives the exact nearest site of each *pixel center*; for an
// arbitrary query point that is only an approximation (off by at most the
// pixel diagonal). Query() refines it to an exact answer: the hinted
// site's distance is an upper bound, and an R-tree range probe within that
// bound enumerates every site that could be closer.
class HwNearestNeighbor {
 public:
  // Renders the diagram once over the sites' bounding box (5% margin).
  HwNearestNeighbor(std::vector<geom::Point> sites, int resolution);

  size_t size() const { return sites_.size(); }
  const geom::Point& site(size_t id) const { return sites_[id]; }

  // Exact nearest site index (smallest index on ties).
  [[nodiscard]] int64_t Query(geom::Point q) const;

  // The raw pixel answer: exact for pixel centers, within one pixel
  // diagonal of optimal elsewhere. O(1).
  [[nodiscard]] int64_t QueryApproximate(geom::Point q) const;

 private:
  std::vector<geom::Point> sites_;
  glsim::VoronoiDiagram diagram_;
  index::RTree tree_;
};

}  // namespace hasj::core

#endif  // HASJ_CORE_HW_NEAREST_H_
