#include "core/hw_filled.h"

#include <array>
#include <vector>

#include "algo/triangulate.h"
#include "common/macros.h"
#include "common/stopwatch.h"
#include "core/paranoid.h"
#include "glsim/raster.h"

namespace hasj::core {

HwFilledIntersectionTester::HwFilledIntersectionTester(
    const HwConfig& config, const algo::SoftwareIntersectOptions& sw_options)
    : config_(config),
      sw_options_(sw_options),
      ctx_(config.resolution, config.resolution),
      mask_a_(config.resolution, config.resolution) {
  HASJ_CHECK(config.resolution >= 1);
}

bool HwFilledIntersectionTester::Test(const geom::Polygon& p,
                                      const geom::Polygon& q) {
  ++counters_.tests;
  if (!p.Bounds().Intersects(q.Bounds())) return false;

  // Filled rendering detects containment too: a contained polygon's filled
  // pixels necessarily overlap the container's, so no point-in-polygon
  // step is required — reject means disjoint, keep means "confirm".
  ++counters_.hw_tests;
  const geom::Box viewport = p.Bounds().Intersection(q.Bounds());
  Stopwatch watch;
  const bool overlap = FilledRegionsOverlap(p, q, viewport);
  counters_.hw_ms += watch.ElapsedMillis();
  if (!overlap) {
    ++counters_.hw_rejects;
    HASJ_PARANOID_ONLY(paranoid::CheckFilledReject(p, q, viewport, config_));
    return false;
  }

  ++counters_.sw_tests;
  watch.Restart();
  const bool result = algo::PolygonsIntersect(p, q, sw_options_);
  counters_.sw_ms += watch.ElapsedMillis();
  return result;
}

bool HwFilledIntersectionTester::FilledRegionsOverlap(
    const geom::Polygon& p, const geom::Polygon& q,
    const geom::Box& viewport) {
  ctx_.SetDataRect(viewport);
  const int res = config_.resolution;

  // Software triangulation of both polygons — the per-pair cost the paper's
  // edge-chain algorithm exists to avoid.
  Stopwatch tri_watch;
  const std::vector<std::array<int32_t, 3>> tp = algo::Triangulate(p);
  const std::vector<std::array<int32_t, 3>> tq = algo::Triangulate(q);
  triangulate_ms_ += tri_watch.ElapsedMillis();

  mask_a_.Clear();
  int unset = res * res;
  const auto set = [&](int x, int y) {
    if (!mask_a_.Test(x, y)) {
      mask_a_.Set(x, y);
      --unset;
    }
    return unset == 0;  // saturated: stop drawing (early-exit contract)
  };
  bool any_first = false;
  for (size_t t = 0; t < tp.size() && unset > 0; ++t) {
    const geom::Point a = p.vertex(static_cast<size_t>(tp[t][0]));
    const geom::Point b = p.vertex(static_cast<size_t>(tp[t][1]));
    const geom::Point c = p.vertex(static_cast<size_t>(tp[t][2]));
    geom::Box tri = geom::Box::Empty();
    tri.Extend(a);
    tri.Extend(b);
    tri.Extend(c);
    if (!tri.Intersects(viewport)) continue;
    any_first = true;
    glsim::RasterizeTriangleConservative(ctx_.ToWindow(a), ctx_.ToWindow(b),
                                         ctx_.ToWindow(c), res, res, set);
  }
  if (!any_first) return false;

  // Returning `found` stops the rasterizer at the first doubly-colored
  // pixel (early-exit contract, glsim/raster.h) instead of emitting the
  // rest of the triangle.
  bool found = false;
  const auto probe = [&](int x, int y) {
    found = found || mask_a_.Test(x, y);
    return found;
  };
  for (size_t t = 0; t < tq.size() && !found; ++t) {
    const geom::Point a = q.vertex(static_cast<size_t>(tq[t][0]));
    const geom::Point b = q.vertex(static_cast<size_t>(tq[t][1]));
    const geom::Point c = q.vertex(static_cast<size_t>(tq[t][2]));
    geom::Box tri = geom::Box::Empty();
    tri.Extend(a);
    tri.Extend(b);
    tri.Extend(c);
    if (!tri.Intersects(viewport)) continue;
    glsim::RasterizeTriangleConservative(ctx_.ToWindow(a), ctx_.ToWindow(b),
                                         ctx_.ToWindow(c), res, res, probe);
  }
  return found;
}

}  // namespace hasj::core
