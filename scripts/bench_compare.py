#!/usr/bin/env python3
"""Compare a bench --json report against a checked-in baseline (DESIGN.md §15).

Continuous bench-regression tracking: CI (and anyone locally) runs a bench
with --json, then compares the report's series metrics against
BENCH_BASELINE.json with noise-aware thresholds.

  scripts/bench_compare.py --baseline BENCH_BASELINE.json --report r.json
  scripts/bench_compare.py --baseline BENCH_BASELINE.json --report r.json \
      --update            # rewrite the baseline from the report
  scripts/bench_compare.py ... --warn-only   # report, never fail (shared
                                             # CI runners have noisy clocks)

Passing --report more than once for the *same* bench merges the runs:
timing metrics keep their per-run minimum (min-of-N is far more stable than
any single run — noise only ever adds time), and counter metrics must be
identical across the runs (they are deterministic; a mismatch is a real bug
and fails immediately). Baselines written with --update from N runs and
compared against M fresh runs therefore converge on the machine's true
floor instead of whichever scheduler hiccup a single run caught.

Metric classification, by series-metric name:

  * timing metrics (name ends in _ms, _us, or _frac): compared with a
    relative threshold — warn above --warn-pct (default 15%), fail above
    --fail-pct (default 25%). Absolute differences under --min-abs-ms
    (default 5.0) are ignored outright: at bench scale a 3 ms stage can
    double on timer jitter alone.
  * counter metrics (everything else — pair counts, hw_tests, match flags):
    compared exactly. The pipelines are deterministic at fixed
    (scale, seed, threads), so any counter drift is a real behavior change
    and always fails (even with --warn-only, unless --lax-counters).

A baseline only applies when its config fingerprint (bench_name, scale,
seed, threads) matches the report's; mismatched fingerprints fail loudly
rather than comparing apples to oranges. Benches present in only one of
the two files are reported (new bench / missing bench) but fail nothing,
so adding a bench does not require regenerating every baseline.

Exit code: 0 = OK (possibly with warnings), 1 = regression or config
mismatch, 2 = usage/IO error.
"""

import argparse
import json
import sys

TIMING_SUFFIXES = ("_ms", "_us", "_frac")
FINGERPRINT_FIELDS = ("bench_name", "scale", "seed", "threads")


def is_timing_metric(name):
    return name.endswith(TIMING_SUFFIXES)


def load_report(path):
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    if not isinstance(doc, dict) or not isinstance(doc.get("series"), list):
        raise ValueError(f"{path}: not a bench --json report")
    return doc


def report_to_baseline_entry(doc):
    """Distills one bench report into its baseline form."""
    entry = {field: doc.get(field) for field in FINGERPRINT_FIELDS}
    entry["series"] = {}
    for row in doc["series"]:
        entry["series"][row["series"]] = dict(row["metrics"])
    return entry


def merge_entries(a, b):
    """Merges two baseline entries for the same bench (two reps of one run
    config): timing metrics keep the minimum, counters must agree."""
    for field in FINGERPRINT_FIELDS:
        if a.get(field) != b.get(field):
            raise ValueError(
                f"cannot merge reps of {a.get('bench_name')}: {field} differs "
                f"({a.get(field)!r} vs {b.get(field)!r})"
            )
    merged = {field: a.get(field) for field in FINGERPRINT_FIELDS}
    merged["series"] = {}
    for series in set(a["series"]) | set(b["series"]):
        sa = a["series"].get(series)
        sb = b["series"].get(series)
        if sa is None or sb is None:
            merged["series"][series] = dict(sa or sb)
            continue
        row = {}
        for metric in set(sa) | set(sb):
            if metric not in sa or metric not in sb:
                row[metric] = sa.get(metric, sb.get(metric))
            elif is_timing_metric(metric):
                row[metric] = min(sa[metric], sb[metric])
            elif sa[metric] != sb[metric]:
                raise ValueError(
                    f"{a.get('bench_name')}/{series}.{metric}: counter "
                    f"differs between reps ({sa[metric]} vs {sb[metric]}) — "
                    "nondeterminism, not noise"
                )
            else:
                row[metric] = sa[metric]
        merged["series"][series] = row
    return merged


def compare_entry(baseline, report, opts):
    """Compares one bench's baseline entry against its fresh report entry.

    Returns (failures, warnings, notes) — lists of message strings.
    """
    failures, warnings, notes = [], [], []
    name = baseline.get("bench_name", "?")

    for field in FINGERPRINT_FIELDS:
        if baseline.get(field) != report.get(field):
            failures.append(
                f"{name}: config mismatch: {field} baseline="
                f"{baseline.get(field)!r} report={report.get(field)!r} "
                "(regenerate the baseline or fix the run flags)"
            )
    if failures:
        return failures, warnings, notes

    for series, base_metrics in baseline["series"].items():
        rep_metrics = report["series"].get(series)
        if rep_metrics is None:
            failures.append(f"{name}/{series}: series missing from report")
            continue
        for metric, base_value in base_metrics.items():
            if metric not in rep_metrics:
                failures.append(f"{name}/{series}.{metric}: missing from report")
                continue
            rep_value = rep_metrics[metric]
            where = f"{name}/{series}.{metric}"
            if is_timing_metric(metric):
                diff = rep_value - base_value
                if abs(diff) < opts.min_abs_ms:
                    continue
                if base_value <= 0:
                    notes.append(
                        f"{where}: baseline is {base_value}, report "
                        f"{rep_value:.2f} (no relative threshold applies)"
                    )
                    continue
                rel = diff / base_value
                msg = (
                    f"{where}: {base_value:.2f} -> {rep_value:.2f} "
                    f"({rel * 100.0:+.1f}%)"
                )
                if rel > opts.fail_pct / 100.0:
                    failures.append(f"{msg} exceeds --fail-pct={opts.fail_pct}")
                elif rel > opts.warn_pct / 100.0:
                    warnings.append(f"{msg} exceeds --warn-pct={opts.warn_pct}")
                elif rel < -opts.warn_pct / 100.0:
                    notes.append(f"{msg} — improvement; consider --update")
            else:
                if rep_value != base_value:
                    msg = (
                        f"{where}: counter changed {base_value} -> {rep_value} "
                        "(deterministic at fixed scale/seed/threads)"
                    )
                    if opts.lax_counters:
                        warnings.append(msg)
                    else:
                        failures.append(msg)
    for series in report["series"]:
        if series not in baseline["series"]:
            notes.append(f"{name}/{series}: new series (not in baseline)")
    return failures, warnings, notes


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", required=True, metavar="PATH",
                        help="checked-in baseline JSON (see BENCH_BASELINE.json)")
    parser.add_argument("--report", action="append", default=[], metavar="PATH",
                        required=True,
                        help="bench --json report to compare (repeatable)")
    parser.add_argument("--warn-pct", type=float, default=15.0,
                        help="warn when a timing metric regresses more than "
                        "this percent (default 15)")
    parser.add_argument("--fail-pct", type=float, default=25.0,
                        help="fail when a timing metric regresses more than "
                        "this percent (default 25)")
    parser.add_argument("--min-abs-ms", type=float, default=5.0,
                        help="ignore timing differences smaller than this "
                        "absolute value (default 5.0; timer noise floor)")
    parser.add_argument("--warn-only", action="store_true",
                        help="downgrade timing failures to warnings (shared "
                        "CI runners); counter drift still fails unless "
                        "--lax-counters")
    parser.add_argument("--lax-counters", action="store_true",
                        help="downgrade counter drift to warnings too")
    parser.add_argument("--update", action="store_true",
                        help="rewrite the baseline from the reports instead "
                        "of comparing")
    opts = parser.parse_args(argv)

    try:
        reports = {}
        for path in opts.report:
            doc = load_report(path)
            name = doc.get("bench_name", path)
            entry = report_to_baseline_entry(doc)
            reports[name] = (merge_entries(reports[name], entry)
                             if name in reports else entry)
    except (OSError, ValueError, json.JSONDecodeError, KeyError) as e:
        print(f"error: {e}", file=sys.stderr)
        return 2

    if opts.update:
        try:
            with open(opts.baseline, encoding="utf-8") as f:
                baseline_doc = json.load(f)
        except (OSError, json.JSONDecodeError):
            baseline_doc = {"benches": {}}
        benches = baseline_doc.setdefault("benches", {})
        for name, entry in reports.items():
            benches[name] = entry
        with open(opts.baseline, "w", encoding="utf-8") as f:
            json.dump(baseline_doc, f, indent=2, sort_keys=True)
            f.write("\n")
        print(f"{opts.baseline}: updated {len(reports)} bench entr"
              f"{'y' if len(reports) == 1 else 'ies'}")
        return 0

    try:
        with open(opts.baseline, encoding="utf-8") as f:
            baseline_doc = json.load(f)
        benches = baseline_doc["benches"]
    except (OSError, json.JSONDecodeError, KeyError) as e:
        print(f"error: cannot load baseline {opts.baseline}: {e}",
              file=sys.stderr)
        return 2

    failures, warnings, notes = [], [], []
    for name, entry in reports.items():
        baseline = benches.get(name)
        if baseline is None:
            notes.append(f"{name}: no baseline entry (new bench; run --update)")
            continue
        f_, w_, n_ = compare_entry(baseline, entry, opts)
        if opts.warn_only:
            # Counter drift stays fatal: determinism does not get noisier on
            # a shared runner.
            still_fatal = [m for m in f_ if "counter changed" in m
                           or "config mismatch" in m or "missing" in m]
            warnings.extend(m for m in f_ if m not in still_fatal)
            f_ = still_fatal
        failures.extend(f_)
        warnings.extend(w_)
        notes.extend(n_)
    for name in benches:
        if name not in reports:
            notes.append(f"{name}: baseline entry with no report this run")

    for msg in notes:
        print(f"note: {msg}")
    for msg in warnings:
        print(f"WARNING: {msg}")
    for msg in failures:
        print(f"FAIL: {msg}", file=sys.stderr)
    print(f"{len(reports)} report(s) vs baseline: {len(failures)} failure(s), "
          f"{len(warnings)} warning(s)")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
