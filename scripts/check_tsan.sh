#!/usr/bin/env bash
# ThreadSanitizer check for the parallel refinement executor: builds the
# tree with -DHASJ_SANITIZE=thread and runs the thread pool unit tests, the
# thread-count cross-check tests (tests/core_parallel_refinement_test.cc),
# the concurrent observability tests (sharded counters/histograms,
# multi-thread trace tracks), the chaos/fault tests (concurrent fault
# ordinal claims, multi-thread degradation + deadlines — DESIGN.md §11),
# and the snapshot-isolation layer (DESIGN.md §16): the COW dynamic R-tree,
# the versioned dataset store, the QueryServer admission queue, and the
# writers-vs-pinned-readers chaos suite. Any data race in the per-worker
# testers, the chunk cursor, the signature caches, the metric shards, the
# fault injector, or the epoch publish/pin protocol fails the run.
#
# Usage: scripts/check_tsan.sh [build-dir]   (default: build-tsan)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-tsan}"

cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DHASJ_SANITIZE=thread \
  -DHASJ_BUILD_BENCHMARKS=OFF \
  -DHASJ_BUILD_EXAMPLES=OFF

cmake --build "$BUILD_DIR" -j"$(nproc)" \
  --target common_thread_pool_test core_parallel_refinement_test \
  obs_metrics_test obs_trace_test common_fault_test chaos_fault_test \
  index_dynamic_rtree_test data_versioned_dataset_test core_server_test \
  core_reload_consistency_test chaos_snapshot_test

# Halt on the first report and fail the process so CI sees it.
export TSAN_OPTIONS="halt_on_error=1 ${TSAN_OPTIONS:-}"

ctest --test-dir "$BUILD_DIR" --output-on-failure \
  -R 'ThreadPoolTest|ParallelRefinementTest|CounterTest|HistogramTest|HistogramBucketsTest|GaugeTest|RegistryTest|MetricsSnapshotTest|TraceSessionTest|FaultInjectorTest|CircuitBreakerTest|ChaosFaultTest|DynamicRTreeTest|VersionedDatasetTest|QueryServerTest|ReloadConsistencyTest|ChaosSnapshotTest'

echo "TSan check passed."
