#!/usr/bin/env bash
# The full correctness gauntlet (DESIGN.md §6):
#   1. normal build + complete ctest (includes the lint_hasj domain lint)
#   2. standalone lint run (so a lint break is reported even without ctest)
#   3. clang-tidy over the sources this branch changed (full-tree sweep
#      when there is no base to diff against) when clang-tidy is installed
#   4. ASan + UBSan build running the full suite
#   5. TSan build running the parallel-refinement cross-checks
#   6. HASJ_PARANOID build running the conservativeness-oracle stress test
#
# Usage: scripts/check_all.sh [--fast] [--labels REGEX]
#   --fast          build + unit-labeled ctest + lint only (steps 1-2, with
#                   ctest restricted to -L unit); skips the sanitizer and
#                   paranoid builds. The inner development loop.
#   --labels REGEX  like --fast but run the ctest labels matching REGEX
#                   instead of 'unit' (labels: unit, stress, property,
#                   paranoid, obs, chaos — see tests/CMakeLists.txt).
#                   Examples:
#                     scripts/check_all.sh --labels 'stress|property'
#                     scripts/check_all.sh --labels chaos   # fault injection
#   (build dirs: build, build-asan, build-tsan, build-paranoid)
set -euo pipefail

cd "$(dirname "$0")/.."

FAST=0
LABELS=""
while [[ $# -gt 0 ]]; do
  case "$1" in
    --fast)
      FAST=1
      LABELS="${LABELS:-unit}"
      shift
      ;;
    --labels)
      [[ $# -ge 2 ]] || { echo "--labels needs a REGEX argument" >&2; exit 2; }
      FAST=1
      LABELS="$2"
      shift 2
      ;;
    *)
      echo "unknown argument: $1" >&2
      echo "usage: scripts/check_all.sh [--fast] [--labels REGEX]" >&2
      exit 2
      ;;
  esac
done

if [[ "$FAST" == 1 ]]; then
  echo "== [1/2] build + ctest (-L '$LABELS') =="
  cmake -B build -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build build -j"$(nproc)"
  ctest --test-dir build --output-on-failure -L "$LABELS"

  echo "== [2/2] domain lint =="
  python3 scripts/lint_hasj.py

  echo "Fast checks passed (labels: $LABELS)."
  exit 0
fi

echo "== [1/6] build + ctest =="
cmake -B build -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build build -j"$(nproc)"
ctest --test-dir build --output-on-failure

echo "== [2/6] domain lint =="
python3 scripts/lint_hasj.py

echo "== [3/6] clang-tidy =="
if command -v clang-tidy >/dev/null 2>&1; then
  cmake -B build -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
  # Analyze the sources changed by this branch (working tree + commits past
  # the merge-base with origin/main); headers come in via HeaderFilterRegex.
  # Falls back to the full tree when there is no base to diff against (CI
  # shallow clones, detached checkouts).
  TIDY_FILES=$( {
    git diff --name-only --diff-filter=d HEAD -- 'src/*.cc' 'src/**/*.cc'
    if BASE=$(git merge-base HEAD origin/main 2>/dev/null); then
      git diff --name-only --diff-filter=d "$BASE" HEAD \
        -- 'src/*.cc' 'src/**/*.cc'
    fi
  } | sort -u )
  if [[ -z "$TIDY_FILES" ]]; then
    echo "no changed sources vs origin/main; sweeping all of src/"
    TIDY_FILES=$(find src -name '*.cc' | sort)
  fi
  echo "$TIDY_FILES" | xargs -n 8 clang-tidy -p build --quiet
else
  echo "clang-tidy not installed; skipping"
fi

echo "== [4/6] ASan + UBSan =="
scripts/check_asan_ubsan.sh

echo "== [5/6] TSan =="
scripts/check_tsan.sh

echo "== [6/6] HASJ_PARANOID oracle + obs + chaos =="
# The obs and chaos tests ride along so the oracle's instant events, the
# registry counters, and the fault-degradation paths stay consistent under
# HASJ_PARANOID too (every software fallback is re-checked by the oracle).
cmake -B build-paranoid -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DHASJ_PARANOID=ON \
  -DHASJ_BUILD_BENCHMARKS=OFF \
  -DHASJ_BUILD_EXAMPLES=OFF
cmake --build build-paranoid -j"$(nproc)" --target stress_paranoid_test \
  obs_metrics_test obs_trace_test obs_report_test bench_harness_test \
  common_fault_test chaos_fault_test
ctest --test-dir build-paranoid --output-on-failure -L 'paranoid|obs|chaos'

echo "All checks passed."
