#!/usr/bin/env bash
# AddressSanitizer + UndefinedBehaviorSanitizer check: builds the tree with
# -DHASJ_SANITIZE="address;undefined" and runs the full unit-test suite
# under both sanitizers. Any heap error or UB (signed overflow, invalid
# float->int cast, misaligned access, ...) in the rasterizer, coverage, or
# framebuffer hot paths fails the run.
#
# Usage: scripts/check_asan_ubsan.sh [build-dir]   (default: build-asan)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-asan}"

cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DHASJ_SANITIZE="address;undefined" \
  -DHASJ_BUILD_BENCHMARKS=OFF \
  -DHASJ_BUILD_EXAMPLES=OFF

cmake --build "$BUILD_DIR" -j"$(nproc)"

# Halt on the first report and fail the process so CI sees it.
export ASAN_OPTIONS="halt_on_error=1 detect_leaks=1 ${ASAN_OPTIONS:-}"
export UBSAN_OPTIONS="halt_on_error=1 print_stacktrace=1 ${UBSAN_OPTIONS:-}"

ctest --test-dir "$BUILD_DIR" --output-on-failure

# The scalar-vs-AVX2 differential suite is the densest raw-intrinsics
# coverage in the tree (unaligned 256-bit loads/stores, reinterpret_casts
# into word buffers); run its binary directly so a sanitizer report there
# fails the script even if a label filter ever trims the ctest pass above.
"$BUILD_DIR/tests/simd_differential_test"

echo "ASan/UBSan check passed."
