#!/usr/bin/env python3
"""Validate hasj bench observability outputs (DESIGN.md §10).

Checks two file kinds against their stable schemas:

  * --json PATH   bench report written by a fig*/table*/ablation_* binary's
                  --json flag: schema_version 3, the printed series rows,
                  a full metrics-registry snapshot (counters, gauges,
                  power-of-two-bucket histograms with p50/p90/p99), and the
                  run's query/truncated accounting. schema_version 1
                  (pre-quantile) and 2 (pre-accounting) files still
                  validate.
  * --trace PATH  Chrome trace_event file written by --trace: a
                  "traceEvents" array of complete ("X"), instant ("i") and
                  metadata ("M") events with per-track monotonic timestamps
                  (chrome://tracing and ui.perfetto.dev both require this
                  shape to render sensibly).
  * --query-log PATH  JSONL query log written by --query_log=PATH
                  (DESIGN.md §15): one record per sampled query with the
                  config fingerprint, stage costs/counts, hardware
                  counters, filter tallies, events, and PMU deltas.

`--require-counter NAME` (repeatable) additionally insists that every
--json file's metrics snapshot contains NAME as a counter or a gauge — CI
uses it to pin the metrics a bench is expected to exercise (e.g. the
stage.interval.* decision counters from ablation_intervals, or the
hw.simd_backend gauge from ablation_simd).

Exit code 0 when every file validates, 1 otherwise (one line per problem).
CI runs this over a small-scale bench run; it is also handy locally:

  build/bench/fig12_join_hw --scale=0.01 --json=r.json --trace=t.json
  scripts/validate_bench_json.py --json r.json --trace t.json
"""

import argparse
import json
import sys

HISTOGRAM_BUCKETS = 64


def _is_number(value):
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _is_int(value):
    return isinstance(value, int) and not isinstance(value, bool)


def validate_report(path, required_counters=()):
    """Returns a list of problem strings for one --json report file."""
    errors = []

    def err(message):
        errors.append(f"{path}: {message}")

    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return [f"{path}: unreadable or not JSON: {e}"]

    if not isinstance(doc, dict):
        return [f"{path}: top level must be an object"]

    schema = doc.get("schema_version")
    if schema not in (1, 2, 3):
        err(f"schema_version must be 1, 2 or 3, got {schema!r}")
    if schema == 3:
        # Schema 3 adds run-level query accounting: how many queries the
        # bench executed and how many a deadline/cancellation truncated.
        queries = doc.get("queries")
        truncated = doc.get("truncated")
        if not _is_int(queries) or queries < 0:
            err(f"queries must be a non-negative integer, got {queries!r}")
        if not _is_int(truncated) or truncated < 0:
            err(f"truncated must be a non-negative integer, got {truncated!r}")
        if _is_int(queries) and _is_int(truncated) and truncated > queries:
            err(f"truncated ({truncated}) must not exceed queries ({queries})")
    if not isinstance(doc.get("bench_name"), str) or not doc.get("bench_name"):
        err("bench_name must be a non-empty string")
    if not _is_number(doc.get("scale")) or not 0 < doc.get("scale", 0) <= 1:
        err(f"scale must be a number in (0, 1], got {doc.get('scale')!r}")
    if not _is_int(doc.get("seed")) or doc.get("seed", -1) < 0:
        err(f"seed must be a non-negative integer, got {doc.get('seed')!r}")
    if not _is_int(doc.get("threads")) or doc.get("threads", -1) < 0:
        err(f"threads must be a non-negative integer, got {doc.get('threads')!r}")

    series = doc.get("series")
    if not isinstance(series, list):
        err("series must be an array")
        series = []
    for i, row in enumerate(series):
        where = f"series[{i}]"
        if not isinstance(row, dict):
            err(f"{where} must be an object")
            continue
        if not isinstance(row.get("series"), str) or not row.get("series"):
            err(f"{where}.series must be a non-empty string")
        metrics = row.get("metrics")
        if not isinstance(metrics, dict):
            err(f"{where}.metrics must be an object")
            continue
        for key, value in metrics.items():
            if not _is_number(value):
                err(f"{where}.metrics[{key!r}] must be a number, got {value!r}")

    snap = doc.get("metrics")
    if not isinstance(snap, dict):
        err("metrics must be an object")
        return errors
    counters = snap.get("counters")
    if not isinstance(counters, dict):
        err("metrics.counters must be an object")
        counters = {}
    else:
        for name, value in counters.items():
            if not _is_int(value):
                err(f"counter {name!r} must be an integer, got {value!r}")
    gauges = snap.get("gauges")
    if not isinstance(gauges, dict):
        err("metrics.gauges must be an object")
        gauges = {}
    else:
        for name, value in gauges.items():
            if not _is_number(value):
                err(f"gauge {name!r} must be a number, got {value!r}")
    for name in required_counters:
        if name not in counters and name not in gauges:
            err(
                f"required metric {name!r} missing from metrics.counters "
                "and metrics.gauges"
            )
    histograms = snap.get("histograms")
    if not isinstance(histograms, dict):
        err("metrics.histograms must be an object")
        histograms = {}
    for name, hist in histograms.items():
        where = f"histogram {name!r}"
        if not isinstance(hist, dict):
            err(f"{where} must be an object")
            continue
        for field in ("count", "sum", "min", "max"):
            if not _is_int(hist.get(field)):
                err(f"{where}.{field} must be an integer, got {hist.get(field)!r}")
        if schema >= 2:
            for field in ("p50", "p90", "p99"):
                if not _is_int(hist.get(field)):
                    err(
                        f"{where}.{field} must be an integer, "
                        f"got {hist.get(field)!r}"
                    )
            if all(_is_int(hist.get(f)) for f in ("p50", "p90", "p99")):
                if not hist["p50"] <= hist["p90"] <= hist["p99"]:
                    err(
                        f"{where}: quantiles must be ordered, got "
                        f"p50={hist['p50']} p90={hist['p90']} p99={hist['p99']}"
                    )
            if (
                all(
                    _is_int(hist.get(f))
                    for f in ("count", "min", "max", "p50", "p99")
                )
                and hist["count"] > 0
                and not hist["min"] <= hist["p50"] <= hist["p99"] <= hist["max"]
            ):
                err(f"{where}: quantiles must lie within [min, max]")
        buckets = hist.get("buckets")
        if (
            not isinstance(buckets, list)
            or len(buckets) != HISTOGRAM_BUCKETS
            or not all(_is_int(b) and b >= 0 for b in buckets)
        ):
            err(f"{where}.buckets must be {HISTOGRAM_BUCKETS} non-negative integers")
        elif _is_int(hist.get("count")) and sum(buckets) != hist["count"]:
            err(f"{where}: bucket sum {sum(buckets)} != count {hist['count']}")

    return errors


QUERY_LOG_KINDS = ("selection", "join", "distance_selection", "distance_join")

QUERY_LOG_OBJECTS = {
    "config": (
        "enable_hw",
        "backend",
        "resolution",
        "sw_threshold",
        "simd",
        "use_batching",
        "batch_size",
        "use_intervals",
        "interval_grid_bits",
        "deadline_ms",
        "faults",
    ),
    "costs": ("mbr_ms", "filter_ms", "compare_ms", "total_ms"),
    "counts": ("candidates", "filter_hits", "compared", "results", "truncated"),
    "hw": (
        "tests",
        "mbr_misses",
        "pip_hits",
        "sw_threshold_skips",
        "hw_tests",
        "hw_rejects",
        "sw_tests",
        "width_fallbacks",
        "hw_faults",
        "hw_fallback_pairs",
        "breaker_opens",
        "fill_spans",
        "scan_spans",
        "batches",
        "batched_pairs",
    ),
    "filter": (
        "raster_pos",
        "raster_neg",
        "interval_hits",
        "interval_misses",
        "interval_undecided",
    ),
    "events": ("deadline_exceeded", "faulted", "breaker_opened"),
}

PMU_STAGES = ("hw_fill", "hw_scan", "interval_decide", "exact_compare")
PMU_EVENTS = ("cycles", "instructions", "cache_misses", "branch_misses")


def validate_query_log(path):
    """Returns a list of problem strings for one --query_log JSONL file."""
    errors = []

    def err(message):
        errors.append(f"{path}: {message}")

    try:
        with open(path, encoding="utf-8") as f:
            lines = f.read().splitlines()
    except OSError as e:
        return [f"{path}: unreadable: {e}"]

    if not lines:
        err("query log is empty")
    for i, line in enumerate(lines):
        where = f"line {i + 1}"
        try:
            record = json.loads(line)
        except json.JSONDecodeError as e:
            err(f"{where}: not JSON: {e}")
            continue
        if not isinstance(record, dict):
            err(f"{where}: record must be an object")
            continue
        if record.get("schema_version") != 1:
            err(
                f"{where}: schema_version must be 1, "
                f"got {record.get('schema_version')!r}"
            )
        if record.get("kind") not in QUERY_LOG_KINDS:
            err(f"{where}: kind must be one of {QUERY_LOG_KINDS}, "
                f"got {record.get('kind')!r}")
        for section, fields in QUERY_LOG_OBJECTS.items():
            obj = record.get(section)
            if not isinstance(obj, dict):
                err(f"{where}: {section} must be an object, got {obj!r}")
                continue
            for field in fields:
                if field not in obj:
                    err(f"{where}: {section}.{field} missing")
        pmu = record.get("pmu", "absent")
        if pmu == "absent":
            err(f"{where}: pmu must be present (null when no PMU attached)")
        elif pmu is not None:
            if not isinstance(pmu, dict):
                err(f"{where}: pmu must be null or an object, got {pmu!r}")
            else:
                if not isinstance(pmu.get("available"), bool):
                    err(f"{where}: pmu.available must be a boolean")
                for stage in PMU_STAGES:
                    deltas = pmu.get(stage)
                    if not isinstance(deltas, dict):
                        err(f"{where}: pmu.{stage} must be an object")
                        continue
                    for event in PMU_EVENTS:
                        if not _is_int(deltas.get(event)):
                            err(f"{where}: pmu.{stage}.{event} must be an integer")

    return errors


def validate_trace(path):
    """Returns a list of problem strings for one --trace file."""
    errors = []

    def err(message):
        errors.append(f"{path}: {message}")

    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return [f"{path}: unreadable or not JSON: {e}"]

    if not isinstance(doc, dict):
        return [f"{path}: top level must be an object"]
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return [f"{path}: traceEvents must be an array"]
    if not events:
        err("traceEvents is empty")

    last_ts = {}  # (pid, tid) -> last ts seen, per track
    for i, event in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(event, dict):
            err(f"{where} must be an object")
            continue
        ph = event.get("ph")
        if ph not in ("X", "i", "M"):
            err(f"{where}.ph must be one of X/i/M, got {ph!r}")
            continue
        for field in ("name", "pid", "tid"):
            if field not in event:
                err(f"{where} ({ph}) missing {field!r}")
        if ph == "M":
            if event.get("name") == "thread_name" and not isinstance(
                event.get("args", {}).get("name"), str
            ):
                err(f"{where}: thread_name metadata needs args.name")
            continue  # metadata carries no timestamp
        ts = event.get("ts")
        if not _is_number(ts):
            err(f"{where} ({ph}) needs a numeric ts, got {ts!r}")
            continue
        if ph == "X" and (not _is_number(event.get("dur")) or event["dur"] < 0):
            err(f"{where} (X) needs a non-negative numeric dur")
        if ph == "i" and event.get("s") not in ("t", "p", "g"):
            err(f"{where} (i) needs a scope s in t/p/g")
        track = (event.get("pid"), event.get("tid"))
        if track in last_ts and ts < last_ts[track]:
            err(f"{where}: ts {ts} goes backwards on track pid={track[0]} tid={track[1]}")
        last_ts[track] = ts

    return errors


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--json",
        dest="reports",
        action="append",
        default=[],
        metavar="PATH",
        help="bench --json report to validate (repeatable)",
    )
    parser.add_argument(
        "--trace",
        dest="traces",
        action="append",
        default=[],
        metavar="PATH",
        help="bench --trace file to validate (repeatable)",
    )
    parser.add_argument(
        "--query-log",
        dest="query_logs",
        action="append",
        default=[],
        metavar="PATH",
        help="bench --query_log JSONL file to validate (repeatable)",
    )
    parser.add_argument(
        "--require-counter",
        dest="required_counters",
        action="append",
        default=[],
        metavar="NAME",
        help="metric that must be present in every --json file's "
        "metrics.counters or metrics.gauges snapshot (repeatable)",
    )
    args = parser.parse_args(argv)
    if not args.reports and not args.traces and not args.query_logs:
        parser.error(
            "nothing to validate: pass --json, --trace and/or --query-log"
        )
    if args.required_counters and not args.reports:
        parser.error("--require-counter needs at least one --json file")

    errors = []
    for path in args.reports:
        errors.extend(validate_report(path, args.required_counters))
    for path in args.traces:
        errors.extend(validate_trace(path))
    for path in args.query_logs:
        errors.extend(validate_query_log(path))

    for problem in errors:
        print(problem, file=sys.stderr)
    checked = len(args.reports) + len(args.traces) + len(args.query_logs)
    if errors:
        print(f"{checked} file(s) checked, {len(errors)} problem(s)", file=sys.stderr)
        return 1
    print(f"{checked} file(s) checked, all valid")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
