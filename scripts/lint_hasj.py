#!/usr/bin/env python3
"""Domain lint for the hasj tree (run by CTest as `lint_hasj`).

Repo-specific correctness rules that generic tooling cannot express:

  float-eq         No exact ==/!= between floating-point expressions in
                   src/geom and src/algo. Exact comparison is occasionally
                   the *right* thing in robust geometry (degeneracy tests,
                   sweep-line tie-breaks); those sites carry an explicit
                   justification:  // lint:allow(float-eq): <reason>
  glsim-raw-cast   No raw float->int casts in src/glsim outside the blessed
                   PixelFromCoord() helper (glsim/pixel_snap.h). A bare
                   static_cast<int>(double) is UB out of range, and the
                   float->pixel snap is exactly where the conservativeness
                   invariant (DESIGN.md §6) would break silently.
  status-discard   No laundering of Status/Result returns through a (void)
                   cast, and the Status/Result classes themselves must stay
                   [[nodiscard]] (the compiler enforces call sites from
                   there).
  header-guard     Every header under src/ uses the canonical
                   HASJ_<PATH>_H_ include guard.
  include-order    Own header first in .cc files; include blocks grouped
                   (own / <system> / "project") with each group sorted.

Any rule can be suppressed on a specific line with a trailing
`// lint:allow(<rule>): <reason>` comment; the reason is mandatory.
Exit code 0 = clean, 1 = violations (printed one per line).
"""

import os
import re
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO, "src")

ALLOW_RE = re.compile(r"//\s*lint:allow\(([a-z-]+)\):\s*\S")
BARE_ALLOW_RE = re.compile(r"//\s*lint:allow\(([a-z-]+)\)\s*(?::\s*)?$")

violations = []


def report(path, lineno, rule, message):
    rel = os.path.relpath(path, REPO)
    violations.append(f"{rel}:{lineno}: [{rule}] {message}")


def allowed(line, rule, prev_line=""):
    """A suppression comment applies to its own line, or — when it is a
    comment-only line — to the line below it."""
    m = ALLOW_RE.search(line)
    if m and m.group(1) == rule:
        return True
    prev = prev_line.strip()
    m = ALLOW_RE.search(prev)
    return bool(m and m.group(1) == rule and prev.startswith("//"))


def strip_comments_and_strings(line):
    """Removes // comments and the contents of string/char literals."""
    line = re.sub(r'"(?:[^"\\]|\\.)*"', '""', line)
    line = re.sub(r"'(?:[^'\\]|\\.)*'", "''", line)
    return line.split("//")[0]


def iter_files(root, exts):
    for dirpath, _, files in os.walk(root):
        for name in sorted(files):
            if os.path.splitext(name)[1] in exts:
                yield os.path.join(dirpath, name)


# --- float-eq -----------------------------------------------------------
# Lexical floating-point detection: a comparison operand "looks floating"
# when it contains a float literal, a coordinate member (.x/.y on the
# geometry types), or a call into the double-returning geometry API.
FLOAT_LITERAL = r"(?:\d+\.\d*|\.\d+|\d+\.)(?:[eE][-+]?\d+)?|\d+[eE][-+]?\d+"
FLOAT_CALLS = (
    r"(?:Area|SignedArea|Distance|MinDistance|MaxDistance|Norm|Norm2|Dot|"
    r"Cross|Width|Height|ElapsedMillis|fabs|abs|floor|ceil|sqrt|hypot)\s*\("
)
FLOAT_OPERAND = re.compile(
    rf"(?:{FLOAT_LITERAL})|(?:\.\s*[xy]\b)|(?:{FLOAT_CALLS})"
)
COMPARISON = re.compile(r"([^=!<>]|^)([!=]=)(?!=)")


def check_float_eq(path, lines):
    for i, raw in enumerate(lines, 1):
        if allowed(raw, "float-eq", lines[i - 2] if i > 1 else ""):
            continue
        code = strip_comments_and_strings(raw)
        for m in COMPARISON.finditer(code):
            lhs = code[: m.start(2)]
            rhs = code[m.end(2):]
            # Operands local to the comparison: clip at statement breaks.
            lhs = re.split(r"[;{}]|&&|\|\|", lhs)[-1]
            rhs = re.split(r"[;{}]|&&|\|\|", rhs)[0]
            if FLOAT_OPERAND.search(lhs) or FLOAT_OPERAND.search(rhs):
                report(
                    path, i, "float-eq",
                    f"exact floating-point {m.group(2)} — use a tolerance "
                    "or justify with // lint:allow(float-eq): <reason>",
                )
                break


# --- glsim-raw-cast -----------------------------------------------------
RAW_CAST = re.compile(r"static_cast<\s*int\s*>\s*\(|\(int\)\s*[\w(]")


def check_glsim_cast(path, lines):
    if os.path.basename(path) == "pixel_snap.h":
        return  # the blessed helper
    for i, raw in enumerate(lines, 1):
        if allowed(raw, "glsim-raw-cast", lines[i - 2] if i > 1 else ""):
            continue
        if RAW_CAST.search(strip_comments_and_strings(raw)):
            report(
                path, i, "glsim-raw-cast",
                "raw int cast in the rasterizer — route float->pixel "
                "snapping through glsim::PixelFromCoord (pixel_snap.h)",
            )


# --- status-discard -----------------------------------------------------
# Includes the Status-returning hardware/degradation APIs (DESIGN.md §11):
# discarding a glsim gate status in core/ would silently drop the fault and
# skip the software fallback the conservativeness argument depends on.
STATUS_APIS = (
    r"(?:Validate|CheckInvariants|SaveDataset|WriteSvg"
    r"|BeginRender|BeginScan|BeginFill|TryClear|HwStep|ParallelFor|Check"
    r"|BuildIntervalApprox|ReloadDatasetInPlace)"
)
VOID_LAUNDER = re.compile(rf"\(void\)\s*[\w.->]*\b{STATUS_APIS}\s*\(")


def check_status_discard(path, lines):
    for i, raw in enumerate(lines, 1):
        if allowed(raw, "status-discard", lines[i - 2] if i > 1 else ""):
            continue
        if VOID_LAUNDER.search(strip_comments_and_strings(raw)):
            report(
                path, i, "status-discard",
                "Status result laundered through (void) — handle it or use "
                "HASJ_CHECK_OK",
            )


def check_status_nodiscard_classes():
    status_h = os.path.join(SRC, "common", "status.h")
    with open(status_h, encoding="utf-8") as f:
        text = f.read()
    for cls in ("Status", "Result"):
        if not re.search(rf"class\s+\[\[nodiscard\]\]\s+{cls}\b", text):
            report(
                status_h, 1, "status-discard",
                f"class {cls} must be declared [[nodiscard]]",
            )


# --- header-guard -------------------------------------------------------
def check_header_guard(path, lines):
    rel = os.path.relpath(path, SRC)
    guard = "HASJ_" + re.sub(r"[/.]", "_", rel).upper() + "_"
    text = "".join(lines)
    ifndef = re.search(r"#ifndef\s+(\S+)", text)
    define = re.search(r"#define\s+(\S+)", text)
    if not ifndef or ifndef.group(1) != guard:
        report(
            path, 1, "header-guard",
            f"expected include guard {guard}, found "
            f"{ifndef.group(1) if ifndef else 'none'}",
        )
    elif not define or define.group(1) != guard:
        report(path, 1, "header-guard", f"#define does not match {guard}")
    elif f"#endif  // {guard}" not in text:
        report(path, 1, "header-guard",
               f"closing '#endif  // {guard}' comment missing")


# --- include-order ------------------------------------------------------
INCLUDE_RE = re.compile(r'#include\s+(<[^>]+>|"[^"]+")')


def check_include_order(path, lines):
    rel = os.path.relpath(path, SRC)
    own_header = re.sub(r"\.cc$", ".h", rel)
    includes = []  # (lineno, token, preceded_by_blank)
    blank_before = False
    for i, raw in enumerate(lines, 1):
        stripped = raw.strip()
        m = INCLUDE_RE.match(stripped)
        if m:
            includes.append((i, m.group(1), blank_before))
            blank_before = False
        elif stripped == "":
            blank_before = True
        elif includes and not stripped.startswith("//"):
            break  # past the include preamble
    if not includes:
        return
    idx = 0
    if path.endswith(".cc") and os.path.exists(os.path.join(SRC, own_header)):
        if includes[0][1] != f'"{own_header}"':
            report(
                path, includes[0][0], "include-order",
                f'own header "{own_header}" must be the first include',
            )
            return
        idx = 1
    # Remaining includes: group runs separated by blank lines; each group
    # must be homogeneous (<...> or "...") and internally sorted, with all
    # system groups before all project groups.
    groups = []
    for entry in includes[idx:]:
        if entry[2] or not groups:
            groups.append([entry])
        else:
            groups[-1].append(entry)
    seen_project = False
    for group in groups:
        kinds = {token[0] for _, token, _ in group}
        if len(kinds) > 1:
            report(
                path, group[0][0], "include-order",
                "mixed <system> and \"project\" includes in one block",
            )
            continue
        if kinds == {"<"}:
            if seen_project:
                report(
                    path, group[0][0], "include-order",
                    "<system> include block after a \"project\" block",
                )
        else:
            seen_project = True
        tokens = [token for _, token, _ in group]
        if tokens != sorted(tokens):
            report(
                path, group[0][0], "include-order",
                f"include block not sorted: {', '.join(tokens)}",
            )


# --- unknown/withered suppressions --------------------------------------
KNOWN_RULES = {
    "float-eq", "glsim-raw-cast", "status-discard", "header-guard",
    "include-order",
}


def check_suppressions(path, lines):
    for i, raw in enumerate(lines, 1):
        m = BARE_ALLOW_RE.search(raw.rstrip())
        if m:
            report(
                path, i, "lint-allow",
                "lint:allow without a reason — write "
                "// lint:allow(<rule>): <reason>",
            )
            continue
        m = ALLOW_RE.search(raw)
        if m and m.group(1) not in KNOWN_RULES:
            report(path, i, "lint-allow", f"unknown lint rule '{m.group(1)}'")


def main():
    for path in iter_files(SRC, {".h", ".cc"}):
        with open(path, encoding="utf-8") as f:
            lines = f.readlines()
        rel = os.path.relpath(path, SRC)
        top = rel.split(os.sep)[0]
        check_suppressions(path, lines)
        if top in ("geom", "algo"):
            check_float_eq(path, lines)
        if top == "glsim":
            check_glsim_cast(path, lines)
        check_status_discard(path, lines)
        if path.endswith(".h"):
            check_header_guard(path, lines)
        if path.endswith(".cc"):
            check_include_order(path, lines)
    check_status_nodiscard_classes()

    if violations:
        print(f"lint_hasj: {len(violations)} violation(s)", file=sys.stderr)
        for v in violations:
            print(v, file=sys.stderr)
        return 1
    print("lint_hasj: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
