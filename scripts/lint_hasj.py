#!/usr/bin/env python3
"""Domain lint for the hasj tree (run by CTest as `lint_hasj`).

Repo-specific correctness rules that generic tooling cannot express:

  float-eq         No exact ==/!= between floating-point expressions in
                   src/geom and src/algo. Exact comparison is occasionally
                   the *right* thing in robust geometry (degeneracy tests,
                   sweep-line tie-breaks); those sites carry an explicit
                   justification:  // lint:allow(float-eq): <reason>
  glsim-raw-cast   No raw float->int casts in src/glsim outside the blessed
                   PixelFromCoord() helper (glsim/pixel_snap.h). A bare
                   static_cast<int>(double) is UB out of range, and the
                   float->pixel snap is exactly where the conservativeness
                   invariant (DESIGN.md §6) would break silently.
  simd-intrinsics  No raw vector intrinsics (<immintrin.h>, _mm*/_mm256_*
                   calls, __m128/__m256 types) outside the AVX2 backend TU
                   (glsim/rowspan_avx2.cc) and the dispatch header
                   (common/simd.h). Everything else reaches SIMD through
                   the RowSpanEngine kernel ABI, which is what keeps the
                   scalar/AVX2 bit-identity argument (DESIGN.md §14)
                   auditable in one place.
  metric-name      No string-literal metric names at Registry call sites:
                   every GetCounter/GetGauge/GetHistogram argument in src/
                   must be a named constant from obs/names.h (obs::k*).
                   An inline "hasj.foo.bar" literal bypasses the one place
                   the metric namespace is audited, and a typo there mints
                   a silent parallel time series nobody reads.
  status-discard   No laundering of Status/Result returns through a (void)
                   cast, and the Status/Result classes themselves must stay
                   [[nodiscard]] (the compiler enforces call sites from
                   there).
  header-guard     Every header under src/ uses the canonical
                   HASJ_<PATH>_H_ include guard.
  include-order    Own header first in .cc files; include blocks grouped
                   (own / <system> / "project") with each group sorted.

Concurrency rules (DESIGN.md §13) — the lexical complement of the Clang
Thread Safety Analysis the HASJ_THREAD_SAFETY build runs:

  naked-mutex      No raw std::mutex / std::shared_mutex / std::lock_guard /
                   std::unique_lock / std::scoped_lock / std::shared_lock /
                   std::condition_variable (or their headers) outside
                   common/mutex.h. Raw primitives are invisible to the
                   thread-safety analysis; the annotated wrappers are not.
  atomic-ordering  Every load/store/exchange/fetch_*/compare_exchange_* on a
                   std::atomic names an explicit std::memory_order_* — no
                   default-seq-cst-by-omission. Forces each site to state
                   (and the reviewer to check) the ordering it actually
                   needs.
  guarded-by-coverage
                   In any class that owns a Mutex/SharedMutex, every
                   mutable data member must carry HASJ_GUARDED_BY /
                   HASJ_PT_GUARDED_BY, be a std::atomic (or another
                   synchronization primitive), be const, or carry an
                   allow-comment naming the confinement argument. Catches
                   the field someone adds next year without deciding who
                   guards it.

Any rule can be suppressed on a specific line with a trailing
`// lint:allow(<rule>): <reason>` comment; the reason is mandatory.
Exit code 0 = clean, 1 = violations (printed one per line).

`--src DIR` overrides the tree to scan (default: <repo>/src); the lint
self-test (tests/lint_hasj_test.py) uses it to run the rules over fixture
snippets.
"""

import argparse
import os
import re
import sys

ALLOW_RE = re.compile(r"//\s*lint:allow\(([a-z-]+)\):\s*\S")
BARE_ALLOW_RE = re.compile(r"//\s*lint:allow\(([a-z-]+)\)\s*(?::\s*)?$")

violations = []


def report(path, lineno, rule, message, root):
    rel = os.path.relpath(path, root)
    violations.append(f"{rel}:{lineno}: [{rule}] {message}")


def allowed(line, rule, prev_line=""):
    """A suppression comment applies to its own line, or — when it is a
    comment-only line — to the line below it."""
    m = ALLOW_RE.search(line)
    if m and m.group(1) == rule:
        return True
    prev = prev_line.strip()
    m = ALLOW_RE.search(prev)
    return bool(m and m.group(1) == rule and prev.startswith("//"))


def strip_comments_and_strings(line):
    """Removes // comments and the contents of string/char literals."""
    line = re.sub(r'"(?:[^"\\]|\\.)*"', '""', line)
    line = re.sub(r"'(?:[^'\\]|\\.)*'", "''", line)
    return line.split("//")[0]


def iter_files(root, exts):
    for dirpath, _, files in os.walk(root):
        for name in sorted(files):
            if os.path.splitext(name)[1] in exts:
                yield os.path.join(dirpath, name)


# --- float-eq -----------------------------------------------------------
# Lexical floating-point detection: a comparison operand "looks floating"
# when it contains a float literal, a coordinate member (.x/.y on the
# geometry types), or a call into the double-returning geometry API.
FLOAT_LITERAL = r"(?:\d+\.\d*|\.\d+|\d+\.)(?:[eE][-+]?\d+)?|\d+[eE][-+]?\d+"
FLOAT_CALLS = (
    r"(?:Area|SignedArea|Distance|MinDistance|MaxDistance|Norm|Norm2|Dot|"
    r"Cross|Width|Height|ElapsedMillis|fabs|abs|floor|ceil|sqrt|hypot)\s*\("
)
FLOAT_OPERAND = re.compile(
    rf"(?:{FLOAT_LITERAL})|(?:\.\s*[xy]\b)|(?:{FLOAT_CALLS})"
)
COMPARISON = re.compile(r"([^=!<>]|^)([!=]=)(?!=)")


def check_float_eq(path, lines, root):
    for i, raw in enumerate(lines, 1):
        if allowed(raw, "float-eq", lines[i - 2] if i > 1 else ""):
            continue
        code = strip_comments_and_strings(raw)
        for m in COMPARISON.finditer(code):
            lhs = code[: m.start(2)]
            rhs = code[m.end(2):]
            # Operands local to the comparison: clip at statement breaks.
            lhs = re.split(r"[;{}]|&&|\|\|", lhs)[-1]
            rhs = re.split(r"[;{}]|&&|\|\|", rhs)[0]
            if FLOAT_OPERAND.search(lhs) or FLOAT_OPERAND.search(rhs):
                report(
                    path, i, "float-eq",
                    f"exact floating-point {m.group(2)} — use a tolerance "
                    "or justify with // lint:allow(float-eq): <reason>",
                    root,
                )
                break


# --- glsim-raw-cast -----------------------------------------------------
RAW_CAST = re.compile(r"static_cast<\s*int\s*>\s*\(|\(int\)\s*[\w(]")


def check_glsim_cast(path, lines, root):
    if os.path.basename(path) == "pixel_snap.h":
        return  # the blessed helper
    for i, raw in enumerate(lines, 1):
        if allowed(raw, "glsim-raw-cast", lines[i - 2] if i > 1 else ""):
            continue
        if RAW_CAST.search(strip_comments_and_strings(raw)):
            report(
                path, i, "glsim-raw-cast",
                "raw int cast in the rasterizer — route float->pixel "
                "snapping through glsim::PixelFromCoord (pixel_snap.h)",
                root,
            )


# --- simd-intrinsics ----------------------------------------------------
# Raw vector intrinsics are confined to the one TU that owns the AVX2
# kernels plus the cpuid/dispatch header. A stray _mm256_* call anywhere
# else would dodge the scalar-vs-AVX2 differential suite and the
# -ffp-contract=off guarantees that TU is compiled with.
SIMD_BLESSED = {
    os.path.join("glsim", "rowspan_avx2.cc"),
    os.path.join("common", "simd.h"),
}
SIMD_TOKEN = re.compile(
    r"#include\s*<(?:immintrin|x86intrin|[xew]mmintrin|avx\w*intrin)\.h>"
    r"|\b_mm(?:256|512)?_\w+\s*\("
    r"|\b__m(?:64|128|256|512)[di]?\b"
)


def check_simd_intrinsics(path, lines, src, root):
    if os.path.relpath(path, src) in SIMD_BLESSED:
        return
    for i, raw in enumerate(lines, 1):
        if allowed(raw, "simd-intrinsics", lines[i - 2] if i > 1 else ""):
            continue
        if SIMD_TOKEN.search(strip_comments_and_strings(raw)):
            report(
                path, i, "simd-intrinsics",
                "raw vector intrinsic outside glsim/rowspan_avx2.cc / "
                "common/simd.h — go through the RowSpanEngine kernel ABI "
                "(or justify with // lint:allow(simd-intrinsics): <reason>)",
                root,
            )


# --- metric-name --------------------------------------------------------
# Registry lookups must spell their metric name as an obs/names.h constant.
# The regex keys on a string literal opening the argument list; building a
# name from a constant (`prefix + obs::kPipelineRunsSuffix`) stays legal
# because the literal lives in names.h, which defines the constants and is
# the one file exempted.
METRIC_LOOKUP_LITERAL = re.compile(
    r"\bGet(?:Counter|Gauge|Histogram)\s*\(\s*\"")


def check_metric_name(path, lines, src, root):
    if os.path.relpath(path, src) == os.path.join("obs", "names.h"):
        return  # the canonical name table itself
    for i, raw in enumerate(lines, 1):
        if allowed(raw, "metric-name", lines[i - 2] if i > 1 else ""):
            continue
        # Match against the raw line: string stripping would erase the very
        # literal this rule keys on.
        if METRIC_LOOKUP_LITERAL.search(raw.split("//")[0]):
            report(
                path, i, "metric-name",
                "string-literal metric name at a Registry call site — use a "
                "named constant from obs/names.h (or justify with "
                "// lint:allow(metric-name): <reason>)",
                root,
            )


# --- status-discard -----------------------------------------------------
# Includes the Status-returning hardware/degradation APIs (DESIGN.md §11):
# discarding a glsim gate status in core/ would silently drop the fault and
# skip the software fallback the conservativeness argument depends on.
STATUS_APIS = (
    r"(?:Validate|CheckInvariants|SaveDataset|WriteSvg"
    r"|BeginRender|BeginScan|BeginFill|TryClear|HwStep|ParallelFor|Check"
    r"|BuildIntervalApprox|ReloadDatasetInPlace"
    # Mutable-store / server Status APIs (DESIGN.md §16): discarding an
    # Insert/Delete/SeedFrom/ApplyUpdateOp status hides a lost update;
    # discarding QueryServer::Start hides a server that never ran.
    r"|Insert|Delete|SeedFrom|ApplyUpdateOp|Start)"
)
VOID_LAUNDER = re.compile(rf"\(void\)\s*[\w.>-]*\b{STATUS_APIS}\s*\(")


def check_status_discard(path, lines, root):
    for i, raw in enumerate(lines, 1):
        if allowed(raw, "status-discard", lines[i - 2] if i > 1 else ""):
            continue
        if VOID_LAUNDER.search(strip_comments_and_strings(raw)):
            report(
                path, i, "status-discard",
                "Status result laundered through (void) — handle it or use "
                "HASJ_CHECK_OK",
                root,
            )


def check_status_nodiscard_classes(src, root):
    status_h = os.path.join(src, "common", "status.h")
    if not os.path.exists(status_h):
        return  # fixture tree without the real status header
    with open(status_h, encoding="utf-8") as f:
        text = f.read()
    for cls in ("Status", "Result"):
        if not re.search(rf"class\s+\[\[nodiscard\]\]\s+{cls}\b", text):
            report(
                status_h, 1, "status-discard",
                f"class {cls} must be declared [[nodiscard]]",
                root,
            )


# --- header-guard -------------------------------------------------------
def check_header_guard(path, lines, src, root):
    rel = os.path.relpath(path, src)
    guard = "HASJ_" + re.sub(r"[/.]", "_", rel).upper() + "_"
    text = "".join(lines)
    ifndef = re.search(r"#ifndef\s+(\S+)", text)
    define = re.search(r"#define\s+(\S+)", text)
    if not ifndef or ifndef.group(1) != guard:
        report(
            path, 1, "header-guard",
            f"expected include guard {guard}, found "
            f"{ifndef.group(1) if ifndef else 'none'}",
            root,
        )
    elif not define or define.group(1) != guard:
        report(path, 1, "header-guard", f"#define does not match {guard}",
               root)
    elif f"#endif  // {guard}" not in text:
        report(path, 1, "header-guard",
               f"closing '#endif  // {guard}' comment missing", root)


# --- include-order ------------------------------------------------------
INCLUDE_RE = re.compile(r'#include\s+(<[^>]+>|"[^"]+")')


def check_include_order(path, lines, src, root):
    rel = os.path.relpath(path, src)
    own_header = re.sub(r"\.cc$", ".h", rel)
    includes = []  # (lineno, token, preceded_by_blank)
    blank_before = False
    for i, raw in enumerate(lines, 1):
        stripped = raw.strip()
        m = INCLUDE_RE.match(stripped)
        if m:
            includes.append((i, m.group(1), blank_before))
            blank_before = False
        elif stripped == "":
            blank_before = True
        elif includes and not stripped.startswith("//"):
            break  # past the include preamble
    if not includes:
        return
    idx = 0
    if path.endswith(".cc") and os.path.exists(os.path.join(src, own_header)):
        if includes[0][1] != f'"{own_header}"':
            report(
                path, includes[0][0], "include-order",
                f'own header "{own_header}" must be the first include',
                root,
            )
            return
        idx = 1
    # Remaining includes: group runs separated by blank lines; each group
    # must be homogeneous (<...> or "...") and internally sorted, with all
    # system groups before all project groups.
    groups = []
    for entry in includes[idx:]:
        if entry[2] or not groups:
            groups.append([entry])
        else:
            groups[-1].append(entry)
    seen_project = False
    for group in groups:
        kinds = {token[0] for _, token, _ in group}
        if len(kinds) > 1:
            report(
                path, group[0][0], "include-order",
                "mixed <system> and \"project\" includes in one block",
                root,
            )
            continue
        if kinds == {"<"}:
            if seen_project:
                report(
                    path, group[0][0], "include-order",
                    "<system> include block after a \"project\" block",
                    root,
                )
        else:
            seen_project = True
        tokens = [token for _, token, _ in group]
        if tokens != sorted(tokens):
            report(
                path, group[0][0], "include-order",
                f"include block not sorted: {', '.join(tokens)}",
                root,
            )


# --- naked-mutex --------------------------------------------------------
# Raw standard-library locking primitives are invisible to the Clang Thread
# Safety Analysis; the annotated wrappers in common/mutex.h are the only
# blessed spelling. std::once_flag / std::call_once are deliberately NOT in
# the pattern: call_once is a one-shot initialization primitive, not a lock
# the analysis could track (its <mutex> include does need an allow-comment,
# which is where the justification lands).
NAKED_MUTEX = re.compile(
    r"\bstd::(?:recursive_|timed_|recursive_timed_|shared_)?mutex\b"
    r"|\bstd::(?:lock_guard|unique_lock|scoped_lock|shared_lock)\b"
    r"|\bstd::condition_variable(?:_any)?\b"
)
NAKED_MUTEX_INCLUDE = re.compile(
    r"#include\s+<(?:mutex|shared_mutex|condition_variable)>"
)


def check_naked_mutex(path, lines, src, root):
    if os.path.relpath(path, src) == os.path.join("common", "mutex.h"):
        return  # the blessed wrapper itself
    for i, raw in enumerate(lines, 1):
        if allowed(raw, "naked-mutex", lines[i - 2] if i > 1 else ""):
            continue
        code = strip_comments_and_strings(raw)
        if NAKED_MUTEX.search(code) or NAKED_MUTEX_INCLUDE.search(code):
            report(
                path, i, "naked-mutex",
                "raw std locking primitive outside common/mutex.h — use the "
                "annotated Mutex/MutexLock/CondVar wrappers (or justify "
                "with // lint:allow(naked-mutex): <reason>)",
                root,
            )


# --- atomic-ordering ----------------------------------------------------
# Atomic operations whose std::memory_order argument is optional: omitting
# it silently means seq_cst, which is almost never what a reviewed hot path
# intends. Requiring the argument makes every site state its ordering.
ATOMIC_OP = re.compile(
    r"(?:\.|->)\s*(load|store|exchange|fetch_add|fetch_sub|fetch_and|"
    r"fetch_or|fetch_xor|compare_exchange_weak|compare_exchange_strong)"
    r"\s*\("
)
# How many lines one call may span before we give up scanning for its
# closing paren (argument lists here are short).
MAX_CALL_SPAN = 8


def call_argument_text(lines, line_idx, open_col):
    """Text of a call's argument list, from the opening paren at
    (line_idx, open_col) to its balanced close; joined across lines."""
    depth = 0
    parts = []
    for j in range(line_idx, min(line_idx + MAX_CALL_SPAN, len(lines))):
        code = strip_comments_and_strings(lines[j])
        start = open_col if j == line_idx else 0
        for k in range(start, len(code)):
            ch = code[k]
            if ch == "(":
                depth += 1
            elif ch == ")":
                depth -= 1
                if depth == 0:
                    parts.append(code[start:k + 1])
                    return "".join(parts)
        parts.append(code[start:])
    return "".join(parts)  # unbalanced: best effort


def check_atomic_ordering(path, lines, root):
    for i, raw in enumerate(lines, 1):
        if allowed(raw, "atomic-ordering", lines[i - 2] if i > 1 else ""):
            continue
        code = strip_comments_and_strings(raw)
        for m in ATOMIC_OP.finditer(code):
            args = call_argument_text(lines, i - 1, m.end() - 1)
            if "memory_order" not in args:
                report(
                    path, i, "atomic-ordering",
                    f"atomic {m.group(1)}() without an explicit "
                    "std::memory_order_* — seq-cst-by-omission; name the "
                    "ordering the site actually needs",
                    root,
                )
                break


# --- guarded-by-coverage ------------------------------------------------
# Any class that owns an annotated Mutex/SharedMutex must say, for every
# mutable data member, who guards it: HASJ_GUARDED_BY / HASJ_PT_GUARDED_BY,
# std::atomic, const-ness, another synchronization primitive, or an
# allow-comment carrying the confinement argument.
CLASS_DECL = re.compile(
    r"(?<!enum )\b(class|struct)\s+(?:HASJ_\w+\([^)]*\)\s*)?"
    r"(?:\[\[\w+\]\]\s*)?(\w+)"
)
OWNS_MUTEX = re.compile(r"(?<![:\w])(?:mutable\s+)?(Mutex|SharedMutex)\s+\w+\s*[;{]")
MEMBER_NAME = re.compile(r"\b([A-Za-z]\w*_)\s*(?:\[[^\]]*\])?\s*;\s*$")
SYNC_TYPES = re.compile(
    r"std::atomic\b|(?<![:\w])Mutex\b|(?<![:\w])SharedMutex\b"
    r"|(?<![:\w])CondVar\b|std::once_flag\b"
)
# `const T name_;` or `T* const name_;` — the member itself is immutable.
CONST_MEMBER = re.compile(
    r"^(?:mutable\s+)?(?:static\s+)?const\s+[\w:<>,\s]+\s\w+_\s*;$"
    r"|[*&]\s*const\s+\w+_\s*(?:\[[^\]]*\])?\s*;\s*$"
)
NON_MEMBER_KEYWORDS = re.compile(
    r"^\s*(?:friend|using|typedef|static_assert|public|private|protected|"
    r"template|enum)\b"
)


class _ClassScope:
    def __init__(self, name, body_depth):
        self.name = name
        self.body_depth = body_depth
        self.owns_mutex = False
        self.members = []  # (start_lineno, stmt_code)


def collect_class_members(lines):
    """Lexical single-pass scan: returns the list of finished _ClassScope
    objects with their direct member-declaration statements."""
    depth = 0
    pending_class = None  # name awaiting its opening brace
    stack = []  # mix of _ClassScope and None (non-class braces)
    finished = []
    stmt = ""  # accumulating statement text at the innermost class depth
    stmt_start = 0
    for lineno, raw in enumerate(lines, 1):
        code = strip_comments_and_strings(raw)
        m = CLASS_DECL.search(code)
        if m:
            tail = code[m.end():]
            brace = tail.find("{")
            semi = tail.find(";")
            if brace != -1 and (semi == -1 or brace < semi):
                pending_class = m.group(2)
            elif semi == -1:
                pending_class = m.group(2)  # brace on a later line
        innermost = stack[-1] if stack and isinstance(stack[-1], _ClassScope) \
            else None
        at_member_depth = innermost is not None and depth == innermost.body_depth
        for k, ch in enumerate(code):
            if ch == "{":
                depth += 1
                if pending_class is not None:
                    stack.append(_ClassScope(pending_class, depth))
                    pending_class = None
                else:
                    stack.append(None)
                stmt, at_member_depth = "", False
                innermost = stack[-1] if isinstance(stack[-1], _ClassScope) \
                    else None
                if innermost is not None and depth == innermost.body_depth:
                    at_member_depth = True
            elif ch == "}":
                depth -= 1
                if stack:
                    closed = stack.pop()
                    if isinstance(closed, _ClassScope):
                        finished.append(closed)
                stmt, at_member_depth = "", False
                innermost = next(
                    (s for s in reversed(stack) if isinstance(s, _ClassScope)),
                    None,
                )
                if innermost is not None and stack and \
                        stack[-1] is innermost and depth == innermost.body_depth:
                    at_member_depth = True
            elif at_member_depth:
                if not stmt.strip():
                    stmt_start = lineno
                stmt += ch
                if ch == ";":
                    text = " ".join(stmt.split()).strip()
                    if text:
                        innermost.members.append((stmt_start, text))
                        if OWNS_MUTEX.search(text):
                            innermost.owns_mutex = True
                    stmt = ""
        if at_member_depth:
            stmt += " "  # line break inside a statement
    return finished


def is_data_member(stmt):
    """Does a class-scope statement declare a data member (vs a method,
    friend, using, access label, nested type...)?"""
    if NON_MEMBER_KEYWORDS.match(stmt):
        return None
    # Drop annotation macros, brace initializers, and '=' initializers so a
    # function declaration is recognizable by its remaining parentheses.
    cleaned = re.sub(r"HASJ_\w+\s*\([^()]*\)", "", stmt)
    cleaned = re.sub(r"\{[^{}]*\}", "", cleaned)
    cleaned = re.sub(r"=[^;]*;", ";", cleaned)
    cleaned = " ".join(cleaned.split())
    if "(" in cleaned:
        return None  # method / constructor / function pointer (rare)
    m = MEMBER_NAME.search(cleaned)
    return (m.group(1), cleaned) if m else None


def check_guarded_by(path, lines, root):
    for scope in collect_class_members(lines):
        if not scope.owns_mutex:
            continue
        for start, stmt in scope.members:
            member = is_data_member(stmt)
            if member is None:
                continue
            name, cleaned = member
            if "HASJ_GUARDED_BY" in stmt or "HASJ_PT_GUARDED_BY" in stmt:
                continue
            if SYNC_TYPES.search(cleaned):
                continue
            if CONST_MEMBER.search(cleaned):
                continue
            raw = lines[start - 1]
            prev = lines[start - 2] if start > 1 else ""
            if allowed(raw, "guarded-by-coverage", prev):
                continue
            report(
                path, start, "guarded-by-coverage",
                f"member '{name}' of mutex-owning class '{scope.name}' has "
                "no HASJ_GUARDED_BY, is not atomic/const — annotate it, or "
                "state the confinement argument with "
                "// lint:allow(guarded-by-coverage): <reason>",
                root,
            )


# --- unknown/withered suppressions --------------------------------------
KNOWN_RULES = {
    "float-eq", "glsim-raw-cast", "simd-intrinsics", "metric-name",
    "status-discard", "header-guard", "include-order", "naked-mutex",
    "atomic-ordering", "guarded-by-coverage",
}


def check_suppressions(path, lines, root):
    for i, raw in enumerate(lines, 1):
        m = BARE_ALLOW_RE.search(raw.rstrip())
        if m:
            report(
                path, i, "lint-allow",
                "lint:allow without a reason — write "
                "// lint:allow(<rule>): <reason>",
                root,
            )
            continue
        m = ALLOW_RE.search(raw)
        if m and m.group(1) not in KNOWN_RULES:
            report(path, i, "lint-allow", f"unknown lint rule '{m.group(1)}'",
                   root)


def run(src, root):
    for path in iter_files(src, {".h", ".cc"}):
        with open(path, encoding="utf-8") as f:
            lines = f.readlines()
        rel = os.path.relpath(path, src)
        top = rel.split(os.sep)[0]
        check_suppressions(path, lines, root)
        if top in ("geom", "algo"):
            check_float_eq(path, lines, root)
        if top == "glsim":
            check_glsim_cast(path, lines, root)
        check_simd_intrinsics(path, lines, src, root)
        check_metric_name(path, lines, src, root)
        check_status_discard(path, lines, root)
        check_naked_mutex(path, lines, src, root)
        check_atomic_ordering(path, lines, root)
        check_guarded_by(path, lines, root)
        if path.endswith(".h"):
            check_header_guard(path, lines, src, root)
        if path.endswith(".cc"):
            check_include_order(path, lines, src, root)
    check_status_nodiscard_classes(src, root)


def main():
    repo = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--src", default=os.path.join(repo, "src"),
        help="source tree to scan (default: <repo>/src); used by the lint "
        "self-tests to point at fixture trees",
    )
    args = parser.parse_args()
    src = os.path.abspath(args.src)
    root = os.path.dirname(src) or src

    del violations[:]
    run(src, root)

    if violations:
        print(f"lint_hasj: {len(violations)} violation(s)", file=sys.stderr)
        for v in violations:
            print(v, file=sys.stderr)
        return 1
    print("lint_hasj: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
