// Observability-overhead ablation (DESIGN.md §15): what attaching the
// observability sinks costs the hardware-assisted intersection join, and
// whether each sink delivers what it promises. Not a paper figure — the
// paper reports no instrumentation cost — but the repo's observability
// contract ("null-gated sinks are free, attached sinks are cheap") needs a
// measured gate, not a comment.
//
// Four checks gate the exit code:
//  * enabled-but-unsampled overhead: metrics + trace + query log at sample
//    rate 0 must stay within noise of the all-null baseline (< 1% of run
//    wall-clock, with slack for timer jitter at bench scale);
//  * a rate-0 query log writes zero records;
//  * a rate-1 query log writes exactly one record per query, drops none;
//  * with perf_event_open available, the per-stage PMU deltas are nonzero
//    (on kernels that deny the syscall the row prints
//    [SKIPPED no-perf-events] and does not fail).

#include <cstdio>
#include <string>

#include "bench/harness.h"
#include "core/join.h"
#include "obs/metrics.h"
#include "obs/perf_counters.h"
#include "obs/query_log.h"
#include "obs/trace.h"

namespace hasj::bench {
namespace {

// Repeated timed runs, keeping the fastest (least-noise) total time.
double BestTotalMs(const core::IntersectionJoin& join,
                   const core::JoinOptions& options, int reps,
                   core::JoinResult* out) {
  double best = 0.0;
  for (int rep = 0; rep < reps; ++rep) {
    core::JoinResult r = join.Run(options);
    const double total = r.costs.mbr_ms + r.costs.filter_ms + r.costs.compare_ms;
    if (rep == 0 || total < best) best = total;
    if (rep == 0) *out = std::move(r);
  }
  return best;
}

int Main(int argc, char** argv) {
  const BenchArgs args = ParseArgs(argc, argv, 0.05);
  BenchReport report("ablation_obs", args);
  PrintHeader("Observability ablation: sink overhead, query log, PMU", args);

  const data::Dataset water = Generate(data::WaterProfile(args.scale), args);
  const data::Dataset prism = Generate(data::PrismProfile(args.scale), args);
  PrintDataset(water);
  PrintDataset(prism);

  const core::IntersectionJoin join(water, prism);
  core::JoinOptions options;
  options.use_hw = true;
  options.num_threads = args.threads;
  options.hw.resolution = 16;
  report.Wire(&options.hw);
  // Rows below wire their own sinks; the measured configs start all-null.
  options.hw.metrics = nullptr;
  options.hw.trace = nullptr;
  options.hw.faults = nullptr;
  options.hw.pmu = nullptr;
  options.hw.query_log = nullptr;
  options.hw.deadline_ms = 0.0;
  const int reps = 3;
  const std::string qlog_path = "ablation_obs_query_log.jsonl";
  bool all_ok = true;

  // Baseline: every sink null — the zero-cost disabled path.
  core::JoinResult baseline;
  const double baseline_ms = BestTotalMs(join, options, reps, &baseline);
  std::printf(
      "## intersection join, 16x16 window (candidates=%lld compared=%lld "
      "results=%lld)\n",
      static_cast<long long>(baseline.counts.candidates),
      static_cast<long long>(baseline.counts.compared),
      static_cast<long long>(baseline.counts.results));
  std::printf("%-24s %12s %10s\n", "row", "total_ms", "overhead");
  std::printf("%-24s %12.1f %10s\n", "sinks-off", baseline_ms, "1.00x");
  report.Row("sinks-off", {{"total_ms", baseline_ms}});

  // Enabled but unsampled: metrics + trace + query log at rate 0. This is
  // the production posture ("instrumented, not currently recording"), so
  // it carries the <1% overhead contract.
  double enabled_ms = baseline_ms;
  {
    obs::Registry registry;
    obs::TraceSession trace_session;
    obs::QueryLog query_log;
    bool qlog_open = false;
    if (const Status s = query_log.Open(qlog_path); s.ok()) {
      qlog_open = true;
    } else {
      std::fprintf(stderr, "query log open failed: %s\n", s.message().c_str());
      all_ok = false;
    }
    options.hw.metrics = &registry;
    options.hw.trace = &trace_session;
    options.hw.query_log = qlog_open ? &query_log : nullptr;
    options.hw.query_log_sample = 0.0;
    core::JoinResult r;
    enabled_ms = BestTotalMs(join, options, reps, &r);
    const bool match = r.pairs == baseline.pairs && r.status.ok();
    all_ok = all_ok && match;
    if (qlog_open) {
      if (const Status s = query_log.Close(); !s.ok()) {
        std::fprintf(stderr, "query log close failed: %s\n",
                     s.message().c_str());
        all_ok = false;
      }
      // Rate 0 means attached-but-never-sampled: zero records by contract.
      if (query_log.written() != 0) {
        std::printf("# FAIL: rate-0 query log wrote %lld record(s)\n",
                    static_cast<long long>(query_log.written()));
        all_ok = false;
      }
    }
    options.hw.metrics = nullptr;
    options.hw.trace = nullptr;
    options.hw.query_log = nullptr;
  }
  const double overhead =
      baseline_ms > 0 ? (enabled_ms - baseline_ms) / baseline_ms : 0.0;
  const bool overhead_ok = overhead < 0.01 || enabled_ms - baseline_ms < 5.0;
  all_ok = all_ok && overhead_ok;
  std::printf("%-24s %12.1f %9.2fx\n", "metrics+trace+qlog@0", enabled_ms,
              enabled_ms / (baseline_ms > 0 ? baseline_ms : 1e-9));
  std::printf("# enabled-unsampled overhead: %.2f%% (%s)\n", overhead * 100.0,
              overhead_ok ? "ok, < 1% or < 5ms" : "TOO HIGH");
  report.Row("enabled-unsampled",
             {{"total_ms", enabled_ms},
              {"overhead_frac", overhead},
              {"ok", overhead_ok ? 1.0 : 0.0}});

  // Rate-1 query log: one record per query, none dropped.
  {
    obs::QueryLog query_log;
    const int runs = 4;
    if (const Status s = query_log.Open(qlog_path); !s.ok()) {
      std::fprintf(stderr, "query log open failed: %s\n", s.message().c_str());
      all_ok = false;
    } else {
      options.hw.query_log = &query_log;
      options.hw.query_log_sample = 1.0;
      for (int i = 0; i < runs; ++i) (void)join.Run(options);
      options.hw.query_log = nullptr;
      if (const Status s = query_log.Close(); !s.ok()) {
        std::fprintf(stderr, "query log close failed: %s\n",
                     s.message().c_str());
        all_ok = false;
      }
      const bool qlog_ok =
          query_log.written() == runs && query_log.dropped() == 0;
      all_ok = all_ok && qlog_ok;
      std::printf("# query log @ rate 1: %lld/%d records, %lld dropped (%s)\n",
                  static_cast<long long>(query_log.written()), runs,
                  static_cast<long long>(query_log.dropped()),
                  qlog_ok ? "ok" : "WRONG COUNT");
      report.Row("query-log",
                 {{"records", static_cast<double>(query_log.written())},
                  {"dropped", static_cast<double>(query_log.dropped())},
                  {"ok", qlog_ok ? 1.0 : 0.0}});
    }
  }
  std::remove(qlog_path.c_str());

  // PMU: per-stage counter deltas must be nonzero when the kernel grants
  // perf_event_open; a denial is an environment property, not a failure.
  if (obs::PerfCounters::Supported()) {
    obs::PerfCounters pmu;
    options.hw.pmu = &pmu;
    core::JoinResult r;
    const double pmu_ms = BestTotalMs(join, options, 1, &r);
    options.hw.pmu = nullptr;
    const obs::PmuSnapshot snap = pmu.Snapshot();
    const int64_t cycles = snap.total(obs::PmuEvent::kCycles);
    const int64_t instructions = snap.total(obs::PmuEvent::kInstructions);
    const bool pmu_ok = pmu.available() && cycles > 0 && instructions > 0;
    all_ok = all_ok && pmu_ok;
    std::printf("# pmu: cycles=%lld instructions=%lld over %lld scoped "
                "stage(s), total_ms=%.1f (%s)\n",
                static_cast<long long>(cycles),
                static_cast<long long>(instructions),
                static_cast<long long>(snap.scopes[0] + snap.scopes[1] +
                                       snap.scopes[2] + snap.scopes[3]),
                pmu_ms, pmu_ok ? "ok" : "ZERO DELTAS");
    report.Row("pmu", {{"cycles", static_cast<double>(cycles)},
                       {"instructions", static_cast<double>(instructions)},
                       {"ok", pmu_ok ? 1.0 : 0.0}});
  } else {
    std::printf("# pmu: [SKIPPED no-perf-events] perf_event_open denied in "
                "this environment\n");
    report.Row("pmu", {{"skipped", 1.0}});
  }

  std::printf(
      "# expected shape: attaching metrics + trace + an unsampled query log "
      "must not move total_ms beyond timer noise (the sinks are pointer-"
      "gated and the query log renders nothing at rate 0); the rate-1 log "
      "writes exactly one record per Run(); PMU deltas are nonzero wherever "
      "the kernel grants perf_event_open.\n");
  const int finish = report.Finish();
  return all_ok ? finish : 1;
}

}  // namespace
}  // namespace hasj::bench

int main(int argc, char** argv) { return hasj::bench::Main(argc, argv); }
