// Fault-degradation ablation (DESIGN.md §11): geometry-comparison cost of
// the hardware-assisted intersection join as injected hardware faults route
// pairs to the exact software fallback. Not a paper figure — the paper
// assumes a healthy GPU — but the conservative-filter property (§3.1) makes
// skipping the hardware test always legal, so every row must produce the
// identical result set; the sweep measures what that degradation costs.
//
// Two checks gate the exit code:
//  * result-set identity at every fault rate, per-pair and batched;
//  * wiring a disabled injector (rate 0) must stay within noise of the
//    no-injector baseline — the injector off-path is one pointer test per
//    hardware step, asserted here as < 1% of refinement wall-clock (with
//    slack for timer jitter at bench scale).

#include <cstdio>
#include <string>
#include <utility>

#include "bench/harness.h"
#include "common/fault.h"
#include "core/join.h"

namespace hasj::bench {
namespace {

constexpr double kFaultRates[] = {0.0, 0.01, 0.1, 1.0};

// Repeated timed runs, keeping the fastest (least-noise) refinement time.
double BestCompareMs(const core::IntersectionJoin& join,
                     const core::JoinOptions& options, int reps,
                     core::JoinResult* out) {
  double best = 0.0;
  for (int rep = 0; rep < reps; ++rep) {
    core::JoinResult r = join.Run(options);
    if (rep == 0 || r.costs.compare_ms < best) best = r.costs.compare_ms;
    if (rep == 0) *out = std::move(r);
  }
  return best;
}

int Main(int argc, char** argv) {
  const BenchArgs args = ParseArgs(argc, argv, 0.05);
  BenchReport report("ablation_faults", args);
  PrintHeader("Fault-degradation ablation: hardware faults vs software fallback",
              args);

  const data::Dataset water = Generate(data::WaterProfile(args.scale), args);
  const data::Dataset prism = Generate(data::PrismProfile(args.scale), args);
  PrintDataset(water);
  PrintDataset(prism);

  const core::IntersectionJoin join(water, prism);
  core::JoinOptions options;
  options.use_hw = true;
  options.num_threads = args.threads;
  options.hw.resolution = 16;
  report.Wire(&options.hw);
  options.hw.faults = nullptr;  // rows below wire their own injectors
  options.hw.deadline_ms = 0.0;
  const int reps = 3;

  // Baseline: no injector wired at all (config.faults == nullptr).
  core::JoinResult baseline;
  const double baseline_ms = BestCompareMs(join, options, reps, &baseline);
  std::printf(
      "## intersection join, 16x16 window (candidates=%lld compared=%lld "
      "results=%lld)\n",
      static_cast<long long>(baseline.counts.candidates),
      static_cast<long long>(baseline.counts.compared),
      static_cast<long long>(baseline.counts.results));
  std::printf("%-22s %12s %10s %10s %12s %14s %8s\n", "row", "compare_ms",
              "overhead", "hw_tests", "hw_faults", "fallback_pairs", "match");
  std::printf("%-22s %12.1f %10s %10lld %12s %14s %8s\n", "no-injector",
              baseline_ms, "1.00x",
              static_cast<long long>(baseline.hw_counters.hw_tests), "-", "-",
              "-");
  report.Row("no-injector", {{"compare_ms", baseline_ms}});

  bool all_ok = true;
  double disabled_ms = baseline_ms;
  for (const bool batched : {false, true}) {
    for (const double rate : kFaultRates) {
      FaultInjector faults(args.seed ^ 0x9e3779b97f4a7c15ULL);
      const FaultPlan plan = FaultPlan::Probability(rate);
      faults.SetPlan(FaultSite::kFramebufferAlloc, plan);
      faults.SetPlan(FaultSite::kRenderPass, plan);
      faults.SetPlan(FaultSite::kScanReadback, plan);
      faults.SetPlan(FaultSite::kBatchFill, plan);
      options.hw.faults = &faults;
      options.hw.use_batching = batched;
      core::JoinResult r;
      const double ms = BestCompareMs(join, options, reps, &r);
      // The conservative-filter property: the result set never changes, no
      // matter which hardware steps fault.
      const bool match = r.pairs == baseline.pairs && r.status.ok();
      all_ok = all_ok && match;
      const std::string label = std::string(batched ? "batched" : "per-pair") +
                                " rate=" + std::to_string(rate);
      std::printf("%-22s %12.1f %9.2fx %10lld %12lld %14lld %8s\n",
                  label.c_str(), ms, ms / (baseline_ms > 0 ? baseline_ms : 1e-9),
                  static_cast<long long>(r.hw_counters.hw_tests),
                  static_cast<long long>(r.hw_counters.hw_faults),
                  static_cast<long long>(r.hw_counters.hw_fallback_pairs),
                  match ? "ok" : "MISMATCH");
      report.Row(label, {{"compare_ms", ms},
                         {"hw_tests", static_cast<double>(r.hw_counters.hw_tests)},
                         {"hw_faults", static_cast<double>(r.hw_counters.hw_faults)},
                         {"fallback_pairs",
                          static_cast<double>(r.hw_counters.hw_fallback_pairs)},
                         {"breaker_opens",
                          static_cast<double>(r.hw_counters.breaker_opens)},
                         {"match", match ? 1.0 : 0.0}});
      if (!batched && rate == 0.0) disabled_ms = ms;
      options.hw.faults = nullptr;
    }
    options.hw.use_batching = false;
  }

  // Disabled-injector overhead: a wired injector whose plans never fire
  // must stay within noise of no injector at all. The hot-path cost is one
  // pointer test per hardware step; 1% of refinement wall-clock is far
  // above that, with generous slack for timer jitter at bench scale.
  const double overhead =
      baseline_ms > 0 ? (disabled_ms - baseline_ms) / baseline_ms : 0.0;
  const bool overhead_ok = overhead < 0.01 || disabled_ms - baseline_ms < 5.0;
  all_ok = all_ok && overhead_ok;
  std::printf("# disabled-injector overhead: %.2f%% (%s)\n", overhead * 100.0,
              overhead_ok ? "ok, < 1% or < 5ms" : "TOO HIGH");
  report.Row("disabled-overhead",
             {{"overhead_frac", overhead}, {"ok", overhead_ok ? 1.0 : 0.0}});

  std::printf(
      "# expected shape: compare_ms grows with the fault rate (every faulted "
      "pair pays the exact software test it would otherwise have skipped via "
      "a hardware reject); at rate=1.0 the breaker opens after the threshold "
      "and the remaining pairs skip the hardware step entirely, so the run "
      "degenerates to the software baseline plus breaker re-probes; match "
      "must always be ok.\n");
  const int finish = report.Finish();
  return all_ok ? finish : 1;
}

}  // namespace
}  // namespace hasj::bench

int main(int argc, char** argv) { return hasj::bench::Main(argc, argv); }
