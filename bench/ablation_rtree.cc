// Ablation (DESIGN.md): R-tree build strategies for the MBR-filtering
// substrate — Guttman quadratic-split insertion, R*-split insertion, and
// STR bulk loading — compared by build time and by the number of nodes a
// window-query workload touches (the classic I/O proxy).

#include <cstdio>

#include "bench/harness.h"
#include "common/random.h"
#include "common/stopwatch.h"
#include "index/rtree.h"

namespace hasj::bench {
namespace {

int Main(int argc, char** argv) {
  const BenchArgs args = ParseArgs(argc, argv, 0.1);
  BenchReport report("ablation_rtree", args);
  PrintHeader("Ablation: R-tree build strategies (WATER MBRs)", args);
  const data::Dataset water = Generate(data::WaterProfile(args.scale), args);
  PrintDataset(water);
  std::vector<index::RTree::Entry> entries;
  for (size_t i = 0; i < water.size(); ++i) {
    entries.push_back({water.mbr(i), static_cast<int64_t>(i)});
  }

  // Window-query workload: 1000 windows of ~1% extent area.
  const geom::Box extent = water.Bounds();
  Rng rng(args.seed + 17);
  std::vector<geom::Box> windows;
  const double ww = extent.Width() * 0.1, wh = extent.Height() * 0.1;
  for (int q = 0; q < 1000; ++q) {
    const double x = rng.Uniform(extent.min_x, extent.max_x - ww);
    const double y = rng.Uniform(extent.min_y, extent.max_y - wh);
    windows.emplace_back(x, y, x + ww, y + wh);
  }

  const auto measure = [&](const char* name, const index::RTree& tree,
                           double build_ms) {
    int64_t nodes = 0, results = 0;
    Stopwatch watch;
    for (const geom::Box& w : windows) {
      nodes += tree.NodesTouched(w);
      results += static_cast<int64_t>(tree.QueryIntersects(w).size());
    }
    const double query_ms = watch.ElapsedMillis();
    const double nodes_per_query =
        static_cast<double>(nodes) / static_cast<double>(windows.size());
    std::printf("%-22s build %8.1f ms   query %8.2f ms   nodes/query %6.1f"
                "   results %lld\n",
                name, build_ms, query_ms, nodes_per_query,
                static_cast<long long>(results));
    report.Row(name, {{"build_ms", build_ms},
                      {"query_ms", query_ms},
                      {"nodes_per_query", nodes_per_query},
                      {"results", static_cast<double>(results)}});
  };

  {
    Stopwatch watch;
    index::RTree tree(16, index::SplitPolicy::kQuadratic);
    for (const auto& e : entries) tree.Insert(e.box, e.id);
    measure("insert + quadratic", tree, watch.ElapsedMillis());
  }
  {
    Stopwatch watch;
    index::RTree tree(16, index::SplitPolicy::kRStar);
    for (const auto& e : entries) tree.Insert(e.box, e.id);
    measure("insert + R* split", tree, watch.ElapsedMillis());
  }
  {
    Stopwatch watch;
    auto copy = entries;
    const index::RTree tree = index::RTree::BulkLoad(std::move(copy), 16);
    measure("STR bulk load", tree, watch.ElapsedMillis());
  }
  return report.Finish();
}

}  // namespace
}  // namespace hasj::bench

int main(int argc, char** argv) { return hasj::bench::Main(argc, argv); }
