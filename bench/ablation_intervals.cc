// Raster-interval secondary-filter ablation (DESIGN.md §12): intersection
// join over two tessellation-like layers — high-coverage, low-roughness
// blobs, the regime where most candidate pairs either overlap deeply
// (decided TRUE HIT from a FULL cell) or occupy disjoint cell sets
// (decided TRUE MISS) — comparing the batched hardware baseline against
// the same join with the interval filter deciding pairs before
// refinement. Gates (exit 1 on violation):
//
//   - decided ratio (interval hits+misses / candidates) >= 0.5 at fault
//     rate 0;
//   - result-set identity with the intervals-off baseline at fault rates
//     {0, 0.1} (hardware sites and dataset-load armed — degraded interval
//     builds must cost decisions, never correctness).
//
// The warm-cache speedup over the batched baseline is reported (the
// interval build amortizes across queries like the signature cache).

#include <algorithm>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "bench/harness.h"
#include "core/join.h"

namespace hasj::bench {
namespace {

data::GeneratorProfile TessellationProfile(const char* name, int64_t count,
                                           uint64_t seed) {
  data::GeneratorProfile p;
  p.name = name;
  p.count = count;
  p.min_vertices = 8;
  p.max_vertices = 60;
  p.mean_vertices = 22;
  p.sigma = 0.5;
  p.extent = geom::Box(0, 0, 70, 70);
  p.coverage = 2.5;   // dense overlap: most candidate pairs truly intersect
  p.roughness = 0.1;  // near-convex blobs rasterize into FULL-rich interiors
  p.seed = seed;
  return p;
}

data::Dataset GenerateLayer(const char* name, int64_t count, uint64_t seed,
                            const BenchArgs& args) {
  return Generate(TessellationProfile(name, count, seed).Scaled(args.scale),
                  args);
}

double TotalMs(const core::JoinResult& r) {
  return r.costs.mbr_ms + r.costs.filter_ms + r.costs.compare_ms;
}

std::vector<std::pair<int64_t, int64_t>> SortedPairs(
    const core::JoinResult& r) {
  std::vector<std::pair<int64_t, int64_t>> pairs = r.pairs;
  std::sort(pairs.begin(), pairs.end());
  return pairs;
}

int Main(int argc, char** argv) {
  const BenchArgs args = ParseArgs(argc, argv, 0.05);
  BenchReport report("ablation_intervals", args);
  PrintHeader("Raster-interval secondary filter: decided pairs vs batched "
              "baseline",
              args);

  const data::Dataset layer_a = GenerateLayer("landuse", 1500, 31, args);
  const data::Dataset layer_b = GenerateLayer("soil", 1200, 32, args);
  PrintDataset(layer_a);
  PrintDataset(layer_b);

  std::printf("%-10s %12s %12s %12s %12s %10s %10s %8s\n", "rate",
              "candidates", "decided", "ratio", "off_ms", "cold_ms",
              "warm_ms", "match");

  bool gates_ok = true;
  for (const double rate : {0.0, 0.1}) {
    core::JoinOptions options;
    options.use_hw = true;
    options.num_threads = args.threads;
    options.hw.use_batching = true;
    options.hw.resolution = 8;
    report.Wire(&options.hw);
    // The rate sweep is part of the ablation, so it gets its own injector
    // (the --fault_rate one from Wire is replaced): hardware sites plus
    // dataset-load, the site interval builds degrade at.
    FaultInjector faults(args.seed + static_cast<uint64_t>(rate * 1e3));
    if (rate > 0.0) {
      const FaultPlan plan = FaultPlan::Probability(rate);
      faults.SetPlan(FaultSite::kFramebufferAlloc, plan);
      faults.SetPlan(FaultSite::kRenderPass, plan);
      faults.SetPlan(FaultSite::kScanReadback, plan);
      faults.SetPlan(FaultSite::kBatchFill, plan);
      faults.SetPlan(FaultSite::kDatasetLoad, plan);
      options.hw.faults = &faults;
    } else {
      options.hw.faults = nullptr;
    }

    options.hw.use_intervals = false;
    const core::IntersectionJoin join_off(layer_a, layer_b);
    const core::JoinResult off = join_off.Run(options);
    if (!off.status.ok()) {
      std::fprintf(stderr, "baseline join failed: %s\n",
                   off.status.message().c_str());
      return 1;
    }

    options.hw.use_intervals = true;
    const core::IntersectionJoin join_on(layer_a, layer_b);
    const core::JoinResult cold = join_on.Run(options);  // builds intervals
    const core::JoinResult warm = join_on.Run(options);  // cached intervals
    if (!cold.status.ok() || !warm.status.ok()) {
      std::fprintf(stderr, "interval join failed: %s\n",
                   (cold.status.ok() ? warm : cold).status.message().c_str());
      return 1;
    }

    const bool match = SortedPairs(off) == SortedPairs(cold) &&
                       SortedPairs(off) == SortedPairs(warm);
    const int64_t decided = warm.interval_hits + warm.interval_misses;
    const double ratio =
        warm.counts.candidates > 0
            ? static_cast<double>(decided) / warm.counts.candidates
            : 0.0;
    std::printf("%-10.2f %12lld %12lld %12.2f %12.1f %10.1f %10.1f %8s\n",
                rate, static_cast<long long>(warm.counts.candidates),
                static_cast<long long>(decided), ratio, TotalMs(off),
                TotalMs(cold), TotalMs(warm), match ? "ok" : "MISMATCH");
    report.Row("rate=" + std::to_string(rate),
               {{"candidates", static_cast<double>(warm.counts.candidates)},
                {"decided_ratio", ratio},
                {"interval_hits", static_cast<double>(warm.interval_hits)},
                {"interval_misses", static_cast<double>(warm.interval_misses)},
                {"interval_undecided",
                 static_cast<double>(warm.interval_undecided)},
                {"total_ms_off", TotalMs(off)},
                {"total_ms_cold", TotalMs(cold)},
                {"total_ms_warm", TotalMs(warm)},
                {"speedup_warm",
                 TotalMs(off) / (TotalMs(warm) > 0 ? TotalMs(warm) : 1e-9)},
                {"match", match ? 1.0 : 0.0}});

    if (!match) {
      std::fprintf(stderr, "GATE: interval join results diverge from the "
                           "baseline at rate %.2f\n", rate);
      gates_ok = false;
    }
    // lint:allow(float-eq): exact sentinel for the fault-free row
    if (rate == 0.0 && ratio < 0.5) {
      std::fprintf(stderr, "GATE: decided ratio %.2f < 0.5 on the "
                           "tessellation join at rate 0\n", ratio);
      gates_ok = false;
    }
  }

  std::printf(
      "# expected shape: at rate 0 the interval filter decides well over "
      "half of the candidates (deep overlaps hit a FULL cell, separated "
      "blobs occupy disjoint cell runs), so warm_ms beats off_ms — the "
      "undecided remainder is all the hardware testers see; at rate 0.1 "
      "dataset-load faults leave some objects unapproximated, shrinking "
      "the decided share but never flipping a pair (match stays ok).\n");
  const int finish = report.Finish();
  return gates_ok ? finish : 1;
}

}  // namespace
}  // namespace hasj::bench

int main(int argc, char** argv) { return hasj::bench::Main(argc, argv); }
