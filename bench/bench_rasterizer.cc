// Google-benchmark microbenchmarks for the glsim rasterizer and the
// hardware-assisted testers — the cost model that stands in for the GPU.

#include <benchmark/benchmark.h>

#include "common/random.h"
#include "core/hw_distance.h"
#include "core/hw_intersection.h"
#include "data/generator.h"
#include "glsim/context.h"
#include "glsim/pixel_mask.h"
#include "glsim/raster.h"
#include "glsim/voronoi.h"

namespace hasj {
namespace {

void BM_RasterizeLineAA(benchmark::State& state) {
  const int res = static_cast<int>(state.range(0));
  Rng rng(1);
  glsim::PixelMask mask(res, res);
  for (auto _ : state) {
    const geom::Point a{rng.Uniform(0, res), rng.Uniform(0, res)};
    const geom::Point b{rng.Uniform(0, res), rng.Uniform(0, res)};
    glsim::RasterizeLineAA(a, b, 1.4142135623730951, res, res,
                           [&](int x, int y) { mask.Set(x, y); });
    benchmark::DoNotOptimize(mask);
  }
}
BENCHMARK(BM_RasterizeLineAA)->Arg(8)->Arg(16)->Arg(32);

void BM_RasterizeWideLine(benchmark::State& state) {
  const int res = 32;
  const double width = static_cast<double>(state.range(0));
  Rng rng(2);
  glsim::PixelMask mask(res, res);
  for (auto _ : state) {
    const geom::Point a{rng.Uniform(0, res), rng.Uniform(0, res)};
    const geom::Point b{rng.Uniform(0, res), rng.Uniform(0, res)};
    glsim::RasterizeLineAA(a, b, width, res, res,
                           [&](int x, int y) { mask.Set(x, y); });
    benchmark::DoNotOptimize(mask);
  }
}
BENCHMARK(BM_RasterizeWideLine)->Arg(1)->Arg(4)->Arg(10);

void BM_PolygonFill(benchmark::State& state) {
  const int res = static_cast<int>(state.range(0));
  const geom::Polygon poly = data::GenerateBlobPolygon(
      {res / 2.0, res / 2.0}, res / 2.2, 64, 0.4, 5);
  glsim::PixelMask mask(res, res);
  for (auto _ : state) {
    glsim::RasterizePolygonFill(
        std::span<const geom::Point>(poly.vertices()), res, res,
        [&](int x, int y) { mask.Set(x, y); });
    benchmark::DoNotOptimize(mask);
  }
}
BENCHMARK(BM_PolygonFill)->Arg(8)->Arg(32);

void BM_MinmaxSearch(benchmark::State& state) {
  const int res = static_cast<int>(state.range(0));
  glsim::ColorBuffer fb(res, res);
  fb.Set(res / 2, res / 2, glsim::Rgb{1.0f, 1.0f, 1.0f});
  for (auto _ : state) {
    benchmark::DoNotOptimize(fb.ComputeMinMax());
  }
}
BENCHMARK(BM_MinmaxSearch)->Arg(8)->Arg(16)->Arg(32);

void BM_AccumPipeline(benchmark::State& state) {
  const int res = static_cast<int>(state.range(0));
  glsim::ColorBuffer fb(res, res);
  glsim::AccumBuffer accum(res, res);
  for (auto _ : state) {
    accum.Load(fb, 1.0f);
    accum.Accum(fb, 1.0f);
    accum.Return(fb, 1.0f);
    benchmark::DoNotOptimize(fb);
  }
}
BENCHMARK(BM_AccumPipeline)->Arg(8)->Arg(32);

void BM_TriangleConservative(benchmark::State& state) {
  const int res = static_cast<int>(state.range(0));
  Rng rng(6);
  glsim::PixelMask mask(res, res);
  for (auto _ : state) {
    const geom::Point a{rng.Uniform(0, res), rng.Uniform(0, res)};
    const geom::Point b{rng.Uniform(0, res), rng.Uniform(0, res)};
    const geom::Point c{rng.Uniform(0, res), rng.Uniform(0, res)};
    glsim::RasterizeTriangleConservative(a, b, c, res, res,
                                         [&](int x, int y) { mask.Set(x, y); });
    benchmark::DoNotOptimize(mask);
  }
}
BENCHMARK(BM_TriangleConservative)->Arg(8)->Arg(32);

void BM_VoronoiRender(benchmark::State& state) {
  const int sites_n = static_cast<int>(state.range(0));
  Rng rng(9);
  std::vector<geom::Point> sites;
  for (int i = 0; i < sites_n; ++i) {
    sites.push_back({rng.Uniform(0, 100), rng.Uniform(0, 100)});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        glsim::RenderVoronoi(sites, geom::Box(0, 0, 100, 100), 128));
  }
}
BENCHMARK(BM_VoronoiRender)->Arg(64)->Arg(512);

void BM_HwIntersectionTest(benchmark::State& state) {
  const int res = static_cast<int>(state.range(0));
  core::HwConfig config;
  config.resolution = res;
  config.backend = core::HwBackend::kBitmask;
  core::HwIntersectionTester tester(config);
  Rng rng(7);
  std::vector<geom::Polygon> polys;
  for (int i = 0; i < 64; ++i) {
    polys.push_back(data::GenerateBlobPolygon(
        {rng.Uniform(0, 6), rng.Uniform(0, 6)}, 2.0,
        static_cast<int>(rng.UniformInt(50, 400)), 0.5, rng.Next()));
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        tester.Test(polys[i % polys.size()], polys[(i + 1) % polys.size()]));
    ++i;
  }
}
BENCHMARK(BM_HwIntersectionTest)->Arg(1)->Arg(8)->Arg(32);

void BM_HwDistanceTest(benchmark::State& state) {
  const int res = static_cast<int>(state.range(0));
  core::HwConfig config;
  config.resolution = res;
  config.backend = core::HwBackend::kBitmask;
  core::HwDistanceTester tester(config);
  Rng rng(8);
  std::vector<geom::Polygon> polys;
  for (int i = 0; i < 64; ++i) {
    polys.push_back(data::GenerateBlobPolygon(
        {rng.Uniform(0, 10), rng.Uniform(0, 10)}, 1.5,
        static_cast<int>(rng.UniformInt(50, 400)), 0.5, rng.Next()));
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tester.Test(polys[i % polys.size()],
                                         polys[(i + 1) % polys.size()], 1.0));
    ++i;
  }
}
BENCHMARK(BM_HwDistanceTest)->Arg(1)->Arg(8)->Arg(32);

}  // namespace
}  // namespace hasj

BENCHMARK_MAIN();
