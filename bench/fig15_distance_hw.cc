// Figure 15 reproduction: within-distance join geometry-comparison cost,
// software vs hardware-assisted distance test across window resolutions,
// D = 1 x BaseD, sw_threshold = 0.

#include <cstdio>
#include <string>

#include "bench/harness.h"
#include "core/distance_join.h"

namespace hasj::bench {
namespace {

void RunJoin(const data::Dataset& a, const data::Dataset& b,
             const char* pair, BenchReport& report) {
  PrintDataset(a);
  PrintDataset(b);
  const core::WithinDistanceJoin join(a, b);
  const double d = data::BaseDistance(a, b);
  std::printf("# D=BaseD=%.6g\n", d);

  core::DistanceJoinOptions sw_options;
  sw_options.use_hw = false;
  report.Wire(&sw_options.hw);
  const core::DistanceJoinResult sw = join.Run(d, sw_options);
  std::printf("%-10s %12s %10s %12s %12s\n", "config", "compare_ms", "vs_sw",
              "hw_rejects", "width_fb");
  std::printf("%-10s %12.1f %10s %12s %12s\n", "software",
              sw.costs.compare_ms, "1.00x", "-", "-");
  report.Row(std::string(pair) + " software",
             {{"compare_ms", sw.costs.compare_ms},
              {"results", static_cast<double>(sw.counts.results)}});
  for (int resolution : {1, 2, 4, 8, 16, 32}) {
    core::DistanceJoinOptions options;
    options.use_hw = true;
    options.hw.resolution = resolution;
    options.hw.sw_threshold = 0;
    report.Wire(&options.hw);
    const core::DistanceJoinResult r = join.Run(d, options);
    char label[32];
    std::snprintf(label, sizeof(label), "hw %dx%d", resolution, resolution);
    std::printf("%-10s %12.1f %9.2fx %12lld %12lld\n", label,
                r.costs.compare_ms,
                sw.costs.compare_ms /
                    (r.costs.compare_ms > 0 ? r.costs.compare_ms : 1e-9),
                static_cast<long long>(r.hw_counters.hw_rejects),
                static_cast<long long>(r.hw_counters.width_fallbacks));
    report.Row(
        std::string(pair) + " " + label,
        {{"compare_ms", r.costs.compare_ms},
         {"hw_rejects", static_cast<double>(r.hw_counters.hw_rejects)},
         {"width_fallbacks",
          static_cast<double>(r.hw_counters.width_fallbacks)}});
  }
}

int Main(int argc, char** argv) {
  const BenchArgs args = ParseArgs(argc, argv, 0.02);
  BenchReport report("fig15_distance_hw", args);
  PrintHeader(
      "Figure 15: within-distance join geometry-comparison cost, software "
      "vs hardware-assisted distance test (D = 1 x BaseD)",
      args);
  std::printf("## LANDC join_dist LANDO\n");
  RunJoin(Generate(data::LandcProfile(args.scale), args),
          Generate(data::LandoProfile(args.scale), args), "LANDCxLANDO",
          report);
  std::printf("## WATER join_dist PRISM\n");
  RunJoin(Generate(data::WaterProfile(args.scale), args),
          Generate(data::PrismProfile(args.scale), args), "WATERxPRISM",
          report);
  std::printf(
      "# paper shape: wide-line rendering makes the hardware test barely "
      "win on LANDC-LANDO but keep a 60-81%% reduction on WATER-PRISM.\n");
  return report.Finish();
}

}  // namespace
}  // namespace hasj::bench

int main(int argc, char** argv) { return hasj::bench::Main(argc, argv); }
