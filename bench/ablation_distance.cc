// Ablation (DESIGN.md): software within-distance test variants on the same
// candidate pairs — the paper's minDist optimizations (frontier clipping,
// edge-pair pruning, early exit) on vs off. The paper reports a factor of
// 2 to 6 from the extended-MBR restriction.

#include <cstdio>

#include "algo/polygon_distance.h"
#include "bench/harness.h"
#include "common/stopwatch.h"
#include "index/rtree.h"

namespace hasj::bench {
namespace {

int Main(int argc, char** argv) {
  const BenchArgs args = ParseArgs(argc, argv, 0.01);
  BenchReport report("ablation_distance", args);
  PrintHeader("Ablation: software distance-test variants (WATER join_dist "
              "PRISM candidates, D = BaseD)",
              args);
  const data::Dataset a = Generate(data::WaterProfile(args.scale), args);
  const data::Dataset b = Generate(data::PrismProfile(args.scale), args);
  PrintDataset(a);
  PrintDataset(b);
  const double d = data::BaseDistance(a, b);
  const auto candidates =
      index::JoinWithinDistance(a.BuildRTree(), b.BuildRTree(), d);
  std::printf("# candidate pairs: %zu, D=%.6g\n", candidates.size(), d);

  struct Config {
    const char* name;
    bool frontier;
    bool prune;
    bool early;
  };
  const Config configs[] = {
      {"all optimizations", true, true, true},
      {"no frontier clip", false, true, true},
      {"no pair pruning", true, false, true},
      {"no early exit", true, true, false},
      {"none", false, false, false},
  };
  std::printf("%-20s %12s %10s %10s\n", "variant", "compare_ms", "vs_best",
              "results");
  double best = 0.0;
  for (const Config& config : configs) {
    algo::DistanceOptions options;
    options.use_frontier = config.frontier;
    options.prune_edge_pairs = config.prune;
    options.early_exit = config.early;
    Stopwatch watch;
    long long results = 0;
    for (const auto& [ia, ib] : candidates) {
      results += algo::WithinDistance(a.polygon(static_cast<size_t>(ia)),
                                      b.polygon(static_cast<size_t>(ib)), d,
                                      options);
    }
    const double ms = watch.ElapsedMillis();
    if (best == 0.0) best = ms;
    std::printf("%-20s %12.1f %9.2fx %10lld\n", config.name, ms, ms / best,
                results);
    report.Row(config.name, {{"compare_ms", ms},
                             {"results", static_cast<double>(results)}});
  }
  std::printf("# paper: the restriction optimizations buy a factor 2-6.\n");
  return report.Finish();
}

}  // namespace
}  // namespace hasj::bench

int main(int argc, char** argv) { return hasj::bench::Main(argc, argv); }
