// Google-benchmark microbenchmarks for the geometric primitives and the
// software refinement algorithms the query pipelines are built from.

#include <benchmark/benchmark.h>

#include <vector>

#include "algo/point_in_polygon.h"
#include "algo/point_locator.h"
#include "algo/polygon_distance.h"
#include "algo/polygon_intersect.h"
#include "algo/segment_tests.h"
#include "common/random.h"
#include "data/generator.h"
#include "geom/predicates.h"
#include "index/rtree.h"

namespace hasj {
namespace {

void BM_Orient2dFastPath(benchmark::State& state) {
  Rng rng(1);
  std::vector<geom::Point> pts;
  for (int i = 0; i < 3000; ++i) {
    pts.push_back({rng.Uniform(-100, 100), rng.Uniform(-100, 100)});
  }
  size_t i = 0;
  for (auto _ : state) {
    const auto& a = pts[i % pts.size()];
    const auto& b = pts[(i + 1) % pts.size()];
    const auto& c = pts[(i + 2) % pts.size()];
    benchmark::DoNotOptimize(geom::Orient2d(a, b, c));
    ++i;
  }
}
BENCHMARK(BM_Orient2dFastPath);

void BM_Orient2dExactPath(benchmark::State& state) {
  // Collinear triples force the expansion-arithmetic fallback.
  const geom::Point a{0.1, 0.1}, b{0.7, 0.7}, c{0.3, 0.3};
  for (auto _ : state) {
    benchmark::DoNotOptimize(geom::Orient2d(a, b, c));
  }
}
BENCHMARK(BM_Orient2dExactPath);

void BM_SegmentsIntersect(benchmark::State& state) {
  Rng rng(2);
  std::vector<geom::Segment> segs;
  for (int i = 0; i < 2000; ++i) {
    segs.push_back({{rng.Uniform(0, 10), rng.Uniform(0, 10)},
                    {rng.Uniform(0, 10), rng.Uniform(0, 10)}});
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        geom::SegmentsIntersect(segs[i % segs.size()],
                                segs[(i + 7) % segs.size()]));
    ++i;
  }
}
BENCHMARK(BM_SegmentsIntersect);

void BM_PointInPolygon(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const geom::Polygon poly = data::GenerateBlobPolygon({0, 0}, 10, n, 0.5, 3);
  Rng rng(4);
  for (auto _ : state) {
    const geom::Point p{rng.Uniform(-12, 12), rng.Uniform(-12, 12)};
    benchmark::DoNotOptimize(algo::LocatePoint(p, poly));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_PointInPolygon)->Range(16, 4096)->Complexity(benchmark::oN);

void BM_SweepRedBlue(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const geom::Polygon a = data::GenerateBlobPolygon({0, 0}, 10, n, 0.5, 5);
  const geom::Polygon b = data::GenerateBlobPolygon({4, 4}, 10, n, 0.5, 6);
  std::vector<geom::Segment> ea, eb;
  for (size_t i = 0; i < a.size(); ++i) ea.push_back(a.edge(i));
  for (size_t i = 0; i < b.size(); ++i) eb.push_back(b.edge(i));
  for (auto _ : state) {
    benchmark::DoNotOptimize(algo::SweepRedBlueIntersect(ea, eb));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_SweepRedBlue)->Range(16, 4096)->Complexity(benchmark::oNLogN);

void BM_BruteRedBlue(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const geom::Polygon a = data::GenerateBlobPolygon({0, 0}, 10, n, 0.5, 5);
  const geom::Polygon b = data::GenerateBlobPolygon({4, 4}, 10, n, 0.5, 6);
  std::vector<geom::Segment> ea, eb;
  for (size_t i = 0; i < a.size(); ++i) ea.push_back(a.edge(i));
  for (size_t i = 0; i < b.size(); ++i) eb.push_back(b.edge(i));
  for (auto _ : state) {
    benchmark::DoNotOptimize(algo::BruteRedBlueIntersect(ea, eb));
  }
}
BENCHMARK(BM_BruteRedBlue)->Range(16, 1024);

void BM_PolygonsIntersect(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(7);
  std::vector<geom::Polygon> polys;
  for (int i = 0; i < 32; ++i) {
    polys.push_back(data::GenerateBlobPolygon(
        {rng.Uniform(0, 5), rng.Uniform(0, 5)}, 3, n, 0.5, rng.Next()));
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(algo::PolygonsIntersect(
        polys[i % polys.size()], polys[(i + 1) % polys.size()]));
    ++i;
  }
}
BENCHMARK(BM_PolygonsIntersect)->Range(16, 2048);

void BM_WithinDistance(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const geom::Polygon a = data::GenerateBlobPolygon({0, 0}, 3, n, 0.5, 8);
  const geom::Polygon b = data::GenerateBlobPolygon({8, 0}, 3, n, 0.5, 9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(algo::WithinDistance(a, b, 2.5));
  }
}
BENCHMARK(BM_WithinDistance)->Range(16, 1024);

void BM_PointLocatorQuery(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const geom::Polygon poly = data::GenerateBlobPolygon({0, 0}, 10, n, 0.5, 3);
  const algo::PointLocator locator(poly);
  Rng rng(4);
  for (auto _ : state) {
    const geom::Point p{rng.Uniform(-12, 12), rng.Uniform(-12, 12)};
    benchmark::DoNotOptimize(locator.Locate(p));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_PointLocatorQuery)->Range(16, 4096)->Complexity(benchmark::o1);

void BM_PointLocatorBuild(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const geom::Polygon poly = data::GenerateBlobPolygon({0, 0}, 10, n, 0.5, 3);
  for (auto _ : state) {
    algo::PointLocator locator(poly);
    benchmark::DoNotOptimize(locator);
  }
}
BENCHMARK(BM_PointLocatorBuild)->Range(64, 16384);

void BM_RTreeBulkLoad(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(10);
  std::vector<index::RTree::Entry> entries;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Uniform(0, 1000), y = rng.Uniform(0, 1000);
    entries.push_back({geom::Box(x, y, x + 5, y + 5), i});
  }
  for (auto _ : state) {
    auto copy = entries;
    benchmark::DoNotOptimize(index::RTree::BulkLoad(std::move(copy)));
  }
}
BENCHMARK(BM_RTreeBulkLoad)->Range(1024, 65536);

void BM_RTreeQuery(benchmark::State& state) {
  Rng rng(11);
  std::vector<index::RTree::Entry> entries;
  for (int i = 0; i < 50000; ++i) {
    const double x = rng.Uniform(0, 1000), y = rng.Uniform(0, 1000);
    entries.push_back({geom::Box(x, y, x + 5, y + 5), i});
  }
  const index::RTree tree = index::RTree::BulkLoad(std::move(entries));
  for (auto _ : state) {
    const double x = rng.Uniform(0, 950), y = rng.Uniform(0, 950);
    benchmark::DoNotOptimize(
        tree.QueryIntersects(geom::Box(x, y, x + 50, y + 50)));
  }
}
BENCHMARK(BM_RTreeQuery);

}  // namespace
}  // namespace hasj

BENCHMARK_MAIN();
