// Ablation (paper §3): the "general strategy" — triangulate both polygons
// and render them FILLED — versus Algorithm 3.1's edge-chain rendering, on
// the same join candidates. The paper rejects the filled strategy because
// software triangulation "is far more complicated" and expensive; this
// bench measures that claim (triangulation time reported separately).

#include <cstdio>

#include "bench/harness.h"
#include "common/stopwatch.h"
#include "core/hw_filled.h"
#include "core/hw_intersection.h"
#include "index/rtree.h"

namespace hasj::bench {
namespace {

int Main(int argc, char** argv) {
  const BenchArgs args = ParseArgs(argc, argv, 0.01);
  BenchReport report("ablation_filled", args);
  PrintHeader(
      "Ablation: filled-polygon strategy (triangulate + fill) vs "
      "Algorithm 3.1 edge chains (WATER join PRISM, 8x8)",
      args);
  const data::Dataset a = Generate(data::WaterProfile(args.scale), args);
  const data::Dataset b = Generate(data::PrismProfile(args.scale), args);
  PrintDataset(a);
  PrintDataset(b);
  const auto candidates =
      index::JoinIntersects(a.BuildRTree(), b.BuildRTree());
  std::printf("# candidate pairs: %zu\n", candidates.size());

  core::HwConfig config;
  config.resolution = 8;
  report.Wire(&config);

  {
    core::HwIntersectionTester edges(config);
    Stopwatch watch;
    long long hits = 0;
    for (const auto& [i, j] : candidates) {
      hits += edges.Test(a.polygon(static_cast<size_t>(i)),
                         b.polygon(static_cast<size_t>(j)));
    }
    const double ms = watch.ElapsedMillis();
    std::printf(
        "edge chains (Alg. 3.1):  %8.1f ms  results=%lld rejects=%lld\n", ms,
        hits, static_cast<long long>(edges.counters().hw_rejects));
    report.Row("edge chains",
               {{"compare_ms", ms},
                {"results", static_cast<double>(hits)},
                {"hw_rejects",
                 static_cast<double>(edges.counters().hw_rejects)}});
  }
  {
    core::HwFilledIntersectionTester filled(config);
    Stopwatch watch;
    long long hits = 0;
    for (const auto& [i, j] : candidates) {
      hits += filled.Test(a.polygon(static_cast<size_t>(i)),
                          b.polygon(static_cast<size_t>(j)));
    }
    const double ms = watch.ElapsedMillis();
    std::printf(
        "filled (triangulated):   %8.1f ms  results=%lld rejects=%lld  "
        "(triangulation alone: %.1f ms)\n",
        ms, hits, static_cast<long long>(filled.counters().hw_rejects),
        filled.triangulate_ms());
    report.Row("filled",
               {{"compare_ms", ms},
                {"results", static_cast<double>(hits)},
                {"hw_rejects",
                 static_cast<double>(filled.counters().hw_rejects)},
                {"triangulate_ms", filled.triangulate_ms()}});
  }
  std::printf(
      "# paper's argument: triangulation makes the filled strategy lose to "
      "edge chains despite needing no point-in-polygon step.\n");
  return report.Finish();
}

}  // namespace
}  // namespace hasj::bench

int main(int argc, char** argv) { return hasj::bench::Main(argc, argv); }
