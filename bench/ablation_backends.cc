// Ablation (DESIGN.md): cost of the faithful Algorithm 3.1 execution
// (color + accumulation buffers + Minmax) vs the decision-identical
// bitmask backend, and of the hardware Minmax search vs the modeled
// readback scan (§3.2). Same join, same decisions, different mechanics.

#include <cstdio>

#include "bench/harness.h"
#include "core/join.h"

namespace hasj::bench {
namespace {

int Main(int argc, char** argv) {
  const BenchArgs args = ParseArgs(argc, argv, 0.02);
  BenchReport report("ablation_backends", args);
  PrintHeader("Ablation: hardware-test backends (WATER join PRISM, 8x8)",
              args);
  const data::Dataset a = Generate(data::WaterProfile(args.scale), args);
  const data::Dataset b = Generate(data::PrismProfile(args.scale), args);
  PrintDataset(a);
  PrintDataset(b);
  const core::IntersectionJoin join(a, b);

  struct Config {
    const char* name;
    core::HwBackend backend;
    bool use_minmax;
  };
  const Config configs[] = {
      {"faithful+minmax", core::HwBackend::kFaithful, true},
      {"faithful+readback", core::HwBackend::kFaithful, false},
      {"bitmask", core::HwBackend::kBitmask, true},
  };
  std::printf("%-20s %12s %12s %10s\n", "backend", "compare_ms", "hw_rejects",
              "results");
  long long reference_rejects = -1;
  for (const Config& config : configs) {
    core::JoinOptions options;
    options.use_hw = true;
    options.hw.resolution = 8;
    options.hw.backend = config.backend;
    options.hw.use_minmax = config.use_minmax;
    report.Wire(&options.hw);
    const core::JoinResult r = join.Run(options);
    std::printf("%-20s %12.1f %12lld %10lld\n", config.name,
                r.costs.compare_ms,
                static_cast<long long>(r.hw_counters.hw_rejects),
                static_cast<long long>(r.counts.results));
    report.Row(config.name,
               {{"compare_ms", r.costs.compare_ms},
                {"hw_rejects", static_cast<double>(r.hw_counters.hw_rejects)},
                {"results", static_cast<double>(r.counts.results)}});
    if (reference_rejects < 0) {
      reference_rejects = r.hw_counters.hw_rejects;
    } else if (reference_rejects != r.hw_counters.hw_rejects) {
      std::printf("!! backends disagree on filtering decisions\n");
      return 1;
    }
  }
  std::printf("# all backends must report identical hw_rejects/results.\n");
  return report.Finish();
}

}  // namespace
}  // namespace hasj::bench

int main(int argc, char** argv) { return hasj::bench::Main(argc, argv); }
