// Ablation (DESIGN.md): boundary-intersection refinement engines on the
// same MBR-join candidates — the paper's plane sweep, the brute pair loop,
// and the TR*-tree-analog edge index (Table 1's refinement alternative,
// with per-polygon indexes built once and reused), plus the rasterization
// intermediate filter (Table 1) in front of the sweep.

#include <cstdio>
#include <memory>

#include "algo/edge_index.h"
#include "algo/polygon_intersect.h"
#include "bench/harness.h"
#include "common/stopwatch.h"
#include "filter/raster_signature.h"
#include "index/rtree.h"

namespace hasj::bench {
namespace {

int Main(int argc, char** argv) {
  const BenchArgs args = ParseArgs(argc, argv, 0.02);
  BenchReport report("ablation_refinement", args);
  PrintHeader("Ablation: refinement engines (WATER join PRISM candidates)",
              args);
  const data::Dataset a = Generate(data::WaterProfile(args.scale), args);
  const data::Dataset b = Generate(data::PrismProfile(args.scale), args);
  PrintDataset(a);
  PrintDataset(b);
  const auto candidates =
      index::JoinIntersects(a.BuildRTree(), b.BuildRTree());
  std::printf("# candidate pairs: %zu (boundary-crossing test only; no "
              "containment step)\n",
              candidates.size());
  std::printf("%-26s %12s %10s\n", "engine", "compare_ms", "crossings");

  // Plane sweep (paper's baseline) and brute pair loop.
  for (const bool sweep : {true, false}) {
    algo::SoftwareIntersectOptions options;
    options.use_sweep = sweep;
    Stopwatch watch;
    long long hits = 0;
    for (const auto& [ia, ib] : candidates) {
      hits += algo::BoundariesIntersect(a.polygon(static_cast<size_t>(ia)),
                                        b.polygon(static_cast<size_t>(ib)),
                                        options);
    }
    const double ms = watch.ElapsedMillis();
    const char* name =
        sweep ? "plane sweep (restricted)" : "brute (restricted)";
    std::printf("%-26s %12.1f %10lld\n", name, ms, hits);
    report.Row(name, {{"compare_ms", ms},
                      {"crossings", static_cast<double>(hits)}});
  }

  // Edge indexes, built once per polygon (TR*-tree analog).
  {
    Stopwatch build_watch;
    std::vector<std::unique_ptr<algo::EdgeIndex>> ia(a.size()), ib(b.size());
    const auto indexed = [](std::vector<std::unique_ptr<algo::EdgeIndex>>& c,
                            const data::Dataset& ds,
                            int64_t id) -> const algo::EdgeIndex& {
      auto& slot = c[static_cast<size_t>(id)];
      if (slot == nullptr) {
        slot = std::make_unique<algo::EdgeIndex>(
            ds.polygon(static_cast<size_t>(id)));
      }
      return *slot;
    };
    Stopwatch watch;
    long long hits = 0;
    for (const auto& [i, j] : candidates) {
      hits += algo::EdgeIndex::BoundariesIntersect(indexed(ia, a, i),
                                                   indexed(ib, b, j));
    }
    const double ms = watch.ElapsedMillis();
    std::printf("%-26s %12.1f %10lld  (incl. lazy index builds)\n",
                "edge R-trees (cached)", ms, hits);
    report.Row("edge R-trees (cached)",
               {{"compare_ms", ms},
                {"crossings", static_cast<double>(hits)}});
  }

  // Rasterization filter in front of the sweep.
  {
    Stopwatch watch;
    std::vector<std::unique_ptr<filter::RasterSignature>> sa(a.size()),
        sb(b.size());
    const auto sig = [](std::vector<std::unique_ptr<filter::RasterSignature>>& c,
                        const data::Dataset& ds,
                        int64_t id) -> const filter::RasterSignature& {
      auto& slot = c[static_cast<size_t>(id)];
      if (slot == nullptr) {
        slot = std::make_unique<filter::RasterSignature>(
            ds.polygon(static_cast<size_t>(id)), 16);
      }
      return *slot;
    };
    long long hits = 0, decided = 0;
    for (const auto& [i, j] : candidates) {
      switch (filter::CompareRasterSignatures(sig(sa, a, i), sig(sb, b, j))) {
        case filter::RasterFilterDecision::kIntersect:
          // The filter proves region intersection, which for this
          // boundary-crossing count may be containment; fall through to the
          // exact test to keep the counts comparable.
          hits += algo::BoundariesIntersect(a.polygon(static_cast<size_t>(i)),
                                            b.polygon(static_cast<size_t>(j)));
          ++decided;
          break;
        case filter::RasterFilterDecision::kDisjoint:
          ++decided;
          break;
        case filter::RasterFilterDecision::kUnknown:
          hits += algo::BoundariesIntersect(a.polygon(static_cast<size_t>(i)),
                                            b.polygon(static_cast<size_t>(j)));
          break;
      }
    }
    const double ms = watch.ElapsedMillis();
    std::printf("%-26s %12.1f %10lld  (%lld pairs decided by filter)\n",
                "raster filter 16 + sweep", ms, hits, decided);
    report.Row("raster filter 16 + sweep",
               {{"compare_ms", ms},
                {"crossings", static_cast<double>(hits)},
                {"decided", static_cast<double>(decided)}});
  }
  return report.Finish();
}

}  // namespace
}  // namespace hasj::bench

int main(int argc, char** argv) { return hasj::bench::Main(argc, argv); }
