// Figure 16 reproduction: hardware vs software within-distance join cost
// as a function of the query distance D, 8x8 window, sw_threshold = 500.
// At large D the needed line width exceeds the hardware limit (10 px) and
// the test falls back to software, narrowing the margin.

#include <cstdio>
#include <string>

#include "bench/harness.h"
#include "core/distance_join.h"

namespace hasj::bench {
namespace {

void RunJoin(const data::Dataset& a, const data::Dataset& b,
             const char* pair, BenchReport& report) {
  PrintDataset(a);
  PrintDataset(b);
  const core::WithinDistanceJoin join(a, b);
  const double base_d = data::BaseDistance(a, b);
  std::printf("# BaseD=%.6g\n", base_d);
  std::printf("%-8s %12s %12s %8s %12s %12s\n", "D/BaseD", "sw_cmp_ms",
              "hw_cmp_ms", "vs_sw", "hw_rejects", "width_fb");
  for (double factor : {0.1, 0.5, 1.0, 2.0, 4.0}) {
    const double d = factor * base_d;
    core::DistanceJoinOptions sw_options;
    sw_options.use_hw = false;
    report.Wire(&sw_options.hw);
    const core::DistanceJoinResult sw = join.Run(d, sw_options);
    core::DistanceJoinOptions options;
    options.use_hw = true;
    options.hw.resolution = 8;
    options.hw.sw_threshold = 500;
    report.Wire(&options.hw);
    const core::DistanceJoinResult hw = join.Run(d, options);
    std::printf("%-8.1f %12.1f %12.1f %7.2fx %12lld %12lld\n", factor,
                sw.costs.compare_ms, hw.costs.compare_ms,
                sw.costs.compare_ms /
                    (hw.costs.compare_ms > 0 ? hw.costs.compare_ms : 1e-9),
                static_cast<long long>(hw.hw_counters.hw_rejects),
                static_cast<long long>(hw.hw_counters.width_fallbacks));
    char label[48];
    std::snprintf(label, sizeof(label), "%s D/BaseD=%.1f", pair, factor);
    report.Row(label,
               {{"sw_compare_ms", sw.costs.compare_ms},
                {"hw_compare_ms", hw.costs.compare_ms},
                {"hw_rejects", static_cast<double>(hw.hw_counters.hw_rejects)},
                {"width_fallbacks",
                 static_cast<double>(hw.hw_counters.width_fallbacks)}});
  }
}

int Main(int argc, char** argv) {
  const BenchArgs args = ParseArgs(argc, argv, 0.02);
  BenchReport report("fig16_distance_vs_d", args);
  PrintHeader(
      "Figure 16: hardware within-distance join vs query distance "
      "(8x8 window, sw_threshold=500)",
      args);
  std::printf("## LANDC join_dist LANDO\n");
  RunJoin(Generate(data::LandcProfile(args.scale), args),
          Generate(data::LandoProfile(args.scale), args), "LANDCxLANDO",
          report);
  std::printf("## WATER join_dist PRISM\n");
  RunJoin(Generate(data::WaterProfile(args.scale), args),
          Generate(data::PrismProfile(args.scale), args), "WATERxPRISM",
          report);
  std::printf(
      "# paper shape: improvement narrows with D (43%%->~0 for LANDC-LANDO,"
      " 83%%->74%% for WATER-PRISM) as wide lines cost more and width "
      "fallbacks kick in.\n");
  return report.Finish();
}

}  // namespace
}  // namespace hasj::bench

int main(int argc, char** argv) { return hasj::bench::Main(argc, argv); }
