// Ablation (DESIGN.md): software intersection-test variants on the same
// MBR-join candidate pairs — plane sweep vs brute force, with and without
// the restricted-search-space optimization. The paper credits restricted
// search with a 30-40% practical improvement.

#include <cstdio>

#include "bench/harness.h"
#include "common/stopwatch.h"
#include "core/join.h"

namespace hasj::bench {
namespace {

int Main(int argc, char** argv) {
  const BenchArgs args = ParseArgs(argc, argv, 0.02);
  BenchReport report("ablation_sweep", args);
  PrintHeader("Ablation: software intersection-test variants (WATER join "
              "PRISM candidates)",
              args);
  const data::Dataset a = Generate(data::WaterProfile(args.scale), args);
  const data::Dataset b = Generate(data::PrismProfile(args.scale), args);
  PrintDataset(a);
  PrintDataset(b);
  const auto candidates =
      index::JoinIntersects(a.BuildRTree(), b.BuildRTree());
  std::printf("# candidate pairs: %zu\n", candidates.size());

  struct Config {
    const char* name;
    bool sweep;
    bool restricted;
  };
  const Config configs[] = {
      {"sweep+restricted", true, true},
      {"sweep", true, false},
      {"brute+restricted", false, true},
      {"brute", false, false},
  };
  std::printf("%-18s %12s %10s %10s\n", "variant", "compare_ms", "vs_best",
              "results");
  double best = 0.0;
  for (const Config& config : configs) {
    algo::SoftwareIntersectOptions options;
    options.use_sweep = config.sweep;
    options.restricted_search = config.restricted;
    Stopwatch watch;
    long long results = 0;
    for (const auto& [ia, ib] : candidates) {
      results += algo::PolygonsIntersect(a.polygon(static_cast<size_t>(ia)),
                                         b.polygon(static_cast<size_t>(ib)),
                                         options);
    }
    const double ms = watch.ElapsedMillis();
    if (best == 0.0) best = ms;
    std::printf("%-18s %12.1f %9.2fx %10lld\n", config.name, ms, ms / best,
                results);
    report.Row(config.name, {{"compare_ms", ms},
                             {"results", static_cast<double>(results)}});
  }
  std::printf("# paper: restricted search buys ~30-40%% in practice.\n");
  return report.Finish();
}

}  // namespace
}  // namespace hasj::bench

int main(int argc, char** argv) { return hasj::bench::Main(argc, argv); }
