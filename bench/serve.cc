// Closed-loop driver for the snapshot-isolated QueryServer (DESIGN.md §16):
// client threads issue mixed selection / distance-selection / join traffic
// against a store that a concurrent writer mutates with a generated
// insert/delete stream, in two phases — steady (as many clients as
// workers, so nothing queues) and overload (2x the queue capacity plus
// workers, so the admission policy and the degradation ladder carry the
// load). Reports per-phase qps and accepted-latency p50/p90/p99, and
// enforces the overload contract as exit-code gates:
//
//   * the admission queue never exceeds its capacity (gauge-checked);
//   * steady load sheds nothing; overload sheds, and every shed fails
//     fast with kResourceExhausted;
//   * the ladder engages under overload (degraded admissions observed)
//     and accepted-query p99 stays within a bound scaled from the steady
//     phase — bounded degradation, not collapse;
//   * sampled oracle verification never observes a divergent verdict, and
//     the update writer applies its whole stream without error.
//
// --fault_rate wires the hardware fault injector into every query;
// --deadline_ms gives each query a budget (truncations are counted in the
// schema-3 --json accounting); --threads sets the worker count.
#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "bench/harness.h"
#include "common/status.h"
#include "common/stopwatch.h"
#include "core/server.h"
#include "core/snapshot_query.h"
#include "data/generator.h"
#include "data/versioned_dataset.h"
#include "geom/box.h"
#include "geom/polygon.h"
#include "obs/metrics.h"
#include "obs/names.h"

namespace hasj::bench {
namespace {

constexpr double kExtent = 400.0;
constexpr size_t kQueueCapacity = 16;
constexpr int64_t kWriterOps = 4000;
constexpr int kSteadyQueriesPerClient = 60;
constexpr int kOverloadQueriesPerClient = 30;
constexpr int64_t kVerifyEvery = 7;

struct PhaseStats {
  std::vector<double> accepted_ms;  // latency of queries that ran to OK
  int64_t shed = 0;
  int64_t truncated = 0;
  int64_t mismatched = 0;  // kInternal: server verdict diverged
  int64_t other_errors = 0;
  double wall_ms = 0.0;

  void Merge(const PhaseStats& o) {
    accepted_ms.insert(accepted_ms.end(), o.accepted_ms.begin(),
                       o.accepted_ms.end());
    shed += o.shed;
    truncated += o.truncated;
    mismatched += o.mismatched;
    other_errors += o.other_errors;
  }
};

double Percentile(std::vector<double>* values, double q) {
  if (values->empty()) return 0.0;
  std::sort(values->begin(), values->end());
  const size_t n = values->size();
  size_t idx = static_cast<size_t>(q * static_cast<double>(n));
  if (idx >= n) idx = n - 1;
  return (*values)[idx];
}

data::GeneratorProfile ObjectProfile(const BenchArgs& args) {
  data::GeneratorProfile profile;
  profile.name = "serve";
  profile.count = std::max<int64_t>(80, static_cast<int64_t>(4000 * args.scale));
  profile.mean_vertices = 12;
  profile.max_vertices = 48;
  profile.extent = geom::Box(0, 0, kExtent, kExtent);
  profile.seed = 91 ^ args.seed;
  return profile;
}

geom::Polygon Probe(double cx, double cy, double half) {
  return geom::Polygon({{cx - half, cy - half},
                        {cx + half, cy - half},
                        {cx + half, cy + half},
                        {cx - half, cy + half}});
}

// One closed-loop client: issues `queries` requests back to back. The mix
// rotates selection / distance-selection / join (the expensive self-join
// keeps the workers busy enough for overload to queue); odd clients submit
// at batch priority so both admission classes see traffic.
PhaseStats RunClient(core::QueryServer* server, const BenchArgs& args,
                     int client, int queries) {
  PhaseStats stats;
  stats.accepted_ms.reserve(static_cast<size_t>(queries));
  uint64_t rng = 0x9e3779b97f4a7c15ull ^ (static_cast<uint64_t>(client) << 32) ^
                 args.seed;
  for (int i = 0; i < queries; ++i) {
    rng = rng * 6364136223846793005ull + 1442695040888963407ull;
    const double cx = 20.0 + static_cast<double>((rng >> 16) % 360);
    const double cy = 20.0 + static_cast<double>((rng >> 40) % 360);
    core::QueryRequest request;
    switch (i % 4) {
      case 0:
      case 1:
        request.kind = core::QueryKind::kSelection;
        break;
      case 2:
        request.kind = core::QueryKind::kDistanceSelection;
        request.distance = 6.0;
        break;
      default:
        request.kind = core::QueryKind::kJoin;
        break;
    }
    request.query = Probe(cx, cy, 24.0);
    request.priority = (client % 2 == 0) ? core::QueryPriority::kInteractive
                                         : core::QueryPriority::kBatch;
    request.deadline_ms = args.deadline_ms;
    Stopwatch latency;
    const core::QueryResponse response = server->Execute(request);
    const double elapsed_ms = latency.ElapsedMillis();
    switch (response.status.code()) {
      case StatusCode::kOk:
        stats.accepted_ms.push_back(elapsed_ms);
        break;
      case StatusCode::kResourceExhausted:
        ++stats.shed;
        break;
      case StatusCode::kDeadlineExceeded:
        ++stats.truncated;
        break;
      case StatusCode::kInternal:
        ++stats.mismatched;
        break;
      default:
        ++stats.other_errors;
        break;
    }
  }
  return stats;
}

PhaseStats RunPhase(core::QueryServer* server, const BenchArgs& args,
                    int clients, int queries_per_client) {
  std::vector<PhaseStats> per_client(static_cast<size_t>(clients));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(clients));
  Stopwatch wall;
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      per_client[static_cast<size_t>(c)] =
          RunClient(server, args, c, queries_per_client);
    });
  }
  for (std::thread& t : threads) t.join();
  PhaseStats total;
  total.wall_ms = wall.ElapsedMillis();
  for (const PhaseStats& s : per_client) total.Merge(s);
  return total;
}

bool Gate(bool ok, const char* what) {
  std::printf("# GATE %-52s %s\n", what, ok ? "pass" : "FAIL");
  return ok;
}

int Run(int argc, char** argv) {
  BenchArgs args = ParseArgs(argc, argv, /*default_scale=*/0.02);
  BenchReport report("serve", args);
  PrintHeader("serve: closed-loop query server under update traffic", args);

  const data::GeneratorProfile profile = ObjectProfile(args);
  // Worst case every stream op is an insert (deletes that find nothing
  // live are emitted as inserts), so size the write-once slots for all of
  // them.
  const size_t capacity =
      static_cast<size_t>(profile.count) + static_cast<size_t>(kWriterOps);
  data::VersionedDataset store("serve", capacity);
  if (const Status s = store.SeedFrom(data::GenerateDataset(profile));
      !s.ok()) {
    std::fprintf(stderr, "seed: %s\n", s.message().c_str());
    return 1;
  }
  std::printf("# store N=%lld capacity=%zu\n",
              static_cast<long long>(profile.count), capacity);

  int workers = args.threads;
  if (workers == 0) {
    workers = std::max(1, static_cast<int>(std::thread::hardware_concurrency()));
  }
  obs::Registry server_metrics;
  core::ServerConfig config;
  config.num_workers = workers;
  config.queue_capacity = kQueueCapacity;
  config.verify_every = kVerifyEvery;
  config.metrics = &server_metrics;
  report.Wire(&config.options.hw);
  // The server owns per-query deadlines; the harness flag rides on each
  // request instead (RunClient).
  config.options.hw.deadline_ms = 0.0;
  core::QueryServer server(&store, config);
  if (const Status s = server.Start(); !s.ok()) {
    std::fprintf(stderr, "start: %s\n", s.message().c_str());
    return 1;
  }

  // Update traffic for the whole run: one writer applying a generated
  // insert/delete stream at full speed, snapshot-isolated from every query.
  std::atomic<bool> stop_writer{false};
  std::atomic<int64_t> writer_errors{0};
  std::atomic<int64_t> writer_ops{0};
  std::thread writer([&] {
    data::UpdateStreamProfile stream;
    stream.objects = profile;
    stream.operations = kWriterOps;
    stream.insert_fraction = 0.5;
    stream.seed = 7 ^ args.seed;
    std::unordered_map<int64_t, int64_t> key_to_id;
    for (const data::UpdateOp& op : data::GenerateUpdateStream(stream)) {
      if (stop_writer.load(std::memory_order_acquire)) break;
      if (!data::ApplyUpdateOp(op, &store, &key_to_id).ok()) {
        writer_errors.fetch_add(1, std::memory_order_acq_rel);
      }
      writer_ops.fetch_add(1, std::memory_order_acq_rel);
    }
  });

  struct Phase {
    const char* name;
    int clients;
    int queries_per_client;
  };
  const Phase phases[] = {
      {"steady", workers, kSteadyQueriesPerClient},
      {"overload",
       2 * (static_cast<int>(kQueueCapacity) + workers),
       kOverloadQueriesPerClient},
  };

  std::printf("# %-9s %7s %8s %9s %9s %9s %6s %6s\n", "phase", "clients",
              "qps", "p50_ms", "p90_ms", "p99_ms", "shed", "trunc");
  double steady_p99 = 0.0;
  double overload_p99 = 0.0;
  int64_t overload_shed = 0;
  int64_t shed_steady = 0;
  int64_t mismatches = 0;
  int64_t other_errors = 0;
  int64_t degraded_before_overload = 0;
  for (const Phase& phase : phases) {
    if (std::string(phase.name) == "overload") {
      const obs::MetricsSnapshot snap = server_metrics.Snapshot();
      degraded_before_overload = snap.counter(obs::kServerDegradedL1) +
                                 snap.counter(obs::kServerDegradedL2) +
                                 snap.counter(obs::kServerDegradedL3);
    }
    PhaseStats stats =
        RunPhase(&server, args, phase.clients, phase.queries_per_client);
    const int64_t total =
        static_cast<int64_t>(phase.clients) * phase.queries_per_client;
    const double qps = stats.wall_ms > 0.0
                           ? static_cast<double>(stats.accepted_ms.size()) /
                                 (stats.wall_ms / 1e3)
                           : 0.0;
    const double p50 = Percentile(&stats.accepted_ms, 0.50);
    const double p90 = Percentile(&stats.accepted_ms, 0.90);
    const double p99 = Percentile(&stats.accepted_ms, 0.99);
    std::printf("# %-9s %7d %8.0f %9.3f %9.3f %9.3f %6lld %6lld\n", phase.name,
                phase.clients, qps, p50, p90, p99,
                static_cast<long long>(stats.shed),
                static_cast<long long>(stats.truncated));
    // Only timing-suffixed metrics and schedule-independent counts go in
    // the series rows: bench_compare.py treats everything else as an
    // exact-match counter, and shed/degraded splits depend on thread
    // interleaving (the *totals* are deterministic).
    report.Row(phase.name,
               {{"wall_ms", stats.wall_ms},
                {"latency_p50_ms", p50},
                {"latency_p90_ms", p90},
                {"latency_p99_ms", p99},
                {"queries", static_cast<double>(total)},
                {"shed_frac", static_cast<double>(stats.shed) /
                                  static_cast<double>(total)},
                {"mismatches", static_cast<double>(stats.mismatched)}});
    for (size_t i = 0; i < stats.accepted_ms.size(); ++i) {
      report.NoteQuery(Status::Ok());
    }
    for (int64_t i = 0; i < stats.truncated; ++i) {
      report.NoteQuery(Status::DeadlineExceeded("query budget"));
    }
    mismatches += stats.mismatched;
    other_errors += stats.other_errors;
    if (std::string(phase.name) == "steady") {
      steady_p99 = p99;
      shed_steady = stats.shed;
    } else {
      overload_shed = stats.shed;
      overload_p99 = p99;
    }
  }

  stop_writer.store(true, std::memory_order_release);
  writer.join();
  server.Shutdown();

  const obs::MetricsSnapshot snap = server_metrics.Snapshot();
  const int64_t degraded_overload = snap.counter(obs::kServerDegradedL1) +
                                    snap.counter(obs::kServerDegradedL2) +
                                    snap.counter(obs::kServerDegradedL3) -
                                    degraded_before_overload;
  const double max_depth = snap.gauge(obs::kServerQueueDepthMax);
  std::printf("# writer ops=%lld errors=%lld | verified=%lld mismatch=%lld | "
              "max_queue_depth=%.0f degraded_overload=%lld\n",
              static_cast<long long>(writer_ops.load(std::memory_order_acquire)),
              static_cast<long long>(
                  writer_errors.load(std::memory_order_acquire)),
              static_cast<long long>(snap.counter(obs::kServerVerified)),
              static_cast<long long>(snap.counter(obs::kServerVerifyMismatch)),
              max_depth, static_cast<long long>(degraded_overload));

  // The accepted-latency bound under 2x saturation: queueing behind a full
  // admission queue, not collapse. Scaled from the steady phase with a
  // generous factor so shared-runner noise cannot flake the gate.
  const double p99_bound_ms =
      std::max(100.0, 8.0 * static_cast<double>(kQueueCapacity + 2) *
                          std::max(steady_p99, 0.05));

  bool ok = true;
  ok &= Gate(max_depth <= static_cast<double>(kQueueCapacity),
             "queue depth never exceeds capacity");
  ok &= Gate(shed_steady == 0, "steady phase sheds nothing");
  ok &= Gate(overload_shed > 0,
             "overload sheds fast with kResourceExhausted");
  ok &= Gate(degraded_overload > 0, "degradation ladder engages in overload");
  ok &= Gate(overload_p99 <= p99_bound_ms,
             "overload accepted p99 within bounded-degradation gate");
  ok &= Gate(snap.counter(obs::kServerVerifyMismatch) == 0 && mismatches == 0,
             "sampled oracle verification sees exact verdicts");
  ok &= Gate(writer_errors.load(std::memory_order_acquire) == 0,
             "update writer applies its stream cleanly");
  ok &= Gate(other_errors == 0, "no unexpected query statuses");
  std::printf("# overload p99=%.3f ms bound=%.3f ms\n", overload_p99,
              p99_bound_ms);

  const int report_code = report.Finish();
  return ok ? report_code : 1;
}

}  // namespace
}  // namespace hasj::bench

int main(int argc, char** argv) { return hasj::bench::Run(argc, argv); }
