#ifndef HASJ_BENCH_HARNESS_H_
#define HASJ_BENCH_HARNESS_H_

// Shared scaffolding for the paper-figure reproduction harnesses. Each
// fig*/table* binary regenerates one table or figure of the paper: it
// builds the synthetic stand-in datasets (scaled down by --scale to fit a
// single-core run), executes the paper's query pipeline, and prints the
// same series the figure plots. EXPERIMENTS.md interprets the output.
//
// Every harness binary additionally supports the observability flags
// (DESIGN.md §10):
//
//   --json=PATH    machine-readable report: the printed series, a full
//                  metrics-registry snapshot, and the run's query/truncated
//                  accounting (schema_version 3, validated by
//                  scripts/validate_bench_json.py);
//   --trace=PATH   Chrome trace_event file of the run — open it in
//                  chrome://tracing or https://ui.perfetto.dev;
//   --explain      print an EXPLAIN ANALYZE pipeline report after the run;
//   --pmu          sample hardware performance counters per pipeline stage
//                  (perf_event_open; prints [SKIPPED no-perf-events] when
//                  the kernel denies the syscall);
//   --query_log=PATH  write one JSONL record per query (DESIGN.md §15),
//                  sampled by --query_log_sample=F in [0, 1].
//
// Flag parsing is strict: unknown flags and numeric values with trailing
// garbage are usage errors (exit code 2), not silent defaults.

#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <initializer_list>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/fault.h"
#include "common/simd.h"
#include "common/status.h"
#include "core/hw_config.h"
#include "data/catalogs.h"
#include "data/dataset.h"
#include "data/generator.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/names.h"
#include "obs/perf_counters.h"
#include "obs/query_log.h"
#include "obs/report.h"
#include "obs/trace.h"

namespace hasj::bench {

struct BenchArgs {
  double scale = 0.02;     // fraction of the Table 2 object counts
  uint64_t seed = 0;       // extra seed offset for the generators (0 = default)
  int threads = 1;         // refinement workers (0 = hardware concurrency)
  std::string json_path;   // --json=PATH; empty = no JSON report
  std::string trace_path;  // --trace=PATH; empty = tracing disabled
  bool explain = false;    // --explain: EXPLAIN ANALYZE after the run
  // Robustness knobs (DESIGN.md §11): injected hardware-site fault
  // probability in [0, 1] (0 = no injector wired at all, the zero-cost
  // disabled path) and per-query deadline in milliseconds (0 = none).
  double fault_rate = 0.0;
  double deadline_ms = 0.0;
  // Raster-interval secondary filter (DESIGN.md §12): decide candidate
  // pairs from precomputed Hilbert-interval approximations before the
  // hardware testers see them.
  bool use_intervals = false;
  // Row-span kernel backend (DESIGN.md §14): auto (default), scalar, or
  // avx2. Parsed into simd_mode by TryParseArgs.
  std::string simd = "auto";
  common::SimdMode simd_mode = common::SimdMode::kAuto;
  // Observability (DESIGN.md §15): per-stage hardware PMU sampling and the
  // structured query log with its sampling rate.
  bool pmu = false;
  std::string query_log_path;      // --query_log=PATH; empty = disabled
  double query_log_sample = 1.0;   // fraction of queries logged, [0, 1]
};

// Checked replacements for atof/atoll: reject empty input, trailing
// garbage, and out-of-range values instead of silently returning 0.
inline bool ParseDouble(const char* text, double* out) {
  if (text == nullptr || *text == '\0') return false;
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(text, &end);
  if (end == text || *end != '\0' || errno == ERANGE) return false;
  *out = value;
  return true;
}

inline bool ParseInt64(const char* text, int64_t* out) {
  if (text == nullptr || *text == '\0') return false;
  errno = 0;
  char* end = nullptr;
  const long long value = std::strtoll(text, &end, 10);
  if (end == text || *end != '\0' || errno == ERANGE) return false;
  *out = value;
  return true;
}

// Parses argv into *args (which carries the per-bench defaults in). All
// flags live in one table so value flags share a single parse-and-validate
// path. Returns false with a diagnostic in *error on unknown flags,
// malformed or out-of-range values; *wants_help is set when --help was
// seen (parsing stops there).
inline bool TryParseArgs(int argc, char** argv, BenchArgs* args,
                         std::string* error, bool* wants_help) {
  struct Flag {
    const char* name;
    enum Kind { kDouble, kInt64, kString, kBool } kind;
    void* target;
  };
  int64_t seed = static_cast<int64_t>(args->seed);
  int64_t threads = args->threads;
  const Flag flags[] = {
      {"scale", Flag::kDouble, &args->scale},
      {"seed", Flag::kInt64, &seed},
      {"threads", Flag::kInt64, &threads},
      {"json", Flag::kString, &args->json_path},
      {"trace", Flag::kString, &args->trace_path},
      {"explain", Flag::kBool, &args->explain},
      {"fault_rate", Flag::kDouble, &args->fault_rate},
      {"deadline_ms", Flag::kDouble, &args->deadline_ms},
      {"use_intervals", Flag::kBool, &args->use_intervals},
      {"simd", Flag::kString, &args->simd},
      {"pmu", Flag::kBool, &args->pmu},
      {"query_log_sample", Flag::kDouble, &args->query_log_sample},
      {"query_log", Flag::kString, &args->query_log_path},
  };

  *wants_help = false;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--help") == 0) {
      *wants_help = true;
      return true;
    }
    bool matched = false;
    for (const Flag& flag : flags) {
      const size_t name_len = std::strlen(flag.name);
      if (std::strncmp(arg, "--", 2) != 0 ||
          std::strncmp(arg + 2, flag.name, name_len) != 0) {
        continue;
      }
      const char* rest = arg + 2 + name_len;
      if (flag.kind == Flag::kBool) {
        if (*rest != '\0') continue;
        *static_cast<bool*>(flag.target) = true;
      } else {
        if (*rest != '=') continue;
        const char* value = rest + 1;
        bool ok = false;
        switch (flag.kind) {
          case Flag::kDouble:
            ok = ParseDouble(value, static_cast<double*>(flag.target));
            break;
          case Flag::kInt64:
            ok = ParseInt64(value, static_cast<int64_t*>(flag.target));
            break;
          case Flag::kString:
            *static_cast<std::string*>(flag.target) = value;
            ok = *value != '\0';
            break;
          case Flag::kBool:
            break;
        }
        if (!ok) {
          *error = std::string("invalid value for --") + flag.name + ": '" +
                   value + "'";
          return false;
        }
      }
      matched = true;
      break;
    }
    if (!matched) {
      *error = std::string("unknown flag: '") + arg + "'";
      return false;
    }
  }

  if (args->scale <= 0.0 || args->scale > 1.0) {
    *error = "--scale must be in (0, 1]";
    return false;
  }
  if (seed < 0) {
    *error = "--seed must be >= 0";
    return false;
  }
  if (threads < 0 || threads > 4096) {
    *error = "--threads must be in [0, 4096]";
    return false;
  }
  if (args->fault_rate < 0.0 || args->fault_rate > 1.0) {
    *error = "--fault_rate must be in [0, 1]";
    return false;
  }
  if (args->deadline_ms < 0.0) {
    *error = "--deadline_ms must be >= 0";
    return false;
  }
  if (!common::ParseSimdMode(args->simd.c_str(), &args->simd_mode)) {
    *error = "--simd must be one of auto, scalar, avx2 (got '" + args->simd +
             "')";
    return false;
  }
  if (args->query_log_sample < 0.0 || args->query_log_sample > 1.0) {
    *error = "--query_log_sample must be in [0, 1]";
    return false;
  }
  args->seed = static_cast<uint64_t>(seed);
  args->threads = static_cast<int>(threads);
  return true;
}

inline void PrintUsage(const char* argv0, std::FILE* out) {
  std::fprintf(out,
               "usage: %s [--scale=F] [--seed=N] [--threads=N] [--json=PATH] "
               "[--trace=PATH] [--explain]\n"
               "  --scale=F    dataset scale in (0, 1] (fraction of the "
               "paper's Table 2 counts)\n"
               "  --seed=N     extra generator seed offset (default 0)\n"
               "  --threads=N  refinement worker threads "
               "(default 1 = serial, 0 = hardware concurrency)\n"
               "  --json=PATH  write a machine-readable JSON report "
               "(schema_version 3)\n"
               "  --trace=PATH write a Chrome trace_event JSON file "
               "(chrome://tracing, ui.perfetto.dev)\n"
               "  --explain    print an EXPLAIN ANALYZE pipeline report "
               "after the run\n"
               "  --fault_rate=F inject hardware faults with probability F "
               "in [0, 1] (default 0 = no injector)\n"
               "  --deadline_ms=F per-query deadline in milliseconds "
               "(default 0 = none)\n"
               "  --use_intervals enable the raster-interval secondary "
               "filter (DESIGN.md section 12)\n"
               "  --simd=MODE  row-span kernel backend: auto (default), "
               "scalar, avx2 (DESIGN.md section 14)\n"
               "  --pmu        sample hardware performance counters per "
               "pipeline stage (DESIGN.md section 15)\n"
               "  --query_log=PATH write one JSONL record per query "
               "(DESIGN.md section 15)\n"
               "  --query_log_sample=F fraction of queries logged, in "
               "[0, 1] (default 1)\n",
               argv0);
}

inline BenchArgs ParseArgs(int argc, char** argv, double default_scale) {
  BenchArgs args;
  args.scale = default_scale;
  std::string error;
  bool wants_help = false;
  if (!TryParseArgs(argc, argv, &args, &error, &wants_help)) {
    std::fprintf(stderr, "%s\n", error.c_str());
    PrintUsage(argv[0], stderr);
    std::exit(2);
  }
  if (wants_help) {
    PrintUsage(argv[0], stdout);
    std::exit(0);
  }
  return args;
}

// Per-run observability sinks and the --json / --trace / --explain
// emitters. A bench constructs one BenchReport, wires it into every
// HwConfig it runs (Wire), records the rows it prints (Row), and returns
// Finish() from main. When none of the flags were given every sink is
// null, so the instrumented code stays on its zero-cost disabled path.
class BenchReport {
 public:
  BenchReport(std::string bench_name, const BenchArgs& args)
      : bench_name_(std::move(bench_name)), args_(args) {
    if (trace() != nullptr) trace_.NameCurrentTrack("bench-main");
    if (args_.pmu) pmu_.emplace();
    if (!args_.query_log_path.empty()) {
      const Status s = query_log_.Open(args_.query_log_path);
      if (!s.ok()) {
        std::fprintf(stderr, "--query_log: %s\n", s.message().c_str());
        query_log_failed_ = true;
      }
    }
    if (args_.fault_rate > 0.0) {
      faults_.emplace(args_.seed);
      const FaultPlan plan = FaultPlan::Probability(args_.fault_rate);
      faults_->SetPlan(FaultSite::kFramebufferAlloc, plan);
      faults_->SetPlan(FaultSite::kRenderPass, plan);
      faults_->SetPlan(FaultSite::kScanReadback, plan);
      faults_->SetPlan(FaultSite::kBatchFill, plan);
      // Interval builds degrade per object at this site (DESIGN.md §12);
      // harmless for benches that never build intervals.
      faults_->SetPlan(FaultSite::kDatasetLoad, plan);
    }
  }

  // Metrics sink; null unless --json or --explain asked for a snapshot.
  obs::Registry* metrics() {
    return args_.json_path.empty() && !args_.explain ? nullptr : &registry_;
  }

  // Trace sink; null unless --trace was given.
  obs::TraceSession* trace() {
    return args_.trace_path.empty() ? nullptr : &trace_;
  }

  // Fault injector; null unless --fault_rate > 0 wired one up.
  FaultInjector* faults() {
    return faults_.has_value() ? &*faults_ : nullptr;
  }

  // PMU sampler; null unless --pmu was given.
  obs::PerfCounters* pmu() { return pmu_.has_value() ? &*pmu_ : nullptr; }

  // Query-log sink; null unless --query_log opened a file.
  obs::QueryLog* query_log() {
    return query_log_.open() ? &query_log_ : nullptr;
  }

  // Points config->metrics / config->trace / config->faults / config->pmu /
  // config->query_log at this report's sinks and applies --deadline_ms.
  void Wire(core::HwConfig* config) {
    config->metrics = metrics();
    config->trace = trace();
    config->faults = faults();
    config->pmu = pmu();
    config->query_log = query_log();
    config->query_log_sample = args_.query_log_sample;
    config->deadline_ms = args_.deadline_ms;
    config->use_intervals = args_.use_intervals;
    config->simd = args_.simd_mode;
  }

  // Notes one executed query's terminal status for the report's run
  // accounting (schema 3): kDeadlineExceeded means the query was truncated
  // by its budget/cancellation, so downstream tooling can tell a fast run
  // from a cut-short one. Benches that run whole pipelines rather than
  // individual queries may never call this; the counts then stay 0.
  void NoteQuery(const Status& status) {
    ++queries_;
    if (status.code() == StatusCode::kDeadlineExceeded) ++truncated_;
  }

  int64_t queries() const { return queries_; }
  int64_t truncated() const { return truncated_; }

  // Records one plotted row — the series label plus its numeric columns —
  // reproduced verbatim in the --json report's "series" array.
  void Row(std::string series,
           std::initializer_list<std::pair<const char*, double>> values) {
    SeriesRow row;
    row.series = std::move(series);
    for (const auto& [name, value] : values) row.values.emplace_back(name, value);
    rows_.push_back(std::move(row));
  }

  // Emits everything the flags asked for. Returns the process exit code:
  // 0, or 1 when an output file could not be written.
  [[nodiscard]] int Finish() {
    int exit_code = query_log_failed_ ? 1 : 0;
    if (query_log_.open()) {
      if (const Status s = query_log_.Close(); !s.ok()) {
        std::fprintf(stderr, "--query_log: %s\n", s.message().c_str());
        exit_code = 1;
      }
    }
    // Surface trace truncation in the snapshot (and thus --json/--explain):
    // a silently clipped trace reads as "covered everything" otherwise.
    if (metrics() != nullptr && trace() != nullptr &&
        trace_.dropped_events() > 0) {
      registry_.GetCounter(obs::kTraceDropped).Add(trace_.dropped_events());
    }
    if (args_.pmu && !pmu_->available()) {
      std::printf("# pmu: [SKIPPED no-perf-events] perf_event_open denied; "
                  "PMU deltas are zero\n");
    }
    if (args_.explain) {
      std::printf("%s", obs::RenderReport(registry_.Snapshot()).c_str());
    }
    if (!args_.json_path.empty()) {
      std::string json;
      WriteJson(&json);
      if (!WriteFile(args_.json_path, json)) exit_code = 1;
    }
    if (!args_.trace_path.empty()) {
      const Status status = trace_.WriteFile(args_.trace_path);
      if (!status.ok()) {
        std::fprintf(stderr, "--trace: %s\n", status.message().c_str());
        exit_code = 1;
      }
    }
    return exit_code;
  }

 private:
  struct SeriesRow {
    std::string series;
    std::vector<std::pair<std::string, double>> values;
  };

  void WriteJson(std::string* out) const {
    obs::JsonWriter w(out);
    w.BeginObject();
    w.Key("schema_version");
    w.Int(3);
    w.Key("bench_name");
    w.String(bench_name_);
    w.Key("scale");
    w.Double(args_.scale);
    w.Key("seed");
    w.Int(static_cast<int64_t>(args_.seed));
    w.Key("threads");
    w.Int(args_.threads);
    w.Key("fault_rate");
    w.Double(args_.fault_rate);
    w.Key("deadline_ms");
    w.Double(args_.deadline_ms);
    w.Key("simd");
    w.String(args_.simd);
    w.Key("use_intervals");
    w.Bool(args_.use_intervals);
    w.Key("pmu_requested");
    w.Bool(args_.pmu);
    w.Key("pmu_available");
    w.Bool(pmu_.has_value() && pmu_->available());
    w.Key("query_log_path");
    w.String(args_.query_log_path);
    w.Key("query_log_records");
    w.Int(query_log_.written());
    w.Key("query_log_dropped");
    w.Int(query_log_.dropped());
    w.Key("queries");
    w.Int(queries_);
    w.Key("truncated");
    w.Int(truncated_);
    w.Key("series");
    w.BeginArray();
    for (const SeriesRow& row : rows_) {
      w.BeginObject();
      w.Key("series");
      w.String(row.series);
      w.Key("metrics");
      w.BeginObject();
      for (const auto& [name, value] : row.values) {
        w.Key(name);
        w.Double(value);
      }
      w.EndObject();
      w.EndObject();
    }
    w.EndArray();
    const obs::MetricsSnapshot snap = registry_.Snapshot();
    w.Key("metrics");
    w.BeginObject();
    w.Key("counters");
    w.BeginObject();
    for (const auto& [name, value] : snap.counters) {
      w.Key(name);
      w.Int(value);
    }
    w.EndObject();
    w.Key("gauges");
    w.BeginObject();
    for (const auto& [name, value] : snap.gauges) {
      w.Key(name);
      w.Double(value);
    }
    w.EndObject();
    w.Key("histograms");
    w.BeginObject();
    for (const auto& [name, hist] : snap.histograms) {
      w.Key(name);
      w.BeginObject();
      w.Key("count");
      w.Int(hist.count);
      w.Key("sum");
      w.Int(hist.sum);
      w.Key("min");
      w.Int(hist.count > 0 ? hist.min : 0);
      w.Key("max");
      w.Int(hist.count > 0 ? hist.max : 0);
      w.Key("p50");
      w.Int(hist.P50());
      w.Key("p90");
      w.Int(hist.P90());
      w.Key("p99");
      w.Int(hist.P99());
      w.Key("buckets");
      w.BeginArray();
      for (const int64_t bucket : hist.buckets) w.Int(bucket);
      w.EndArray();
      w.EndObject();
    }
    w.EndObject();
    w.EndObject();
    w.EndObject();
    out->push_back('\n');
  }

  static bool WriteFile(const std::string& path, const std::string& contents) {
    std::FILE* file = std::fopen(path.c_str(), "wb");
    if (file == nullptr) {
      std::fprintf(stderr, "--json: cannot open '%s' for writing\n",
                   path.c_str());
      return false;
    }
    const size_t written =
        std::fwrite(contents.data(), 1, contents.size(), file);
    const bool closed = std::fclose(file) == 0;
    if (written != contents.size() || !closed) {
      std::fprintf(stderr, "--json: short write to '%s'\n", path.c_str());
      return false;
    }
    return true;
  }

  std::string bench_name_;
  BenchArgs args_;
  obs::Registry registry_;
  obs::TraceSession trace_;
  std::optional<obs::PerfCounters> pmu_;
  obs::QueryLog query_log_;
  bool query_log_failed_ = false;
  int64_t queries_ = 0;
  int64_t truncated_ = 0;
  std::optional<FaultInjector> faults_;
  std::vector<SeriesRow> rows_;
};

inline data::Dataset Generate(data::GeneratorProfile profile,
                              const BenchArgs& args) {
  if (args.seed != 0) profile.seed ^= args.seed;
  return data::GenerateDataset(profile);
}

inline void PrintHeader(const char* title, const BenchArgs& args) {
  std::printf("# %s\n", title);
  std::printf("# scale=%g seed=%llu (synthetic stand-ins for the paper's "
              "datasets; see DESIGN.md)\n",
              args.scale, static_cast<unsigned long long>(args.seed));
}

inline void PrintDataset(const data::Dataset& ds) {
  const data::DatasetStats s = ds.Stats();
  std::printf("# dataset %-9s N=%-6lld vertices min=%lld max=%lld avg=%.0f\n",
              ds.name().c_str(), static_cast<long long>(s.count),
              static_cast<long long>(s.min_vertices),
              static_cast<long long>(s.max_vertices), s.mean_vertices);
}

}  // namespace hasj::bench

#endif  // HASJ_BENCH_HARNESS_H_
