#ifndef HASJ_BENCH_HARNESS_H_
#define HASJ_BENCH_HARNESS_H_

// Shared scaffolding for the paper-figure reproduction harnesses. Each
// fig*/table* binary regenerates one table or figure of the paper: it
// builds the synthetic stand-in datasets (scaled down by --scale to fit a
// single-core run), executes the paper's query pipeline, and prints the
// same series the figure plots. EXPERIMENTS.md interprets the output.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "data/catalogs.h"
#include "data/dataset.h"
#include "data/generator.h"

namespace hasj::bench {

struct BenchArgs {
  double scale = 0.02;  // fraction of the Table 2 object counts
  uint64_t seed = 0;    // extra seed offset for the generators (0 = default)
  int threads = 1;      // refinement workers (0 = hardware concurrency)
};

inline BenchArgs ParseArgs(int argc, char** argv, double default_scale) {
  BenchArgs args;
  args.scale = default_scale;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--scale=", 8) == 0) {
      args.scale = std::atof(argv[i] + 8);
    } else if (std::strncmp(argv[i], "--seed=", 7) == 0) {
      args.seed = static_cast<uint64_t>(std::atoll(argv[i] + 7));
    } else if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      args.threads = std::atoi(argv[i] + 10);
    } else if (std::strcmp(argv[i], "--help") == 0) {
      std::printf("usage: %s [--scale=F] [--seed=N] [--threads=N]\n", argv[0]);
      std::printf("  --threads=N  refinement worker threads "
                  "(default 1 = serial, 0 = hardware concurrency)\n");
      std::exit(0);
    }
  }
  if (args.scale <= 0.0 || args.scale > 1.0) {
    std::fprintf(stderr, "--scale must be in (0, 1]\n");
    std::exit(1);
  }
  if (args.threads < 0) {
    std::fprintf(stderr, "--threads must be >= 0\n");
    std::exit(1);
  }
  return args;
}

inline data::Dataset Generate(data::GeneratorProfile profile,
                              const BenchArgs& args) {
  if (args.seed != 0) profile.seed ^= args.seed;
  return data::GenerateDataset(profile);
}

inline void PrintHeader(const char* title, const BenchArgs& args) {
  std::printf("# %s\n", title);
  std::printf("# scale=%g seed=%llu (synthetic stand-ins for the paper's "
              "datasets; see DESIGN.md)\n",
              args.scale, static_cast<unsigned long long>(args.seed));
}

inline void PrintDataset(const data::Dataset& ds) {
  const data::DatasetStats s = ds.Stats();
  std::printf("# dataset %-9s N=%-6lld vertices min=%lld max=%lld avg=%.0f\n",
              ds.name().c_str(), static_cast<long long>(s.count),
              static_cast<long long>(s.min_vertices),
              static_cast<long long>(s.max_vertices), s.mean_vertices);
}

}  // namespace hasj::bench

#endif  // HASJ_BENCH_HARNESS_H_
