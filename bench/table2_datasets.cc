// Table 2 reproduction: statistics of the five (synthetic stand-in)
// datasets. At --scale=1 the object counts match the paper exactly and the
// vertex-count distributions are calibrated to its min/max/avg columns.

#include <cstdio>

#include "bench/harness.h"

namespace hasj::bench {
namespace {

void Row(const data::Dataset& ds, BenchReport& report) {
  const data::DatasetStats s = ds.Stats();
  std::printf("%-10s %8lld %6lld %8lld %8.0f\n", ds.name().c_str(),
              static_cast<long long>(s.count),
              static_cast<long long>(s.min_vertices),
              static_cast<long long>(s.max_vertices), s.mean_vertices);
  report.Row(ds.name(), {{"count", static_cast<double>(s.count)},
                         {"min_vertices", static_cast<double>(s.min_vertices)},
                         {"max_vertices", static_cast<double>(s.max_vertices)},
                         {"mean_vertices", s.mean_vertices}});
}

int Main(int argc, char** argv) {
  const BenchArgs args = ParseArgs(argc, argv, 0.05);
  BenchReport report("table2_datasets", args);
  PrintHeader("Table 2: Statistics of Some Polygon Datasets", args);
  std::printf("%-10s %8s %6s %8s %8s\n", "Dataset", "N", "MinV", "MaxV",
              "AvgV");
  Row(Generate(data::LandcProfile(args.scale), args), report);
  Row(Generate(data::LandoProfile(args.scale), args), report);
  Row(Generate(data::States50Profile(args.scale), args), report);
  Row(Generate(data::PrismProfile(args.scale), args), report);
  Row(Generate(data::WaterProfile(args.scale), args), report);
  std::printf("# paper:   LANDC 14731/3/4397/192  LANDO 33860/3/8807/20\n");
  std::printf("# paper:   STATES50 31/4/10744/138 PRISM 6243/3/29556/68\n");
  std::printf("# paper:   WATER 21866/3/39360/91  (counts scale with "
              "--scale)\n");
  return report.Finish();
}

}  // namespace
}  // namespace hasj::bench

int main(int argc, char** argv) { return hasj::bench::Main(argc, argv); }
