// Figure 10 reproduction: intersection-selection cost breakdown (MBR
// filtering / interior filtering / geometry comparison) as a function of
// the interior filter's tiling level, software-only intersection test.
// Datasets: WATER and PRISM; query set: STATES50 (averaged per query).

#include <cstdio>
#include <string>

#include "bench/harness.h"
#include "core/selection.h"

namespace hasj::bench {
namespace {

void RunDataset(const data::Dataset& dataset, const data::Dataset& queries,
                BenchReport& report) {
  PrintDataset(dataset);
  const core::IntersectionSelection selection(dataset);
  std::printf("%-6s %10s %10s %10s %10s %8s %8s\n", "level", "mbr_ms",
              "filter_ms", "compare_ms", "total_ms", "flt_hits", "results");
  for (int level = 0; level <= 6; ++level) {
    core::StageCosts costs;
    core::StageCounts counts;
    for (const geom::Polygon& query : queries.polygons()) {
      core::SelectionOptions options;
      options.interior_tiling_level = level;
      report.Wire(&options.hw);
      const core::SelectionResult r = selection.Run(query, options);
      costs += r.costs;
      counts += r.counts;
    }
    const double n = static_cast<double>(queries.size());
    std::printf("%-6d %10.3f %10.3f %10.3f %10.3f %8.1f %8.1f\n", level,
                costs.mbr_ms / n, costs.filter_ms / n, costs.compare_ms / n,
                costs.total_ms() / n, counts.filter_hits / n,
                counts.results / n);
    report.Row(dataset.name() + " level=" + std::to_string(level),
               {{"mbr_ms", costs.mbr_ms / n},
                {"filter_ms", costs.filter_ms / n},
                {"compare_ms", costs.compare_ms / n},
                {"total_ms", costs.total_ms() / n},
                {"filter_hits", static_cast<double>(counts.filter_hits) / n},
                {"results", static_cast<double>(counts.results) / n}});
  }
}

int Main(int argc, char** argv) {
  const BenchArgs args = ParseArgs(argc, argv, 0.05);
  BenchReport report("fig10_selection_breakdown", args);
  PrintHeader(
      "Figure 10: selection cost breakdown vs interior-filter tiling level "
      "(software test, average per STATES50 query)",
      args);
  const data::Dataset queries = Generate(data::States50Profile(args.scale), args);
  RunDataset(Generate(data::WaterProfile(args.scale), args), queries, report);
  RunDataset(Generate(data::PrismProfile(args.scale), args), queries, report);
  std::printf(
      "# paper shape: MBR cost ~0; compare cost shrinks <10%% as level "
      "rises; filter overhead grows at high levels, lifting total cost.\n");
  return report.Finish();
}

}  // namespace
}  // namespace hasj::bench

int main(int argc, char** argv) { return hasj::bench::Main(argc, argv); }
