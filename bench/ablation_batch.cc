// Batched tile-atlas ablation (DESIGN.md §9): geometry-comparison cost of
// the per-pair hardware step vs the batched atlas execution, on the
// intersection join WATER ⋈ PRISM and the within-distance join at several
// batch sizes. Not a paper figure — the paper renders one tiny window per
// pair — but the batch renderer is decision-identical, so the only thing
// that may change is throughput. Every batched row verifies its result set
// and hardware-reject count against the per-pair run.

#include <cstdio>

#include "bench/harness.h"
#include "core/distance_join.h"
#include "core/join.h"

namespace hasj::bench {
namespace {

constexpr int kBatchSizes[] = {64, 256, 1024, 4096};

void SweepIntersection(const core::IntersectionJoin& join,
                       core::JoinOptions options) {
  options.use_hw = true;
  options.hw.use_batching = false;
  const core::JoinResult per_pair = join.Run(options);
  std::printf(
      "## intersection join, %dx%d window (candidates=%lld compared=%lld "
      "results=%lld hw_tests=%lld)\n",
      options.hw.resolution, options.hw.resolution,
      static_cast<long long>(per_pair.counts.candidates),
      static_cast<long long>(per_pair.counts.compared),
      static_cast<long long>(per_pair.counts.results),
      static_cast<long long>(per_pair.hw_counters.hw_tests));
  std::printf("%-10s %12s %10s %10s %12s %10s %10s %8s\n", "batch",
              "compare_ms", "speedup", "hw_ms", "hw_speedup", "fill_ms",
              "scan_ms", "match");
  std::printf("%-10s %12.1f %10s %10.1f %12s %10s %10s %8s\n", "per-pair",
              per_pair.costs.compare_ms, "1.00x", per_pair.hw_counters.hw_ms,
              "1.00x", "-", "-", "-");
  for (int batch_size : kBatchSizes) {
    options.hw.use_batching = true;
    options.hw.batch_size = batch_size;
    const core::JoinResult r = join.Run(options);
    const bool match =
        r.pairs == per_pair.pairs &&
        r.hw_counters.hw_rejects == per_pair.hw_counters.hw_rejects &&
        r.hw_counters.hw_tests == per_pair.hw_counters.hw_tests;
    std::printf("%-10d %12.1f %9.2fx %10.1f %11.2fx %10.1f %10.1f %8s\n",
                batch_size, r.costs.compare_ms,
                per_pair.costs.compare_ms /
                    (r.costs.compare_ms > 0 ? r.costs.compare_ms : 1e-9),
                r.hw_counters.hw_ms,
                per_pair.hw_counters.hw_ms /
                    (r.hw_counters.hw_ms > 0 ? r.hw_counters.hw_ms : 1e-9),
                r.hw_counters.batch.fill_ms, r.hw_counters.batch.scan_ms,
                match ? "ok" : "MISMATCH");
  }
}

void SweepDistance(const core::WithinDistanceJoin& join, double d,
                   core::DistanceJoinOptions options) {
  options.use_hw = true;
  options.hw.use_batching = false;
  const core::DistanceJoinResult per_pair = join.Run(d, options);
  std::printf(
      "## within-distance join d=%g, %dx%d window (candidates=%lld "
      "compared=%lld results=%lld hw_tests=%lld)\n",
      d, options.hw.resolution, options.hw.resolution,
      static_cast<long long>(per_pair.counts.candidates),
      static_cast<long long>(per_pair.counts.compared),
      static_cast<long long>(per_pair.counts.results),
      static_cast<long long>(per_pair.hw_counters.hw_tests));
  std::printf("%-10s %12s %10s %10s %12s %10s %10s %8s\n", "batch",
              "compare_ms", "speedup", "hw_ms", "hw_speedup", "fill_ms",
              "scan_ms", "match");
  std::printf("%-10s %12.1f %10s %10.1f %12s %10s %10s %8s\n", "per-pair",
              per_pair.costs.compare_ms, "1.00x", per_pair.hw_counters.hw_ms,
              "1.00x", "-", "-", "-");
  for (int batch_size : kBatchSizes) {
    options.hw.use_batching = true;
    options.hw.batch_size = batch_size;
    const core::DistanceJoinResult r = join.Run(d, options);
    const bool match =
        r.pairs == per_pair.pairs &&
        r.hw_counters.hw_rejects == per_pair.hw_counters.hw_rejects &&
        r.hw_counters.hw_tests == per_pair.hw_counters.hw_tests;
    std::printf("%-10d %12.1f %9.2fx %10.1f %11.2fx %10.1f %10.1f %8s\n",
                batch_size, r.costs.compare_ms,
                per_pair.costs.compare_ms /
                    (r.costs.compare_ms > 0 ? r.costs.compare_ms : 1e-9),
                r.hw_counters.hw_ms,
                per_pair.hw_counters.hw_ms /
                    (r.hw_counters.hw_ms > 0 ? r.hw_counters.hw_ms : 1e-9),
                r.hw_counters.batch.fill_ms, r.hw_counters.batch.scan_ms,
                match ? "ok" : "MISMATCH");
  }
}

int Main(int argc, char** argv) {
  const BenchArgs args = ParseArgs(argc, argv, 0.05);
  PrintHeader("Batched tile-atlas ablation: per-pair vs atlas hardware step",
              args);

  const data::Dataset water = Generate(data::WaterProfile(args.scale), args);
  const data::Dataset prism = Generate(data::PrismProfile(args.scale), args);
  PrintDataset(water);
  PrintDataset(prism);

  const core::IntersectionJoin join(water, prism);
  for (int resolution : {8, 16, 32}) {
    core::JoinOptions options;
    options.num_threads = args.threads;
    options.hw.resolution = resolution;
    SweepIntersection(join, options);
  }

  const core::WithinDistanceJoin distance_join(water, prism);
  core::DistanceJoinOptions distance_options;
  distance_options.num_threads = args.threads;
  distance_options.hw.resolution = 8;
  SweepDistance(distance_join, 0.01, distance_options);

  std::printf(
      "# expected shape: batched hw_speedup >= 1.3x at the 8x8 window (a "
      "packed tile is one machine word: row spans become single ORs/ANDs and "
      "the per-pair clear/setup disappears), shrinking as the window grows; "
      "compare_ms also includes Plan routing and the exact software confirm "
      "of survivors, which batching does not touch, so its speedup is "
      "diluted toward 1x; match must always be ok.\n");
  return 0;
}

}  // namespace
}  // namespace hasj::bench

int main(int argc, char** argv) { return hasj::bench::Main(argc, argv); }
