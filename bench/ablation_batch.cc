// Batched tile-atlas ablation (DESIGN.md §9): geometry-comparison cost of
// the per-pair hardware step vs the batched atlas execution, on the
// intersection join WATER ⋈ PRISM and the within-distance join at several
// batch sizes. Not a paper figure — the paper renders one tiny window per
// pair — but the batch renderer is decision-identical, so the only thing
// that may change is throughput. Every batched row verifies its result set
// and hardware-reject count against the per-pair run.

#include <cstdio>
#include <string>

#include "bench/harness.h"
#include "core/distance_join.h"
#include "core/join.h"

namespace hasj::bench {
namespace {

constexpr int kBatchSizes[] = {64, 256, 1024, 4096};

bool SweepIntersection(const core::IntersectionJoin& join,
                       core::JoinOptions options, BenchReport& report) {
  options.use_hw = true;
  options.hw.use_batching = false;
  report.Wire(&options.hw);
  const core::JoinResult per_pair = join.Run(options);
  const std::string prefix =
      "isect " + std::to_string(options.hw.resolution) + "x" +
      std::to_string(options.hw.resolution) + " ";
  std::printf(
      "## intersection join, %dx%d window (candidates=%lld compared=%lld "
      "results=%lld hw_tests=%lld)\n",
      options.hw.resolution, options.hw.resolution,
      static_cast<long long>(per_pair.counts.candidates),
      static_cast<long long>(per_pair.counts.compared),
      static_cast<long long>(per_pair.counts.results),
      static_cast<long long>(per_pair.hw_counters.hw_tests));
  std::printf("%-10s %12s %10s %10s %12s %10s %10s %8s\n", "batch",
              "compare_ms", "speedup", "hw_ms", "hw_speedup", "fill_ms",
              "scan_ms", "match");
  std::printf("%-10s %12.1f %10s %10.1f %12s %10s %10s %8s\n", "per-pair",
              per_pair.costs.compare_ms, "1.00x", per_pair.hw_counters.hw_ms,
              "1.00x", "-", "-", "-");
  report.Row(prefix + "per-pair",
             {{"compare_ms", per_pair.costs.compare_ms},
              {"hw_ms", per_pair.hw_counters.hw_ms}});
  bool all_match = true;
  for (int batch_size : kBatchSizes) {
    options.hw.use_batching = true;
    options.hw.batch_size = batch_size;
    const core::JoinResult r = join.Run(options);
    const bool match =
        r.pairs == per_pair.pairs &&
        r.hw_counters.hw_rejects == per_pair.hw_counters.hw_rejects &&
        r.hw_counters.hw_tests == per_pair.hw_counters.hw_tests;
    all_match = all_match && match;
    std::printf("%-10d %12.1f %9.2fx %10.1f %11.2fx %10.1f %10.1f %8s\n",
                batch_size, r.costs.compare_ms,
                per_pair.costs.compare_ms /
                    (r.costs.compare_ms > 0 ? r.costs.compare_ms : 1e-9),
                r.hw_counters.hw_ms,
                per_pair.hw_counters.hw_ms /
                    (r.hw_counters.hw_ms > 0 ? r.hw_counters.hw_ms : 1e-9),
                r.hw_counters.batch.fill_ms, r.hw_counters.batch.scan_ms,
                match ? "ok" : "MISMATCH");
    report.Row(prefix + "batch=" + std::to_string(batch_size),
               {{"compare_ms", r.costs.compare_ms},
                {"hw_ms", r.hw_counters.hw_ms},
                {"fill_ms", r.hw_counters.batch.fill_ms},
                {"scan_ms", r.hw_counters.batch.scan_ms},
                {"match", match ? 1.0 : 0.0}});
  }
  return all_match;
}

bool SweepDistance(const core::WithinDistanceJoin& join, double d,
                   core::DistanceJoinOptions options, BenchReport& report) {
  options.use_hw = true;
  options.hw.use_batching = false;
  report.Wire(&options.hw);
  const core::DistanceJoinResult per_pair = join.Run(d, options);
  const std::string prefix =
      "dist " + std::to_string(options.hw.resolution) + "x" +
      std::to_string(options.hw.resolution) + " ";
  std::printf(
      "## within-distance join d=%g, %dx%d window (candidates=%lld "
      "compared=%lld results=%lld hw_tests=%lld)\n",
      d, options.hw.resolution, options.hw.resolution,
      static_cast<long long>(per_pair.counts.candidates),
      static_cast<long long>(per_pair.counts.compared),
      static_cast<long long>(per_pair.counts.results),
      static_cast<long long>(per_pair.hw_counters.hw_tests));
  std::printf("%-10s %12s %10s %10s %12s %10s %10s %8s\n", "batch",
              "compare_ms", "speedup", "hw_ms", "hw_speedup", "fill_ms",
              "scan_ms", "match");
  std::printf("%-10s %12.1f %10s %10.1f %12s %10s %10s %8s\n", "per-pair",
              per_pair.costs.compare_ms, "1.00x", per_pair.hw_counters.hw_ms,
              "1.00x", "-", "-", "-");
  report.Row(prefix + "per-pair",
             {{"compare_ms", per_pair.costs.compare_ms},
              {"hw_ms", per_pair.hw_counters.hw_ms}});
  bool all_match = true;
  for (int batch_size : kBatchSizes) {
    options.hw.use_batching = true;
    options.hw.batch_size = batch_size;
    const core::DistanceJoinResult r = join.Run(d, options);
    const bool match =
        r.pairs == per_pair.pairs &&
        r.hw_counters.hw_rejects == per_pair.hw_counters.hw_rejects &&
        r.hw_counters.hw_tests == per_pair.hw_counters.hw_tests;
    all_match = all_match && match;
    std::printf("%-10d %12.1f %9.2fx %10.1f %11.2fx %10.1f %10.1f %8s\n",
                batch_size, r.costs.compare_ms,
                per_pair.costs.compare_ms /
                    (r.costs.compare_ms > 0 ? r.costs.compare_ms : 1e-9),
                r.hw_counters.hw_ms,
                per_pair.hw_counters.hw_ms /
                    (r.hw_counters.hw_ms > 0 ? r.hw_counters.hw_ms : 1e-9),
                r.hw_counters.batch.fill_ms, r.hw_counters.batch.scan_ms,
                match ? "ok" : "MISMATCH");
    report.Row(prefix + "batch=" + std::to_string(batch_size),
               {{"compare_ms", r.costs.compare_ms},
                {"hw_ms", r.hw_counters.hw_ms},
                {"fill_ms", r.hw_counters.batch.fill_ms},
                {"scan_ms", r.hw_counters.batch.scan_ms},
                {"match", match ? 1.0 : 0.0}});
  }
  return all_match;
}

int Main(int argc, char** argv) {
  const BenchArgs args = ParseArgs(argc, argv, 0.05);
  BenchReport report("ablation_batch", args);
  PrintHeader("Batched tile-atlas ablation: per-pair vs atlas hardware step",
              args);

  const data::Dataset water = Generate(data::WaterProfile(args.scale), args);
  const data::Dataset prism = Generate(data::PrismProfile(args.scale), args);
  PrintDataset(water);
  PrintDataset(prism);

  bool all_match = true;
  const core::IntersectionJoin join(water, prism);
  for (int resolution : {8, 16, 32}) {
    core::JoinOptions options;
    options.num_threads = args.threads;
    options.hw.resolution = resolution;
    all_match = SweepIntersection(join, options, report) && all_match;
  }

  const core::WithinDistanceJoin distance_join(water, prism);
  core::DistanceJoinOptions distance_options;
  distance_options.num_threads = args.threads;
  distance_options.hw.resolution = 8;
  all_match =
      SweepDistance(distance_join, 0.01, distance_options, report) &&
      all_match;

  std::printf(
      "# expected shape: batched hw_speedup >= 1.3x at the 8x8 window (a "
      "packed tile is one machine word: row spans become single ORs/ANDs and "
      "the per-pair clear/setup disappears), shrinking as the window grows; "
      "compare_ms also includes Plan routing and the exact software confirm "
      "of survivors, which batching does not touch, so its speedup is "
      "diluted toward 1x; match must always be ok.\n");
  const int finish = report.Finish();
  return all_match ? finish : 1;
}

}  // namespace
}  // namespace hasj::bench

int main(int argc, char** argv) { return hasj::bench::Main(argc, argv); }
