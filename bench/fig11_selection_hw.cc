// Figure 11 reproduction: geometry-comparison cost of intersection
// selection, software vs hardware-assisted test, as a function of the
// rendering window resolution (1x1 .. 32x32). Datasets WATER and PRISM,
// query set STATES50, sw_threshold = 0, no interior filter.

#include <cstdio>
#include <string>

#include "bench/harness.h"
#include "core/selection.h"

namespace hasj::bench {
namespace {

void RunDataset(const data::Dataset& dataset, const data::Dataset& queries,
                BenchReport& report) {
  PrintDataset(dataset);
  const core::IntersectionSelection selection(dataset);

  const auto run = [&](core::SelectionOptions options,
                       core::HwCounters* hw_out) {
    report.Wire(&options.hw);
    double compare_ms = 0.0;
    for (const geom::Polygon& query : queries.polygons()) {
      const core::SelectionResult r = selection.Run(query, options);
      compare_ms += r.costs.compare_ms;
      if (hw_out != nullptr) {
        hw_out->hw_tests += r.hw_counters.hw_tests;
        hw_out->hw_rejects += r.hw_counters.hw_rejects;
      }
    }
    return compare_ms / static_cast<double>(queries.size());
  };

  const double sw_ms = run(core::SelectionOptions{}, nullptr);
  std::printf("%-10s %12s %10s %12s\n", "config", "compare_ms", "vs_sw",
              "hw_rejects");
  std::printf("%-10s %12.3f %10s %12s\n", "software", sw_ms, "1.00x", "-");
  report.Row(dataset.name() + " software", {{"compare_ms", sw_ms}});
  for (int resolution : {1, 2, 4, 8, 16, 32}) {
    core::SelectionOptions options;
    options.use_hw = true;
    options.hw.resolution = resolution;
    options.hw.sw_threshold = 0;
    core::HwCounters counters;
    const double hw_ms = run(options, &counters);
    char label[32];
    std::snprintf(label, sizeof(label), "hw %dx%d", resolution, resolution);
    std::printf("%-10s %12.3f %9.2fx %12lld\n", label, hw_ms,
                sw_ms / (hw_ms > 0 ? hw_ms : 1e-9),
                static_cast<long long>(counters.hw_rejects));
    report.Row(dataset.name() + " " + label,
               {{"compare_ms", hw_ms},
                {"hw_tests", static_cast<double>(counters.hw_tests)},
                {"hw_rejects", static_cast<double>(counters.hw_rejects)}});
  }
}

int Main(int argc, char** argv) {
  const BenchArgs args = ParseArgs(argc, argv, 0.05);
  BenchReport report("fig11_selection_hw", args);
  PrintHeader(
      "Figure 11: selection geometry-comparison cost, software vs "
      "hardware-assisted (average per STATES50 query)",
      args);
  const data::Dataset queries = Generate(data::States50Profile(args.scale), args);
  RunDataset(Generate(data::WaterProfile(args.scale), args), queries, report);
  RunDataset(Generate(data::PrismProfile(args.scale), args), queries, report);
  std::printf(
      "# paper shape: cost falls then rises with resolution; 42-56%% "
      "(WATER) and 46-64%% (PRISM) reduction, best around 16x16.\n");
  return report.Finish();
}

}  // namespace
}  // namespace hasj::bench

int main(int argc, char** argv) { return hasj::bench::Main(argc, argv); }
