// Figure 14 reproduction: within-distance join cost with the software
// distance test (minDist with frontier chains, 0/1-Object filters) as the
// query distance D varies over {0.1, 0.5, 1, 2, 4} x BaseD (Equation 2).

#include <cstdio>
#include <string>

#include "bench/harness.h"
#include "core/distance_join.h"

namespace hasj::bench {
namespace {

void RunJoin(const data::Dataset& a, const data::Dataset& b,
             const char* pair, BenchReport& report) {
  PrintDataset(a);
  PrintDataset(b);
  const core::WithinDistanceJoin join(a, b);
  const double base_d = data::BaseDistance(a, b);
  std::printf("# BaseD=%.6g (Equation 2)\n", base_d);
  std::printf("%-8s %10s %10s %10s %10s %10s %9s %9s\n", "D/BaseD", "mbr_ms",
              "filter_ms", "cmp_ms", "total_ms", "cands", "flt_hits",
              "results");
  for (double factor : {0.1, 0.5, 1.0, 2.0, 4.0}) {
    core::DistanceJoinOptions options;
    report.Wire(&options.hw);
    const core::DistanceJoinResult r = join.Run(factor * base_d, options);
    std::printf("%-8.1f %10.2f %10.2f %10.1f %10.1f %10lld %9lld %9lld\n",
                factor, r.costs.mbr_ms, r.costs.filter_ms,
                r.costs.compare_ms, r.costs.total_ms(),
                static_cast<long long>(r.counts.candidates),
                static_cast<long long>(r.counts.filter_hits),
                static_cast<long long>(r.counts.results));
    char label[48];
    std::snprintf(label, sizeof(label), "%s D/BaseD=%.1f", pair, factor);
    report.Row(label,
               {{"mbr_ms", r.costs.mbr_ms},
                {"filter_ms", r.costs.filter_ms},
                {"compare_ms", r.costs.compare_ms},
                {"total_ms", r.costs.total_ms()},
                {"candidates", static_cast<double>(r.counts.candidates)},
                {"filter_hits", static_cast<double>(r.counts.filter_hits)},
                {"results", static_cast<double>(r.counts.results)}});
  }
}

int Main(int argc, char** argv) {
  const BenchArgs args = ParseArgs(argc, argv, 0.02);
  BenchReport report("fig14_distance_sw", args);
  PrintHeader(
      "Figure 14: within-distance join cost breakdown, software distance "
      "test, D swept over multiples of BaseD",
      args);
  std::printf("## LANDC join_dist LANDO\n");
  RunJoin(Generate(data::LandcProfile(args.scale), args),
          Generate(data::LandoProfile(args.scale), args), "LANDCxLANDO",
          report);
  std::printf("## WATER join_dist PRISM\n");
  RunJoin(Generate(data::WaterProfile(args.scale), args),
          Generate(data::PrismProfile(args.scale), args), "WATERxPRISM",
          report);
  std::printf(
      "# paper shape: costs grow with D; geometry comparison dominates "
      "despite aggressive 0/1-Object filtering.\n");
  return report.Finish();
}

}  // namespace
}  // namespace hasj::bench

int main(int argc, char** argv) { return hasj::bench::Main(argc, argv); }
