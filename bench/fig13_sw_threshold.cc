// Figure 13 reproduction: effect of the software threshold on the
// hardware-assisted intersection join LANDC ⋈ LANDO at 8x8 and 16x16
// window resolutions. Pairs with n+m <= threshold skip the hardware test.

#include <cstdio>
#include <string>

#include "bench/harness.h"
#include "core/join.h"

namespace hasj::bench {
namespace {

int Main(int argc, char** argv) {
  const BenchArgs args = ParseArgs(argc, argv, 0.02);
  BenchReport report("fig13_sw_threshold", args);
  PrintHeader(
      "Figure 13: sw_threshold sweep for the hardware-assisted "
      "LANDC join LANDO",
      args);
  const data::Dataset a = Generate(data::LandcProfile(args.scale), args);
  const data::Dataset b = Generate(data::LandoProfile(args.scale), args);
  PrintDataset(a);
  PrintDataset(b);
  const core::IntersectionJoin join(a, b);
  core::JoinOptions sw_options;
  sw_options.use_hw = false;
  report.Wire(&sw_options.hw);
  const core::JoinResult sw = join.Run(sw_options);
  std::printf("# software compare_ms=%.1f\n", sw.costs.compare_ms);
  report.Row("software", {{"compare_ms", sw.costs.compare_ms}});

  std::printf("%-10s %8s %12s %12s %14s\n", "res", "thresh", "compare_ms",
              "hw_tests", "thresh_skips");
  for (int resolution : {8, 16}) {
    for (int threshold : {0, 100, 200, 300, 500, 700, 900, 1200, 1600, 2000}) {
      core::JoinOptions options;
      options.use_hw = true;
      options.hw.resolution = resolution;
      options.hw.sw_threshold = threshold;
      report.Wire(&options.hw);
      const core::JoinResult r = join.Run(options);
      std::printf("%dx%-7d %8d %12.1f %12lld %14lld\n", resolution,
                  resolution, threshold, r.costs.compare_ms,
                  static_cast<long long>(r.hw_counters.hw_tests),
                  static_cast<long long>(r.hw_counters.sw_threshold_skips));
      report.Row(std::to_string(resolution) + "x" +
                     std::to_string(resolution) + " thresh=" +
                     std::to_string(threshold),
                 {{"compare_ms", r.costs.compare_ms},
                  {"hw_tests", static_cast<double>(r.hw_counters.hw_tests)},
                  {"thresh_skips",
                   static_cast<double>(r.hw_counters.sw_threshold_skips)}});
    }
  }
  std::printf(
      "# paper shape: cost dips to an optimum (~300 at 8x8, ~900 at 16x16) "
      "then drifts back toward the software curve; flat within ~12%% over "
      "a wide threshold range.\n");
  return report.Finish();
}

}  // namespace
}  // namespace hasj::bench

int main(int argc, char** argv) { return hasj::bench::Main(argc, argv); }
