// Figure 12 reproduction: geometry-comparison cost of the intersection
// joins LANDC ⋈ LANDO and WATER ⋈ PRISM, software vs hardware-assisted
// test across window resolutions, sw_threshold = 0.

#include <cstdio>
#include <string>

#include "bench/harness.h"
#include "core/join.h"

namespace hasj::bench {
namespace {

void RunJoin(const data::Dataset& a, const data::Dataset& b,
             const BenchArgs& args, const char* pair, BenchReport& report) {
  PrintDataset(a);
  PrintDataset(b);
  const core::IntersectionJoin join(a, b);

  core::JoinOptions sw_options;
  sw_options.use_hw = false;
  sw_options.num_threads = args.threads;
  report.Wire(&sw_options.hw);
  const core::JoinResult sw = join.Run(sw_options);
  std::printf("# candidates=%lld results=%lld\n",
              static_cast<long long>(sw.counts.candidates),
              static_cast<long long>(sw.counts.results));
  std::printf("%-10s %12s %10s %12s\n", "config", "compare_ms", "vs_sw",
              "hw_rejects");
  std::printf("%-10s %12.1f %10s %12s\n", "software", sw.costs.compare_ms,
              "1.00x", "-");
  report.Row(std::string(pair) + " software",
             {{"compare_ms", sw.costs.compare_ms},
              {"candidates", static_cast<double>(sw.counts.candidates)},
              {"results", static_cast<double>(sw.counts.results)}});
  for (int resolution : {1, 2, 4, 8, 16, 32}) {
    core::JoinOptions options;
    options.use_hw = true;
    options.hw.resolution = resolution;
    options.hw.sw_threshold = 0;
    options.num_threads = args.threads;
    report.Wire(&options.hw);
    const core::JoinResult r = join.Run(options);
    char label[32];
    std::snprintf(label, sizeof(label), "hw %dx%d", resolution, resolution);
    std::printf("%-10s %12.1f %9.2fx %12lld\n", label, r.costs.compare_ms,
                sw.costs.compare_ms /
                    (r.costs.compare_ms > 0 ? r.costs.compare_ms : 1e-9),
                static_cast<long long>(r.hw_counters.hw_rejects));
    report.Row(
        std::string(pair) + " " + label,
        {{"compare_ms", r.costs.compare_ms},
         {"hw_tests", static_cast<double>(r.hw_counters.hw_tests)},
         {"hw_rejects", static_cast<double>(r.hw_counters.hw_rejects)},
         {"results", static_cast<double>(r.counts.results)}});
  }
}

int Main(int argc, char** argv) {
  const BenchArgs args = ParseArgs(argc, argv, 0.02);
  BenchReport report("fig12_join_hw", args);
  PrintHeader(
      "Figure 12: intersection-join geometry-comparison cost, software vs "
      "hardware-assisted",
      args);
  std::printf("## LANDC join LANDO\n");
  RunJoin(Generate(data::LandcProfile(args.scale), args),
          Generate(data::LandoProfile(args.scale), args), args,
          "LANDCxLANDO", report);
  std::printf("## WATER join PRISM\n");
  RunJoin(Generate(data::WaterProfile(args.scale), args),
          Generate(data::PrismProfile(args.scale), args), args,
          "WATERxPRISM", report);
  std::printf(
      "# paper shape: 68-80%% reduction for WATER-PRISM; up to 38%% for "
      "LANDC-LANDO, which degrades below software at high resolutions.\n");
  return report.Finish();
}

}  // namespace
}  // namespace hasj::bench

int main(int argc, char** argv) { return hasj::bench::Main(argc, argv); }
