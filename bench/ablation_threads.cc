// Thread-scaling ablation: geometry-comparison cost of WATER ⋈ PRISM as
// the refinement-stage worker count grows. Not a paper figure — the paper
// assumes one off-screen rendering window — but the per-thread-tester
// executor (core/refinement_executor.h) gives each worker its own window,
// so compare_ms should scale near-linearly until the core count or the
// memory bus saturates. Results are verified identical across thread
// counts on every row.

#include <cstdio>
#include <string>
#include <thread>

#include "bench/harness.h"
#include "core/join.h"

namespace hasj::bench {
namespace {

void RunSweep(const core::IntersectionJoin& join, core::JoinOptions options,
              const char* label, const char* series, BenchReport& report) {
  report.Wire(&options.hw);
  options.num_threads = 1;
  const core::JoinResult serial = join.Run(options);
  std::printf("## %s (candidates=%lld compared=%lld results=%lld)\n", label,
              static_cast<long long>(serial.counts.candidates),
              static_cast<long long>(serial.counts.compared),
              static_cast<long long>(serial.counts.results));
  std::printf("%-8s %12s %10s %8s\n", "threads", "compare_ms", "speedup",
              "match");
  std::printf("%-8d %12.1f %10s %8s\n", 1, serial.costs.compare_ms, "1.00x",
              "-");
  report.Row(std::string(series) + " threads=1",
             {{"compare_ms", serial.costs.compare_ms},
              {"results", static_cast<double>(serial.counts.results)}});
  for (int threads : {2, 4, 8}) {
    options.num_threads = threads;
    const core::JoinResult r = join.Run(options);
    const bool match = r.pairs == serial.pairs &&
                       r.hw_counters.hw_rejects == serial.hw_counters.hw_rejects;
    std::printf("%-8d %12.1f %9.2fx %8s\n", threads, r.costs.compare_ms,
                serial.costs.compare_ms /
                    (r.costs.compare_ms > 0 ? r.costs.compare_ms : 1e-9),
                match ? "ok" : "MISMATCH");
    report.Row(std::string(series) + " threads=" + std::to_string(threads),
               {{"compare_ms", r.costs.compare_ms},
                {"match", match ? 1.0 : 0.0}});
  }
}

int Main(int argc, char** argv) {
  const BenchArgs args = ParseArgs(argc, argv, 0.02);
  BenchReport report("ablation_threads", args);
  PrintHeader("Thread-scaling ablation: parallel refinement executor", args);
  std::printf("# hardware_concurrency=%u\n",
              std::thread::hardware_concurrency());

  const data::Dataset water = Generate(data::WaterProfile(args.scale), args);
  const data::Dataset prism = Generate(data::PrismProfile(args.scale), args);
  PrintDataset(water);
  PrintDataset(prism);
  const core::IntersectionJoin join(water, prism);

  core::JoinOptions sw;
  sw.use_hw = false;
  RunSweep(join, sw, "software refinement", "sw", report);

  core::JoinOptions hw;
  hw.use_hw = true;
  hw.hw.resolution = 8;
  RunSweep(join, hw, "hardware-assisted refinement, 8x8 window", "hw", report);

  core::JoinOptions raster = hw;
  raster.raster_filter_grid = 16;
  RunSweep(join, raster,
           "hardware-assisted + raster filter (parallel signature build)",
           "hw+raster", report);

  std::printf(
      "# expected shape: near-linear compare_ms speedup up to the physical "
      "core count; flat on a single-core host.\n");
  return report.Finish();
}

}  // namespace
}  // namespace hasj::bench

int main(int argc, char** argv) { return hasj::bench::Main(argc, argv); }
