// Thread-scaling ablation: geometry-comparison cost of WATER ⋈ PRISM as
// the refinement-stage worker count grows. Not a paper figure — the paper
// assumes one off-screen rendering window — but the per-thread-tester
// executor (core/refinement_executor.h) gives each worker its own window,
// so compare_ms should scale near-linearly until the core count or the
// memory bus saturates. Results are verified identical across thread
// counts on every row.

#include <cstdio>
#include <thread>

#include "bench/harness.h"
#include "core/join.h"

namespace hasj::bench {
namespace {

void RunSweep(const core::IntersectionJoin& join, core::JoinOptions options,
              const char* label) {
  options.num_threads = 1;
  const core::JoinResult serial = join.Run(options);
  std::printf("## %s (candidates=%lld compared=%lld results=%lld)\n", label,
              static_cast<long long>(serial.counts.candidates),
              static_cast<long long>(serial.counts.compared),
              static_cast<long long>(serial.counts.results));
  std::printf("%-8s %12s %10s %8s\n", "threads", "compare_ms", "speedup",
              "match");
  std::printf("%-8d %12.1f %10s %8s\n", 1, serial.costs.compare_ms, "1.00x",
              "-");
  for (int threads : {2, 4, 8}) {
    options.num_threads = threads;
    const core::JoinResult r = join.Run(options);
    const bool match = r.pairs == serial.pairs &&
                       r.hw_counters.hw_rejects == serial.hw_counters.hw_rejects;
    std::printf("%-8d %12.1f %9.2fx %8s\n", threads, r.costs.compare_ms,
                serial.costs.compare_ms /
                    (r.costs.compare_ms > 0 ? r.costs.compare_ms : 1e-9),
                match ? "ok" : "MISMATCH");
  }
}

int Main(int argc, char** argv) {
  const BenchArgs args = ParseArgs(argc, argv, 0.02);
  PrintHeader("Thread-scaling ablation: parallel refinement executor", args);
  std::printf("# hardware_concurrency=%u\n",
              std::thread::hardware_concurrency());

  const data::Dataset water = Generate(data::WaterProfile(args.scale), args);
  const data::Dataset prism = Generate(data::PrismProfile(args.scale), args);
  PrintDataset(water);
  PrintDataset(prism);
  const core::IntersectionJoin join(water, prism);

  core::JoinOptions sw;
  sw.use_hw = false;
  RunSweep(join, sw, "software refinement");

  core::JoinOptions hw;
  hw.use_hw = true;
  hw.hw.resolution = 8;
  RunSweep(join, hw, "hardware-assisted refinement, 8x8 window");

  core::JoinOptions raster = hw;
  raster.raster_filter_grid = 16;
  RunSweep(join, raster,
           "hardware-assisted + raster filter (parallel signature build)");

  std::printf(
      "# expected shape: near-linear compare_ms speedup up to the physical "
      "core count; flat on a single-core host.\n");
  return 0;
}

}  // namespace
}  // namespace hasj::bench

int main(int argc, char** argv) { return hasj::bench::Main(argc, argv); }
