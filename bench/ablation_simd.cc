// Row-span kernel backend ablation (DESIGN.md §14): the scalar and AVX2
// backends are bit-identical by contract — same tile words, same span
// counts, same early-stop points — so --simd trades only throughput. This
// bench pins both halves of that claim:
//
//   - kernel-core throughput: fill/probe over a fixed corpus of row-span
//     buffers, packed (8x8 tile word) and row-aligned (64x64 word-per-row
//     tile) layouts, timed per backend on identical inputs. Gate (exit 1):
//     AVX2 core speedup >= 2x over scalar, at identical span/newly-set/hit
//     tallies (the equal-work check);
//   - verdict identity: the tessellation intersection join of
//     ablation_intervals run per backend — the pair sets must match.
//
// On hosts without AVX2 the speedup gate is skipped with a visible note
// and the bench degrades to a scalar-only run (exit 0): CI runners are not
// guaranteed the instruction set, local AVX2 runs are where the gate bites.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <random>
#include <string>
#include <utility>
#include <vector>

#include "bench/harness.h"
#include "common/stopwatch.h"
#include "core/join.h"
#include "glsim/rowspan.h"

namespace hasj::bench {
namespace {

// One fill+probe workload: span buffers from random anti-aliased segments
// over a res x res viewport (the exact footprints the hardware testers
// emit), plus a probe target pre-filled from every other buffer so probes
// see a realistic mix of hits and misses.
struct Corpus {
  int res = 0;
  std::vector<glsim::RowSpanBuffer> spans;
};

Corpus MakeCorpus(int res, int count, uint64_t seed) {
  Corpus corpus;
  corpus.res = res;
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> coord(-4.0, res + 4.0);
  corpus.spans.reserve(static_cast<size_t>(count));
  while (corpus.spans.size() < static_cast<size_t>(count)) {
    const geom::Point a{coord(rng), coord(rng)};
    const geom::Point b{coord(rng), coord(rng)};
    glsim::RowSpanBuffer buffer;
    if (glsim::ComputeLineAASpans(a, b, 1.5, res, res, &buffer)) {
      corpus.spans.push_back(buffer);
    }
  }
  return corpus;
}

// Tallies that must be identical across backends (the bit-identity
// contract observed at bench scale).
struct CoreTally {
  int64_t fill_spans = 0;
  int64_t newly_set = 0;
  int64_t probe_spans = 0;
  int64_t hits = 0;

  bool operator==(const CoreTally& other) const {
    return fill_spans == other.fill_spans && newly_set == other.newly_set &&
           probe_spans == other.probe_spans && hits == other.hits;
  }
};

struct CoreRun {
  double ms = 0.0;
  double mspans_per_s = 0.0;
  CoreTally tally;
};

// Times `iters` passes of fill-everything + probe-everything through one
// backend. Packed layout when res <= 8 (one word per 8x8 tile), otherwise
// the word-per-row layout (stride 1, res <= 64) — the two Atlas shapes the
// batch pipeline drives. Only kernel calls are inside the timed region;
// span construction is shared, backend-independent work.
CoreRun RunCore(const glsim::RowSpanEngine& engine, Corpus* corpus,
                int iters) {
  const int res = corpus->res;
  const bool packed = res <= 8;
  std::vector<uint64_t> grid(packed ? 1 : static_cast<size_t>(res), 0);
  // Probe target: every 16th buffer pre-filled — sparse coverage, so most
  // probes scan their full row range (the throughput-relevant shape; a
  // dense target would let the first-hit early stop hide the kernel).
  std::vector<uint64_t> target(grid.size(), 0);
  for (size_t i = 1; i < corpus->spans.size(); i += 16) {
    glsim::RowSpanBuffer* buffer = &corpus->spans[i];
    if (packed) {
      (void)engine.FillPacked(buffer, res, target.data());
    } else {
      (void)engine.FillRows(buffer, res, 1, target.data());
    }
  }

  CoreRun run;
  Stopwatch watch;
  for (int it = 0; it < iters; ++it) {
    std::fill(grid.begin(), grid.end(), 0);
    for (glsim::RowSpanBuffer& buffer : corpus->spans) {
      const glsim::FillResult fr =
          packed ? engine.FillPacked(&buffer, res, grid.data())
                 : engine.FillRows(&buffer, res, 1, grid.data());
      run.tally.fill_spans += fr.spans;
      run.tally.newly_set += fr.newly_set;
    }
    for (glsim::RowSpanBuffer& buffer : corpus->spans) {
      const glsim::ProbeResult pr =
          packed ? engine.ProbePacked(&buffer, res, target.data())
                 : engine.ProbeRows(&buffer, res, 1, target.data());
      run.tally.probe_spans += pr.spans;
      run.tally.hits += pr.hit_row >= 0 ? 1 : 0;
    }
  }
  run.ms = watch.ElapsedMillis();
  const double total_spans =
      static_cast<double>(run.tally.fill_spans + run.tally.probe_spans);
  run.mspans_per_s = total_spans / (run.ms > 0.0 ? run.ms : 1e-9) / 1e3;
  return run;
}

data::GeneratorProfile TessellationProfile(const char* name, int64_t count,
                                           uint64_t seed) {
  data::GeneratorProfile p;
  p.name = name;
  p.count = count;
  p.min_vertices = 8;
  p.max_vertices = 60;
  p.mean_vertices = 22;
  p.sigma = 0.5;
  p.extent = geom::Box(0, 0, 70, 70);
  p.coverage = 2.5;
  p.roughness = 0.1;
  p.seed = seed;
  return p;
}

std::vector<std::pair<int64_t, int64_t>> SortedPairs(
    const core::JoinResult& r) {
  std::vector<std::pair<int64_t, int64_t>> pairs = r.pairs;
  std::sort(pairs.begin(), pairs.end());
  return pairs;
}

int Main(int argc, char** argv) {
  const BenchArgs args = ParseArgs(argc, argv, 0.05);
  BenchReport report("ablation_simd", args);
  PrintHeader("Row-span kernel backend: scalar vs AVX2 at identical words",
              args);

  const bool has_avx2 =
      glsim::RowSpanEngine::Available(common::SimdMode::kAvx2);
  const glsim::RowSpanEngine& scalar =
      glsim::RowSpanEngine::Get(common::SimdMode::kScalar);
  const glsim::RowSpanEngine& resolved =
      glsim::RowSpanEngine::Get(common::SimdMode::kAuto);
  std::printf("# host: avx2=%s, auto resolves to %s\n",
              has_avx2 ? "yes" : "no", resolved.name());

  bool gates_ok = true;

  // --- kernel-core throughput --------------------------------------------
  std::printf("%-14s %10s %12s %12s %10s %8s\n", "layout", "backend", "ms",
              "Mspans/s", "speedup", "equal");
  // Iteration counts sized for >= 100 ms per scalar measurement — enough
  // to dominate timer noise on a single core without stretching CI. The
  // gate reads the row-aligned layout: that is the kernel the vector
  // design targets (4 rows per quad plus 256-bit word ops; DESIGN.md §14).
  // The packed 8x8 tile is reported alongside but not gated — a whole
  // tile is at most two quads, so call overhead bounds its speedup well
  // below the wide-layout ceiling.
  const struct {
    const char* name;
    int res;
    int count;
    int iters;
    bool gated;
  } layouts[] = {
      {"packed-8x8", 8, 256, 10000, false},
      {"rows-64x64", 64, 256, 2500, true},
  };
  double gated_speedup = 0.0;
  for (const auto& layout : layouts) {
    Corpus corpus = MakeCorpus(layout.res, layout.count, 977 + args.seed);
    const CoreRun base = RunCore(scalar, &corpus, layout.iters);
    std::printf("%-14s %10s %12.1f %12.1f %10s %8s\n", layout.name, "scalar",
                base.ms, base.mspans_per_s, "-", "-");
    report.Row(std::string(layout.name) + "/scalar",
               {{"ms", base.ms}, {"mspans_per_s", base.mspans_per_s}});
    if (!has_avx2) continue;
    const CoreRun simd =
        RunCore(glsim::RowSpanEngine::Get(common::SimdMode::kAvx2), &corpus,
                layout.iters);
    const bool equal = simd.tally == base.tally;
    const double speedup = base.ms / (simd.ms > 0.0 ? simd.ms : 1e-9);
    std::printf("%-14s %10s %12.1f %12.1f %9.2fx %8s\n", layout.name, "avx2",
                simd.ms, simd.mspans_per_s, speedup,
                equal ? "ok" : "MISMATCH");
    report.Row(std::string(layout.name) + "/avx2",
               {{"ms", simd.ms},
                {"mspans_per_s", simd.mspans_per_s},
                {"speedup", speedup},
                {"equal_tallies", equal ? 1.0 : 0.0}});
    if (!equal) {
      std::fprintf(stderr, "GATE: %s span/newly-set/hit tallies diverge "
                           "between backends\n", layout.name);
      gates_ok = false;
    }
    if (layout.gated) gated_speedup = speedup;
  }
  if (has_avx2 && gated_speedup < 2.0) {
    std::fprintf(stderr, "GATE: AVX2 rasterizer-core speedup %.2fx < 2x "
                         "over scalar on the row-aligned layout\n",
                 gated_speedup);
    gates_ok = false;
  }

  // --- verdict identity over the join pipeline ---------------------------
  const data::Dataset layer_a = Generate(
      TessellationProfile("landuse", 1200, 31).Scaled(args.scale), args);
  const data::Dataset layer_b = Generate(
      TessellationProfile("soil", 1000, 32).Scaled(args.scale), args);
  PrintDataset(layer_a);
  PrintDataset(layer_b);

  std::vector<common::SimdMode> modes = {common::SimdMode::kScalar};
  if (has_avx2) modes.push_back(common::SimdMode::kAvx2);
  std::vector<std::pair<int64_t, int64_t>> baseline_pairs;
  for (const common::SimdMode mode : modes) {
    core::JoinOptions options;
    options.use_hw = true;
    options.num_threads = args.threads;
    options.hw.use_batching = true;
    options.hw.resolution = 8;
    report.Wire(&options.hw);
    options.hw.simd = mode;
    const core::IntersectionJoin join(layer_a, layer_b);
    const core::JoinResult result = join.Run(options);
    if (!result.status.ok()) {
      std::fprintf(stderr, "join (--simd=%s) failed: %s\n",
                   common::SimdModeName(mode),
                   result.status.message().c_str());
      return 1;
    }
    bool match = true;
    if (mode == common::SimdMode::kScalar) {
      baseline_pairs = SortedPairs(result);
    } else {
      match = SortedPairs(result) == baseline_pairs;
    }
    std::printf("# join simd=%-6s pairs=%-6zu total_ms=%-8.1f match=%s\n",
                common::SimdModeName(mode), SortedPairs(result).size(),
                result.costs.mbr_ms + result.costs.filter_ms +
                    result.costs.compare_ms,
                match ? "ok" : "MISMATCH");
    report.Row(std::string("join/simd=") + common::SimdModeName(mode),
               {{"pairs", static_cast<double>(result.pairs.size())},
                {"total_ms", result.costs.mbr_ms + result.costs.filter_ms +
                                 result.costs.compare_ms},
                {"match", match ? 1.0 : 0.0}});
    if (!match) {
      std::fprintf(stderr, "GATE: join pair set diverges between scalar "
                           "and avx2 backends\n");
      gates_ok = false;
    }
  }

  if (!has_avx2) {
    std::printf("# [SKIPPED no-avx2] host CPU lacks AVX2: scalar-only run, "
                "speedup and identity gates not exercised\n");
  } else {
    std::printf("# expected shape: the row-aligned layout clears the 2x "
                "gate (the quad snap amortizes ceil/floor/clamp over 4 rows "
                "and replaces the per-row word loop with 256-bit or/andnot); "
                "the two-quad packed tile improves more modestly under call "
                "overhead; tallies and the join pair set stay bit-identical "
                "— the backend knob trades throughput, never decisions.\n");
  }
  const int finish = report.Finish();
  return gates_ok ? finish : 1;
}

}  // namespace
}  // namespace hasj::bench

int main(int argc, char** argv) { return hasj::bench::Main(argc, argv); }
