#include "geom/box.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"

namespace hasj::geom {
namespace {

TEST(BoxTest, EmptyBehaves) {
  Box e = Box::Empty();
  EXPECT_TRUE(e.IsEmpty());
  EXPECT_EQ(e.Area(), 0.0);
  EXPECT_FALSE(e.Contains(Point{0, 0}));
  EXPECT_FALSE(e.Intersects(Box(0, 0, 1, 1)));
}

TEST(BoxTest, ExtendFromEmpty) {
  Box b = Box::Empty();
  b.Extend(Point{2, 3});
  EXPECT_FALSE(b.IsEmpty());
  EXPECT_EQ(b.Width(), 0.0);
  EXPECT_TRUE(b.Contains(Point{2, 3}));
  b.Extend(Point{-1, 5});
  EXPECT_EQ(b, Box(-1, 3, 2, 5));
}

TEST(BoxTest, ExtendWithBoxIsUnion) {
  Box b(0, 0, 1, 1);
  b.Extend(Box(2, -1, 3, 0.5));
  EXPECT_EQ(b, Box(0, -1, 3, 1));
  b.Extend(Box::Empty());  // no-op
  EXPECT_EQ(b, Box(0, -1, 3, 1));
}

TEST(BoxTest, FromCornersAnyOrder) {
  EXPECT_EQ(Box::FromCorners({3, 1}, {0, 4}), Box(0, 1, 3, 4));
}

TEST(BoxTest, IntersectsIncludesTouching) {
  const Box a(0, 0, 1, 1);
  EXPECT_TRUE(a.Intersects(Box(1, 0, 2, 1)));   // shared edge
  EXPECT_TRUE(a.Intersects(Box(1, 1, 2, 2)));   // shared corner
  EXPECT_FALSE(a.Intersects(Box(1.01, 0, 2, 1)));
}

TEST(BoxTest, IntersectionGeometry) {
  const Box a(0, 0, 2, 2), b(1, 1, 3, 3);
  EXPECT_EQ(a.Intersection(b), Box(1, 1, 2, 2));
  EXPECT_TRUE(a.Intersection(Box(5, 5, 6, 6)).IsEmpty());
}

TEST(BoxTest, ContainsBox) {
  const Box a(0, 0, 4, 4);
  EXPECT_TRUE(a.Contains(Box(1, 1, 2, 2)));
  EXPECT_TRUE(a.Contains(a));
  EXPECT_FALSE(a.Contains(Box(1, 1, 5, 2)));
}

TEST(BoxTest, ExpandedShrinkAndGrow) {
  const Box a(0, 0, 4, 4);
  EXPECT_EQ(a.Expanded(1), Box(-1, -1, 5, 5));
  EXPECT_EQ(a.Expanded(-1), Box(1, 1, 3, 3));
  EXPECT_TRUE(a.Expanded(-3).IsEmpty());
}

TEST(BoxDistanceTest, MinDistanceCases) {
  const Box a(0, 0, 1, 1);
  EXPECT_EQ(MinDistance(a, Box(0.5, 0.5, 2, 2)), 0.0);   // overlap
  EXPECT_EQ(MinDistance(a, Box(1, 0, 2, 1)), 0.0);       // touch
  EXPECT_DOUBLE_EQ(MinDistance(a, Box(3, 0, 4, 1)), 2.0);  // lateral gap
  EXPECT_DOUBLE_EQ(MinDistance(a, Box(4, 5, 6, 7)),
                   std::hypot(3.0, 4.0));  // diagonal gap
}

TEST(BoxDistanceTest, PointToBox) {
  const Box a(0, 0, 2, 2);
  EXPECT_EQ(MinDistance(Point{1, 1}, a), 0.0);
  EXPECT_DOUBLE_EQ(MinDistance(Point{5, 1}, a), 3.0);
  EXPECT_DOUBLE_EQ(MinDistance(Point{-3, -4}, a), 5.0);
}

TEST(BoxDistanceTest, MaxDistanceIsCornerToCorner) {
  const Box a(0, 0, 1, 1), b(2, 2, 3, 3);
  EXPECT_DOUBLE_EQ(MaxDistance(a, b), std::hypot(3.0, 3.0));
  EXPECT_DOUBLE_EQ(MaxDistance(a, a), std::hypot(1.0, 1.0));
}

TEST(BoxDistanceTest, MinMaxBetweenMinAndMax) {
  Rng rng(5);
  for (int i = 0; i < 2000; ++i) {
    const Box a = Box::FromCorners({rng.Uniform(-10, 10), rng.Uniform(-10, 10)},
                                   {rng.Uniform(-10, 10), rng.Uniform(-10, 10)});
    const Box b = Box::FromCorners({rng.Uniform(-10, 10), rng.Uniform(-10, 10)},
                                   {rng.Uniform(-10, 10), rng.Uniform(-10, 10)});
    const double mm = MinMaxDistance(a, b);
    EXPECT_LE(MinDistance(a, b), mm + 1e-12);
    EXPECT_LE(mm, MaxDistance(a, b) + 1e-12);
  }
}

TEST(BoxDistanceTest, MinMaxIsValidUpperBoundForTouchingObjects) {
  // Two unit boxes side by side with gap g: any objects touching all four
  // sides of their MBRs are within MinMaxDistance; for aligned boxes the
  // bound equals the distance between facing sides' farthest points.
  const Box a(0, 0, 1, 1), b(3, 0, 4, 1);
  const double mm = MinMaxDistance(a, b);
  // Facing vertical sides x=1 and x=3: max distance between them is
  // hypot(2, 1) (opposite corners).
  EXPECT_DOUBLE_EQ(mm, std::hypot(2.0, 1.0));
}

}  // namespace
}  // namespace hasj::geom
