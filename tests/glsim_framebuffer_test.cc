#include "glsim/framebuffer.h"

#include <gtest/gtest.h>

#include <cmath>

namespace hasj::glsim {
namespace {

TEST(ColorBufferTest, ClearAndSet) {
  ColorBuffer fb(4, 3);
  EXPECT_EQ(fb.width(), 4);
  EXPECT_EQ(fb.height(), 3);
  EXPECT_EQ(fb.Get(2, 1), (Rgb{0, 0, 0}));
  fb.Set(2, 1, Rgb{0.5f, 0.25f, 1.0f});
  EXPECT_EQ(fb.Get(2, 1), (Rgb{0.5f, 0.25f, 1.0f}));
  fb.Clear(Rgb{1, 1, 1});
  EXPECT_EQ(fb.Get(2, 1), (Rgb{1, 1, 1}));
}

TEST(ColorBufferTest, ClampsOnWrite) {
  ColorBuffer fb(2, 2);
  fb.Set(0, 0, Rgb{1.5f, -0.25f, 0.5f});
  EXPECT_EQ(fb.Get(0, 0), (Rgb{1.0f, 0.0f, 0.5f}));
}

TEST(ColorBufferTest, MinMax) {
  ColorBuffer fb(3, 1);
  fb.Set(0, 0, Rgb{0.1f, 0.9f, 0.5f});
  fb.Set(1, 0, Rgb{0.7f, 0.2f, 0.5f});
  fb.Set(2, 0, Rgb{0.4f, 0.4f, 0.4f});
  const MinMax mm = fb.ComputeMinMax();
  EXPECT_FLOAT_EQ(mm.min.r, 0.1f);
  EXPECT_FLOAT_EQ(mm.max.r, 0.7f);
  EXPECT_FLOAT_EQ(mm.min.g, 0.2f);
  EXPECT_FLOAT_EQ(mm.max.g, 0.9f);
  EXPECT_FLOAT_EQ(mm.min.b, 0.4f);
  EXPECT_FLOAT_EQ(mm.max.b, 0.5f);
}

TEST(ColorBufferTest, AnyPixelAtLeast) {
  ColorBuffer fb(2, 2);
  EXPECT_FALSE(fb.AnyPixelAtLeast(0.5f));
  fb.Set(1, 1, Rgb{0.0f, 0.6f, 0.0f});
  EXPECT_TRUE(fb.AnyPixelAtLeast(0.5f));
  EXPECT_FALSE(fb.AnyPixelAtLeast(0.7f));
}

TEST(AccumBufferTest, LoadAccumReturnPipeline) {
  // The exact Algorithm 3.1 arithmetic: 0.5 + 0.5 accumulates to 1.0.
  ColorBuffer fb(2, 1);
  AccumBuffer accum(2, 1);
  fb.Set(0, 0, Rgb{0.5f, 0.5f, 0.5f});  // first boundary covers pixel 0
  accum.Load(fb, 1.0f);
  fb.Clear();
  fb.Set(0, 0, Rgb{0.5f, 0.5f, 0.5f});  // second boundary also covers it
  fb.Set(1, 0, Rgb{0.5f, 0.5f, 0.5f});  // and pixel 1 alone
  accum.Accum(fb, 1.0f);
  accum.Return(fb, 1.0f);
  EXPECT_EQ(fb.Get(0, 0), (Rgb{1.0f, 1.0f, 1.0f}));
  EXPECT_EQ(fb.Get(1, 0), (Rgb{0.5f, 0.5f, 0.5f}));
}

TEST(AccumBufferTest, ScalesByValue) {
  ColorBuffer fb(1, 1);
  AccumBuffer accum(1, 1);
  fb.Set(0, 0, Rgb{0.5f, 0.5f, 0.5f});
  accum.Load(fb, 0.5f);
  accum.Accum(fb, 0.5f);
  accum.Return(fb, 2.0f);
  EXPECT_EQ(fb.Get(0, 0), (Rgb{1.0f, 1.0f, 1.0f}));
}

TEST(AccumBufferTest, ReturnClampsOverflow) {
  ColorBuffer fb(1, 1);
  AccumBuffer accum(1, 1);
  fb.Set(0, 0, Rgb{1.0f, 1.0f, 1.0f});
  accum.Load(fb, 1.0f);
  accum.Accum(fb, 1.0f);
  accum.Accum(fb, 1.0f);  // accum = 3.0 (unclamped)
  accum.Return(fb, 1.0f);
  EXPECT_EQ(fb.Get(0, 0), (Rgb{1.0f, 1.0f, 1.0f}));
}

TEST(AccumBufferTest, ClearResets) {
  ColorBuffer fb(1, 1);
  AccumBuffer accum(1, 1);
  fb.Set(0, 0, Rgb{1, 1, 1});
  accum.Load(fb, 1.0f);
  accum.Clear();
  accum.Return(fb, 1.0f);
  EXPECT_EQ(fb.Get(0, 0), (Rgb{0, 0, 0}));
}

TEST(DepthBufferTest, LessTestKeepsNearest) {
  DepthBuffer depth(2, 2);
  EXPECT_TRUE(depth.TestAndSet(0, 0, 5.0f));   // empty: +inf
  EXPECT_FALSE(depth.TestAndSet(0, 0, 5.0f));  // GL_LESS: equal fails
  EXPECT_TRUE(depth.TestAndSet(0, 0, 4.0f));
  EXPECT_FALSE(depth.TestAndSet(0, 0, 4.5f));
  EXPECT_FLOAT_EQ(depth.Get(0, 0), 4.0f);
  EXPECT_TRUE(std::isinf(depth.Get(1, 1)));
}

TEST(DepthBufferTest, ClearResetsToInfinity) {
  DepthBuffer depth(2, 2);
  depth.TestAndSet(1, 0, 1.0f);
  depth.Clear();
  EXPECT_TRUE(std::isinf(depth.Get(1, 0)));
  EXPECT_TRUE(depth.TestAndSet(1, 0, 100.0f));
}

}  // namespace
}  // namespace hasj::glsim
