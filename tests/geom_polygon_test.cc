#include "geom/polygon.h"

#include <gtest/gtest.h>

#include <limits>

namespace hasj::geom {
namespace {

Polygon UnitSquare() {
  return Polygon({{0, 0}, {1, 0}, {1, 1}, {0, 1}});
}

TEST(PolygonTest, BoundsCached) {
  const Polygon p({{1, 2}, {5, 2}, {3, 7}});
  EXPECT_EQ(p.Bounds(), Box(1, 2, 5, 7));
}

TEST(PolygonTest, SignedAreaOrientation) {
  const Polygon ccw = UnitSquare();
  EXPECT_DOUBLE_EQ(ccw.SignedArea(), 1.0);
  EXPECT_TRUE(ccw.IsCcw());
  Polygon cw = ccw;
  cw.Reverse();
  EXPECT_DOUBLE_EQ(cw.SignedArea(), -1.0);
  EXPECT_FALSE(cw.IsCcw());
  EXPECT_DOUBLE_EQ(cw.Area(), 1.0);
}

TEST(PolygonTest, EdgeWrapsAround) {
  const Polygon p = UnitSquare();
  const Segment last = p.edge(3);
  EXPECT_EQ(last.a, (Point{0, 1}));
  EXPECT_EQ(last.b, (Point{0, 0}));
}

TEST(PolygonTest, ConcaveArea) {
  // L-shape: 3x3 square minus 2x2 notch = 5.
  const Polygon l({{0, 0}, {3, 0}, {3, 1}, {1, 1}, {1, 3}, {0, 3}});
  EXPECT_DOUBLE_EQ(l.Area(), 5.0);
}

TEST(PolygonValidateTest, AcceptsTriangle) {
  EXPECT_TRUE(Polygon({{0, 0}, {1, 0}, {0, 1}}).Validate().ok());
}

TEST(PolygonValidateTest, RejectsTooFewVertices) {
  EXPECT_FALSE(Polygon({{0, 0}, {1, 0}}).Validate().ok());
  EXPECT_FALSE(Polygon(std::vector<Point>{}).Validate().ok());
}

TEST(PolygonValidateTest, RejectsDuplicateConsecutive) {
  EXPECT_FALSE(Polygon({{0, 0}, {0, 0}, {1, 0}, {0, 1}}).Validate().ok());
  // Closing duplicate (last == first) is also consecutive via wraparound.
  EXPECT_FALSE(Polygon({{0, 0}, {1, 0}, {0, 1}, {0, 0}}).Validate().ok());
}

TEST(PolygonValidateTest, RejectsZeroArea) {
  EXPECT_FALSE(Polygon({{0, 0}, {1, 1}, {2, 2}}).Validate().ok());
}

TEST(PolygonValidateTest, RejectsNonFinite) {
  EXPECT_FALSE(
      Polygon({{0, 0}, {1, 0}, {0, std::numeric_limits<double>::infinity()}})
          .Validate()
          .ok());
}

}  // namespace
}  // namespace hasj::geom
