#include "index/dynamic_rtree.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <set>
#include <thread>
#include <utility>
#include <vector>

#include "common/random.h"
#include "common/status.h"

namespace hasj::index {
namespace {

using geom::Box;

std::vector<DynamicRTree::Entry> RandomEntries(hasj::Rng& rng, int n) {
  std::vector<DynamicRTree::Entry> entries;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Uniform(0, 100);
    const double y = rng.Uniform(0, 100);
    entries.push_back({Box(x, y, x + rng.Uniform(0, 5), y + rng.Uniform(0, 5)),
                       static_cast<int64_t>(i)});
  }
  return entries;
}

std::set<int64_t> LinearScanIntersects(
    const std::vector<DynamicRTree::Entry>& entries, const Box& window) {
  std::set<int64_t> out;
  for (const auto& e : entries) {
    if (e.box.Intersects(window)) out.insert(e.id);
  }
  return out;
}

using PairSet = std::set<std::pair<int64_t, int64_t>>;

std::set<int64_t> AsSet(const std::vector<int64_t>& ids) {
  return {ids.begin(), ids.end()};
}

TEST(DynamicRTreeTest, EmptyTree) {
  DynamicRTree tree;
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_EQ(tree.version(), 0u);
  DynamicRTree::Snapshot snap = tree.snapshot();
  EXPECT_EQ(snap.size(), 0u);
  EXPECT_TRUE(snap.QueryIntersects(Box(0, 0, 100, 100)).empty());
  EXPECT_TRUE(snap.CheckInvariants().ok());
}

TEST(DynamicRTreeTest, InsertRejectsEmptyBox) {
  DynamicRTree tree;
  const Status s = tree.Insert(Box::Empty(), 1);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(tree.version(), 0u);
}

TEST(DynamicRTreeTest, InsertQueryMatchesLinearScan) {
  hasj::Rng rng(17);
  const auto entries = RandomEntries(rng, 300);
  DynamicRTree tree(8);
  for (const auto& e : entries) {
    ASSERT_TRUE(tree.Insert(e.box, e.id).ok());
  }
  EXPECT_EQ(tree.size(), entries.size());
  EXPECT_EQ(tree.version(), entries.size());
  DynamicRTree::Snapshot snap = tree.snapshot();
  ASSERT_TRUE(snap.CheckInvariants().ok()) << snap.CheckInvariants().message();
  for (int q = 0; q < 50; ++q) {
    const double x = rng.Uniform(0, 100);
    const double y = rng.Uniform(0, 100);
    const Box window(x, y, x + rng.Uniform(0, 20), y + rng.Uniform(0, 20));
    EXPECT_EQ(AsSet(snap.QueryIntersects(window)),
              LinearScanIntersects(entries, window));
  }
}

TEST(DynamicRTreeTest, BulkLoadMatchesLinearScan) {
  hasj::Rng rng(23);
  const auto entries = RandomEntries(rng, 500);
  DynamicRTree tree;
  ASSERT_TRUE(tree.BulkLoad(entries).ok());
  EXPECT_EQ(tree.size(), entries.size());
  EXPECT_EQ(tree.version(), 1u);
  DynamicRTree::Snapshot snap = tree.snapshot();
  ASSERT_TRUE(snap.CheckInvariants().ok()) << snap.CheckInvariants().message();
  for (int q = 0; q < 50; ++q) {
    const double x = rng.Uniform(0, 100);
    const double y = rng.Uniform(0, 100);
    const Box window(x, y, x + rng.Uniform(0, 15), y + rng.Uniform(0, 15));
    EXPECT_EQ(AsSet(snap.QueryIntersects(window)),
              LinearScanIntersects(entries, window));
  }
  // A second bulk load into a non-empty tree is rejected.
  EXPECT_EQ(tree.BulkLoad(entries).code(), StatusCode::kInvalidArgument);
}

TEST(DynamicRTreeTest, DeleteRemovesExactEntry) {
  hasj::Rng rng(31);
  auto entries = RandomEntries(rng, 120);
  DynamicRTree tree(6);
  ASSERT_TRUE(tree.BulkLoad(entries).ok());

  // Delete half the entries in shuffled order, checking invariants and
  // query equivalence along the way.
  for (int round = 0; round < 60; ++round) {
    const size_t pick =
        static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(entries.size()) - 1));
    const DynamicRTree::Entry victim = entries[pick];
    entries.erase(entries.begin() + static_cast<ptrdiff_t>(pick));
    ASSERT_TRUE(tree.Delete(victim.box, victim.id).ok());
    // Deleting again must miss: the entry is gone.
    EXPECT_EQ(tree.Delete(victim.box, victim.id).code(),
              StatusCode::kNotFound);
    DynamicRTree::Snapshot snap = tree.snapshot();
    ASSERT_TRUE(snap.CheckInvariants().ok())
        << snap.CheckInvariants().message();
    EXPECT_EQ(snap.size(), entries.size());
    const Box window(20, 20, 70, 70);
    EXPECT_EQ(AsSet(snap.QueryIntersects(window)),
              LinearScanIntersects(entries, window));
  }
}

TEST(DynamicRTreeTest, DeleteToEmptyAndReinsert) {
  DynamicRTree tree;
  std::vector<DynamicRTree::Entry> entries;
  hasj::Rng rng(5);
  for (int i = 0; i < 40; ++i) {
    const double x = rng.Uniform(0, 50);
    const double y = rng.Uniform(0, 50);
    entries.push_back({Box(x, y, x + 1, y + 1), i});
    ASSERT_TRUE(tree.Insert(entries.back().box, entries.back().id).ok());
  }
  for (const auto& e : entries) {
    ASSERT_TRUE(tree.Delete(e.box, e.id).ok());
  }
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_TRUE(tree.snapshot().CheckInvariants().ok());
  ASSERT_TRUE(tree.Insert(Box(1, 1, 2, 2), 7).ok());
  EXPECT_EQ(tree.size(), 1u);
  EXPECT_EQ(AsSet(tree.snapshot().QueryIntersects(Box(0, 0, 3, 3))),
            (std::set<int64_t>{7}));
}

TEST(DynamicRTreeTest, DuplicateEntriesAreAMultiset) {
  DynamicRTree tree;
  const Box b(1, 1, 2, 2);
  ASSERT_TRUE(tree.Insert(b, 9).ok());
  ASSERT_TRUE(tree.Insert(b, 9).ok());
  EXPECT_EQ(tree.size(), 2u);
  ASSERT_TRUE(tree.Delete(b, 9).ok());
  EXPECT_EQ(tree.size(), 1u);
  ASSERT_TRUE(tree.Delete(b, 9).ok());
  EXPECT_EQ(tree.Delete(b, 9).code(), StatusCode::kNotFound);
}

TEST(DynamicRTreeTest, SnapshotsAreIsolatedFromLaterWrites) {
  DynamicRTree tree;
  ASSERT_TRUE(tree.Insert(Box(0, 0, 1, 1), 1).ok());
  DynamicRTree::Snapshot before = tree.snapshot();
  ASSERT_TRUE(tree.Insert(Box(10, 10, 11, 11), 2).ok());
  ASSERT_TRUE(tree.Delete(Box(0, 0, 1, 1), 1).ok());

  // The pinned version still sees exactly the state at pin time.
  EXPECT_EQ(before.size(), 1u);
  EXPECT_EQ(AsSet(before.QueryIntersects(Box(-1, -1, 20, 20))),
            (std::set<int64_t>{1}));
  EXPECT_TRUE(before.CheckInvariants().ok());

  DynamicRTree::Snapshot after = tree.snapshot();
  EXPECT_EQ(after.size(), 1u);
  EXPECT_EQ(AsSet(after.QueryIntersects(Box(-1, -1, 20, 20))),
            (std::set<int64_t>{2}));
  EXPECT_GT(after.version(), before.version());
}

TEST(DynamicRTreeTest, RetiredVersionsReclaimWhenUnpinned) {
  DynamicRTree tree;
  ASSERT_TRUE(tree.Insert(Box(0, 0, 1, 1), 0).ok());
  {
    DynamicRTree::Snapshot pinned = tree.snapshot();
    for (int i = 1; i <= 8; ++i) {
      const double x = static_cast<double>(i);
      ASSERT_TRUE(tree.Insert(Box(x, x, x + 1, x + 1), i).ok());
    }
    // The pin holds every version since the pinned one in limbo.
    EXPECT_EQ(tree.limbo_versions(), 8);
    EXPECT_EQ(pinned.size(), 1u);
  }
  // Dropping the last pin releases the parked versions; later writes
  // with no pins outstanding reclaim their predecessor immediately.
  EXPECT_EQ(tree.limbo_versions(), 0);
  ASSERT_TRUE(tree.Insert(Box(50, 50, 51, 51), 99).ok());
  EXPECT_EQ(tree.limbo_versions(), 0);
  EXPECT_EQ(tree.retired_versions(), tree.reclaimed_versions());
}

TEST(DynamicRTreeTest, CopiedSnapshotsShareOnePin) {
  DynamicRTree tree;
  ASSERT_TRUE(tree.Insert(Box(0, 0, 1, 1), 0).ok());
  DynamicRTree::Snapshot a = tree.snapshot();
  DynamicRTree::Snapshot b = a;
  ASSERT_TRUE(tree.Insert(Box(2, 2, 3, 3), 1).ok());
  EXPECT_EQ(tree.limbo_versions(), 1);
  a = DynamicRTree::Snapshot();
  EXPECT_EQ(tree.limbo_versions(), 1);  // b still pins the old version
  EXPECT_EQ(b.size(), 1u);
  b = DynamicRTree::Snapshot();
  EXPECT_EQ(tree.limbo_versions(), 0);
}

TEST(DynamicRTreeTest, JoinIntersectsMatchesBruteForce) {
  hasj::Rng rng(41);
  const auto ea = RandomEntries(rng, 80);
  const auto eb = RandomEntries(rng, 90);
  DynamicRTree ta(8), tb(8);
  ASSERT_TRUE(ta.BulkLoad(ea).ok());
  ASSERT_TRUE(tb.BulkLoad(eb).ok());

  PairSet expected;
  for (const auto& a : ea) {
    for (const auto& b : eb) {
      if (a.box.Intersects(b.box)) expected.insert({a.id, b.id});
    }
  }
  const auto pairs = JoinIntersects(ta.snapshot(), tb.snapshot());
  EXPECT_EQ(PairSet(pairs.begin(), pairs.end()), expected);
}

TEST(DynamicRTreeTest, JoinWithinDistanceMatchesBruteForce) {
  hasj::Rng rng(43);
  const auto ea = RandomEntries(rng, 60);
  const auto eb = RandomEntries(rng, 60);
  DynamicRTree ta, tb;
  ASSERT_TRUE(ta.BulkLoad(ea).ok());
  ASSERT_TRUE(tb.BulkLoad(eb).ok());
  const double d = 3.0;

  PairSet expected;
  for (const auto& a : ea) {
    for (const auto& b : eb) {
      if (geom::MinDistance(a.box, b.box) <= d) expected.insert({a.id, b.id});
    }
  }
  const auto pairs = JoinWithinDistance(ta.snapshot(), tb.snapshot(), d);
  EXPECT_EQ(PairSet(pairs.begin(), pairs.end()), expected);
}

TEST(DynamicRTreeTest, SelfJoinAcrossVersions) {
  DynamicRTree tree;
  ASSERT_TRUE(tree.Insert(Box(0, 0, 2, 2), 1).ok());
  DynamicRTree::Snapshot old = tree.snapshot();
  ASSERT_TRUE(tree.Insert(Box(1, 1, 3, 3), 2).ok());
  const auto pairs = JoinIntersects(old, tree.snapshot());
  // Old version has {1}; new has {1, 2}; both overlap entry 1's box.
  EXPECT_EQ(PairSet(pairs.begin(), pairs.end()), (PairSet{{1, 1}, {1, 2}}));
}

// Concurrency smoke: one writer churning inserts/deletes while readers
// pin snapshots and check structural invariants. Under TSan this covers
// the publish/pin/unpin protocol; verdict-level oracle checks live in the
// chaos suite.
TEST(DynamicRTreeTest, ConcurrentReadersSeeConsistentVersions) {
  DynamicRTree tree(8);
  hasj::Rng seed_rng(57);
  const auto seed = RandomEntries(seed_rng, 100);
  ASSERT_TRUE(tree.BulkLoad(seed).ok());

  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::thread writer([&] {
    hasj::Rng rng(91);
    std::vector<DynamicRTree::Entry> live = seed;
    for (int i = 0; i < 400; ++i) {
      if (!live.empty() && rng.Bernoulli(0.45)) {
        const size_t pick = static_cast<size_t>(
            rng.UniformInt(0, static_cast<int64_t>(live.size()) - 1));
        if (!tree.Delete(live[pick].box, live[pick].id).ok()) {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
        live.erase(live.begin() + static_cast<ptrdiff_t>(pick));
      } else {
        const double x = rng.Uniform(0, 100);
        const double y = rng.Uniform(0, 100);
        const DynamicRTree::Entry e{Box(x, y, x + 2, y + 2), 1000 + i};
        if (!tree.Insert(e.box, e.id).ok()) {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
        live.push_back(e);
      }
    }
    stop.store(true, std::memory_order_release);
  });

  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        DynamicRTree::Snapshot snap = tree.snapshot();
        if (!snap.CheckInvariants().ok()) {
          failures.fetch_add(1, std::memory_order_relaxed);
          return;
        }
        const size_t hits = snap.QueryIntersects(Box(10, 10, 60, 60)).size();
        if (hits > snap.size()) {
          failures.fetch_add(1, std::memory_order_relaxed);
          return;
        }
      }
    });
  }
  writer.join();
  for (auto& r : readers) r.join();
  EXPECT_EQ(failures.load(std::memory_order_relaxed), 0);
  EXPECT_EQ(tree.limbo_versions(), 0);
  EXPECT_TRUE(tree.snapshot().CheckInvariants().ok());
}

}  // namespace
}  // namespace hasj::index
