#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/thread_pool.h"

namespace hasj::obs {
namespace {

TEST(HistogramBucketsTest, PowerOfTwoBoundaries) {
  // Bucket 0 holds everything <= 0; bucket b >= 1 holds [2^(b-1), 2^b - 1].
  EXPECT_EQ(Histogram::BucketOf(-100), 0);
  EXPECT_EQ(Histogram::BucketOf(-1), 0);
  EXPECT_EQ(Histogram::BucketOf(0), 0);
  EXPECT_EQ(Histogram::BucketOf(1), 1);
  EXPECT_EQ(Histogram::BucketOf(2), 2);
  EXPECT_EQ(Histogram::BucketOf(3), 2);
  EXPECT_EQ(Histogram::BucketOf(4), 3);
  EXPECT_EQ(Histogram::BucketOf(7), 3);
  EXPECT_EQ(Histogram::BucketOf(8), 4);
  EXPECT_EQ(Histogram::BucketOf(1023), 10);
  EXPECT_EQ(Histogram::BucketOf(1024), 11);
  EXPECT_EQ(Histogram::BucketOf(INT64_MAX), kHistogramBuckets - 1);
}

TEST(HistogramBucketsTest, LowerBoundsMatchBucketOf) {
  for (int b = 1; b < kHistogramBuckets; ++b) {
    const int64_t lo = Histogram::BucketLowerBound(b);
    EXPECT_EQ(Histogram::BucketOf(lo), b) << "bucket " << b;
    EXPECT_EQ(Histogram::BucketOf(lo - 1), b - 1) << "bucket " << b;
  }
  EXPECT_EQ(Histogram::BucketLowerBound(0), INT64_MIN);
}

TEST(HistogramTest, SnapshotTotals) {
  Histogram h;
  for (const int64_t v : {0, 1, 1, 3, 100}) h.Record(v);
  const HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.count, 5);
  EXPECT_EQ(s.sum, 105);
  EXPECT_EQ(s.min, 0);
  EXPECT_EQ(s.max, 100);
  EXPECT_DOUBLE_EQ(s.Mean(), 21.0);
  EXPECT_EQ(s.buckets[0], 1);  // the 0
  EXPECT_EQ(s.buckets[1], 2);  // the two 1s
  EXPECT_EQ(s.buckets[2], 1);  // the 3
  EXPECT_EQ(s.buckets[7], 1);  // 100 in [64, 127]
}

TEST(CounterTest, SumsAcrossThreads) {
  // The sharded counter must report exact totals at any thread count.
  for (const int threads : {1, 2, 4, 8}) {
    Counter counter;
    ThreadPool pool(threads);
    ASSERT_TRUE(pool.ParallelFor(10000, 64,
                                 [&](int64_t begin, int64_t end, int) {
                                   for (int64_t i = begin; i < end; ++i) {
                                     counter.Add(i % 3);
                                   }
                                 })
                    .ok());
    int64_t want = 0;
    for (int64_t i = 0; i < 10000; ++i) want += i % 3;
    EXPECT_EQ(counter.Sum(), want) << threads << " threads";
  }
}

TEST(HistogramTest, MergeIdentityOneVsManyThreads) {
  // Recording the same multiset of samples must yield bit-identical
  // snapshots whether one thread or eight recorded them.
  const auto record_all = [](Histogram* h, int threads) {
    ThreadPool pool(threads);
    ASSERT_TRUE(pool.ParallelFor(5000, 37,
                                 [&](int64_t begin, int64_t end, int) {
                                   for (int64_t i = begin; i < end; ++i) {
                                     h->Record((i * i) % 911);
                                   }
                                 })
                    .ok());
  };
  Histogram serial;
  record_all(&serial, 1);
  Histogram parallel;
  record_all(&parallel, 8);
  EXPECT_EQ(serial.Snapshot(), parallel.Snapshot());
}

TEST(GaugeTest, SetAndAdd) {
  Gauge g;
  EXPECT_DOUBLE_EQ(g.Value(), 0.0);
  g.Set(2.5);
  EXPECT_DOUBLE_EQ(g.Value(), 2.5);
  g.Add(1.25);
  EXPECT_DOUBLE_EQ(g.Value(), 3.75);
}

TEST(RegistryTest, FindOrCreateReturnsStableInstances) {
  Registry registry;
  Counter& a = registry.GetCounter("x");
  Counter& b = registry.GetCounter("x");
  EXPECT_EQ(&a, &b);
  Histogram& h1 = registry.GetHistogram("h");
  Histogram& h2 = registry.GetHistogram("h");
  EXPECT_EQ(&h1, &h2);
  // Counter and histogram namespaces are independent.
  registry.GetGauge("x").Set(1.0);
  a.Add(7);
  const MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.counter("x"), 7);
  EXPECT_DOUBLE_EQ(snap.gauge("x"), 1.0);
  EXPECT_EQ(snap.counter("absent"), 0);
  EXPECT_DOUBLE_EQ(snap.gauge("absent"), 0.0);
}

TEST(RegistryTest, ConcurrentLookupAndRecord) {
  Registry registry;
  ThreadPool pool(8);
  ASSERT_TRUE(
      pool.ParallelFor(8000, 100,
                       [&](int64_t begin, int64_t end, int) {
                         // Every chunk re-resolves the instruments — lookup
                         // must be thread-safe even though hot paths resolve
                         // once.
                         Counter& c = registry.GetCounter("events");
                         Histogram& h = registry.GetHistogram("sizes");
                         for (int64_t i = begin; i < end; ++i) {
                           c.Increment();
                           h.Record(i);
                         }
                       })
          .ok());
  const MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.counter("events"), 8000);
  EXPECT_EQ(snap.histograms.at("sizes").count, 8000);
}

TEST(MetricsSnapshotTest, Accumulate) {
  Registry r1;
  r1.GetCounter("c").Add(3);
  r1.GetGauge("g").Set(1.5);
  r1.GetHistogram("h").Record(4);
  Registry r2;
  r2.GetCounter("c").Add(2);
  r2.GetCounter("only2").Add(9);
  r2.GetGauge("g").Set(2.0);
  r2.GetHistogram("h").Record(10);

  MetricsSnapshot merged = r1.Snapshot();
  merged += r2.Snapshot();
  EXPECT_EQ(merged.counter("c"), 5);
  EXPECT_EQ(merged.counter("only2"), 9);
  EXPECT_DOUBLE_EQ(merged.gauge("g"), 3.5);
  EXPECT_EQ(merged.histograms.at("h").count, 2);
  EXPECT_EQ(merged.histograms.at("h").sum, 14);
  EXPECT_EQ(merged.histograms.at("h").min, 4);
  EXPECT_EQ(merged.histograms.at("h").max, 10);
}

}  // namespace
}  // namespace hasj::obs
