#include "index/rtree.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/random.h"

namespace hasj::index {
namespace {

using geom::Box;

std::vector<RTree::Entry> RandomEntries(hasj::Rng& rng, int n) {
  std::vector<RTree::Entry> entries;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Uniform(0, 100);
    const double y = rng.Uniform(0, 100);
    entries.push_back({Box(x, y, x + rng.Uniform(0, 5), y + rng.Uniform(0, 5)),
                       static_cast<int64_t>(i)});
  }
  return entries;
}

std::set<int64_t> LinearScanIntersects(const std::vector<RTree::Entry>& entries,
                                       const Box& window) {
  std::set<int64_t> out;
  for (const auto& e : entries) {
    if (e.box.Intersects(window)) out.insert(e.id);
  }
  return out;
}

TEST(RTreeTest, EmptyTree) {
  RTree tree;
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_EQ(tree.height(), 0);
  EXPECT_TRUE(tree.QueryIntersects(Box(0, 0, 100, 100)).empty());
  EXPECT_TRUE(tree.CheckInvariants().ok());
}

TEST(RTreeTest, SingleEntry) {
  RTree tree;
  tree.Insert(Box(1, 1, 2, 2), 42);
  EXPECT_EQ(tree.size(), 1u);
  EXPECT_EQ(tree.height(), 1);
  const auto hits = tree.QueryIntersects(Box(0, 0, 3, 3));
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0], 42);
  EXPECT_TRUE(tree.QueryIntersects(Box(5, 5, 6, 6)).empty());
}

class RTreeBuildTest : public ::testing::TestWithParam<std::tuple<int, bool>> {};

TEST_P(RTreeBuildTest, QueriesMatchLinearScan) {
  const auto [n, bulk] = GetParam();
  hasj::Rng rng(static_cast<uint64_t>(n) * 7919 + bulk);
  const auto entries = RandomEntries(rng, n);

  RTree tree = [&] {
    if (bulk) return RTree::BulkLoad(entries, 8);
    RTree t(8);
    for (const auto& e : entries) t.Insert(e.box, e.id);
    return t;
  }();
  EXPECT_EQ(tree.size(), static_cast<size_t>(n));
  EXPECT_TRUE(tree.CheckInvariants().ok())
      << tree.CheckInvariants().ToString();

  for (int q = 0; q < 50; ++q) {
    const double x = rng.Uniform(-10, 110);
    const double y = rng.Uniform(-10, 110);
    const Box window(x, y, x + rng.Uniform(0, 30), y + rng.Uniform(0, 30));
    const auto got = tree.QueryIntersects(window);
    const std::set<int64_t> got_set(got.begin(), got.end());
    EXPECT_EQ(got_set.size(), got.size()) << "duplicate results";
    EXPECT_EQ(got_set, LinearScanIntersects(entries, window));
  }
}

TEST_P(RTreeBuildTest, DistanceQueriesMatchLinearScan) {
  const auto [n, bulk] = GetParam();
  hasj::Rng rng(static_cast<uint64_t>(n) * 104729 + bulk);
  const auto entries = RandomEntries(rng, n);
  RTree tree = bulk ? RTree::BulkLoad(entries, 8) : RTree(8);
  if (!bulk) {
    for (const auto& e : entries) tree.Insert(e.box, e.id);
  }
  for (int q = 0; q < 30; ++q) {
    const double x = rng.Uniform(0, 100);
    const double y = rng.Uniform(0, 100);
    const Box query(x, y, x + 2, y + 2);
    const double d = rng.Uniform(0, 20);
    const auto got = tree.QueryWithinDistance(query, d);
    std::set<int64_t> expected;
    for (const auto& e : entries) {
      if (geom::MinDistance(e.box, query) <= d) expected.insert(e.id);
    }
    EXPECT_EQ(std::set<int64_t>(got.begin(), got.end()), expected);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, RTreeBuildTest,
    ::testing::Combine(::testing::Values(1, 7, 8, 9, 64, 500, 3000),
                       ::testing::Bool()));

TEST(RTreeJoinTest, IntersectionJoinMatchesNestedLoop) {
  hasj::Rng rng(71);
  const auto ea = RandomEntries(rng, 300);
  const auto eb = RandomEntries(rng, 400);
  const RTree ta = RTree::BulkLoad(ea, 8);
  const RTree tb = RTree::BulkLoad(eb, 8);

  auto got = JoinIntersects(ta, tb);
  std::sort(got.begin(), got.end());
  EXPECT_TRUE(std::adjacent_find(got.begin(), got.end()) == got.end());

  std::vector<std::pair<int64_t, int64_t>> expected;
  for (const auto& a : ea) {
    for (const auto& b : eb) {
      if (a.box.Intersects(b.box)) expected.emplace_back(a.id, b.id);
    }
  }
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(got, expected);
  EXPECT_GT(got.size(), 0u);
}

TEST(RTreeJoinTest, DistanceJoinMatchesNestedLoop) {
  hasj::Rng rng(73);
  const auto ea = RandomEntries(rng, 200);
  const auto eb = RandomEntries(rng, 250);
  const RTree ta = RTree::BulkLoad(ea, 8);
  const RTree tb = RTree::BulkLoad(eb, 8);
  for (double d : {0.0, 1.0, 5.0}) {
    auto got = JoinWithinDistance(ta, tb, d);
    std::sort(got.begin(), got.end());
    std::vector<std::pair<int64_t, int64_t>> expected;
    for (const auto& a : ea) {
      for (const auto& b : eb) {
        if (geom::MinDistance(a.box, b.box) <= d) {
          expected.emplace_back(a.id, b.id);
        }
      }
    }
    std::sort(expected.begin(), expected.end());
    EXPECT_EQ(got, expected) << "d=" << d;
  }
}

TEST(RTreeJoinTest, MixedHeightTrees) {
  hasj::Rng rng(75);
  const auto ea = RandomEntries(rng, 1000);  // tall tree
  const auto eb = RandomEntries(rng, 5);     // single leaf
  const RTree ta = RTree::BulkLoad(ea, 8);
  const RTree tb = RTree::BulkLoad(eb, 8);
  EXPECT_GT(ta.height(), tb.height());
  auto got = JoinIntersects(ta, tb);
  std::sort(got.begin(), got.end());
  std::vector<std::pair<int64_t, int64_t>> expected;
  for (const auto& a : ea) {
    for (const auto& b : eb) {
      if (a.box.Intersects(b.box)) expected.emplace_back(a.id, b.id);
    }
  }
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(got, expected);
  // Symmetric orientation.
  auto got_rev = JoinIntersects(tb, ta);
  EXPECT_EQ(got_rev.size(), got.size());
}

TEST(RTreeJoinTest, EmptyTreesYieldNoPairs) {
  RTree empty;
  hasj::Rng rng(77);
  const RTree full = RTree::BulkLoad(RandomEntries(rng, 50), 8);
  EXPECT_TRUE(JoinIntersects(empty, full).empty());
  EXPECT_TRUE(JoinIntersects(full, empty).empty());
  EXPECT_TRUE(JoinWithinDistance(empty, empty, 10).empty());
}

TEST(RStarSplitTest, QueriesMatchLinearScan) {
  hasj::Rng rng(0xbec);
  const auto entries = RandomEntries(rng, 1500);
  RTree tree(8, SplitPolicy::kRStar);
  for (const auto& e : entries) tree.Insert(e.box, e.id);
  EXPECT_TRUE(tree.CheckInvariants().ok()) << tree.CheckInvariants().ToString();
  for (int q = 0; q < 40; ++q) {
    const double x = rng.Uniform(-10, 110), y = rng.Uniform(-10, 110);
    const Box window(x, y, x + rng.Uniform(0, 30), y + rng.Uniform(0, 30));
    const auto got = tree.QueryIntersects(window);
    EXPECT_EQ(std::set<int64_t>(got.begin(), got.end()),
              LinearScanIntersects(entries, window));
  }
}

TEST(RStarSplitTest, BetterOrEqualQueryQualityThanQuadratic) {
  hasj::Rng rng(0xbe5);
  const auto entries = RandomEntries(rng, 4000);
  RTree quadratic(8, SplitPolicy::kQuadratic);
  RTree rstar(8, SplitPolicy::kRStar);
  for (const auto& e : entries) {
    quadratic.Insert(e.box, e.id);
    rstar.Insert(e.box, e.id);
  }
  int64_t nodes_quadratic = 0, nodes_rstar = 0;
  for (int q = 0; q < 200; ++q) {
    const double x = rng.Uniform(0, 90), y = rng.Uniform(0, 90);
    const Box window(x, y, x + 10, y + 10);
    nodes_quadratic += quadratic.NodesTouched(window);
    nodes_rstar += rstar.NodesTouched(window);
  }
  // R* split should not be substantially worse; on uniform data it is
  // typically better. Deterministic seed keeps this stable.
  EXPECT_LE(nodes_rstar, nodes_quadratic * 11 / 10);
  EXPECT_GT(nodes_rstar, 0);
}

TEST(RTreeTest, NodesTouchedSaneBounds) {
  hasj::Rng rng(0xaa1);
  const RTree tree = RTree::BulkLoad(RandomEntries(rng, 2000), 8);
  // Whole-extent query touches every node; empty-region query touches at
  // most the root.
  const int64_t all = tree.NodesTouched(Box(-100, -100, 1200, 1200));
  EXPECT_GE(all, static_cast<int64_t>(2000 / 8));
  EXPECT_LE(tree.NodesTouched(Box(5000, 5000, 5001, 5001)), 1);
}

TEST(RTreeTest, HeightGrowsLogarithmically) {
  RTree tree(8);
  hasj::Rng rng(79);
  for (const auto& e : RandomEntries(rng, 2000)) tree.Insert(e.box, e.id);
  EXPECT_TRUE(tree.CheckInvariants().ok());
  EXPECT_GE(tree.height(), 3);
  EXPECT_LE(tree.height(), 8);
}

}  // namespace
}  // namespace hasj::index
