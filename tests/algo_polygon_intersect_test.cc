#include "algo/polygon_intersect.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "data/generator.h"

namespace hasj::algo {
namespace {

using geom::Point;
using geom::Polygon;

Polygon Square(double x0, double y0, double side) {
  return Polygon(
      {{x0, y0}, {x0 + side, y0}, {x0 + side, y0 + side}, {x0, y0 + side}});
}

TEST(PolygonsIntersectTest, OverlappingSquares) {
  EXPECT_TRUE(PolygonsIntersect(Square(0, 0, 2), Square(1, 1, 2)));
}

TEST(PolygonsIntersectTest, DisjointSquares) {
  EXPECT_FALSE(PolygonsIntersect(Square(0, 0, 1), Square(3, 3, 1)));
  // MBRs overlap but geometries do not (diagonal arrangement of concave Ls).
  const Polygon l1({{0, 0}, {3, 0}, {3, 1}, {1, 1}, {1, 3}, {0, 3}});
  const Polygon small_sq = Square(1.5, 1.5, 1.0);
  EXPECT_TRUE(l1.Bounds().Intersects(small_sq.Bounds()));
  EXPECT_FALSE(PolygonsIntersect(l1, small_sq));
}

TEST(PolygonsIntersectTest, Containment) {
  EXPECT_TRUE(PolygonsIntersect(Square(0, 0, 10), Square(4, 4, 1)));
  EXPECT_TRUE(PolygonsIntersect(Square(4, 4, 1), Square(0, 0, 10)));
}

TEST(PolygonsIntersectTest, EdgeTouch) {
  EXPECT_TRUE(PolygonsIntersect(Square(0, 0, 2), Square(2, 0, 2)));
  EXPECT_TRUE(PolygonsIntersect(Square(0, 0, 2), Square(2, 2, 2)));  // corner
}

TEST(PolygonsIntersectTest, CountersPopulated) {
  IntersectCounters counters;
  // Containment decided by the point-in-polygon step.
  EXPECT_TRUE(PolygonsIntersect(Square(4, 4, 1), Square(0, 0, 10), {},
                                &counters));
  EXPECT_EQ(counters.point_in_polygon_hits, 1);
  EXPECT_EQ(counters.segment_tests, 0);
  // Plus-shaped crossing: neither probe vertex is contained, so the
  // decision reaches the segment test.
  const Polygon horizontal({{0, 1}, {3, 1}, {3, 2}, {0, 2}});
  const Polygon vertical({{1, 0}, {2, 0}, {2, 3}, {1, 3}});
  EXPECT_TRUE(PolygonsIntersect(horizontal, vertical, {}, &counters));
  EXPECT_EQ(counters.segment_tests, 1);
  EXPECT_GT(counters.edges_considered, 0);
}

TEST(BoundariesIntersectTest, IgnoresContainment) {
  // Boundaries of nested squares do not cross.
  EXPECT_FALSE(BoundariesIntersect(Square(0, 0, 10), Square(4, 4, 1)));
  EXPECT_TRUE(BoundariesIntersect(Square(0, 0, 2), Square(1, 1, 2)));
}

// Property: all four option combinations agree on random polygon pairs.
struct OptionCombo {
  bool sweep;
  bool restricted;
};

class IntersectOptionsTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, bool, bool>> {};

TEST_P(IntersectOptionsTest, AgreesWithBruteUnrestricted) {
  const auto [seed, sweep, restricted] = GetParam();
  hasj::Rng rng(seed);
  SoftwareIntersectOptions reference;
  reference.use_sweep = false;
  reference.restricted_search = false;
  SoftwareIntersectOptions options;
  options.use_sweep = sweep;
  options.restricted_search = restricted;

  int hits = 0;
  for (int iter = 0; iter < 80; ++iter) {
    const Polygon a = data::GenerateBlobPolygon(
        {rng.Uniform(0, 8), rng.Uniform(0, 8)}, rng.Uniform(0.5, 3.0),
        static_cast<int>(rng.UniformInt(3, 60)), 0.6, rng.Next());
    const Polygon b = data::GenerateBlobPolygon(
        {rng.Uniform(0, 8), rng.Uniform(0, 8)}, rng.Uniform(0.5, 3.0),
        static_cast<int>(rng.UniformInt(3, 60)), 0.6, rng.Next());
    const bool expected = PolygonsIntersect(a, b, reference);
    EXPECT_EQ(PolygonsIntersect(a, b, options), expected) << "iter " << iter;
    hits += expected;
  }
  // The workload must exercise both outcomes to be meaningful.
  EXPECT_GT(hits, 5);
  EXPECT_LT(hits, 75);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, IntersectOptionsTest,
    ::testing::Combine(::testing::Values(11, 12, 13), ::testing::Bool(),
                       ::testing::Bool()));

}  // namespace
}  // namespace hasj::algo
