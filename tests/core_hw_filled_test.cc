#include "core/hw_filled.h"

#include <gtest/gtest.h>

#include "algo/polygon_intersect.h"
#include "common/random.h"
#include "data/generator.h"

namespace hasj::core {
namespace {

using geom::Polygon;

Polygon Square(double x0, double y0, double side) {
  return Polygon(
      {{x0, y0}, {x0 + side, y0}, {x0 + side, y0 + side}, {x0, y0 + side}});
}

TEST(HwFilledTest, BasicCases) {
  HwFilledIntersectionTester tester;
  EXPECT_TRUE(tester.Test(Square(0, 0, 2), Square(1, 1, 2)));
  EXPECT_FALSE(tester.Test(Square(0, 0, 1), Square(5, 5, 1)));
  // Containment is detected without a point-in-polygon step.
  EXPECT_TRUE(tester.Test(Square(0, 0, 10), Square(4, 4, 1)));
  EXPECT_TRUE(tester.Test(Square(4, 4, 1), Square(0, 0, 10)));
  EXPECT_GT(tester.triangulate_ms(), 0.0);
}

TEST(HwFilledTest, ConcavePocketRejected) {
  const Polygon l({{0, 0}, {10, 0}, {10, 1}, {1, 1}, {1, 10}, {0, 10}});
  HwConfig config;
  config.resolution = 16;
  HwFilledIntersectionTester tester(config);
  EXPECT_FALSE(tester.Test(l, Square(6, 6, 2)));
  EXPECT_EQ(tester.counters().hw_rejects, 1);
}

class HwFilledExactnessTest
    : public ::testing::TestWithParam<std::tuple<int, uint64_t>> {};

TEST_P(HwFilledExactnessTest, AgreesWithSoftware) {
  const auto [resolution, seed] = GetParam();
  HwConfig config;
  config.resolution = resolution;
  HwFilledIntersectionTester tester(config);
  hasj::Rng rng(seed);
  int hits = 0;
  for (int iter = 0; iter < 100; ++iter) {
    const Polygon a = data::GenerateBlobPolygon(
        {rng.Uniform(0, 8), rng.Uniform(0, 8)}, rng.Uniform(0.3, 3.0),
        static_cast<int>(rng.UniformInt(3, 60)), 0.6, rng.Next());
    const Polygon b = rng.Bernoulli(0.5)
                          ? data::GenerateBlobPolygon(
                                {rng.Uniform(0, 8), rng.Uniform(0, 8)},
                                rng.Uniform(0.3, 3.0),
                                static_cast<int>(rng.UniformInt(3, 60)), 0.6,
                                rng.Next())
                          : data::GenerateSnakePolygon(
                                {rng.Uniform(0, 8), rng.Uniform(0, 8)},
                                rng.Uniform(0.3, 3.0),
                                static_cast<int>(rng.UniformInt(8, 60)), 0.3,
                                rng.Next());
    const bool expected = algo::PolygonsIntersect(a, b);
    EXPECT_EQ(tester.Test(a, b), expected) << "iter " << iter;
    hits += expected;
  }
  EXPECT_GT(hits, 10);
  EXPECT_LT(hits, 95);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, HwFilledExactnessTest,
    ::testing::Combine(::testing::Values(1, 8, 32),
                       ::testing::Values(801, 802)));

TEST(HwFilledTest, FilledFilterRejectsMoreThanEdgeFilterKeepsExactness) {
  // Filled masks cover interiors, so overlap is *more* likely than with
  // edge chains — fewer rejects, but containment needs no extra step. Both
  // testers must agree with the exact answer on every pair.
  HwConfig config;
  config.resolution = 8;
  HwFilledIntersectionTester filled(config);
  hasj::Rng rng(803);
  for (int iter = 0; iter < 60; ++iter) {
    const Polygon a = data::GenerateBlobPolygon(
        {rng.Uniform(0, 6), rng.Uniform(0, 6)}, rng.Uniform(0.3, 2.5),
        static_cast<int>(rng.UniformInt(3, 40)), 0.5, rng.Next());
    const Polygon b = data::GenerateBlobPolygon(
        {rng.Uniform(0, 6), rng.Uniform(0, 6)}, rng.Uniform(0.3, 2.5),
        static_cast<int>(rng.UniformInt(3, 40)), 0.5, rng.Next());
    EXPECT_EQ(filled.Test(a, b), algo::PolygonsIntersect(a, b));
  }
}

}  // namespace
}  // namespace hasj::core
