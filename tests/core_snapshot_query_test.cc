// Snapshot query engine (core/snapshot_query.h): every query form must
// match its serial oracle exactly, at every degradation-ladder level — the
// ladder trades throughput, never verdicts.
#include <gtest/gtest.h>

#include <memory>

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "core/snapshot_query.h"
#include "data/dataset.h"
#include "data/generator.h"
#include "data/versioned_dataset.h"
#include "filter/slot_interval_grid.h"
#include "geom/box.h"
#include "geom/polygon.h"

namespace hasj {
namespace {

using core::DegradeLevel;
using core::SnapshotQueryOptions;
using core::SnapshotQueryResult;
using PairVec = std::vector<std::pair<int64_t, int64_t>>;
using IdVec = std::vector<int64_t>;

constexpr double kExtent = 200.0;

std::unique_ptr<data::VersionedDataset> MakeStore(int count,
                                                  uint64_t seed) {
  data::GeneratorProfile profile;
  profile.name = "snapshot-query";
  profile.count = count;
  profile.mean_vertices = 12;
  profile.max_vertices = 40;
  profile.extent = geom::Box(0, 0, kExtent, kExtent);
  profile.seed = seed;
  auto store = std::make_unique<data::VersionedDataset>(
      "snapshot-query", static_cast<size_t>(count) + 64);
  EXPECT_TRUE(store->SeedFrom(data::GenerateDataset(profile)).ok());
  return store;
}

geom::Polygon Probe(double cx, double cy, double half) {
  return geom::Polygon({{cx - half, cy - half},
                        {cx + half, cy - half},
                        {cx + half, cy + half},
                        {cx - half, cy + half}});
}

IdVec Sorted(IdVec v) {
  std::sort(v.begin(), v.end());
  return v;
}

PairVec Sorted(PairVec v) {
  std::sort(v.begin(), v.end());
  return v;
}

class SnapshotQueryLadderTest : public ::testing::TestWithParam<DegradeLevel> {
};

TEST_P(SnapshotQueryLadderTest, SelectionMatchesOracle) {
  const auto store = MakeStore(120, 7);
  auto grid = filter::SlotIntervalGrid::Create(
      geom::Box(0, 0, kExtent, kExtent), store->capacity(), {.grid_bits = 6});
  ASSERT_TRUE(grid.ok());
  SnapshotQueryOptions options;
  options.degrade = GetParam();
  options.intervals = &grid.value();
  const data::VersionedDataset::Snapshot snap = store->snapshot();
  for (int i = 0; i < 6; ++i) {
    const geom::Polygon probe = Probe(30.0 + 25.0 * i, 40.0 + 20.0 * i, 18.0);
    const SnapshotQueryResult got = core::SnapshotSelection(snap, probe, options);
    ASSERT_TRUE(got.status.ok());
    EXPECT_EQ(Sorted(got.ids), core::OracleSelection(snap, probe));
  }
}

TEST_P(SnapshotQueryLadderTest, JoinMatchesOracle) {
  const auto store = MakeStore(90, 11);
  auto grid = filter::SlotIntervalGrid::Create(
      geom::Box(0, 0, kExtent, kExtent), store->capacity(), {.grid_bits = 6});
  ASSERT_TRUE(grid.ok());
  SnapshotQueryOptions options;
  options.degrade = GetParam();
  options.intervals = &grid.value();
  options.intervals_b = &grid.value();
  const data::VersionedDataset::Snapshot snap = store->snapshot();
  const SnapshotQueryResult got = core::SnapshotJoin(snap, snap, options);
  ASSERT_TRUE(got.status.ok());
  EXPECT_EQ(Sorted(got.pairs), core::OracleJoin(snap, snap));
}

TEST_P(SnapshotQueryLadderTest, DistanceSelectionMatchesOracle) {
  const auto store = MakeStore(120, 13);
  auto grid = filter::SlotIntervalGrid::Create(
      geom::Box(0, 0, kExtent, kExtent), store->capacity(), {.grid_bits = 6});
  ASSERT_TRUE(grid.ok());
  SnapshotQueryOptions options;
  options.degrade = GetParam();
  options.intervals = &grid.value();
  const data::VersionedDataset::Snapshot snap = store->snapshot();
  const geom::Polygon probe = Probe(100.0, 100.0, 15.0);
  for (const double d : {0.0, 5.0, 25.0}) {
    const SnapshotQueryResult got =
        core::SnapshotDistanceSelection(snap, probe, d, options);
    ASSERT_TRUE(got.status.ok());
    EXPECT_EQ(Sorted(got.ids), core::OracleDistanceSelection(snap, probe, d));
  }
}

TEST_P(SnapshotQueryLadderTest, DistanceJoinMatchesOracle) {
  const auto store = MakeStore(70, 17);
  auto grid = filter::SlotIntervalGrid::Create(
      geom::Box(0, 0, kExtent, kExtent), store->capacity(), {.grid_bits = 6});
  ASSERT_TRUE(grid.ok());
  SnapshotQueryOptions options;
  options.degrade = GetParam();
  options.intervals = &grid.value();
  options.intervals_b = &grid.value();
  const data::VersionedDataset::Snapshot snap = store->snapshot();
  const SnapshotQueryResult got =
      core::SnapshotDistanceJoin(snap, snap, 4.0, options);
  ASSERT_TRUE(got.status.ok());
  EXPECT_EQ(Sorted(got.pairs), core::OracleDistanceJoin(snap, snap, 4.0));
}

INSTANTIATE_TEST_SUITE_P(Ladder, SnapshotQueryLadderTest,
                         ::testing::Values(DegradeLevel::kNone,
                                           DegradeLevel::kNoBatch,
                                           DegradeLevel::kLowRes,
                                           DegradeLevel::kIntervalsOnly));

TEST(DegradedHwConfigTest, LadderIsCumulativeAndDeterministic) {
  core::HwConfig hw;
  hw.use_batching = true;
  hw.resolution = 8;

  const core::HwConfig l0 =
      core::DegradedHwConfig(hw, true, DegradeLevel::kNone);
  EXPECT_TRUE(l0.enable_hw);
  EXPECT_TRUE(l0.use_batching);
  EXPECT_EQ(l0.resolution, 8);

  const core::HwConfig l1 =
      core::DegradedHwConfig(hw, true, DegradeLevel::kNoBatch);
  EXPECT_TRUE(l1.enable_hw);
  EXPECT_FALSE(l1.use_batching);
  EXPECT_EQ(l1.resolution, 8);

  const core::HwConfig l2 =
      core::DegradedHwConfig(hw, true, DegradeLevel::kLowRes);
  EXPECT_TRUE(l2.enable_hw);
  EXPECT_FALSE(l2.use_batching);
  EXPECT_EQ(l2.resolution, 4);

  const core::HwConfig l3 =
      core::DegradedHwConfig(hw, true, DegradeLevel::kIntervalsOnly);
  EXPECT_FALSE(l3.enable_hw);
  EXPECT_FALSE(l3.use_batching);
  EXPECT_EQ(l3.resolution, 4);
}

// Snapshot isolation end-to-end: a query against an old pin is oblivious
// to updates published after the pin, and its oracle agrees.
TEST(SnapshotQueryTest, PinnedSnapshotIgnoresLaterUpdates) {
  auto store = MakeStore(50, 23);
  const data::VersionedDataset::Snapshot before = store->snapshot();
  const geom::Polygon probe = Probe(100.0, 100.0, 60.0);
  const IdVec baseline =
      Sorted(core::SnapshotSelection(before, probe, {}).ids);

  // Insert a polygon dead-center in the probe window and delete one
  // baseline hit.
  const auto inserted = store->Insert(Probe(100.0, 100.0, 5.0));
  ASSERT_TRUE(inserted.ok());
  if (!baseline.empty()) {
    ASSERT_TRUE(store->Delete(baseline.front()).ok());
  }

  EXPECT_EQ(Sorted(core::SnapshotSelection(before, probe, {}).ids), baseline);
  EXPECT_EQ(core::OracleSelection(before, probe), baseline);

  const data::VersionedDataset::Snapshot after = store->snapshot();
  const IdVec updated = Sorted(core::SnapshotSelection(after, probe, {}).ids);
  EXPECT_NE(updated, baseline);
  EXPECT_TRUE(std::binary_search(updated.begin(), updated.end(),
                                 inserted.value()));
  EXPECT_EQ(updated, core::OracleSelection(after, probe));
}

// A zero-area deadline truncates deterministically at the first poll.
TEST(SnapshotQueryTest, DeadlineTruncatesWithDeadlineExceeded) {
  const auto store = MakeStore(120, 29);
  SnapshotQueryOptions options;
  options.hw.deadline_ms = 1e-9;
  const SnapshotQueryResult got = core::SnapshotSelection(
      store->snapshot(), Probe(100.0, 100.0, 90.0), options);
  EXPECT_EQ(got.status.code(), StatusCode::kDeadlineExceeded);
}

}  // namespace
}  // namespace hasj
