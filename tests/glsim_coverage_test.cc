#include "glsim/coverage.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"

namespace hasj::glsim {
namespace {

using geom::Point;

TEST(LineFootprintTest, AxisAlignedGeometry) {
  const auto fp = LineFootprint::Make({1, 1}, {5, 1}, 2.0);
  // Corners at y = 0 and y = 2, x in {1, 5}.
  double min_y = 1e9, max_y = -1e9;
  for (const Point& c : fp.corner) {
    min_y = std::min(min_y, c.y);
    max_y = std::max(max_y, c.y);
  }
  EXPECT_DOUBLE_EQ(min_y, 0.0);
  EXPECT_DOUBLE_EQ(max_y, 2.0);
}

TEST(CellIntersectsFootprintTest, HorizontalLine) {
  const auto fp = LineFootprint::Make({0.5, 1.5}, {3.5, 1.5}, 1.0);
  EXPECT_TRUE(CellIntersectsFootprint(0, 1, fp));
  EXPECT_TRUE(CellIntersectsFootprint(3, 1, fp));
  EXPECT_TRUE(CellIntersectsFootprint(1, 1, fp));
  // Footprint spans y in [1, 2]: touches rows 0 and 2 only at the boundary,
  // which counts under closed semantics.
  EXPECT_TRUE(CellIntersectsFootprint(1, 0, fp));
  EXPECT_TRUE(CellIntersectsFootprint(1, 2, fp));
  EXPECT_FALSE(CellIntersectsFootprint(1, 3, fp));
  EXPECT_FALSE(CellIntersectsFootprint(5, 1, fp));
}

TEST(CellIntersectsFootprintTest, DiagonalLineMissesFarCorner) {
  const auto fp = LineFootprint::Make({0, 0}, {4, 4}, 0.2);
  EXPECT_TRUE(CellIntersectsFootprint(0, 0, fp));
  EXPECT_TRUE(CellIntersectsFootprint(2, 2, fp));
  EXPECT_FALSE(CellIntersectsFootprint(0, 3, fp));
  EXPECT_FALSE(CellIntersectsFootprint(3, 0, fp));
}

TEST(CellIntersectsFootprintTest, ContainsSegmentPixels) {
  // Conservativeness at the primitive level: any cell the segment passes
  // through intersects its footprint, for any width.
  hasj::Rng rng(91);
  for (int iter = 0; iter < 500; ++iter) {
    const Point a{rng.Uniform(0, 8), rng.Uniform(0, 8)};
    Point b{rng.Uniform(0, 8), rng.Uniform(0, 8)};
    if (a == b) b.x += 0.5;
    const double width = rng.Uniform(0.05, 3.0);
    const auto fp = LineFootprint::Make(a, b, width);
    for (int y = 0; y < 8; ++y) {
      for (int x = 0; x < 8; ++x) {
        if (CellIntersectsSegment(x, y, a, b)) {
          EXPECT_TRUE(CellIntersectsFootprint(x, y, fp))
              << "cell " << x << "," << y;
        }
      }
    }
  }
}

TEST(CellIntersectsDiscTest, Basic) {
  EXPECT_TRUE(CellIntersectsDisc(0, 0, {0.5, 0.5}, 0.1));   // inside cell
  EXPECT_TRUE(CellIntersectsDisc(1, 0, {0.5, 0.5}, 0.6));   // reaches over
  EXPECT_FALSE(CellIntersectsDisc(2, 0, {0.5, 0.5}, 0.6));
  // Exact touch at the cell border counts (closed semantics).
  EXPECT_TRUE(CellIntersectsDisc(1, 0, {0.5, 0.5}, 0.5));
  // Corner reach: distance from (0.5,0.5) to cell (1,1) corner is sqrt(.5).
  EXPECT_TRUE(CellIntersectsDisc(1, 1, {0.5, 0.5}, std::sqrt(0.5) + 1e-12));
  EXPECT_FALSE(CellIntersectsDisc(1, 1, {0.5, 0.5}, std::sqrt(0.5) - 1e-9));
}

TEST(CellIntersectsSegmentTest, Basic) {
  EXPECT_TRUE(CellIntersectsSegment(0, 0, {0.5, 0.5}, {0.6, 0.6}));
  EXPECT_TRUE(CellIntersectsSegment(1, 1, {0, 0}, {3, 3}));
  EXPECT_FALSE(CellIntersectsSegment(0, 1, {0, 0}, {3, 0.5}));
  // Touching the cell border counts.
  EXPECT_TRUE(CellIntersectsSegment(0, 1, {0, 1}, {1, 1}));
}

}  // namespace
}  // namespace hasj::glsim
